// Unit tests for the closed-loop adversary layer: pure-hash designation,
// the per-policy state machines driven through the defender-controlled
// observation channel, frozen-plan semantics, and checkpoint round-trips.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "byzantine/adaptive_adversary.h"
#include "common/contracts.h"
#include "common/serial.h"
#include "core/lattice.h"

namespace avcp::byzantine {
namespace {

AdaptiveAdversaryParams one_vehicle_params(AdaptivePolicy policy) {
  AdaptiveAdversaryParams params;
  params.attacker_fraction = 1.0;  // the single vehicle is designated
  params.policy = policy;
  params.seed = 5;
  return params;
}

/// Drives a 1x1 fleet one round: freeze the plan, read it, deliver the
/// verdict the scripted defender computes from the plan, advance.
bool step_one(AdaptiveAdversary& adv, std::size_t round,
              const std::function<AdversaryObservation(bool attacking)>&
                  defender) {
  adv.begin_round(round);
  const bool attacking = adv.attacking(round, 0, 0);
  adv.observe(0, 0, defender(attacking));
  adv.end_round(round);
  return attacking;
}

TEST(AdaptiveAdversary, InertParamsNeverDesignateOrAttack) {
  AdaptiveAdversary inert(3, 20, AdaptiveAdversaryParams{});
  EXPECT_FALSE(inert.active());
  inert.begin_round(0);
  for (core::RegionId i = 0; i < 3; ++i) {
    for (std::size_t v = 0; v < 20; ++v) {
      EXPECT_FALSE(inert.is_attacker(i, v));
      EXPECT_FALSE(inert.attacking(0, i, v));
    }
  }
  inert.end_round(0);
  EXPECT_EQ(inert.total_dormant(), 0u);
}

TEST(AdaptiveAdversary, ValidationRejectsBadKnobs) {
  const auto reject = [](auto&& mutate) {
    AdaptiveAdversaryParams params;
    params.attacker_fraction = 0.2;
    mutate(params);
    EXPECT_THROW(params.validate(), ContractViolation);
    EXPECT_THROW(AdaptiveAdversary(1, 4, params), ContractViolation);
  };
  reject([](auto& p) { p.attacker_fraction = 1.5; });
  reject([](auto& p) { p.attacker_fraction = -0.1; });
  reject([](auto& p) { p.build_rounds = 0; });
  reject([](auto& p) { p.defect_rounds = 0; });
  reject([](auto& p) { p.trust_target = -1.0; });
  reject([](auto& p) { p.probe_lo = 0; });
  reject([](auto& p) { p.probe_hi = 2, p.probe_lo = 3; });
  reject([](auto& p) { p.probe_cooldown = 0; });
  reject([](auto& p) { p.cohort_shifts = 0; });
  reject([](auto& p) { p.shift_rounds = 0; });
}

TEST(AdaptiveAdversary, DesignationRespectsFractionAndIsPure) {
  AdaptiveAdversaryParams params;
  params.attacker_fraction = 0.3;
  params.seed = 29;
  AdaptiveAdversary a(4, 200, params);
  AdaptiveAdversary b(4, 200, params);
  std::size_t designated = 0;
  for (core::RegionId i = 0; i < 4; ++i) {
    for (std::size_t v = 0; v < 200; ++v) {
      EXPECT_EQ(a.is_attacker(i, v), b.is_attacker(i, v));
      designated += a.is_attacker(i, v) ? 1 : 0;
    }
  }
  const double fraction = static_cast<double>(designated) / 800.0;
  EXPECT_GT(fraction, 0.2);
  EXPECT_LT(fraction, 0.4);
}

TEST(AdaptiveAdversary, BuildThenDefectPacesBurstsUnderTheGate) {
  auto params = one_vehicle_params(AdaptivePolicy::kBuildThenDefect);
  params.build_rounds = 3;
  params.defect_rounds = 2;
  params.trust_target = 0.5;
  AdaptiveAdversary adv(1, 1, params);
  ASSERT_TRUE(adv.is_attacker(0, 0));

  // Benign feedback (score decayed, never excluded): the machine cycles
  // build/defect on its own clock. No burst exceeds defect_rounds, bursts
  // are separated by at least build_rounds clean rounds, and at least one
  // burst lands.
  std::size_t burst = 0, gap = 0, bursts_seen = 0;
  bool prev = false;
  for (std::size_t t = 0; t < 40; ++t) {
    const bool attacking = step_one(adv, t, [](bool) {
      return AdversaryObservation{0.0, false, 0};
    });
    if (attacking) {
      if (!prev && t > 0) {
        EXPECT_GE(gap, params.build_rounds) << "round " << t;
      }
      burst = prev ? burst + 1 : 1;
      EXPECT_LE(burst, params.defect_rounds) << "round " << t;
      if (!prev) ++bursts_seen;
      gap = 0;
    } else {
      ++gap;
    }
    prev = attacking;
  }
  EXPECT_GE(bursts_seen, 4u);
  EXPECT_EQ(adv.total_dormant(), 0u);
}

TEST(AdaptiveAdversary, BuildThenDefectWaitsOutAHighPublishedScore) {
  // The reputation-aware gate: while the defender publishes a score above
  // trust_target the attacker keeps rebuilding and never defects.
  auto params = one_vehicle_params(AdaptivePolicy::kBuildThenDefect);
  params.build_rounds = 2;
  params.trust_target = 0.5;
  AdaptiveAdversary adv(1, 1, params);
  for (std::size_t t = 0; t < 30; ++t) {
    const bool attacking = step_one(adv, t, [](bool) {
      return AdversaryObservation{1.0, false, 0};
    });
    EXPECT_FALSE(attacking) << "round " << t;
  }
}

TEST(AdaptiveAdversary, ThresholdProbeConvergesToLargestSafeDose) {
  auto params = one_vehicle_params(AdaptivePolicy::kThresholdProbe);
  params.probe_lo = 1;
  params.probe_hi = 12;
  params.probe_cooldown = 5;
  AdaptiveAdversary adv(1, 1, params);

  // Scripted defender: quarantine (and report exclusion) from the 4th
  // consecutive defection onward, release as soon as the burst stops. The
  // largest safe dose is therefore exactly 3.
  std::size_t consecutive = 0;
  std::vector<std::size_t> burst_lengths;
  std::size_t burst = 0;
  for (std::size_t t = 0; t < 200; ++t) {
    const bool attacking = step_one(adv, t, [&](bool now) {
      consecutive = now ? consecutive + 1 : 0;
      return AdversaryObservation{0.0, consecutive >= 4, 0};
    });
    if (attacking) {
      ++burst;
    } else if (burst > 0) {
      burst_lengths.push_back(burst);
      burst = 0;
    }
  }
  ASSERT_GE(burst_lengths.size(), 4u);
  // The search has settled: every late burst repeats the safe dose.
  for (std::size_t i = burst_lengths.size() - 3; i < burst_lengths.size();
       ++i) {
    EXPECT_EQ(burst_lengths[i], 3u) << "burst " << i;
  }
  EXPECT_EQ(adv.total_dormant(), 0u);
}

TEST(AdaptiveAdversary, ThresholdProbeGoesDormantWhenEveryDoseTrips) {
  auto params = one_vehicle_params(AdaptivePolicy::kThresholdProbe);
  params.probe_lo = 1;
  params.probe_hi = 8;
  params.probe_cooldown = 3;
  AdaptiveAdversary adv(1, 1, params);

  // A hair-trigger defender: one defection anywhere is excluded. Even the
  // minimal dose trips, so the probe must back off for good.
  std::size_t consecutive = 0;
  for (std::size_t t = 0; t < 120; ++t) {
    step_one(adv, t, [&](bool now) {
      consecutive = now ? consecutive + 1 : 0;
      return AdversaryObservation{0.0, consecutive >= 1, 0};
    });
  }
  EXPECT_EQ(adv.total_dormant(), 1u);
  adv.begin_round(120);
  EXPECT_FALSE(adv.attacking(120, 0, 0));
}

TEST(AdaptiveAdversary, RegionCollusionRotatesShiftsAndCoversTheCohort) {
  AdaptiveAdversaryParams params;
  params.attacker_fraction = 1.0;
  params.policy = AdaptivePolicy::kRegionCollusion;
  params.cohort_shifts = 3;
  params.shift_rounds = 2;
  params.seed = 7;
  const std::size_t fleet = 30;
  AdaptiveAdversary adv(1, fleet, params);

  // One full rotation = cohort_shifts * shift_rounds rounds. Each vehicle
  // must defect in exactly one shift_rounds-long block of it, the active
  // sets must tile the rotation period, and together cover the cohort.
  std::vector<std::size_t> rounds_attacking(fleet, 0);
  std::vector<std::vector<bool>> plan(6, std::vector<bool>(fleet));
  for (std::size_t t = 0; t < 6; ++t) {
    adv.begin_round(t);
    for (std::size_t v = 0; v < fleet; ++v) {
      plan[t][v] = adv.attacking(t, 0, v);
      rounds_attacking[v] += plan[t][v] ? 1 : 0;
    }
    for (std::size_t v = 0; v < fleet; ++v) {
      adv.observe(0, v, AdversaryObservation{0.0, false, 0});
    }
    adv.end_round(t);
  }
  for (std::size_t v = 0; v < fleet; ++v) {
    EXPECT_EQ(rounds_attacking[v], params.shift_rounds) << "vehicle " << v;
  }
  // Shift blocks: both rounds of a block agree.
  for (std::size_t block = 0; block < 3; ++block) {
    EXPECT_EQ(plan[2 * block], plan[2 * block + 1]) << "block " << block;
  }
}

TEST(AdaptiveAdversary, RegionCollusionAbortsOnACaughtRegionMate) {
  AdaptiveAdversaryParams params;
  params.attacker_fraction = 1.0;
  params.policy = AdaptivePolicy::kRegionCollusion;
  params.seed = 7;
  const std::size_t fleet = 12;
  AdaptiveAdversary adv(1, fleet, params);

  // Round 0: the defender reports one quarantined region mate. The whole
  // cohort reads the collective-detection signal and drops out for good.
  adv.begin_round(0);
  for (std::size_t v = 0; v < fleet; ++v) {
    adv.observe(0, v, AdversaryObservation{0.0, false, 1});
  }
  adv.end_round(0);
  EXPECT_EQ(adv.total_dormant(), fleet);
  adv.begin_round(1);
  for (std::size_t v = 0; v < fleet; ++v) {
    EXPECT_FALSE(adv.attacking(1, 0, v));
  }
}

TEST(AdaptiveAdversary, SaveLoadResumesBitIdentically) {
  AdaptiveAdversaryParams params;
  params.attacker_fraction = 0.5;
  params.policy = AdaptivePolicy::kThresholdProbe;
  params.probe_cooldown = 4;
  params.seed = 23;
  const std::size_t fleet = 16;

  // A deterministic scripted defender shared by both runs: exclusion from
  // the 3rd consecutive defection per vehicle.
  const auto drive = [&](AdaptiveAdversary& adv, std::size_t from,
                         std::size_t to, std::vector<std::size_t>& consec,
                         std::vector<std::vector<bool>>* trace) {
    for (std::size_t t = from; t < to; ++t) {
      adv.begin_round(t);
      if (trace != nullptr) {
        trace->emplace_back();
        for (std::size_t v = 0; v < fleet; ++v) {
          trace->back().push_back(adv.attacking(t, 0, v));
        }
      }
      for (std::size_t v = 0; v < fleet; ++v) {
        if (!adv.is_attacker(0, v)) continue;
        consec[v] = adv.attacking(t, 0, v) ? consec[v] + 1 : 0;
        adv.observe(0, v, AdversaryObservation{0.0, consec[v] >= 3, 0});
      }
      adv.end_round(t);
    }
  };

  AdaptiveAdversary straight(1, fleet, params);
  std::vector<std::size_t> consec_a(fleet, 0);
  drive(straight, 0, 12, consec_a, nullptr);
  Serializer snapshot;
  straight.save_state(snapshot);
  const std::vector<std::size_t> consec_at_snapshot = consec_a;
  std::vector<std::vector<bool>> tail_a;
  drive(straight, 12, 24, consec_a, &tail_a);

  AdaptiveAdversary resumed(1, fleet, params);
  Deserializer d(snapshot.bytes());
  resumed.load_state(d);
  EXPECT_TRUE(d.exhausted());
  EXPECT_EQ(resumed.rounds(), 12u);
  std::vector<std::size_t> consec_b = consec_at_snapshot;
  std::vector<std::vector<bool>> tail_b;
  drive(resumed, 12, 24, consec_b, &tail_b);

  EXPECT_EQ(tail_a, tail_b);
  EXPECT_EQ(straight.total_dormant(), resumed.total_dormant());
}

TEST(AdaptiveAdversary, LoadRejectsMismatchedFleetShape) {
  AdaptiveAdversaryParams params;
  params.attacker_fraction = 0.5;
  params.seed = 23;
  AdaptiveAdversary small(1, 8, params);
  Serializer snapshot;
  small.save_state(snapshot);
  AdaptiveAdversary wide(1, 9, params);
  Deserializer d(snapshot.bytes());
  EXPECT_THROW(wide.load_state(d), SerialError);
}

}  // namespace
}  // namespace avcp::byzantine
