#include "core/sensor_model.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace avcp::core {
namespace {

TEST(SensorModel, TableIIIColumnSums) {
  // The paper's bottom row: camera 7, LiDAR 6, radar 7.
  const auto sensors = paper_sensors();
  ASSERT_EQ(sensors.size(), 3u);
  EXPECT_DOUBLE_EQ(sensors[0].utility_sum(), 7.0);
  EXPECT_DOUBLE_EQ(sensors[1].utility_sum(), 6.0);
  EXPECT_DOUBLE_EQ(sensors[2].utility_sum(), 7.0);
}

TEST(SensorModel, TableIIIPrivacyRanking) {
  const auto sensors = paper_sensors();
  EXPECT_DOUBLE_EQ(sensors[0].privacy_cost, 1.0);  // camera most sensitive
  EXPECT_DOUBLE_EQ(sensors[1].privacy_cost, 0.5);  // lidar moderate
  EXPECT_DOUBLE_EQ(sensors[2].privacy_cost, 0.1);  // radar least
}

TEST(SensorModel, TableIIISpotValues) {
  const auto sensors = paper_sensors();
  const auto names = perception_factor_names();
  ASSERT_EQ(names.size(), kNumPerceptionFactors);
  // "Color perception": camera 1, lidar 0, radar 0.
  EXPECT_EQ(names[4], "Color perception");
  EXPECT_DOUBLE_EQ(sensors[0].factor_scores[4], 1.0);
  EXPECT_DOUBLE_EQ(sensors[1].factor_scores[4], 0.0);
  EXPECT_DOUBLE_EQ(sensors[2].factor_scores[4], 0.0);
  // "Weather conditions": camera 0, lidar 0.5, radar 1.
  EXPECT_EQ(names[10], "Weather conditions");
  EXPECT_DOUBLE_EQ(sensors[0].factor_scores[10], 0.0);
  EXPECT_DOUBLE_EQ(sensors[1].factor_scores[10], 0.5);
  EXPECT_DOUBLE_EQ(sensors[2].factor_scores[10], 1.0);
}

TEST(SensorModel, TableIIRawUtilityColumn) {
  const DecisionLattice lattice(3);
  const auto tables = paper_decision_tables(lattice);
  const std::vector<double> expected = {20.0, 13.0, 14.0, 13.0,
                                        7.0,  6.0,  7.0,  0.0};
  ASSERT_EQ(tables.raw_utility.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_DOUBLE_EQ(tables.raw_utility[k], expected[k]) << "P" << k + 1;
  }
}

TEST(SensorModel, TableIIRawPrivacyColumn) {
  const DecisionLattice lattice(3);
  const auto tables = paper_decision_tables(lattice);
  const std::vector<double> expected = {1.6, 1.5, 1.1, 0.6, 1.0, 0.5, 0.1, 0.0};
  ASSERT_EQ(tables.raw_privacy.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_NEAR(tables.raw_privacy[k], expected[k], 1e-12) << "P" << k + 1;
  }
}

TEST(SensorModel, NormalizedColumnsInUnitRangeWithExtremes) {
  const DecisionLattice lattice(3);
  const auto tables = paper_decision_tables(lattice);
  for (std::size_t k = 0; k < tables.utility.size(); ++k) {
    EXPECT_GE(tables.utility[k], 0.0);
    EXPECT_LE(tables.utility[k], 1.0);
    EXPECT_GE(tables.privacy[k], 0.0);
    EXPECT_LE(tables.privacy[k], 1.0);
  }
  // P1 attains both maxima; P8 both zeros.
  EXPECT_DOUBLE_EQ(tables.utility[0], 1.0);
  EXPECT_DOUBLE_EQ(tables.privacy[0], 1.0);
  EXPECT_DOUBLE_EQ(tables.utility[7], 0.0);
  EXPECT_DOUBLE_EQ(tables.privacy[7], 0.0);
}

TEST(SensorModel, NormalizationPreservesRatios) {
  const DecisionLattice lattice(3);
  const auto tables = paper_decision_tables(lattice);
  EXPECT_NEAR(tables.utility[1], 13.0 / 20.0, 1e-12);
  EXPECT_NEAR(tables.privacy[3], 0.6 / 1.6, 1e-12);
}

TEST(SensorModel, UtilityAndPrivacyAreAdditiveOverSensors) {
  const DecisionLattice lattice(3);
  const auto sensors = paper_sensors();
  const auto tables = make_decision_tables(lattice, sensors);
  for (DecisionId k = 0; k < lattice.num_decisions(); ++k) {
    double expected_u = 0.0;
    double expected_p = 0.0;
    for (std::size_t s = 0; s < sensors.size(); ++s) {
      if (lattice.shares(k, s)) {
        expected_u += sensors[s].utility_sum();
        expected_p += sensors[s].privacy_cost;
      }
    }
    EXPECT_NEAR(tables.raw_utility[k], expected_u, 1e-12);
    EXPECT_NEAR(tables.raw_privacy[k], expected_p, 1e-12);
  }
}

TEST(SensorModel, CustomSensorSetWorks) {
  // Four sensors: extend with an ultrasonic sensor.
  const DecisionLattice lattice(4);
  auto sensors = paper_sensors();
  sensors.push_back(SensorProfile{
      "ultrasonic", {1.0, 0.0, 1.0, 0.5, 0.0, 0.5, 0.0, 0.0, 0.5, 1.0, 1.0},
      0.05});
  const auto tables = make_decision_tables(lattice, sensors);
  ASSERT_EQ(tables.utility.size(), 16u);
  // Decision 0 shares all 4 sensors.
  EXPECT_DOUBLE_EQ(tables.raw_utility[0], 7.0 + 6.0 + 7.0 + 5.5);
  EXPECT_NEAR(tables.raw_privacy[0], 1.6 + 0.05, 1e-12);
}

TEST(SensorModel, MismatchedSensorCountRejected) {
  const DecisionLattice lattice(4);
  EXPECT_THROW(make_decision_tables(lattice, paper_sensors()),
               ContractViolation);
}

}  // namespace
}  // namespace avcp::core
