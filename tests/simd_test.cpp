// Bit-identity lock for the SIMD kernels (common/simd.h): whatever
// instruction set they compiled to, their output must equal — to the last
// bit — a plain scalar transcription of the same per-element expression.
// This is the property that lets the replicator and data-plane hot loops
// vectorize without touching the determinism contract, so it is pinned
// across sizes that exercise every vector-width/tail split (including
// n < one vector, exact multiples, and ragged tails).
#include "common/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace avcp {
namespace {

// Sizes chosen to hit: empty, sub-vector, exact SSE2 (2/4), exact AVX2
// (4/8), and ragged tails for both widths.
constexpr std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 90};

TEST(Simd, ActiveIsaIsKnown) {
  const std::string isa = simd::active_isa();
  EXPECT_TRUE(isa == "avx2" || isa == "sse2" || isa == "scalar") << isa;
}

TEST(Simd, AddU32MatchesScalarBitForBit) {
  Rng rng(2022);
  for (const std::size_t n : kSizes) {
    std::vector<std::uint32_t> dst(n), src(n);
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
      src[i] = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
    }
    std::vector<std::uint32_t> expected = dst;
    for (std::size_t i = 0; i < n; ++i) expected[i] += src[i];
    simd::add_u32(dst.data(), src.data(), n);
    ASSERT_EQ(dst, expected) << "n=" << n;
  }
}

TEST(Simd, GrowthUpdateMatchesScalarBitForBit) {
  Rng rng(7);
  for (const std::size_t n : kSizes) {
    std::vector<double> p(n), q(n), row(n, 0.0), expected(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = rng.uniform();
      q[i] = rng.uniform() * 3.0 - 1.0;
    }
    const double qbar = rng.uniform();
    const double eta = 0.5;
    const double min_factor = 0.05;
    for (std::size_t i = 0; i < n; ++i) {
      const double factor = 1.0 + eta * (q[i] - qbar);
      expected[i] = p[i] * std::max(factor, min_factor);
    }
    simd::growth_update(row.data(), p.data(), q.data(), qbar, eta, min_factor,
                        n);
    for (std::size_t i = 0; i < n; ++i) {
      // operator== on double: bit-identity for these (finite) values.
      ASSERT_EQ(row[i], expected[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Simd, GrowthUpdateClampsAtMinFactor) {
  // A q far below qbar drives the growth factor negative; the kernel must
  // clamp it exactly like the scalar max().
  double row = 0.0;
  const double p = 0.8;
  const double q = -50.0;
  simd::growth_update(&row, &p, &q, /*qbar=*/0.0, /*eta=*/1.0,
                      /*min_factor=*/0.1, 1);
  EXPECT_EQ(row, 0.8 * 0.1);
}

TEST(Simd, NormalizeMixMatchesScalarBitForBit) {
  Rng rng(13);
  for (const double mu : {0.0, 0.02}) {
    for (const std::size_t n : kSizes) {
      if (n == 0) continue;
      std::vector<double> row(n), expected(n);
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        row[i] = rng.uniform() + 1e-3;
        sum += row[i];  // ordered scalar reduction, as in the caller
      }
      const double mu_over_n = mu / static_cast<double>(n);
      const double keep = 1.0 - mu;
      for (std::size_t i = 0; i < n; ++i) {
        expected[i] = row[i] / sum;
        if (mu > 0.0) expected[i] = keep * expected[i] + mu_over_n;
      }
      simd::normalize_mix(row.data(), sum, mu, mu_over_n, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(row[i], expected[i]) << "mu=" << mu << " n=" << n;
      }
    }
  }
}

TEST(Simd, KernelsComposeLikeTheReplicatorStep) {
  // The exact call shape game.cpp uses: growth, ordered row sum, then
  // normalize+mutate. Locks the composition, not just each kernel.
  Rng rng(99);
  constexpr std::size_t kN = 8;
  std::vector<double> p(kN), q(kN), row(kN), expected(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    p[i] = 1.0 / kN;
    q[i] = rng.uniform();
  }
  double qbar = 0.0;
  for (std::size_t i = 0; i < kN; ++i) qbar += p[i] * q[i];

  for (std::size_t i = 0; i < kN; ++i) {
    expected[i] = p[i] * std::max(1.0 + 0.5 * (q[i] - qbar), 0.05);
  }
  double esum = 0.0;
  for (std::size_t i = 0; i < kN; ++i) esum += expected[i];
  for (std::size_t i = 0; i < kN; ++i) {
    expected[i] = (1.0 - 0.01) * (expected[i] / esum) + 0.01 / kN;
  }

  simd::growth_update(row.data(), p.data(), q.data(), qbar, 0.5, 0.05, kN);
  double sum = 0.0;
  for (std::size_t i = 0; i < kN; ++i) sum += row[i];
  ASSERT_EQ(sum, esum);
  simd::normalize_mix(row.data(), sum, 0.01, 0.01 / kN, kN);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(row[i], expected[i]);
}

}  // namespace
}  // namespace avcp
