#include "perception/measure.h"

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "common/rng.h"

namespace avcp::perception {
namespace {

TEST(SetAlgebra, UnionIntersectDifference) {
  const ItemSet a = {1, 3, 5, 7};
  const ItemSet b = {3, 4, 7, 9};
  EXPECT_EQ(set_union(a, b), (ItemSet{1, 3, 4, 5, 7, 9}));
  EXPECT_EQ(set_intersect(a, b), (ItemSet{3, 7}));
  EXPECT_EQ(set_difference(a, b), (ItemSet{1, 5}));
}

TEST(SetAlgebra, EmptyOperands) {
  const ItemSet a = {1, 2};
  EXPECT_EQ(set_union(a, {}), a);
  EXPECT_TRUE(set_intersect(a, {}).empty());
  EXPECT_EQ(set_difference(a, {}), a);
  EXPECT_TRUE(set_difference({}, a).empty());
}

TEST(SetAlgebra, ContainsAndSortedness) {
  const ItemSet a = {2, 4, 6};
  EXPECT_TRUE(set_contains(a, 4));
  EXPECT_FALSE(set_contains(a, 5));
  EXPECT_TRUE(is_sorted_unique(a));
  EXPECT_FALSE(is_sorted_unique(ItemSet{2, 2, 3}));
  EXPECT_FALSE(is_sorted_unique(ItemSet{3, 2}));
}

TEST(DataUniverse, AddAndQuery) {
  DataUniverse universe(2);
  const ItemId a = universe.add_item(0, 1.0, 0.5);
  const ItemId b = universe.add_item(1, 2.0, 0.1);
  EXPECT_EQ(universe.size(), 2u);
  EXPECT_EQ(universe.item(a).sensor, 0u);
  EXPECT_EQ(universe.item(b).sensor, 1u);
  EXPECT_DOUBLE_EQ(universe.total_privacy_weight(), 0.6);
  EXPECT_EQ(universe.items_of_sensor(0), (ItemSet{a}));
}

TEST(DataUniverse, RejectsBadItems) {
  DataUniverse universe(1);
  EXPECT_THROW(universe.add_item(1, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(universe.add_item(0, 0.0, 0.0), ContractViolation);
  EXPECT_THROW(universe.add_item(0, 1.0, -0.1), ContractViolation);
}

TEST(DataUniverse, SyntheticGeneratesPerSensorItems) {
  Rng rng(3);
  const std::vector<double> privacy = {1.0, 0.5, 0.1};
  const auto universe = DataUniverse::synthetic(3, 10, privacy, rng);
  EXPECT_EQ(universe.size(), 30u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(universe.items_of_sensor(s).size(), 10u);
  }
  // Camera items carry substantially more privacy mass than radar items.
  const double cam = universe.privacy_weight(universe.items_of_sensor(0));
  const double rad = universe.privacy_weight(universe.items_of_sensor(2));
  EXPECT_GT(cam, rad * 3.0);
}

class MeasureFixture : public ::testing::Test {
 protected:
  MeasureFixture() : universe_(2) {
    // Four items: ids 0..3. Desired = {0, 1}.
    universe_.add_item(0, 2.0, 1.0);  // 0
    universe_.add_item(0, 1.0, 0.5);  // 1
    universe_.add_item(1, 4.0, 0.1);  // 2
    universe_.add_item(1, 1.0, 0.4);  // 3
  }
  DataUniverse universe_;
};

TEST_F(MeasureFixture, Property31a_OnlyDesiredPartCounts) {
  const UtilityMeasure f(universe_, {0, 1});
  // f(S) == f(S ∩ D): adding undesired items changes nothing.
  EXPECT_DOUBLE_EQ(f(ItemSet{0, 2, 3}), f(ItemSet{0}));
}

TEST_F(MeasureFixture, Property31b_FullCoverageIsOne) {
  const UtilityMeasure f(universe_, {0, 1});
  EXPECT_DOUBLE_EQ(f(ItemSet{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(f(ItemSet{0, 1, 2, 3}), 1.0);
}

TEST_F(MeasureFixture, Property31c_DisjointIsZero) {
  const UtilityMeasure f(universe_, {0, 1});
  EXPECT_DOUBLE_EQ(f(ItemSet{2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(f(ItemSet{}), 0.0);
}

TEST_F(MeasureFixture, Property31d_CountableAdditivity) {
  const UtilityMeasure f(universe_, {0, 1});
  // Disjoint sets: f(A ∪ B) = f(A) + f(B).
  const ItemSet a = {0};
  const ItemSet b = {1, 2};
  EXPECT_DOUBLE_EQ(f(set_union(a, b)), f(a) + f(b));
}

TEST_F(MeasureFixture, WeightsDriveThePartialValue) {
  const UtilityMeasure f(universe_, {0, 1});
  // Item 0 weighs 2, item 1 weighs 1: f({0}) = 2/3.
  EXPECT_NEAR(f(ItemSet{0}), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(f(ItemSet{1}), 1.0 / 3.0, 1e-12);
}

TEST_F(MeasureFixture, MonotoneUnderInclusion) {
  const UtilityMeasure f(universe_, {0, 1, 2});
  EXPECT_LE(f(ItemSet{0}), f(ItemSet{0, 2}));
  EXPECT_LE(f(ItemSet{0, 2}), f(ItemSet{0, 1, 2}));
}

TEST_F(MeasureFixture, PrivacyCostNormalised) {
  // Total privacy = 2.0. Sharing everything costs 1.
  EXPECT_DOUBLE_EQ(privacy_cost(universe_, ItemSet{0, 1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(privacy_cost(universe_, ItemSet{}), 0.0);
  EXPECT_DOUBLE_EQ(privacy_cost(universe_, ItemSet{0}), 0.5);
  EXPECT_NEAR(privacy_cost(universe_, ItemSet{2}), 0.05, 1e-12);
}

TEST_F(MeasureFixture, PrivacyCostAdditiveOnDisjoint) {
  EXPECT_DOUBLE_EQ(privacy_cost(universe_, set_union({0}, {2})),
                   privacy_cost(universe_, ItemSet{0}) + privacy_cost(universe_, ItemSet{2}));
}

TEST(Measure, RejectsEmptyDesiredSet) {
  DataUniverse universe(1);
  universe.add_item(0, 1.0, 0.0);
  EXPECT_THROW(UtilityMeasure(universe, {}), ContractViolation);
}

TEST(Measure, RejectsUnsortedSets) {
  DataUniverse universe(1);
  universe.add_item(0, 1.0, 0.0);
  universe.add_item(0, 1.0, 0.0);
  const UtilityMeasure f(universe, {0});
  EXPECT_THROW(f(ItemSet{1, 0}), ContractViolation);
}

// Additivity sweep over random universes and random disjoint partitions.
class AdditivitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdditivitySweep, RandomDisjointPartitions) {
  Rng rng(GetParam());
  const std::vector<double> privacy = {1.0, 0.5, 0.1};
  const auto universe = DataUniverse::synthetic(3, 20, privacy, rng);

  // Random desired set.
  ItemSet desired;
  for (ItemId id = 0; id < universe.size(); ++id) {
    if (rng.bernoulli(0.4)) desired.push_back(id);
  }
  if (desired.empty()) desired.push_back(0);
  const UtilityMeasure f(universe, desired);

  // Random 3-way partition of a random subset.
  ItemSet parts[3];
  for (ItemId id = 0; id < universe.size(); ++id) {
    const auto bucket = rng.uniform_int(0, 3);  // 3 = excluded
    if (bucket < 3) parts[bucket].push_back(id);
  }
  const ItemSet all = set_union(set_union(parts[0], parts[1]), parts[2]);
  EXPECT_NEAR(f(all), f(parts[0]) + f(parts[1]) + f(parts[2]), 1e-12);
  EXPECT_NEAR(privacy_cost(universe, all),
              privacy_cost(universe, parts[0]) +
                  privacy_cost(universe, parts[1]) +
                  privacy_cost(universe, parts[2]),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomUniverses, AdditivitySweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace avcp::perception
