#include "core/fds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.h"
#include "common/rng.h"
#include "core/rate_model.h"
#include "sim/runner.h"
#include "test_support.h"

namespace avcp::core {
namespace {

using testing::make_chain_game;
using testing::make_single_region_game;

FdsOptions fast_opts() {
  FdsOptions options;
  options.max_step = 0.1;
  return options;
}

TEST(DesiredFields, DefaultTargetsAreUnconstrained) {
  const auto game = make_single_region_game();
  const DesiredFields fields(1, 8);
  EXPECT_TRUE(fields.satisfied(game.uniform_state()));
  EXPECT_EQ(fields.target(0, 3), (Interval{0.0, 1.0}));
}

TEST(DesiredFields, SetAndCheckTarget) {
  const auto game = make_single_region_game();
  DesiredFields fields(1, 8);
  fields.set_target(0, 0, Interval{0.5, 1.0});
  EXPECT_FALSE(fields.satisfied(game.uniform_state()));  // p1 = 1/8
  std::vector<double> p(8, 0.0);
  p[0] = 0.7;
  p[7] = 0.3;
  EXPECT_TRUE(fields.satisfied(game.broadcast_state(p)));
}

TEST(DesiredFields, RejectsInvalidTargets) {
  DesiredFields fields(1, 8);
  EXPECT_THROW(fields.set_target(0, 0, Interval{0.5, 0.2}), ContractViolation);
  EXPECT_THROW(fields.set_target(0, 0, Interval{-0.1, 0.5}),
               ContractViolation);
  EXPECT_THROW(fields.set_target(0, 9, Interval{0.0, 1.0}), ContractViolation);
}

TEST(DesiredFields, FromDistributionClipsToUnit) {
  const std::vector<double> p_star = {0.65, 0.0, 0.0, 0.0,
                                      0.25, 0.0, 0.05, 0.05};
  const auto fields = DesiredFields::from_distribution(2, p_star, 0.1);
  EXPECT_EQ(fields.num_regions(), 2u);
  EXPECT_NEAR(fields.target(0, 0).lo, 0.55, 1e-12);
  EXPECT_NEAR(fields.target(0, 0).hi, 0.75, 1e-12);
  EXPECT_NEAR(fields.target(1, 1).lo, 0.0, 1e-12);  // clipped at 0
  EXPECT_NEAR(fields.target(1, 1).hi, 0.1, 1e-12);
  EXPECT_NEAR(fields.target(0, 6).lo, 0.0, 1e-12);
  EXPECT_NEAR(fields.target(0, 6).hi, 0.15, 1e-12);
}

TEST(DesiredFields, FromDistributionValidatesSimplex) {
  const std::vector<double> bad = {0.5, 0.2};  // sums to 0.7
  EXPECT_THROW(DesiredFields::from_distribution(1, bad, 0.05),
               ContractViolation);
}

TEST(FixedRatioController, ReturnsConstantVector) {
  const auto game = make_chain_game(3);
  FixedRatioController controller(0.4);
  const auto x = controller.next_x(game.uniform_state(), {0.1, 0.2, 0.3});
  ASSERT_EQ(x.size(), 3u);
  for (const double xi : x) EXPECT_DOUBLE_EQ(xi, 0.4);
}

TEST(FixedRatioController, RejectsOutOfRange) {
  EXPECT_THROW(FixedRatioController(1.5), ContractViolation);
  EXPECT_THROW(FixedRatioController(-0.1), ContractViolation);
}

TEST(Fds, FeasibleSetForPrivacyTargetContainsLowRatios) {
  // Wanting the no-share decision P8 dominant is achievable by turning the
  // incentive off: x near 0 must be admissible from the uniform state.
  const auto game = make_single_region_game(/*beta=*/2.0);
  DesiredFields fields(1, 8);
  fields.set_target(0, 7, Interval{0.9, 1.0});
  const FdsController controller(game, fields);
  const auto set =
      controller.feasible_set(game.uniform_state(), std::vector<double>{0.5}, 0);
  ASSERT_FALSE(set.empty());
  EXPECT_TRUE(set.contains(0.0, 1e-9));
}

TEST(Fds, FeasibleSetForFullSharingTargetContainsHighRatios) {
  const auto game = make_single_region_game(/*beta=*/4.0);
  DesiredFields fields(1, 8);
  fields.set_target(0, 0, Interval{0.9, 1.0});
  const FdsController controller(game, fields);
  const auto set =
      controller.feasible_set(game.uniform_state(), std::vector<double>{0.5}, 0);
  ASSERT_FALSE(set.empty());
  EXPECT_TRUE(set.contains(1.0, 1e-9));
}

TEST(Fds, NextXRespectsMaxStep) {
  const auto game = make_single_region_game(/*beta=*/4.0);
  DesiredFields fields(1, 8);
  fields.set_target(0, 0, Interval{0.9, 1.0});
  FdsOptions options;
  options.max_step = 0.05;
  FdsController controller(game, fields, options);
  const auto x = controller.next_x(game.uniform_state(), {0.1});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_LE(std::abs(x[0] - 0.1), 0.05 + 1e-12);
}

TEST(Fds, KeepsAdmissibleRatio) {
  const auto game = make_single_region_game(/*beta=*/2.0);
  DesiredFields fields(1, 8);
  fields.set_target(0, 7, Interval{0.9, 1.0});
  FdsOptions options;
  options.interior_margin = 0.0;  // paper-pure: keep any admissible ratio
  FdsController controller(game, fields, options);
  // x = 0 is admissible for the privacy target (previous test): unchanged.
  const auto x = controller.next_x(game.uniform_state(), {0.0});
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(Fds, ConvergesToFullSharingTarget) {
  const auto game = make_single_region_game(/*beta=*/4.0);
  DesiredFields fields(1, 8);
  fields.set_target(0, 0, Interval{0.9, 1.0});
  FdsController controller(game, fields, fast_opts());

  sim::RunOptions options;
  options.max_rounds = 500;
  const auto result = sim::run_mean_field(game, controller,
                                          game.uniform_state(), {0.1},
                                          &controller.desired(), options);
  EXPECT_TRUE(result.converged) << "rounds=" << result.rounds;
  EXPECT_GE(result.final_state.p[0][0], 0.9);
}

TEST(Fds, ConvergesToPrivacyTarget) {
  const auto game = make_single_region_game(/*beta=*/2.0);
  DesiredFields fields(1, 8);
  fields.set_target(0, 7, Interval{0.9, 1.0});
  FdsController controller(game, fields, fast_opts());

  sim::RunOptions options;
  options.max_rounds = 500;
  const auto result = sim::run_mean_field(game, controller,
                                          game.uniform_state(), {0.9},
                                          &controller.desired(), options);
  EXPECT_TRUE(result.converged) << "rounds=" << result.rounds;
  EXPECT_GE(result.final_state.p[0][7], 0.9);
}

TEST(Fds, ConvergesToAttainableInteriorField) {
  // Paper §V-C methodology: take the equilibrium reached under a reference
  // ratio as the desired decision field, then require FDS (starting from a
  // different ratio) to shape the population into an eps-box around it.
  const auto game = make_single_region_game(/*beta=*/2.5);
  const std::vector<double> x_ref = {0.5};
  GameState eq = game.uniform_state();
  for (int t = 0; t < 3000; ++t) game.replicator_step(eq, x_ref);

  const double eps = 0.05;
  DesiredFields fields(1, 8);
  for (DecisionId k = 0; k < 8; ++k) {
    fields.set_target(0, k,
                      Interval{std::max(0.0, eq.p[0][k] - eps),
                               std::min(1.0, eq.p[0][k] + eps)});
  }
  FdsController controller(game, fields, fast_opts());

  sim::RunOptions options;
  options.max_rounds = 2000;
  const auto result = sim::run_mean_field(game, controller,
                                          game.uniform_state(), {0.95},
                                          &controller.desired(), options);
  EXPECT_TRUE(result.converged) << "rounds=" << result.rounds;
}

TEST(Fds, MultiRegionConvergence) {
  const auto game = make_chain_game(4, /*beta_lo=*/3.5, /*beta_hi=*/4.5);
  DesiredFields fields(4, 8);
  for (RegionId i = 0; i < 4; ++i) {
    fields.set_target(i, 0, Interval{0.85, 1.0});
  }
  FdsController controller(game, fields, fast_opts());

  sim::RunOptions options;
  options.max_rounds = 800;
  const auto result = sim::run_mean_field(game, controller,
                                          game.uniform_state(),
                                          {0.2, 0.2, 0.2, 0.2},
                                          &controller.desired(), options);
  EXPECT_TRUE(result.converged) << "rounds=" << result.rounds;
  for (RegionId i = 0; i < 4; ++i) {
    EXPECT_GE(result.final_state.p[i][0], 0.85) << "region " << i;
  }
}

TEST(Fds, FixedBaselineMissesTargetFdsHits) {
  // The Fig. 10 comparison in miniature: a high-sharing desired field is
  // unreachable under x = 0.2 but FDS finds the ratio that reaches it.
  const auto game = make_single_region_game(/*beta=*/4.0);
  DesiredFields fields(1, 8);
  fields.set_target(0, 0, Interval{0.85, 1.0});

  FixedRatioController fixed(0.2);
  sim::RunOptions options;
  options.max_rounds = 400;
  const auto fixed_result = sim::run_mean_field(
      game, fixed, game.uniform_state(), {0.2}, &fields, options);
  EXPECT_FALSE(fixed_result.converged);

  FdsController fds(game, fields, fast_opts());
  const auto fds_result = sim::run_mean_field(
      game, fds, game.uniform_state(), {0.2}, &fds.desired(), options);
  EXPECT_TRUE(fds_result.converged);
  EXPECT_LT(fds_result.rounds, fixed_result.rounds);
}

// Random-instance sweep: for random betas and reference ratios, FDS from a
// random cold start should reach the attainable field derived from the
// reference equilibrium (the §V-C methodology run many times). Convergence
// is not guaranteed instance-by-instance — a cold start can enter a
// competing monoculture's basin before the Lambda-limited ratio catches up
// (the paper gives no convergence proof either) — so the property is a
// high success rate across instances.
TEST(Fds, ReachesAttainableFieldOnMostRandomInstances) {
  int successes = 0;
  const int trials = 25;
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) + 1);
    const double beta = rng.uniform(1.5, 4.5);
    const auto game = make_single_region_game(beta);
    const double x_ref = rng.uniform(0.1, 0.95);

    GameState eq = game.uniform_state();
    {
      const std::vector<double> x(1, x_ref);
      for (int t = 0; t < 4000; ++t) game.replicator_step(eq, x);
    }
    const double eps = 0.05;
    DesiredFields fields(1, 8);
    for (DecisionId k = 0; k < 8; ++k) {
      fields.set_target(0, k,
                        Interval{std::max(0.0, eq.p[0][k] - eps),
                                 std::min(1.0, eq.p[0][k] + eps)});
    }
    FdsController controller(game, fields, fast_opts());
    sim::RunOptions options;
    options.max_rounds = 3000;
    options.record_trajectory = false;
    const auto run = sim::run_mean_field(game, controller,
                                         game.uniform_state(),
                                         {rng.uniform(0.0, 1.0)}, &fields,
                                         options);
    if (run.converged) ++successes;
  }
  EXPECT_GE(successes, 22) << successes << "/" << trials << " converged";
}

// Solver-correctness sweep: every ratio inside the computed admissible set
// must actually place the (region, decision) pair in a case whose flow
// serves the target, per the advantage-line classifier; every ratio
// clearly outside must not. This validates the affine-inequality interval
// solver against the taxonomy it encodes.
class FeasibleSetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeasibleSetSweep, MembersInduceServingCases) {
  Rng rng(GetParam());
  const double beta = rng.uniform(1.0, 4.0);
  const auto game = make_single_region_game(beta);
  const auto p = core::testing::random_simplex(rng, 8);
  const GameState state = game.broadcast_state(p);
  const auto k = static_cast<DecisionId>(rng.uniform_int(0, 7));
  const bool want_one = rng.bernoulli(0.5);

  DesiredFields fields(1, 8);
  fields.set_target(0, k,
                    want_one ? Interval{0.9, 1.0} : Interval{0.0, 0.1});
  FdsController controller(game, fields);
  const std::vector<double> x_prev = {rng.uniform()};
  const auto set = controller.feasible_set(state, x_prev, 0);

  for (int i = 0; i <= 40; ++i) {
    const double x = i / 40.0;
    if (!set.contains(x, 1e-9) && set.contains(x, 1e-3)) continue;  // edge
    const std::vector<double> probe = {x};
    const AffineRate s = affine_rate(game, state, probe, 0, k);
    const CaseInfo info = classify_case(s);
    // The flow "serves" the target when the predicted limit from the
    // current proportion lies on the target side.
    const double limit = info.limit(p[k]);
    const bool serves = want_one ? limit >= 1.0 - 1e-9 : limit <= 1e-9;
    if (set.contains(x, 1e-9)) {
      EXPECT_TRUE(serves) << "x=" << x << " k=" << static_cast<int>(k)
                          << " want_one=" << want_one
                          << " case=" << static_cast<int>(info.kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FeasibleSetSweep,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(Fds, ReachesAttainableFieldOnMostRandomChainInstances) {
  // Multi-region analogue of the single-region sweep: random chain games
  // (coupled through gamma) with fields derived from a reference-ratio
  // equilibrium; FDS from a cold start should succeed on most instances.
  // Coupled regions need a faster ratio ramp than a single region (the
  // ablation bench's A1 finding): at Lambda = 0.1 three of these ten
  // instances lose the basin race, at 0.25 all ten converge.
  int successes = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(100 + static_cast<std::uint64_t>(trial));
    const double beta_lo = rng.uniform(1.8, 3.0);
    const double beta_hi = beta_lo + rng.uniform(0.2, 1.5);
    const double gamma_nbr = rng.uniform(0.05, 0.4);
    const auto game = make_chain_game(3, beta_lo, beta_hi, 1.0, gamma_nbr);
    const double x_ref = rng.uniform(0.3, 0.9);

    GameState eq = game.uniform_state();
    {
      const std::vector<double> x(3, x_ref);
      for (int t = 0; t < 4000; ++t) game.replicator_step(eq, x);
    }
    DesiredFields fields(3, 8);
    for (RegionId i = 0; i < 3; ++i) {
      for (DecisionId k = 0; k < 8; ++k) {
        fields.set_target(i, k,
                          Interval{std::max(0.0, eq.p[i][k] - 0.05),
                                   std::min(1.0, eq.p[i][k] + 0.05)});
      }
    }
    auto opts = fast_opts();
    opts.max_step = 0.25;
    FdsController controller(game, fields, opts);
    sim::RunOptions options;
    options.max_rounds = 3000;
    options.record_trajectory = false;
    const auto run = sim::run_mean_field(game, controller,
                                         game.uniform_state(),
                                         {0.2, 0.2, 0.2}, &fields, options);
    if (run.converged) ++successes;
  }
  EXPECT_GE(successes, 9) << successes << "/" << trials << " converged";
}

TEST(Fds, GaussSeidelSweepAlsoConverges) {
  const auto game = make_chain_game(4, /*beta_lo=*/3.5, /*beta_hi=*/4.5);
  DesiredFields fields(4, 8);
  for (RegionId i = 0; i < 4; ++i) {
    fields.set_target(i, 0, Interval{0.85, 1.0});
  }
  auto opts = fast_opts();
  opts.sweep = FdsOptions::Sweep::kGaussSeidel;
  FdsController controller(game, fields, opts);
  sim::RunOptions options;
  options.max_rounds = 800;
  const auto result = sim::run_mean_field(game, controller,
                                          game.uniform_state(),
                                          {0.2, 0.2, 0.2, 0.2},
                                          &controller.desired(), options);
  EXPECT_TRUE(result.converged) << "rounds=" << result.rounds;
}

TEST(Fds, RejectsMismatchedDesiredFields) {
  const auto game = make_single_region_game();
  const DesiredFields wrong_regions(2, 8);
  EXPECT_THROW(FdsController(game, wrong_regions), ContractViolation);
  const DesiredFields wrong_decisions(1, 4);
  EXPECT_THROW(FdsController(game, wrong_decisions), ContractViolation);
}

}  // namespace
}  // namespace avcp::core
