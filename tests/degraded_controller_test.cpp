// DegradedController: graceful degradation of the cloud control plane under
// report loss and edge-server outages — Lambda/range invariants, staleness
// budget, fallback policies, and re-synchronization when reports resume.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/fds.h"
#include "faults/degraded_controller.h"
#include "faults/fault_model.h"
#include "test_support.h"

namespace avcp {
namespace {

using core::testing::make_chain_game;

/// A misbehaving inner controller: emits ratios far outside [0, 1]. The
/// wrapper must still satisfy the plant's invariants.
class HostileController final : public core::Controller {
 public:
  std::vector<double> next_x(const core::GameState& state,
                             const std::vector<double>&) override {
    std::vector<double> x(state.num_regions());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = (i % 2 == 0) ? 40.0 : -25.0;
    }
    return x;
  }
};

/// Records the per-region report rows the inner controller was handed and
/// returns x_prev unchanged (an identity controller).
class RecordingController final : public core::Controller {
 public:
  std::vector<double> next_x(const core::GameState& state,
                             const std::vector<double>& x_prev) override {
    seen.push_back(state.p);
    return x_prev;
  }

  std::vector<std::vector<std::vector<double>>> seen;
};

core::GameState state_with_p0(const core::MultiRegionGame& game, double p0) {
  auto state = game.uniform_state();
  const std::size_t k = game.num_decisions();
  for (auto& row : state.p) {
    row.assign(k, (1.0 - p0) / static_cast<double>(k - 1));
    row[0] = p0;
  }
  return state;
}

faults::FaultModel inert_model() { return faults::FaultModel({}); }

TEST(DegradedControllerTest, PassThroughWithFreshReports) {
  const auto game = make_chain_game(2);
  core::FixedRatioController inner(0.5);
  const auto model = inert_model();
  faults::DegradedOptions options;
  options.max_step = 0.05;
  faults::DegradedController wrapper(inner, model, options);

  const auto state = state_with_p0(game, 0.4);
  std::vector<double> x = {0.48, 0.52};
  x = wrapper.next_x(state, x);
  // Inner's target 0.5 is within one step of both ratios: exact delegation.
  EXPECT_DOUBLE_EQ(x[0], 0.5);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_FALSE(wrapper.degraded(0));
  EXPECT_FALSE(wrapper.degraded(1));
  EXPECT_EQ(wrapper.report_age(0), 0u);
  EXPECT_EQ(wrapper.round(), 1u);
  EXPECT_EQ(wrapper.counters().reports_lost, 0u);
}

TEST(DegradedControllerTest, ClampsHostileInnerToStepAndRange) {
  const auto game = make_chain_game(2);
  HostileController inner;
  const auto model = inert_model();
  faults::DegradedOptions options;
  options.max_step = 0.1;
  faults::DegradedController wrapper(inner, model, options);

  const auto state = state_with_p0(game, 0.4);
  std::vector<double> x = {0.5, 0.05};
  const auto next = wrapper.next_x(state, x);
  EXPECT_DOUBLE_EQ(next[0], 0.6);   // +40 clamped to +max_step
  EXPECT_DOUBLE_EQ(next[1], 0.0);   // -25 clamped to -max_step, then [0, 1]
}

TEST(DegradedControllerTest, HoldUnderTotalReportLossNeverViolatesLambda) {
  const auto game = make_chain_game(3);
  faults::FaultParams fp;
  fp.report_loss_rate = 1.0;
  fp.seed = 21;
  const faults::FaultModel model(fp);

  HostileController inner;
  faults::DegradedOptions options;
  options.max_step = 0.07;
  options.staleness_budget = 0;
  faults::DegradedController wrapper(inner, model, options);

  std::vector<double> x = {0.3, 0.6, 0.9};
  const auto state = state_with_p0(game, 0.5);
  for (std::size_t t = 0; t < 50; ++t) {
    const auto prev = x;
    x = wrapper.next_x(state, x);
    ASSERT_EQ(x.size(), prev.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_GE(x[i], 0.0);
      EXPECT_LE(x[i], 1.0);
      EXPECT_LE(std::abs(x[i] - prev[i]), options.max_step + 1e-12);
      // kHold with every report lost: the ratio never moves at all.
      EXPECT_DOUBLE_EQ(x[i], prev[i]);
      EXPECT_TRUE(wrapper.degraded(i));
      EXPECT_EQ(wrapper.report_age(i), faults::DegradedController::kNever);
    }
  }
  EXPECT_EQ(wrapper.counters().reports_lost, 50u * game.num_regions());
}

TEST(DegradedControllerTest, DecayWalksToTargetWithoutOvershoot) {
  const auto game = make_chain_game(1);
  faults::FaultParams fp;
  fp.report_loss_rate = 1.0;
  const faults::FaultModel model(fp);

  HostileController inner;
  faults::DegradedOptions options;
  options.max_step = 0.5;
  options.fallback = faults::DegradedOptions::Fallback::kDecay;
  options.decay_target = 0.2;
  options.decay_step = 0.1;
  faults::DegradedController wrapper(inner, model, options);

  const auto state = state_with_p0(game, 0.5);
  std::vector<double> x = {0.65};
  const double expected[] = {0.55, 0.45, 0.35, 0.25, 0.2, 0.2, 0.2};
  for (const double e : expected) {
    x = wrapper.next_x(state, x);
    EXPECT_NEAR(x[0], e, 1e-12);
  }
}

TEST(DegradedControllerTest, DecayStepIsCappedByLambda) {
  const auto game = make_chain_game(1);
  faults::FaultParams fp;
  fp.report_loss_rate = 1.0;
  const faults::FaultModel model(fp);

  HostileController inner;
  faults::DegradedOptions options;
  options.max_step = 0.05;
  options.fallback = faults::DegradedOptions::Fallback::kDecay;
  options.decay_target = 0.0;
  options.decay_step = 0.3;  // would violate Lambda if applied raw
  faults::DegradedController wrapper(inner, model, options);

  const auto state = state_with_p0(game, 0.5);
  std::vector<double> x = {0.5};
  x = wrapper.next_x(state, x);
  EXPECT_NEAR(x[0], 0.45, 1e-12);
}

TEST(DegradedControllerTest, StalenessBudgetThenResync) {
  const auto game = make_chain_game(2);
  // Region 0's edge servers are down for rounds 1-3; region 1 stays up.
  faults::FaultParams fp;
  fp.outages.push_back(
      faults::OutageWindow{/*region=*/0, /*first_round=*/1, /*duration=*/3});
  const faults::FaultModel model(fp);

  RecordingController inner;
  faults::DegradedOptions options;
  options.staleness_budget = 1;
  options.max_step = 0.2;
  faults::DegradedController wrapper(inner, model, options);

  const auto fresh_a = state_with_p0(game, 0.3);
  const auto fresh_b = state_with_p0(game, 0.8);
  std::vector<double> x = {0.5, 0.5};

  // Round 0: both fresh.
  x = wrapper.next_x(fresh_a, x);
  EXPECT_FALSE(wrapper.degraded(0));
  EXPECT_EQ(wrapper.report_age(0), 0u);

  // Round 1: region 0 down, age 1 <= budget -> stale-but-usable.
  x = wrapper.next_x(fresh_b, x);
  EXPECT_FALSE(wrapper.degraded(0));
  EXPECT_EQ(wrapper.report_age(0), 1u);
  // The inner controller saw region 0's *held* round-0 report, and region
  // 1's fresh one.
  EXPECT_EQ(inner.seen.back()[0], fresh_a.p[0]);
  EXPECT_EQ(inner.seen.back()[1], fresh_b.p[1]);

  // Rounds 2-3: past the budget -> blind, ratio held.
  const double held = x[0];
  x = wrapper.next_x(fresh_b, x);
  EXPECT_TRUE(wrapper.degraded(0));
  EXPECT_FALSE(wrapper.degraded(1));
  EXPECT_DOUBLE_EQ(x[0], held);
  x = wrapper.next_x(fresh_b, x);
  EXPECT_TRUE(wrapper.degraded(0));
  EXPECT_EQ(wrapper.report_age(0), 3u);

  // Round 4: reports resume -> re-synchronized.
  x = wrapper.next_x(fresh_b, x);
  EXPECT_FALSE(wrapper.degraded(0));
  EXPECT_EQ(wrapper.report_age(0), 0u);
  EXPECT_EQ(inner.seen.back()[0], fresh_b.p[0]);
  // Region 0 lost its report in rounds 1, 2, 3.
  EXPECT_EQ(wrapper.counters().reports_lost, 3u);
}

TEST(DegradedControllerTest, WrappedFdsMatchesRawFdsWhenFaultFree) {
  const auto game = make_chain_game(3, /*beta_lo=*/4.0, /*beta_hi=*/4.0);
  core::DesiredFields fields(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.7, 1.0});
  }
  core::FdsOptions fds_options;
  fds_options.max_step = 0.1;
  core::FdsController raw(game, fields, fds_options);
  core::FdsController inner(game, fields, fds_options);
  const auto model = inert_model();
  faults::DegradedOptions options;
  options.max_step = fds_options.max_step;
  faults::DegradedController wrapped(inner, model, options);

  std::vector<double> x_raw(game.num_regions(), 0.5);
  std::vector<double> x_wrapped = x_raw;
  for (double p0 : {0.2, 0.35, 0.5, 0.62, 0.7}) {
    const auto state = state_with_p0(game, p0);
    x_raw = raw.next_x(state, x_raw);
    x_wrapped = wrapped.next_x(state, x_wrapped);
    ASSERT_EQ(x_raw, x_wrapped);
  }
}

/// Emits NaN for even regions and +inf for odd ones: a numerically broken
/// inner controller whose output must never reach the plant.
class NanController final : public core::Controller {
 public:
  std::vector<double> next_x(const core::GameState& state,
                             const std::vector<double>&) override {
    std::vector<double> x(state.num_regions());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = (i % 2 == 0) ? std::numeric_limits<double>::quiet_NaN()
                          : std::numeric_limits<double>::infinity();
    }
    return x;
  }
};

TEST(DegradedControllerTest, NonFiniteInnerRatiosHoldThePreviousRatio) {
  const auto game = make_chain_game(2);
  NanController inner;
  const auto model = inert_model();  // reports fresh: inner output is used
  faults::DegradedOptions options;
  options.max_step = 0.1;
  faults::DegradedController wrapper(inner, model, options);

  const auto state = state_with_p0(game, 0.4);
  std::vector<double> x = {0.3, 0.7};
  for (int t = 0; t < 5; ++t) {
    x = wrapper.next_x(state, x);
    ASSERT_TRUE(std::isfinite(x[0]));
    ASSERT_TRUE(std::isfinite(x[1]));
    EXPECT_DOUBLE_EQ(x[0], 0.3);  // NaN target -> no update
    EXPECT_DOUBLE_EQ(x[1], 0.7);  // inf target -> no update
  }
}

TEST(DegradedControllerTest, ZeroStalenessBudgetDegradesOnFirstMiss) {
  const auto game = make_chain_game(1);
  // Region 0 down exactly in round 1.
  faults::FaultParams fp;
  fp.outages.push_back(
      faults::OutageWindow{/*region=*/0, /*first_round=*/1, /*duration=*/1});
  const faults::FaultModel model(fp);

  core::FixedRatioController inner(0.9);
  faults::DegradedOptions options;
  options.staleness_budget = 0;  // stale == blind: no grace round at all
  options.max_step = 0.05;
  faults::DegradedController wrapper(inner, model, options);

  const auto state = state_with_p0(game, 0.5);
  std::vector<double> x = {0.5};
  x = wrapper.next_x(state, x);  // round 0: fresh
  EXPECT_FALSE(wrapper.degraded(0));
  EXPECT_DOUBLE_EQ(x[0], 0.55);
  x = wrapper.next_x(state, x);  // round 1: one miss -> immediately blind
  EXPECT_TRUE(wrapper.degraded(0));
  EXPECT_EQ(wrapper.report_age(0), 1u);
  EXPECT_DOUBLE_EQ(x[0], 0.55);  // kHold
  x = wrapper.next_x(state, x);  // round 2: resumed
  EXPECT_FALSE(wrapper.degraded(0));
  EXPECT_DOUBLE_EQ(x[0], 0.6);
}

TEST(DegradedControllerTest, BlindStartHoldsUntilTheFirstReportArrives) {
  const auto game = make_chain_game(2);
  // Region 0 never reported yet: down for rounds 0-2; region 1 always up.
  faults::FaultParams fp;
  fp.outages.push_back(
      faults::OutageWindow{/*region=*/0, /*first_round=*/0, /*duration=*/3});
  const faults::FaultModel model(fp);

  RecordingController inner;
  faults::DegradedOptions options;
  options.staleness_budget = 10;  // generous budget must not excuse kNever
  faults::DegradedController wrapper(inner, model, options);

  const auto fresh = state_with_p0(game, 0.8);
  std::vector<double> x = {0.4, 0.6};
  const std::size_t k = game.num_decisions();
  for (std::size_t t = 0; t < 3; ++t) {
    x = wrapper.next_x(fresh, x);
    // Never-reported region: blind regardless of the budget, ratio held,
    // and the inner controller sees the uniform prior, not garbage.
    EXPECT_TRUE(wrapper.degraded(0));
    EXPECT_EQ(wrapper.report_age(0), faults::DegradedController::kNever);
    EXPECT_DOUBLE_EQ(x[0], 0.4);
    EXPECT_FALSE(wrapper.degraded(1));
    for (core::DecisionId d = 0; d < k; ++d) {
      EXPECT_DOUBLE_EQ(inner.seen.back()[0][d],
                       1.0 / static_cast<double>(k));
    }
    EXPECT_EQ(inner.seen.back()[1], fresh.p[1]);
  }
  // First real report flips the region to fresh.
  x = wrapper.next_x(fresh, x);
  EXPECT_FALSE(wrapper.degraded(0));
  EXPECT_EQ(wrapper.report_age(0), 0u);
  EXPECT_EQ(inner.seen.back()[0], fresh.p[0]);
}

TEST(DegradedControllerTest, ResetForgetsHeldReports) {
  const auto game = make_chain_game(2);
  core::FixedRatioController inner(0.5);
  const auto model = inert_model();
  faults::DegradedController wrapper(inner, model, {});

  std::vector<double> x = {0.5, 0.5};
  wrapper.next_x(state_with_p0(game, 0.4), x);
  EXPECT_EQ(wrapper.round(), 1u);
  wrapper.reset();
  EXPECT_EQ(wrapper.round(), 0u);
  wrapper.next_x(state_with_p0(game, 0.4), x);
  EXPECT_EQ(wrapper.round(), 1u);
  EXPECT_EQ(wrapper.report_age(0), 0u);
}

}  // namespace
}  // namespace avcp
