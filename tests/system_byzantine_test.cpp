// Plant-level Byzantine tests: the bit-identity contract of the inert
// configuration, the vulnerable trusting baseline, and the robust pipeline
// steering + detection under attack.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <vector>

#include "byzantine/adaptive_adversary.h"
#include "byzantine/adversary_model.h"
#include "byzantine/report_pipeline.h"
#include "core/fds.h"
#include "sim/agent_sim.h"
#include "sim/metrics.h"
#include "system/system.h"
#include "test_support.h"

namespace avcp::system {
namespace {

using core::testing::make_chain_game;
using core::testing::make_single_region_game;

SystemParams small_params() {
  SystemParams params;
  params.vehicles_per_region = 60;
  params.seed = 7;
  return params;
}

core::DesiredFields share_band_fields(std::size_t regions, double lo,
                                      double hi) {
  core::DesiredFields fields(regions, 8);
  for (core::RegionId i = 0; i < regions; ++i) {
    fields.set_target(i, 0, Interval{lo, hi});
  }
  return fields;
}

void expect_reports_bit_identical(const RoundReport& a, const RoundReport& b,
                                  std::size_t round) {
  EXPECT_EQ(a.x, b.x) << "round " << round;
  EXPECT_EQ(a.mean_utility, b.mean_utility) << "round " << round;
  EXPECT_EQ(a.mean_privacy, b.mean_privacy) << "round " << round;
  EXPECT_EQ(a.exposed_privacy, b.exposed_privacy) << "round " << round;
  EXPECT_EQ(a.state.p, b.state.p) << "round " << round;
  EXPECT_EQ(a.faults.uploads_lost, b.faults.uploads_lost);
  EXPECT_EQ(a.faults.deliveries_lost, b.faults.deliveries_lost);
}

TEST(SystemByzantine, InertAdversaryAndPassthroughPipelineAreBitIdentical) {
  // The contract from system.h: an inert adversary plus a passthrough,
  // non-enforcing pipeline must leave the full round series bit-identical
  // to the clean two-argument construction.
  const auto game = make_chain_game(3);
  const auto params = small_params();

  CooperativePerceptionSystem clean(game, params);
  clean.init_from(game.uniform_state());

  const byzantine::AdversaryModel inert{byzantine::AdversaryParams{}};
  ASSERT_FALSE(inert.active());
  byzantine::PipelineOptions popts;  // mean mode, no rejection
  popts.enforce_quarantine = false;
  popts.telemetry_weight = 0.0;
  popts.behavior_weight = 0.0;
  ASSERT_TRUE(popts.aggregator.passthrough());
  byzantine::ReportPipeline pipeline(3, 8, params.vehicles_per_region, popts);
  CooperativePerceptionSystem routed(game, params, nullptr, &inert, &pipeline);
  routed.init_from(game.uniform_state());

  const auto fields = share_band_fields(3, 0.7, 1.0);
  core::FdsOptions fopts;
  fopts.max_step = 0.15;
  core::FdsController clean_ctrl(game, fields, fopts);
  core::FdsController routed_ctrl(game, fields, fopts);

  for (std::size_t round = 0; round < 30; ++round) {
    const auto a = clean.run_round(clean_ctrl);
    const auto b = routed.run_round(routed_ctrl);
    expect_reports_bit_identical(a, b, round);
    EXPECT_FALSE(a.byzantine.active);
    EXPECT_TRUE(b.byzantine.active);
    EXPECT_EQ(b.byzantine.total_quarantined, 0u);
    // The routed observation is the exact pre-revision empirical state.
    ASSERT_EQ(b.byzantine.observed.p.size(), 3u);
    for (core::RegionId i = 0; i < 3; ++i) {
      EXPECT_EQ(b.byzantine.reports_used[i], params.vehicles_per_region);
      EXPECT_EQ(b.byzantine.outliers_rejected[i], 0u);
    }
  }
}

TEST(SystemByzantine, ZeroAttackersThroughRobustPipelineStayBitIdentical) {
  // The second inert configuration of the acceptance contract: the fully
  // armed defence (median telemetry, outlier rejection, enforcement on)
  // over an attacker-free fleet must not perturb the plant — honest
  // reports are exact, so nothing is rejected and nobody is quarantined.
  const auto game = make_chain_game(3);
  const auto params = small_params();

  CooperativePerceptionSystem clean(game, params);
  clean.init_from(game.uniform_state());

  byzantine::AdversaryParams aparams;  // attacker_fraction = 0
  const byzantine::AdversaryModel none(aparams);
  byzantine::PipelineOptions popts;
  popts.aggregator.mode = byzantine::AggregationMode::kMedian;
  popts.aggregator.reject_outliers = true;
  byzantine::ReportPipeline pipeline(3, 8, params.vehicles_per_region, popts);
  CooperativePerceptionSystem guarded(game, params, nullptr, &none, &pipeline);
  guarded.init_from(game.uniform_state());

  const auto fields = share_band_fields(3, 0.7, 1.0);
  core::FdsOptions fopts;
  fopts.max_step = 0.15;
  core::FdsController clean_ctrl(game, fields, fopts);
  core::FdsController guarded_ctrl(game, fields, fopts);

  for (std::size_t round = 0; round < 60; ++round) {
    const auto a = clean.run_round(clean_ctrl);
    const auto b = guarded.run_round(guarded_ctrl);
    expect_reports_bit_identical(a, b, round);
    EXPECT_EQ(b.byzantine.total_quarantined, 0u) << "round " << round;
  }
}

TEST(SystemByzantine, TrustingCloudSeesTheInflatedClaims) {
  // Vulnerable baseline: with no pipeline the cloud folds the claims with
  // a plain mean, so 30% inflate-sharing free-riders lift the observed
  // share-everything proportion well above the honest fleet's truth.
  const auto game = make_single_region_game(/*beta=*/2.0);
  byzantine::AdversaryParams aparams;
  aparams.attacker_fraction = 0.3;
  aparams.strategy = byzantine::AttackStrategy::kInflateSharing;
  aparams.seed = 13;
  const byzantine::AdversaryModel adversary(aparams);

  CooperativePerceptionSystem sys(game, small_params(), nullptr, &adversary);
  sys.init_from(game.uniform_state());
  core::FixedRatioController controller(0.5);
  const auto report = sys.run_round(controller);

  const auto honest = sys.honest_state();
  EXPECT_GT(report.byzantine.observed.p[0][0], honest.p[0][0] + 0.1);
}

TEST(SystemByzantine, RobustPipelineQuarantinesFreeRidersAndHoldsSteering) {
  // The headline acceptance scenario: 20% inflate-sharing free-riders
  // against the full closed loop — FDS holding the share-everything
  // proportion above a density-weighted floor, the floors themselves
  // recomputed every round from the pipeline's aggregated telemetry
  // (set_desired), exactly like the production control plane. At this beta
  // the imitation plant coordinates, so the clean twin settles at the
  // fixed point (p(P1) = 1, ratios held); the robust pipeline must
  // (a) quarantine the persistent attackers with >= 0.9 precision and
  // recall via the behavioural zero-upload audit (their claims are
  // plausible and their telemetry is honest, so only behaviour can betray
  // them), and (b) keep the applied ratio series within 0.05 of the clean
  // twin's in the tail — the attack must leave no imprint on the loop.
  const auto game = make_chain_game(3, /*beta_lo=*/4.0, /*beta_hi=*/4.0);
  auto params = small_params();
  params.vehicles_per_region = 100;
  params.seed = 11;

  // The clean twin routes through its own fully armed pipeline (an
  // attacker-free fleet, so bit-identical to the bare plant per the test
  // above) because the telemetry feedback loop needs aggregated densities.
  byzantine::PipelineOptions popts;
  popts.aggregator.mode = byzantine::AggregationMode::kMedian;
  popts.aggregator.reject_outliers = true;
  byzantine::ReportPipeline clean_pipe(3, 8, params.vehicles_per_region,
                                       popts);
  CooperativePerceptionSystem clean(game, params, nullptr, nullptr,
                                    &clean_pipe);
  clean.init_from(game.uniform_state());

  byzantine::AdversaryParams aparams;
  aparams.attacker_fraction = 0.2;
  aparams.strategy = byzantine::AttackStrategy::kInflateSharing;
  aparams.seed = 13;
  const byzantine::AdversaryModel adversary(aparams);
  byzantine::ReportPipeline pipeline(3, 8, params.vehicles_per_region, popts);
  CooperativePerceptionSystem attacked(game, params, nullptr, &adversary,
                                       &pipeline);
  attacked.init_from(game.uniform_state());

  core::FdsOptions fopts;
  fopts.max_step = 0.15;
  const auto initial = share_band_fields(3, 0.7, 1.0);
  core::FdsController clean_ctrl(game, initial, fopts);
  core::FdsController attacked_ctrl(game, initial, fopts);

  const std::size_t rounds = 120;
  double tail_error = 0.0;
  std::size_t tail = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto a = clean.run_round(clean_ctrl);
    const auto b = attacked.run_round(attacked_ctrl);
    // Close the telemetry loop: next round's floors from this round's
    // aggregated densities (honest density reports are exact, so the
    // robust aggregate keeps both twins' fields at the same flat floor).
    clean_ctrl.set_desired(byzantine::density_weighted_fields(
        3, 8, a.byzantine.density, /*base_floor=*/0.7, /*slope=*/0.6));
    attacked_ctrl.set_desired(byzantine::density_weighted_fields(
        3, 8, b.byzantine.density, /*base_floor=*/0.7, /*slope=*/0.6));
    if (round + 30 >= rounds) {
      for (core::RegionId i = 0; i < 3; ++i) {
        tail_error += std::abs(a.x[i] - b.x[i]) / 3.0;
      }
      ++tail;
    }
  }
  EXPECT_LT(tail_error / static_cast<double>(tail), 0.05);

  std::vector<std::uint8_t> truth;
  std::vector<std::uint8_t> flagged;
  for (core::RegionId i = 0; i < 3; ++i) {
    for (std::size_t v = 0; v < params.vehicles_per_region; ++v) {
      truth.push_back(adversary.is_attacker(i, v) ? 1 : 0);
      flagged.push_back(pipeline.reputation().quarantined(i, v) ? 1 : 0);
    }
  }
  const auto stats = sim::detection_stats(truth, flagged);
  EXPECT_GE(stats.precision, 0.9) << stats.false_positives << " FPs";
  EXPECT_GE(stats.recall, 0.9) << stats.false_negatives << " FNs";

  // Both fleets actually sit at the coordinated fixed point the controller
  // was holding them to, free-riders notwithstanding.
  EXPECT_GT(clean.empirical_state().p[0][0], 0.8);
  EXPECT_GT(attacked.honest_state().p[0][0], 0.8);
}

TEST(SystemByzantine, DensityPoisonersAreRejectedAndQuarantined) {
  const auto game = make_chain_game(3);
  auto params = small_params();
  params.seed = 23;

  byzantine::AdversaryParams aparams;
  aparams.attacker_fraction = 0.2;
  aparams.strategy = byzantine::AttackStrategy::kDensityPoison;
  aparams.seed = 29;
  const byzantine::AdversaryModel adversary(aparams);
  byzantine::PipelineOptions popts;
  popts.aggregator.mode = byzantine::AggregationMode::kMedian;
  popts.aggregator.reject_outliers = true;
  byzantine::ReportPipeline pipeline(3, 8, params.vehicles_per_region, popts);
  CooperativePerceptionSystem sys(game, params, nullptr, &adversary, &pipeline);
  sys.init_from(game.uniform_state());

  core::FixedRatioController controller(0.5);
  const double fleet = static_cast<double>(params.vehicles_per_region);
  bool saw_rejection = false;
  for (std::size_t round = 0; round < 30; ++round) {
    const auto report = sys.run_round(controller);
    for (core::RegionId i = 0; i < 3; ++i) {
      // The aggregated density never budges from the honest headcount:
      // liars are either MAD-rejected this round or already quarantined.
      EXPECT_DOUBLE_EQ(report.byzantine.density[i], fleet) << "round " << round;
      saw_rejection |= report.byzantine.outliers_rejected[i] > 0;
    }
  }
  EXPECT_TRUE(saw_rejection);

  std::vector<std::uint8_t> truth;
  std::vector<std::uint8_t> flagged;
  for (core::RegionId i = 0; i < 3; ++i) {
    for (std::size_t v = 0; v < params.vehicles_per_region; ++v) {
      truth.push_back(adversary.is_attacker(i, v) ? 1 : 0);
      flagged.push_back(pipeline.reputation().quarantined(i, v) ? 1 : 0);
    }
  }
  const auto stats = sim::detection_stats(truth, flagged);
  EXPECT_GE(stats.precision, 0.9);
  EXPECT_GE(stats.recall, 0.9);
}

TEST(SystemByzantine, InertAdaptiveAdversaryKeepsTheRoundSeriesBitIdentical) {
  // The adaptive overload's inert contract: wiring an AdaptiveAdversary
  // whose params().any() is false must leave the full round series
  // bit-identical to the same pipeline without it — the acceptance
  // zero-adversary anchor for the closed-loop layer.
  const auto game = make_chain_game(3);
  const auto params = small_params();

  byzantine::PipelineOptions popts;
  popts.aggregator.mode = byzantine::AggregationMode::kMedian;
  popts.aggregator.reject_outliers = true;

  byzantine::ReportPipeline plain_pipe(3, 8, params.vehicles_per_region,
                                       popts);
  CooperativePerceptionSystem plain(game, params, nullptr, nullptr,
                                    &plain_pipe);
  plain.init_from(game.uniform_state());

  byzantine::AdaptiveAdversary inert(3, params.vehicles_per_region,
                                     byzantine::AdaptiveAdversaryParams{});
  ASSERT_FALSE(inert.active());
  byzantine::ReportPipeline wired_pipe(3, 8, params.vehicles_per_region,
                                       popts);
  CooperativePerceptionSystem wired(game, params, nullptr, &wired_pipe,
                                    &inert);
  wired.init_from(game.uniform_state());

  const auto fields = share_band_fields(3, 0.7, 1.0);
  core::FdsOptions fopts;
  fopts.max_step = 0.15;
  core::FdsController plain_ctrl(game, fields, fopts);
  core::FdsController wired_ctrl(game, fields, fopts);
  for (std::size_t round = 0; round < 30; ++round) {
    const auto a = plain.run_round(plain_ctrl);
    const auto b = wired.run_round(wired_ctrl);
    expect_reports_bit_identical(a, b, round);
    EXPECT_EQ(b.byzantine.adaptive_dormant, 0u);
  }
}

TEST(SystemByzantine, AdaptiveRunIsBitIdenticalAcrossThreadCounts) {
  // The determinism leg of the acceptance criteria: the full closed loop —
  // adaptive probing attackers, trust-armed pipeline, telemetry-driven
  // floors — must produce bit-identical trajectories at 1, 2, and 8 worker
  // lanes. The observation feedback runs serially on the round thread in
  // (region, vehicle) order, so lane count must be a pure throughput knob.
  const auto game = make_chain_game(3, /*beta_lo=*/1.5, /*beta_hi=*/1.5);
  byzantine::AdaptiveAdversaryParams aparams;
  aparams.attacker_fraction = 0.25;
  aparams.policy = byzantine::AdaptivePolicy::kThresholdProbe;
  aparams.seed = 17;

  byzantine::PipelineOptions popts;
  popts.aggregator.mode = byzantine::AggregationMode::kMedian;
  popts.aggregator.reject_outliers = true;
  popts.trust.enabled = true;

  std::vector<std::vector<double>> reference_x;
  std::vector<std::vector<std::vector<double>>> reference_p;
  for (const std::size_t threads : {1ul, 2ul, 8ul}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    auto params = small_params();
    params.vehicles_per_region = 40;
    params.num_threads = threads;
    byzantine::AdaptiveAdversary adaptive(3, params.vehicles_per_region,
                                          aparams);
    byzantine::ReportPipeline pipeline(3, 8, params.vehicles_per_region,
                                       popts);
    CooperativePerceptionSystem sys(game, params, nullptr, &pipeline,
                                    &adaptive);
    sys.init_from(game.uniform_state());
    core::FdsOptions fopts;
    fopts.max_step = 0.15;
    core::FdsController ctrl(game, share_band_fields(3, 0.7, 1.0), fopts);

    std::vector<std::vector<double>> xs;
    std::vector<std::vector<std::vector<double>>> ps;
    for (std::size_t round = 0; round < 40; ++round) {
      const auto report = sys.run_round(ctrl);
      ctrl.set_desired(byzantine::density_weighted_fields(
          3, 8, report.byzantine.density, /*base_floor=*/0.7, /*slope=*/0.6));
      xs.push_back(report.x);
      ps.push_back(report.state.p);
    }
    if (reference_x.empty()) {
      reference_x = std::move(xs);
      reference_p = std::move(ps);
    } else {
      EXPECT_EQ(xs, reference_x);  // exact: bit-identical, not approximately
      EXPECT_EQ(ps, reference_p);
    }
  }
}

TEST(SystemByzantine, AgentSimReportsFalsifiedClaims) {
  // The lightweight simulator sees the same adversary: attackers hold
  // their decisions (never revise) and the trusting reported_state shows
  // their share-everything claims instead of the truth.
  const auto game = make_single_region_game(/*beta=*/2.0);
  byzantine::AdversaryParams aparams;
  aparams.attacker_fraction = 0.25;
  aparams.strategy = byzantine::AttackStrategy::kInflateSharing;
  aparams.seed = 41;
  const byzantine::AdversaryModel adversary(aparams);

  sim::AgentSimParams params;
  params.vehicles_per_region = 400;
  params.seed = 17;
  sim::AgentBasedSim simulator(game, params, nullptr, &adversary);
  simulator.init_from(game.uniform_state());
  const std::vector<double> x = {0.0};  // drives honest vehicles off P1
  for (std::size_t t = 0; t < 60; ++t) simulator.step(x);

  const auto truth = simulator.empirical_state();
  const auto reported = simulator.reported_state();
  EXPECT_GT(reported.p[0][0], truth.p[0][0] + 0.1);
}

}  // namespace
}  // namespace avcp::system
