#include "roadnet/betweenness.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "roadnet/builders.h"

namespace avcp::roadnet {
namespace {

/// Brute-force oracle: enumerates every shortest path (by hops) of every
/// ordered pair via DFS over the BFS predecessor DAG, splitting one unit of
/// pair weight equally across the pair's shortest paths. Matches Brandes'
/// definition exactly on small graphs.
std::vector<double> brute_force_betweenness(const RoadGraph& g,
                                            bool normalize) {
  const std::size_t n = g.num_intersections();
  std::vector<double> centrality(g.num_segments(), 0.0);

  for (NodeId s = 0; s < n; ++s) {
    // BFS for distances and predecessor segments.
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    std::vector<std::vector<Hop>> preds(n);
    std::queue<NodeId> frontier;
    dist[s] = 0.0;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (const Hop& hop : g.neighbors(v)) {
        if (dist[hop.node] == std::numeric_limits<double>::infinity()) {
          dist[hop.node] = dist[v] + 1.0;
          frontier.push(hop.node);
        }
        if (dist[hop.node] == dist[v] + 1.0) {
          preds[hop.node].push_back(Hop{hop.segment, v});
        }
      }
    }
    for (NodeId t = 0; t < n; ++t) {
      if (t == s || dist[t] == std::numeric_limits<double>::infinity()) {
        continue;
      }
      // Enumerate all shortest s->t paths.
      std::vector<std::vector<SegmentId>> paths;
      std::vector<SegmentId> current;
      const std::function<void(NodeId)> walk = [&](NodeId v) {
        if (v == s) {
          paths.push_back(current);
          return;
        }
        for (const Hop& pred : preds[v]) {
          current.push_back(pred.segment);
          walk(pred.node);
          current.pop_back();
        }
      };
      walk(t);
      const double share = 1.0 / static_cast<double>(paths.size());
      for (const auto& path : paths) {
        for (const SegmentId seg : path) centrality[seg] += share;
      }
    }
  }
  double norm = 2.0;  // ordered pairs counted twice
  if (normalize && n > 2) {
    norm *= static_cast<double>((n - 1) * (n - 2));
  }
  for (double& c : centrality) c /= norm;
  return centrality;
}

TEST(Betweenness, LineGraphClosedForm) {
  const std::uint32_t n = 6;
  const RoadGraph g = make_line(n);
  const auto bc = segment_betweenness(g);
  ASSERT_EQ(bc.size(), n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double expected = static_cast<double>((i + 1) * (n - 1 - i)) /
                            static_cast<double>((n - 1) * (n - 2));
    EXPECT_NEAR(bc[i], expected, 1e-12) << "edge " << i;
  }
}

TEST(Betweenness, MiddleOfLineIsMostCentral) {
  const RoadGraph g = make_line(9);
  const auto bc = segment_betweenness(g);
  for (std::size_t i = 0; i + 1 < bc.size(); ++i) {
    if (i < bc.size() / 2) {
      EXPECT_LE(bc[i], bc[i + 1]);
    } else {
      EXPECT_GE(bc[i], bc[i + 1]);
    }
  }
}

TEST(Betweenness, RingIsUniform) {
  const RoadGraph g = make_ring(8);
  const auto bc = segment_betweenness(g);
  for (std::size_t i = 1; i < bc.size(); ++i) {
    EXPECT_NEAR(bc[i], bc[0], 1e-12);
  }
  EXPECT_GT(bc[0], 0.0);
}

TEST(Betweenness, MatchesBruteForceOnGrid) {
  const RoadGraph g = make_grid(3, 3);
  const auto fast = segment_betweenness(g);
  const auto oracle = brute_force_betweenness(g, /*normalize=*/true);
  ASSERT_EQ(fast.size(), oracle.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], oracle[i], 1e-9) << "segment " << i;
  }
}

TEST(Betweenness, MatchesBruteForceUnnormalized) {
  const RoadGraph g = make_grid(2, 4);
  BetweennessOptions opts;
  opts.normalize = false;
  const auto fast = segment_betweenness(g, opts);
  const auto oracle = brute_force_betweenness(g, /*normalize=*/false);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], oracle[i], 1e-9) << "segment " << i;
  }
}

// Sweep over procedurally-built cities: Brandes must agree with the oracle
// for each seed (structure varies with pruning).
class BetweennessCitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BetweennessCitySweep, MatchesBruteForceOnPrunedCity) {
  CityParams params;
  params.rows = 4;
  params.cols = 4;
  params.arterial_period = 3;
  params.collector_period = 2;
  params.seed = GetParam();
  const RoadGraph g = build_city(params);
  const auto fast = segment_betweenness(g);
  const auto oracle = brute_force_betweenness(g, /*normalize=*/true);
  ASSERT_EQ(fast.size(), oracle.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], oracle[i], 1e-9) << "segment " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BetweennessCitySweep,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Betweenness, WeightedMetricChangesRanking) {
  // Two routes between the same endpoints: a short slow local detour and a
  // long fast arterial. Hop metric favours the direct edge; travel time can
  // favour the arterial chain.
  RoadGraph g;
  const NodeId a = g.add_intersection(PointM{0.0, 0.0});
  const NodeId b = g.add_intersection(PointM{1000.0, 0.0});
  const NodeId m = g.add_intersection(PointM{500.0, 200.0});
  // Direct local edge: 1000 m at 2 m/s -> 500 s.
  const SegmentId direct = g.add_segment(a, b, RoadClass::kLocal, 2.0);
  // Two-hop arterial: ~1077 m at 30 m/s -> ~36 s.
  g.add_segment(a, m, RoadClass::kArterial, 30.0);
  g.add_segment(m, b, RoadClass::kArterial, 30.0);
  g.finalize();

  BetweennessOptions hops;
  hops.metric = PathMetric::kHops;
  hops.normalize = false;
  const auto bc_hops = segment_betweenness(g, hops);

  BetweennessOptions time;
  time.metric = PathMetric::kTravelTime;
  time.normalize = false;
  const auto bc_time = segment_betweenness(g, time);

  // Under hops the direct edge carries the a-b pair; under travel time it
  // carries nothing.
  EXPECT_GT(bc_hops[direct], 0.0);
  EXPECT_NEAR(bc_time[direct], 0.0, 1e-12);
}

TEST(Betweenness, SampledApproximatesExact) {
  CityParams params;
  params.rows = 8;
  params.cols = 8;
  params.seed = 3;
  const RoadGraph g = build_city(params);
  const auto exact = segment_betweenness(g);
  Rng rng(17);
  const auto sampled =
      sampled_segment_betweenness(g, g.num_intersections() / 2, rng);
  ASSERT_EQ(exact.size(), sampled.size());
  // Average absolute error should be small relative to the max value.
  double max_exact = 0.0;
  double total_err = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    max_exact = std::max(max_exact, exact[i]);
    total_err += std::abs(exact[i] - sampled[i]);
  }
  EXPECT_LT(total_err / static_cast<double>(exact.size()), 0.25 * max_exact);
}

// Sampling-error sweep: the sampled estimator's mean absolute error decays
// as the number of BFS roots grows.
class SampledConvergenceSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SampledConvergenceSweep, ErrorShrinksWithMoreSources) {
  CityParams params;
  params.rows = 8;
  params.cols = 8;
  params.seed = GetParam();
  const RoadGraph g = build_city(params);
  const auto exact = segment_betweenness(g);
  const auto mean_abs_error = [&](std::size_t sources, std::uint64_t seed) {
    Rng rng(seed);
    const auto approx = sampled_segment_betweenness(g, sources, rng);
    double err = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      err += std::abs(exact[i] - approx[i]);
    }
    return err / static_cast<double>(exact.size());
  };
  // Average each error level over a few sampling seeds to damp noise.
  double coarse = 0.0;
  double fine = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    coarse += mean_abs_error(g.num_intersections() / 8, seed);
    fine += mean_abs_error(g.num_intersections() * 3 / 4, seed);
  }
  EXPECT_LT(fine, coarse);
}

INSTANTIATE_TEST_SUITE_P(Cities, SampledConvergenceSweep,
                         ::testing::Values<std::uint64_t>(2, 5, 9));

TEST(Betweenness, ParallelMatchesSerial) {
  CityParams params;
  params.rows = 10;
  params.cols = 10;
  params.seed = 6;
  const RoadGraph g = build_city(params);
  const auto serial = segment_betweenness(g);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    BetweennessOptions opts;
    opts.num_threads = threads;
    const auto parallel = segment_betweenness(g, opts);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_NEAR(parallel[i], serial[i], 1e-9)
          << "threads=" << threads << " segment=" << i;
    }
  }
}

TEST(Betweenness, ParallelIsReproducibleForFixedThreadCount) {
  const RoadGraph g = make_grid(6, 6);
  BetweennessOptions opts;
  opts.num_threads = 3;
  const auto a = segment_betweenness(g, opts);
  const auto b = segment_betweenness(g, opts);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);  // bit-identical
  }
}

TEST(Betweenness, MoreThreadsThanSourcesIsSafe) {
  const RoadGraph g = make_line(3);
  BetweennessOptions opts;
  opts.num_threads = 64;
  const auto bc = segment_betweenness(g, opts);
  const auto serial = segment_betweenness(g);
  for (std::size_t i = 0; i < bc.size(); ++i) {
    EXPECT_NEAR(bc[i], serial[i], 1e-12);
  }
}

TEST(Betweenness, ThreadCountNeverMovesABit) {
  // Chunk boundaries depend only on the source count and the partials are
  // reduced in chunk order on the caller, so every thread count — including
  // more threads than chunks — returns the exact same doubles. This locks
  // the fix for the old strided partition, whose summation order (and last
  // ulp) changed with num_threads.
  CityParams params;
  params.rows = 9;
  params.cols = 9;
  params.seed = 11;
  const RoadGraph g = build_city(params);
  for (const auto metric : {PathMetric::kHops, PathMetric::kTravelTime}) {
    BetweennessOptions serial_opts;
    serial_opts.metric = metric;
    serial_opts.num_threads = 1;
    const auto serial = segment_betweenness(g, serial_opts);
    for (const std::size_t threads : {2u, 4u, 8u, 64u}) {
      BetweennessOptions opts;
      opts.metric = metric;
      opts.num_threads = threads;
      const auto parallel = segment_betweenness(g, opts);
      ASSERT_EQ(parallel.size(), serial.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(parallel[i], serial[i])
            << "metric=" << static_cast<int>(metric) << " threads=" << threads
            << " segment=" << i;
      }
    }
  }
}

TEST(Betweenness, WeightedTieRecognizedDespiteFloatDrift) {
  // Two routes between a and b with mathematically identical travel time
  // 2S/3: route A is two hops of S/3 seconds, route B three hops of 2S/9
  // seconds. At S = 2e7 m the accumulated sums differ by exactly one ulp
  // (~1.9e-9 s) — beyond the old absolute 1e-9 tie window, which credited
  // the whole a<->b pair to whichever route drifted low. The relative
  // tolerance recognises the tie, so sigma(a,b) = 2 and each route carries
  // half the pair.
  constexpr double kS = 2e7;
  RoadGraph g;
  const NodeId a = g.add_intersection(PointM{0.0, 0.0});
  const NodeId m = g.add_intersection(PointM{kS, 0.0});
  const NodeId b = g.add_intersection(PointM{2.0 * kS, 0.0});
  const NodeId n1 = g.add_intersection(PointM{0.0, kS});
  const NodeId n2 = g.add_intersection(PointM{2.0 * kS, kS});
  // Route A: two axis-aligned hops of length S at 3 m/s -> S/3 s each.
  const SegmentId a1 = g.add_segment(a, m, RoadClass::kArterial, 3.0);
  const SegmentId a2 = g.add_segment(m, b, RoadClass::kArterial, 3.0);
  // Route B: lengths S, 2S, S at speeds 4.5, 9, 4.5 -> 2S/9 s each.
  const SegmentId b1 = g.add_segment(a, n1, RoadClass::kArterial, 4.5);
  const SegmentId b2 = g.add_segment(n1, n2, RoadClass::kArterial, 9.0);
  const SegmentId b3 = g.add_segment(n2, b, RoadClass::kArterial, 4.5);
  g.finalize();

  // Precondition for the regression: the two accumulated totals really do
  // drift apart in floating point (otherwise this test proves nothing).
  const double total_a = kS / 3.0 + kS / 3.0;
  const double total_b = (kS / 4.5 + 2.0 * kS / 9.0) + kS / 4.5;
  ASSERT_NE(total_a, total_b);
  ASSERT_GT(std::abs(total_a - total_b), 1e-9);

  BetweennessOptions opts;
  opts.metric = PathMetric::kTravelTime;
  opts.normalize = false;
  const auto bc = segment_betweenness(g, opts);

  // With the tie recognized, the a<->b unit splits 0.5 / 0.5 across the
  // routes: route A segments carry 1 + 0.5 + 1 = 2.5 and route B segments
  // 0.5 + 3 = 3.5 over the ten node pairs. A missed tie hands the whole
  // unit to route B (2.0 vs 4.0).
  EXPECT_NEAR(bc[a1], 2.5, 1e-12);
  EXPECT_NEAR(bc[a2], 2.5, 1e-12);
  EXPECT_NEAR(bc[b1], 3.5, 1e-12);
  EXPECT_NEAR(bc[b2], 3.5, 1e-12);
  EXPECT_NEAR(bc[b3], 3.5, 1e-12);
}

TEST(Betweenness, TinyWeightTiesStillMerge) {
  // The flip side of a relative window: on millimetre-scale graphs the old
  // absolute 1e-9 window dwarfed real length differences. Equal-length
  // branches at 1e-3 m must still tie under the relative tolerance.
  RoadGraph g;
  const NodeId a = g.add_intersection(PointM{0.0, 0.0});
  const NodeId t = g.add_intersection(PointM{2e-3, 0.0});
  const NodeId up = g.add_intersection(PointM{1e-3, 1e-3});
  const NodeId dn = g.add_intersection(PointM{1e-3, -1e-3});
  const SegmentId u1 = g.add_segment(a, up, RoadClass::kLocal, 1.0);
  const SegmentId u2 = g.add_segment(up, t, RoadClass::kLocal, 1.0);
  const SegmentId d1 = g.add_segment(a, dn, RoadClass::kLocal, 1.0);
  const SegmentId d2 = g.add_segment(dn, t, RoadClass::kLocal, 1.0);
  g.finalize();

  BetweennessOptions opts;
  opts.metric = PathMetric::kDistance;
  opts.normalize = false;
  const auto bc = segment_betweenness(g, opts);
  // Symmetric diamond: the a<->t pair splits equally over both branches.
  EXPECT_NEAR(bc[u1], bc[d1], 1e-12);
  EXPECT_NEAR(bc[u2], bc[d2], 1e-12);
  EXPECT_NEAR(bc[u1], bc[u2], 1e-12);
}

TEST(Betweenness, SampledWithAllSourcesIsExact) {
  const RoadGraph g = make_grid(3, 4);
  const auto exact = segment_betweenness(g);
  Rng rng(5);
  const auto sampled =
      sampled_segment_betweenness(g, g.num_intersections(), rng);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(exact[i], sampled[i], 1e-9);
  }
}

}  // namespace
}  // namespace avcp::roadnet
