// Fault-injection layer: schedule determinism, degraded data path, and the
// zero-fault bit-identity contract of the plant and agent simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/contracts.h"
#include "faults/degraded_controller.h"
#include "faults/fault_model.h"
#include "perception/data_plane.h"
#include "perception/scheduler.h"
#include "sim/agent_sim.h"
#include "sim/metrics.h"
#include "system/system.h"
#include "test_support.h"

namespace avcp {
namespace {

using core::testing::make_chain_game;

// ---------------------------------------------------------------------------
// FaultModel schedule determinism
// ---------------------------------------------------------------------------

faults::FaultParams lossy_params(std::uint64_t seed) {
  faults::FaultParams fp;
  fp.upload_loss_rate = 0.3;
  fp.delivery_loss_rate = 0.25;
  fp.report_loss_rate = 0.2;
  fp.outage_rate = 0.1;
  fp.defector_fraction = 0.15;
  fp.seed = seed;
  return fp;
}

TEST(FaultModelTest, SameSeedSameSchedule) {
  const faults::FaultModel a(lossy_params(42));
  const faults::FaultModel b(lossy_params(42));
  for (std::size_t round = 0; round < 20; ++round) {
    for (core::RegionId i = 0; i < 3; ++i) {
      EXPECT_EQ(a.region_down(round, i), b.region_down(round, i));
      EXPECT_EQ(a.report_lost(round, i), b.report_lost(round, i));
      for (std::size_t v = 0; v < 10; ++v) {
        EXPECT_EQ(a.upload_lost(round, i, 0, v), b.upload_lost(round, i, 0, v));
        EXPECT_EQ(a.delivery_lost(round, i, 0, v, (v + 1) % 10),
                  b.delivery_lost(round, i, 0, v, (v + 1) % 10));
      }
    }
  }
  for (core::RegionId i = 0; i < 3; ++i) {
    for (std::size_t v = 0; v < 50; ++v) {
      EXPECT_EQ(a.vehicle_defects(i, v), b.vehicle_defects(i, v));
    }
  }
}

TEST(FaultModelTest, QueryOrderIrrelevant) {
  // Predicates are pure hashes: asking in reverse, twice, or interleaved
  // yields the same schedule as a single forward sweep.
  const faults::FaultModel model(lossy_params(7));
  std::vector<bool> forward;
  for (std::size_t round = 0; round < 30; ++round) {
    forward.push_back(model.upload_lost(round, 1, 0, 4));
  }
  std::vector<bool> backward(30);
  for (std::size_t round = 30; round-- > 0;) {
    model.report_lost(round, 0);  // unrelated interleaved queries
    model.delivery_lost(round, 2, 1, 3, 5);
    backward[round] = model.upload_lost(round, 1, 0, 4);
  }
  for (std::size_t round = 0; round < 30; ++round) {
    EXPECT_EQ(forward[round], backward[round]) << "round " << round;
  }
}

TEST(FaultModelTest, DifferentSeedsDiverge) {
  const faults::FaultModel a(lossy_params(1));
  const faults::FaultModel b(lossy_params(2));
  std::size_t differences = 0;
  for (std::size_t round = 0; round < 200; ++round) {
    if (a.upload_lost(round, 0, 0, 0) != b.upload_lost(round, 0, 0, 0)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0u);
}

TEST(FaultModelTest, RateExtremes) {
  faults::FaultParams zero;
  zero.seed = 9;
  const faults::FaultModel none(zero);
  EXPECT_FALSE(none.active());

  faults::FaultParams all;
  all.upload_loss_rate = 1.0;
  all.delivery_loss_rate = 1.0;
  all.report_loss_rate = 1.0;
  all.outage_rate = 1.0;
  all.defector_fraction = 1.0;
  all.seed = 9;
  const faults::FaultModel every(all);
  EXPECT_TRUE(every.active());

  for (std::size_t round = 0; round < 25; ++round) {
    for (core::RegionId i = 0; i < 2; ++i) {
      EXPECT_FALSE(none.upload_lost(round, i, 0, round));
      EXPECT_FALSE(none.delivery_lost(round, i, 0, 1, 2));
      EXPECT_FALSE(none.report_lost(round, i));
      EXPECT_FALSE(none.region_down(round, i));
      EXPECT_TRUE(none.report_available(round, i));
      EXPECT_TRUE(every.upload_lost(round, i, 0, round));
      EXPECT_TRUE(every.delivery_lost(round, i, 0, 1, 2));
      EXPECT_TRUE(every.report_lost(round, i));
      EXPECT_TRUE(every.region_down(round, i));
      EXPECT_FALSE(every.report_available(round, i));
    }
  }
  EXPECT_FALSE(none.vehicle_defects(0, 3));
  EXPECT_TRUE(every.vehicle_defects(0, 3));
}

TEST(FaultModelTest, ScheduledWindowBoundaries) {
  faults::FaultParams fp;
  fp.seed = 5;
  fp.outages.push_back(faults::OutageWindow{/*region=*/1, /*first_round=*/10,
                                            /*duration=*/4});
  const faults::FaultModel model(fp);
  EXPECT_TRUE(model.active());
  EXPECT_FALSE(model.region_down(9, 1));
  EXPECT_TRUE(model.region_down(10, 1));
  EXPECT_TRUE(model.region_down(13, 1));
  EXPECT_FALSE(model.region_down(14, 1));
  // Other regions untouched.
  EXPECT_FALSE(model.region_down(11, 0));
  EXPECT_FALSE(model.region_down(11, 2));
  // A down region cannot report.
  EXPECT_FALSE(model.report_available(11, 1));
  EXPECT_TRUE(model.report_available(11, 0));
}

TEST(FaultModelTest, AllRegionsWindow) {
  faults::FaultParams fp;
  fp.outages.push_back(faults::OutageWindow{faults::OutageWindow::kAllRegions,
                                            /*first_round=*/3,
                                            /*duration=*/2});
  const faults::FaultModel model(fp);
  for (core::RegionId i = 0; i < 4; ++i) {
    EXPECT_FALSE(model.region_down(2, i));
    EXPECT_TRUE(model.region_down(3, i));
    EXPECT_TRUE(model.region_down(4, i));
    EXPECT_FALSE(model.region_down(5, i));
  }
}

TEST(FaultModelTest, OutageWindowCoversEdgeCases) {
  // Zero duration covers nothing, not even its own first_round.
  const faults::OutageWindow empty{/*region=*/0, /*first_round=*/5,
                                   /*duration=*/0};
  EXPECT_FALSE(empty.covers(4, 0));
  EXPECT_FALSE(empty.covers(5, 0));
  EXPECT_FALSE(empty.covers(6, 0));

  // Half-open boundaries: first_round in, first_round + duration out.
  const faults::OutageWindow window{/*region=*/2, /*first_round=*/7,
                                    /*duration=*/3};
  EXPECT_FALSE(window.covers(6, 2));
  EXPECT_TRUE(window.covers(7, 2));
  EXPECT_TRUE(window.covers(9, 2));
  EXPECT_FALSE(window.covers(10, 2));
  EXPECT_FALSE(window.covers(8, 1));  // wrong region

  // The all-regions sentinel hits every region id, including large ones.
  const faults::OutageWindow everywhere{faults::OutageWindow::kAllRegions,
                                        /*first_round=*/0, /*duration=*/1};
  EXPECT_TRUE(everywhere.covers(0, 0));
  EXPECT_TRUE(everywhere.covers(0, 999));
  EXPECT_FALSE(everywhere.covers(1, 0));

  // A window starting at the far end of the round space still has a
  // well-defined (empty beyond SIZE_MAX) coverage — covers() never wraps.
  const faults::OutageWindow tail{/*region=*/0,
                                  /*first_round=*/SIZE_MAX - 1,
                                  /*duration=*/1};
  EXPECT_TRUE(tail.covers(SIZE_MAX - 1, 0));
  EXPECT_FALSE(tail.covers(SIZE_MAX, 0));
}

TEST(FaultModelTest, InvalidParamsRejectedOnConstruction) {
  {
    faults::FaultParams fp;
    fp.upload_loss_rate = 1.5;
    EXPECT_THROW(faults::FaultModel{fp}, ContractViolation);
  }
  {
    faults::FaultParams fp;
    fp.delivery_loss_rate = -0.1;
    EXPECT_THROW(faults::FaultModel{fp}, ContractViolation);
  }
  {
    faults::FaultParams fp;
    fp.defector_fraction = std::nan("");
    EXPECT_THROW(faults::FaultModel{fp}, ContractViolation);
  }
  {
    // first_round + duration would overflow size_t: the window's end is
    // unrepresentable, so the model refuses it up front.
    faults::FaultParams fp;
    fp.outages.push_back(faults::OutageWindow{/*region=*/0,
                                              /*first_round=*/SIZE_MAX,
                                              /*duration=*/2});
    EXPECT_THROW(faults::FaultModel{fp}, ContractViolation);
  }
  // Boundary values are fine.
  faults::FaultParams ok;
  ok.upload_loss_rate = 1.0;
  ok.delivery_loss_rate = 0.0;
  ok.outages.push_back(faults::OutageWindow{/*region=*/0,
                                            /*first_round=*/SIZE_MAX - 2,
                                            /*duration=*/2});
  EXPECT_NO_THROW(faults::FaultModel{ok});
}

// ---------------------------------------------------------------------------
// Plant integration
// ---------------------------------------------------------------------------

bool reports_equal(const system::RoundReport& a, const system::RoundReport& b) {
  return a.x == b.x && a.mean_utility == b.mean_utility &&
         a.mean_privacy == b.mean_privacy &&
         a.exposed_privacy == b.exposed_privacy && a.state.p == b.state.p &&
         a.faults.uploads_lost == b.faults.uploads_lost &&
         a.faults.deliveries_lost == b.faults.deliveries_lost &&
         a.faults.region_down == b.faults.region_down &&
         a.faults.regions_down == b.faults.regions_down;
}

system::SystemParams small_plant_params() {
  system::SystemParams params;
  params.vehicles_per_region = 24;
  params.seed = 321;
  return params;
}

TEST(FaultPlantTest, ZeroFaultModelIsBitIdentical) {
  const auto game = make_chain_game(3);
  faults::FaultParams fp;  // all rates zero, no windows
  fp.seed = 777;           // seed alone must not activate anything
  const faults::FaultModel inert(fp);

  system::CooperativePerceptionSystem clean(game, small_plant_params());
  system::CooperativePerceptionSystem faulty(game, small_plant_params(),
                                             &inert);
  clean.init_from(game.uniform_state());
  faulty.init_from(game.uniform_state());

  core::FixedRatioController controller_a(0.6);
  core::FixedRatioController controller_b(0.6);
  for (std::size_t t = 0; t < 15; ++t) {
    const auto ra = clean.run_round(controller_a);
    const auto rb = faulty.run_round(controller_b);
    ASSERT_TRUE(reports_equal(ra, rb)) << "diverged at round " << t;
  }
  EXPECT_EQ(faulty.fault_counters().uploads_lost, 0u);
  EXPECT_EQ(faulty.fault_counters().deliveries_lost, 0u);
  EXPECT_EQ(faulty.fault_counters().region_outages, 0u);
}

TEST(FaultPlantTest, SameSeedFaultyRunReproduces) {
  const auto game = make_chain_game(2);
  faults::FaultParams fp;
  fp.upload_loss_rate = 0.3;
  fp.delivery_loss_rate = 0.3;
  fp.outage_rate = 0.1;
  fp.seed = 31;
  const faults::FaultModel model(fp);

  system::CooperativePerceptionSystem a(game, small_plant_params(), &model);
  system::CooperativePerceptionSystem b(game, small_plant_params(), &model);
  a.init_from(game.uniform_state());
  b.init_from(game.uniform_state());

  core::FixedRatioController ca(0.8);
  core::FixedRatioController cb(0.8);
  for (std::size_t t = 0; t < 12; ++t) {
    ASSERT_TRUE(reports_equal(a.run_round(ca), b.run_round(cb)))
        << "diverged at round " << t;
  }
  EXPECT_GT(a.fault_counters().uploads_lost +
                a.fault_counters().deliveries_lost +
                a.fault_counters().region_outages,
            0u);
}

TEST(FaultPlantTest, TotalUploadLossZeroesPrivacy) {
  const auto game = make_chain_game(2);
  faults::FaultParams fp;
  fp.upload_loss_rate = 1.0;
  fp.seed = 13;
  const faults::FaultModel model(fp);

  system::CooperativePerceptionSystem plant(game, small_plant_params(),
                                            &model);
  plant.init_from(game.uniform_state());
  core::FixedRatioController controller(1.0);
  for (std::size_t t = 0; t < 5; ++t) {
    const auto report = plant.run_round(controller);
    for (std::size_t i = 0; i < game.num_regions(); ++i) {
      // Nothing reaches any server: no privacy spent, nothing exposed.
      EXPECT_EQ(report.mean_privacy[i], 0.0);
      EXPECT_EQ(report.exposed_privacy[i], 0.0);
    }
    EXPECT_GT(report.faults.uploads_lost, 0u);
    EXPECT_EQ(report.faults.deliveries_lost, 0u);
  }
  EXPECT_GT(plant.fault_counters().uploads_lost, 0u);
}

TEST(FaultPlantTest, DeliveryLossSparesPrivacyCostsUtility) {
  // Delivery loss happens after the upload was accepted: the uploader's
  // privacy account is bitwise identical to the clean same-seed run, only
  // realized utility drops.
  const auto game = make_chain_game(2);
  system::SystemParams params = small_plant_params();
  params.inter_region_exchange = false;  // isolate the within-cell path

  faults::FaultParams fp;
  fp.delivery_loss_rate = 1.0;
  fp.seed = 17;
  const faults::FaultModel model(fp);

  system::CooperativePerceptionSystem clean(game, params);
  system::CooperativePerceptionSystem faulty(game, params, &model);
  clean.init_from(game.uniform_state());
  faulty.init_from(game.uniform_state());

  core::FixedRatioController ca(1.0);
  core::FixedRatioController cb(1.0);
  const auto rc = clean.run_round(ca);
  const auto rf = faulty.run_round(cb);
  EXPECT_EQ(rc.mean_privacy, rf.mean_privacy);
  EXPECT_EQ(rc.exposed_privacy, rf.exposed_privacy);
  EXPECT_GT(rf.faults.deliveries_lost, 0u);
  double clean_utility = 0.0;
  double faulty_utility = 0.0;
  for (std::size_t i = 0; i < game.num_regions(); ++i) {
    clean_utility += rc.mean_utility[i];
    faulty_utility += rf.mean_utility[i];
  }
  EXPECT_LT(faulty_utility, clean_utility);
}

TEST(FaultPlantTest, OutageSkipsExchangeAndIsReported) {
  const auto game = make_chain_game(2);
  faults::FaultParams fp;
  fp.outages.push_back(
      faults::OutageWindow{/*region=*/0, /*first_round=*/0, /*duration=*/3});
  const faults::FaultModel model(fp);

  system::CooperativePerceptionSystem plant(game, small_plant_params(),
                                            &model);
  plant.init_from(game.uniform_state());
  core::FixedRatioController controller(1.0);
  for (std::size_t t = 0; t < 3; ++t) {
    const auto report = plant.run_round(controller);
    ASSERT_EQ(report.faults.region_down.size(), game.num_regions());
    EXPECT_NE(report.faults.region_down[0], 0);
    EXPECT_EQ(report.faults.region_down[1], 0);
    EXPECT_EQ(report.faults.regions_down, 1u);
    // No exchange in the down region: nothing exposed, no privacy spent.
    EXPECT_EQ(report.mean_privacy[0], 0.0);
    EXPECT_EQ(report.exposed_privacy[0], 0.0);
    EXPECT_GT(report.exposed_privacy[1], 0.0);
  }
  const auto after = plant.run_round(controller);
  EXPECT_EQ(after.faults.regions_down, 0u);
  EXPECT_GT(after.exposed_privacy[0], 0.0);
  EXPECT_EQ(plant.fault_counters().region_outages, 3u);
}

// ---------------------------------------------------------------------------
// Degraded data plane and scheduler
// ---------------------------------------------------------------------------

/// Universe with 2 items per sensor: camera {0,1}, lidar {2,3}, radar {4,5}.
perception::DataUniverse small_universe() {
  perception::DataUniverse universe(3);
  for (std::size_t s = 0; s < 3; ++s) {
    const double privacy = s == 0 ? 1.0 : (s == 1 ? 0.5 : 0.1);
    universe.add_item(s, 1.0, privacy);
    universe.add_item(s, 1.0, privacy);
  }
  return universe;
}

std::vector<perception::Vehicle> make_vehicles(
    const core::DecisionLattice& lattice,
    const perception::DataUniverse& universe, std::size_t n) {
  Rng rng(5);
  std::vector<perception::Vehicle> vehicles(n);
  for (std::size_t v = 0; v < n; ++v) {
    vehicles[v].decision = static_cast<core::DecisionId>(rng.uniform_int(
        0, static_cast<std::int64_t>(lattice.num_decisions()) - 1));
    for (perception::ItemId item = 0; item < universe.size(); ++item) {
      if (rng.bernoulli(0.5)) vehicles[v].collected.push_back(item);
      if (rng.bernoulli(0.4)) vehicles[v].desired.push_back(item);
    }
  }
  return vehicles;
}

TEST(DegradedDataPlaneTest, EmptyMaskMatchesCleanRound) {
  const core::DecisionLattice lattice(3);
  const auto universe = small_universe();
  const auto vehicles = make_vehicles(lattice, universe, 12);

  perception::EdgeServerDataPlane clean(lattice, universe,
                                        core::AccessRule::kSubsetOrEqual, 3);
  perception::EdgeServerDataPlane degraded(lattice, universe,
                                           core::AccessRule::kSubsetOrEqual, 3);
  for (int repeat = 0; repeat < 4; ++repeat) {
    const auto a = clean.run_round(vehicles, 0.7);
    const auto b =
        degraded.run_round_degraded(vehicles, 0.7, perception::CellFaultMask{});
    EXPECT_EQ(a.utility, b.utility);
    EXPECT_EQ(a.privacy, b.privacy);
    EXPECT_EQ(a.exposed_items, b.exposed_items);
    EXPECT_EQ(a.exposed_privacy, b.exposed_privacy);
    EXPECT_EQ(a.deliveries, b.deliveries);
    EXPECT_EQ(b.uploads_lost, 0u);
    EXPECT_EQ(b.deliveries_lost, 0u);
  }
}

TEST(DegradedDataPlaneTest, UploadMaskRemovesPrivacyAndPool) {
  const core::DecisionLattice lattice(3);
  const auto universe = small_universe();
  const auto vehicles = make_vehicles(lattice, universe, 10);

  perception::CellFaultMask mask;
  mask.upload_lost.assign(vehicles.size(), 1);  // every upload lost
  perception::EdgeServerDataPlane plane(lattice, universe,
                                        core::AccessRule::kSubsetOrEqual, 3);
  const auto outcome = plane.run_round_degraded(vehicles, 1.0, mask);
  EXPECT_EQ(outcome.exposed_items, 0u);
  EXPECT_EQ(outcome.exposed_privacy, 0.0);
  EXPECT_EQ(outcome.deliveries, 0u);
  for (const double c : outcome.privacy) EXPECT_EQ(c, 0.0);
  EXPECT_GT(outcome.uploads_lost, 0u);
}

TEST(DegradedDataPlaneTest, DeliveryMaskPreservesPrivacyStream) {
  const core::DecisionLattice lattice(3);
  const auto universe = small_universe();
  const auto vehicles = make_vehicles(lattice, universe, 10);
  const std::size_t n = vehicles.size();

  perception::CellFaultMask mask;
  mask.delivery_lost.assign(n * n, 1);  // every accepted delivery lost
  perception::EdgeServerDataPlane clean(lattice, universe,
                                        core::AccessRule::kSubsetOrEqual, 9);
  perception::EdgeServerDataPlane lossy(lattice, universe,
                                        core::AccessRule::kSubsetOrEqual, 9);
  const auto a = clean.run_round(vehicles, 0.8);
  const auto b = lossy.run_round_degraded(vehicles, 0.8, mask);
  // The uplink phase is untouched: privacy and exposure are bitwise equal.
  EXPECT_EQ(a.privacy, b.privacy);
  EXPECT_EQ(a.exposed_items, b.exposed_items);
  EXPECT_EQ(a.exposed_privacy, b.exposed_privacy);
  // Everything accepted downstream was dropped.
  EXPECT_EQ(b.deliveries, 0u);
  EXPECT_EQ(b.deliveries_lost, a.deliveries);
}

TEST(SchedulerFaultTest, LostUploadsShrinkPool) {
  const core::DecisionLattice lattice(3);
  const auto universe = small_universe();
  perception::DistributionScheduler scheduler(lattice, universe);

  std::vector<perception::SenderUpload> uploads(2);
  uploads[0].decision = 0  /* P1: share all */;
  uploads[0].items = {0, 1, 2};
  uploads[1].decision = 0  /* P1: share all */;
  uploads[1].items = {3, 4};

  perception::DistributionRequest receiver;
  receiver.decision = 0  /* P1: share all */;
  receiver.desired = {0, 1, 2, 3, 4};

  const std::vector<std::uint8_t> lost = {0, 1};  // second upload lost
  const auto full = scheduler.admissible_pool(uploads, receiver);
  const auto degraded = scheduler.admissible_pool(uploads, receiver, lost);
  EXPECT_EQ(full.size(), 5u);
  EXPECT_EQ(degraded, (perception::ItemSet{0, 1, 2}));

  const auto plan =
      scheduler.plan(uploads, std::vector<perception::DistributionRequest>{
                                  receiver},
                     std::nullopt, lost);
  EXPECT_EQ(plan.lost_uploads, 1u);
  EXPECT_EQ(plan.deliveries[0], (perception::ItemSet{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Agent-based simulator
// ---------------------------------------------------------------------------

TEST(AgentSimFaultTest, InactiveModelIsBitIdentical) {
  const auto game = make_chain_game(2);
  sim::AgentSimParams params;
  params.vehicles_per_region = 100;
  params.seed = 55;

  faults::FaultParams fp;  // inert
  const faults::FaultModel inert(fp);

  sim::AgentBasedSim plain(game, params);
  sim::AgentBasedSim with_model(game, params, &inert);
  plain.init_from(game.uniform_state());
  with_model.init_from(game.uniform_state());
  const std::vector<double> x(game.num_regions(), 0.9);
  for (std::size_t t = 0; t < 10; ++t) {
    plain.step(x);
    with_model.step(x);
    ASSERT_EQ(plain.empirical_state().p, with_model.empirical_state().p)
        << "diverged at round " << t;
  }
}

TEST(AgentSimFaultTest, AllDefectorsFreezeTheState) {
  const auto game = make_chain_game(2);
  sim::AgentSimParams params;
  params.vehicles_per_region = 100;
  params.seed = 12;

  faults::FaultParams fp;
  fp.defector_fraction = 1.0;
  fp.seed = 3;
  const faults::FaultModel model(fp);

  sim::AgentBasedSim simulator(game, params, &model);
  simulator.init_from(game.uniform_state());
  const auto before = simulator.empirical_state();
  const std::vector<double> x(game.num_regions(), 1.0);
  for (std::size_t t = 0; t < 5; ++t) simulator.step(x);
  EXPECT_EQ(before.p, simulator.empirical_state().p);
}

TEST(AgentSimFaultTest, RegionOutageHoldsThatRegionOnly) {
  const auto game = make_chain_game(2, /*beta_lo=*/2.0, /*beta_hi=*/2.0);
  sim::AgentSimParams params;
  params.vehicles_per_region = 200;
  params.seed = 8;

  faults::FaultParams fp;
  fp.outages.push_back(
      faults::OutageWindow{/*region=*/0, /*first_round=*/0, /*duration=*/4});
  const faults::FaultModel model(fp);

  sim::AgentBasedSim simulator(game, params, &model);
  simulator.init_from(game.uniform_state());
  const auto before = simulator.empirical_state();
  const std::vector<double> x(game.num_regions(), 1.0);
  for (std::size_t t = 0; t < 4; ++t) simulator.step(x);
  const auto after = simulator.empirical_state();
  EXPECT_EQ(before.p[0], after.p[0]);  // down region held its decisions
  EXPECT_NE(before.p[1], after.p[1]);  // live region kept revising
}

// ---------------------------------------------------------------------------
// Robustness metrics
// ---------------------------------------------------------------------------

TEST(RobustnessMetricsTest, RoundsToReconverge) {
  const auto game = make_chain_game(1);
  core::DesiredFields fields(1, game.num_decisions());
  fields.set_target(0, 0, Interval{0.9, 1.0});

  auto state_with_p0 = [&](double p0) {
    auto state = game.uniform_state();
    const std::size_t k = game.num_decisions();
    state.p[0].assign(k, (1.0 - p0) / static_cast<double>(k - 1));
    state.p[0][0] = p0;
    return state;
  };
  std::vector<core::GameState> trajectory = {
      state_with_p0(0.2), state_with_p0(0.5), state_with_p0(0.95),
      state_with_p0(0.3), state_with_p0(0.4), state_with_p0(0.92)};
  EXPECT_EQ(sim::rounds_to_reconverge(trajectory, fields, 0), 2u);
  EXPECT_EQ(sim::rounds_to_reconverge(trajectory, fields, 2), 0u);
  EXPECT_EQ(sim::rounds_to_reconverge(trajectory, fields, 3), 2u);
  trajectory.resize(5);  // drop the recovery
  EXPECT_EQ(sim::rounds_to_reconverge(trajectory, fields, 3),
            sim::kNoReconvergence);
}

TEST(RobustnessMetricsTest, DegradationSummary) {
  const std::vector<double> clean = {1.0, 1.0, 1.0, 1.0};
  const std::vector<double> faulty = {0.8, 0.7, 0.9, 0.6};
  const auto summary = sim::degradation(clean, faulty);
  EXPECT_DOUBLE_EQ(summary.mean_clean, 1.0);
  EXPECT_DOUBLE_EQ(summary.mean_faulty, 0.75);
  EXPECT_DOUBLE_EQ(summary.absolute_drop, 0.25);
  EXPECT_DOUBLE_EQ(summary.relative_drop, 0.25);
}

// ---------------------------------------------------------------------------
// Acceptance: FDS survives a 10-round total edge-server outage
// ---------------------------------------------------------------------------

TEST(FaultAcceptanceTest, FdsReconvergesAfterTotalOutage) {
  const auto game = make_chain_game(3, /*beta_lo=*/4.0, /*beta_hi=*/4.0);
  core::DesiredFields fields(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.7, 1.0});
  }

  constexpr std::size_t kOutageStart = 4;
  constexpr std::size_t kOutageDuration = 10;
  faults::FaultParams fp;
  fp.outages.push_back(faults::OutageWindow{
      faults::OutageWindow::kAllRegions, kOutageStart, kOutageDuration});
  const faults::FaultModel model(fp);

  system::SystemParams params;
  params.vehicles_per_region = 60;
  params.seed = 11;
  system::CooperativePerceptionSystem plant(game, params, &model);
  plant.init_from(game.uniform_state());

  core::FdsOptions fds_options;
  fds_options.max_step = 0.15;
  core::FdsController fds(game, fields, fds_options);
  faults::DegradedOptions degraded_options;
  degraded_options.max_step = fds_options.max_step;
  degraded_options.staleness_budget = 2;
  faults::DegradedController controller(fds, model, degraded_options);

  std::vector<core::GameState> trajectory;
  bool blind_during_outage = false;
  for (std::size_t t = 0; t < 60; ++t) {
    trajectory.push_back(plant.run_round(controller).state);
    if (t >= kOutageStart + degraded_options.staleness_budget &&
        t < kOutageStart + kOutageDuration) {
      blind_during_outage = blind_during_outage || controller.degraded(0);
    }
  }
  EXPECT_TRUE(blind_during_outage);
  // The outage interrupted shaping...
  EXPECT_FALSE(fields.satisfied(trajectory[kOutageStart - 1], 1e-9));
  // ...and the wrapped controller recovered once reports resumed.
  const std::size_t rounds = sim::rounds_to_reconverge(
      trajectory, fields, kOutageStart + kOutageDuration, 1e-9);
  ASSERT_NE(rounds, sim::kNoReconvergence);
  EXPECT_GT(rounds, 0u);
  EXPECT_TRUE(fields.satisfied(trajectory.back(), 1e-9));
  EXPECT_EQ(plant.fault_counters().region_outages,
            kOutageDuration * game.num_regions());
}

}  // namespace
}  // namespace avcp
