// Partition tolerance of the engines' degraded-network transport: the
// zero-degradation channel path is bit-identical to the synchronous
// exchange, degraded trajectories are thread-count invariant, a checkpoint
// taken mid-partition (retransmissions pending, links blind) resumes
// byte-equal across seeds and lane counts, and snapshots from a
// differently-configured network are rejected, never silently adopted.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "common/serial.h"
#include "core/fds.h"
#include "core/fleet_stream.h"
#include "faults/fault_model.h"
#include "net/link_model.h"
#include "roadnet/builders.h"
#include "service/service_engine.h"
#include "system/fleet_engine.h"
#include "system/system.h"
#include "test_support.h"

namespace avcp {
namespace {

using core::testing::make_chain_game;
using service::ServiceEngine;
using service::ServiceParams;

constexpr std::size_t kWarmRounds = 6;   // rounds before the snapshot
constexpr std::size_t kResumeRounds = 4; // rounds after it

/// A network bad enough to exercise every fate: losses with retries
/// pending, multi-round delays, duplicates, reordering, and a partition
/// window covering rounds [3, 8) — kWarmRounds lands the snapshot inside
/// it, with messages in flight.
net::NetParams degraded_net() {
  net::NetParams net;
  net.drop_rate = 0.3;
  net.delay_rate = 0.25;
  net.max_delay_rounds = 2;
  net.duplicate_rate = 0.15;
  net.reorder_rate = 0.15;
  net.max_retries = 2;
  net.backoff_base = 1;
  net.max_staleness = 3;
  net.seed = 29;
  net::PartitionWindow w;
  w.first_round = 3;
  w.duration = 5;
  w.num_components = 2;
  w.salt = 4;
  net.partitions.push_back(w);
  return net;
}

// ---------------------------------------------------------------------------
// CooperativePerceptionSystem
// ---------------------------------------------------------------------------

system::SystemParams system_params(std::uint64_t seed, std::size_t threads) {
  system::SystemParams params;
  params.vehicles_per_region = 24;
  params.cells_per_region = 2;
  params.seed = seed;
  params.num_threads = threads;
  return params;
}

core::DesiredFields chain_fields(const core::MultiRegionGame& game) {
  core::DesiredFields fields(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.6, 1.0});
  }
  return fields;
}

struct SystemObs {
  std::vector<std::vector<double>> p;
  std::vector<double> x;
  faults::FaultCounters counters;
  std::size_t round = 0;
};

SystemObs observe(const system::CooperativePerceptionSystem& plant) {
  return SystemObs{plant.empirical_state().p, plant.current_x(),
                   plant.fault_counters(), plant.round()};
}

void expect_equal(const SystemObs& a, const SystemObs& b) {
  EXPECT_EQ(a.p, b.p);  // exact: bit-identical, not approximately
  EXPECT_EQ(a.x, b.x);
  EXPECT_TRUE(a.counters == b.counters);
  EXPECT_EQ(a.round, b.round);
}

TEST(SystemTransport, ZeroDegradationPathIsBitIdentical) {
  // The acceptance anchor: routing the inter-region exchange through the
  // channel with an inert LinkModel must not move a single bit, even with
  // fault-layer losses and outages active (their semantics are preserved
  // on both paths, not papered over by held payloads).
  const auto game = make_chain_game(3, 3.0, 4.0);
  const auto fields = chain_fields(game);
  faults::FaultParams fparams;
  fparams.upload_loss_rate = 0.15;
  fparams.outage_rate = 0.1;
  fparams.seed = 5;
  const faults::FaultModel faults(fparams);

  auto sync_params = system_params(11, 2);
  auto wire_params = sync_params;
  wire_params.net.model_transport = true;

  core::FdsController ctrl_a(game, fields);
  system::CooperativePerceptionSystem sync(game, sync_params, &faults);
  sync.init_from(game.uniform_state());
  core::FdsController ctrl_b(game, fields);
  system::CooperativePerceptionSystem wired(game, wire_params, &faults);
  wired.init_from(game.uniform_state());

  for (std::size_t t = 0; t < 8; ++t) {
    const auto ra = sync.run_round(ctrl_a);
    const auto rb = wired.run_round(ctrl_b);
    ASSERT_EQ(ra.x, rb.x) << "round " << t;
    ASSERT_EQ(ra.state.p, rb.state.p) << "round " << t;
    EXPECT_FALSE(ra.net.active);
    EXPECT_TRUE(rb.net.active);
    // An inert model never degrades: nothing dropped, nothing held stale.
    EXPECT_EQ(rb.net.dropped, 0u);
    EXPECT_EQ(rb.net.stale_links, 0u);
  }
  expect_equal(observe(sync), observe(wired));
}

TEST(SystemTransport, DegradedTrajectoryIsThreadCountInvariant) {
  // Fate resolution runs serially between the parallel stages, so a fully
  // degraded schedule (drops + delays + duplicates + reorders + an open
  // partition) must replay bit-identically at every lane count.
  const auto game = make_chain_game(3, 3.0, 4.0);
  const auto fields = chain_fields(game);

  auto run = [&](std::size_t threads) {
    auto params = system_params(29, threads);
    params.net = degraded_net();
    core::FdsController controller(game, fields);
    system::CooperativePerceptionSystem plant(game, params, nullptr);
    plant.init_from(game.uniform_state());
    std::vector<std::vector<double>> xs;
    std::size_t dropped = 0;
    std::size_t blind = 0;
    for (std::size_t t = 0; t < 10; ++t) {
      const auto report = plant.run_round(controller);
      xs.push_back(report.x);
      dropped += report.net.dropped;
      blind += report.net.blind_links;
    }
    return std::tuple(xs, observe(plant), dropped, blind);
  };

  const auto [base_xs, base_obs, base_dropped, base_blind] = run(1);
  EXPECT_GT(base_dropped, 0u);  // the degradation is real, not a no-op
  for (const std::size_t threads : {2ul, 8ul}) {
    const auto [xs, obs, dropped, blind] = run(threads);
    ASSERT_EQ(xs, base_xs) << "threads " << threads;
    expect_equal(obs, base_obs);
    EXPECT_EQ(dropped, base_dropped);
    EXPECT_EQ(blind, base_blind);
  }
}

TEST(SystemTransport, MidPartitionResumeIsByteEqual) {
  // The resume-equivalence contract under the worst transport state: the
  // snapshot lands inside the partition window with retransmissions and
  // delayed copies in flight. The restored plant must replay the remaining
  // rounds bit-identically AND re-serialize to the exact same bytes.
  const auto game = make_chain_game(3, 3.0, 4.0);
  const auto fields = chain_fields(game);
  faults::FaultParams fparams;
  fparams.upload_loss_rate = 0.1;
  fparams.seed = 5;
  const faults::FaultModel faults(fparams);

  for (const std::uint64_t seed : {11ull, 77ull}) {
    for (const std::size_t threads : {1ul, 2ul, 8ul}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " threads=" << threads);
      auto params = system_params(seed, threads);
      params.net = degraded_net();

      core::FdsController ctrl_a(game, fields);
      system::CooperativePerceptionSystem straight(game, params, &faults);
      straight.init_from(game.uniform_state());
      for (std::size_t t = 0; t < kWarmRounds; ++t) {
        straight.run_round(ctrl_a);
      }
      Serializer snapshot;
      straight.save_state(snapshot);
      for (std::size_t t = 0; t < kResumeRounds; ++t) {
        straight.run_round(ctrl_a);
      }

      core::FdsController ctrl_b(game, fields);
      system::CooperativePerceptionSystem resumed(game, params, &faults);
      Deserializer d(snapshot.bytes());
      resumed.load_state(d);
      EXPECT_TRUE(d.exhausted());
      EXPECT_EQ(resumed.round(), kWarmRounds);
      for (std::size_t t = 0; t < kResumeRounds; ++t) {
        resumed.run_round(ctrl_b);
      }

      expect_equal(observe(straight), observe(resumed));
      Serializer sa;
      straight.save_state(sa);
      Serializer sb;
      resumed.save_state(sb);
      ASSERT_EQ(sa.bytes().size(), sb.bytes().size());
      EXPECT_TRUE(std::equal(sa.bytes().begin(), sa.bytes().end(),
                             sb.bytes().begin()));
    }
  }
}

TEST(SystemTransport, NetWiringMismatchRejected) {
  const auto game = make_chain_game(3, 3.0, 4.0);
  auto with_net = system_params(11, 1);
  with_net.net = degraded_net();
  system::CooperativePerceptionSystem source(game, with_net, nullptr);
  source.init_from(game.uniform_state());
  Serializer snapshot;
  source.save_state(snapshot);

  {
    // Transport on in the snapshot, off in the target.
    system::CooperativePerceptionSystem target(game, system_params(11, 1),
                                               nullptr);
    Deserializer d(snapshot.bytes());
    EXPECT_THROW(target.load_state(d), SerialError);
  }
  {
    // Different fate schedule.
    auto other = with_net;
    other.net.drop_rate = 0.5;
    system::CooperativePerceptionSystem target(game, other, nullptr);
    Deserializer d(snapshot.bytes());
    EXPECT_THROW(target.load_state(d), SerialError);
  }
  {
    // Different staleness policy (changes the consumable window AND the
    // payload-ring depth).
    auto other = with_net;
    other.net.max_staleness = 7;
    system::CooperativePerceptionSystem target(game, other, nullptr);
    Deserializer d(snapshot.bytes());
    EXPECT_THROW(target.load_state(d), SerialError);
  }
  {
    // Transport off in the snapshot, on in the target.
    system::CooperativePerceptionSystem plain(game, system_params(11, 1),
                                              nullptr);
    plain.init_from(game.uniform_state());
    Serializer plain_snap;
    plain.save_state(plain_snap);
    system::CooperativePerceptionSystem target(game, with_net, nullptr);
    Deserializer d(plain_snap.bytes());
    EXPECT_THROW(target.load_state(d), SerialError);
  }
}

// ---------------------------------------------------------------------------
// ServiceEngine (star backhaul: region -> cloud report links)
// ---------------------------------------------------------------------------

ServiceParams service_params(std::uint64_t seed) {
  ServiceParams params;
  params.vehicles_per_region = 12;
  params.seed = seed;
  params.num_threads = 2;
  return params;
}

TEST(ServiceTransport, ZeroDegradationEpochLoopIsBitIdentical) {
  // Same anchor at the service layer: an inert channel on the report
  // backhaul feeds the controller the exact rows the synchronous path
  // does, with fault-layer report loss keeping its DegradedController
  // semantics (a lost report means a blind region, not a ring substitute).
  const auto game = make_chain_game(4);
  const auto graph = roadnet::make_grid(6, 6);
  faults::FaultParams fp;
  fp.report_loss_rate = 0.2;
  fp.outage_rate = 0.05;
  fp.seed = 7;
  const faults::FaultModel faults(fp);
  const core::GameState initial = game.uniform_state();
  const std::vector<double> x0(game.num_regions(), 0.5);

  core::FixedRatioController inner_a(0.7);
  ServiceEngine sync(game, inner_a, &graph, service_params(41), &faults);
  sync.init(initial, x0);

  auto wired_params = service_params(41);
  wired_params.net.model_transport = true;
  core::FixedRatioController inner_b(0.7);
  ServiceEngine wired(game, inner_b, &graph, wired_params, &faults);
  wired.init(initial, x0);

  EXPECT_EQ(sync.channel(), nullptr);
  ASSERT_NE(wired.channel(), nullptr);
  for (std::size_t t = 0; t < 20; ++t) {
    sync.run_epoch();
    wired.run_epoch();
    ASSERT_EQ(sync.x(), wired.x()) << "epoch " << t;
  }
  EXPECT_EQ(sync.true_state().p, wired.true_state().p);
  EXPECT_EQ(sync.observed_state().p, wired.observed_state().p);
  EXPECT_TRUE(sync.counters() == wired.counters());
  EXPECT_EQ(wired.channel()->counters().dropped, 0u);
  EXPECT_GT(wired.channel()->counters().delivered, 0u);
}

TEST(ServiceTransport, ResumeUnderLinkFaultsIsBitIdentical) {
  const auto game = make_chain_game(4);
  const auto graph = roadnet::make_grid(6, 6);
  faults::FaultParams fp;
  fp.report_loss_rate = 0.1;
  fp.seed = 7;
  const faults::FaultModel faults(fp);
  const core::GameState initial = game.uniform_state();
  const std::vector<double> x0(game.num_regions(), 0.5);
  auto params = service_params(41);
  params.net = degraded_net();

  core::FixedRatioController inner_a(0.7);
  ServiceEngine a(game, inner_a, &graph, params, &faults);
  a.init(initial, x0);
  for (std::size_t t = 0; t < 12; ++t) a.run_epoch();

  core::FixedRatioController inner_b(0.7);
  ServiceEngine b(game, inner_b, &graph, params, &faults);
  b.init(initial, x0);
  for (std::size_t t = 0; t < kWarmRounds; ++t) b.run_epoch();
  Serializer snap;
  b.save_state(snap);

  core::FixedRatioController inner_c(0.7);
  ServiceEngine c(game, inner_c, &graph, params, &faults);
  Deserializer d(snap.bytes());
  c.load_state(d);
  EXPECT_TRUE(d.exhausted());
  EXPECT_EQ(c.epoch(), kWarmRounds);
  for (std::size_t t = kWarmRounds; t < 12; ++t) c.run_epoch();

  EXPECT_EQ(a.x(), c.x());
  EXPECT_EQ(a.true_state().p, c.true_state().p);
  EXPECT_EQ(a.observed_state().p, c.observed_state().p);
  EXPECT_EQ(a.staleness(), c.staleness());
  EXPECT_TRUE(a.counters() == c.counters());
  ASSERT_NE(a.channel(), nullptr);
  ASSERT_NE(c.channel(), nullptr);
  EXPECT_TRUE(a.channel()->counters() == c.channel()->counters());
}

TEST(ServiceTransport, NetWiringMismatchRejected) {
  const auto game = make_chain_game(4);
  const auto graph = roadnet::make_grid(6, 6);
  auto params = service_params(41);
  params.net = degraded_net();
  core::FixedRatioController inner(0.7);
  ServiceEngine source(game, inner, &graph, params);
  source.init(game.uniform_state(), std::vector<double>(4, 0.5));
  for (std::size_t t = 0; t < 3; ++t) source.run_epoch();
  Serializer snap;
  source.save_state(snap);

  {
    // Transport on in the snapshot, off in the target.
    core::FixedRatioController inner_b(0.7);
    ServiceEngine target(game, inner_b, &graph, service_params(41));
    Deserializer d(snap.bytes());
    EXPECT_THROW(target.load_state(d), SerialError);
  }
  {
    // Same wiring, different link-fault schedule.
    auto other = params;
    other.net.seed = 30;
    core::FixedRatioController inner_b(0.7);
    ServiceEngine target(game, inner_b, &graph, other);
    Deserializer d(snap.bytes());
    EXPECT_THROW(target.load_state(d), SerialError);
  }
}

// ---------------------------------------------------------------------------
// ShardedFleetEngine (ring topology: shard s -> its successor)
// ---------------------------------------------------------------------------

system::FleetEngineParams fleet_params(std::size_t lanes) {
  system::FleetEngineParams params;
  params.num_shards = 5;
  params.num_threads = lanes;
  params.clamp_lanes = false;  // real oversubscription even on 1 core
  params.seed = 905;
  params.inter_shard_exchange = true;
  params.exchange_fraction = 0.2;
  params.exchange_sample_cap = 64;
  return params;
}

TEST(FleetTransport, DegradedExchangeIsLaneCountInvariant) {
  // The serial transport step between the two dispatch stages is the whole
  // thread-invariance argument at fleet scale; lock it at 1/2/8 lanes under
  // the full degradation schedule.
  auto run = [&](std::size_t lanes) {
    auto params = fleet_params(lanes);
    params.net = degraded_net();
    system::ShardedFleetEngine engine(params);
    core::SyntheticFleetSource source(2000, 8, 905);
    engine.ingest(source);
    std::vector<std::uint64_t> hashes;
    std::size_t dropped = 0;
    std::size_t blind = 0;
    double cross = 0.0;
    system::FleetRoundStats round;
    for (std::size_t r = 0; r < 8; ++r) {
      engine.run_round_into(0.6, round);
      hashes.push_back(engine.state_hash());
      dropped += round.net_dropped;
      blind += round.net_blind;
      cross += round.cross_utility;
    }
    return std::tuple(hashes, dropped, blind, cross);
  };

  const auto [base_hashes, base_dropped, base_blind, base_cross] = run(1);
  EXPECT_GT(base_dropped, 0u);  // schedule actually bites
  EXPECT_GT(base_cross, 0.0);   // and samples still get through
  for (const std::size_t lanes : {2ul, 8ul}) {
    const auto [hashes, dropped, blind, cross] = run(lanes);
    ASSERT_EQ(hashes, base_hashes) << "lanes " << lanes;
    EXPECT_EQ(dropped, base_dropped) << "lanes " << lanes;
    EXPECT_EQ(blind, base_blind) << "lanes " << lanes;
    EXPECT_EQ(cross, base_cross) << "lanes " << lanes;
  }
}

TEST(FleetTransport, InertChannelDeliversEveryRound) {
  // With no degradation every shard's sample lands in its own round: no
  // shard is ever blind, and the channel accounts one delivery per link.
  auto params = fleet_params(2);
  system::ShardedFleetEngine engine(params);
  core::SyntheticFleetSource source(1000, 8, 77);
  engine.ingest(source);
  ASSERT_NE(engine.channel(), nullptr);
  system::FleetRoundStats round;
  for (std::size_t r = 0; r < 4; ++r) {
    engine.run_round_into(0.6, round);
    EXPECT_EQ(round.net_delivered, params.num_shards) << "round " << r;
    EXPECT_EQ(round.net_dropped, 0u) << "round " << r;
    EXPECT_EQ(round.net_blind, 0u) << "round " << r;
    EXPECT_GT(round.cross_utility, 0.0) << "round " << r;
  }
  EXPECT_EQ(engine.channel()->counters().sent,
            engine.channel()->counters().delivered);
}

}  // namespace
}  // namespace avcp
