#include "spatial/grid_index.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/contracts.h"
#include "common/rng.h"
#include "roadnet/builders.h"
#include "spatial/voronoi.h"

namespace avcp::spatial {
namespace {

TEST(BBox, AroundPoints) {
  const std::vector<PointM> pts = {{1.0, 5.0}, {-2.0, 3.0}, {4.0, -1.0}};
  const BBoxM box = BBoxM::around(pts);
  EXPECT_EQ(box.min.x, -2.0);
  EXPECT_EQ(box.min.y, -1.0);
  EXPECT_EQ(box.max.x, 4.0);
  EXPECT_EQ(box.max.y, 5.0);
  EXPECT_EQ(box.width(), 6.0);
  EXPECT_EQ(box.height(), 6.0);
}

TEST(BBox, AroundEmptyThrows) {
  EXPECT_THROW(BBoxM::around({}), ContractViolation);
}

TEST(BBox, ExpandedAndContains) {
  const BBoxM box{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_TRUE(box.contains({5.0, 5.0}));
  EXPECT_TRUE(box.contains({0.0, 10.0}));
  EXPECT_FALSE(box.contains({-0.1, 5.0}));
  const BBoxM bigger = box.expanded(1.0);
  EXPECT_TRUE(bigger.contains({-0.5, 10.5}));
}

TEST(GridIndex, NearestOfSinglePoint) {
  const GridIndex index({{3.0, 4.0}});
  EXPECT_EQ(index.nearest({100.0, -100.0}), 0u);
}

TEST(GridIndex, NearestPrefersLowerIndexOnTie) {
  const GridIndex index({{0.0, 0.0}, {2.0, 0.0}});
  EXPECT_EQ(index.nearest({1.0, 0.0}), 0u);
}

TEST(GridIndex, RejectsEmpty) {
  EXPECT_THROW(GridIndex({}), ContractViolation);
}

TEST(GridIndex, WithinRadius) {
  const GridIndex index({{0.0, 0.0}, {5.0, 0.0}, {20.0, 0.0}});
  const auto hits = index.within({0.0, 0.0}, 6.0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 1u);
}

TEST(GridIndex, WithinZeroRadiusFindsExactPoint) {
  const GridIndex index({{1.0, 1.0}, {2.0, 2.0}});
  const auto hits = index.within({2.0, 2.0}, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

// Property sweep: GridIndex::nearest agrees with linear scan on random
// point clouds and random queries (including queries far outside the
// bounds).
class GridIndexSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridIndexSweep, NearestMatchesBruteForce) {
  Rng rng(GetParam());
  const std::size_t n = 50 + static_cast<std::size_t>(rng.uniform_int(0, 200));
  std::vector<PointM> points(n);
  for (auto& p : points) {
    p = PointM{rng.uniform(-1000.0, 1000.0), rng.uniform(-500.0, 500.0)};
  }
  const GridIndex index(points);
  for (int q = 0; q < 50; ++q) {
    const PointM query{rng.uniform(-2000.0, 2000.0),
                       rng.uniform(-1000.0, 1000.0)};
    double best_dist = std::numeric_limits<double>::infinity();
    for (const PointM& point : points) {
      best_dist = std::min(best_dist, distance_m(point, query));
    }
    const std::size_t got = index.nearest(query);
    // Same distance (could be a tie at different index).
    EXPECT_NEAR(distance_m(points[got], query), best_dist, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomClouds, GridIndexSweep,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(DeployGrid, ExactCount) {
  const BBoxM area{{0.0, 0.0}, {1000.0, 800.0}};
  for (const std::size_t count : {1u, 7u, 10u, 100u}) {
    const auto sites = deploy_grid(area, count);
    EXPECT_EQ(sites.size(), count);
    for (const PointM& s : sites) {
      EXPECT_TRUE(area.contains(s));
    }
  }
}

TEST(DeployGrid, HundredServersFormTenByTenOnSquare) {
  const BBoxM area{{0.0, 0.0}, {1000.0, 1000.0}};
  const auto sites = deploy_grid(area, 100);
  ASSERT_EQ(sites.size(), 100u);
  // First row should be at y = 50 with x = 50, 150, ..., 950.
  EXPECT_NEAR(sites[0].x, 50.0, 1e-9);
  EXPECT_NEAR(sites[0].y, 50.0, 1e-9);
  EXPECT_NEAR(sites[1].x, 150.0, 1e-9);
  EXPECT_NEAR(sites[99].x, 950.0, 1e-9);
  EXPECT_NEAR(sites[99].y, 950.0, 1e-9);
}

TEST(Voronoi, CellOfMatchesNearestSite) {
  Rng rng(77);
  std::vector<PointM> sites(20);
  for (auto& s : sites) {
    s = PointM{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
  }
  const VoronoiPartition voronoi(sites);
  for (int q = 0; q < 100; ++q) {
    const PointM p{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const ServerId cell = voronoi.cell_of(p);
    const double d_cell = distance_m(sites[cell], p);
    for (const PointM& s : sites) {
      EXPECT_LE(d_cell, distance_m(s, p) + 1e-9);
    }
  }
}

TEST(Voronoi, AssignSegmentsUsesMidpoints) {
  const auto g = roadnet::make_grid(3, 3, 100.0);
  // Two sites: far left and far right.
  const VoronoiPartition voronoi({PointM{-1000.0, 100.0}, PointM{1200.0, 100.0}});
  const auto cells = voronoi.assign_segments(g);
  ASSERT_EQ(cells.size(), g.num_segments());
  // The bisector sits at x = 100; exact ties resolve to the lower index.
  for (roadnet::SegmentId s = 0; s < g.num_segments(); ++s) {
    const PointM mid = g.segment_midpoint(s);
    EXPECT_EQ(cells[s], mid.x <= 100.0 ? 0u : 1u) << "segment " << s;
  }
}

TEST(Voronoi, SingleSiteOwnsEverything) {
  const auto g = roadnet::make_grid(2, 2, 100.0);
  const VoronoiPartition voronoi({PointM{50.0, 50.0}});
  for (const ServerId c : voronoi.assign_segments(g)) {
    EXPECT_EQ(c, 0u);
  }
}

}  // namespace
}  // namespace avcp::spatial
