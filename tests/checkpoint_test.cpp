// Checkpoint subsystem: serializer primitives, file-format framing and its
// rejection of every corruption class (truncation, bit flips, stale
// schema), the generation store, the snapshot policy, and the recovery
// supervisor's fall-back-a-generation behaviour.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <stdexcept>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "checkpoint/policy.h"
#include "checkpoint/recovery.h"
#include "common/serial.h"
#include "common/stats.h"
#include "faults/crash_injector.h"

namespace avcp {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Serializer / Deserializer primitives
// ---------------------------------------------------------------------------

TEST(SerialTest, ScalarRoundTrip) {
  Serializer s;
  s.put_u8(0xAB);
  s.put_u32(0xDEADBEEFu);
  s.put_u64(0x0123456789ABCDEFull);
  s.put_f64(-0.0);
  s.put_f64(1.0 / 3.0);
  s.put_bool(true);
  s.put_string("checkpoint");

  Deserializer d(s.bytes());
  EXPECT_EQ(d.get_u8(), 0xAB);
  EXPECT_EQ(d.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.get_u64(), 0x0123456789ABCDEFull);
  const double neg_zero = d.get_f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(d.get_f64(), 1.0 / 3.0);
  EXPECT_TRUE(d.get_bool());
  EXPECT_EQ(d.get_string(), "checkpoint");
  EXPECT_TRUE(d.exhausted());
}

TEST(SerialTest, LittleEndianLayout) {
  Serializer s;
  s.put_u32(0x01020304u);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(s.bytes()[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(s.bytes()[3]), 0x01);
}

TEST(SerialTest, UnderrunThrowsSerialError) {
  Serializer s;
  s.put_u32(7);
  Deserializer d(s.bytes());
  EXPECT_THROW(d.get_u64(), SerialError);
}

TEST(SerialTest, CorruptVectorLengthRejectedWithoutAllocation) {
  // A length prefix claiming more elements than the payload holds must be
  // rejected up front (never fed to reserve()).
  Serializer s;
  s.put_u64(std::uint64_t{1} << 60);
  Deserializer d(s.bytes());
  EXPECT_THROW(get_f64_vec(d), SerialError);
}

TEST(SerialTest, VectorHelpersRoundTrip) {
  Serializer s;
  put_f64_vec(s, std::vector<double>{1.5, -2.25, 0.0});
  put_size_vec(s, std::vector<std::size_t>{3, 0, 9});
  put_u8_vec(s, std::vector<std::uint8_t>{1, 0, 255});

  Deserializer d(s.bytes());
  EXPECT_EQ(get_f64_vec(d), (std::vector<double>{1.5, -2.25, 0.0}));
  EXPECT_EQ(get_size_vec(d), (std::vector<std::size_t>{3, 0, 9}));
  EXPECT_EQ(get_u8_vec(d), (std::vector<std::uint8_t>{1, 0, 255}));
  EXPECT_TRUE(d.exhausted());
}

TEST(SerialTest, Crc32cKnownAnswer) {
  // RFC 3720 test vector: CRC-32C of "123456789" is 0xE3069283.
  const char digits[] = "123456789";
  const auto bytes =
      std::as_bytes(std::span<const char>(digits, sizeof(digits) - 1));
  EXPECT_EQ(crc32c(bytes), 0xE3069283u);
}

TEST(StatsSerialTest, HistogramRoundTrip) {
  const std::vector<double> xs = {-1.0, 0.1, 0.5, 0.9, 2.0, 0.5};
  const Histogram h = histogram(xs, 0.0, 1.0, 4);
  ASSERT_EQ(h.underflow, 1u);
  ASSERT_EQ(h.overflow, 1u);

  Serializer s;
  h.save_state(s);
  Histogram restored;
  Deserializer d(s.bytes());
  restored.load_state(d);
  EXPECT_TRUE(d.exhausted());
  EXPECT_EQ(restored.counts, h.counts);
  EXPECT_EQ(restored.underflow, h.underflow);
  EXPECT_EQ(restored.overflow, h.overflow);
}

// ---------------------------------------------------------------------------
// Checkpoint file format
// ---------------------------------------------------------------------------

class CheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("avcp_ckpt_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// A two-section checkpoint with recognizable payloads.
  checkpoint::CheckpointWriter make_writer(std::uint64_t round = 17) {
    checkpoint::CheckpointWriter writer(round);
    Serializer& a = writer.section(checkpoint::kSectionSystem);
    a.put_u64(round);
    put_f64_vec(a, std::vector<double>{0.25, 0.75});
    Serializer& b = writer.section(checkpoint::kSectionAux);
    b.put_string("aux");
    return writer;
  }

  fs::path dir_;
};

TEST_F(CheckpointFileTest, WriteReadRoundTrip) {
  const auto writer = make_writer();
  const fs::path path = dir_ / "ckpt.avcp";
  writer.write(path);

  const auto reader = checkpoint::CheckpointReader::open(path);
  EXPECT_EQ(reader.round(), 17u);
  EXPECT_TRUE(reader.has(checkpoint::kSectionSystem));
  EXPECT_TRUE(reader.has(checkpoint::kSectionAux));
  EXPECT_FALSE(reader.has(checkpoint::kSectionTraceReplay));

  Deserializer a = reader.section(checkpoint::kSectionSystem);
  EXPECT_EQ(a.get_u64(), 17u);
  EXPECT_EQ(get_f64_vec(a), (std::vector<double>{0.25, 0.75}));
  EXPECT_TRUE(a.exhausted());
  Deserializer b = reader.section(checkpoint::kSectionAux);
  EXPECT_EQ(b.get_string(), "aux");

  // No stray temp file after the atomic rename.
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
}

TEST_F(CheckpointFileTest, MissingSectionThrows) {
  const auto reader = checkpoint::CheckpointReader::parse(make_writer().encode());
  EXPECT_THROW(reader.section(checkpoint::kSectionMeanField),
               checkpoint::CheckpointError);
}

TEST_F(CheckpointFileTest, EveryTruncationRejected) {
  const std::vector<std::byte> image = make_writer().encode();
  // Every proper prefix must be rejected — header truncation, section-table
  // truncation, and payload truncation alike.
  for (std::size_t keep : {0ul, 4ul, 12ul, 23ul, image.size() / 2,
                           image.size() - 1}) {
    std::vector<std::byte> torn(image.begin(),
                                image.begin() + static_cast<long>(keep));
    EXPECT_THROW(checkpoint::CheckpointReader::parse(std::move(torn)),
                 checkpoint::CheckpointError)
        << "prefix of " << keep << " bytes parsed";
  }
}

TEST_F(CheckpointFileTest, EveryFlippedByteRejected) {
  const std::vector<std::byte> image = make_writer().encode();
  // Flip one byte at a time across the whole image: each flip lands in the
  // magic, the version, the header CRC, a section header, a payload, or a
  // section CRC — all of which must fail validation. (Flipping a payload
  // byte breaks that section's CRC; flipping a CRC byte breaks the match.)
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::vector<std::byte> corrupt = image;
    corrupt[i] ^= std::byte{0x40};
    EXPECT_THROW(checkpoint::CheckpointReader::parse(std::move(corrupt)),
                 checkpoint::CheckpointError)
        << "flip at byte " << i << " parsed";
  }
}

TEST_F(CheckpointFileTest, StaleSchemaVersionRejected) {
  std::vector<std::byte> image = make_writer().encode();
  // The version is the u32 after the 8-byte magic; bump it and re-seal the
  // header CRC so *only* the version check can object.
  image[8] = static_cast<std::byte>(checkpoint::kSchemaVersion + 1);
  const std::uint32_t crc =
      crc32c(std::span<const std::byte>(image).first(24));
  for (int i = 0; i < 4; ++i) {
    image[24 + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((crc >> (8 * i)) & 0xffu);
  }
  try {
    checkpoint::CheckpointReader::parse(std::move(image));
    FAIL() << "stale schema version accepted";
  } catch (const checkpoint::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("schema version"), std::string::npos);
  }
}

TEST_F(CheckpointFileTest, TornWriteLeavesRejectableFile) {
  const auto writer = make_writer();
  const fs::path path = dir_ / "torn.avcp";
  writer.write_torn(path, writer.encode().size() / 2);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_THROW(checkpoint::CheckpointReader::open(path),
               checkpoint::CheckpointError);
}

TEST_F(CheckpointFileTest, CheckpointErrorIsSerialError) {
  // One catch handles both framing and payload rejections.
  EXPECT_THROW(checkpoint::CheckpointReader::parse({}), SerialError);
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

TEST_F(CheckpointFileTest, StoreNamesParseAndOrder) {
  const checkpoint::CheckpointStore store(dir_ / "gens", 2);
  EXPECT_EQ(checkpoint::CheckpointStore::round_of(store.path_for(12)), 12u);
  EXPECT_EQ(checkpoint::CheckpointStore::round_of(fs::path("other.txt")),
            std::nullopt);
  EXPECT_EQ(
      checkpoint::CheckpointStore::round_of(fs::path("ckpt-0000000x.avcp")),
      std::nullopt);

  for (const std::uint64_t round : {4u, 12u, 8u}) {
    checkpoint::CheckpointWriter writer(round);
    writer.section(checkpoint::kSectionAux).put_u64(round);
    writer.write(store.path_for(round));
  }
  // A stray non-generation file is ignored.
  std::ofstream(store.dir() / "notes.txt") << "ignore me";

  const auto generations = store.generations();
  ASSERT_EQ(generations.size(), 3u);
  EXPECT_EQ(checkpoint::CheckpointStore::round_of(generations[0]), 12u);
  EXPECT_EQ(checkpoint::CheckpointStore::round_of(generations[1]), 8u);
  EXPECT_EQ(checkpoint::CheckpointStore::round_of(generations[2]), 4u);

  store.prune();
  const auto kept = store.generations();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(checkpoint::CheckpointStore::round_of(kept[0]), 12u);
  EXPECT_EQ(checkpoint::CheckpointStore::round_of(kept[1]), 8u);
}

// ---------------------------------------------------------------------------
// CheckpointPolicy
// ---------------------------------------------------------------------------

TEST(CheckpointPolicyTest, PeriodicSchedule) {
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = 5;
  EXPECT_FALSE(policy.should_checkpoint(0));
  EXPECT_FALSE(policy.should_checkpoint(4));
  EXPECT_TRUE(policy.should_checkpoint(5));
  EXPECT_FALSE(policy.should_checkpoint(6));
  EXPECT_TRUE(policy.should_checkpoint(10));
}

TEST(CheckpointPolicyTest, DisabledPolicyNeverFires) {
  const checkpoint::CheckpointPolicy policy;  // every_rounds=0, on_signal off
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_FALSE(policy.should_checkpoint(r));
  }
}

TEST(CheckpointPolicyTest, SignalRequestIsConsumedOnce) {
  checkpoint::CheckpointPolicy policy;
  policy.on_signal = true;
  (void)checkpoint::consume_checkpoint_request();  // drain any prior state
  EXPECT_FALSE(policy.should_checkpoint(3));

  checkpoint::install_checkpoint_signal_handler(SIGUSR1);
  std::raise(SIGUSR1);
  EXPECT_TRUE(checkpoint::checkpoint_requested());
  EXPECT_TRUE(policy.should_checkpoint(3));
  EXPECT_FALSE(policy.should_checkpoint(4));  // consumed
}

// ---------------------------------------------------------------------------
// run_with_recovery
// ---------------------------------------------------------------------------

/// A trivial engine: state is a running sum of round indices plus one.
struct CounterEngine {
  std::size_t rounds = 0;
  std::uint64_t sum = 0;

  void step(std::size_t round) {
    sum += round + 1;
    ++rounds;
  }
  void save(checkpoint::CheckpointWriter& writer) const {
    Serializer& s = writer.section(checkpoint::kSectionAux);
    s.put_u64(rounds);
    s.put_u64(sum);
  }
  void restore(const checkpoint::CheckpointReader& reader) {
    Deserializer d = reader.section(checkpoint::kSectionAux);
    rounds = static_cast<std::size_t>(d.get_u64());
    sum = d.get_u64();
  }
};

checkpoint::RecoveryHooks hooks_for(CounterEngine& engine) {
  checkpoint::RecoveryHooks hooks;
  hooks.reset = [&engine] { engine = CounterEngine{}; };
  hooks.restore = [&engine](const checkpoint::CheckpointReader& reader) {
    engine.restore(reader);
  };
  hooks.step = [&engine](std::size_t round) { engine.step(round); };
  hooks.save = [&engine](checkpoint::CheckpointWriter& writer) {
    engine.save(writer);
  };
  return hooks;
}

TEST_F(CheckpointFileTest, RecoveryColdStartAndPeriodicSnapshots) {
  const checkpoint::CheckpointStore store(dir_ / "rec", 2);
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = 3;

  CounterEngine engine;
  const auto outcome =
      checkpoint::run_with_recovery(store, policy, 10, hooks_for(engine));
  EXPECT_FALSE(outcome.resumed);
  EXPECT_EQ(outcome.start_round, 0u);
  EXPECT_EQ(outcome.checkpoints_written, 3u);  // after rounds 3, 6, 9
  EXPECT_EQ(engine.rounds, 10u);
  EXPECT_EQ(engine.sum, 55u);
  // Retention: only the newest two generations survive pruning.
  const auto kept = store.generations();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(checkpoint::CheckpointStore::round_of(kept[0]), 9u);
}

TEST_F(CheckpointFileTest, RecoveryResumesFromNewestGeneration) {
  const checkpoint::CheckpointStore store(dir_ / "rec", 2);
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = 3;

  CounterEngine first;
  checkpoint::run_with_recovery(store, policy, 7, hooks_for(first));

  // A "new process": fresh engine, same store. Must resume from round 6.
  CounterEngine second;
  const auto outcome =
      checkpoint::run_with_recovery(store, policy, 10, hooks_for(second));
  EXPECT_TRUE(outcome.resumed);
  EXPECT_EQ(outcome.start_round, 6u);
  EXPECT_EQ(second.rounds, 10u);

  CounterEngine straight;
  checkpoint::CheckpointStore other(dir_ / "straight", 2);
  checkpoint::run_with_recovery(other, policy, 10, hooks_for(straight));
  EXPECT_EQ(second.sum, straight.sum);
}

TEST_F(CheckpointFileTest, RecoveryFallsBackPastCorruptGeneration) {
  const checkpoint::CheckpointStore store(dir_ / "rec", 2);
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = 3;

  CounterEngine first;
  checkpoint::run_with_recovery(store, policy, 7, hooks_for(first));
  // Tear the newest generation (round 6), as a crash mid-write would.
  const auto generations = store.generations();
  ASSERT_EQ(checkpoint::CheckpointStore::round_of(generations[0]), 6u);
  {
    checkpoint::CheckpointWriter writer(6);
    writer.section(checkpoint::kSectionAux).put_u64(0);
    writer.write_torn(generations[0], 10);
  }

  CounterEngine second;
  const auto outcome =
      checkpoint::run_with_recovery(store, policy, 10, hooks_for(second));
  EXPECT_TRUE(outcome.resumed);
  EXPECT_EQ(outcome.corrupt_skipped, 1u);
  EXPECT_EQ(outcome.start_round, 3u);  // fell back to the round-3 generation
  EXPECT_EQ(second.sum, 55u);          // still the exact straight-run result
}

TEST_F(CheckpointFileTest, RecoveryResetsWhenEveryGenerationIsDead) {
  const checkpoint::CheckpointStore store(dir_ / "rec", 3);
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = 2;

  CounterEngine first;
  checkpoint::run_with_recovery(store, policy, 5, hooks_for(first));
  for (const auto& path : store.generations()) {
    checkpoint::CheckpointWriter writer(0);
    writer.section(checkpoint::kSectionAux).put_u64(0);
    writer.write_torn(path, 6);
  }

  CounterEngine second;
  const auto outcome =
      checkpoint::run_with_recovery(store, policy, 5, hooks_for(second));
  EXPECT_FALSE(outcome.resumed);
  EXPECT_EQ(outcome.corrupt_skipped, 2u);
  EXPECT_EQ(second.sum, 15u);
}

TEST_F(CheckpointFileTest, RecoveryCanRefuseColdStartOverCorruptStore) {
  // Same dead store as above, but with fail_when_all_corrupt the silent
  // round-0 replay becomes a typed error instead.
  const checkpoint::CheckpointStore store(dir_ / "rec", 3);
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = 2;

  CounterEngine first;
  checkpoint::run_with_recovery(store, policy, 5, hooks_for(first));
  for (const auto& path : store.generations()) {
    checkpoint::CheckpointWriter writer(0);
    writer.section(checkpoint::kSectionAux).put_u64(0);
    writer.write_torn(path, 6);
  }

  CounterEngine second;
  checkpoint::RecoveryOptions options;
  options.fail_when_all_corrupt = true;
  EXPECT_THROW(
      checkpoint::run_with_recovery(store, policy, 5, hooks_for(second),
                                    options),
      checkpoint::AllGenerationsCorruptError);
  // An empty store is a legitimate cold start, never a corruption error.
  const checkpoint::CheckpointStore fresh(dir_ / "fresh", 3);
  CounterEngine third;
  EXPECT_NO_THROW(checkpoint::run_with_recovery(fresh, policy, 5,
                                                hooks_for(third), options));
  EXPECT_EQ(third.sum, 15u);
}

// ---------------------------------------------------------------------------
// run_supervised: the crash-loop guard
// ---------------------------------------------------------------------------

/// Supervisor options with an instant, recorded backoff.
checkpoint::SupervisorOptions recorded_supervisor(
    std::vector<std::chrono::milliseconds>& waits, std::size_t max_restarts) {
  checkpoint::SupervisorOptions options;
  options.max_restarts = max_restarts;
  options.backoff_base = std::chrono::milliseconds{100};
  options.backoff_cap = std::chrono::milliseconds{250};
  options.sleep = [&waits](std::chrono::milliseconds w) {
    waits.push_back(w);
  };
  return options;
}

TEST_F(CheckpointFileTest, SupervisorCompletesHealthyRunFirstAttempt) {
  const checkpoint::CheckpointStore store(dir_ / "sup", 2);
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = 3;

  CounterEngine engine;
  std::vector<std::chrono::milliseconds> waits;
  const auto outcome = checkpoint::run_supervised(
      store, policy, 10, hooks_for(engine), recorded_supervisor(waits, 3));
  EXPECT_EQ(outcome.exit_code, checkpoint::kSupervisorOk);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.crashes, 0u);
  EXPECT_TRUE(waits.empty());
  EXPECT_TRUE(outcome.last_error.empty());
  EXPECT_EQ(outcome.recovery.completed_rounds, 10u);
  EXPECT_EQ(engine.sum, 55u);
}

TEST_F(CheckpointFileTest, SupervisorRetriesCrashesWithCappedBackoff) {
  // Two crashed attempts, then a clean one: the supervisor resumes from the
  // last good generation each time and reaches the exact straight-run state.
  const checkpoint::CheckpointStore store(dir_ / "sup", 2);
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = 3;

  CounterEngine engine;
  std::size_t crashes_left = 2;
  checkpoint::RecoveryHooks hooks = hooks_for(engine);
  const auto plain_step = hooks.step;
  hooks.step = [&](std::size_t round) {
    if (round == 5 && crashes_left > 0) {
      --crashes_left;
      throw std::runtime_error("injected crash at round 5");
    }
    plain_step(round);
  };

  std::vector<std::chrono::milliseconds> waits;
  const auto outcome = checkpoint::run_supervised(
      store, policy, 10, hooks, recorded_supervisor(waits, 3));
  EXPECT_EQ(outcome.exit_code, checkpoint::kSupervisorOk);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(outcome.crashes, 2u);
  // Exponential, capped: 100ms, then min(200, 250)ms.
  EXPECT_EQ(waits, (std::vector<std::chrono::milliseconds>{
                       std::chrono::milliseconds{100},
                       std::chrono::milliseconds{200}}));
  EXPECT_EQ(outcome.backoff_total, std::chrono::milliseconds{300});
  EXPECT_TRUE(outcome.recovery.resumed);  // final attempt resumed, not reset
  EXPECT_EQ(engine.sum, 55u);             // bit-identical to a straight run
}

TEST_F(CheckpointFileTest, SupervisorStopsAfterRestartBudget) {
  // A deterministic crash survives every replay; the guard must give up
  // with the distinct crash-loop exit code instead of retrying forever.
  const checkpoint::CheckpointStore store(dir_ / "sup", 2);
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = 3;

  CounterEngine engine;
  checkpoint::RecoveryHooks hooks = hooks_for(engine);
  hooks.step = [](std::size_t round) {
    if (round == 4) throw std::runtime_error("deterministic fault");
  };

  std::vector<std::chrono::milliseconds> waits;
  const auto outcome = checkpoint::run_supervised(
      store, policy, 10, hooks, recorded_supervisor(waits, 2));
  EXPECT_EQ(outcome.exit_code, checkpoint::kSupervisorCrashLoop);
  EXPECT_EQ(outcome.attempts, 3u);  // first try + max_restarts retries
  EXPECT_EQ(outcome.crashes, 3u);
  // Backoff after crashes 1 and 2 only; the final crash exits instead.
  EXPECT_EQ(waits, (std::vector<std::chrono::milliseconds>{
                       std::chrono::milliseconds{100},
                       std::chrono::milliseconds{200}}));
  EXPECT_EQ(outcome.last_error, "deterministic fault");
}

TEST_F(CheckpointFileTest, SupervisorFlagsFullyCorruptStoreImmediately) {
  // All generations dead is operator territory: distinct exit code, no
  // restart burn (replaying from round 0 would hide the corruption).
  const checkpoint::CheckpointStore store(dir_ / "sup", 3);
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = 2;

  CounterEngine first;
  checkpoint::run_with_recovery(store, policy, 5, hooks_for(first));
  for (const auto& path : store.generations()) {
    checkpoint::CheckpointWriter writer(0);
    writer.section(checkpoint::kSectionAux).put_u64(0);
    writer.write_torn(path, 6);
  }

  CounterEngine second;
  std::vector<std::chrono::milliseconds> waits;
  const auto outcome = checkpoint::run_supervised(
      store, policy, 5, hooks_for(second), recorded_supervisor(waits, 5));
  EXPECT_EQ(outcome.exit_code, checkpoint::kSupervisorAllCorrupt);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.crashes, 0u);
  EXPECT_TRUE(waits.empty());
  EXPECT_FALSE(outcome.last_error.empty());
}

// ---------------------------------------------------------------------------
// CrashInjector plans
// ---------------------------------------------------------------------------

TEST(CrashInjectorTest, ParsePlans) {
  using faults::CrashStage;
  EXPECT_EQ(faults::CrashInjector::parse_plan("before:5").stage,
            CrashStage::kBeforeRound);
  EXPECT_EQ(faults::CrashInjector::parse_plan("before:5").round, 5u);
  EXPECT_EQ(faults::CrashInjector::parse_plan("after:12").stage,
            CrashStage::kAfterRound);
  EXPECT_EQ(faults::CrashInjector::parse_plan("midwrite:0").stage,
            CrashStage::kMidCheckpointWrite);
  // Malformed specs disarm rather than crash at round 0.
  for (const char* bad : {"", "before", "before:", "before:x", "late:3"}) {
    EXPECT_EQ(faults::CrashInjector::parse_plan(bad).stage, CrashStage::kNone)
        << bad;
  }
}

TEST(CrashInjectorTest, DisarmedInjectorNeverFires) {
  const faults::CrashInjector injector;
  EXPECT_FALSE(injector.armed());
  injector.before_round(0);  // must not exit
  injector.after_round(0);
  EXPECT_FALSE(injector.tears_checkpoint(0));
}

TEST(CrashInjectorTest, TearPredicateMatchesPlannedRound) {
  const faults::CrashInjector injector(
      faults::CrashInjector::parse_plan("midwrite:8"));
  EXPECT_TRUE(injector.armed());
  EXPECT_TRUE(injector.tears_checkpoint(8));
  EXPECT_FALSE(injector.tears_checkpoint(7));
  injector.before_round(8);  // wrong stage: must not exit
  injector.after_round(8);
}

// ---------------------------------------------------------------------------
// Transient-filesystem-error retry (bounded, with backoff)
// ---------------------------------------------------------------------------

TEST(FsRetryTest, ClassifiesTransientErrors) {
  using checkpoint::is_transient_fs_error;
  EXPECT_TRUE(is_transient_fs_error(
      std::make_error_code(std::errc::interrupted)));
  EXPECT_TRUE(is_transient_fs_error(
      std::make_error_code(std::errc::no_space_on_device)));
  EXPECT_TRUE(is_transient_fs_error(
      std::make_error_code(std::errc::resource_unavailable_try_again)));
  EXPECT_FALSE(is_transient_fs_error(
      std::make_error_code(std::errc::no_such_file_or_directory)));
  EXPECT_FALSE(is_transient_fs_error(
      std::make_error_code(std::errc::permission_denied)));
  EXPECT_FALSE(is_transient_fs_error(std::error_code{}));  // success
}

TEST(FsRetryTest, TransientFailureRetriesWithExponentialBackoff) {
  std::size_t calls = 0;
  std::vector<std::size_t> sleeps;
  const std::error_code ec = checkpoint::retry_transient_fs(
      [&] {
        ++calls;
        if (calls < 3) {
          return std::make_error_code(std::errc::interrupted);
        }
        return std::error_code{};
      },
      checkpoint::FsRetryPolicy{},
      [&](std::size_t ms) { sleeps.push_back(ms); });
  EXPECT_FALSE(ec);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(sleeps, (std::vector<std::size_t>{1, 4}));
}

TEST(FsRetryTest, NonTransientFailureReturnsImmediately) {
  std::size_t calls = 0;
  std::size_t slept = 0;
  const std::error_code ec = checkpoint::retry_transient_fs(
      [&] {
        ++calls;
        return std::make_error_code(std::errc::no_such_file_or_directory);
      },
      checkpoint::FsRetryPolicy{}, [&](std::size_t) { ++slept; });
  EXPECT_EQ(ec, std::make_error_code(std::errc::no_such_file_or_directory));
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(slept, 0u);
}

TEST(FsRetryTest, PersistentTransientFailureExhaustsAttempts) {
  std::size_t calls = 0;
  std::vector<std::size_t> sleeps;
  checkpoint::FsRetryPolicy policy;  // attempts=4, 1ms x4 backoff
  const std::error_code ec = checkpoint::retry_transient_fs(
      [&] {
        ++calls;
        return std::make_error_code(std::errc::no_space_on_device);
      },
      policy, [&](std::size_t ms) { sleeps.push_back(ms); });
  EXPECT_EQ(ec, std::make_error_code(std::errc::no_space_on_device));
  EXPECT_EQ(calls, policy.attempts);
  // No sleep after the final attempt.
  EXPECT_EQ(sleeps, (std::vector<std::size_t>{1, 4, 16}));
}

TEST_F(CheckpointFileTest, WriteToMissingDirectoryFailsWithoutTmpResidue) {
  const fs::path missing = dir_ / "absent" / "ckpt-00000001.avcp";
  // ENOENT is not transient: the failure must surface on the first attempt
  // as a typed CheckpointError, with no .tmp left behind.
  EXPECT_THROW(make_writer().write(missing), checkpoint::CheckpointError);
  EXPECT_FALSE(fs::exists(missing));
  fs::path tmp = missing;
  tmp += ".tmp";
  EXPECT_FALSE(fs::exists(tmp));
}

}  // namespace
}  // namespace avcp
