#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.h"
#include "common/rng.h"

namespace avcp {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0};
  RunningStats s;
  for (const double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.75);
  // Sample variance: sum((x - 3.75)^2) / 3 = (7.5625+3.0625+0.0625+18.0625)/3
  EXPECT_NEAR(s.variance(), 28.75 / 3.0, 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 8.0);
}

TEST(RunningStats, TracksMinMaxThroughNegatives) {
  RunningStats s;
  s.add(-2.0);
  s.add(5.0);
  s.add(-7.0);
  EXPECT_EQ(s.min(), -7.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
}

TEST(Stats, MeanSimple) {
  const std::vector<double> xs = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
}

TEST(Stats, StddevOfConstantIsZero) {
  const std::vector<double> xs = {5.0, 5.0, 5.0};
  EXPECT_EQ(stddev(xs), 0.0);
}

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> xs = {3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile({}, 50.0), ContractViolation);
  EXPECT_THROW(percentile(xs, -1.0), ContractViolation);
  EXPECT_THROW(percentile(xs, 101.0), ContractViolation);
}

TEST(CentralInterval, CoversExpectedMass) {
  Rng rng(5);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.normal();
  const auto [lo, hi] = central_interval(xs, 0.95);
  EXPECT_NEAR(lo, -1.96, 0.08);
  EXPECT_NEAR(hi, 1.96, 0.08);
}

TEST(Histogram, SeparatesOutOfRangeFromEdgeBins) {
  const std::vector<double> xs = {-1.0, 0.1, 0.5, 0.9, 2.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 1u);  // 0.1; the half-open split puts 0.5 above
  EXPECT_EQ(h.counts[1], 2u);  // 0.5, 0.9
  EXPECT_EQ(h.underflow, 1u);  // -1.0, no longer folded into counts[0]
  EXPECT_EQ(h.overflow, 1u);   // 2.0, no longer folded into counts[1]
}

TEST(Histogram, UpperEdgeIsClosed) {
  // x == hi belongs to the top bucket, not to overflow: [lo, hi] covers
  // the whole closed range, matching how sweep grids include both ends.
  const std::vector<double> xs = {0.0, 1.0};
  const auto h = histogram(xs, 0.0, 1.0, 4);
  EXPECT_EQ(h.counts.front(), 1u);
  EXPECT_EQ(h.counts.back(), 1u);
  EXPECT_EQ(h.underflow, 0u);
  EXPECT_EQ(h.overflow, 0u);
}

TEST(Histogram, InRangeMassIsConserved) {
  Rng rng(11);
  std::vector<double> xs(5000);
  for (double& x : xs) x = rng.normal();
  const auto h = histogram(xs, -1.0, 1.0, 10);
  std::size_t in_range = 0;
  for (const std::size_t c : h.counts) in_range += c;
  EXPECT_EQ(in_range + h.underflow + h.overflow, xs.size());
  EXPECT_GT(h.underflow, 0u);  // a standard normal spills both tails
  EXPECT_GT(h.overflow, 0u);
}

TEST(Histogram, RejectsZeroBins) {
  const std::vector<double> xs = {0.5};
  EXPECT_THROW(histogram(xs, 0.0, 1.0, 0), ContractViolation);
}

TEST(MinmaxNormalize, MapsToUnitRange) {
  const std::vector<double> xs = {10.0, 20.0, 15.0};
  const auto n = minmax_normalize(xs);
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 1.0);
  EXPECT_DOUBLE_EQ(n[2], 0.5);
}

TEST(MinmaxNormalize, ConstantInputMapsToZero) {
  const std::vector<double> xs = {7.0, 7.0};
  const auto n = minmax_normalize(xs);
  EXPECT_EQ(n[0], 0.0);
  EXPECT_EQ(n[1], 0.0);
}

TEST(MinmaxNormalize, EmptyStaysEmpty) {
  EXPECT_TRUE(minmax_normalize({}).empty());
}

}  // namespace
}  // namespace avcp
