// Regression lock for the parallel round engines' determinism contract:
// for any fixed seed, the full trajectory of every engine is bit-identical
// at every thread count. This is what lets num_threads be a pure throughput
// knob — experiments are reproducible on any machine regardless of core
// count. The contract is earned by construction (per-(round, region)
// hash-derived RNG streams, index-owned writes, caller-side reductions in
// index order — see common/thread_pool.h); these tests pin it.
#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "byzantine/adversary_model.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "byzantine/report_pipeline.h"
#include "core/fds.h"
#include "core/fleet_stream.h"
#include "faults/fault_model.h"
#include "sim/agent_sim.h"
#include "system/fleet_engine.h"
#include "system/system.h"
#include "test_support.h"

namespace avcp::system {
namespace {

using core::testing::make_chain_game;

// Engine-level counts: the engines clamp requests to the machine's core
// count (ThreadPool::clamped_lanes), so 13 exercises the clamp path on
// most machines and real extra lanes on big ones. Raw-pool counts below
// bypass the clamp to lock the protocol under true oversubscription.
constexpr std::size_t kThreadCounts[] = {1, 2, 3, 8, 13};
constexpr std::size_t kRounds = 12;

core::DesiredFields share_band_fields(std::size_t regions, double lo,
                                      double hi) {
  core::DesiredFields fields(regions, 8);
  for (core::RegionId i = 0; i < regions; ++i) {
    fields.set_target(i, 0, Interval{lo, hi});
  }
  return fields;
}

void expect_reports_identical(const RoundReport& a, const RoundReport& b,
                              std::size_t threads, std::size_t round) {
  ASSERT_EQ(a.x, b.x) << "threads " << threads << " round " << round;
  ASSERT_EQ(a.mean_utility, b.mean_utility)
      << "threads " << threads << " round " << round;
  ASSERT_EQ(a.mean_privacy, b.mean_privacy)
      << "threads " << threads << " round " << round;
  ASSERT_EQ(a.exposed_privacy, b.exposed_privacy)
      << "threads " << threads << " round " << round;
  ASSERT_EQ(a.state.p, b.state.p)
      << "threads " << threads << " round " << round;
  ASSERT_EQ(a.faults.uploads_lost, b.faults.uploads_lost);
  ASSERT_EQ(a.faults.deliveries_lost, b.faults.deliveries_lost);
  ASSERT_EQ(a.faults.uploads_lost_by_region, b.faults.uploads_lost_by_region);
  ASSERT_EQ(a.faults.deliveries_lost_by_region,
            b.faults.deliveries_lost_by_region);
  ASSERT_EQ(a.byzantine.observed.p, b.byzantine.observed.p);
  ASSERT_EQ(a.byzantine.beta, b.byzantine.beta);
  ASSERT_EQ(a.byzantine.gamma, b.byzantine.gamma);
  ASSERT_EQ(a.byzantine.density, b.byzantine.density);
  ASSERT_EQ(a.byzantine.reports_used, b.byzantine.reports_used);
  ASSERT_EQ(a.byzantine.outliers_rejected, b.byzantine.outliers_rejected);
  ASSERT_EQ(a.byzantine.quarantined, b.byzantine.quarantined);
  ASSERT_EQ(a.byzantine.total_quarantined, b.byzantine.total_quarantined);
}

/// Runs a fresh system trajectory at the given thread count.
std::vector<RoundReport> run_system(SystemParams params, std::size_t threads,
                                    const faults::FaultModel* faults,
                                    const byzantine::AdversaryModel* adversary,
                                    bool with_pipeline) {
  const auto game = make_chain_game(4);
  params.num_threads = threads;
  byzantine::PipelineOptions popts;
  popts.aggregator.mode = byzantine::AggregationMode::kMedian;
  byzantine::ReportPipeline pipeline(4, 8, params.vehicles_per_region, popts);
  CooperativePerceptionSystem sys(game, params, faults, adversary,
                                  with_pipeline ? &pipeline : nullptr);
  sys.init_from(game.uniform_state());
  core::FdsController controller(game, share_band_fields(4, 0.6, 1.0));
  std::vector<RoundReport> reports;
  reports.reserve(kRounds);
  for (std::size_t r = 0; r < kRounds; ++r) {
    reports.push_back(sys.run_round(controller));
  }
  return reports;
}

TEST(Determinism, SystemTrajectoryIsThreadCountInvariant) {
  SystemParams params;
  params.vehicles_per_region = 40;
  params.seed = 17;
  const auto baseline = run_system(params, 1, nullptr, nullptr, false);
  for (const std::size_t threads : kThreadCounts) {
    const auto run = run_system(params, threads, nullptr, nullptr, false);
    ASSERT_EQ(run.size(), baseline.size());
    for (std::size_t r = 0; r < baseline.size(); ++r) {
      expect_reports_identical(baseline[r], run[r], threads, r);
    }
  }
}

TEST(Determinism, FaultedSystemTrajectoryIsThreadCountInvariant) {
  SystemParams params;
  params.vehicles_per_region = 40;
  params.seed = 23;
  faults::FaultParams fparams;
  fparams.upload_loss_rate = 0.1;
  fparams.delivery_loss_rate = 0.05;
  fparams.outage_rate = 0.1;
  fparams.seed = 5;
  const faults::FaultModel faults(fparams);
  const auto baseline = run_system(params, 1, &faults, nullptr, false);
  for (const std::size_t threads : kThreadCounts) {
    const auto run = run_system(params, threads, &faults, nullptr, false);
    for (std::size_t r = 0; r < baseline.size(); ++r) {
      expect_reports_identical(baseline[r], run[r], threads, r);
    }
  }
}

TEST(Determinism, PipelinedByzantineTrajectoryIsThreadCountInvariant) {
  // The robust report pipeline (median aggregation, reputation scoring,
  // quarantine) runs per-region inside the parallel fan-out; its whole
  // observation series must be thread-count-invariant too.
  SystemParams params;
  params.vehicles_per_region = 40;
  params.seed = 31;
  byzantine::AdversaryParams aparams;
  aparams.attacker_fraction = 0.2;
  aparams.strategy = byzantine::AttackStrategy::kInflateSharing;
  aparams.seed = 13;
  const byzantine::AdversaryModel adversary(aparams);
  const auto baseline = run_system(params, 1, nullptr, &adversary, true);
  for (const std::size_t threads : kThreadCounts) {
    const auto run = run_system(params, threads, nullptr, &adversary, true);
    for (std::size_t r = 0; r < baseline.size(); ++r) {
      expect_reports_identical(baseline[r], run[r], threads, r);
    }
  }
}

TEST(Determinism, AggregatedSystemTrajectoryIsThreadCountInvariant) {
  // The class-aggregated kernel promises its own determinism (not pairwise
  // bit-identity): per-region plane ownership keeps its binomial/item draws
  // sequential per region, so the trajectory must not move with threads.
  SystemParams params;
  params.vehicles_per_region = 40;
  params.seed = 17;
  params.data_plane_mode = perception::DataPlaneMode::kClassAggregated;
  const auto baseline = run_system(params, 1, nullptr, nullptr, false);
  for (const std::size_t threads : kThreadCounts) {
    const auto run = run_system(params, threads, nullptr, nullptr, false);
    ASSERT_EQ(run.size(), baseline.size());
    for (std::size_t r = 0; r < baseline.size(); ++r) {
      expect_reports_identical(baseline[r], run[r], threads, r);
    }
  }
}

TEST(Determinism, MeasuredFitnessAgentSimIsThreadCountInvariant) {
  // Measured-fitness revision spins a real data plane per region; each
  // (round, region) synthesis uses its own hash-derived stream and each
  // region owns its evaluator, so thread count must stay a pure knob.
  const auto game = make_chain_game(4);
  const std::vector<double> x(4, 0.6);
  auto run = [&](std::size_t threads) {
    sim::AgentSimParams params;
    params.vehicles_per_region = 60;
    params.seed = 81;
    params.num_threads = threads;
    params.measured_fitness = true;
    params.exchange.mode = perception::DataPlaneMode::kClassAggregated;
    sim::AgentBasedSim sim(game, params);
    sim.init_from(game.uniform_state());
    std::vector<core::GameState> states;
    for (std::size_t r = 0; r < 10; ++r) {
      sim.step(x);
      states.push_back(sim.empirical_state());
    }
    return states;
  };
  const auto baseline = run(1);
  for (const std::size_t threads : kThreadCounts) {
    const auto states = run(threads);
    for (std::size_t r = 0; r < baseline.size(); ++r) {
      ASSERT_EQ(states[r].p, baseline[r].p)
          << "threads " << threads << " round " << r;
    }
  }
}

TEST(Determinism, AgentSimTrajectoryIsThreadCountInvariant) {
  const auto game = make_chain_game(5);
  const std::vector<double> x(5, 0.6);
  auto run = [&](std::size_t threads) {
    sim::AgentSimParams params;
    params.vehicles_per_region = 120;
    params.seed = 77;
    params.num_threads = threads;
    sim::AgentBasedSim sim(game, params);
    sim.init_from(game.uniform_state());
    std::vector<core::GameState> states;
    for (std::size_t r = 0; r < 20; ++r) {
      sim.step(x);
      states.push_back(sim.empirical_state());
    }
    return states;
  };
  const auto baseline = run(1);
  for (const std::size_t threads : kThreadCounts) {
    const auto states = run(threads);
    ASSERT_EQ(states.size(), baseline.size());
    for (std::size_t r = 0; r < baseline.size(); ++r) {
      ASSERT_EQ(states[r].p, baseline[r].p)
          << "threads " << threads << " round " << r;
    }
  }
}

TEST(Determinism, ProtocolHoldsUnderTrueOversubscription) {
  // The engines clamp their lane counts to the hardware, so system-level
  // runs can never oversubscribe; this locks the determinism protocol on
  // a raw ThreadPool whose constructor honours the exact count — 16 lanes
  // on any CI box means lanes the OS leaves unscheduled mid-stage. The
  // workload follows the protocol: per-index hash-derived RNG streams,
  // index-owned writes, caller-side ordered reduction, over a
  // cost-balanced chunk plan whose boundaries ignore lane count.
  constexpr std::size_t kN = 97;
  auto run = [&](std::size_t lanes) {
    ThreadPool pool(lanes);
    std::vector<double> cost(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      cost[i] = static_cast<double>(1 + (i * 13) % 7);
    }
    std::vector<double> out(kN, 0.0);
    pool.parallel_for_weighted(cost, [&](std::size_t i) {
      Rng rng(derive_seed(404, {0xD7, i}));
      double acc = 0.0;
      for (int k = 0; k < 32; ++k) acc += rng.uniform() * (k + 1);
      out[i] = acc;
    });
    double sum = 0.0;
    for (const double v : out) sum += v;  // index order on the caller
    return std::pair(out, sum);
  };
  const auto [base_out, base_sum] = run(1);
  for (const std::size_t lanes : {2, 8, 13, 16}) {
    const auto [out, sum] = run(static_cast<std::size_t>(lanes));
    ASSERT_EQ(out, base_out) << "lanes " << lanes;
    ASSERT_EQ(sum, base_sum) << "lanes " << lanes;
  }
}

TEST(Determinism, FleetEngineTrajectoryIsLaneCountInvariant) {
  // The sharded fleet engine follows the same protocol at fleet scale:
  // per-(round, shard) streams, shard-owned writes, caller-side fold in
  // shard order. clamp_lanes = false forces the raw lane counts so 8 and
  // 13 are true oversubscription even on a small machine.
  auto run = [](std::size_t lanes) {
    FleetEngineParams params;
    params.num_shards = 11;
    params.num_threads = lanes;
    params.clamp_lanes = false;
    params.seed = 905;
    ShardedFleetEngine engine(params);
    core::SyntheticFleetSource source(4000, 8, 905);
    engine.ingest(source);
    std::vector<FleetRoundStats> stats;
    std::vector<std::uint64_t> hashes;
    FleetRoundStats round;
    for (std::size_t r = 0; r < kRounds; ++r) {
      engine.run_round_into(0.6, round);
      stats.push_back(round);
      hashes.push_back(engine.state_hash());
    }
    return std::pair(stats, hashes);
  };
  const auto [base_stats, base_hashes] = run(1);
  for (const std::size_t lanes : kThreadCounts) {
    const auto [stats, hashes] = run(lanes);
    ASSERT_EQ(hashes, base_hashes) << "lanes " << lanes;
    for (std::size_t r = 0; r < base_stats.size(); ++r) {
      ASSERT_EQ(stats[r].mean_utility, base_stats[r].mean_utility)
          << "lanes " << lanes << " round " << r;
      ASSERT_EQ(stats[r].mean_privacy, base_stats[r].mean_privacy)
          << "lanes " << lanes << " round " << r;
      ASSERT_EQ(stats[r].exposed_privacy, base_stats[r].exposed_privacy)
          << "lanes " << lanes << " round " << r;
      ASSERT_EQ(stats[r].mean_fitness, base_stats[r].mean_fitness)
          << "lanes " << lanes << " round " << r;
      ASSERT_EQ(stats[r].deliveries, base_stats[r].deliveries)
          << "lanes " << lanes << " round " << r;
      ASSERT_EQ(stats[r].decision_share, base_stats[r].decision_share)
          << "lanes " << lanes << " round " << r;
    }
  }
}

TEST(Determinism, FleetEngineIsIngestBatchSizeInvariant) {
  // Streaming ingestion must be a pure routing step: the same source
  // consumed in different batch sizes (and across repeated ingest calls)
  // yields bit-identical trajectories.
  auto run = [](std::size_t batch) {
    FleetEngineParams params;
    params.num_shards = 5;
    params.seed = 331;
    params.ingest_batch = batch;
    ShardedFleetEngine engine(params);
    core::SyntheticFleetSource source(3000, 8, 331);
    engine.ingest(source);
    std::vector<std::uint64_t> hashes;
    FleetRoundStats round;
    for (std::size_t r = 0; r < 6; ++r) {
      engine.run_round_into(0.7, round);
      hashes.push_back(engine.state_hash());
    }
    return hashes;
  };
  const auto baseline = run(3000);
  EXPECT_EQ(run(1), baseline);       // one seed per pull
  EXPECT_EQ(run(7), baseline);       // batch not dividing the count
  EXPECT_EQ(run(100000), baseline);  // single oversized pull
}

TEST(Determinism, HardwareThreadCountMatchesSerial) {
  // num_threads = 0 resolves to hardware concurrency — whatever that is on
  // the machine running the tests, the trajectory must not move.
  SystemParams params;
  params.vehicles_per_region = 30;
  params.seed = 41;
  const auto baseline = run_system(params, 1, nullptr, nullptr, false);
  const auto run = run_system(params, 0, nullptr, nullptr, false);
  for (std::size_t r = 0; r < baseline.size(); ++r) {
    expect_reports_identical(baseline[r], run[r], 0, r);
  }
}

}  // namespace
}  // namespace avcp::system
