#include "common/heatmap.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/contracts.h"

namespace avcp {
namespace {

TEST(HeatGrid, ConstructionAndAccess) {
  HeatGrid grid(3, 4, 1.5);
  EXPECT_EQ(grid.rows(), 3u);
  EXPECT_EQ(grid.cols(), 4u);
  EXPECT_EQ(grid.at(2, 3), 1.5);
  grid.at(1, 2) = 9.0;
  EXPECT_EQ(grid.at(1, 2), 9.0);
}

TEST(HeatGrid, RejectsZeroSize) {
  EXPECT_THROW(HeatGrid(0, 3), ContractViolation);
  EXPECT_THROW(HeatGrid(3, 0), ContractViolation);
}

TEST(HeatGrid, OutOfRangeAccessThrows) {
  HeatGrid grid(2, 2);
  EXPECT_THROW(grid.at(2, 0), ContractViolation);
  EXPECT_THROW(grid.at(0, 2), ContractViolation);
}

TEST(HeatGrid, SplatAccumulates) {
  HeatGrid grid(2, 2);
  grid.splat(0.25, 0.25, 1.0);
  grid.splat(0.25, 0.25, 2.0);
  EXPECT_EQ(grid.at(0, 0), 3.0);
  EXPECT_EQ(grid.at(1, 1), 0.0);
}

TEST(HeatGrid, SplatClampsOutOfRange) {
  HeatGrid grid(2, 2);
  grid.splat(-5.0, 2.0, 1.0);  // clamps to col 0, row 1
  EXPECT_EQ(grid.at(1, 0), 1.0);
}

TEST(HeatGrid, RenderAsciiShape) {
  HeatGrid grid(3, 5);
  const std::string out = grid.render_ascii();
  // 3 lines of 5 chars plus newline each.
  EXPECT_EQ(out.size(), 3u * 6u);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(HeatGrid, RenderAsciiUsesFullRamp) {
  HeatGrid grid(1, 2);
  grid.at(0, 0) = 0.0;
  grid.at(0, 1) = 10.0;
  const std::string out = grid.render_ascii();
  EXPECT_EQ(out[0], ' ');  // min maps to lightest
  EXPECT_EQ(out[1], '@');  // max maps to darkest
}

TEST(HeatGrid, RenderAsciiConstantGridIsBlank) {
  HeatGrid grid(2, 2, 5.0);
  const std::string out = grid.render_ascii();
  EXPECT_EQ(std::count(out.begin(), out.end(), ' '), 4);
}

TEST(HeatGrid, RenderAsciiNorthUp) {
  HeatGrid grid(2, 1);
  grid.at(1, 0) = 10.0;  // top row (higher y)
  const std::string out = grid.render_ascii();
  // First rendered line is row 1 (north); should be the dark cell.
  EXPECT_EQ(out[0], '@');
  EXPECT_EQ(out[2], ' ');
}

TEST(HeatGrid, RenderLabels) {
  HeatGrid grid(1, 3);
  grid.at(0, 0) = 4.0;
  grid.at(0, 1) = 13.0;  // mod 10 -> 3
  grid.at(0, 2) = -1.0;  // negative -> '.'
  const std::string out = grid.render_labels();
  EXPECT_EQ(out[0], '4');
  EXPECT_EQ(out[1], '3');
  EXPECT_EQ(out[2], '.');
}

}  // namespace
}  // namespace avcp
