#include "core/lattice.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/contracts.h"

namespace avcp::core {
namespace {

TEST(Lattice, PaperNumberingForThreeSensors) {
  // Sensor order [camera, lidar, radar]; camera occupies the most
  // significant bit, so the paper's P1..P8 masks are:
  const DecisionLattice lattice(3);
  ASSERT_EQ(lattice.num_decisions(), 8u);
  EXPECT_EQ(lattice.mask(0), 0b111u);  // P1 {cam,lid,rad}
  EXPECT_EQ(lattice.mask(1), 0b110u);  // P2 {cam,lid}
  EXPECT_EQ(lattice.mask(2), 0b101u);  // P3 {cam,rad}
  EXPECT_EQ(lattice.mask(3), 0b011u);  // P4 {lid,rad}
  EXPECT_EQ(lattice.mask(4), 0b100u);  // P5 {cam}
  EXPECT_EQ(lattice.mask(5), 0b010u);  // P6 {lid}
  EXPECT_EQ(lattice.mask(6), 0b001u);  // P7 {rad}
  EXPECT_EQ(lattice.mask(7), 0b000u);  // P8 {}
}

TEST(Lattice, DecisionOfIsInverseOfMask) {
  const DecisionLattice lattice(3);
  for (DecisionId k = 0; k < lattice.num_decisions(); ++k) {
    EXPECT_EQ(lattice.decision_of(lattice.mask(k)), k);
  }
}

TEST(Lattice, SharesMatchesPaperTable) {
  const DecisionLattice lattice(3);
  // P3 = {camera, radar}: shares sensor 0 and 2, not 1.
  EXPECT_TRUE(lattice.shares(2, 0));
  EXPECT_FALSE(lattice.shares(2, 1));
  EXPECT_TRUE(lattice.shares(2, 2));
  // P8 shares nothing.
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_FALSE(lattice.shares(7, s));
  }
}

TEST(Lattice, CardinalityDecreasesAlongNumbering) {
  const DecisionLattice lattice(3);
  EXPECT_EQ(lattice.cardinality(0), 3u);
  EXPECT_EQ(lattice.cardinality(1), 2u);
  EXPECT_EQ(lattice.cardinality(4), 1u);
  EXPECT_EQ(lattice.cardinality(7), 0u);
  for (DecisionId k = 1; k < lattice.num_decisions(); ++k) {
    EXPECT_LE(lattice.cardinality(k), lattice.cardinality(k - 1));
  }
}

TEST(Lattice, PreceqSemantics) {
  const DecisionLattice lattice(3);
  // P1 precedes everything (every P^l is a subset of Omega).
  for (DecisionId l = 0; l < 8; ++l) {
    EXPECT_TRUE(lattice.preceq(0, l));
  }
  // Everything precedes P8 (empty set is a subset of all).
  for (DecisionId k = 0; k < 8; ++k) {
    EXPECT_TRUE(lattice.preceq(k, 7));
  }
  // P2 {cam,lid} vs P3 {cam,rad}: incomparable.
  EXPECT_FALSE(lattice.preceq(1, 2));
  EXPECT_FALSE(lattice.preceq(2, 1));
  // P2 {cam,lid} precedes P5 {cam} and P6 {lid} but not P7 {rad}.
  EXPECT_TRUE(lattice.preceq(1, 4));
  EXPECT_TRUE(lattice.preceq(1, 5));
  EXPECT_FALSE(lattice.preceq(1, 6));
}

TEST(Lattice, PrecedesIsStrict) {
  const DecisionLattice lattice(3);
  for (DecisionId k = 0; k < 8; ++k) {
    EXPECT_TRUE(lattice.preceq(k, k));
    EXPECT_FALSE(lattice.precedes(k, k));
  }
  EXPECT_TRUE(lattice.precedes(0, 1));
  EXPECT_FALSE(lattice.precedes(1, 0));
}

TEST(Lattice, AccessibleSetsOfExtremes) {
  const DecisionLattice lattice(3);
  // Sharing everything grants access to every group.
  EXPECT_EQ(lattice.accessible(0, AccessRule::kSubsetOrEqual).size(), 8u);
  EXPECT_EQ(lattice.accessible(0, AccessRule::kStrictSubset).size(), 7u);
  // Sharing nothing only accesses the (worthless) empty-share group.
  const auto none = lattice.accessible(7, AccessRule::kSubsetOrEqual);
  ASSERT_EQ(none.size(), 1u);
  EXPECT_EQ(none[0], 7u);
  EXPECT_TRUE(lattice.accessible(7, AccessRule::kStrictSubset).empty());
}

TEST(Lattice, AccessibleMatchesPreceq) {
  const DecisionLattice lattice(3);
  for (DecisionId k = 0; k < 8; ++k) {
    const auto acc = lattice.accessible(k, AccessRule::kSubsetOrEqual);
    const std::set<DecisionId> acc_set(acc.begin(), acc.end());
    for (DecisionId l = 0; l < 8; ++l) {
      EXPECT_EQ(acc_set.contains(l), lattice.preceq(k, l))
          << "k=" << k << " l=" << l;
    }
  }
}

TEST(Lattice, HasseEdgesMatchFigure2) {
  const DecisionLattice lattice(3);
  const auto edges = lattice.hasse_edges();
  // Fig. 2's DAG of the boolean lattice B_3: 3 * 2^2 = 12 cover edges.
  EXPECT_EQ(edges.size(), 12u);
  // Spot-check: P1 covers P2, P3, P4.
  std::set<std::pair<DecisionId, DecisionId>> edge_set(edges.begin(),
                                                       edges.end());
  EXPECT_TRUE(edge_set.contains({0, 1}));
  EXPECT_TRUE(edge_set.contains({0, 2}));
  EXPECT_TRUE(edge_set.contains({0, 3}));
  // P5 {cam} covers only P8.
  EXPECT_TRUE(edge_set.contains({4, 7}));
  EXPECT_FALSE(edge_set.contains({4, 5}));
  // Every edge removes exactly one sensor.
  for (const auto& [k, l] : edges) {
    EXPECT_EQ(lattice.cardinality(k), lattice.cardinality(l) + 1);
    EXPECT_TRUE(lattice.precedes(k, l));
  }
}

TEST(Lattice, Labels) {
  const DecisionLattice lattice(3);
  EXPECT_EQ(lattice.label(0), "P1{cam,lid,rad}");
  EXPECT_EQ(lattice.label(2), "P3{cam,rad}");
  EXPECT_EQ(lattice.label(7), "P8{}");
  const std::vector<std::string> names = {"C", "L", "R"};
  EXPECT_EQ(lattice.label(1, names), "P2{C,L}");
}

TEST(Lattice, RejectsBadSensorCounts) {
  EXPECT_THROW(DecisionLattice(0), ContractViolation);
  EXPECT_THROW(DecisionLattice(17), ContractViolation);
}

// Partial-order axioms over lattices of different sensor counts.
class LatticeOrderSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LatticeOrderSweep, PreceqIsAPartialOrder) {
  const DecisionLattice lattice(GetParam());
  const auto n = static_cast<DecisionId>(lattice.num_decisions());
  for (DecisionId a = 0; a < n; ++a) {
    EXPECT_TRUE(lattice.preceq(a, a));  // reflexive
    for (DecisionId b = 0; b < n; ++b) {
      if (lattice.preceq(a, b) && lattice.preceq(b, a)) {
        EXPECT_EQ(a, b);  // antisymmetric
      }
      for (DecisionId c = 0; c < n; ++c) {
        if (lattice.preceq(a, b) && lattice.preceq(b, c)) {
          EXPECT_TRUE(lattice.preceq(a, c));  // transitive
        }
      }
    }
  }
}

TEST_P(LatticeOrderSweep, ExtremesAreSharedAllAndNone) {
  const DecisionLattice lattice(GetParam());
  const auto n = lattice.num_sensors();
  EXPECT_EQ(lattice.cardinality(0), n);  // P1 shares everything
  EXPECT_EQ(lattice.cardinality(static_cast<DecisionId>(
                lattice.num_decisions() - 1)),
            0u);  // PK shares nothing
}

TEST_P(LatticeOrderSweep, AccessibleIsMonotoneInSharing) {
  // If P^a superset P^b then a's accessible set contains b's.
  const DecisionLattice lattice(GetParam());
  const auto n = static_cast<DecisionId>(lattice.num_decisions());
  for (DecisionId a = 0; a < n; ++a) {
    for (DecisionId b = 0; b < n; ++b) {
      if (!lattice.preceq(a, b)) continue;  // P^b subset of P^a
      const auto acc_a = lattice.accessible(a, AccessRule::kSubsetOrEqual);
      const auto acc_b = lattice.accessible(b, AccessRule::kSubsetOrEqual);
      const std::set<DecisionId> set_a(acc_a.begin(), acc_a.end());
      for (const DecisionId l : acc_b) {
        EXPECT_TRUE(set_a.contains(l));
      }
    }
  }
}

TEST_P(LatticeOrderSweep, HasseEdgeCountIsNTimesHalfK) {
  const DecisionLattice lattice(GetParam());
  const std::size_t n = lattice.num_sensors();
  const std::size_t k = lattice.num_decisions();
  EXPECT_EQ(lattice.hasse_edges().size(), n * k / 2);
}

INSTANTIATE_TEST_SUITE_P(SensorCounts, LatticeOrderSweep,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace avcp::core
