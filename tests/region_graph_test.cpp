#include "cluster/region_graph.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace avcp::cluster {
namespace {

TEST(RegionGraph, AccumulateIsSymmetric) {
  RegionGraph g(3);
  g.accumulate(0, 1, 2.0);
  g.accumulate(1, 2, 4.0);
  g.finalize(1.0);
  EXPECT_DOUBLE_EQ(g.gamma(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.gamma(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(g.gamma(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(g.gamma(0, 2), 0.0);
}

TEST(RegionGraph, SelfAccumulateCountsOnce) {
  RegionGraph g(2);
  g.accumulate(0, 0, 3.0);
  g.finalize(1.0);
  EXPECT_DOUBLE_EQ(g.gamma(0, 0), 3.0);
}

TEST(RegionGraph, FinalizeNormalizes) {
  RegionGraph g(2);
  g.accumulate(0, 1, 10.0);
  g.finalize(5.0);
  EXPECT_DOUBLE_EQ(g.gamma(0, 1), 2.0);
}

TEST(RegionGraph, NeighborsExcludeSelfAndZeroEdges) {
  RegionGraph g(4);
  g.accumulate(0, 0, 5.0);
  g.accumulate(0, 2, 1.0);
  g.finalize(1.0);
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 1u);
  EXPECT_EQ(n0[0], 2u);
  EXPECT_TRUE(g.neighbors(1).empty());
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(RegionGraph, NeighborsBeforeFinalizeRejected) {
  RegionGraph g(2);
  EXPECT_THROW(g.neighbors(0), ContractViolation);
}

TEST(RegionGraph, RescaleMax) {
  RegionGraph g(2);
  g.accumulate(0, 1, 4.0);
  g.accumulate(0, 0, 2.0);
  g.finalize(1.0);
  g.rescale_max(1.0);
  EXPECT_DOUBLE_EQ(g.gamma(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.gamma(0, 0), 0.5);
}

TEST(RegionGraph, RescaleOnAllZeroIsNoop) {
  RegionGraph g(2);
  g.finalize(1.0);
  g.rescale_max(1.0);
  EXPECT_DOUBLE_EQ(g.gamma(0, 1), 0.0);
}

TEST(BuildRegionGraph, CountsCoPresencePairsExactly) {
  // 2 segments, segment 0 -> region 0, segment 1 -> region 1; both segments
  // in cell 0. Window = 10 s, duration = 20 s.
  const std::vector<RegionId> region_of = {0, 1};
  const std::vector<spatial::ServerId> cell_of = {0, 0};
  RegionGraphInputs inputs;
  inputs.region_of_segment = region_of;
  inputs.cell_of_segment = cell_of;
  inputs.num_regions = 2;
  inputs.num_cells = 1;
  inputs.window_s = 10.0;
  inputs.duration_s = 20.0;

  // Window 0: vehicles 1, 2 on segment 0 (region 0); vehicle 3 on segment 1
  // (region 1). Pairs: inner region0 = 1, cross = 2*1 = 2.
  // Window 1: vehicle 1 on segment 1 only. No pairs.
  const std::vector<trace::GpsFix> fixes = {
      {1, 1.0, {}, 0.0, 0}, {2, 2.0, {}, 0.0, 0}, {3, 3.0, {}, 0.0, 1},
      {1, 5.0, {}, 0.0, 0},  // duplicate presence of vehicle 1: ignored
      {1, 12.0, {}, 0.0, 1},
  };
  const RegionGraph g = build_region_graph(fixes, inputs);
  // Rates = pair counts / duration.
  EXPECT_DOUBLE_EQ(g.gamma(0, 0), 1.0 / 20.0);
  EXPECT_DOUBLE_EQ(g.gamma(0, 1), 2.0 / 20.0);
  EXPECT_DOUBLE_EQ(g.gamma(1, 1), 0.0);
}

TEST(BuildRegionGraph, SeparateCellsDoNotPair) {
  // Same regions but the two segments are covered by different servers:
  // vehicles cannot exchange data, so no cross-region gamma.
  const std::vector<RegionId> region_of = {0, 1};
  const std::vector<spatial::ServerId> cell_of = {0, 1};
  RegionGraphInputs inputs;
  inputs.region_of_segment = region_of;
  inputs.cell_of_segment = cell_of;
  inputs.num_regions = 2;
  inputs.num_cells = 2;
  inputs.window_s = 10.0;
  inputs.duration_s = 10.0;

  const std::vector<trace::GpsFix> fixes = {
      {1, 1.0, {}, 0.0, 0},
      {2, 2.0, {}, 0.0, 1},
  };
  const RegionGraph g = build_region_graph(fixes, inputs);
  EXPECT_DOUBLE_EQ(g.gamma(0, 1), 0.0);
}

TEST(BuildRegionGraph, VehicleCountedOncePerWindow) {
  const std::vector<RegionId> region_of = {0};
  const std::vector<spatial::ServerId> cell_of = {0};
  RegionGraphInputs inputs;
  inputs.region_of_segment = region_of;
  inputs.cell_of_segment = cell_of;
  inputs.num_regions = 1;
  inputs.num_cells = 1;
  inputs.window_s = 10.0;
  inputs.duration_s = 10.0;

  // One vehicle reporting 5 times: zero pairs.
  std::vector<trace::GpsFix> fixes;
  for (int i = 0; i < 5; ++i) {
    fixes.push_back({9, static_cast<double>(i), {}, 0.0, 0});
  }
  const RegionGraph g = build_region_graph(fixes, inputs);
  EXPECT_DOUBLE_EQ(g.gamma(0, 0), 0.0);
}

TEST(BuildRegionGraph, ThreeVehiclesInnerPairs) {
  const std::vector<RegionId> region_of = {0};
  const std::vector<spatial::ServerId> cell_of = {0};
  RegionGraphInputs inputs;
  inputs.region_of_segment = region_of;
  inputs.cell_of_segment = cell_of;
  inputs.num_regions = 1;
  inputs.num_cells = 1;
  inputs.window_s = 10.0;
  inputs.duration_s = 10.0;

  const std::vector<trace::GpsFix> fixes = {
      {1, 0.0, {}, 0.0, 0}, {2, 0.0, {}, 0.0, 0}, {3, 0.0, {}, 0.0, 0}};
  const RegionGraph g = build_region_graph(fixes, inputs);
  // 3 choose 2 = 3 pairs over 10 s.
  EXPECT_DOUBLE_EQ(g.gamma(0, 0), 0.3);
}

}  // namespace
}  // namespace avcp::cluster
