// Gate for the class-aggregated data-plane kernel (DataPlaneMode::
// kClassAggregated): it must agree with the pairwise-exact kernel exactly
// wherever no randomness is involved (x = 0, x = 1, uploads, privacy,
// exposure, access control) and in distribution everywhere else (seeded
// multi-seed averages of utility and deliveries within a tolerance band).
#include "perception/data_plane.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.h"
#include "common/rng.h"

namespace avcp::perception {
namespace {

using core::AccessRule;
using core::DecisionLattice;

DataUniverse make_universe(std::size_t items_per_sensor = 2) {
  DataUniverse universe(3);
  for (std::size_t s = 0; s < 3; ++s) {
    const double privacy = s == 0 ? 1.0 : (s == 1 ? 0.5 : 0.1);
    for (std::size_t i = 0; i < items_per_sensor; ++i) {
      universe.add_item(s, 1.0, privacy);
    }
  }
  return universe;
}

Vehicle make_vehicle(core::DecisionId decision, ItemSet collected,
                     ItemSet desired) {
  Vehicle v;
  v.decision = decision;
  v.collected = std::move(collected);
  v.desired = std::move(desired);
  return v;
}

std::vector<Vehicle> random_fleet(const DataUniverse& universe, std::size_t n,
                                  Rng& rng) {
  std::vector<Vehicle> fleet(n);
  for (auto& v : fleet) {
    v.decision = static_cast<core::DecisionId>(rng.uniform_int(0, 7));
    for (ItemId id = 0; id < universe.size(); ++id) {
      if (rng.bernoulli(0.4)) v.collected.push_back(id);
      if (rng.bernoulli(0.3)) v.desired.push_back(id);
    }
    if (v.desired.empty()) v.desired.push_back(0);
  }
  return fleet;
}

// At x = 0 and x = 1 neither kernel consumes randomness, and the aggregated
// construction is exact (not just in-distribution): outcomes must be equal.
TEST(AggregatedKernel, DeterministicEndpointsMatchExactKernel) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe(4);
  Rng rng(101);
  const auto fleet = random_fleet(universe, 50, rng);
  for (const double x : {0.0, 1.0}) {
    EdgeServerDataPlane exact(lattice, universe, AccessRule::kSubsetOrEqual, 3);
    EdgeServerDataPlane agg(lattice, universe, AccessRule::kSubsetOrEqual, 3);
    const auto a = exact.run_round(fleet, x);
    const auto b = agg.run_round_aggregated(fleet, x);
    EXPECT_EQ(a.utility, b.utility) << "x = " << x;
    EXPECT_EQ(a.privacy, b.privacy) << "x = " << x;
    EXPECT_EQ(a.deliveries, b.deliveries) << "x = " << x;
    EXPECT_EQ(a.exposed_items, b.exposed_items) << "x = " << x;
    EXPECT_EQ(a.exposed_privacy, b.exposed_privacy) << "x = " << x;
  }
}

// The upload phase is shared verbatim: privacy and exposure are equal at
// every sharing ratio, not just the endpoints.
TEST(AggregatedKernel, UploadPhaseIsSharedExactly) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe(3);
  Rng rng(55);
  const auto fleet = random_fleet(universe, 40, rng);
  EdgeServerDataPlane exact(lattice, universe, AccessRule::kSubsetOrEqual, 5);
  EdgeServerDataPlane agg(lattice, universe, AccessRule::kSubsetOrEqual, 6);
  const auto a = exact.run_round(fleet, 0.37);
  const auto b = agg.run_round_aggregated(fleet, 0.37);
  EXPECT_EQ(a.privacy, b.privacy);
  EXPECT_EQ(a.exposed_items, b.exposed_items);
  EXPECT_EQ(a.exposed_privacy, b.exposed_privacy);
}

// Access control: at x = 1 the aggregated kernel satisfies a receiver iff
// the lattice admits the sender's class — the same exhaustive matrix the
// exact kernel is tested against.
TEST(AggregatedKernel, AccessMatrixAtFullRatio) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  for (core::DecisionId receiver = 0; receiver < 8; ++receiver) {
    for (core::DecisionId sender = 0; sender < 8; ++sender) {
      EdgeServerDataPlane plane(lattice, universe);
      Vehicle sender_v = make_vehicle(sender, {0, 2, 4}, {1});
      const ItemSet upload = plane.shared_items(sender_v);
      if (upload.empty()) continue;
      const std::vector<Vehicle> fleet = {make_vehicle(receiver, {}, upload),
                                          sender_v};
      const auto outcome = plane.run_round_aggregated(fleet, 1.0);
      const double expected = lattice.preceq(receiver, sender) ? 1.0 : 0.0;
      EXPECT_DOUBLE_EQ(outcome.utility[0], expected)
          << "receiver " << lattice.label(receiver) << " sender "
          << lattice.label(sender);
    }
  }
}

// Distributional equivalence at an interior ratio: over >= 20 seeds, the
// seed-averaged mean utility and delivery counts of the two kernels agree
// within a tolerance band (per-item marginals are identical by
// construction; only higher moments differ).
TEST(AggregatedKernel, DistributionallyEquivalentAcrossSeeds) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe(5);
  constexpr std::size_t kSeeds = 24;
  constexpr std::size_t kFleet = 40;
  constexpr double kRatio = 0.5;
  double exact_utility = 0.0;
  double agg_utility = 0.0;
  double exact_deliveries = 0.0;
  double agg_deliveries = 0.0;
  for (std::size_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(1000 + seed);
    const auto fleet = random_fleet(universe, kFleet, rng);
    EdgeServerDataPlane exact(lattice, universe, AccessRule::kSubsetOrEqual,
                              seed);
    EdgeServerDataPlane agg(lattice, universe, AccessRule::kSubsetOrEqual,
                            seed * 31);
    const auto a = exact.run_round(fleet, kRatio);
    const auto b = agg.run_round_aggregated(fleet, kRatio);
    exact_utility += a.mean_utility();
    agg_utility += b.mean_utility();
    exact_deliveries += static_cast<double>(a.deliveries);
    agg_deliveries += static_cast<double>(b.deliveries);
    // Privacy is shared-phase: exactly equal on every seed.
    ASSERT_EQ(a.privacy, b.privacy) << "seed " << seed;
  }
  exact_utility /= kSeeds;
  agg_utility /= kSeeds;
  exact_deliveries /= kSeeds;
  agg_deliveries /= kSeeds;
  EXPECT_NEAR(agg_utility, exact_utility, 0.02);
  EXPECT_NEAR(agg_deliveries / exact_deliveries, 1.0, 0.05);
}

// The aggregated kernel is itself reproducible: same seed, same outcome.
TEST(AggregatedKernel, SeededRunsAreReproducible) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe(3);
  Rng rng(7);
  const auto fleet = random_fleet(universe, 30, rng);
  EdgeServerDataPlane p1(lattice, universe, AccessRule::kSubsetOrEqual, 42);
  EdgeServerDataPlane p2(lattice, universe, AccessRule::kSubsetOrEqual, 42);
  const auto a = p1.run_round_aggregated(fleet, 0.6);
  const auto b = p2.run_round_aggregated(fleet, 0.6);
  EXPECT_EQ(a.utility, b.utility);
  EXPECT_EQ(a.deliveries, b.deliveries);
}

TEST(AggregatedKernel, ServerItemsReachEveryoneUnconditionally) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);
  const std::vector<Vehicle> fleet = {make_vehicle(7, {}, {0, 4})};
  const auto outcome =
      plane.run_round_aggregated(fleet, 0.0, CellFaultMask{}, ItemSet{0, 4});
  EXPECT_DOUBLE_EQ(outcome.utility[0], 1.0);
  EXPECT_DOUBLE_EQ(outcome.privacy[0], 0.0);
}

TEST(AggregatedKernel, RevokedReceiverServedNothing) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);
  std::vector<Vehicle> fleet = {make_vehicle(0, {2}, {0}),
                                make_vehicle(0, {0}, {2})};
  fleet[0].revoked = true;
  const auto outcome = plane.run_round_aggregated(fleet, 1.0);
  EXPECT_DOUBLE_EQ(outcome.utility[0], 0.0);  // quarantined: no deliveries
  EXPECT_DOUBLE_EQ(outcome.utility[1], 1.0);  // its upload still circulates
}

TEST(AggregatedKernel, UploadLossShrinksThePool) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);
  const std::vector<Vehicle> fleet = {make_vehicle(0, {2}, {0}),
                                      make_vehicle(0, {0}, {2})};
  CellFaultMask mask;
  mask.upload_lost = {0, 1};  // vehicle 1's upload never arrives
  const auto outcome = plane.run_round_aggregated(fleet, 1.0, mask);
  EXPECT_EQ(outcome.uploads_lost, 1u);
  EXPECT_DOUBLE_EQ(outcome.utility[0], 0.0);  // its desired item was lost
  EXPECT_DOUBLE_EQ(outcome.utility[1], 1.0);
  EXPECT_DOUBLE_EQ(outcome.privacy[1], 0.0);  // lost upload costs no privacy
}

TEST(AggregatedKernel, RejectsPerPairDeliveryFaults) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);
  const std::vector<Vehicle> fleet = {make_vehicle(0, {0}, {2})};
  CellFaultMask mask;
  mask.delivery_lost = {0};
  EXPECT_THROW(plane.run_round_aggregated(fleet, 0.5, mask),
               ContractViolation);
}

TEST(AggregatedKernel, FreeRiderClaimGovernsAccess) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);
  // True decision P8 (share nothing) but claims P1: the claim earns access
  // to everything — in the aggregated kernel exactly as in the exact one.
  Vehicle liar = make_vehicle(7, {}, {0});
  liar.claim = 0;
  const std::vector<Vehicle> fleet = {liar, make_vehicle(0, {0}, {2})};
  const auto outcome = plane.run_round_aggregated(fleet, 1.0);
  EXPECT_DOUBLE_EQ(outcome.utility[0], 1.0);
  EXPECT_DOUBLE_EQ(outcome.privacy[0], 0.0);  // uploaded nothing
}

// Directional: deterministic endpoints equal the exact kernel; interior
// ratios agree in seed-averaged distribution.
TEST(AggregatedKernel, DirectionalEndpointsMatchExact) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe(4);
  Rng rng(303);
  const auto senders = random_fleet(universe, 25, rng);
  const auto receivers = random_fleet(universe, 25, rng);
  for (const double x : {0.0, 1.0}) {
    EdgeServerDataPlane exact(lattice, universe, AccessRule::kSubsetOrEqual, 2);
    EdgeServerDataPlane agg(lattice, universe, AccessRule::kSubsetOrEqual, 2);
    const auto a = exact.run_directional(senders, receivers, x,
                                         DataPlaneMode::kPairwiseExact);
    const auto b = agg.run_directional(senders, receivers, x,
                                       DataPlaneMode::kClassAggregated);
    EXPECT_EQ(a.marginal_utility, b.marginal_utility) << "x = " << x;
    EXPECT_EQ(a.deliveries, b.deliveries) << "x = " << x;
  }
}

TEST(AggregatedKernel, DirectionalDistributionallyEquivalent) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe(5);
  constexpr std::size_t kSeeds = 20;
  double exact_marginal = 0.0;
  double agg_marginal = 0.0;
  for (std::size_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(500 + seed);
    const auto senders = random_fleet(universe, 30, rng);
    const auto receivers = random_fleet(universe, 30, rng);
    EdgeServerDataPlane exact(lattice, universe, AccessRule::kSubsetOrEqual,
                              seed);
    EdgeServerDataPlane agg(lattice, universe, AccessRule::kSubsetOrEqual,
                            seed * 17);
    const auto a = exact.run_directional(senders, receivers, 0.5,
                                         DataPlaneMode::kPairwiseExact);
    const auto b = agg.run_directional(senders, receivers, 0.5,
                                       DataPlaneMode::kClassAggregated);
    for (const double u : a.marginal_utility) exact_marginal += u;
    for (const double u : b.marginal_utility) agg_marginal += u;
  }
  EXPECT_NEAR(agg_marginal / exact_marginal, 1.0, 0.05);
}

}  // namespace
}  // namespace avcp::perception
