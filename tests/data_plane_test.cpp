#include "perception/data_plane.h"

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "common/rng.h"
#include "core/sensor_model.h"

namespace avcp::perception {
namespace {

using core::AccessRule;
using core::DecisionLattice;

/// Universe with 2 items per sensor: camera {0,1}, lidar {2,3}, radar {4,5}.
DataUniverse make_universe() {
  DataUniverse universe(3);
  for (std::size_t s = 0; s < 3; ++s) {
    const double privacy = s == 0 ? 1.0 : (s == 1 ? 0.5 : 0.1);
    universe.add_item(s, 1.0, privacy);
    universe.add_item(s, 1.0, privacy);
  }
  return universe;
}

Vehicle make_vehicle(core::DecisionId decision, ItemSet collected,
                     ItemSet desired) {
  Vehicle v;
  v.decision = decision;
  v.collected = std::move(collected);
  v.desired = std::move(desired);
  return v;
}

TEST(DataPlane, SharedItemsFilteredByDecision) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  const EdgeServerDataPlane plane(lattice, universe);

  // Decision P4 = {lidar, radar} (index 3): camera items are withheld.
  const Vehicle v = make_vehicle(3, {0, 2, 4}, {0});
  const ItemSet shared = plane.shared_items(v);
  EXPECT_EQ(shared, (ItemSet{2, 4}));
}

TEST(DataPlane, ShareNothingDecisionUploadsNothing) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  const EdgeServerDataPlane plane(lattice, universe);
  const Vehicle v = make_vehicle(7, {0, 1, 2, 3, 4, 5}, {0});
  EXPECT_TRUE(plane.shared_items(v).empty());
}

TEST(DataPlane, ZeroRatioDeliversNothing) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);

  const std::vector<Vehicle> vehicles = {
      make_vehicle(0, {0, 2}, {4}),  // wants radar item 4
      make_vehicle(0, {4}, {0}),
  };
  const auto outcome = plane.run_round(vehicles, 0.0);
  EXPECT_EQ(outcome.deliveries, 0u);
  // Utilities reflect own data only: neither vehicle holds what it wants.
  EXPECT_DOUBLE_EQ(outcome.utility[0], 0.0);
  EXPECT_DOUBLE_EQ(outcome.utility[1], 0.0);
}

TEST(DataPlane, FullRatioFullSharingSatisfiesEveryone) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);

  const std::vector<Vehicle> vehicles = {
      make_vehicle(0, {0, 2}, {4}),
      make_vehicle(0, {4}, {0, 2}),
  };
  const auto outcome = plane.run_round(vehicles, 1.0);
  EXPECT_DOUBLE_EQ(outcome.utility[0], 1.0);
  EXPECT_DOUBLE_EQ(outcome.utility[1], 1.0);
  EXPECT_GT(outcome.deliveries, 0u);
}

TEST(DataPlane, LatticeAccessControlEnforced) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);

  // Vehicle 0 shares only radar (P7, index 6); vehicle 1 shares everything
  // (P1) and holds a camera item vehicle 0 desires. P7 does not precede P1
  // (P^1 is not a subset of P^7), so vehicle 0 must NOT receive it even at
  // ratio 1.
  const std::vector<Vehicle> vehicles = {
      make_vehicle(6, {4}, {0}),
      make_vehicle(0, {0}, {4}),
  };
  const auto outcome = plane.run_round(vehicles, 1.0);
  EXPECT_DOUBLE_EQ(outcome.utility[0], 0.0);  // denied the camera item
  EXPECT_DOUBLE_EQ(outcome.utility[1], 1.0);  // P1 reads P7's radar upload
}

TEST(DataPlane, PredecessorReceivesSuccessorData) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);

  // P2 {cam,lid} (index 1) precedes P6 {lid} (index 5): the P2 vehicle may
  // read the P6 upload, not vice versa.
  const std::vector<Vehicle> vehicles = {
      make_vehicle(1, {0}, {2}),  // P2, wants lidar item 2
      make_vehicle(5, {2}, {0}),  // P6, wants camera item 0
  };
  const auto outcome = plane.run_round(vehicles, 1.0);
  EXPECT_DOUBLE_EQ(outcome.utility[0], 1.0);
  EXPECT_DOUBLE_EQ(outcome.utility[1], 0.0);
}

TEST(DataPlane, StrictRuleExcludesEqualDecisions) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe, AccessRule::kStrictSubset);

  const std::vector<Vehicle> vehicles = {
      make_vehicle(0, {0}, {4}),
      make_vehicle(0, {4}, {0}),
  };
  const auto outcome = plane.run_round(vehicles, 1.0);
  EXPECT_DOUBLE_EQ(outcome.utility[0], 0.0);
  EXPECT_DOUBLE_EQ(outcome.utility[1], 0.0);
}

TEST(DataPlane, PrivacyCostTracksDecision) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);

  const ItemSet everything = {0, 1, 2, 3, 4, 5};
  const std::vector<Vehicle> vehicles = {
      make_vehicle(0, everything, {0}),  // shares all
      make_vehicle(6, everything, {0}),  // radar only
      make_vehicle(7, everything, {0}),  // nothing
  };
  const auto outcome = plane.run_round(vehicles, 0.5);
  EXPECT_GT(outcome.privacy[0], outcome.privacy[1]);
  EXPECT_GT(outcome.privacy[1], outcome.privacy[2]);
  EXPECT_DOUBLE_EQ(outcome.privacy[2], 0.0);
  EXPECT_DOUBLE_EQ(outcome.privacy[0], 1.0);  // entire universe exposed
}

TEST(DataPlane, EavesdropperSeesUnionOfUploads) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);

  const std::vector<Vehicle> vehicles = {
      make_vehicle(4, {0, 2, 4}, {0}),  // P5 {cam}: uploads item 0 only
      make_vehicle(6, {4, 5}, {0}),     // P7 {rad}: uploads 4, 5
      make_vehicle(6, {4}, {0}),        // duplicate radar item 4
  };
  const auto outcome = plane.run_round(vehicles, 1.0);
  EXPECT_EQ(outcome.exposed_items, 3u);  // {0, 4, 5}
  EXPECT_GT(outcome.exposed_privacy, 0.0);
}

TEST(DataPlane, IntermediateRatioDeliversFractionally) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe, AccessRule::kSubsetOrEqual, 7);

  // Many identical receiver/sender pairs; at x = 0.3 roughly 30% of the
  // pairwise transfers happen.
  std::vector<Vehicle> vehicles;
  for (int i = 0; i < 300; ++i) {
    vehicles.push_back(make_vehicle(0, {0}, {4}));
    vehicles.push_back(make_vehicle(0, {4}, {0}));
  }
  const auto outcome = plane.run_round(vehicles, 0.3);
  double satisfied = 0.0;
  for (const double u : outcome.utility) satisfied += u;
  // Each vehicle has ~299 potential donors of its desired item; with x=0.3
  // the chance of receiving none is (0.7)^299 ~ 0: essentially everyone is
  // satisfied. Use a weaker structural check instead: deliveries happened
  // but far fewer than the x=1 maximum.
  const auto full = EdgeServerDataPlane(lattice, universe,
                                        AccessRule::kSubsetOrEqual, 8)
                        .run_round(vehicles, 1.0);
  EXPECT_GT(outcome.deliveries, 0u);
  EXPECT_LT(outcome.deliveries, full.deliveries);
  EXPECT_NEAR(static_cast<double>(outcome.deliveries) /
                  static_cast<double>(full.deliveries),
              0.3, 0.05);
  EXPECT_GT(satisfied, 590.0);
}

// Exhaustive access-control matrix: for every ordered decision pair
// (receiver, sender), the receiver obtains the sender's upload at x = 1
// exactly when receiver ⪯ sender in the lattice.
class AccessMatrixSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AccessMatrixSweep, DeliveryIffLatticePrecedes) {
  const auto [receiver_raw, sender_raw] = GetParam();
  const auto receiver = static_cast<core::DecisionId>(receiver_raw);
  const auto sender = static_cast<core::DecisionId>(sender_raw);
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);

  // Sender holds one item per sensor type; receiver desires exactly the
  // items the sender would upload under its decision.
  Vehicle sender_v = make_vehicle(sender, {0, 2, 4}, {0});
  const ItemSet upload = plane.shared_items(sender_v);
  if (upload.empty()) {
    // P8 sender: nothing to test beyond "no deliveries".
    const std::vector<Vehicle> vehicles = {make_vehicle(receiver, {}, {1}),
                                           sender_v};
    EXPECT_EQ(plane.run_round(vehicles, 1.0).deliveries, 0u);
    return;
  }
  Vehicle receiver_v = make_vehicle(receiver, {}, upload);
  const std::vector<Vehicle> vehicles = {receiver_v, sender_v};
  const auto outcome = plane.run_round(vehicles, 1.0);
  if (lattice.preceq(receiver, sender)) {
    EXPECT_DOUBLE_EQ(outcome.utility[0], 1.0)
        << "receiver " << lattice.label(receiver) << " should read "
        << lattice.label(sender);
  } else {
    EXPECT_DOUBLE_EQ(outcome.utility[0], 0.0)
        << "receiver " << lattice.label(receiver) << " must not read "
        << lattice.label(sender);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, AccessMatrixSweep,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Range(0, 8)));

TEST(DataPlane, ServerItemsReachEveryoneUnconditionally) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);

  // Even a share-nothing vehicle at ratio 0 receives the server's own
  // perception (paper future work: infrastructure-assisted perception).
  const std::vector<Vehicle> vehicles = {
      make_vehicle(7, {}, {0, 4}),
  };
  const ItemSet server_items = {0, 4};
  const auto outcome = plane.run_round_with_server(vehicles, 0.0, server_items);
  EXPECT_DOUBLE_EQ(outcome.utility[0], 1.0);
  EXPECT_DOUBLE_EQ(outcome.privacy[0], 0.0);
}

TEST(DataPlane, ServerItemsNeverReduceUtility) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();

  std::vector<Vehicle> vehicles;
  Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    Vehicle v;
    v.decision = static_cast<core::DecisionId>(rng.uniform_int(0, 7));
    for (ItemId id = 0; id < universe.size(); ++id) {
      if (rng.bernoulli(0.3)) v.collected.push_back(id);
      if (rng.bernoulli(0.4)) v.desired.push_back(id);
    }
    if (v.desired.empty()) v.desired.push_back(0);
    vehicles.push_back(v);
  }
  // Same RNG seed in both planes so the probabilistic deliveries match.
  EdgeServerDataPlane without(lattice, universe, AccessRule::kSubsetOrEqual, 9);
  EdgeServerDataPlane with(lattice, universe, AccessRule::kSubsetOrEqual, 9);
  const auto base = without.run_round(vehicles, 0.5);
  const auto boosted = with.run_round_with_server(vehicles, 0.5, {1, 3});
  for (std::size_t a = 0; a < vehicles.size(); ++a) {
    EXPECT_GE(boosted.utility[a], base.utility[a] - 1e-12) << "vehicle " << a;
    EXPECT_DOUBLE_EQ(boosted.privacy[a], base.privacy[a]);
  }
}

TEST(DataPlane, ServerItemsMustBeSorted) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);
  const std::vector<Vehicle> vehicles = {make_vehicle(0, {0}, {0})};
  EXPECT_THROW(plane.run_round_with_server(vehicles, 0.5, ItemSet{3, 1}),
               ContractViolation);
}

TEST(DataPlane, DirectionalRoundIsOneWay) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);

  // Sender (P1) holds camera item 0; receiver (P1) desires it.
  const std::vector<Vehicle> senders = {make_vehicle(0, {0}, {4})};
  const std::vector<Vehicle> receivers = {make_vehicle(0, {}, {0})};
  const auto outcome = plane.run_directional(senders, receivers, 1.0);
  ASSERT_EQ(outcome.marginal_utility.size(), 1u);
  EXPECT_DOUBLE_EQ(outcome.marginal_utility[0], 1.0);
  EXPECT_EQ(outcome.deliveries, 1u);
  // Nothing is reported for the senders: the API carries no reverse flow.
}

TEST(DataPlane, DirectionalRoundHonoursLattice) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);

  // Sender shares everything (P1); a radar-only receiver (P7) may not read
  // it even at ratio 1.
  const std::vector<Vehicle> senders = {make_vehicle(0, {0, 2, 4}, {})};
  const std::vector<Vehicle> receivers = {make_vehicle(6, {}, {0, 2, 4})};
  const auto outcome = plane.run_directional(senders, receivers, 1.0);
  EXPECT_DOUBLE_EQ(outcome.marginal_utility[0], 0.0);
  EXPECT_EQ(outcome.deliveries, 0u);
}

TEST(DataPlane, DirectionalRoundZeroRatioDeliversNothing) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);
  const std::vector<Vehicle> senders = {make_vehicle(0, {0}, {})};
  const std::vector<Vehicle> receivers = {make_vehicle(0, {}, {0})};
  const auto outcome = plane.run_directional(senders, receivers, 0.0);
  EXPECT_DOUBLE_EQ(outcome.marginal_utility[0], 0.0);
  EXPECT_EQ(outcome.deliveries, 0u);
}

TEST(DataPlane, DirectionalMarginalExcludesAlreadyHeld) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe);
  // Receiver already holds item 0; only item 2 counts toward the marginal.
  const std::vector<Vehicle> senders = {make_vehicle(0, {0, 2}, {})};
  const std::vector<Vehicle> receivers = {make_vehicle(0, {0}, {0, 2})};
  const auto outcome = plane.run_directional(senders, receivers, 1.0);
  // Items 0 and 2 have equal weight: marginal = f({2}) = 1/2.
  EXPECT_DOUBLE_EQ(outcome.marginal_utility[0], 0.5);
}

TEST(DataPlane, EmptyUploadFastPathPreservesDrawOrder) {
  // The draw-order contract (data_plane.h): one Bernoulli per readable
  // ordered pair, regardless of upload contents. Emptying one sender's
  // collected set (same decision, hence same readability) must leave every
  // other vehicle's outcome bit-identical — the empty-upload fast path may
  // skip work only AFTER the draw.
  const DecisionLattice lattice(3);
  const auto universe = make_universe();

  // r desires t's items only; s's upload is irrelevant to r's utility.
  auto fleet_with = std::vector<Vehicle>{
      make_vehicle(0, {}, {2, 4}),     // r
      make_vehicle(0, {0, 1}, {0}),    // s — emptied in the twin fleet
      make_vehicle(0, {2, 4}, {5}),    // t (desires an item nobody holds)
  };
  auto fleet_without = fleet_with;
  fleet_without[1].collected.clear();

  EdgeServerDataPlane p1(lattice, universe, AccessRule::kSubsetOrEqual, 77);
  EdgeServerDataPlane p2(lattice, universe, AccessRule::kSubsetOrEqual, 77);
  for (int round = 0; round < 50; ++round) {
    const auto a = p1.run_round(fleet_with, 0.5);
    const auto b = p2.run_round(fleet_without, 0.5);
    // r and t never touch s's items: their utilities must match exactly in
    // every round — any drift means the draw sequence shifted.
    ASSERT_DOUBLE_EQ(a.utility[0], b.utility[0]) << "round " << round;
    ASSERT_DOUBLE_EQ(a.utility[2], b.utility[2]) << "round " << round;
    ASSERT_LE(b.deliveries, a.deliveries);
  }
}

TEST(DataPlane, IntoOverloadMatchesByValueApi) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane p1(lattice, universe, AccessRule::kSubsetOrEqual, 21);
  EdgeServerDataPlane p2(lattice, universe, AccessRule::kSubsetOrEqual, 21);
  const std::vector<Vehicle> fleet = {
      make_vehicle(0, {0, 2}, {4}),
      make_vehicle(0, {4}, {0, 2}),
      make_vehicle(4, {0, 1}, {2}),
  };
  RoundOutcome reused;
  for (int round = 0; round < 10; ++round) {
    const auto by_value = p1.run_round(fleet, 0.5);
    p2.run_round_into(fleet, 0.5, CellFaultMask{}, ItemSet{},
                      DataPlaneMode::kPairwiseExact, reused);
    ASSERT_EQ(by_value.utility, reused.utility) << "round " << round;
    ASSERT_EQ(by_value.privacy, reused.privacy) << "round " << round;
    ASSERT_EQ(by_value.deliveries, reused.deliveries) << "round " << round;
    ASSERT_EQ(by_value.exposed_items, reused.exposed_items);
  }
}

TEST(DataPlane, MeanHelpers) {
  RoundOutcome outcome;
  outcome.utility = {1.0, 0.0};
  outcome.privacy = {0.5, 0.1};
  EXPECT_DOUBLE_EQ(outcome.mean_utility(), 0.5);
  EXPECT_NEAR(outcome.mean_privacy(), 0.3, 1e-12);
}

}  // namespace
}  // namespace avcp::perception
