#include "perception/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/sensor_model.h"

namespace avcp::perception {
namespace {

using core::DecisionLattice;

/// Universe with 3 items per sensor; ids 0..8; distinct utility weights so
/// ordering is unambiguous: item id i has weight 1 + i.
DataUniverse weighted_universe() {
  DataUniverse universe(3);
  ItemId next = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    for (int i = 0; i < 3; ++i) {
      universe.add_item(s, 1.0 + static_cast<double>(next), 0.1);
      ++next;
    }
  }
  return universe;
}

TEST(Scheduler, AdmissiblePoolHonoursLattice) {
  const DecisionLattice lattice(3);
  const auto universe = weighted_universe();
  const DistributionScheduler scheduler(lattice, universe);

  // Sender shares lidar-only (P6, index 5) items {3, 4}.
  const std::vector<SenderUpload> uploads = {{5, {3, 4}}};
  // P2 {cam,lid} may read P6.
  DistributionRequest p2;
  p2.decision = 1;
  EXPECT_EQ(scheduler.admissible_pool(uploads, p2), (ItemSet{3, 4}));
  // P7 {rad} may not.
  DistributionRequest p7;
  p7.decision = 6;
  EXPECT_TRUE(scheduler.admissible_pool(uploads, p7).empty());
}

TEST(Scheduler, AlreadyHeldItemsNeverResent) {
  const DecisionLattice lattice(3);
  const auto universe = weighted_universe();
  const DistributionScheduler scheduler(lattice, universe);
  const std::vector<SenderUpload> uploads = {{0, {0, 1, 2}}};
  DistributionRequest receiver;
  receiver.decision = 0;
  receiver.already_held = {1};
  EXPECT_EQ(scheduler.admissible_pool(uploads, receiver), (ItemSet{0, 2}));
}

TEST(Scheduler, OnlyDesiredItemsAreDelivered) {
  const DecisionLattice lattice(3);
  const auto universe = weighted_universe();
  const DistributionScheduler scheduler(lattice, universe);
  const std::vector<SenderUpload> uploads = {{0, {0, 1, 2, 3}}};
  DistributionRequest receiver;
  receiver.decision = 0;
  receiver.desired = {1, 3};
  const auto plan = scheduler.plan(uploads, {&receiver, 1});
  EXPECT_EQ(plan.deliveries[0], (ItemSet{1, 3}));
}

TEST(Scheduler, PerReceiverBudgetKeepsHighestWeights) {
  const DecisionLattice lattice(3);
  const auto universe = weighted_universe();
  const DistributionScheduler scheduler(lattice, universe);
  const std::vector<SenderUpload> uploads = {{0, {0, 1, 2, 3, 4}}};
  DistributionRequest receiver;
  receiver.decision = 0;
  receiver.desired = {0, 1, 2, 3, 4};
  receiver.budget_items = 2;
  const auto plan = scheduler.plan(uploads, {&receiver, 1});
  // Weights are 1+id: items 4 and 3 win.
  EXPECT_EQ(plan.deliveries[0], (ItemSet{3, 4}));
  EXPECT_EQ(plan.dropped_items, 3u);
  EXPECT_DOUBLE_EQ(plan.total_utility_weight, 5.0 + 4.0);
}

TEST(Scheduler, ServerBudgetAllocatedGlobally) {
  const DecisionLattice lattice(3);
  const auto universe = weighted_universe();
  const DistributionScheduler scheduler(lattice, universe);
  const std::vector<SenderUpload> uploads = {{0, {0, 1, 2, 3, 4, 5, 6, 7, 8}}};
  // Receiver 0 desires low-weight items, receiver 1 the high-weight ones.
  std::vector<DistributionRequest> receivers(2);
  receivers[0].decision = 0;
  receivers[0].desired = {0, 1, 2};
  receivers[1].decision = 0;
  receivers[1].desired = {6, 7, 8};
  const auto plan = scheduler.plan(uploads, receivers, 3u);
  // The three heaviest admissible desired items all belong to receiver 1.
  EXPECT_TRUE(plan.deliveries[0].empty());
  EXPECT_EQ(plan.deliveries[1], (ItemSet{6, 7, 8}));
  EXPECT_EQ(plan.dropped_items, 3u);
}

TEST(Scheduler, UnlimitedBudgetsDeliverEverythingAdmissibleDesired) {
  const DecisionLattice lattice(3);
  const auto universe = weighted_universe();
  const DistributionScheduler scheduler(lattice, universe);
  const std::vector<SenderUpload> uploads = {{0, {0, 1, 2}}, {6, {6, 7}}};
  DistributionRequest receiver;
  receiver.decision = 0;  // reads everyone
  receiver.desired = {0, 2, 6, 7, 8};
  const auto plan = scheduler.plan(uploads, {&receiver, 1});
  EXPECT_EQ(plan.deliveries[0], (ItemSet{0, 2, 6, 7}));
  EXPECT_EQ(plan.dropped_items, 0u);
}

TEST(Scheduler, UtilityMonotoneInBudget) {
  const DecisionLattice lattice(3);
  const auto universe = weighted_universe();
  const DistributionScheduler scheduler(lattice, universe);
  const std::vector<SenderUpload> uploads = {{0, {0, 1, 2, 3, 4, 5}}};
  DistributionRequest receiver;
  receiver.decision = 0;
  receiver.desired = {0, 1, 2, 3, 4, 5};
  double previous = -1.0;
  for (const std::size_t budget : {0u, 1u, 2u, 4u, 6u, 10u}) {
    receiver.budget_items = budget;
    const auto plan = scheduler.plan(uploads, {&receiver, 1});
    EXPECT_GE(plan.total_utility_weight, previous);
    previous = plan.total_utility_weight;
  }
}

// Optimality sweep: with additive utilities and unit item sizes, the greedy
// plan must match the brute-force optimum (top-B weights) for the shared
// downlink knapsack on random instances.
class SchedulerOptimalitySweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerOptimalitySweep, GreedyMatchesBruteForceOptimum) {
  Rng rng(GetParam());
  DataUniverse universe(3);
  for (int i = 0; i < 12; ++i) {
    universe.add_item(static_cast<std::size_t>(rng.uniform_int(0, 2)),
                      rng.uniform(0.5, 3.0), 0.1);
  }
  const DecisionLattice lattice(3);
  const DistributionScheduler scheduler(lattice, universe);

  // One P1 sender sharing a random subset; 3 receivers with random desires
  // and decisions; shared server budget.
  SenderUpload upload;
  upload.decision = 0;
  for (ItemId id = 0; id < universe.size(); ++id) {
    if (rng.bernoulli(0.7)) upload.items.push_back(id);
  }
  std::vector<DistributionRequest> receivers(3);
  for (auto& r : receivers) {
    r.decision = static_cast<core::DecisionId>(rng.uniform_int(0, 7));
    for (ItemId id = 0; id < universe.size(); ++id) {
      if (rng.bernoulli(0.5)) r.desired.push_back(id);
    }
  }
  const std::size_t budget = static_cast<std::size_t>(rng.uniform_int(1, 6));
  const auto plan =
      scheduler.plan({&upload, 1}, receivers, budget);

  // Brute-force optimum: all candidate (receiver, item) weights, top-B sum.
  std::vector<double> weights;
  for (std::size_t r = 0; r < receivers.size(); ++r) {
    const auto pool = scheduler.admissible_pool({&upload, 1}, receivers[r]);
    for (const ItemId id : set_intersect(pool, receivers[r].desired)) {
      weights.push_back(universe.item(id).utility_weight);
    }
  }
  std::sort(weights.rbegin(), weights.rend());
  double best = 0.0;
  for (std::size_t i = 0; i < std::min(budget, weights.size()); ++i) {
    best += weights[i];
  }
  EXPECT_NEAR(plan.total_utility_weight, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SchedulerOptimalitySweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace avcp::perception
