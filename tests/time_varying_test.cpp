#include "sim/time_varying.h"

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "test_support.h"

namespace avcp::sim {
namespace {

using core::testing::make_chain_game;
using core::testing::make_single_region_game;

TEST(BetaSchedule, AtRoundSelectsEpochAndClamps) {
  BetaSchedule schedule;
  schedule.epochs = {{1.0}, {2.0}, {3.0}};
  schedule.rounds_per_epoch = 10;
  EXPECT_DOUBLE_EQ(schedule.at_round(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(schedule.at_round(9)[0], 1.0);
  EXPECT_DOUBLE_EQ(schedule.at_round(10)[0], 2.0);
  EXPECT_DOUBLE_EQ(schedule.at_round(25)[0], 3.0);
  EXPECT_DOUBLE_EQ(schedule.at_round(9999)[0], 3.0);  // clamps to last
}

TEST(BetaSchedule, FromDensityMapsPeakAndOffPeak) {
  // 1 segment -> region 0; 4 windows of 100 s: quiet, quiet, busy, busy.
  trace::TrafficDensityAccumulator density(1, 100.0, 400.0);
  density.add({1, 10.0, {}, 0.0, 0});                      // window 0: 1
  density.add({1, 110.0, {}, 0.0, 0});                     // window 1: 1
  for (trace::VehicleId v = 0; v < 10; ++v) {
    density.add({v, 210.0 + v * 0.1, {}, 0.0, 0});         // window 2: 10
    density.add({v, 310.0 + v * 0.1, {}, 0.0, 0});         // window 3: 10
  }
  cluster::Clustering clustering;
  clustering.region_of = {0};
  clustering.members = {{0}};
  clustering.seeds = {0};

  const auto schedule = beta_schedule_from_density(
      density, clustering, /*windows_per_epoch=*/2, 1.0, 3.0,
      /*rounds_per_epoch=*/5);
  ASSERT_EQ(schedule.num_epochs(), 2u);
  EXPECT_NEAR(schedule.epochs[0][0], 1.0, 1e-9);  // off-peak -> beta_lo
  EXPECT_NEAR(schedule.epochs[1][0], 3.0, 1e-9);  // peak -> beta_hi
}

TEST(BetaSchedule, FromDensityRejectsBadInputs) {
  trace::TrafficDensityAccumulator density(1, 100.0, 100.0);
  cluster::Clustering clustering;
  clustering.region_of = {0};
  clustering.members = {{0}};
  clustering.seeds = {0};
  EXPECT_THROW(
      beta_schedule_from_density(density, clustering, 5, 1.0, 2.0, 10),
      ContractViolation);
}

TEST(WithBetas, ReplacesBetasKeepsTopology) {
  const auto base = make_chain_game(3, /*beta_lo=*/1.0, /*beta_hi=*/2.0);
  const std::vector<double> betas = {5.0, 6.0, 7.0};
  const auto updated = with_betas(base, betas);
  ASSERT_EQ(updated.num_regions(), 3u);
  for (core::RegionId i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(updated.region(i).beta, betas[i]);
    EXPECT_EQ(updated.region(i).neighbors.size(),
              base.region(i).neighbors.size());
    EXPECT_DOUBLE_EQ(updated.region(i).gamma_self, base.region(i).gamma_self);
  }
  EXPECT_EQ(updated.num_decisions(), base.num_decisions());
}

TEST(WithBetas, RejectsWrongSize) {
  const auto base = make_chain_game(3);
  const std::vector<double> betas = {1.0};
  EXPECT_THROW(with_betas(base, betas), ContractViolation);
}

TEST(TimeVarying, ReconvergesAfterEveryEpochSwitch) {
  // Peak (high beta, sharing-friendly) and off-peak (low beta) alternate;
  // the desired field per epoch is the epoch game's own attainable
  // equilibrium at a reference ratio, and FDS must land in it each time.
  const auto base = make_single_region_game(/*beta=*/2.0);
  BetaSchedule schedule;
  schedule.epochs = {{4.0}, {1.2}, {4.0}};
  schedule.rounds_per_epoch = 400;

  const FieldFactory factory = [](const core::MultiRegionGame& epoch_game,
                                  const core::GameState& state) {
    core::GameState eq = state;
    const std::vector<double> x_ref(epoch_game.num_regions(), 0.75);
    for (int t = 0; t < 3000; ++t) epoch_game.replicator_step(eq, x_ref);
    core::DesiredFields fields(epoch_game.num_regions(),
                               epoch_game.num_decisions());
    for (core::RegionId i = 0; i < epoch_game.num_regions(); ++i) {
      for (core::DecisionId k = 0; k < epoch_game.num_decisions(); ++k) {
        fields.set_target(i, k,
                          Interval{std::max(0.0, eq.p[i][k] - 0.05),
                                   std::min(1.0, eq.p[i][k] + 0.05)});
      }
    }
    return fields;
  };

  TimeVaryingOptions options;
  options.fds.max_step = 0.1;
  options.reseed_mix = 0.15;
  const auto outcomes = run_time_varying(base, schedule, factory,
                                         base.uniform_state(), {0.3},
                                         options);
  ASSERT_EQ(outcomes.size(), 3u);
  for (std::size_t e = 0; e < outcomes.size(); ++e) {
    EXPECT_TRUE(outcomes[e].converged)
        << "epoch " << e << " rounds=" << outcomes[e].rounds_to_converge;
  }
  // The peak epochs sustain richer sharing than the off-peak one.
  double peak_richness = 0.0;
  double offpeak_richness = 0.0;
  const auto richness = [&](const core::GameState& state) {
    double r = 0.0;
    for (core::DecisionId k = 0; k < 8; ++k) {
      r += state.p[0][k] * static_cast<double>(base.lattice().cardinality(k));
    }
    return r;
  };
  peak_richness = richness(outcomes[0].state_at_end);
  offpeak_richness = richness(outcomes[1].state_at_end);
  EXPECT_GT(peak_richness, offpeak_richness);
}

TEST(TimeVarying, EpochCountMatchesSchedule) {
  const auto base = make_single_region_game();
  BetaSchedule schedule;
  schedule.epochs = {{2.0}, {2.0}};
  schedule.rounds_per_epoch = 5;
  const FieldFactory factory = [](const core::MultiRegionGame& game,
                                  const core::GameState&) {
    return core::DesiredFields(game.num_regions(), game.num_decisions());
  };
  const auto outcomes = run_time_varying(base, schedule, factory,
                                         base.uniform_state(), {0.5}, {});
  ASSERT_EQ(outcomes.size(), 2u);
  // Unconstrained fields are satisfied immediately.
  EXPECT_TRUE(outcomes[0].converged);
  EXPECT_EQ(outcomes[0].rounds_to_converge, 1u);
}

}  // namespace
}  // namespace avcp::sim
