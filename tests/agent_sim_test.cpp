#include "sim/agent_sim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.h"
#include "faults/fault_model.h"
#include "test_support.h"

namespace avcp::sim {
namespace {

using core::testing::make_single_region_game;

TEST(AgentSim, EmpiricalStateIsValidDistribution) {
  const auto game = make_single_region_game();
  AgentSimParams params;
  params.vehicles_per_region = 200;
  AgentBasedSim sim(game, params);
  sim.init_from(game.uniform_state());
  const auto state = sim.empirical_state();
  ASSERT_EQ(state.p.size(), 1u);
  core::check_distribution(state.p[0]);
}

TEST(AgentSim, InitFromApproximatesTargetDistribution) {
  const auto game = make_single_region_game();
  AgentSimParams params;
  params.vehicles_per_region = 20000;
  params.seed = 3;
  AgentBasedSim sim(game, params);
  std::vector<double> p(8, 0.0);
  p[0] = 0.5;
  p[4] = 0.3;
  p[7] = 0.2;
  sim.init_from(game.broadcast_state(p));
  const auto state = sim.empirical_state();
  for (core::DecisionId k = 0; k < 8; ++k) {
    EXPECT_NEAR(state.p[0][k], p[k], 0.02) << "k=" << k;
  }
}

TEST(AgentSim, StepPreservesPopulationSize) {
  const auto game = make_single_region_game();
  AgentSimParams params;
  params.vehicles_per_region = 100;
  AgentBasedSim sim(game, params);
  sim.init_from(game.uniform_state());
  for (int t = 0; t < 5; ++t) {
    sim.step(std::vector<double>{0.5});
    core::check_distribution(sim.empirical_state().p[0]);
  }
}

TEST(AgentSim, ConvergesToNoSharingAtZeroRatio) {
  const auto game = make_single_region_game();
  AgentSimParams params;
  params.vehicles_per_region = 1000;
  params.seed = 11;
  AgentBasedSim sim(game, params);
  sim.init_from(game.uniform_state());
  const std::vector<double> x = {0.0};
  for (int t = 0; t < 300; ++t) sim.step(x);
  EXPECT_GT(sim.empirical_state().p[0][7], 0.9);
}

TEST(AgentSim, TracksMeanFieldTrajectory) {
  // Pairwise proportional imitation approximates the replicator flow; with
  // a large population the two trajectories stay close for a while. The
  // imitation-rate factor: a revising vehicle imitates a random peer with
  // probability proportional to the fitness gain, which reproduces the
  // replicator with an extra 1/2-ish slowdown factor; we compare loosely.
  const double beta = 3.0;
  const auto game = make_single_region_game(beta, /*eta=*/0.25);
  AgentSimParams params;
  params.vehicles_per_region = 30000;
  params.imitation_scale = 0.25;
  params.revision_rate = 1.0;
  params.seed = 5;
  AgentBasedSim sim(game, params);
  sim.init_from(game.uniform_state());

  core::GameState mean_field = game.uniform_state();
  const std::vector<double> x = {0.9};
  for (int t = 0; t < 120; ++t) {
    sim.step(x);
    game.replicator_step(mean_field, x);
  }
  // Both should have concentrated on the same dominant decision.
  const auto empirical = sim.empirical_state();
  core::DecisionId mf_best = 0;
  core::DecisionId ab_best = 0;
  for (core::DecisionId k = 1; k < 8; ++k) {
    if (mean_field.p[0][k] > mean_field.p[0][mf_best]) mf_best = k;
    if (empirical.p[0][k] > empirical.p[0][ab_best]) ab_best = k;
  }
  EXPECT_EQ(mf_best, ab_best);
  EXPECT_GT(empirical.p[0][ab_best], 0.5);
}

TEST(AgentSim, DefectorsNeverRevise) {
  const auto game = make_single_region_game();
  AgentSimParams params;
  params.vehicles_per_region = 2000;
  faults::FaultParams fp;
  fp.defector_fraction = 1.0;  // everyone frozen
  const faults::FaultModel faults(fp);
  AgentBasedSim sim(game, params, &faults);
  sim.init_from(game.uniform_state());
  const auto before = sim.empirical_state();
  for (int t = 0; t < 20; ++t) sim.step(std::vector<double>{0.5});
  const auto after = sim.empirical_state();
  for (core::DecisionId k = 0; k < 8; ++k) {
    EXPECT_DOUBLE_EQ(after.p[0][k], before.p[0][k]);
  }
}

TEST(AgentSim, PartialDefectorsSlowConvergence) {
  const auto game = make_single_region_game();
  const std::vector<double> x = {0.0};  // drives everyone to P8

  AgentSimParams honest;
  honest.vehicles_per_region = 2000;
  honest.seed = 9;
  AgentBasedSim honest_sim(game, honest);
  honest_sim.init_from(game.uniform_state());

  faults::FaultParams fp;
  fp.defector_fraction = 0.5;
  const faults::FaultModel faults(fp);
  AgentBasedSim mixed_sim(game, honest, &faults);
  mixed_sim.init_from(game.uniform_state());

  for (int t = 0; t < 200; ++t) {
    honest_sim.step(x);
    mixed_sim.step(x);
  }
  // Honest population concentrates harder on P8 than the half-frozen one.
  EXPECT_GT(honest_sim.empirical_state().p[0][7],
            mixed_sim.empirical_state().p[0][7]);
}

TEST(AgentSim, RejectsBadParams) {
  const auto game = make_single_region_game();
  AgentSimParams params;
  params.vehicles_per_region = 1;
  EXPECT_THROW(AgentBasedSim(game, params), ContractViolation);
  params.vehicles_per_region = 10;
  params.revision_rate = 1.5;
  EXPECT_THROW(AgentBasedSim(game, params), ContractViolation);
  params.revision_rate = 1.0;
  params.measured_fitness = true;
  params.exchange.fleet_size = 4;  // below the lattice's K = 8 classes
  EXPECT_THROW(AgentBasedSim(game, params), ContractViolation);
}

TEST(AgentSim, MeasuredFitnessStillConvergesToNoSharingAtZeroRatio) {
  // At x = 0 the data plane delivers nothing: measured fitness is pure
  // privacy cost, so share-nothing (P8) must take over — the same
  // qualitative equilibrium the analytic fitness produces.
  const auto game = make_single_region_game(/*beta=*/1.5);
  AgentSimParams params;
  params.vehicles_per_region = 300;
  params.seed = 7;
  params.measured_fitness = true;
  AgentBasedSim sim(game, params);
  sim.init_from(game.uniform_state());
  const std::vector<double> x = {0.0};
  for (int r = 0; r < 60; ++r) sim.step(x);
  EXPECT_GT(sim.empirical_state().p[0][7], 0.9);
}

TEST(AgentSim, MeasuredFitnessReproducibleAndKernelSelectable) {
  const auto game = make_single_region_game();
  const std::vector<double> x = {0.6};
  auto run = [&](perception::DataPlaneMode mode) {
    AgentSimParams params;
    params.vehicles_per_region = 100;
    params.seed = 21;
    params.measured_fitness = true;
    params.exchange.mode = mode;
    AgentBasedSim sim(game, params);
    sim.init_from(game.uniform_state());
    for (int r = 0; r < 10; ++r) sim.step(x);
    return sim.empirical_state();
  };
  // Reproducible: same seed and kernel give the identical trajectory.
  const auto exact1 = run(perception::DataPlaneMode::kPairwiseExact);
  const auto exact2 = run(perception::DataPlaneMode::kPairwiseExact);
  EXPECT_EQ(exact1.p, exact2.p);
  // The aggregated kernel runs the same dynamics (its own draws, so the
  // trajectory differs, but the state stays a valid distribution).
  const auto agg = run(perception::DataPlaneMode::kClassAggregated);
  core::check_distribution(agg.p[0]);
}

}  // namespace
}  // namespace avcp::sim
