// The declarative scenario catalog: registry integrity, the round-trip
// contract (every named entry parses, validates, and runs), determinism of
// the runner, and the clean entries' nobody-gets-flagged invariant.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "common/contracts.h"
#include "scenario/scenario.h"

namespace avcp::scenario {
namespace {

TEST(ScenarioCatalog, NamesAreUniqueAndEveryEntryValidates) {
  const auto& catalog = scenario_catalog();
  ASSERT_FALSE(catalog.empty());
  std::set<std::string> names;
  for (const ScenarioConfig& sc : catalog) {
    EXPECT_TRUE(names.insert(sc.name).second) << "duplicate " << sc.name;
    EXPECT_FALSE(sc.summary.empty()) << sc.name;
    EXPECT_NO_THROW(sc.validate()) << sc.name;
    const ScenarioConfig* found = find_scenario(sc.name);
    ASSERT_NE(found, nullptr) << sc.name;
    EXPECT_EQ(found, &sc);
  }
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
}

TEST(ScenarioCatalog, CoversEveryAttackAndDefenseKind) {
  std::set<AttackKind> attacks;
  std::set<DefenseKind> defenses;
  for (const ScenarioConfig& sc : scenario_catalog()) {
    attacks.insert(sc.attack);
    defenses.insert(sc.defense);
  }
  EXPECT_EQ(attacks.size(), 3u);
  EXPECT_EQ(defenses.size(), 3u);
}

TEST(ScenarioCatalog, EveryEntryRunsBriefly) {
  // The CI round-trip: each registered scenario must actually run — a few
  // plant rounds is enough to catch a wiring that validates but explodes.
  // The service rider (when configured) runs its full epoch budget, which
  // is what populates the churn counters below.
  for (const ScenarioConfig& sc : scenario_catalog()) {
    SCOPED_TRACE(sc.name);
    const ScenarioResult r = run_scenario(sc, /*rounds_override=*/3);
    ASSERT_EQ(r.x.size(), 3u);
    ASSERT_EQ(r.honest.size(), 3u);
    ASSERT_EQ(r.observed0.size(), 3u);
    for (const auto& row : r.x) {
      ASSERT_EQ(row.size(), sc.plant.regions);
      for (const double x : row) {
        EXPECT_TRUE(std::isfinite(x));
        EXPECT_GE(x, 0.0);
        EXPECT_LE(x, 1.0);
      }
    }
    EXPECT_TRUE(std::isfinite(r.observed_error_tail));
    EXPECT_GE(r.precision, 0.0);
    EXPECT_LE(r.recall, 1.0);
    if (sc.service.epochs > 0) {
      EXPECT_GT(r.exploit_rejoins, 0u);
    } else {
      EXPECT_EQ(r.exploit_rejoins, 0u);
    }
  }
}

TEST(ScenarioRunner, CleanScenariosFlagNobody) {
  for (const char* name : {"clean-robust", "clean-trust"}) {
    SCOPED_TRACE(name);
    const ScenarioConfig* sc = find_scenario(name);
    ASSERT_NE(sc, nullptr);
    const ScenarioResult r = run_scenario(*sc);
    EXPECT_EQ(r.quarantined, 0u);
    EXPECT_EQ(r.distrusted, 0u);
    EXPECT_EQ(r.outliers_rejected, 0u);
    // Honest reports are exact, so the cloud's picture IS the truth.
    EXPECT_EQ(r.observed_error_tail, 0.0);
    EXPECT_EQ(r.precision, 1.0);
    EXPECT_EQ(r.recall, 1.0);
  }
}

TEST(ScenarioRunner, RunsAreDeterministic) {
  const ScenarioConfig* sc = find_scenario("adaptive-probe-trust");
  ASSERT_NE(sc, nullptr);
  const ScenarioResult a = run_scenario(*sc, /*rounds_override=*/25);
  const ScenarioResult b = run_scenario(*sc, /*rounds_override=*/25);
  EXPECT_EQ(a.x, b.x);  // bitwise, not approximately
  EXPECT_EQ(a.observed0, b.observed0);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.distrusted, b.distrusted);
  EXPECT_EQ(a.observed_error_tail, b.observed_error_tail);
}

TEST(ScenarioRunner, TrustLayerOutDetectsTheEwmaUnderTheProbe) {
  // The acceptance contrast in miniature: against the threshold-probing
  // adversary the EWMA-only defense excludes nobody lastingly (the probe
  // settles below the forgetting threshold) while the ratcheting trust
  // layer accumulates every burst into distrust.
  const ScenarioConfig* ewma = find_scenario("adaptive-probe-robust");
  const ScenarioConfig* trust = find_scenario("adaptive-probe-trust");
  ASSERT_NE(ewma, nullptr);
  ASSERT_NE(trust, nullptr);
  const ScenarioResult r_ewma = run_scenario(*ewma, /*rounds_override=*/60);
  const ScenarioResult r_trust = run_scenario(*trust, /*rounds_override=*/60);
  EXPECT_GT(r_trust.distrusted, 0u);
  EXPECT_GT(r_trust.recall, r_ewma.recall);
  EXPECT_EQ(r_trust.precision, 1.0);  // no honest vehicle pays for it
}

TEST(ScenarioRunner, VsCleanFillsTheControlContrast) {
  const ScenarioConfig* sc = find_scenario("adaptive-collusion-robust");
  ASSERT_NE(sc, nullptr);
  const ScenarioResult r = run_scenario_vs_clean(*sc, /*rounds_override=*/40);
  EXPECT_TRUE(std::isfinite(r.ratio_error_tail));
  // The rotating cohort free-rides through the EWMA blind spot: the
  // defended-arm trajectory measurably departs from the clean twin.
  EXPECT_GT(r.ratio_error_tail, 0.0);
}

TEST(ScenarioConfigValidate, RejectsIncoherentWirings) {
  ScenarioConfig sc;
  sc.name = "bad";
  sc.attack = AttackKind::kAdaptive;  // fraction still 0 => not any()
  EXPECT_THROW(sc.validate(), ContractViolation);

  ScenarioConfig sc2;
  sc2.name = "bad2";
  sc2.plant.tail_rounds = sc2.plant.rounds + 1;
  EXPECT_THROW(sc2.validate(), ContractViolation);

  ScenarioConfig sc3;
  sc3.name = "bad3";
  sc3.defense = DefenseKind::kTrust;
  sc3.trust.trust_floor = 1.5;
  EXPECT_THROW(sc3.validate(), ContractViolation);
}

}  // namespace
}  // namespace avcp::scenario
