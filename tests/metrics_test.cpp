#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/contracts.h"
#include "common/csv.h"
#include "test_support.h"

namespace avcp::sim {
namespace {

using core::testing::make_single_region_game;

RunResult small_run() {
  const auto game = make_single_region_game();
  core::FixedRatioController controller(0.4);
  RunOptions options;
  options.max_rounds = 3;
  return run_mean_field(game, controller, game.uniform_state(), {0.4},
                        nullptr, options);
}

TEST(Metrics, TrajectoryCsvShape) {
  const auto result = small_run();
  std::ostringstream out;
  write_trajectory_csv(out, result);
  std::istringstream in(out.str());
  const auto rows = read_csv(in);
  // Header + (initial + 3 rounds) * 1 region * 8 decisions.
  ASSERT_EQ(rows.size(), 1u + 4u * 8u);
  EXPECT_EQ(rows[0],
            (std::vector<std::string>{"round", "region", "decision",
                                      "proportion"}));
  // First data row: round 0, region 0, decision 0, proportion 1/8.
  EXPECT_EQ(rows[1][0], "0");
  EXPECT_NEAR(std::stod(rows[1][3]), 0.125, 1e-9);
}

TEST(Metrics, TrajectoryProportionsSumToOnePerRoundRegion) {
  const auto result = small_run();
  std::ostringstream out;
  write_trajectory_csv(out, result);
  std::istringstream in(out.str());
  const auto rows = read_csv(in);
  std::map<std::string, double> sums;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    sums[rows[r][0] + ":" + rows[r][1]] += std::stod(rows[r][3]);
  }
  for (const auto& [key, sum] : sums) {
    EXPECT_NEAR(sum, 1.0, 1e-4) << key;  // std::to_string keeps 6 decimals
  }
}

TEST(Metrics, RatioCsvShape) {
  const auto result = small_run();
  std::ostringstream out;
  write_ratio_csv(out, result);
  std::istringstream in(out.str());
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 1u + 3u);  // header + 3 rounds * 1 region
  EXPECT_EQ(rows[1][0], "1");
  EXPECT_NEAR(std::stod(rows[1][2]), 0.4, 1e-9);
}

TEST(Metrics, StateCsvRoundTripsValues) {
  const auto game = make_single_region_game();
  std::vector<double> p(8, 0.0);
  p[0] = 0.75;
  p[7] = 0.25;
  const auto state = game.broadcast_state(p);
  std::ostringstream out;
  write_state_csv(out, state);
  std::istringstream in(out.str());
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 9u);
  EXPECT_NEAR(std::stod(rows[1][2]), 0.75, 1e-9);
  EXPECT_NEAR(std::stod(rows[8][2]), 0.25, 1e-9);
}

TEST(Metrics, UnrecordedRunRejected) {
  const auto game = make_single_region_game();
  core::FixedRatioController controller(0.4);
  RunOptions options;
  options.max_rounds = 2;
  options.record_trajectory = false;
  const auto result = run_mean_field(game, controller, game.uniform_state(),
                                     {0.4}, nullptr, options);
  std::ostringstream out;
  EXPECT_THROW(write_trajectory_csv(out, result), ContractViolation);
  EXPECT_THROW(write_ratio_csv(out, result), ContractViolation);
}

}  // namespace
}  // namespace avcp::sim
