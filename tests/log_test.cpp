#include "common/log.h"

#include <gtest/gtest.h>

namespace avcp {
namespace {

/// Restores the global level after each test.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LogTest, SetAndGetLevel) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LogTest, StatementBelowThresholdDoesNotFormat) {
  set_log_level(LogLevel::kError);
  // Streaming into a suppressed statement must be a no-op (and not crash).
  AVCP_LOG(kDebug, "test") << "invisible " << 42;
  SUCCEED();
}

TEST_F(LogTest, StatementAtThresholdEmits) {
  set_log_level(LogLevel::kOff);  // keep test output clean
  AVCP_LOG(kError, "test") << "suppressed because level is Off";
  set_log_level(LogLevel::kError);
  // Emits to stderr; we only verify it doesn't throw.
  AVCP_LOG(kError, "test") << "one error line from log_test";
  SUCCEED();
}

TEST_F(LogTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kError));
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kOff));
}

}  // namespace
}  // namespace avcp
