// End-to-end integration: trace-driven pipeline -> multi-region game ->
// FDS shaping, mirroring the paper's full evaluation loop at small scale.
//
// Desired decision fields follow the paper's §V-C methodology: a field is a
// target distribution with an acceptable error eps. Targets must be
// *attainable* for the region game at hand (the paper chooses such fields);
// we derive them from the equilibrium reached under a reference sharing
// ratio, then require FDS — starting from a different ratio — to steer the
// population into the eps-box.
#include <gtest/gtest.h>

#include "common/interval.h"
#include "core/fds.h"
#include "core/lower_bound.h"
#include "core/sensor_model.h"
#include "sim/pipeline.h"
#include "sim/runner.h"

namespace avcp {
namespace {

sim::PipelineConfig tiny_config(sim::CoefficientKind kind) {
  sim::PipelineConfig config;
  config.city.rows = 6;
  config.city.cols = 8;
  config.city.seed = 31;
  config.traces.num_vehicles = 50;
  config.traces.duration_s = 1200.0;
  config.traces.seed = 32;
  config.num_servers = 24;
  config.num_regions = 4;
  config.coefficient = kind;
  config.beta_lo = 3.0;  // strong incentives keep the test fast
  config.beta_hi = 4.0;
  return config;
}

core::MultiRegionGame make_game(const sim::PipelineArtifacts& artifacts) {
  core::GameConfig game_config;
  game_config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(game_config.lattice);
  game_config.utility = tables.utility;
  game_config.privacy = tables.privacy;
  game_config.step_size = 0.5;
  return core::MultiRegionGame(std::move(game_config), artifacts.region_specs);
}

core::FdsOptions fds_options() {
  core::FdsOptions options;
  options.max_step = 0.1;
  return options;
}

/// Desired fields = eps-box around the equilibrium reached from `start`
/// under the constant ratio x_ref.
core::DesiredFields attainable_fields(const core::MultiRegionGame& game,
                                      const core::GameState& start,
                                      double x_ref, double eps,
                                      int rounds = 2000) {
  core::GameState eq = start;
  const std::vector<double> x(game.num_regions(), x_ref);
  for (int t = 0; t < rounds; ++t) game.replicator_step(eq, x);
  core::DesiredFields fields(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    for (core::DecisionId k = 0; k < game.num_decisions(); ++k) {
      fields.set_target(i, k,
                        Interval{std::max(0.0, eq.p[i][k] - eps),
                                 std::min(1.0, eq.p[i][k] + eps)});
    }
  }
  return fields;
}

class EndToEnd : public ::testing::TestWithParam<sim::CoefficientKind> {};

TEST_P(EndToEnd, FdsReachesAttainableFieldAndBeatsLowerBound) {
  const auto artifacts = sim::build_pipeline(tiny_config(GetParam()));
  const auto game = make_game(artifacts);

  const auto fields =
      attainable_fields(game, game.uniform_state(), /*x_ref=*/0.75,
                        /*eps=*/0.05);
  core::FdsController controller(game, fields, fds_options());

  const std::vector<double> x0(game.num_regions(), 0.2);
  sim::RunOptions options;
  options.max_rounds = 2000;
  options.record_trajectory = false;
  const auto result = sim::run_mean_field(game, controller,
                                          game.uniform_state(), x0, &fields,
                                          options);
  EXPECT_TRUE(result.converged) << "rounds=" << result.rounds;

  // The relaxed lower bound must hold for the same instance.
  core::LowerBoundOptions lb_options;
  lb_options.max_step = fds_options().max_step;
  const auto bound = core::convergence_lower_bound(game, game.uniform_state(),
                                                   fields, x0, lb_options);
  EXPECT_TRUE(bound.reachable);
  EXPECT_LE(bound.rounds, result.rounds);
}

TEST_P(EndToEnd, LowSharingRatioSuppressesSharingHighRatioPromotesIt) {
  // The Fig. 10 shape on a trace-derived game: under a near-zero ratio the
  // privacy-cheap decisions dominate; under x = 1.0 high-sharing decisions
  // hold a clear majority.
  const auto artifacts = sim::build_pipeline(tiny_config(GetParam()));
  const auto game = make_game(artifacts);

  core::FixedRatioController low(0.05);
  sim::RunOptions options;
  options.max_rounds = 1500;
  options.record_trajectory = false;
  const auto low_run = sim::run_mean_field(
      game, low, game.uniform_state(),
      std::vector<double>(game.num_regions(), 0.05), nullptr, options);

  core::FixedRatioController high(1.0);
  const auto high_run = sim::run_mean_field(
      game, high, game.uniform_state(),
      std::vector<double>(game.num_regions(), 1.0), nullptr, options);

  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    // Low ratio: low-privacy decisions (P7 radar-only + P8 none) dominate.
    const double low_share = low_run.final_state.p[i][6] +
                             low_run.final_state.p[i][7];
    EXPECT_GT(low_share, 0.8) << "region " << i;
    // High ratio shifts clear probability mass toward richer sharing in
    // regions with meaningful local coupling (beta * gamma_ii); regions
    // whose vehicles rarely meet cannot sustain costly sharing at any
    // ratio, which is itself part of the model's economics.
    const auto& spec = game.region(i);
    if (spec.beta * spec.gamma_self < 1.5) continue;
    double high_sharing = 0.0;
    double low_sharing = 0.0;
    for (core::DecisionId k = 0; k < 4; ++k) {
      high_sharing += high_run.final_state.p[i][k];
      low_sharing += low_run.final_state.p[i][k];
    }
    EXPECT_GT(high_sharing, low_sharing + 0.5) << "region " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BothCoefficients, EndToEnd,
    ::testing::Values(sim::CoefficientKind::kBetweenness,
                      sim::CoefficientKind::kTrafficDensity));

TEST(EndToEnd, WeatherSwitchReShapesDecisions) {
  // The weather-adaptation scenario of §V-C: converge to a "sunny" field
  // (rich sharing, high reference ratio), then switch the desired field to
  // a privacy-lean "foggy" one (low reference ratio) and require FDS to
  // re-converge.
  const auto artifacts =
      sim::build_pipeline(tiny_config(sim::CoefficientKind::kBetweenness));
  const auto game = make_game(artifacts);

  const auto sunny =
      attainable_fields(game, game.uniform_state(), /*x_ref=*/0.85,
                        /*eps=*/0.05);
  core::FdsController sunny_controller(game, sunny, fds_options());
  sim::RunOptions options;
  options.max_rounds = 2000;
  options.record_trajectory = false;
  auto run1 = sim::run_mean_field(
      game, sunny_controller, game.uniform_state(),
      std::vector<double>(game.num_regions(), 0.4), &sunny, options);
  ASSERT_TRUE(run1.converged) << "rounds=" << run1.rounds;

  // Fog rolls in. Vehicles re-enter the area with fresh defaults, so the
  // population regains some diversity (a pure state cannot move under
  // replicator dynamics).
  core::GameState reseeded = run1.final_state;
  for (auto& row : reseeded.p) {
    for (double& v : row) v = 0.8 * v + 0.2 / 8.0;
  }
  const auto foggy = attainable_fields(game, reseeded, /*x_ref=*/0.05,
                                       /*eps=*/0.05, /*rounds=*/5000);
  core::FdsController foggy_controller(game, foggy, fds_options());
  sim::RunOptions long_options = options;
  long_options.max_rounds = 5000;
  const auto run2 = sim::run_mean_field(game, foggy_controller, reseeded,
                                        run1.final_x, &foggy, long_options);
  EXPECT_TRUE(run2.converged) << "rounds=" << run2.rounds;
}

}  // namespace
}  // namespace avcp
