#include "sim/trace_replay.h"

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "core/fds.h"
#include "test_support.h"

namespace avcp::sim {
namespace {

using core::testing::make_chain_game;

/// A hand-built trace over 2 segments (segment s -> region s) and 2 rounds
/// of 100 s each.
std::vector<trace::GpsFix> tiny_trace() {
  std::vector<trace::GpsFix> fixes;
  // Round 0: vehicles 0, 1 mostly on segment 0; vehicle 2 on segment 1.
  fixes.push_back({0, 10.0, {}, 0.0, 0});
  fixes.push_back({0, 20.0, {}, 0.0, 0});
  fixes.push_back({1, 15.0, {}, 0.0, 0});
  fixes.push_back({2, 30.0, {}, 0.0, 1});
  // Vehicle 0 dips into segment 1 but stays modal on segment 0.
  fixes.push_back({0, 40.0, {}, 0.0, 1});
  fixes.push_back({0, 50.0, {}, 0.0, 0});
  // Round 1: vehicle 0 migrates to region 1; vehicle 1 goes dormant.
  fixes.push_back({0, 110.0, {}, 0.0, 1});
  fixes.push_back({2, 120.0, {}, 0.0, 1});
  return fixes;
}

TraceReplayParams tiny_params() {
  TraceReplayParams params;
  params.round_s = 100.0;
  params.seed = 5;
  return params;
}

TEST(TraceReplay, CountsRoundsAndPresence) {
  const auto game = make_chain_game(2);
  const std::vector<cluster::RegionId> region_of = {0, 1};
  const TraceDrivenSim sim(game, tiny_trace(), region_of, 3, 200.0,
                           tiny_params());
  EXPECT_EQ(sim.num_rounds(), 2u);
  EXPECT_EQ(sim.present_vehicles(0), 3u);
  EXPECT_EQ(sim.present_vehicles(1), 2u);
}

TEST(TraceReplay, EmpiricalStateReflectsPresentVehicles) {
  const auto game = make_chain_game(2);
  const std::vector<cluster::RegionId> region_of = {0, 1};
  TraceDrivenSim sim(game, tiny_trace(), region_of, 3, 200.0, tiny_params());

  // All vehicles start at decision drawn from a pure-P1 distribution.
  std::vector<double> all_p1(8, 0.0);
  all_p1[0] = 1.0;
  sim.init_from(game.broadcast_state(all_p1));
  const auto& state = sim.empirical_state();
  // Round 0: region 0 has vehicles {0, 1}, region 1 has {2}; all P1.
  EXPECT_DOUBLE_EQ(state.p[0][0], 1.0);
  EXPECT_DOUBLE_EQ(state.p[1][0], 1.0);
}

TEST(TraceReplay, RowsStayOnSimplexAcrossRounds) {
  const auto game = make_chain_game(2);
  const std::vector<cluster::RegionId> region_of = {0, 1};
  TraceDrivenSim sim(game, tiny_trace(), region_of, 3, 200.0, tiny_params());
  sim.init_from(game.uniform_state());
  const std::vector<double> x = {0.5, 0.5};
  for (int t = 0; t < 5; ++t) {
    sim.step(x);
    for (const auto& row : sim.empirical_state().p) {
      core::check_distribution(row);
    }
  }
  EXPECT_EQ(sim.current_round(), 5u);
}

TEST(TraceReplay, RejectsBadInputs) {
  const auto game = make_chain_game(2);
  const std::vector<cluster::RegionId> region_of = {0, 1};
  // Vehicle id out of range.
  std::vector<trace::GpsFix> bad = {{9, 0.0, {}, 0.0, 0}};
  EXPECT_THROW(
      TraceDrivenSim(game, bad, region_of, 3, 200.0, tiny_params()),
      ContractViolation);
  // Segment id out of range.
  bad = {{0, 0.0, {}, 0.0, 7}};
  EXPECT_THROW(
      TraceDrivenSim(game, bad, region_of, 3, 200.0, tiny_params()),
      ContractViolation);
}

TEST(TraceReplay, StreamingBuilderMatchesSpanConstructor) {
  // Feeding fixes one at a time through TracePresenceBuilder must produce
  // the exact trajectory of the materialized-span constructor.
  const auto game = make_chain_game(2);
  const std::vector<cluster::RegionId> region_of = {0, 1};
  const auto fixes = tiny_trace();
  TraceDrivenSim batch(game, fixes, region_of, 3, 200.0, tiny_params());

  TracePresenceBuilder builder(region_of, 3, game.num_regions(),
                               tiny_params().round_s, 200.0);
  for (const trace::GpsFix& fix : fixes) builder.add(fix);
  EXPECT_EQ(builder.num_rounds(), 2u);
  TraceDrivenSim streamed(game, std::move(builder), tiny_params());

  EXPECT_EQ(streamed.num_rounds(), batch.num_rounds());
  EXPECT_EQ(streamed.present_vehicles(0), batch.present_vehicles(0));
  batch.init_from(game.uniform_state());
  streamed.init_from(game.uniform_state());
  const std::vector<double> x = {0.5, 0.5};
  for (int t = 0; t < 5; ++t) {
    batch.step(x);
    streamed.step(x);
    EXPECT_EQ(streamed.empirical_state().p, batch.empirical_state().p);
  }
}

TEST(TraceReplay, ConvergesToNoSharingAtZeroRatio) {
  // A dense synthetic presence pattern: everyone in one region all rounds.
  const auto game = make_chain_game(1, /*beta_lo=*/1.5);
  const std::vector<cluster::RegionId> region_of = {0};
  std::vector<trace::GpsFix> fixes;
  const std::size_t vehicles = 400;
  const std::size_t rounds = 120;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t v = 0; v < vehicles; ++v) {
      fixes.push_back({static_cast<trace::VehicleId>(v),
                       static_cast<double>(r) * 100.0 + 1.0, {}, 0.0, 0});
    }
  }
  TraceDrivenSim sim(game, fixes, region_of, vehicles,
                     static_cast<double>(rounds) * 100.0, tiny_params());
  sim.init_from(game.uniform_state());
  const std::vector<double> x = {0.0};
  for (std::size_t t = 0; t < rounds; ++t) sim.step(x);
  EXPECT_GT(sim.empirical_state().p[0][7], 0.85);
}

TEST(TraceReplay, MigrationCarriesDecisionsBetweenRegions) {
  // Region 1 never hosts revision pressure of its own (one resident), but a
  // migrating majority from region 0 physically carries its decision over.
  const auto game = make_chain_game(2);
  const std::vector<cluster::RegionId> region_of = {0, 1};
  std::vector<trace::GpsFix> fixes;
  const std::size_t rounds = 4;
  for (std::size_t r = 0; r < rounds; ++r) {
    // Vehicles 0..19 live in region 0 in even rounds, region 1 in odd.
    const roadnet::SegmentId seg = (r % 2 == 0) ? 0 : 1;
    for (trace::VehicleId v = 0; v < 20; ++v) {
      fixes.push_back({v, static_cast<double>(r) * 100.0 + 1.0, {}, 0.0, seg});
    }
  }
  TraceDrivenSim sim(game, fixes, region_of, 20, 400.0, tiny_params());
  std::vector<double> all_p7(8, 0.0);
  all_p7[6] = 1.0;  // everyone shares radar only
  sim.init_from(game.broadcast_state(all_p7));
  const std::vector<double> x = {0.5, 0.5};
  sim.step(x);  // round 0: everyone in region 0
  sim.step(x);  // round 1: everyone moved to region 1
  // Region 1's empirical distribution is now the migrated population.
  EXPECT_DOUBLE_EQ(sim.empirical_state().p[1][6], 1.0);
}

TEST(TraceReplay, MeasuredFitnessModeIsDeterministicAndOptIn) {
  const auto game = make_chain_game(2);
  const std::vector<cluster::RegionId> region_of = {0, 1};
  const std::vector<double> x = {0.6, 0.4};
  auto run = [&](bool measured) {
    auto params = tiny_params();
    params.measure_data_plane = measured;
    params.exchange.mode = perception::DataPlaneMode::kClassAggregated;
    TraceDrivenSim sim(game, tiny_trace(), region_of, 3, 200.0, params);
    sim.init_from(game.uniform_state());
    for (int t = 0; t < 4; ++t) sim.step(x);
    return sim.empirical_state();
  };
  // Same seed, measured mode on: identical trajectories.
  const auto a = run(true);
  const auto b = run(true);
  EXPECT_EQ(a.p, b.p);
  for (const auto& row : a.p) core::check_distribution(row);
  // The flag is opt-in: the default analytic path still runs fine and its
  // revision stream is untouched by the measured machinery.
  const auto analytic = run(false);
  for (const auto& row : analytic.p) core::check_distribution(row);
}

TEST(TraceReplay, FdsShapesTraceDrivenPopulation) {
  // End-to-end: the FDS controller reads the trace-driven empirical state
  // and shapes it, tolerating migration and dormancy.
  const auto game = make_chain_game(1, /*beta_lo=*/4.0);
  const std::vector<cluster::RegionId> region_of = {0};
  std::vector<trace::GpsFix> fixes;
  const std::size_t vehicles = 600;
  const std::size_t rounds = 150;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t v = 0; v < vehicles; ++v) {
      fixes.push_back({static_cast<trace::VehicleId>(v),
                       static_cast<double>(r) * 100.0 + 1.0, {}, 0.0, 0});
    }
  }
  TraceDrivenSim sim(game, fixes, region_of, vehicles,
                     static_cast<double>(rounds) * 100.0, tiny_params());
  sim.init_from(game.uniform_state());

  core::DesiredFields fields(1, 8);
  fields.set_target(0, 0, Interval{0.8, 1.0});
  core::FdsOptions options;
  options.max_step = 0.1;
  core::FdsController controller(game, fields, options);

  std::vector<double> x = {0.2};
  bool reached = false;
  for (std::size_t t = 0; t < rounds; ++t) {
    x = controller.next_x(sim.empirical_state(), x);
    sim.step(x);
    if (fields.satisfied(sim.empirical_state(), 1e-9)) {
      reached = true;
      break;
    }
  }
  EXPECT_TRUE(reached) << "final p(P1) = "
                       << sim.empirical_state().p[0][0];
}

}  // namespace
}  // namespace avcp::sim
