// Byzantine layer unit tests: adversary scheduling, robust estimators,
// reputation/quarantine state machine, and the report pipeline — plus the
// query-order-independence property shared with the fault layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "byzantine/adversary_model.h"
#include "byzantine/report_pipeline.h"
#include "byzantine/reputation.h"
#include "byzantine/robust_aggregator.h"
#include "common/contracts.h"
#include "common/rng.h"
#include "core/lattice.h"
#include "faults/fault_model.h"

namespace avcp::byzantine {
namespace {

// ---------------------------------------------------------------- estimators

TEST(RobustAggregator, MedianOddEvenAndEmpty) {
  EXPECT_DOUBLE_EQ(RobustAggregator::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(RobustAggregator::median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(RobustAggregator::median({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(RobustAggregator::median({}), 0.0);
}

TEST(RobustAggregator, MadOfConstantSampleIsZero) {
  const std::vector<double> values(10, 4.2);
  EXPECT_DOUBLE_EQ(RobustAggregator::mad(values, 4.2), 0.0);
}

TEST(RobustAggregator, MeanModeMatchesArithmeticMeanBitwise) {
  // The passthrough contract: kMean must reproduce the plain index-order
  // sum-then-divide exactly, not merely approximately.
  RobustOptions options;
  options.mode = AggregationMode::kMean;
  const RobustAggregator agg(options);
  const std::vector<double> values = {0.1, 0.7, 0.2, 0.35, 0.05};
  double sum = 0.0;
  for (const double v : values) sum += v;
  EXPECT_EQ(agg.aggregate(values), sum / 5.0);
}

TEST(RobustAggregator, MedianModeShrugsOffMinorityOutliers) {
  RobustOptions options;
  options.mode = AggregationMode::kMedian;
  const RobustAggregator agg(options);
  std::vector<double> values(7, 1.0);
  values[0] = values[1] = 1e6;  // 2/7 colluding liars
  EXPECT_DOUBLE_EQ(agg.aggregate(values), 1.0);
}

TEST(RobustAggregator, TrimmedMeanDropsTails) {
  RobustOptions options;
  options.mode = AggregationMode::kTrimmedMean;
  options.trim_fraction = 0.2;  // cut = 2 of 10 from each end
  const RobustAggregator agg(options);
  std::vector<double> values = {1.0, 1.0, 1.0, 1.0, 1.0,
                                1.0, -50.0, 60.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(agg.aggregate(values), 1.0);
}

TEST(RobustAggregator, TrimmedMeanDegeneratesToMedianWhenOvertrimmed) {
  RobustOptions options;
  options.mode = AggregationMode::kTrimmedMean;
  options.trim_fraction = 0.5;
  const RobustAggregator agg(options);
  EXPECT_DOUBLE_EQ(agg.aggregate(std::vector<double>{1.0, 2.0, 9.0}), 2.0);
}

TEST(RobustAggregator, OutlierScoresFlagLiarsAgainstExactHonestSample) {
  // Honest telemetry is exact, so the MAD collapses to zero and the
  // relative floor takes over — any deviating value scores enormously.
  RobustOptions options;
  options.reject_outliers = true;
  options.mad_threshold = 8.0;
  const RobustAggregator agg(options);
  std::vector<double> values(12, 60.0);
  values[3] = 240.0;  // density poisoner, x4
  const auto scores = agg.outlier_scores(values);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i == 3) {
      EXPECT_TRUE(agg.is_outlier(scores[i]));
    } else {
      EXPECT_FALSE(agg.is_outlier(scores[i]));
    }
  }
}

TEST(RobustAggregator, PassthroughPredicate) {
  RobustOptions options;
  EXPECT_TRUE(options.passthrough());
  options.reject_outliers = true;
  EXPECT_FALSE(options.passthrough());
  options.reject_outliers = false;
  options.mode = AggregationMode::kMedian;
  EXPECT_FALSE(options.passthrough());
}

// ---------------------------------------------------------------- adversary

TEST(AdversaryModel, InertModelNeverAttacks) {
  const AdversaryModel model(AdversaryParams{});
  EXPECT_FALSE(model.active());
  for (core::RegionId i = 0; i < 3; ++i) {
    for (std::size_t v = 0; v < 50; ++v) {
      EXPECT_FALSE(model.is_attacker(i, v));
      EXPECT_FALSE(model.attacking(7, i, v));
    }
  }
}

TEST(AdversaryModel, AttackerFractionIsApproximatelyRespected) {
  AdversaryParams params;
  params.attacker_fraction = 0.25;
  params.seed = 11;
  const AdversaryModel model(params);
  std::size_t attackers = 0;
  const std::size_t n = 20000;
  for (std::size_t v = 0; v < n; ++v) {
    if (model.is_attacker(0, v)) ++attackers;
  }
  EXPECT_NEAR(static_cast<double>(attackers) / static_cast<double>(n), 0.25,
              0.02);
}

TEST(AdversaryModel, FalsifyOnlyTouchesAttackingTriples) {
  AdversaryParams params;
  params.attacker_fraction = 0.3;
  params.strategy = AttackStrategy::kDensityPoison;
  params.magnitude = 4.0;
  params.seed = 5;
  const AdversaryModel model(params);
  const VehicleReport honest{/*decision=*/3, /*beta=*/1.5, /*gamma=*/1.0,
                             /*density=*/60.0};
  for (std::size_t v = 0; v < 100; ++v) {
    const VehicleReport r = model.falsify(0, 0, v, honest);
    if (model.attacking(0, 0, v)) {
      EXPECT_DOUBLE_EQ(r.density, 240.0);
      EXPECT_EQ(r.decision, honest.decision);  // telemetry-only strategy
    } else {
      EXPECT_DOUBLE_EQ(r.density, honest.density);
    }
  }
}

TEST(AdversaryModel, InflateSharingClaimsTopButBehavesBottom) {
  const core::DecisionLattice lattice(3);
  AdversaryParams params;
  params.attacker_fraction = 1.0;
  params.strategy = AttackStrategy::kInflateSharing;
  const AdversaryModel model(params);
  const VehicleReport honest{/*decision=*/4, 1.0, 1.0, 60.0};
  const VehicleReport r = model.falsify(0, 0, 0, honest);
  EXPECT_EQ(r.decision, 0u);  // claims share-everything
  EXPECT_EQ(model.behavior_decision(0, 0, 0, honest.decision, lattice),
            lattice.num_decisions() - 1);  // uploads nothing
}

TEST(AdversaryModel, ColludingBiasRespectsTargetRegion) {
  AdversaryParams params;
  params.attacker_fraction = 1.0;
  params.strategy = AttackStrategy::kColludingBias;
  params.target_region = 1;
  const AdversaryModel model(params);
  EXPECT_FALSE(model.attacking(0, 0, 0));
  EXPECT_TRUE(model.attacking(0, 1, 0));
  EXPECT_FALSE(model.attacking(0, 2, 0));
}

TEST(AdversaryModel, FlipFlopStartsHonestAndAlternates) {
  AdversaryParams params;
  params.attacker_fraction = 1.0;
  params.strategy = AttackStrategy::kFlipFlop;
  params.flip_period = 3;
  const AdversaryModel model(params);
  const bool expected[] = {false, false, false, true,  true,  true,
                           false, false, false, true,  true,  true};
  for (std::size_t round = 0; round < 12; ++round) {
    EXPECT_EQ(model.attacking(round, 0, 0), expected[round]) << round;
  }
}

// Satellite: both hash-scheduled models are query-order independent — the
// schedule is a pure function of (seed, indices), so querying in any
// shuffled order (or re-querying) reproduces identical answers.
TEST(ScheduleProperty, AdversaryModelIsQueryOrderIndependent) {
  AdversaryParams params;
  params.attacker_fraction = 0.2;
  params.strategy = AttackStrategy::kFlipFlop;
  params.flip_period = 4;
  params.seed = 77;

  struct Query {
    std::size_t round;
    core::RegionId region;
    std::size_t vehicle;
  };
  std::vector<Query> queries;
  for (std::size_t round = 0; round < 6; ++round) {
    for (core::RegionId i = 0; i < 3; ++i) {
      for (std::size_t v = 0; v < 40; ++v) queries.push_back({round, i, v});
    }
  }

  const AdversaryModel first(params);
  std::vector<std::uint8_t> in_order;
  in_order.reserve(queries.size());
  for (const Query& q : queries) {
    in_order.push_back(first.attacking(q.round, q.region, q.vehicle) ? 1 : 0);
  }

  std::vector<std::size_t> perm(queries.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  Rng rng(123);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(i) - 1))]);
  }

  const AdversaryModel second(params);
  std::vector<std::uint8_t> shuffled(queries.size(), 0);
  for (const std::size_t j : perm) {
    const Query& q = queries[j];
    shuffled[j] = second.attacking(q.round, q.region, q.vehicle) ? 1 : 0;
  }
  EXPECT_EQ(in_order, shuffled);
}

TEST(ScheduleProperty, FaultModelIsQueryOrderIndependent) {
  faults::FaultParams params;
  params.upload_loss_rate = 0.1;
  params.delivery_loss_rate = 0.05;
  params.report_loss_rate = 0.2;
  params.outage_rate = 0.05;
  params.defector_fraction = 0.15;
  params.seed = 31;

  struct Query {
    std::size_t round;
    core::RegionId region;
    std::size_t exchange;
    std::size_t a;
    std::size_t b;
  };
  std::vector<Query> queries;
  for (std::size_t round = 0; round < 4; ++round) {
    for (core::RegionId i = 0; i < 2; ++i) {
      for (std::size_t e = 0; e < 2; ++e) {
        for (std::size_t a = 0; a < 8; ++a) {
          for (std::size_t b = 0; b < 8; ++b) {
            queries.push_back({round, i, e, a, b});
          }
        }
      }
    }
  }
  const auto probe = [](const faults::FaultModel& model, const Query& q) {
    std::uint8_t bits = 0;
    if (model.upload_lost(q.round, q.region, q.exchange, q.a)) bits |= 1;
    if (model.delivery_lost(q.round, q.region, q.exchange, q.a, q.b)) bits |= 2;
    if (model.report_lost(q.round, q.region)) bits |= 4;
    if (model.region_down(q.round, q.region)) bits |= 8;
    if (model.vehicle_defects(q.region, q.a)) bits |= 16;
    return bits;
  };

  const faults::FaultModel first(params);
  std::vector<std::uint8_t> in_order;
  in_order.reserve(queries.size());
  for (const Query& q : queries) in_order.push_back(probe(first, q));

  std::vector<std::size_t> perm(queries.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  Rng rng(321);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(i) - 1))]);
  }

  const faults::FaultModel second(params);
  std::vector<std::uint8_t> shuffled(queries.size(), 0);
  for (const std::size_t j : perm) shuffled[j] = probe(second, queries[j]);
  EXPECT_EQ(in_order, shuffled);
}

// ---------------------------------------------------------------- reputation

TEST(ReputationTracker, QuarantinesPersistentOffenderAfterMinRounds) {
  ReputationParams params;
  params.decay = 0.8;
  params.quarantine_threshold = 2.0;
  params.min_rounds = 4;
  ReputationTracker tracker(1, 2, params);

  std::size_t quarantined_at = 0;
  for (std::size_t round = 0; round < 20; ++round) {
    tracker.observe(0, 0, 6.0);  // persistent liar at the score cap
    tracker.end_round(round);
    if (tracker.quarantined(0, 0) && quarantined_at == 0) {
      quarantined_at = round + 1;
    }
  }
  EXPECT_TRUE(tracker.quarantined(0, 0));
  EXPECT_GE(quarantined_at, params.min_rounds);
  EXPECT_LE(quarantined_at, 10u);
  EXPECT_FALSE(tracker.quarantined(0, 1));  // the silent vehicle stays clean
  EXPECT_EQ(tracker.quarantined_in(0), 1u);
  EXPECT_EQ(tracker.total_quarantined(), 1u);
  ASSERT_FALSE(tracker.events().empty());
  EXPECT_TRUE(tracker.events().front().quarantined);
  EXPECT_EQ(tracker.events().front().vehicle, 0u);
}

TEST(ReputationTracker, MinRoundsGuardsTheBlindStart) {
  ReputationParams params;
  params.decay = 0.0;  // smoothed == this round's raw score
  params.quarantine_threshold = 2.0;
  params.min_rounds = 4;
  ReputationTracker tracker(1, 1, params);
  for (std::size_t round = 0; round < 3; ++round) {
    tracker.observe(0, 0, 6.0);
    tracker.end_round(round);
    EXPECT_FALSE(tracker.quarantined(0, 0)) << round;  // spike, not persistence
  }
  tracker.observe(0, 0, 6.0);
  tracker.end_round(3);
  EXPECT_TRUE(tracker.quarantined(0, 0));
}

TEST(ReputationTracker, RehabilitatesAfterCleanStreak) {
  ReputationParams params;
  params.decay = 0.5;
  params.quarantine_threshold = 2.0;
  params.rehab_threshold = 0.5;
  params.rehab_rounds = 3;
  params.min_rounds = 1;
  ReputationTracker tracker(1, 1, params);

  std::size_t round = 0;
  for (; round < 6; ++round) {
    tracker.observe(0, 0, 6.0);
    tracker.end_round(round);
  }
  ASSERT_TRUE(tracker.quarantined(0, 0));
  // Falsely-flagged honest vehicle: scores stop arriving, the EWMA decays
  // below rehab_threshold, and after rehab_rounds clean rounds it's out.
  std::size_t released_at = 0;
  for (; round < 30; ++round) {
    tracker.end_round(round);
    if (!tracker.quarantined(0, 0)) {
      released_at = round;
      break;
    }
  }
  EXPECT_FALSE(tracker.quarantined(0, 0));
  EXPECT_GT(released_at, 6u);
  ASSERT_GE(tracker.events().size(), 2u);
  EXPECT_FALSE(tracker.events().back().quarantined);
}

TEST(ReputationTracker, ScoreCapBoundsOneRoundsInfluence) {
  ReputationParams params;
  params.decay = 0.0;
  params.score_cap = 6.0;
  params.min_rounds = 1;
  ReputationTracker tracker(1, 1, params);
  tracker.observe(0, 0, 1e9);  // astronomical telemetry residual
  tracker.end_round(0);
  EXPECT_DOUBLE_EQ(tracker.score(0, 0), 6.0);
}

TEST(ReputationTracker, ZeroRehabThresholdIsReachable) {
  // Regression for the open-boundary release bug: with rehab_threshold 0.0
  // ("release only a fully clean score") the geometric decay approached 0
  // but the strict comparison never fired, so a falsely-flagged vehicle
  // stayed quarantined forever. The clean snap plus the closed (<=) test
  // make the release land in finitely many rounds.
  ReputationParams params;
  params.decay = 0.8;
  params.quarantine_threshold = 2.0;
  params.rehab_threshold = 0.0;
  params.rehab_rounds = 2;
  params.min_rounds = 1;
  ReputationTracker tracker(1, 1, params);
  for (std::size_t round = 0; round < 8; ++round) {
    tracker.observe(0, 0, 6.0);
    tracker.end_round(round);
  }
  ASSERT_TRUE(tracker.quarantined(0, 0));
  bool released = false;
  for (std::size_t round = 8; round < 300; ++round) {
    tracker.end_round(round);
    if (!tracker.quarantined(0, 0)) {
      released = true;
      break;
    }
  }
  EXPECT_TRUE(released);
  EXPECT_EQ(tracker.score(0, 0), 0.0);  // snapped, not merely tiny
}

TEST(ReputationTracker, DecayFloorKeepsRepeatOffendersWarm) {
  // Permanent suspicion: once a vehicle has been quarantined its EWMA never
  // decays below the floor, so a second offense re-trips the threshold
  // faster than the first. A never-flagged vehicle still decays to zero.
  ReputationParams params;
  params.decay = 0.5;
  params.quarantine_threshold = 2.0;
  params.rehab_threshold = 1.0;
  params.rehab_rounds = 2;
  params.min_rounds = 1;
  params.decay_floor = 0.8;
  ReputationTracker tracker(1, 2, params);
  std::size_t round = 0;
  for (; round < 6; ++round) {
    tracker.observe(0, 0, 6.0);
    tracker.end_round(round);
  }
  ASSERT_TRUE(tracker.quarantined(0, 0));
  for (; round < 40; ++round) tracker.end_round(round);
  EXPECT_FALSE(tracker.quarantined(0, 0));       // released...
  EXPECT_DOUBLE_EQ(tracker.score(0, 0), 0.8);    // ...but floored, not clean
  EXPECT_EQ(tracker.score(0, 1), 0.0);           // the clean vehicle is clean
}

TEST(ReputationParamsValidate, RejectsIncoherentKnobs) {
  const auto reject = [](auto&& mutate) {
    ReputationParams params;
    mutate(params);
    EXPECT_THROW(params.validate(), ContractViolation);
    EXPECT_THROW(ReputationTracker(1, 2, params), ContractViolation);
  };
  reject([](auto& p) { p.decay = 1.0; });
  reject([](auto& p) { p.decay = -0.1; });
  reject([](auto& p) { p.quarantine_threshold = 0.0; });
  reject([](auto& p) { p.rehab_threshold = p.quarantine_threshold; });
  reject([](auto& p) { p.rehab_rounds = 0; });
  reject([](auto& p) { p.min_rounds = 0; });
  reject([](auto& p) { p.score_cap = 0.0; });
  reject([](auto& p) { p.decay_floor = p.quarantine_threshold; });
}

// ------------------------------------------------------------------ pipeline

std::vector<VehicleReport> honest_reports(std::size_t n,
                                          core::DecisionId decision,
                                          double beta, double gamma,
                                          double density) {
  std::vector<VehicleReport> reports(n);
  for (auto& r : reports) {
    r.decision = decision;
    r.beta = beta;
    r.gamma = gamma;
    r.density = density;
  }
  return reports;
}

TEST(ReportPipeline, PassthroughMatchesTrustingMeanExactly) {
  PipelineOptions options;
  options.enforce_quarantine = false;
  options.telemetry_weight = 0.0;
  options.behavior_weight = 0.0;
  ReportPipeline pipeline(1, 8, 7, options);

  auto reports = honest_reports(7, 0, 1.5, 1.0, 7.0);
  reports[2].decision = 5;
  reports[6].decision = 5;
  reports[3].decision = 7;
  const auto obs = pipeline.aggregate(0, 0, reports);

  // The exact arithmetic of the trusting mean: count in index order, then
  // divide by the fleet size.
  std::vector<double> expected(8, 0.0);
  for (const auto& r : reports) expected[r.decision] += 1.0;
  for (double& v : expected) v /= 7.0;
  EXPECT_EQ(obs.p, expected);
  EXPECT_EQ(obs.reports_used, 7u);
  EXPECT_EQ(obs.outliers_rejected, 0u);
  EXPECT_DOUBLE_EQ(obs.beta, 1.5);
  EXPECT_DOUBLE_EQ(obs.density, 7.0);
}

TEST(ReportPipeline, RejectsTelemetryOutliersFromAggregates) {
  PipelineOptions options;
  options.aggregator.mode = AggregationMode::kMedian;
  options.aggregator.reject_outliers = true;
  ReportPipeline pipeline(1, 8, 10, options);

  auto reports = honest_reports(10, 2, 1.5, 1.0, 10.0);
  reports[4].density = 40.0;  // poisoner
  const auto obs = pipeline.aggregate(0, 0, reports);
  EXPECT_DOUBLE_EQ(obs.density, 10.0);
  EXPECT_EQ(obs.outliers_rejected, 1u);
  EXPECT_EQ(obs.reports_used, 9u);
  // The rejected report's decision claim is excluded from the histogram.
  EXPECT_DOUBLE_EQ(obs.p[2], 1.0);
}

TEST(ReportPipeline, PersistentTelemetryLiarGetsQuarantinedAndExcluded) {
  PipelineOptions options;
  options.aggregator.mode = AggregationMode::kMedian;
  options.aggregator.reject_outliers = true;
  options.reputation.min_rounds = 4;
  ReportPipeline pipeline(1, 8, 10, options);

  for (std::size_t round = 0; round < 12; ++round) {
    auto reports = honest_reports(10, 2, 1.5, 1.0, 10.0);
    reports[7].density = 80.0;
    pipeline.aggregate(round, 0, reports);
    pipeline.end_round(round);
  }
  EXPECT_TRUE(pipeline.reputation().quarantined(0, 7));
  EXPECT_TRUE(pipeline.excluded(0, 7));
  EXPECT_FALSE(pipeline.excluded(0, 0));

  // Once excluded, its report no longer even counts as a rejected outlier
  // — it's dropped before aggregation.
  auto reports = honest_reports(10, 2, 1.5, 1.0, 10.0);
  reports[7].density = 80.0;
  const auto obs = pipeline.aggregate(12, 0, reports);
  EXPECT_EQ(obs.reports_used, 9u);
  EXPECT_EQ(obs.quarantined, 1u);
  EXPECT_DOUBLE_EQ(obs.density, 10.0);
}

TEST(ReportPipeline, ZeroUploadFreeRiderAccruesBehaviouralPenalty) {
  PipelineOptions options;
  options.reputation.min_rounds = 4;
  ReportPipeline pipeline(1, 8, 10, options);

  for (std::size_t round = 0; round < 12; ++round) {
    // Everyone claims share-everything; vehicle 0 uploads nothing.
    const auto reports = honest_reports(10, 0, 1.5, 1.0, 10.0);
    pipeline.aggregate(round, 0, reports);
    std::vector<double> mass(10, 0.02);
    mass[0] = 0.0;
    pipeline.observe_uploads(0, mass);
    pipeline.end_round(round);
  }
  EXPECT_TRUE(pipeline.reputation().quarantined(0, 0));
  for (std::size_t v = 1; v < 10; ++v) {
    EXPECT_FALSE(pipeline.reputation().quarantined(0, v)) << v;
  }
}

TEST(ReportPipeline, NoPenaltyWhenCohortUploadsNothing) {
  PipelineOptions options;
  options.reputation.min_rounds = 1;
  ReportPipeline pipeline(1, 8, 6, options);
  for (std::size_t round = 0; round < 10; ++round) {
    // The whole share-everything cohort uploads nothing (nobody collected
    // anything): zero mass carries no evidence against any one member.
    const auto reports = honest_reports(6, 0, 1.5, 1.0, 6.0);
    pipeline.aggregate(round, 0, reports);
    pipeline.observe_uploads(0, std::vector<double>(6, 0.0));
    pipeline.end_round(round);
  }
  EXPECT_EQ(pipeline.reputation().total_quarantined(), 0u);
}

TEST(ReportPipeline, SmallCohortSkipsBehaviouralCheck) {
  PipelineOptions options;
  options.min_cohort = 4;
  options.reputation.min_rounds = 1;
  ReportPipeline pipeline(1, 8, 3, options);
  for (std::size_t round = 0; round < 10; ++round) {
    const auto reports = honest_reports(3, 0, 1.5, 1.0, 3.0);
    pipeline.aggregate(round, 0, reports);
    std::vector<double> mass = {0.0, 0.1, 0.1};  // too few peers to judge
    pipeline.observe_uploads(0, mass);
    pipeline.end_round(round);
  }
  EXPECT_EQ(pipeline.reputation().total_quarantined(), 0u);
}

TEST(ReportPipeline, PartialSharingClaimsAreNotAudited) {
  // A vehicle claiming a partial-sharing decision often honestly holds no
  // item of the claimed sensors; zero upload mass there is not evidence.
  PipelineOptions options;
  options.reputation.min_rounds = 1;
  ReportPipeline pipeline(1, 8, 10, options);
  for (std::size_t round = 0; round < 10; ++round) {
    auto reports = honest_reports(10, 0, 1.5, 1.0, 10.0);
    for (std::size_t v = 6; v < 10; ++v) reports[v].decision = 3;
    pipeline.aggregate(round, 0, reports);
    std::vector<double> mass(10, 0.02);
    for (std::size_t v = 6; v < 10; ++v) mass[v] = 0.0;
    pipeline.observe_uploads(0, mass);
    pipeline.end_round(round);
  }
  EXPECT_EQ(pipeline.reputation().total_quarantined(), 0u);
}

TEST(ReportPipeline, QuarantinedFreeRiderKeepsRefreshingItsPenalty) {
  // Uploads of quarantined vehicles are still observed (the plant accepts
  // and impounds them), so a free-rider that keeps uploading nothing never
  // rehabilitates, while an honest vehicle that resumes uploading does.
  PipelineOptions options;
  options.reputation.min_rounds = 4;
  options.reputation.rehab_rounds = 3;
  ReportPipeline pipeline(1, 8, 10, options);
  auto run_round = [&](std::size_t round, double rider_mass) {
    const auto reports = honest_reports(10, 0, 1.5, 1.0, 10.0);
    pipeline.aggregate(round, 0, reports);
    std::vector<double> mass(10, 0.02);
    mass[0] = rider_mass;
    pipeline.observe_uploads(0, mass);
    pipeline.end_round(round);
  };
  std::size_t round = 0;
  for (; round < 10; ++round) run_round(round, 0.0);
  ASSERT_TRUE(pipeline.reputation().quarantined(0, 0));
  // Still free-riding: 30 more rounds and it is still in.
  for (; round < 40; ++round) run_round(round, 0.0);
  EXPECT_TRUE(pipeline.reputation().quarantined(0, 0));
  // Reformed (or falsely flagged): positive mass lets the score decay out.
  for (; round < 80; ++round) run_round(round, 0.02);
  EXPECT_FALSE(pipeline.reputation().quarantined(0, 0));
}

TEST(ReportPipeline, AllReportsExcludedFallsBackToUniform) {
  PipelineOptions options;
  options.reputation.min_rounds = 1;
  options.reputation.quarantine_threshold = 0.5;
  options.reputation.rehab_threshold = 0.1;
  ReportPipeline pipeline(1, 4, 4, options);
  // Drive every vehicle into quarantine via the behavioural channel is
  // awkward; drive via telemetry instead: make them all lie about beta
  // relative to... themselves is impossible (they ARE the median). Use the
  // reputation tracker directly to force the state.
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t v = 0; v < 4; ++v) pipeline.reputation().observe(0, v, 6.0);
    pipeline.end_round(round);
  }
  ASSERT_EQ(pipeline.reputation().total_quarantined(), 4u);
  const auto obs =
      pipeline.aggregate(3, 0, honest_reports(4, 1, 1.0, 1.0, 4.0));
  EXPECT_EQ(obs.reports_used, 0u);
  for (const double v : obs.p) EXPECT_DOUBLE_EQ(v, 0.25);
}

// ------------------------------------------------------- density-weighted

TEST(DensityWeightedFields, DenseRegionsGetHigherFloors) {
  const std::vector<double> density = {60.0, 120.0, 30.0};
  const auto fields = density_weighted_fields(3, 8, density,
                                              /*base_floor=*/0.5,
                                              /*slope=*/0.4);
  const double f0 = fields.target(0, 0).lo;
  const double f1 = fields.target(1, 0).lo;
  const double f2 = fields.target(2, 0).lo;
  EXPECT_DOUBLE_EQ(f0, 0.5);  // at the median
  EXPECT_GT(f1, f0);
  EXPECT_LT(f2, f0);
  for (core::RegionId i = 0; i < 3; ++i) {
    EXPECT_GE(fields.target(i, 0).lo, 0.05);
    EXPECT_LE(fields.target(i, 0).lo, 0.95);
    EXPECT_DOUBLE_EQ(fields.target(i, 0).hi, 1.0);
  }
}

TEST(DensityWeightedFields, PoisonedMeanMovesFloorRobustMedianDoesNot) {
  // The attack surface in one picture: one region's density inflated x4.
  // A trusting mean shifts every floor; the median-anchored normalisation
  // keeps the clean regions' floors put.
  const std::vector<double> clean = {60.0, 60.0, 60.0};
  const std::vector<double> poisoned = {60.0, 240.0, 60.0};
  const auto fields_clean = density_weighted_fields(3, 8, clean, 0.5, 0.4);
  const auto fields_poisoned =
      density_weighted_fields(3, 8, poisoned, 0.5, 0.4);
  EXPECT_DOUBLE_EQ(fields_clean.target(0, 0).lo,
                   fields_poisoned.target(0, 0).lo);
  EXPECT_DOUBLE_EQ(fields_clean.target(2, 0).lo,
                   fields_poisoned.target(2, 0).lo);
  EXPECT_GT(fields_poisoned.target(1, 0).lo, fields_clean.target(1, 0).lo);
}

}  // namespace
}  // namespace avcp::byzantine
