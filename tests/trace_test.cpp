#include "trace/generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>

#include "common/contracts.h"
#include "roadnet/builders.h"
#include "trace/density.h"
#include "trace/trace_io.h"

namespace avcp::trace {
namespace {

using roadnet::RoadGraph;

TraceParams small_params() {
  TraceParams params;
  params.num_vehicles = 20;
  params.duration_s = 1800.0;
  params.mean_dwell_s = 60.0;
  params.seed = 5;
  return params;
}

TEST(TraceGenerator, FixesRespectTimeBounds) {
  const RoadGraph g = roadnet::make_grid(5, 5, 200.0);
  const TraceGenerator gen(g, small_params());
  const auto fixes = gen.generate_all();
  ASSERT_FALSE(fixes.empty());
  for (const GpsFix& fix : fixes) {
    EXPECT_GE(fix.time_s, 0.0);
    EXPECT_LT(fix.time_s, small_params().duration_s);
    EXPECT_LT(fix.vehicle, small_params().num_vehicles);
    EXPECT_LT(fix.segment, g.num_segments());
  }
}

TEST(TraceGenerator, PerVehicleFixesAreTimeOrderedOnFixGrid) {
  const RoadGraph g = roadnet::make_grid(4, 4, 300.0);
  const auto params = small_params();
  const TraceGenerator gen(g, params);
  const auto fixes = gen.generate_all();
  std::map<VehicleId, double> last_time;
  for (const GpsFix& fix : fixes) {
    const auto it = last_time.find(fix.vehicle);
    if (it != last_time.end()) {
      EXPECT_GE(fix.time_s, it->second);
      // Consecutive fixes are whole reporting intervals apart.
      const double gap = fix.time_s - it->second;
      const double intervals = gap / params.fix_interval_s;
      EXPECT_NEAR(intervals, std::round(intervals), 1e-6);
      EXPECT_GE(gap, params.fix_interval_s - 1e-9);
    }
    last_time[fix.vehicle] = fix.time_s;
  }
}

TEST(TraceGenerator, PositionsLieOnReportedSegment) {
  const RoadGraph g = roadnet::make_grid(4, 4, 300.0);
  const TraceGenerator gen(g, small_params());
  const auto fixes = gen.generate_all();
  for (const GpsFix& fix : fixes) {
    const auto& seg = g.segment(fix.segment);
    const PointM a = g.intersection(seg.from);
    const PointM b = g.intersection(seg.to);
    // Distance from the segment's line, via the triangle inequality:
    // |a-p| + |p-b| should equal |a-b| for a point on the segment.
    const double detour =
        distance_m(a, fix.pos) + distance_m(fix.pos, b) - distance_m(a, b);
    EXPECT_NEAR(detour, 0.0, 1e-6);
  }
}

TEST(TraceGenerator, SpeedsWithinConfiguredFactorRange) {
  const RoadGraph g = roadnet::make_grid(4, 4, 300.0);
  const auto params = small_params();
  const TraceGenerator gen(g, params);
  for (const GpsFix& fix : gen.generate_all()) {
    const auto& seg = g.segment(fix.segment);
    EXPECT_GE(fix.speed_mps, seg.speed_mps * params.speed_factor_lo - 1e-9);
    EXPECT_LE(fix.speed_mps, seg.speed_mps * params.speed_factor_hi + 1e-9);
  }
}

TEST(TraceGenerator, DeterministicForSeed) {
  const RoadGraph g = roadnet::make_grid(4, 4, 300.0);
  const TraceGenerator gen(g, small_params());
  const auto a = gen.generate_all();
  const auto b = gen.generate_all();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vehicle, b[i].vehicle);
    EXPECT_EQ(a[i].time_s, b[i].time_s);
    EXPECT_EQ(a[i].segment, b[i].segment);
  }
}

TEST(TraceGenerator, AttractionFavoursArterials) {
  roadnet::CityParams city;
  city.rows = 6;
  city.cols = 6;
  city.arterial_period = 3;
  city.seed = 4;
  const RoadGraph g = roadnet::build_city(city);
  TraceParams params = small_params();
  params.num_vehicles = 60;
  params.duration_s = 3600.0;
  const TraceGenerator gen(g, params);

  // Count fixes per road class.
  double arterial_fixes = 0.0;
  double arterial_count = 0.0;
  double local_fixes = 0.0;
  double local_count = 0.0;
  std::vector<double> per_segment(g.num_segments(), 0.0);
  for (const GpsFix& fix : gen.generate_all()) per_segment[fix.segment] += 1.0;
  for (roadnet::SegmentId s = 0; s < g.num_segments(); ++s) {
    if (g.segment(s).cls == roadnet::RoadClass::kArterial) {
      arterial_fixes += per_segment[s];
      arterial_count += 1.0;
    } else if (g.segment(s).cls == roadnet::RoadClass::kLocal) {
      local_fixes += per_segment[s];
      local_count += 1.0;
    }
  }
  ASSERT_GT(arterial_count, 0.0);
  ASSERT_GT(local_count, 0.0);
  // Arterials should see clearly more traffic per segment on average.
  EXPECT_GT(arterial_fixes / arterial_count, local_fixes / local_count);
}

TEST(TrafficDensity, CountsDistinctPresencesPerWindow) {
  TrafficDensityAccumulator td(3, 100.0, 300.0);
  // Vehicle 1 reports twice in window 0 on segment 0: counted once.
  td.add(GpsFix{1, 10.0, {}, 0.0, 0});
  td.add(GpsFix{1, 20.0, {}, 0.0, 0});
  // Vehicle 1 moves to segment 1 within window 0: new presence.
  td.add(GpsFix{1, 30.0, {}, 0.0, 1});
  // Vehicle 2 in window 0 segment 0.
  td.add(GpsFix{2, 50.0, {}, 0.0, 0});
  // Vehicle 1 in window 1 segment 0: new window, counted again.
  td.add(GpsFix{1, 150.0, {}, 0.0, 0});

  EXPECT_EQ(td.count(0, 0), 2u);
  EXPECT_EQ(td.count(0, 1), 1u);
  EXPECT_EQ(td.count(1, 0), 1u);
  EXPECT_EQ(td.count(2, 0), 0u);
}

TEST(TrafficDensity, DensityDividesByWindow) {
  TrafficDensityAccumulator td(1, 600.0, 600.0);
  td.add(GpsFix{1, 0.0, {}, 0.0, 0});
  td.add(GpsFix{2, 1.0, {}, 0.0, 0});
  td.add(GpsFix{3, 2.0, {}, 0.0, 0});
  EXPECT_DOUBLE_EQ(td.density(0, 0), 3.0 / 600.0);
}

TEST(TrafficDensity, AverageDensityOverWindows) {
  TrafficDensityAccumulator td(2, 100.0, 200.0);
  td.add(GpsFix{1, 10.0, {}, 0.0, 0});
  td.add(GpsFix{2, 110.0, {}, 0.0, 0});
  td.add(GpsFix{3, 120.0, {}, 0.0, 0});
  const auto avg = td.average_density();
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_DOUBLE_EQ(avg[0], 3.0 / 200.0);
  EXPECT_DOUBLE_EQ(avg[1], 0.0);
}

TEST(TrafficDensity, IgnoresFixesBeyondDuration) {
  TrafficDensityAccumulator td(1, 100.0, 100.0);
  td.add(GpsFix{1, 250.0, {}, 0.0, 0});
  EXPECT_EQ(td.count(0, 0), 0u);
}

TEST(TrafficDensity, RejectsInvalidSegment) {
  TrafficDensityAccumulator td(2, 100.0, 100.0);
  EXPECT_THROW(td.add(GpsFix{1, 0.0, {}, 0.0, 5}), ContractViolation);
}

TEST(TrafficDensity, TotalCountsSumWindows) {
  TrafficDensityAccumulator td(1, 100.0, 300.0);
  td.add(GpsFix{1, 50.0, {}, 0.0, 0});
  td.add(GpsFix{1, 150.0, {}, 0.0, 0});
  td.add(GpsFix{1, 250.0, {}, 0.0, 0});
  EXPECT_EQ(td.total_counts()[0], 3u);
}

TEST(TraceIo, RoundTripsThroughCsv) {
  const RoadGraph g = roadnet::make_grid(3, 3, 200.0);
  TraceParams params = small_params();
  params.num_vehicles = 5;
  params.duration_s = 600.0;
  const TraceGenerator gen(g, params);
  const auto fixes = gen.generate_all();
  ASSERT_FALSE(fixes.empty());

  std::ostringstream out;
  write_trace_csv(out, fixes);
  std::istringstream in(out.str());
  const auto loaded = read_trace_csv(in);

  ASSERT_EQ(loaded.size(), fixes.size());
  for (std::size_t i = 0; i < fixes.size(); ++i) {
    EXPECT_EQ(loaded[i].vehicle, fixes[i].vehicle);
    EXPECT_NEAR(loaded[i].time_s, fixes[i].time_s, 1e-4);
    EXPECT_NEAR(loaded[i].pos.x, fixes[i].pos.x, 1e-4);
    EXPECT_NEAR(loaded[i].pos.y, fixes[i].pos.y, 1e-4);
    EXPECT_EQ(loaded[i].segment, fixes[i].segment);
  }
}

TEST(TraceIo, MalformedRowsRejected) {
  // Wrong column count.
  {
    std::istringstream in("vehicle,time_s,x_m,y_m,speed_mps,segment\n1,2,3\n");
    EXPECT_THROW(read_trace_csv(in), ContractViolation);
  }
  // Non-numeric field.
  {
    std::istringstream in(
        "vehicle,time_s,x_m,y_m,speed_mps,segment\n1,abc,0,0,0,0\n");
    EXPECT_THROW(read_trace_csv(in), ContractViolation);
  }
}

TEST(TraceIo, EmptyTraceHasHeaderOnly) {
  std::ostringstream out;
  write_trace_csv(out, {});
  std::istringstream in(out.str());
  EXPECT_TRUE(read_trace_csv(in).empty());
}

}  // namespace
}  // namespace avcp::trace
