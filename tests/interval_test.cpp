#include "common/interval.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/contracts.h"
#include "common/rng.h"

namespace avcp {
namespace {

TEST(Interval, DefaultIsEmpty) {
  EXPECT_TRUE(Interval{}.empty());
  EXPECT_EQ(Interval{}.width(), 0.0);
}

TEST(Interval, PointContainsItself) {
  const auto p = Interval::point(0.5);
  EXPECT_FALSE(p.empty());
  EXPECT_TRUE(p.contains(0.5));
  EXPECT_FALSE(p.contains(0.5001));
  EXPECT_EQ(p.width(), 0.0);
}

TEST(Interval, ContainsEndpoints) {
  const Interval iv{0.2, 0.8};
  EXPECT_TRUE(iv.contains(0.2));
  EXPECT_TRUE(iv.contains(0.8));
  EXPECT_FALSE(iv.contains(0.19));
  EXPECT_FALSE(iv.contains(0.81));
}

TEST(Interval, NearestClampsToEndpoints) {
  const Interval iv{0.2, 0.8};
  EXPECT_EQ(iv.nearest(0.0), 0.2);
  EXPECT_EQ(iv.nearest(1.0), 0.8);
  EXPECT_EQ(iv.nearest(0.5), 0.5);
}

TEST(Interval, IntersectOverlap) {
  const auto iv = Interval::intersect({0.0, 0.5}, {0.3, 1.0});
  EXPECT_EQ(iv.lo, 0.3);
  EXPECT_EQ(iv.hi, 0.5);
}

TEST(Interval, IntersectDisjointIsEmpty) {
  EXPECT_TRUE(Interval::intersect({0.0, 0.2}, {0.3, 1.0}).empty());
}

TEST(Interval, TouchesAtSinglePoint) {
  EXPECT_TRUE(Interval::touches({0.0, 0.5}, {0.5, 1.0}));
  EXPECT_FALSE(Interval::touches({0.0, 0.4}, {0.5, 1.0}));
  EXPECT_FALSE(Interval::touches(Interval::empty_interval(), {0.0, 1.0}));
}

TEST(IntervalSet, EmptyByDefault) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(0.5));
  EXPECT_FALSE(set.nearest(0.5).has_value());
}

TEST(IntervalSet, AddMergesTouching) {
  IntervalSet set;
  set.add({0.0, 0.3});
  set.add({0.3, 0.6});
  EXPECT_EQ(set.parts().size(), 1u);
  EXPECT_EQ(set.parts()[0], (Interval{0.0, 0.6}));
}

TEST(IntervalSet, AddKeepsDisjointSorted) {
  IntervalSet set;
  set.add({0.7, 0.9});
  set.add({0.0, 0.2});
  set.add({0.4, 0.5});
  ASSERT_EQ(set.parts().size(), 3u);
  EXPECT_EQ(set.parts()[0].lo, 0.0);
  EXPECT_EQ(set.parts()[1].lo, 0.4);
  EXPECT_EQ(set.parts()[2].lo, 0.7);
}

TEST(IntervalSet, AddBridgingIntervalMergesAll) {
  IntervalSet set;
  set.add({0.0, 0.2});
  set.add({0.5, 0.7});
  set.add({0.1, 0.6});  // spans the gap
  ASSERT_EQ(set.parts().size(), 1u);
  EXPECT_EQ(set.parts()[0], (Interval{0.0, 0.7}));
}

TEST(IntervalSet, AddIgnoresEmpty) {
  IntervalSet set;
  set.add(Interval::empty_interval());
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, UniteAndIntersect) {
  IntervalSet a;
  a.add({0.0, 0.4});
  a.add({0.6, 1.0});
  IntervalSet b;
  b.add({0.3, 0.7});

  const auto u = IntervalSet::unite(a, b);
  ASSERT_EQ(u.parts().size(), 1u);
  EXPECT_EQ(u.parts()[0], (Interval{0.0, 1.0}));

  const auto i = IntervalSet::intersect(a, b);
  ASSERT_EQ(i.parts().size(), 2u);
  EXPECT_EQ(i.parts()[0], (Interval{0.3, 0.4}));
  EXPECT_EQ(i.parts()[1], (Interval{0.6, 0.7}));
}

TEST(IntervalSet, IntersectWithEmptyIsEmpty) {
  IntervalSet a(Interval{0.0, 1.0});
  const IntervalSet empty;
  EXPECT_TRUE(IntervalSet::intersect(a, empty).empty());
  EXPECT_TRUE(IntervalSet::intersect(empty, a).empty());
}

TEST(IntervalSet, ContainsWithTolerance) {
  IntervalSet set(Interval{0.2, 0.4});
  EXPECT_FALSE(set.contains(0.41));
  EXPECT_TRUE(set.contains(0.41, 0.02));
}

TEST(IntervalSet, NearestPicksClosestPart) {
  IntervalSet set;
  set.add({0.0, 0.1});
  set.add({0.8, 1.0});
  EXPECT_EQ(set.nearest(0.2).value(), 0.1);
  EXPECT_EQ(set.nearest(0.7).value(), 0.8);
  EXPECT_EQ(set.nearest(0.9).value(), 0.9);
}

TEST(IntervalSet, MinMaxMeasure) {
  IntervalSet set;
  set.add({0.1, 0.3});
  set.add({0.6, 0.7});
  EXPECT_EQ(set.min(), 0.1);
  EXPECT_EQ(set.max(), 0.7);
  EXPECT_NEAR(set.measure(), 0.3, 1e-12);
}

TEST(IntervalSet, MinOnEmptyThrows) {
  const IntervalSet set;
  EXPECT_THROW(set.min(), ContractViolation);
  EXPECT_THROW(set.max(), ContractViolation);
}

TEST(SolveAffine, PositiveSlope) {
  // 2x - 1 >= 0  =>  x >= 0.5
  const auto iv = solve_affine_ge(2.0, -1.0, {0.0, 1.0});
  EXPECT_NEAR(iv.lo, 0.5, 1e-12);
  EXPECT_NEAR(iv.hi, 1.0, 1e-12);
}

TEST(SolveAffine, NegativeSlope) {
  // -x + 0.25 >= 0  =>  x <= 0.25
  const auto iv = solve_affine_ge(-1.0, 0.25, {0.0, 1.0});
  EXPECT_NEAR(iv.lo, 0.0, 1e-12);
  EXPECT_NEAR(iv.hi, 0.25, 1e-12);
}

TEST(SolveAffine, ZeroSlopeFeasible) {
  EXPECT_EQ(solve_affine_ge(0.0, 1.0, {0.0, 1.0}), (Interval{0.0, 1.0}));
}

TEST(SolveAffine, ZeroSlopeInfeasible) {
  EXPECT_TRUE(solve_affine_ge(0.0, -1.0, {0.0, 1.0}).empty());
}

TEST(SolveAffine, LeIsComplementaryToGe) {
  const auto ge = solve_affine_ge(3.0, -1.5, {0.0, 1.0});
  const auto le = solve_affine_le(3.0, -1.5, {0.0, 1.0});
  EXPECT_NEAR(ge.lo, le.hi, 1e-12);  // both include the root
}

TEST(SolveAffine, EmptyDomainStaysEmpty) {
  EXPECT_TRUE(solve_affine_ge(1.0, 0.0, Interval::empty_interval()).empty());
}

// Property sweep: solutions of a*x+b >= 0 agree with direct evaluation on a
// dense sample of the domain, over a grid of slopes and intercepts.
class SolveAffineSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SolveAffineSweep, MatchesDirectEvaluation) {
  const auto [a, b] = GetParam();
  const Interval domain{0.0, 1.0};
  const Interval ge = solve_affine_ge(a, b, domain);
  const Interval le = solve_affine_le(a, b, domain);
  for (int i = 0; i <= 100; ++i) {
    const double x = i / 100.0;
    const double v = a * x + b;
    constexpr double kBoundary = 1e-9;
    if (std::abs(v) > kBoundary) {
      EXPECT_EQ(ge.contains(x), v > 0.0) << "a=" << a << " b=" << b
                                         << " x=" << x;
      EXPECT_EQ(le.contains(x), v < 0.0) << "a=" << a << " b=" << b
                                         << " x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridOfCoefficients, SolveAffineSweep,
    ::testing::Combine(::testing::Values(-2.0, -0.5, 0.0, 0.5, 2.0),
                       ::testing::Values(-1.0, -0.3, 0.0, 0.3, 1.0)));

// Property sweep: IntervalSet union/intersection agree with pointwise
// membership on randomly generated interval sets.
class IntervalSetAlgebraSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IntervalSetAlgebraSweep, PointwiseSemantics) {
  Rng rng(GetParam());
  IntervalSet a;
  IntervalSet b;
  for (int i = 0; i < 4; ++i) {
    const double lo_a = rng.uniform();
    const double lo_b = rng.uniform();
    a.add({lo_a, lo_a + rng.uniform() * 0.3});
    b.add({lo_b, lo_b + rng.uniform() * 0.3});
  }
  const auto u = IntervalSet::unite(a, b);
  const auto n = IntervalSet::intersect(a, b);
  for (int i = 0; i <= 200; ++i) {
    const double x = i / 200.0 * 1.3;
    EXPECT_EQ(u.contains(x), a.contains(x) || b.contains(x)) << "x=" << x;
    EXPECT_EQ(n.contains(x), a.contains(x) && b.contains(x)) << "x=" << x;
  }
  // Invariant: parts are sorted and disjoint.
  for (std::size_t i = 1; i < u.parts().size(); ++i) {
    EXPECT_GT(u.parts()[i].lo, u.parts()[i - 1].hi);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSets, IntervalSetAlgebraSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace avcp
