#include "roadnet/builders.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/contracts.h"

namespace avcp::roadnet {
namespace {

CityParams small_city(std::uint64_t seed = 42) {
  CityParams params;
  params.rows = 8;
  params.cols = 10;
  params.seed = seed;
  params.arterial_period = 4;
  params.collector_period = 2;
  return params;
}

TEST(CityBuilder, ProducesConnectedNetwork) {
  const RoadGraph g = build_city(small_city());
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.num_intersections(), 80u);
  EXPECT_GT(g.num_segments(), 80u);  // more edges than a spanning tree
}

TEST(CityBuilder, DeterministicForSameSeed) {
  const RoadGraph a = build_city(small_city(7));
  const RoadGraph b = build_city(small_city(7));
  ASSERT_EQ(a.num_segments(), b.num_segments());
  for (SegmentId s = 0; s < a.num_segments(); ++s) {
    EXPECT_EQ(a.segment(s).from, b.segment(s).from);
    EXPECT_EQ(a.segment(s).to, b.segment(s).to);
    EXPECT_EQ(a.segment(s).cls, b.segment(s).cls);
  }
}

TEST(CityBuilder, DifferentSeedsDiffer) {
  const RoadGraph a = build_city(small_city(1));
  const RoadGraph b = build_city(small_city(2));
  bool differs = a.num_segments() != b.num_segments();
  if (!differs) {
    for (SegmentId s = 0; s < a.num_segments(); ++s) {
      if (a.intersection(a.segment(s).from).x !=
          b.intersection(b.segment(s).from).x) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(CityBuilder, ContainsAllThreeRoadClasses) {
  const RoadGraph g = build_city(small_city());
  std::array<std::size_t, 3> counts{};
  for (SegmentId s = 0; s < g.num_segments(); ++s) {
    ++counts[static_cast<std::size_t>(g.segment(s).cls)];
  }
  EXPECT_GT(counts[0], 0u) << "no arterials";
  EXPECT_GT(counts[1], 0u) << "no collectors";
  EXPECT_GT(counts[2], 0u) << "no locals";
  // Locals dominate a street grid.
  EXPECT_GT(counts[2], counts[0]);
}

TEST(CityBuilder, PruningRemovesOnlyLocals) {
  CityParams with = small_city();
  with.local_prune_frac = 0.5;
  with.jitter_frac = 0.0;
  CityParams without = small_city();
  without.local_prune_frac = 0.0;
  without.jitter_frac = 0.0;
  const RoadGraph pruned = build_city(with);
  const RoadGraph full = build_city(without);
  EXPECT_LT(pruned.num_segments(), full.num_segments());

  std::array<std::size_t, 3> pruned_counts{};
  std::array<std::size_t, 3> full_counts{};
  for (SegmentId s = 0; s < pruned.num_segments(); ++s) {
    ++pruned_counts[static_cast<std::size_t>(pruned.segment(s).cls)];
  }
  for (SegmentId s = 0; s < full.num_segments(); ++s) {
    ++full_counts[static_cast<std::size_t>(full.segment(s).cls)];
  }
  EXPECT_EQ(pruned_counts[0], full_counts[0]);  // arterials intact
  EXPECT_EQ(pruned_counts[1], full_counts[1]);  // collectors intact
  EXPECT_LT(pruned_counts[2], full_counts[2]);  // locals pruned
}

TEST(CityBuilder, HeavyPruningStaysConnected) {
  CityParams params = small_city(11);
  params.local_prune_frac = 0.9;
  const RoadGraph g = build_city(params);
  EXPECT_TRUE(g.is_connected());
}

TEST(CityBuilder, ArterialSpeedsExceedLocalSpeeds) {
  const RoadGraph g = build_city(small_city());
  for (SegmentId s = 0; s < g.num_segments(); ++s) {
    const RoadSegment& seg = g.segment(s);
    if (seg.cls == RoadClass::kArterial) {
      EXPECT_GT(seg.speed_mps, default_speed_mps(RoadClass::kLocal));
    }
  }
}

TEST(CityBuilder, JitterPerturbsPositionsWithinBounds) {
  CityParams params = small_city();
  params.jitter_frac = 0.2;
  const RoadGraph g = build_city(params);
  // All intersections stay within jitter of the nominal grid.
  const double max_offset = params.jitter_frac * params.spacing_m;
  for (NodeId v = 0; v < g.num_intersections(); ++v) {
    const PointM p = g.intersection(v);
    const double nominal_x =
        std::round(p.x / params.spacing_m) * params.spacing_m;
    const double nominal_y =
        std::round(p.y / params.spacing_m) * params.spacing_m;
    EXPECT_LE(std::abs(p.x - nominal_x), max_offset + 1e-9);
    EXPECT_LE(std::abs(p.y - nominal_y), max_offset + 1e-9);
  }
}

TEST(CityBuilder, RejectsDegenerateParams) {
  CityParams params = small_city();
  params.rows = 1;
  EXPECT_THROW(build_city(params), ContractViolation);
  params = small_city();
  params.local_prune_frac = 1.0;
  EXPECT_THROW(build_city(params), ContractViolation);
}

}  // namespace
}  // namespace avcp::roadnet
