#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

namespace avcp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(10);
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    ++counts[static_cast<std::size_t>(v - 2)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);  // roughly uniform (expected 1000 each)
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(14);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(16);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.exponential(3.0), 0.0);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(18);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(19);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), ContractViolation);
}

TEST(Rng, WeightedIndexRejectsNegative) {
  Rng rng(20);
  const std::vector<double> weights = {1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(weights), ContractViolation);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(22);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (child1() != child2()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(Rng, BinomialDegenerateCasesConsumeNoDraws) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(a.binomial(0, 0.5), 0u);
  EXPECT_EQ(a.binomial(100, 0.0), 0u);
  EXPECT_EQ(a.binomial(100, -1.0), 0u);
  EXPECT_EQ(a.binomial(100, 1.0), 100u);
  EXPECT_EQ(a.binomial(100, 2.0), 100u);
  // None of the above touched the engine: streams still aligned.
  EXPECT_EQ(a(), b());
}

TEST(Rng, BinomialStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LE(rng.binomial(37, 0.3), 37u);
  }
}

TEST(Rng, BinomialMatchesMeanAndVarianceSmallNp) {
  // n * p = 4 < 10: exercises the CDF-inversion branch.
  Rng rng(13);
  constexpr std::uint64_t n = 20;
  constexpr double p = 0.2;
  constexpr int kDraws = 40000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double k = static_cast<double>(rng.binomial(n, p));
    sum += k;
    sq += k * k;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, n * p, 0.05);            // true mean 4
  EXPECT_NEAR(var, n * p * (1.0 - p), 0.15); // true variance 3.2
}

TEST(Rng, BinomialMatchesMeanAndVarianceLargeNp) {
  // n * p = 300 >= 10: exercises the BTRS rejection branch.
  Rng rng(17);
  constexpr std::uint64_t n = 1000;
  constexpr double p = 0.3;
  constexpr int kDraws = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double k = static_cast<double>(rng.binomial(n, p));
    sum += k;
    sq += k * k;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, n * p, 0.5);                    // true mean 300
  EXPECT_NEAR(var / (n * p * (1.0 - p)), 1.0, 0.05); // true variance 210
}

TEST(Rng, BinomialSymmetryBranchIsUnbiased) {
  // p > 1/2 reduces through n - binomial(n, 1 - p).
  Rng rng(19);
  constexpr std::uint64_t n = 50;
  constexpr double p = 0.8;
  double sum = 0.0;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.binomial(n, p));
  }
  EXPECT_NEAR(sum / kDraws, n * p, 0.1);  // true mean 40
}

TEST(Rng, Splitmix64KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

}  // namespace
}  // namespace avcp
