#include "roadnet/road_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/contracts.h"
#include "roadnet/builders.h"

namespace avcp::roadnet {
namespace {

TEST(RoadGraph, AddAndQuery) {
  RoadGraph g;
  const NodeId a = g.add_intersection(PointM{0.0, 0.0});
  const NodeId b = g.add_intersection(PointM{100.0, 0.0});
  const SegmentId s = g.add_segment(a, b, RoadClass::kArterial);
  g.finalize();

  EXPECT_EQ(g.num_intersections(), 2u);
  EXPECT_EQ(g.num_segments(), 1u);
  EXPECT_DOUBLE_EQ(g.segment(s).length_m, 100.0);
  EXPECT_EQ(g.segment(s).cls, RoadClass::kArterial);
  EXPECT_DOUBLE_EQ(g.segment(s).speed_mps, default_speed_mps(RoadClass::kArterial));
}

TEST(RoadGraph, CustomSpeedOverridesDefault) {
  RoadGraph g;
  const NodeId a = g.add_intersection(PointM{0.0, 0.0});
  const NodeId b = g.add_intersection(PointM{50.0, 0.0});
  const SegmentId s = g.add_segment(a, b, RoadClass::kLocal, 20.0);
  g.finalize();
  EXPECT_DOUBLE_EQ(g.segment(s).speed_mps, 20.0);
  EXPECT_DOUBLE_EQ(g.segment(s).travel_time_s(), 2.5);
}

TEST(RoadGraph, SelfLoopRejected) {
  RoadGraph g;
  const NodeId a = g.add_intersection(PointM{0.0, 0.0});
  EXPECT_THROW(g.add_segment(a, a, RoadClass::kLocal), ContractViolation);
}

TEST(RoadGraph, MutationAfterFinalizeRejected) {
  RoadGraph g;
  g.add_intersection(PointM{0.0, 0.0});
  g.finalize();
  EXPECT_THROW(g.add_intersection(PointM{1.0, 1.0}), ContractViolation);
}

TEST(RoadGraph, NeighborsBeforeFinalizeRejected) {
  RoadGraph g;
  const NodeId a = g.add_intersection(PointM{0.0, 0.0});
  const NodeId b = g.add_intersection(PointM{1.0, 0.0});
  g.add_segment(a, b, RoadClass::kLocal);
  EXPECT_THROW(g.neighbors(a), ContractViolation);
}

TEST(RoadGraph, NodeAdjacency) {
  // Star: center 0 connected to 1, 2, 3.
  RoadGraph g;
  const NodeId center = g.add_intersection(PointM{0.0, 0.0});
  for (int i = 0; i < 3; ++i) {
    const NodeId leaf = g.add_intersection(PointM{10.0 * (i + 1), 0.0});
    g.add_segment(center, leaf, RoadClass::kLocal);
  }
  g.finalize();
  EXPECT_EQ(g.neighbors(center).size(), 3u);
  EXPECT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(1)[0].node, center);
}

TEST(RoadGraph, SegmentNeighborsShareEndpoint) {
  const RoadGraph g = make_line(4);  // segments 0-1-2 in a path
  auto n0 = g.segment_neighbors(0);
  ASSERT_EQ(n0.size(), 1u);
  EXPECT_EQ(n0[0], 1u);
  auto n1 = g.segment_neighbors(1);
  ASSERT_EQ(n1.size(), 2u);
  EXPECT_EQ(n1[0], 0u);
  EXPECT_EQ(n1[1], 2u);
}

TEST(RoadGraph, SegmentNeighborsInStarAreComplete) {
  RoadGraph g;
  const NodeId center = g.add_intersection(PointM{0.0, 0.0});
  for (int i = 0; i < 4; ++i) {
    const NodeId leaf = g.add_intersection(PointM{10.0 * (i + 1), 5.0});
    g.add_segment(center, leaf, RoadClass::kLocal);
  }
  g.finalize();
  // Every pair of the 4 spokes shares the hub.
  for (SegmentId s = 0; s < 4; ++s) {
    EXPECT_EQ(g.segment_neighbors(s).size(), 3u);
  }
}

TEST(RoadGraph, OtherEnd) {
  const RoadGraph g = make_line(3);
  const RoadSegment& s = g.segment(0);
  EXPECT_EQ(g.other_end(0, s.from), s.to);
  EXPECT_EQ(g.other_end(0, s.to), s.from);
  EXPECT_THROW(g.other_end(0, 2), ContractViolation);
}

TEST(RoadGraph, SegmentMidpoint) {
  RoadGraph g;
  const NodeId a = g.add_intersection(PointM{0.0, 0.0});
  const NodeId b = g.add_intersection(PointM{10.0, 20.0});
  g.add_segment(a, b, RoadClass::kLocal);
  g.finalize();
  const PointM mid = g.segment_midpoint(0);
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 10.0);
}

TEST(RoadGraph, ConnectivityDetection) {
  RoadGraph g;
  const NodeId a = g.add_intersection(PointM{0.0, 0.0});
  const NodeId b = g.add_intersection(PointM{1.0, 0.0});
  g.add_intersection(PointM{2.0, 0.0});  // isolated
  g.add_segment(a, b, RoadClass::kLocal);
  g.finalize();
  EXPECT_FALSE(g.is_connected());
}

TEST(Builders, GridCounts) {
  const RoadGraph g = make_grid(3, 4);
  EXPECT_EQ(g.num_intersections(), 12u);
  // Horizontal: 3 rows * 3 = 9; vertical: 2 * 4 = 8.
  EXPECT_EQ(g.num_segments(), 17u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Builders, LineCounts) {
  const RoadGraph g = make_line(5);
  EXPECT_EQ(g.num_intersections(), 5u);
  EXPECT_EQ(g.num_segments(), 4u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Builders, RingCounts) {
  const RoadGraph g = make_ring(6);
  EXPECT_EQ(g.num_intersections(), 6u);
  EXPECT_EQ(g.num_segments(), 6u);
  EXPECT_TRUE(g.is_connected());
  // Every node has degree 2; every segment has exactly 2 neighbours.
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(g.neighbors(v).size(), 2u);
  }
  for (SegmentId s = 0; s < 6; ++s) {
    EXPECT_EQ(g.segment_neighbors(s).size(), 2u);
  }
}

TEST(Builders, RingRequiresThreeNodes) {
  EXPECT_THROW(make_ring(2), ContractViolation);
}

}  // namespace
}  // namespace avcp::roadnet
