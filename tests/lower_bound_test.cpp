#include "core/lower_bound.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/runner.h"
#include "test_support.h"

namespace avcp::core {
namespace {

using testing::make_chain_game;
using testing::make_single_region_game;

TEST(LowerBound, ZeroWhenAlreadyInsideTargets) {
  const auto game = make_single_region_game();
  const DesiredFields fields(1, 8);  // unconstrained
  const auto result = convergence_lower_bound(game, game.uniform_state(),
                                              fields, std::vector<double>{0.5});
  EXPECT_TRUE(result.reachable);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(LowerBound, PositiveForUnmetTarget) {
  const auto game = make_single_region_game(/*beta=*/4.0);
  DesiredFields fields(1, 8);
  fields.set_target(0, 0, Interval{0.9, 1.0});
  const auto result = convergence_lower_bound(game, game.uniform_state(),
                                              fields, std::vector<double>{0.1});
  EXPECT_TRUE(result.reachable);
  EXPECT_GT(result.rounds, 0u);
  EXPECT_EQ(result.binding_region, 0u);
  EXPECT_EQ(result.binding_decision, 0u);
}

TEST(LowerBound, UnreachableForExtinctDecisionWithPositiveTarget) {
  const auto game = make_single_region_game();
  std::vector<double> p(8, 0.0);
  p[7] = 1.0;  // decision 0 extinct
  const GameState state = game.broadcast_state(p);
  DesiredFields fields(1, 8);
  fields.set_target(0, 0, Interval{0.5, 1.0});
  const auto result =
      convergence_lower_bound(game, state, fields, std::vector<double>{0.5});
  EXPECT_FALSE(result.reachable);
}

TEST(LowerBound, WiderTargetNeverIncreasesBound) {
  const auto game = make_single_region_game(/*beta=*/3.0);
  const std::vector<double> x0 = {0.2};
  std::size_t previous = ~std::size_t{0};
  for (const double eps : {0.01, 0.02, 0.05, 0.1}) {
    DesiredFields fields(1, 8);
    fields.set_target(0, 0, Interval{0.9 - eps, 1.0});
    const auto result =
        convergence_lower_bound(game, game.uniform_state(), fields, x0);
    EXPECT_TRUE(result.reachable);
    EXPECT_LE(result.rounds, previous) << "eps=" << eps;
    previous = result.rounds;
  }
}

TEST(LowerBound, LargerStepBoundNeverIncreasesBound) {
  const auto game = make_single_region_game(/*beta=*/3.0);
  DesiredFields fields(1, 8);
  fields.set_target(0, 0, Interval{0.9, 1.0});
  std::size_t previous = ~std::size_t{0};
  for (const double lambda : {0.01, 0.05, 0.2, 1.0}) {
    LowerBoundOptions opts;
    opts.max_step = lambda;
    const auto result = convergence_lower_bound(
        game, game.uniform_state(), fields, std::vector<double>{0.1}, opts);
    EXPECT_TRUE(result.reachable);
    EXPECT_LE(result.rounds, previous) << "lambda=" << lambda;
    previous = result.rounds;
  }
}

// Soundness sweep: the relaxed bound must never exceed the rounds FDS
// actually needs, across random targets and parameters.
class LowerBoundSoundnessSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LowerBoundSoundnessSweep, BoundNeverExceedsFdsRounds) {
  Rng rng(GetParam());
  const double beta = rng.uniform(2.5, 4.5);
  const auto game = make_single_region_game(beta);

  DesiredFields fields(1, 8);
  const bool want_sharing = rng.bernoulli(0.5);
  const double threshold = rng.uniform(0.8, 0.95);
  if (want_sharing) {
    fields.set_target(0, 0, Interval{threshold, 1.0});
  } else {
    fields.set_target(0, 7, Interval{threshold, 1.0});
  }
  const std::vector<double> x0 = {rng.uniform(0.1, 0.9)};

  FdsController controller(game, fields);
  sim::RunOptions options;
  options.max_rounds = 1500;
  options.record_trajectory = false;
  const auto run = sim::run_mean_field(game, controller, game.uniform_state(),
                                       x0, &fields, options);
  if (!run.converged) {
    GTEST_SKIP() << "FDS did not converge for this instance";
  }

  const auto bound =
      convergence_lower_bound(game, game.uniform_state(), fields, x0);
  EXPECT_TRUE(bound.reachable);
  EXPECT_LE(bound.rounds, run.rounds)
      << "beta=" << beta << " sharing=" << want_sharing
      << " threshold=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LowerBoundSoundnessSweep,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(LowerBound, MultiRegionTakesWorstComponent) {
  const auto game = make_chain_game(3, /*beta_lo=*/2.0, /*beta_hi=*/4.0);
  DesiredFields fields(3, 8);
  for (RegionId i = 0; i < 3; ++i) {
    fields.set_target(i, 0, Interval{0.9, 1.0});
  }
  const auto all = convergence_lower_bound(game, game.uniform_state(), fields,
                                           std::vector<double>{0.1, 0.1, 0.1});

  // Constraining only the easiest region cannot give a larger bound.
  DesiredFields single(3, 8);
  single.set_target(all.binding_region, 0, Interval{0.9, 1.0});
  const auto one = convergence_lower_bound(game, game.uniform_state(), single,
                                           std::vector<double>{0.1, 0.1, 0.1});
  EXPECT_EQ(one.rounds, all.rounds);
}

}  // namespace
}  // namespace avcp::core
