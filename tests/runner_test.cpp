#include "sim/runner.h"

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "common/interval.h"
#include "test_support.h"

namespace avcp::sim {
namespace {

using core::testing::make_single_region_game;

TEST(Runner, RecordsTrajectoryIncludingInitialState) {
  const auto game = make_single_region_game();
  core::FixedRatioController controller(0.5);
  RunOptions options;
  options.max_rounds = 10;
  const auto result = run_mean_field(game, controller, game.uniform_state(),
                                     {0.5}, nullptr, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.rounds, 10u);
  EXPECT_EQ(result.trajectory.size(), 11u);  // initial + 10 rounds
  EXPECT_EQ(result.x_history.size(), 10u);
}

TEST(Runner, NoTrajectoryWhenDisabled) {
  const auto game = make_single_region_game();
  core::FixedRatioController controller(0.5);
  RunOptions options;
  options.max_rounds = 5;
  options.record_trajectory = false;
  const auto result = run_mean_field(game, controller, game.uniform_state(),
                                     {0.5}, nullptr, options);
  EXPECT_TRUE(result.trajectory.empty());
  EXPECT_TRUE(result.x_history.empty());
  EXPECT_EQ(result.final_state.p.size(), 1u);
}

TEST(Runner, StopsImmediatelyWhenAlreadyConverged) {
  const auto game = make_single_region_game();
  core::FixedRatioController controller(0.5);
  const core::DesiredFields fields(1, 8);  // always satisfied
  const auto result = run_mean_field(game, controller, game.uniform_state(),
                                     {0.5}, &fields, {});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(Runner, StopsWhenTargetReached) {
  const auto game = make_single_region_game();  // x=0 drives to P8
  core::FixedRatioController controller(0.0);
  core::DesiredFields fields(1, 8);
  fields.set_target(0, 7, avcp::Interval{0.5, 1.0});
  RunOptions options;
  options.max_rounds = 2000;
  const auto result = run_mean_field(game, controller, game.uniform_state(),
                                     {0.0}, &fields, options);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.rounds, 0u);
  EXPECT_LT(result.rounds, 2000u);
  EXPECT_GE(result.final_state.p[0][7], 0.5);
  // Trajectory length matches rounds executed.
  EXPECT_EQ(result.trajectory.size(), result.rounds + 1);
}

TEST(Runner, ProportionDeltasShrinkAsDynamicsSettle) {
  const auto game = make_single_region_game();
  core::FixedRatioController controller(0.0);
  RunOptions options;
  options.max_rounds = 300;
  const auto result = run_mean_field(game, controller, game.uniform_state(),
                                     {0.0}, nullptr, options);
  const auto deltas = result.proportion_deltas();
  ASSERT_EQ(deltas.size(), 300u);
  // Early movement clearly exceeds late movement once converged.
  EXPECT_GT(deltas[2], deltas.back() * 10.0);
  EXPECT_LT(deltas.back(), 1e-3);
}

TEST(Runner, ProportionDeltasEmptyWithoutTrajectory) {
  RunResult result;
  EXPECT_TRUE(result.proportion_deltas().empty());
}

TEST(Runner, FinalXReflectsController) {
  const auto game = make_single_region_game();
  core::FixedRatioController controller(0.77);
  RunOptions options;
  options.max_rounds = 3;
  const auto result = run_mean_field(game, controller, game.uniform_state(),
                                     {0.1}, nullptr, options);
  ASSERT_EQ(result.final_x.size(), 1u);
  EXPECT_DOUBLE_EQ(result.final_x[0], 0.77);
}

TEST(Runner, RejectsZeroRoundBudget) {
  const auto game = make_single_region_game();
  core::FixedRatioController controller(0.5);
  RunOptions options;
  options.max_rounds = 0;  // would silently return the initial state
  EXPECT_THROW(run_mean_field(game, controller, game.uniform_state(), {0.5},
                              nullptr, options),
               ContractViolation);
}

TEST(Runner, RejectsNegativeSatisfyTolerance) {
  const auto game = make_single_region_game();
  core::FixedRatioController controller(0.5);
  RunOptions options;
  options.satisfy_tol = -1e-6;  // could never be satisfied
  EXPECT_THROW(run_mean_field(game, controller, game.uniform_state(), {0.5},
                              nullptr, options),
               ContractViolation);
}

}  // namespace
}  // namespace avcp::sim
