// The SoA layout contract: FleetSoA is a representation change, not a
// semantics change. For any logical fleet, running the data plane over the
// AoS span and over the FleetView consumes the same RNG stream and produces
// byte-equal RoundOutcome / DirectionalOutcome endpoints — every double
// compared with ==, not a tolerance.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "core/lattice.h"
#include "perception/data_plane.h"
#include "perception/fleet_soa.h"
#include "perception/measure.h"

namespace avcp::perception {
namespace {

DataUniverse make_universe(std::size_t items_per_sensor = 10) {
  Rng rng(7);
  const double privacy[] = {1.0, 0.4, 0.1};
  return DataUniverse::synthetic(3, items_per_sensor, privacy, rng);
}

ItemSet sample_items(Rng& rng, std::size_t omega, double fraction) {
  ItemSet out;
  for (ItemId id = 0; id < omega; ++id) {
    if (rng.bernoulli(fraction)) out.push_back(id);
  }
  return out;
}

/// A deliberately messy fleet: claims diverging from decisions, revoked
/// vehicles, empty collected and desired sets.
std::vector<Vehicle> make_fleet(std::size_t n, std::size_t k,
                                std::size_t omega, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vehicle> fleet(n);
  for (std::size_t v = 0; v < n; ++v) {
    fleet[v].decision =
        static_cast<core::DecisionId>(rng.uniform_int(0, k - 1));
    if (rng.bernoulli(0.3)) {
      fleet[v].claim = static_cast<core::DecisionId>(rng.uniform_int(0, k - 1));
    }
    fleet[v].revoked = rng.bernoulli(0.1);
    fleet[v].collected = sample_items(rng, omega, rng.bernoulli(0.1) ? 0.0 : 0.4);
    fleet[v].desired = sample_items(rng, omega, rng.bernoulli(0.1) ? 0.0 : 0.3);
  }
  return fleet;
}

FleetSoA mirror(const std::vector<Vehicle>& fleet) {
  FleetSoA soa;
  for (const Vehicle& v : fleet) {
    soa.add(v.decision, v.claim, v.revoked, v.collected, v.desired);
  }
  return soa;
}

void expect_outcomes_equal(const RoundOutcome& a, const RoundOutcome& b) {
  ASSERT_EQ(a.utility.size(), b.utility.size());
  for (std::size_t i = 0; i < a.utility.size(); ++i) {
    ASSERT_EQ(a.utility[i], b.utility[i]) << "vehicle " << i;
    ASSERT_EQ(a.privacy[i], b.privacy[i]) << "vehicle " << i;
  }
  EXPECT_EQ(a.exposed_items, b.exposed_items);
  EXPECT_EQ(a.exposed_privacy, b.exposed_privacy);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.uploads_lost, b.uploads_lost);
  EXPECT_EQ(a.deliveries_lost, b.deliveries_lost);
}

class FleetSoAEquivalence : public ::testing::TestWithParam<DataPlaneMode> {};

TEST_P(FleetSoAEquivalence, RoundOutcomesAreByteEqual) {
  const core::DecisionLattice lattice(3);
  const DataUniverse universe = make_universe();
  const auto fleet = make_fleet(60, lattice.num_decisions(), universe.size(),
                                /*seed=*/11);
  const FleetSoA soa = mirror(fleet);

  for (const double x : {0.0, 0.37, 0.8, 1.0}) {
    EdgeServerDataPlane aos_plane(lattice, universe, core::AccessRule::kSubsetOrEqual, 99);
    EdgeServerDataPlane soa_plane(lattice, universe, core::AccessRule::kSubsetOrEqual, 99);
    RoundOutcome aos_out;
    RoundOutcome soa_out;
    // Several consecutive rounds: RNG stream positions must track exactly.
    for (int round = 0; round < 3; ++round) {
      aos_plane.run_round_into(fleet, x, {}, {}, GetParam(), aos_out);
      soa_plane.run_round_into(soa.view(), x, {}, {}, GetParam(), soa_out);
      expect_outcomes_equal(aos_out, soa_out);
    }
  }
}

TEST_P(FleetSoAEquivalence, ServerItemsAndUploadLossMatch) {
  const core::DecisionLattice lattice(3);
  const DataUniverse universe = make_universe();
  const auto fleet = make_fleet(40, lattice.num_decisions(), universe.size(),
                                /*seed=*/29);
  const FleetSoA soa = mirror(fleet);

  const ItemSet server_items = {1, 5, 9, 17};
  CellFaultMask mask;
  mask.upload_lost.assign(fleet.size(), 0);
  Rng mask_rng(4);
  for (auto& f : mask.upload_lost) f = mask_rng.bernoulli(0.2) ? 1 : 0;

  EdgeServerDataPlane aos_plane(lattice, universe, core::AccessRule::kSubsetOrEqual, 5);
  EdgeServerDataPlane soa_plane(lattice, universe, core::AccessRule::kSubsetOrEqual, 5);
  RoundOutcome aos_out;
  RoundOutcome soa_out;
  aos_plane.run_round_into(fleet, 0.6, mask, server_items, GetParam(), aos_out);
  soa_plane.run_round_into(soa.view(), 0.6, mask, server_items, GetParam(),
                           soa_out);
  expect_outcomes_equal(aos_out, soa_out);
}

TEST_P(FleetSoAEquivalence, DirectionalOutcomesAreByteEqual) {
  const core::DecisionLattice lattice(3);
  const DataUniverse universe = make_universe();
  const auto senders = make_fleet(25, lattice.num_decisions(), universe.size(),
                                  /*seed=*/31);
  const auto receivers = make_fleet(35, lattice.num_decisions(),
                                    universe.size(), /*seed=*/37);
  const FleetSoA soa_senders = mirror(senders);
  const FleetSoA soa_receivers = mirror(receivers);

  EdgeServerDataPlane aos_plane(lattice, universe, core::AccessRule::kSubsetOrEqual, 123);
  EdgeServerDataPlane soa_plane(lattice, universe, core::AccessRule::kSubsetOrEqual, 123);
  EdgeServerDataPlane::DirectionalOutcome aos_out;
  EdgeServerDataPlane::DirectionalOutcome soa_out;
  aos_plane.run_directional_into(senders, receivers, 0.55, GetParam(), aos_out);
  soa_plane.run_directional_into(soa_senders.view(), soa_receivers.view(),
                                 0.55, GetParam(), soa_out);
  ASSERT_EQ(aos_out.marginal_utility.size(), soa_out.marginal_utility.size());
  for (std::size_t i = 0; i < aos_out.marginal_utility.size(); ++i) {
    ASSERT_EQ(aos_out.marginal_utility[i], soa_out.marginal_utility[i]);
  }
  EXPECT_EQ(aos_out.deliveries, soa_out.deliveries);
}

TEST_P(FleetSoAEquivalence, ExactDeliveryLossMaskMatches) {
  if (GetParam() == DataPlaneMode::kClassAggregated) {
    GTEST_SKIP() << "per-pair delivery loss is exact-kernel-only";
  }
  const core::DecisionLattice lattice(3);
  const DataUniverse universe = make_universe();
  const auto fleet = make_fleet(30, lattice.num_decisions(), universe.size(),
                                /*seed=*/43);
  const FleetSoA soa = mirror(fleet);

  CellFaultMask mask;
  mask.delivery_lost.assign(fleet.size() * fleet.size(), 0);
  Rng mask_rng(9);
  for (auto& f : mask.delivery_lost) f = mask_rng.bernoulli(0.1) ? 1 : 0;

  EdgeServerDataPlane aos_plane(lattice, universe, core::AccessRule::kSubsetOrEqual, 77);
  EdgeServerDataPlane soa_plane(lattice, universe, core::AccessRule::kSubsetOrEqual, 77);
  RoundOutcome aos_out;
  RoundOutcome soa_out;
  aos_plane.run_round_into(fleet, 0.7, mask, {}, GetParam(), aos_out);
  soa_plane.run_round_into(soa.view(), 0.7, mask, {}, GetParam(), soa_out);
  expect_outcomes_equal(aos_out, soa_out);
}

INSTANTIATE_TEST_SUITE_P(BothKernels, FleetSoAEquivalence,
                         ::testing::Values(DataPlaneMode::kPairwiseExact,
                                           DataPlaneMode::kClassAggregated));

TEST(FleetSoA, BuildersAndViewsAgree) {
  FleetSoA fleet;
  const std::size_t v0 = fleet.add(2);
  const std::size_t v1 = fleet.add(1, 3, true);

  // Fixed-size windows.
  auto c0 = fleet.alloc_collected(v0, 3);
  c0[0] = 4;
  c0[1] = 7;
  c0[2] = 9;
  // Streaming builder.
  fleet.begin_desired(v0);
  fleet.push_item(1);
  fleet.push_item(7);
  fleet.end_set();
  fleet.begin_collected(v1);
  fleet.end_set();  // empty set

  const FleetView view = fleet.view();
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view.decision[v0], 2u);
  EXPECT_EQ(view.claimed(v0), 2u);  // sentinel follows decision
  EXPECT_EQ(view.claimed(v1), 3u);
  EXPECT_NE(view.revoked[v1], 0);
  ASSERT_EQ(view.collected_of(v0).size(), 3u);
  EXPECT_EQ(view.collected_of(v0)[1], 7u);
  ASSERT_EQ(view.desired_of(v0).size(), 2u);
  EXPECT_TRUE(view.collected_of(v1).empty());

  std::vector<std::uint32_t> counts;
  fleet.count_classes(4, counts);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(FleetSoA, ResetItemsKeepsRosterAndCapacity) {
  FleetSoA fleet;
  fleet.add(0, kClaimFollowsDecision, false, ItemSet{1, 2, 3}, ItemSet{2});
  fleet.fitness()[0] = 1.5;
  fleet.reputation()[0] = 0.25;
  fleet.reset_items();
  EXPECT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet.arena_size(), 0u);
  EXPECT_TRUE(fleet.collected_of(0).empty());
  EXPECT_EQ(fleet.fitness()[0], 1.5);
  EXPECT_EQ(fleet.reputation()[0], 0.25);
  // Refill reuses the arena.
  auto c = fleet.alloc_collected(0, 2);
  c[0] = 5;
  c[1] = 8;
  EXPECT_EQ(fleet.collected_of(0).size(), 2u);
}

TEST(FleetSoA, CopyFromViewRepacksSpans) {
  FleetSoA src;
  src.add(1, kClaimFollowsDecision, false, ItemSet{3, 5}, ItemSet{4});
  src.add(2, 0, true, ItemSet{}, ItemSet{1, 2});

  FleetSoA dst;
  dst.add(src.view(), 1);
  dst.add(src.view(), 0);
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.decision(0), 2u);
  EXPECT_EQ(dst.desired_of(0).size(), 2u);
  EXPECT_EQ(dst.collected_of(1).size(), 2u);
  EXPECT_EQ(dst.collected_of(1)[1], 5u);
}

}  // namespace
}  // namespace avcp::perception
