// The incremental-equivalence contract of the service layer's clustering:
// for ANY seeded sequence of load deltas, the incrementally-maintained
// centrality and region clustering are bit-equal to the from-scratch
// computation over the same loads — at every thread count — while actually
// being incremental (some applies recompute only a strict subset of the
// source chunks).
#include "cluster/incremental_clustering.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.h"
#include "common/rng.h"
#include "roadnet/betweenness.h"
#include "roadnet/builders.h"

namespace avcp {
namespace {

using cluster::IncrementalClustering;
using cluster::IncrementalClusteringOptions;
using cluster::LoadDelta;

IncrementalClusteringOptions make_opts(std::size_t threads, double alpha) {
  IncrementalClusteringOptions opts;
  opts.clustering.num_regions = 4;
  opts.betweenness.num_threads = threads;
  opts.congestion_alpha = alpha;
  return opts;
}

/// A random bounded delta batch that keeps every load non-negative.
std::vector<LoadDelta> random_deltas(Rng& rng, std::vector<std::int64_t>& loads,
                                     std::size_t max_touched) {
  const std::size_t touched =
      1 + static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(max_touched) - 1));
  std::vector<LoadDelta> deltas;
  deltas.reserve(touched);
  for (std::size_t i = 0; i < touched; ++i) {
    const auto seg = static_cast<roadnet::SegmentId>(
        rng.uniform_int(0, static_cast<std::int64_t>(loads.size()) - 1));
    auto delta = static_cast<std::int32_t>(rng.uniform_int(-2, 3));
    if (loads[seg] + delta < 0) delta = -static_cast<std::int32_t>(loads[seg]);
    if (delta == 0) delta = 1;
    loads[seg] += delta;
    deltas.push_back({seg, delta});
  }
  return deltas;
}

void expect_clusterings_equal(const cluster::Clustering& a,
                              const cluster::Clustering& b) {
  EXPECT_EQ(a.region_of, b.region_of);
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.seeds, b.seeds);
}

TEST(IncrementalClustering, AnySeededSequenceMatchesFromScratch) {
  const auto g = roadnet::make_grid(5, 5);
  const double alpha = 0.15;

  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    bool saw_partial_recompute = false;
    std::vector<std::vector<double>> per_thread_centrality;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const auto opts = make_opts(threads, alpha);
      IncrementalClustering inc(g, opts);
      std::vector<std::int64_t> loads(g.num_segments(), 0);
      Rng rng(derive_seed(seed, {0x5ec1u}));
      for (std::size_t step = 0; step < 12; ++step) {
        const auto deltas = random_deltas(rng, loads, 6);
        const auto stats = inc.apply(deltas);
        const std::size_t num_chunks =
            std::min<std::size_t>(64, g.num_intersections());
        if (stats.chunks_recomputed > 0 &&
            stats.chunks_recomputed < num_chunks) {
          saw_partial_recompute = true;
        }
        ASSERT_EQ(std::vector<std::int64_t>(inc.loads().begin(),
                                            inc.loads().end()),
                  loads);
        // Bit-equal to the from-scratch pipeline over the same loads.
        expect_clusterings_equal(
            inc.clustering(),
            IncrementalClustering::scratch(g, loads, opts));
        const auto weights =
            IncrementalClustering::load_weights(g, loads, alpha);
        ASSERT_EQ(inc.centrality(), roadnet::segment_betweenness_weighted(
                                        g, weights, opts.betweenness))
            << "seed " << seed << " threads " << threads << " step " << step;
      }
      per_thread_centrality.push_back(inc.centrality());

      // set_loads over the final loads reproduces the incremental state —
      // the checkpoint-restore path.
      IncrementalClustering restored(g, opts);
      restored.set_loads(loads);
      ASSERT_EQ(restored.centrality(), inc.centrality());
      expect_clusterings_equal(restored.clustering(), inc.clustering());
    }
    for (std::size_t i = 1; i < per_thread_centrality.size(); ++i) {
      EXPECT_EQ(per_thread_centrality[0], per_thread_centrality[i]);
    }
    // The contract is only interesting if the path is actually
    // incremental: at least one apply must have skipped cached chunks.
    EXPECT_TRUE(saw_partial_recompute) << "seed " << seed;
  }
}

TEST(IncrementalClustering, ZeroAlphaNeverReclusters) {
  const auto g = roadnet::make_grid(4, 4);
  const auto opts = make_opts(1, 0.0);
  IncrementalClustering inc(g, opts);
  const auto initial = inc.clustering().region_of;
  std::vector<std::int64_t> loads(g.num_segments(), 0);
  Rng rng(99);
  for (std::size_t step = 0; step < 8; ++step) {
    const auto deltas = random_deltas(rng, loads, 4);
    const auto stats = inc.apply(deltas);
    EXPECT_EQ(stats.chunks_recomputed, 0u);
    EXPECT_FALSE(stats.reclustered);
  }
  EXPECT_EQ(inc.clustering().region_of, initial);
}

TEST(IncrementalClustering, RejectsNegativeLoad) {
  const auto g = roadnet::make_grid(3, 3);
  IncrementalClustering inc(g, make_opts(1, 0.1));
  const LoadDelta underflow{0, -1};
  EXPECT_THROW(inc.apply(std::span<const LoadDelta>(&underflow, 1)),
               ContractViolation);
}

}  // namespace
}  // namespace avcp
