// The service layer's contracts: zero-churn bit-identity with the batch
// engines (the epoch loop IS the round loop), thread-count invariance under
// full chaos (churn + faults + attackers + load-coupled re-clustering),
// graceful degradation under region outages, reputation state that follows
// vehicles across regions, and mid-stream checkpoint/resume equivalence —
// including the SIGTERM drain-and-flush path through run_with_recovery.
#include "service/service_engine.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "checkpoint/policy.h"
#include "checkpoint/recovery.h"
#include "common/contracts.h"
#include "common/serial.h"
#include "core/fds.h"
#include "faults/degraded_controller.h"
#include "faults/fault_model.h"
#include "roadnet/builders.h"
#include "service/shutdown.h"
#include "sim/agent_sim.h"
#include "sim/runner.h"
#include "test_support.h"

namespace avcp {
namespace {

namespace fs = std::filesystem;
using core::testing::make_chain_game;
using core::testing::random_simplex;
using service::ServiceEngine;
using service::ServiceParams;
using service::VehicleRecord;

constexpr std::size_t kRegions = 4;

/// Non-uniform but valid per-region distributions, deterministic.
core::GameState seeded_state(const core::MultiRegionGame& game,
                             std::uint64_t seed) {
  Rng rng(seed);
  core::GameState state = game.uniform_state();
  for (auto& row : state.p) {
    row = random_simplex(rng, row.size());
  }
  return state;
}

/// Empirical per-region decision distribution straight off the fleet
/// records (regions the fleet vacated keep an all-zero row here).
std::vector<std::vector<double>> empirical_from_fleet(
    const core::MultiRegionGame& game, const ServiceEngine& svc) {
  std::vector<std::vector<double>> p(
      game.num_regions(), std::vector<double>(game.num_decisions(), 0.0));
  std::vector<std::size_t> count(game.num_regions(), 0);
  for (const VehicleRecord& rec : svc.fleet()) {
    p[rec.region][rec.decision] += 1.0;
    ++count[rec.region];
  }
  for (std::size_t r = 0; r < p.size(); ++r) {
    if (count[r] == 0) continue;
    for (double& v : p[r]) v /= static_cast<double>(count[r]);
  }
  return p;
}

void expect_engines_equal(const ServiceEngine& a, const ServiceEngine& b) {
  EXPECT_EQ(a.epoch(), b.epoch());
  EXPECT_EQ(a.fleet(), b.fleet());  // exact: every field, every bit
  EXPECT_EQ(a.x(), b.x());
  EXPECT_EQ(a.true_state().p, b.true_state().p);
  EXPECT_EQ(a.observed_state().p, b.observed_state().p);
  EXPECT_EQ(a.staleness(), b.staleness());
  EXPECT_TRUE(a.counters() == b.counters());
}

// ---------------------------------------------------------------------------
// Parameter validation
// ---------------------------------------------------------------------------

TEST(ServiceParams, ValidateRejectsBadFields) {
  ServiceParams good;
  EXPECT_NO_THROW(good.validate());

  ServiceParams p = good;
  p.vehicles_per_region = 1;  // nobody to imitate
  EXPECT_THROW(p.validate(), ContractViolation);

  p = good;
  p.revision_rate = 1.5;
  EXPECT_THROW(p.validate(), ContractViolation);

  p = good;
  p.imitation_scale = 0.0;
  EXPECT_THROW(p.validate(), ContractViolation);

  p = good;
  p.attacker_fraction = -0.1;
  EXPECT_THROW(p.validate(), ContractViolation);

  p = good;
  p.churn.migrate_rate = 2.0;
  EXPECT_THROW(p.validate(), ContractViolation);

  p = good;
  p.degraded.max_step = 0.0;
  EXPECT_THROW(p.validate(), ContractViolation);

  p = good;
  p.reputation.decay = 1.0;  // EWMA would never admit new evidence
  EXPECT_THROW(p.validate(), ContractViolation);

  p = good;
  p.reputation.rehab_threshold = p.reputation.quarantine_threshold + 1.0;
  EXPECT_THROW(p.validate(), ContractViolation);

  p = good;
  p.congestion_alpha = -0.5;
  EXPECT_THROW(p.validate(), ContractViolation);

  p = good;
  p.staleness_budget = 2'000'000;  // effectively unbounded shedding
  EXPECT_THROW(p.validate(), ContractViolation);

  p = good;
  p.mode = ServiceParams::Mode::kMeanField;
  p.vehicles_per_region = 0;  // ignored by kMeanField
  EXPECT_NO_THROW(p.validate());
}

TEST(ServiceEngine, FleetModeRequiresFinalizedGraph) {
  const auto game = make_chain_game(kRegions);
  core::FixedRatioController inner(0.5);
  EXPECT_THROW(ServiceEngine(game, inner, nullptr, ServiceParams{}),
               ContractViolation);
}

// Streaming cold start: any ingest batch size must build the same fleet
// (placement comes from per-source-id hash streams) and therefore the same
// trajectory, churn included.
TEST(ServiceEngine, InitFromSourceIsBatchSizeInvariant) {
  const auto game = make_chain_game(kRegions);
  const auto graph = roadnet::make_grid(6, 6);
  ServiceParams params;
  params.seed = 41;
  params.churn.join_rate = 0.05;
  params.churn.leave_rate = 0.05;
  params.churn.migrate_rate = 0.1;

  core::FixedRatioController inner_a(0.5);
  core::FixedRatioController inner_b(0.5);
  ServiceEngine a(game, inner_a, &graph, params);
  ServiceEngine b(game, inner_b, &graph, params);
  core::SyntheticFleetSource source_a(600, game.num_decisions(), 17);
  core::SyntheticFleetSource source_b(600, game.num_decisions(), 17);
  const core::GameState initial = seeded_state(game, 11);
  a.init_from_source(initial, std::vector<double>(kRegions, 0.5), source_a,
                     /*ingest_batch=*/600);
  b.init_from_source(initial, std::vector<double>(kRegions, 0.5), source_b,
                     /*ingest_batch=*/7);
  EXPECT_EQ(a.fleet().size(), 600u);
  expect_engines_equal(a, b);
  for (int e = 0; e < 6; ++e) {
    a.run_epoch();
    b.run_epoch();
  }
  expect_engines_equal(a, b);
}

// ---------------------------------------------------------------------------
// Zero-churn bit-identity with the batch engines
// ---------------------------------------------------------------------------

// With churn off, congestion_alpha == 0, and no attackers, one service
// epoch is exactly one AgentBasedSim round driven by the same wrapped
// controller: same streams, same draw order, same outage holds — the
// trajectories must agree bit for bit, not approximately.
TEST(ServiceEngine, ZeroChurnFleetMatchesAgentSim) {
  const auto game = make_chain_game(kRegions);
  const auto graph = roadnet::make_grid(6, 6);

  faults::FaultParams fp;
  fp.report_loss_rate = 0.15;
  fp.outage_rate = 0.05;
  fp.seed = 7;
  const faults::FaultModel faults(fp);

  faults::DegradedOptions dopt;
  dopt.staleness_budget = 2;
  dopt.max_step = 0.05;

  const core::GameState initial = seeded_state(game, 11);
  const std::vector<double> x0(kRegions, 0.5);

  sim::AgentSimParams ap;
  ap.vehicles_per_region = 12;
  ap.revision_rate = 0.9;
  ap.imitation_scale = 0.7;
  ap.seed = 123;
  ap.num_threads = 2;
  sim::AgentBasedSim sim(game, ap, &faults);
  sim.init_from(initial);
  core::FixedRatioController inner_ref(0.7);
  faults::DegradedController wrapped(inner_ref, faults, dopt);
  std::vector<double> x_ref = x0;

  ServiceParams sp;
  sp.vehicles_per_region = 12;
  sp.revision_rate = 0.9;
  sp.imitation_scale = 0.7;
  sp.seed = 123;
  sp.num_threads = 3;  // different thread count on purpose
  sp.degraded = dopt;
  core::FixedRatioController inner_svc(0.7);
  ServiceEngine svc(game, inner_svc, &graph, sp, &faults);
  svc.init(initial, x0);

  for (std::size_t t = 0; t < 40; ++t) {
    x_ref = wrapped.next_x(sim.reported_state(), x_ref);
    sim.step(x_ref);
    svc.run_epoch();
    ASSERT_EQ(x_ref, svc.x()) << "round " << t;
    ASSERT_EQ(sim.empirical_state().p, empirical_from_fleet(game, svc))
        << "round " << t;
  }
  EXPECT_EQ(svc.epoch(), 40u);
  EXPECT_EQ(svc.counters().epochs, 40u);
  EXPECT_EQ(svc.counters().joins + svc.counters().leaves +
                svc.counters().migrations,
            0u);
  EXPECT_EQ(svc.counters().reclusters, 0u);  // alpha == 0: frozen clustering
}

TEST(ServiceEngine, ZeroChurnMeanFieldMatchesRunner) {
  const auto game = make_chain_game(3);
  const core::GameState initial = seeded_state(game, 17);
  const std::vector<double> x0(3, 0.4);
  const auto desired = core::DesiredFields::from_distribution(
      3, game.uniform_state().p[0], 0.05);

  faults::FaultParams fp;
  fp.report_loss_rate = 0.2;
  fp.seed = 3;
  const faults::FaultModel faults(fp);
  faults::DegradedOptions dopt;
  dopt.staleness_budget = 1;

  core::FdsController inner_ref(game, desired);
  faults::DegradedController wrapped(inner_ref, faults, dopt);
  sim::RunOptions ro;
  ro.max_rounds = 60;
  ro.record_trajectory = false;
  const auto ref = sim::run_mean_field(game, wrapped, initial, x0, nullptr, ro);

  ServiceParams sp;
  sp.mode = ServiceParams::Mode::kMeanField;
  sp.degraded = dopt;
  core::FdsController inner_svc(game, desired);
  ServiceEngine svc(game, inner_svc, nullptr, sp, &faults);
  svc.init(initial, x0);
  for (std::size_t t = 0; t < 60; ++t) svc.run_epoch();

  EXPECT_EQ(ref.final_state.p, svc.true_state().p);
  EXPECT_EQ(ref.final_x, svc.x());
  EXPECT_EQ(svc.epoch(), 60u);
}

// ---------------------------------------------------------------------------
// Full-chaos configuration shared by the invariance and resume tests
// ---------------------------------------------------------------------------

ServiceParams chaos_params(std::size_t threads) {
  ServiceParams sp;
  sp.vehicles_per_region = 12;
  sp.revision_rate = 0.9;
  sp.imitation_scale = 0.7;
  sp.seed = 42;
  sp.num_threads = threads;
  sp.attacker_fraction = 0.25;
  sp.churn.leave_rate = 0.03;
  sp.churn.migrate_rate = 0.10;
  sp.churn.join_slots = 5;
  sp.churn.join_rate = 0.4;
  sp.churn.seed = 13;
  sp.congestion_alpha = 0.05;
  sp.overload_events = 3;
  sp.staleness_budget = 2;
  sp.reputation.decay = 0.5;
  sp.reputation.quarantine_threshold = 0.3;
  sp.reputation.rehab_threshold = 0.05;
  sp.reputation.rehab_rounds = 50;
  sp.reputation.min_rounds = 3;
  return sp;
}

faults::FaultModel chaos_faults() {
  faults::FaultParams fp;
  fp.report_loss_rate = 0.10;
  fp.outage_rate = 0.03;
  fp.seed = 21;
  return faults::FaultModel(fp);
}

TEST(ServiceEngine, TrajectoryInvariantAcrossThreadCounts) {
  const auto game = make_chain_game(kRegions);
  const auto graph = roadnet::make_grid(6, 6);
  const auto faults = chaos_faults();
  const core::GameState initial = seeded_state(game, 29);
  const std::vector<double> x0(kRegions, 0.5);

  // deque: ServiceEngine owns a ThreadPool and is intentionally immovable.
  std::deque<ServiceEngine> engines;
  std::deque<core::FixedRatioController> inners;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    inners.emplace_back(0.7);
    engines.emplace_back(game, inners.back(), &graph, chaos_params(threads),
                         &faults);
    engines.back().init(initial, x0);
  }
  for (std::size_t t = 0; t < 30; ++t) {
    for (ServiceEngine& e : engines) e.run_epoch();
  }
  expect_engines_equal(engines[0], engines[1]);
  expect_engines_equal(engines[0], engines[2]);
  // The chaos config actually exercised everything it promises to.
  const service::ServiceCounters& c = engines[0].counters();
  EXPECT_GT(c.joins, 0u);
  EXPECT_GT(c.leaves, 0u);
  EXPECT_GT(c.migrations, 0u);
  EXPECT_GT(c.recluster_deferred, 0u);
  EXPECT_GT(c.betweenness_chunks_recomputed, 0u);
  EXPECT_GT(c.quarantines, 0u);
}

// ---------------------------------------------------------------------------
// Graceful degradation under a scheduled outage
// ---------------------------------------------------------------------------

TEST(ServiceEngine, OutageFreezesRegionAndDegradesController) {
  const auto game = make_chain_game(kRegions);
  const auto graph = roadnet::make_grid(6, 6);

  faults::FaultParams fp;
  fp.outages.push_back({/*region=*/1, /*first_round=*/5, /*duration=*/5});
  const faults::FaultModel faults(fp);

  ServiceParams sp;
  sp.vehicles_per_region = 10;
  sp.seed = 5;
  sp.degraded.staleness_budget = 2;
  core::FixedRatioController inner(0.6);
  ServiceEngine svc(game, inner, &graph, sp, &faults);
  svc.init(seeded_state(game, 31), std::vector<double>(kRegions, 0.5));

  for (std::size_t t = 0; t < 5; ++t) svc.run_epoch();
  auto frozen = [&] {
    std::vector<core::DecisionId> d;
    for (const VehicleRecord& rec : svc.fleet()) {
      if (rec.region == 1) d.push_back(rec.decision);
    }
    return d;
  };
  const auto before = frozen();
  for (std::size_t t = 5; t < 10; ++t) {
    svc.run_epoch();
    EXPECT_EQ(frozen(), before) << "epoch " << t;  // fleet holds during outage
  }
  // Three consecutive blind epochs exceed the staleness budget of 2: the
  // controller is running the fallback for region 1 by the window's end.
  EXPECT_TRUE(svc.controller().degraded(1));
  EXPECT_EQ(svc.counters().outage_region_epochs, 5u);

  svc.run_epoch();  // epoch 10: the report resumes
  EXPECT_FALSE(svc.controller().degraded(1));
}

// ---------------------------------------------------------------------------
// Reputation follows vehicles across regions
// ---------------------------------------------------------------------------

TEST(ServiceEngine, QuarantineTargetsAttackersAndSurvivesMigration) {
  const auto game = make_chain_game(kRegions);
  const auto graph = roadnet::make_grid(6, 6);

  ServiceParams sp;
  sp.vehicles_per_region = 12;
  sp.seed = 77;
  sp.attacker_fraction = 0.3;
  sp.churn.migrate_rate = 0.2;
  sp.churn.seed = 5;
  sp.reputation.decay = 0.5;
  sp.reputation.quarantine_threshold = 0.3;
  sp.reputation.rehab_threshold = 0.05;
  sp.reputation.rehab_rounds = 50;
  sp.reputation.min_rounds = 3;
  core::FixedRatioController inner(0.8);
  ServiceEngine svc(game, inner, &graph, sp);
  svc.init(seeded_state(game, 41), std::vector<double>(kRegions, 0.8));

  struct Seen {
    core::RegionId region = 0;
    bool quarantined = false;
  };
  std::map<std::uint64_t, Seen> prev;
  bool quarantined_vehicle_migrated = false;
  for (std::size_t t = 0; t < 40; ++t) {
    svc.run_epoch();
    for (const VehicleRecord& rec : svc.fleet()) {
      // Honest vehicles upload exactly their claim: residual 0, quarantine
      // impossible. Only designated free-riders may ever trip it.
      if (rec.quarantined) EXPECT_TRUE(rec.attacker) << "id " << rec.id;
      const auto it = prev.find(rec.id);
      if (it != prev.end() && it->second.quarantined && rec.quarantined &&
          it->second.region != rec.region) {
        quarantined_vehicle_migrated = true;  // the record moved intact
      }
      prev[rec.id] = {rec.region, rec.quarantined};
    }
  }
  EXPECT_GT(svc.counters().quarantines, 0u);
  EXPECT_GT(svc.counters().migrations, 0u);
  EXPECT_GT(svc.quarantined_count(), 0u);
  EXPECT_TRUE(quarantined_vehicle_migrated);
  EXPECT_EQ(svc.counters().releases, 0u);  // persistent offenders stay in
}

// ---------------------------------------------------------------------------
// Checkpoint/resume equivalence mid-stream
// ---------------------------------------------------------------------------

TEST(ServiceEngine, ResumeMidChurnIsBitIdentical) {
  const auto game = make_chain_game(kRegions);
  const auto graph = roadnet::make_grid(6, 6);
  const auto faults = chaos_faults();
  const core::GameState initial = seeded_state(game, 53);
  const std::vector<double> x0(kRegions, 0.5);

  core::FixedRatioController inner_a(0.7);
  ServiceEngine a(game, inner_a, &graph, chaos_params(2), &faults);
  a.init(initial, x0);
  for (std::size_t t = 0; t < 25; ++t) a.run_epoch();

  core::FixedRatioController inner_b(0.7);
  ServiceEngine b(game, inner_b, &graph, chaos_params(2), &faults);
  b.init(initial, x0);
  for (std::size_t t = 0; t < 10; ++t) b.run_epoch();
  Serializer snap;
  b.save_state(snap);

  core::FixedRatioController inner_c(0.7);
  ServiceEngine c(game, inner_c, &graph, chaos_params(2), &faults);
  Deserializer d(snap.bytes());
  c.load_state(d);
  EXPECT_TRUE(d.exhausted());
  EXPECT_EQ(c.epoch(), 10u);
  for (std::size_t t = 10; t < 25; ++t) c.run_epoch();

  expect_engines_equal(a, c);
}

TEST(ServiceEngine, LoadStateRejectsMismatchedConfiguration) {
  const auto game = make_chain_game(kRegions);
  const auto graph = roadnet::make_grid(6, 6);
  core::FixedRatioController inner(0.7);
  ServiceEngine a(game, inner, &graph, chaos_params(1));
  a.init(seeded_state(game, 53), std::vector<double>(kRegions, 0.5));
  for (std::size_t t = 0; t < 3; ++t) a.run_epoch();
  Serializer snap;
  a.save_state(snap);

  ServiceParams other = chaos_params(1);
  other.seed = 43;  // different stream universe: snapshot must be rejected
  core::FixedRatioController inner_b(0.7);
  ServiceEngine b(game, inner_b, &graph, other);
  Deserializer d(snap.bytes());
  EXPECT_THROW(b.load_state(d), SerialError);
}

// ---------------------------------------------------------------------------
// Graceful shutdown: drain the epoch, flush a final generation, resume
// ---------------------------------------------------------------------------

class ServiceShutdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("avcp_service_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
    service::reset_shutdown_flag();
  }

  fs::path dir_;
};

TEST_F(ServiceShutdownTest, SigtermDrainsFlushesAndResumesBitIdentically) {
  const auto game = make_chain_game(kRegions);
  const auto graph = roadnet::make_grid(6, 6);
  const auto faults = chaos_faults();
  const core::GameState initial = seeded_state(game, 67);
  const std::vector<double> x0(kRegions, 0.5);
  constexpr std::size_t kTotal = 30;

  core::FixedRatioController inner(0.7);
  ServiceEngine svc(game, inner, &graph, chaos_params(1), &faults);

  const checkpoint::CheckpointStore store(dir_, /*keep=*/2);
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = 5;
  checkpoint::RecoveryHooks hooks;
  hooks.reset = [&] { svc.init(initial, x0); };
  hooks.restore = [&](const checkpoint::CheckpointReader& reader) {
    Deserializer d = reader.section(checkpoint::kSectionService);
    svc.load_state(d);
  };
  hooks.step = [&](std::size_t round) {
    svc.run_epoch();
    if (round == 11) {
      // A real signal, through the installed handler — not just the flag.
      service::install_shutdown_handlers();
      std::raise(SIGTERM);
    }
  };
  hooks.save = [&](checkpoint::CheckpointWriter& writer) {
    svc.save_state(writer.section(checkpoint::kSectionService));
  };
  hooks.stop = [] { return service::shutdown_requested(); };

  service::reset_shutdown_flag();
  const auto first = checkpoint::run_with_recovery(store, policy, kTotal, hooks);
  EXPECT_TRUE(first.stopped_early);
  EXPECT_FALSE(first.resumed);
  EXPECT_EQ(first.completed_rounds, 12u);
  EXPECT_EQ(svc.epoch(), 12u);
  // The drain flushed a generation for the interrupted round.
  ASSERT_FALSE(store.generations().empty());
  EXPECT_EQ(checkpoint::CheckpointReader::open(store.generations().front())
                .round(),
            12u);

  service::reset_shutdown_flag();
  const auto second =
      checkpoint::run_with_recovery(store, policy, kTotal, hooks);
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(second.start_round, 12u);
  EXPECT_FALSE(second.stopped_early);
  EXPECT_EQ(second.completed_rounds, kTotal);

  // The interrupted-and-resumed service is byte-equal to one that ran
  // straight through — the whole point of the drain-and-flush path.
  core::FixedRatioController inner_ref(0.7);
  ServiceEngine ref(game, inner_ref, &graph, chaos_params(1), &faults);
  ref.init(initial, x0);
  for (std::size_t t = 0; t < kTotal; ++t) ref.run_epoch();
  Serializer sa;
  svc.save_state(sa);
  Serializer sb;
  ref.save_state(sb);
  EXPECT_TRUE(sa.bytes() == sb.bytes());
}

}  // namespace
}  // namespace avcp
