// Allocation regression guard for the data-plane round workspaces: after a
// warm-up round has grown every scratch buffer to its high-water mark,
// steady-state rounds through the _into entry points must perform ZERO heap
// allocations in both kernels. The guard counts through overridden global
// operator new/delete (this TU links into its own test binary, so the
// override is process-wide here and nowhere else).
#include "perception/data_plane.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <vector>

#include "common/rng.h"

namespace {
std::atomic<long long> g_live_allocs{0};

void* counted_alloc(std::size_t size) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace avcp::perception {
namespace {

using core::AccessRule;
using core::DecisionLattice;

long long allocations_during(const std::function<void()>& body) {
  const long long before = g_live_allocs.load(std::memory_order_relaxed);
  body();
  return g_live_allocs.load(std::memory_order_relaxed) - before;
}

DataUniverse make_universe() {
  DataUniverse universe(3);
  for (std::size_t s = 0; s < 3; ++s) {
    const double privacy = s == 0 ? 1.0 : (s == 1 ? 0.5 : 0.1);
    for (int i = 0; i < 8; ++i) universe.add_item(s, 1.0, privacy);
  }
  return universe;
}

std::vector<Vehicle> make_fleet(const DataUniverse& universe, std::size_t n) {
  Rng rng(17);
  std::vector<Vehicle> fleet(n);
  for (auto& v : fleet) {
    v.decision = static_cast<core::DecisionId>(rng.uniform_int(0, 7));
    for (ItemId id = 0; id < universe.size(); ++id) {
      if (rng.bernoulli(0.4)) v.collected.push_back(id);
      if (rng.bernoulli(0.3)) v.desired.push_back(id);
    }
    if (v.desired.empty()) v.desired.push_back(0);
  }
  return fleet;
}

class AllocationGuard : public ::testing::TestWithParam<DataPlaneMode> {};

TEST_P(AllocationGuard, SteadyStateRoundsAreAllocationFree) {
  const DataPlaneMode mode = GetParam();
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe, AccessRule::kSubsetOrEqual, 9);
  const auto fleet = make_fleet(universe, 60);
  const ItemSet server_items = {0, 5};
  RoundOutcome out;
  // Warm-up at x = 1 (maximal gather: every readable pair delivers) grows
  // all buffers to a bound no x <= 1 steady-state round can exceed.
  plane.run_round_into(fleet, 1.0, {}, server_items, mode, out);
  plane.run_round_into(fleet, 0.5, {}, server_items, mode, out);
  const long long allocs = allocations_during([&] {
    for (int r = 0; r < 25; ++r) {
      plane.run_round_into(fleet, 0.5, {}, server_items, mode, out);
    }
  });
  EXPECT_EQ(allocs, 0) << "mode " << static_cast<int>(mode);
}

TEST_P(AllocationGuard, SteadyStateDirectionalIsAllocationFree) {
  const DataPlaneMode mode = GetParam();
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe, AccessRule::kSubsetOrEqual, 11);
  const auto senders = make_fleet(universe, 40);
  const auto receivers = make_fleet(universe, 40);
  EdgeServerDataPlane::DirectionalOutcome out;
  plane.run_directional_into(senders, receivers, 1.0, mode, out);
  plane.run_directional_into(senders, receivers, 0.5, mode, out);
  const long long allocs = allocations_during([&] {
    for (int r = 0; r < 25; ++r) {
      plane.run_directional_into(senders, receivers, 0.5, mode, out);
    }
  });
  EXPECT_EQ(allocs, 0) << "mode " << static_cast<int>(mode);
}

INSTANTIATE_TEST_SUITE_P(BothKernels, AllocationGuard,
                         ::testing::Values(DataPlaneMode::kPairwiseExact,
                                           DataPlaneMode::kClassAggregated));

// Shrinking the fleet must not re-grow anything either (buffers are
// high-water-marked, sized by count not by shape).
TEST(AllocationGuardShrink, SmallerFleetAfterLargerIsAllocationFree) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe, AccessRule::kSubsetOrEqual, 13);
  const auto big = make_fleet(universe, 80);
  const auto small = make_fleet(universe, 20);
  RoundOutcome big_out;
  RoundOutcome small_out;
  plane.run_round_into(big, 1.0, {}, {}, DataPlaneMode::kClassAggregated,
                       big_out);
  plane.run_round_into(big, 1.0, {}, {}, DataPlaneMode::kPairwiseExact,
                       big_out);
  plane.run_round_into(small, 1.0, {}, {}, DataPlaneMode::kClassAggregated,
                       small_out);
  plane.run_round_into(small, 1.0, {}, {}, DataPlaneMode::kPairwiseExact,
                       small_out);
  const long long allocs = allocations_during([&] {
    for (int r = 0; r < 10; ++r) {
      plane.run_round_into(small, 0.5, {}, {}, DataPlaneMode::kClassAggregated,
                           small_out);
      plane.run_round_into(small, 0.5, {}, {}, DataPlaneMode::kPairwiseExact,
                           small_out);
    }
  });
  EXPECT_EQ(allocs, 0);
}

}  // namespace
}  // namespace avcp::perception
