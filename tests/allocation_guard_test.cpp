// Allocation regression guard for the data-plane round workspaces: after a
// warm-up round has grown every scratch buffer to its high-water mark,
// steady-state rounds through the _into entry points must perform ZERO heap
// allocations in both kernels. The guard counts through overridden global
// operator new/delete (this TU links into its own test binary, so the
// override is process-wide here and nowhere else).
#include "perception/data_plane.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <vector>

#include "common/rng.h"
#include "core/fds.h"
#include "core/fleet_stream.h"
#include "perception/fleet_soa.h"
#include "roadnet/builders.h"
#include "service/service_engine.h"
#include "system/fleet_engine.h"
#include "test_support.h"

namespace {
std::atomic<long long> g_live_allocs{0};

void* counted_alloc(std::size_t size) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace avcp::perception {
namespace {

using core::AccessRule;
using core::DecisionLattice;

long long allocations_during(const std::function<void()>& body) {
  const long long before = g_live_allocs.load(std::memory_order_relaxed);
  body();
  return g_live_allocs.load(std::memory_order_relaxed) - before;
}

DataUniverse make_universe() {
  DataUniverse universe(3);
  for (std::size_t s = 0; s < 3; ++s) {
    const double privacy = s == 0 ? 1.0 : (s == 1 ? 0.5 : 0.1);
    for (int i = 0; i < 8; ++i) universe.add_item(s, 1.0, privacy);
  }
  return universe;
}

std::vector<Vehicle> make_fleet(const DataUniverse& universe, std::size_t n) {
  Rng rng(17);
  std::vector<Vehicle> fleet(n);
  for (auto& v : fleet) {
    v.decision = static_cast<core::DecisionId>(rng.uniform_int(0, 7));
    for (ItemId id = 0; id < universe.size(); ++id) {
      if (rng.bernoulli(0.4)) v.collected.push_back(id);
      if (rng.bernoulli(0.3)) v.desired.push_back(id);
    }
    if (v.desired.empty()) v.desired.push_back(0);
  }
  return fleet;
}

class AllocationGuard : public ::testing::TestWithParam<DataPlaneMode> {};

TEST_P(AllocationGuard, SteadyStateRoundsAreAllocationFree) {
  const DataPlaneMode mode = GetParam();
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe, AccessRule::kSubsetOrEqual, 9);
  const auto fleet = make_fleet(universe, 60);
  const ItemSet server_items = {0, 5};
  RoundOutcome out;
  // Warm-up at x = 1 (maximal gather: every readable pair delivers) grows
  // all buffers to a bound no x <= 1 steady-state round can exceed.
  plane.run_round_into(fleet, 1.0, {}, server_items, mode, out);
  plane.run_round_into(fleet, 0.5, {}, server_items, mode, out);
  const long long allocs = allocations_during([&] {
    for (int r = 0; r < 25; ++r) {
      plane.run_round_into(fleet, 0.5, {}, server_items, mode, out);
    }
  });
  EXPECT_EQ(allocs, 0) << "mode " << static_cast<int>(mode);
}

TEST_P(AllocationGuard, SteadyStateDirectionalIsAllocationFree) {
  const DataPlaneMode mode = GetParam();
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe, AccessRule::kSubsetOrEqual, 11);
  const auto senders = make_fleet(universe, 40);
  const auto receivers = make_fleet(universe, 40);
  EdgeServerDataPlane::DirectionalOutcome out;
  plane.run_directional_into(senders, receivers, 1.0, mode, out);
  plane.run_directional_into(senders, receivers, 0.5, mode, out);
  const long long allocs = allocations_during([&] {
    for (int r = 0; r < 25; ++r) {
      plane.run_directional_into(senders, receivers, 0.5, mode, out);
    }
  });
  EXPECT_EQ(allocs, 0) << "mode " << static_cast<int>(mode);
}

INSTANTIATE_TEST_SUITE_P(BothKernels, AllocationGuard,
                         ::testing::Values(DataPlaneMode::kPairwiseExact,
                                           DataPlaneMode::kClassAggregated));

// Shrinking the fleet must not re-grow anything either (buffers are
// high-water-marked, sized by count not by shape).
TEST(AllocationGuardShrink, SmallerFleetAfterLargerIsAllocationFree) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe, AccessRule::kSubsetOrEqual, 13);
  const auto big = make_fleet(universe, 80);
  const auto small = make_fleet(universe, 20);
  RoundOutcome big_out;
  RoundOutcome small_out;
  plane.run_round_into(big, 1.0, {}, {}, DataPlaneMode::kClassAggregated,
                       big_out);
  plane.run_round_into(big, 1.0, {}, {}, DataPlaneMode::kPairwiseExact,
                       big_out);
  plane.run_round_into(small, 1.0, {}, {}, DataPlaneMode::kClassAggregated,
                       small_out);
  plane.run_round_into(small, 1.0, {}, {}, DataPlaneMode::kPairwiseExact,
                       small_out);
  const long long allocs = allocations_during([&] {
    for (int r = 0; r < 10; ++r) {
      plane.run_round_into(small, 0.5, {}, {}, DataPlaneMode::kClassAggregated,
                           small_out);
      plane.run_round_into(small, 0.5, {}, {}, DataPlaneMode::kPairwiseExact,
                           small_out);
    }
  });
  EXPECT_EQ(allocs, 0);
}

// The SoA round path carries the same guarantee: once the plane workspace
// and the FleetSoA arena have hit their high-water marks, FleetView rounds
// (including per-round item refills through reset_items + the open-set
// builder) allocate nothing.
TEST(AllocationGuardSoA, SteadyStateFleetViewRoundsAreAllocationFree) {
  const DecisionLattice lattice(3);
  const auto universe = make_universe();
  EdgeServerDataPlane plane(lattice, universe, AccessRule::kSubsetOrEqual, 9);
  const auto fleet = make_fleet(universe, 60);

  FleetSoA soa;
  soa.reserve(fleet.size(), 2 * universe.size() * fleet.size());
  for (const Vehicle& v : fleet) {
    soa.add(v.decision, v.claim, v.revoked, v.collected, v.desired);
  }
  RoundOutcome out;
  plane.run_round_into(soa.view(), 1.0, {}, {},
                       DataPlaneMode::kClassAggregated, out);
  plane.run_round_into(soa.view(), 1.0, {}, {}, DataPlaneMode::kPairwiseExact,
                       out);
  Rng refill_rng(23);
  const long long allocs = allocations_during([&] {
    for (int r = 0; r < 25; ++r) {
      // Per-round refill: drop every item set and stream new ones in.
      soa.reset_items();
      for (std::size_t v = 0; v < soa.size(); ++v) {
        soa.begin_collected(v);
        for (ItemId id = 0; id < universe.size(); ++id) {
          if (refill_rng.bernoulli(0.4)) soa.push_item(id);
        }
        soa.end_set();
        soa.begin_desired(v);
        soa.push_item(static_cast<ItemId>(v % universe.size()));
        soa.end_set();
      }
      plane.run_round_into(soa.view(), 0.5, {}, {},
                           DataPlaneMode::kClassAggregated, out);
      plane.run_round_into(soa.view(), 0.5, {}, {},
                           DataPlaneMode::kPairwiseExact, out);
    }
  });
  EXPECT_EQ(allocs, 0);
}

// The sharded fleet engine end-to-end: after ingest plus one warm-up round,
// steady-state rounds (scene refill, exchange, fitness, revision, stats
// fold) across every shard perform zero heap allocations.
TEST(AllocationGuardFleetEngine, SteadyStateEngineRoundsAreAllocationFree) {
  system::FleetEngineParams params;
  params.num_shards = 4;
  params.seed = 77;
  system::ShardedFleetEngine engine(params);
  core::SyntheticFleetSource source(2000, 8, 77);
  engine.ingest(source);
  system::FleetRoundStats stats;
  engine.run_round_into(0.6, stats);
  const long long allocs = allocations_during([&] {
    for (int r = 0; r < 10; ++r) engine.run_round_into(0.6, stats);
  });
  EXPECT_EQ(allocs, 0);
}

// The service layer's per-epoch scratch is hoisted into grow-only members:
// with the fleet roster static (churn off), steady-state epochs — snapshot,
// control, revision, reputation scoring — are completely allocation-free.
TEST(AllocationGuardService, ZeroChurnSteadyEpochsAreAllocationFree) {
  const auto game = core::testing::make_chain_game(4);
  const auto graph = roadnet::make_grid(6, 6);
  service::ServiceParams params;
  params.seed = 31;
  params.attacker_fraction = 0.1;
  core::FixedRatioController inner(0.5);
  service::ServiceEngine svc(game, inner, &graph, params);
  svc.init(game.uniform_state(), std::vector<double>(4, 0.5));
  for (int e = 0; e < 3; ++e) svc.run_epoch();  // warm-up: high-water marks
  const long long allocs = allocations_during([&] {
    for (int e = 0; e < 25; ++e) svc.run_epoch();
  });
  EXPECT_EQ(allocs, 0);
}

// With churn, exploit rejoins, and quarantine all active, epochs may still
// touch the heap only when the fleet roster itself outgrows its high-water
// capacity — a handful of amortized growths, not O(fleet) per epoch.
TEST(AllocationGuardService, ChurningEpochsHaveBoundedAllocations) {
  const auto game = core::testing::make_chain_game(4);
  const auto graph = roadnet::make_grid(6, 6);
  service::ServiceParams params;
  params.seed = 47;
  params.attacker_fraction = 0.15;
  params.churn_exploit = true;
  params.churn.join_rate = 0.05;
  params.churn.leave_rate = 0.05;
  params.churn.migrate_rate = 0.1;
  core::FixedRatioController inner(0.5);
  service::ServiceEngine svc(game, inner, &graph, params);
  svc.init(game.uniform_state(), std::vector<double>(4, 0.5));
  for (int e = 0; e < 10; ++e) svc.run_epoch();  // warm-up: high-water marks
  const long long allocs = allocations_during([&] {
    for (int e = 0; e < 20; ++e) svc.run_epoch();
  });
  EXPECT_LE(allocs, 8) << "per-epoch heap churn has crept back in";
}

}  // namespace
}  // namespace avcp::perception
