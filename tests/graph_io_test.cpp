#include "roadnet/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/contracts.h"
#include "roadnet/betweenness.h"
#include "roadnet/builders.h"

namespace avcp::roadnet {
namespace {

TEST(GraphIo, ClassNamesRoundTrip) {
  for (const RoadClass cls :
       {RoadClass::kArterial, RoadClass::kCollector, RoadClass::kLocal}) {
    EXPECT_EQ(parse_road_class(road_class_name(cls)), cls);
  }
}

TEST(GraphIo, UnknownClassRejected) {
  EXPECT_THROW(parse_road_class("freeway"), ContractViolation);
}

TEST(GraphIo, RoundTripPreservesTopologyAndAttributes) {
  CityParams params;
  params.rows = 5;
  params.cols = 6;
  params.seed = 13;
  const RoadGraph original = build_city(params);

  std::ostringstream out;
  write_graph_csv(out, original);
  std::istringstream in(out.str());
  const RoadGraph loaded = read_graph_csv(in);

  ASSERT_EQ(loaded.num_intersections(), original.num_intersections());
  ASSERT_EQ(loaded.num_segments(), original.num_segments());
  for (NodeId v = 0; v < original.num_intersections(); ++v) {
    EXPECT_NEAR(loaded.intersection(v).x, original.intersection(v).x, 1e-4);
    EXPECT_NEAR(loaded.intersection(v).y, original.intersection(v).y, 1e-4);
  }
  for (SegmentId s = 0; s < original.num_segments(); ++s) {
    EXPECT_EQ(loaded.segment(s).from, original.segment(s).from);
    EXPECT_EQ(loaded.segment(s).to, original.segment(s).to);
    EXPECT_EQ(loaded.segment(s).cls, original.segment(s).cls);
    EXPECT_NEAR(loaded.segment(s).speed_mps, original.segment(s).speed_mps,
                1e-6);
    EXPECT_NEAR(loaded.segment(s).length_m, original.segment(s).length_m,
                1e-3);
  }
}

TEST(GraphIo, RoundTripPreservesBetweenness) {
  const RoadGraph original = make_grid(4, 5);
  std::ostringstream out;
  write_graph_csv(out, original);
  std::istringstream in(out.str());
  const RoadGraph loaded = read_graph_csv(in);

  const auto bc_original = segment_betweenness(original);
  const auto bc_loaded = segment_betweenness(loaded);
  ASSERT_EQ(bc_original.size(), bc_loaded.size());
  for (std::size_t s = 0; s < bc_original.size(); ++s) {
    EXPECT_NEAR(bc_original[s], bc_loaded[s], 1e-12);
  }
}

TEST(GraphIo, LoadedGraphIsFinalized) {
  const RoadGraph original = make_line(4);
  std::ostringstream out;
  write_graph_csv(out, original);
  std::istringstream in(out.str());
  const RoadGraph loaded = read_graph_csv(in);
  EXPECT_TRUE(loaded.finalized());
  EXPECT_TRUE(loaded.is_connected());
}

TEST(GraphIo, WriteRequiresFinalizedGraph) {
  RoadGraph g;
  g.add_intersection(PointM{0.0, 0.0});
  std::ostringstream out;
  EXPECT_THROW(write_graph_csv(out, g), ContractViolation);
}

TEST(GraphIo, DanglingSegmentRejected) {
  std::istringstream in(
      "section,id,x_or_from,y_or_to,class,speed_mps\n"
      "node,0,0.0,0.0,,\n"
      "segment,0,0,5,local,8.3\n");  // node 5 doesn't exist
  EXPECT_THROW(read_graph_csv(in), ContractViolation);
}

TEST(GraphIo, OutOfOrderNodeIdsRejected) {
  std::istringstream in(
      "section,id,x_or_from,y_or_to,class,speed_mps\n"
      "node,1,0.0,0.0,,\n");
  EXPECT_THROW(read_graph_csv(in), ContractViolation);
}

TEST(GraphIo, MalformedRowRejected) {
  std::istringstream in(
      "section,id,x_or_from,y_or_to,class,speed_mps\n"
      "node,0,abc,0.0,,\n");
  EXPECT_THROW(read_graph_csv(in), ContractViolation);
}

}  // namespace
}  // namespace avcp::roadnet
