#include "cluster/region_clustering.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/contracts.h"
#include "common/rng.h"
#include "common/stats.h"
#include "roadnet/betweenness.h"
#include "roadnet/builders.h"

namespace avcp::cluster {
namespace {

using roadnet::RoadGraph;
using roadnet::SegmentId;

std::vector<double> random_coeffs(const RoadGraph& g, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> coeffs(g.num_segments());
  for (double& c : coeffs) c = rng.uniform(0.0, 100.0);
  return coeffs;
}

TEST(SpreadSeeds, CorrectCountAndDistinct) {
  const RoadGraph g = roadnet::make_grid(5, 5);
  const auto seeds = spread_seeds(g, 6);
  EXPECT_EQ(seeds.size(), 6u);
  const std::set<SegmentId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(SpreadSeeds, TwoSeedsOnLineAreFarApart) {
  const RoadGraph g = roadnet::make_line(20);
  const auto seeds = spread_seeds(g, 2);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0], 0u);
  // Farthest segment from segment 0 is the other end of the line.
  EXPECT_EQ(seeds[1], g.num_segments() - 1);
}

TEST(SpreadSeeds, RejectsTooMany) {
  const RoadGraph g = roadnet::make_line(4);
  EXPECT_THROW(spread_seeds(g, 10), ContractViolation);
}

TEST(Clustering, EverySegmentAssignedExactlyOnce) {
  const RoadGraph g = roadnet::make_grid(8, 8);
  const auto coeffs = random_coeffs(g, 3);
  const auto clustering = cluster_segments(g, coeffs, {5});

  EXPECT_EQ(clustering.num_regions(), 5u);
  EXPECT_EQ(clustering.region_of.size(), g.num_segments());
  std::size_t total = 0;
  std::vector<bool> seen(g.num_segments(), false);
  for (RegionId r = 0; r < clustering.num_regions(); ++r) {
    for (const SegmentId s : clustering.members[r]) {
      EXPECT_FALSE(seen[s]) << "segment " << s << " in two regions";
      seen[s] = true;
      EXPECT_EQ(clustering.region_of[s], r);
      ++total;
    }
  }
  EXPECT_EQ(total, g.num_segments());
}

TEST(Clustering, NoRegionIsEmpty) {
  const RoadGraph g = roadnet::make_grid(6, 6);
  const auto coeffs = random_coeffs(g, 9);
  const auto clustering = cluster_segments(g, coeffs, {4});
  for (RegionId r = 0; r < clustering.num_regions(); ++r) {
    EXPECT_FALSE(clustering.members[r].empty()) << "region " << r;
  }
}

TEST(Clustering, SingleRegionTakesAll) {
  const RoadGraph g = roadnet::make_line(10);
  const auto coeffs = random_coeffs(g, 1);
  const auto clustering = cluster_segments(g, coeffs, {1});
  EXPECT_EQ(clustering.members[0].size(), g.num_segments());
}

TEST(Clustering, RegionsEqualSegmentsGivesSingletons) {
  const RoadGraph g = roadnet::make_line(6);
  const auto coeffs = random_coeffs(g, 2);
  const auto clustering = cluster_segments(
      g, coeffs, {static_cast<std::uint32_t>(g.num_segments())});
  for (RegionId r = 0; r < clustering.num_regions(); ++r) {
    EXPECT_EQ(clustering.members[r].size(), 1u);
  }
}

TEST(Clustering, SeparatesTwoCoefficientBands) {
  // A line whose left half has low coefficients and right half high; two
  // regions should split close to the boundary.
  const RoadGraph g = roadnet::make_line(21);  // 20 segments
  std::vector<double> coeffs(g.num_segments());
  for (std::size_t s = 0; s < coeffs.size(); ++s) {
    coeffs[s] = s < 10 ? 1.0 : 100.0;
  }
  const auto clustering = cluster_segments(g, coeffs, {2});
  // Within-region spread must be far below the global spread.
  const auto devs = clustering.region_stddevs(coeffs);
  const double global_dev = stddev(coeffs);
  for (const double d : devs) {
    EXPECT_LT(d, global_dev * 0.5);
  }
}

TEST(Clustering, WithinRegionSpreadBelowGlobalSpread) {
  // Smoothly varying coefficients over a grid: clustering should localise.
  const RoadGraph g = roadnet::make_grid(8, 8);
  std::vector<double> coeffs(g.num_segments());
  for (SegmentId s = 0; s < g.num_segments(); ++s) {
    coeffs[s] = g.segment_midpoint(s).x + g.segment_midpoint(s).y;
  }
  const auto clustering = cluster_segments(g, coeffs, {6});
  const auto devs = clustering.region_stddevs(coeffs);
  const double global_dev = stddev(coeffs);
  const double avg_dev = mean(devs);
  EXPECT_LT(avg_dev, global_dev * 0.8);
}

TEST(Clustering, RegionMeans) {
  const RoadGraph g = roadnet::make_line(5);  // 4 segments
  const std::vector<double> coeffs = {2.0, 2.0, 10.0, 10.0};
  const auto clustering = cluster_segments(g, coeffs, {2});
  const auto means = clustering.region_means(coeffs);
  ASSERT_EQ(means.size(), 2u);
  std::vector<double> sorted = means;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NEAR(sorted[0], 2.0, 1e-9);
  EXPECT_NEAR(sorted[1], 10.0, 1e-9);
}

TEST(Clustering, DeterministicForSameInputs) {
  const RoadGraph g = roadnet::make_grid(7, 7);
  const auto coeffs = random_coeffs(g, 4);
  const auto a = cluster_segments(g, coeffs, {5});
  const auto b = cluster_segments(g, coeffs, {5});
  EXPECT_EQ(a.region_of, b.region_of);
}

TEST(Clustering, MismatchedCoefficientsRejected) {
  const RoadGraph g = roadnet::make_line(5);
  const std::vector<double> coeffs = {1.0, 2.0};  // wrong size
  EXPECT_THROW(cluster_segments(g, coeffs, {2}), ContractViolation);
}

// Sweep: the partition invariants hold across seeds, sizes, and both
// coefficient kinds on procedural cities.
class ClusteringSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

TEST_P(ClusteringSweep, PartitionInvariants) {
  const auto [seed, num_regions] = GetParam();
  roadnet::CityParams params;
  params.rows = 6;
  params.cols = 8;
  params.seed = seed;
  const RoadGraph g = roadnet::build_city(params);
  const auto coeffs = roadnet::segment_betweenness(g);
  const auto clustering = cluster_segments(g, coeffs, {num_regions});

  EXPECT_EQ(clustering.num_regions(), num_regions);
  std::size_t total = 0;
  for (RegionId r = 0; r < num_regions; ++r) {
    EXPECT_FALSE(clustering.members[r].empty());
    total += clustering.members[r].size();
  }
  EXPECT_EQ(total, g.num_segments());
  for (const RegionId r : clustering.region_of) {
    EXPECT_LT(r, num_regions);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, ClusteringSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values<std::uint32_t>(2, 5, 12)));

}  // namespace
}  // namespace avcp::cluster
