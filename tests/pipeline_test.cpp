#include "sim/pipeline.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace avcp::sim {
namespace {

PipelineConfig small_config(CoefficientKind kind) {
  PipelineConfig config;
  config.city.rows = 8;
  config.city.cols = 10;
  config.city.seed = 21;
  config.traces.num_vehicles = 60;
  config.traces.duration_s = 1800.0;
  config.traces.seed = 22;
  config.num_servers = 9;
  config.num_regions = 5;
  config.coefficient = kind;
  return config;
}

class PipelineFixture : public ::testing::TestWithParam<CoefficientKind> {};

TEST_P(PipelineFixture, ArtifactSizesAreConsistent) {
  const auto artifacts = build_pipeline(small_config(GetParam()));
  const std::size_t m = artifacts.graph.num_segments();
  EXPECT_GT(m, 0u);
  EXPECT_EQ(artifacts.coefficients.size(), m);
  EXPECT_EQ(artifacts.cell_of_segment.size(), m);
  EXPECT_EQ(artifacts.clustering.region_of.size(), m);
  EXPECT_EQ(artifacts.clustering.num_regions(), 5u);
  EXPECT_EQ(artifacts.region_graph.num_regions(), 5u);
  EXPECT_EQ(artifacts.region_specs.size(), 5u);
  EXPECT_EQ(artifacts.server_positions.size(), 9u);
  EXPECT_FALSE(artifacts.fixes.empty());
}

TEST_P(PipelineFixture, BetasWithinConfiguredRange) {
  const auto config = small_config(GetParam());
  const auto artifacts = build_pipeline(config);
  for (const auto& spec : artifacts.region_specs) {
    EXPECT_GE(spec.beta, config.beta_lo - 1e-9);
    EXPECT_LE(spec.beta, config.beta_hi + 1e-9);
  }
  // The min and max of the range are attained (min-max normalisation).
  double lo = 1e9;
  double hi = -1e9;
  for (const auto& spec : artifacts.region_specs) {
    lo = std::min(lo, spec.beta);
    hi = std::max(hi, spec.beta);
  }
  EXPECT_NEAR(lo, config.beta_lo, 1e-9);
  EXPECT_NEAR(hi, config.beta_hi, 1e-9);
}

TEST_P(PipelineFixture, GammasNonNegativeAndRescaled) {
  const auto config = small_config(GetParam());
  const auto artifacts = build_pipeline(config);
  double max_gamma = 0.0;
  for (cluster::RegionId i = 0; i < 5; ++i) {
    for (cluster::RegionId j = 0; j < 5; ++j) {
      EXPECT_GE(artifacts.region_graph.gamma(i, j), 0.0);
      max_gamma = std::max(max_gamma, artifacts.region_graph.gamma(i, j));
    }
  }
  EXPECT_NEAR(max_gamma, config.gamma_max, 1e-9);
}

TEST_P(PipelineFixture, SpecsMirrorRegionGraph) {
  const auto artifacts = build_pipeline(small_config(GetParam()));
  for (cluster::RegionId i = 0; i < 5; ++i) {
    const auto& spec = artifacts.region_specs[i];
    EXPECT_DOUBLE_EQ(spec.gamma_self, artifacts.region_graph.gamma(i, i));
    EXPECT_EQ(spec.neighbors.size(),
              artifacts.region_graph.neighbors(i).size());
    for (const auto& [j, gamma] : spec.neighbors) {
      EXPECT_DOUBLE_EQ(gamma, artifacts.region_graph.gamma(j, i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothCoefficients, PipelineFixture,
                         ::testing::Values(CoefficientKind::kBetweenness,
                                           CoefficientKind::kTrafficDensity));

TEST(Pipeline, TdCoefficientsReflectTraffic) {
  const auto artifacts =
      build_pipeline(small_config(CoefficientKind::kTrafficDensity));
  // Some segments saw traffic.
  double total = 0.0;
  for (const double c : artifacts.coefficients) total += c;
  EXPECT_GT(total, 0.0);
}

TEST(Pipeline, StreamingIngestionMatchesMaterializedTrace) {
  // keep_fixes=false streams the generated trace through the TD and gamma
  // accumulators without materializing it; every artifact must be
  // bit-identical to the kept-fixes build.
  auto config = small_config(CoefficientKind::kTrafficDensity);
  const auto kept = build_pipeline(config);
  config.keep_fixes = false;
  const auto streamed = build_pipeline(config);

  EXPECT_FALSE(kept.fixes.empty());
  EXPECT_TRUE(streamed.fixes.empty());
  EXPECT_EQ(streamed.coefficients, kept.coefficients);
  EXPECT_EQ(streamed.clustering.region_of, kept.clustering.region_of);
  ASSERT_EQ(streamed.region_graph.num_regions(),
            kept.region_graph.num_regions());
  for (cluster::RegionId i = 0; i < kept.region_graph.num_regions(); ++i) {
    for (cluster::RegionId j = 0; j < kept.region_graph.num_regions(); ++j) {
      EXPECT_EQ(streamed.region_graph.gamma(i, j),
                kept.region_graph.gamma(i, j));
    }
  }
  ASSERT_EQ(streamed.region_specs.size(), kept.region_specs.size());
  for (std::size_t i = 0; i < kept.region_specs.size(); ++i) {
    EXPECT_EQ(streamed.region_specs[i].beta, kept.region_specs[i].beta);
    EXPECT_EQ(streamed.region_specs[i].gamma_self,
              kept.region_specs[i].gamma_self);
    EXPECT_EQ(streamed.region_specs[i].neighbors,
              kept.region_specs[i].neighbors);
  }
}

TEST(Pipeline, MakeRegionSpecsMapsMeansAffinely) {
  // Two regions with known coefficient means 0 and 10 map to beta_lo and
  // beta_hi exactly.
  cluster::Clustering clustering;
  clustering.region_of = {0, 1};
  clustering.members = {{0}, {1}};
  clustering.seeds = {0, 1};
  cluster::RegionGraph graph(2);
  graph.accumulate(0, 1, 1.0);
  graph.finalize(1.0);
  const std::vector<double> coeffs = {0.0, 10.0};
  const auto specs = make_region_specs(clustering, graph, coeffs, 0.5, 2.0);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_NEAR(specs[0].beta, 0.5, 1e-12);
  EXPECT_NEAR(specs[1].beta, 2.0, 1e-12);
  ASSERT_EQ(specs[0].neighbors.size(), 1u);
  EXPECT_EQ(specs[0].neighbors[0].first, 1u);
}

}  // namespace
}  // namespace avcp::sim
