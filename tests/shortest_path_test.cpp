#include "roadnet/shortest_path.h"

#include <gtest/gtest.h>

#include <limits>

#include "roadnet/builders.h"

namespace avcp::roadnet {
namespace {

TEST(ShortestPath, LineEndToEnd) {
  const RoadGraph g = make_line(5, 100.0);
  const auto route = shortest_path(g, 0, 4, PathMetric::kHops);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->cost, 4.0);
  ASSERT_EQ(route->nodes.size(), 5u);
  ASSERT_EQ(route->segments.size(), 4u);
  EXPECT_EQ(route->nodes.front(), 0u);
  EXPECT_EQ(route->nodes.back(), 4u);
}

TEST(ShortestPath, SameNodeIsEmptyRoute) {
  const RoadGraph g = make_line(3);
  const auto route = shortest_path(g, 1, 1);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->cost, 0.0);
  EXPECT_EQ(route->segments.size(), 0u);
  ASSERT_EQ(route->nodes.size(), 1u);
}

TEST(ShortestPath, DistanceMetricOnLine) {
  const RoadGraph g = make_line(4, 250.0);
  const auto route = shortest_path(g, 0, 3, PathMetric::kDistance);
  ASSERT_TRUE(route.has_value());
  EXPECT_NEAR(route->cost, 750.0, 1e-9);
}

TEST(ShortestPath, UnreachableReturnsNullopt) {
  RoadGraph g;
  const NodeId a = g.add_intersection(PointM{0.0, 0.0});
  const NodeId b = g.add_intersection(PointM{1.0, 0.0});
  g.add_intersection(PointM{5.0, 0.0});  // disconnected node 2
  g.add_segment(a, b, RoadClass::kLocal);
  g.finalize();
  EXPECT_FALSE(shortest_path(g, 0, 2).has_value());
}

TEST(ShortestPath, PicksFasterLongerRoadUnderTravelTime) {
  RoadGraph g;
  const NodeId a = g.add_intersection(PointM{0.0, 0.0});
  const NodeId b = g.add_intersection(PointM{1000.0, 0.0});
  const NodeId m = g.add_intersection(PointM{500.0, 400.0});
  g.add_segment(a, b, RoadClass::kLocal, 2.0);        // 500 s direct
  g.add_segment(a, m, RoadClass::kArterial, 30.0);    // fast detour
  g.add_segment(m, b, RoadClass::kArterial, 30.0);
  g.finalize();

  const auto by_time = shortest_path(g, a, b, PathMetric::kTravelTime);
  ASSERT_TRUE(by_time.has_value());
  EXPECT_EQ(by_time->segments.size(), 2u);  // takes the arterial detour

  const auto by_hops = shortest_path(g, a, b, PathMetric::kHops);
  ASSERT_TRUE(by_hops.has_value());
  EXPECT_EQ(by_hops->segments.size(), 1u);  // direct edge
}

TEST(ShortestPath, RouteSegmentsJoinConsecutiveNodes) {
  const RoadGraph g = make_grid(4, 4);
  const auto route = shortest_path(g, 0, 15, PathMetric::kDistance);
  ASSERT_TRUE(route.has_value());
  ASSERT_EQ(route->segments.size(), route->nodes.size() - 1);
  for (std::size_t i = 0; i < route->segments.size(); ++i) {
    const RoadSegment& seg = g.segment(route->segments[i]);
    const NodeId u = route->nodes[i];
    const NodeId v = route->nodes[i + 1];
    EXPECT_TRUE((seg.from == u && seg.to == v) ||
                (seg.from == v && seg.to == u));
  }
}

TEST(ShortestPath, GridManhattanHopCount) {
  const RoadGraph g = make_grid(4, 5);
  // Node ids are row-major; (0,0) -> (3,4) needs 3 + 4 hops.
  const auto route = shortest_path(g, 0, 19, PathMetric::kHops);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->cost, 7.0);
}

TEST(ShortestCosts, AllReachableOnConnectedGraph) {
  const RoadGraph g = make_grid(3, 3);
  const auto costs = shortest_costs(g, 4, PathMetric::kHops);  // center
  ASSERT_EQ(costs.size(), 9u);
  EXPECT_EQ(costs[4], 0.0);
  for (const double c : costs) {
    EXPECT_LT(c, std::numeric_limits<double>::infinity());
    EXPECT_LE(c, 2.0);  // center reaches every node within 2 hops
  }
}

TEST(ShortestCosts, InfinityForUnreachable) {
  RoadGraph g;
  g.add_intersection(PointM{0.0, 0.0});
  g.add_intersection(PointM{9.0, 0.0});
  g.finalize();
  const auto costs = shortest_costs(g, 0);
  EXPECT_EQ(costs[1], std::numeric_limits<double>::infinity());
}

TEST(ShortestPath, CostsAgreeWithRouteCost) {
  const RoadGraph g = make_grid(5, 5);
  const auto costs = shortest_costs(g, 0, PathMetric::kTravelTime);
  for (NodeId t = 1; t < g.num_intersections(); t += 7) {
    const auto route = shortest_path(g, 0, t, PathMetric::kTravelTime);
    ASSERT_TRUE(route.has_value());
    EXPECT_NEAR(route->cost, costs[t], 1e-9) << "target " << t;
  }
}

}  // namespace
}  // namespace avcp::roadnet
