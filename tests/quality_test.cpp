#include "cluster/quality.h"

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "common/rng.h"
#include "roadnet/betweenness.h"
#include "roadnet/builders.h"

namespace avcp::cluster {
namespace {

TEST(Quality, PerfectClusteringExplainsEverything) {
  // Two regions of constant coefficient: within-SS = 0, explained = 1.
  Clustering clustering;
  clustering.region_of = {0, 0, 1, 1};
  clustering.members = {{0, 1}, {2, 3}};
  clustering.seeds = {0, 2};
  const std::vector<double> coeffs = {2.0, 2.0, 9.0, 9.0};
  const auto q = evaluate_clustering(clustering, coeffs);
  EXPECT_NEAR(q.within_ss, 0.0, 1e-12);
  EXPECT_NEAR(q.explained, 1.0, 1e-12);
  EXPECT_NEAR(q.mean_abs_error, 0.0, 1e-12);
  EXPECT_NEAR(q.max_range, 0.0, 1e-12);
}

TEST(Quality, SingleRegionExplainsNothing) {
  Clustering clustering;
  clustering.region_of = {0, 0, 0, 0};
  clustering.members = {{0, 1, 2, 3}};
  clustering.seeds = {0};
  const std::vector<double> coeffs = {1.0, 2.0, 3.0, 4.0};
  const auto q = evaluate_clustering(clustering, coeffs);
  EXPECT_NEAR(q.explained, 0.0, 1e-12);
  EXPECT_NEAR(q.within_ss, q.total_ss, 1e-12);
  EXPECT_NEAR(q.max_range, 3.0, 1e-12);
}

TEST(Quality, HandComputedValues) {
  Clustering clustering;
  clustering.region_of = {0, 0, 1, 1};
  clustering.members = {{0, 1}, {2, 3}};
  clustering.seeds = {0, 2};
  const std::vector<double> coeffs = {1.0, 3.0, 10.0, 14.0};
  const auto q = evaluate_clustering(clustering, coeffs);
  // Region means: 2 and 12; within-SS = 1+1+4+4 = 10.
  EXPECT_NEAR(q.within_ss, 10.0, 1e-12);
  // Global mean 7; total-SS = 36+16+9+49 = 110.
  EXPECT_NEAR(q.total_ss, 110.0, 1e-12);
  EXPECT_NEAR(q.explained, 1.0 - 10.0 / 110.0, 1e-12);
  // Mean abs error = (1+1+2+2)/4 = 1.5.
  EXPECT_NEAR(q.mean_abs_error, 1.5, 1e-12);
  EXPECT_NEAR(q.max_range, 4.0, 1e-12);
}

TEST(Quality, MismatchedSizesRejected) {
  Clustering clustering;
  clustering.region_of = {0, 0};
  clustering.members = {{0, 1}};
  clustering.seeds = {0};
  const std::vector<double> coeffs = {1.0};
  EXPECT_THROW(evaluate_clustering(clustering, coeffs), ContractViolation);
}

TEST(Quality, RoundRobinBaselineShape) {
  const auto clustering = round_robin_clustering(10, 3);
  EXPECT_EQ(clustering.num_regions(), 3u);
  EXPECT_EQ(clustering.members[0].size(), 4u);  // 0, 3, 6, 9
  EXPECT_EQ(clustering.members[1].size(), 3u);
  EXPECT_EQ(clustering.members[2].size(), 3u);
  for (std::size_t s = 0; s < 10; ++s) {
    EXPECT_EQ(clustering.region_of[s], s % 3);
  }
}

TEST(Quality, Algorithm1BeatsRoundRobinOnStructuredCoefficients) {
  // The regression Algorithm 1 must keep winning: on a city with spatially
  // correlated coefficients, its within-cluster variance beats a
  // topology-blind round-robin split.
  roadnet::CityParams params;
  params.rows = 8;
  params.cols = 10;
  params.seed = 5;
  const auto graph = roadnet::build_city(params);
  const auto coeffs = roadnet::segment_betweenness(graph);

  const auto ours = cluster_segments(graph, coeffs, {8});
  const auto baseline = round_robin_clustering(graph.num_segments(), 8);

  const auto q_ours = evaluate_clustering(ours, coeffs);
  const auto q_base = evaluate_clustering(baseline, coeffs);
  EXPECT_LT(q_ours.within_ss, q_base.within_ss * 0.8);
  EXPECT_GT(q_ours.explained, q_base.explained);
}

TEST(Quality, MoreRegionsNeverExplainLess) {
  roadnet::CityParams params;
  params.rows = 6;
  params.cols = 8;
  params.seed = 7;
  const auto graph = roadnet::build_city(params);
  const auto coeffs = roadnet::segment_betweenness(graph);
  double previous = -1.0;
  for (const std::uint32_t m : {2u, 4u, 8u, 16u}) {
    const auto clustering = cluster_segments(graph, coeffs, {m});
    const auto q = evaluate_clustering(clustering, coeffs);
    // Heuristic growth is not strictly monotone, but more regions should
    // never lose much explanatory power.
    EXPECT_GT(q.explained, previous - 0.05) << "m=" << m;
    previous = std::max(previous, q.explained);
  }
}

}  // namespace
}  // namespace avcp::cluster
