// Shared builders for core-game tests.
#pragma once

#include <vector>

#include "common/rng.h"
#include "core/fds.h"
#include "core/game.h"
#include "core/sensor_model.h"

namespace avcp::core::testing {

/// A single isolated region running the paper's 8-decision game.
inline MultiRegionGame make_single_region_game(double beta = 1.5,
                                               double eta = 0.5,
                                               double gamma_self = 1.0,
                                               double mutation = 0.0) {
  GameConfig config;
  config.lattice = DecisionLattice(3);
  const auto tables = paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = eta;
  config.mutation = mutation;

  std::vector<RegionSpec> regions(1);
  regions[0].beta = beta;
  regions[0].gamma_self = gamma_self;
  return MultiRegionGame(std::move(config), std::move(regions));
}

/// A chain of M regions (i neighbours i-1 and i+1) with uniform gammas and
/// linearly varying betas, running the paper's 8-decision game.
inline MultiRegionGame make_chain_game(std::size_t m, double beta_lo = 1.0,
                                       double beta_hi = 2.0,
                                       double gamma_self = 1.0,
                                       double gamma_nbr = 0.3,
                                       double eta = 0.5) {
  GameConfig config;
  config.lattice = DecisionLattice(3);
  const auto tables = paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = eta;

  std::vector<RegionSpec> regions(m);
  for (std::size_t i = 0; i < m; ++i) {
    regions[i].beta =
        m > 1 ? beta_lo + (beta_hi - beta_lo) * static_cast<double>(i) /
                              static_cast<double>(m - 1)
              : beta_lo;
    regions[i].gamma_self = gamma_self;
    if (i > 0) {
      regions[i].neighbors.emplace_back(static_cast<RegionId>(i - 1),
                                        gamma_nbr);
    }
    if (i + 1 < m) {
      regions[i].neighbors.emplace_back(static_cast<RegionId>(i + 1),
                                        gamma_nbr);
    }
  }
  return MultiRegionGame(std::move(config), std::move(regions));
}

/// Uniform Dirichlet(1,..,1) sample (uniform over the simplex).
inline std::vector<double> random_simplex(Rng& rng, std::size_t k) {
  std::vector<double> p(k);
  double sum = 0.0;
  for (double& v : p) {
    v = rng.exponential(1.0);
    sum += v;
  }
  for (double& v : p) v /= sum;
  return p;
}

}  // namespace avcp::core::testing
