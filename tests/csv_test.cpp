#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace avcp {
namespace {

TEST(Csv, ParseSimpleLine) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Csv, ParseEmptyFields) {
  const auto fields = parse_csv_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Csv, ParseQuotedComma) {
  const auto fields = parse_csv_line(R"(a,"b,c",d)");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,c");
}

TEST(Csv, ParseEscapedQuote) {
  const auto fields = parse_csv_line(R"("say ""hi""")");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], R"(say "hi")");
}

TEST(Csv, ParseStripsCarriageReturn) {
  const auto fields = parse_csv_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(Csv, EscapeQuotesCommaAndQuote) {
  EXPECT_EQ(csv_escape("a,b"), R"("a,b")");
  EXPECT_EQ(csv_escape(R"(say "hi")"), R"("say ""hi""")");
}

TEST(Csv, EscapeLeadingSpace) {
  EXPECT_EQ(csv_escape(" x"), "\" x\"");
}

TEST(Csv, RoundTripThroughWriterAndReader) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"id", "name"});
  writer.write_row({"1", "al,ice"});
  writer.write_row({"2", R"(b"ob)"});

  std::istringstream in(out.str());
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1][1], "al,ice");
  EXPECT_EQ(rows[2][1], R"(b"ob)");
}

TEST(Csv, ReadSkipsEmptyLines) {
  std::istringstream in("a,b\n\n\nc,d\n");
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "c");
}

TEST(Csv, JoinLine) {
  EXPECT_EQ(join_csv_line({"a", "b,c", "d"}), R"(a,"b,c",d)");
}

}  // namespace
}  // namespace avcp
