#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace avcp {
namespace {

TEST(ThreadPool, SizeCountsCallerAsALane) {
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(4).size(), 4u);
  // 0 = hardware concurrency; even if the standard-permitted
  // hardware_concurrency() == 0 case fires, the guard resolves to one lane.
  EXPECT_GE(ThreadPool(0).size(), 1u);
}

TEST(ThreadPool, ClampedLanesRespectsHardware) {
  const std::size_t hw = ThreadPool::clamped_lanes(0);
  EXPECT_GE(hw, 1u);  // the hardware_concurrency()==0 guard
  EXPECT_EQ(ThreadPool::clamped_lanes(1), 1u);
  // Requests beyond the core count clamp to it; requests within it are
  // honoured exactly.
  EXPECT_EQ(ThreadPool::clamped_lanes(hw), hw);
  EXPECT_EQ(ThreadPool::clamped_lanes(hw + 1), hw);
  EXPECT_EQ(ThreadPool::clamped_lanes(10000), hw);
}

TEST(BalancedChunks, EvenCostsSplitEvenly) {
  const std::vector<double> cost(8, 1.0);
  const auto ends = balanced_chunks(cost, 4);
  EXPECT_EQ(ends, (std::vector<std::uint32_t>{2, 4, 6, 8}));
}

TEST(BalancedChunks, HeavyHeadGetsItsOwnChunk) {
  // One region worth as much as all others combined should not drag
  // neighbours into its chunk.
  const std::vector<double> cost = {7.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const auto ends = balanced_chunks(cost, 4);
  ASSERT_GE(ends.size(), 2u);
  EXPECT_EQ(ends[0], 1u);       // the heavy region alone
  EXPECT_EQ(ends.back(), 8u);   // full coverage
}

TEST(BalancedChunks, ZeroCostsStillCoverEveryIndex) {
  const std::vector<double> cost(5, 0.0);
  const auto ends = balanced_chunks(cost, 3);
  ASSERT_FALSE(ends.empty());
  EXPECT_EQ(ends.back(), 5u);
  for (std::size_t c = 1; c < ends.size(); ++c) {
    EXPECT_GT(ends[c], ends[c - 1]);  // every chunk non-empty
  }
}

TEST(BalancedChunks, MoreChunksThanIndicesDegradesToSingletons) {
  const std::vector<double> cost = {1.0, 2.0, 3.0};
  const auto ends = balanced_chunks(cost, 16);
  EXPECT_EQ(ends, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(BalancedChunks, PlanIsThreadCountIndependent) {
  // The plan feeds the determinism protocol: it may depend only on the
  // costs and the chunk budget, never on how many lanes will claim it.
  std::vector<double> cost;
  for (int i = 0; i < 33; ++i) cost.push_back(1.0 + (i % 7));
  const auto a = balanced_chunks(cost, 8);
  const auto b = balanced_chunks(cost, 8);
  EXPECT_EQ(a, b);
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 0, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 7, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleItemRunsInline) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  std::size_t seen = ~std::size_t{0};
  pool.parallel_for(3, 4, [&](std::size_t i) {
    ran_on = std::this_thread::get_id();
    seen = i;
  });
  EXPECT_EQ(ran_on, caller);
  EXPECT_EQ(seen, 3u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  // 13 lanes oversubscribes most machines: item-count completion means the
  // workers the OS leaves unscheduled must not block coverage or the join.
  for (const std::size_t threads : {1u, 2u, 8u, 13u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(0, kN, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, IndexOwnedSlotsNeedNoSynchronisation) {
  // The determinism protocol: each task writes only its own slot; the
  // caller reduces in index order after the join.
  ThreadPool pool(8);
  constexpr std::size_t kN = 512;
  std::vector<double> out(kN, 0.0);
  pool.parallel_for(0, kN, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  double sum = 0.0;
  for (const double v : out) sum += v;
  EXPECT_DOUBLE_EQ(sum, 0.5 * (kN - 1) * kN / 2.0);
}

TEST(ThreadPool, UsesMultipleThreadsWhenAvailable) {
  ThreadPool pool(4);
  if (pool.size() < 2) GTEST_SKIP() << "single-lane pool";
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<int> arrived{0};
  // Each task spins briefly so the range cannot be drained by one lane
  // before the others wake; recording thread ids proves real fan-out.
  pool.parallel_for(0, 64, [&](std::size_t) {
    ++arrived;
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
    while (std::chrono::steady_clock::now() < until) {
    }
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(arrived.load(), 64);
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("task 37");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ExceptionCancelsRemainingWork) {
  ThreadPool pool(1);  // inline: deterministic claim order 0, 1, 2, ...
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.parallel_for(0, 1000,
                                 [&](std::size_t i) {
                                   ++calls;
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  EXPECT_EQ(calls.load(), 6);  // 0..5 ran, the rest were cancelled
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 8, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPool, ManySmallJobsBackToBack) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.parallel_for(0, 5, [&](std::size_t i) { total += i; });
  }
  EXPECT_EQ(total.load(), 200u * (0 + 1 + 2 + 3 + 4));
}

TEST(ThreadPool, ExceptionCancelsUnderChunkedClaiming) {
  // A failing chunk must cancel the stage's unclaimed chunks (not just
  // unclaimed indices of its own chunk), release the barrier, and leave
  // the pool reusable. The range is large enough that full execution
  // despite the immediate throw would mean cancellation never fired.
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::atomic<std::size_t> calls{0};
  try {
    pool.parallel_for(
        0, kN,
        [&](std::size_t i) {
          ++calls;
          if (i == 0) throw std::runtime_error("chunk fail");
        },
        /*grain=*/64);
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk fail");
  }
  EXPECT_LT(calls.load(), kN);
  std::atomic<std::size_t> again{0};
  pool.parallel_for(0, 100, [&](std::size_t) { ++again; });
  EXPECT_EQ(again.load(), 100u);
}

TEST(ThreadPool, RunBatchBarriersBetweenStages) {
  // Stage s+1 may not start until every index of stage s has executed; a
  // stage-2 task reading the slot a *different* stage-1 index wrote is
  // well-defined only under that barrier.
  ThreadPool pool(4);
  constexpr std::size_t kN = 256;
  std::vector<int> a(kN, 0);
  std::atomic<std::size_t> stage1_done{0};
  std::atomic<bool> barrier_violated{false};
  auto s1 = [&](std::size_t i) {
    a[i] = static_cast<int>(i) + 1;
    stage1_done.fetch_add(1, std::memory_order_release);
  };
  auto s2 = [&](std::size_t i) {
    if (stage1_done.load(std::memory_order_acquire) != kN ||
        a[kN - 1 - i] != static_cast<int>(kN - 1 - i) + 1) {
      barrier_violated.store(true);
    }
  };
  const ThreadPool::Stage stages[] = {{kN, IndexFnRef(s1), 0, {}},
                                      {kN, IndexFnRef(s2), 0, {}}};
  for (int rep = 0; rep < 20; ++rep) {
    stage1_done.store(0);
    std::fill(a.begin(), a.end(), 0);
    pool.run_batch(stages);
    ASSERT_FALSE(barrier_violated.load()) << "rep " << rep;
  }
}

TEST(ThreadPool, RunBatchSkipsLaterStagesAfterException) {
  ThreadPool pool(4);
  std::atomic<int> s2_calls{0};
  auto s1 = [](std::size_t) { throw std::runtime_error("stage 1"); };
  auto s2 = [&](std::size_t) { ++s2_calls; };
  const ThreadPool::Stage stages[] = {{64, IndexFnRef(s1), 0, {}},
                                      {64, IndexFnRef(s2), 0, {}}};
  EXPECT_THROW(pool.run_batch(stages), std::runtime_error);
  EXPECT_EQ(s2_calls.load(), 0);
  // And the next batch runs normally.
  std::atomic<int> ok{0};
  auto s3 = [&](std::size_t) { ++ok; };
  const ThreadPool::Stage next[] = {{32, IndexFnRef(s3), 0, {}}};
  pool.run_batch(next);
  EXPECT_EQ(ok.load(), 32);
}

TEST(ThreadPool, RunBatchSkipsEmptyStages) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  auto task = [&](std::size_t) { ++calls; };
  const ThreadPool::Stage stages[] = {{0, IndexFnRef(task), 0, {}},
                                      {16, IndexFnRef(task), 0, {}},
                                      {0, IndexFnRef(task), 0, {}}};
  pool.run_batch(stages);
  EXPECT_EQ(calls.load(), 16);
}

TEST(ThreadPool, WeightedDispatchCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 4u, 13u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 300;
    std::vector<double> cost(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      cost[i] = static_cast<double>(1 + (i * 37) % 11);
    }
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for_weighted(cost, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, ExplicitPlanStageCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  const std::vector<double> cost(kN, 1.0);
  const auto plan = balanced_chunks(cost, 4 * pool.size());
  std::vector<std::atomic<int>> hits(kN);
  auto task = [&](std::size_t i) { ++hits[i]; };
  const ThreadPool::Stage stage{kN, IndexFnRef(task), 0, plan};
  pool.run_batch({&stage, 1});
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, WakeThrottleStillDrainsEveryBatch) {
  // Hundreds of tiny back-to-back batches drive the adaptive wake
  // throttle into its skip regime (workers contribute nothing to a
  // drained-by-caller batch); correctness must not depend on whether a
  // wake was sent, and the periodic probe must not lose items either.
  ThreadPool pool(8);
  std::atomic<std::size_t> total{0};
  constexpr int kBatches = 500;
  for (int job = 0; job < kBatches; ++job) {
    pool.parallel_for(0, 7, [&](std::size_t i) { total += i; });
  }
  EXPECT_EQ(total.load(), static_cast<std::size_t>(kBatches) * 21u);
}

}  // namespace
}  // namespace avcp
