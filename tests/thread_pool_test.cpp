#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace avcp {
namespace {

TEST(ThreadPool, SizeCountsCallerAsALane) {
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(4).size(), 4u);
  // 0 = hardware concurrency, which is at least one lane.
  EXPECT_GE(ThreadPool(0).size(), 1u);
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 0, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 7, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleItemRunsInline) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  std::size_t seen = ~std::size_t{0};
  pool.parallel_for(3, 4, [&](std::size_t i) {
    ran_on = std::this_thread::get_id();
    seen = i;
  });
  EXPECT_EQ(ran_on, caller);
  EXPECT_EQ(seen, 3u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(0, kN, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, IndexOwnedSlotsNeedNoSynchronisation) {
  // The determinism protocol: each task writes only its own slot; the
  // caller reduces in index order after the join.
  ThreadPool pool(8);
  constexpr std::size_t kN = 512;
  std::vector<double> out(kN, 0.0);
  pool.parallel_for(0, kN, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  double sum = 0.0;
  for (const double v : out) sum += v;
  EXPECT_DOUBLE_EQ(sum, 0.5 * (kN - 1) * kN / 2.0);
}

TEST(ThreadPool, UsesMultipleThreadsWhenAvailable) {
  ThreadPool pool(4);
  if (pool.size() < 2) GTEST_SKIP() << "single-lane pool";
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<int> arrived{0};
  // Each task spins briefly so the range cannot be drained by one lane
  // before the others wake; recording thread ids proves real fan-out.
  pool.parallel_for(0, 64, [&](std::size_t) {
    ++arrived;
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
    while (std::chrono::steady_clock::now() < until) {
    }
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(arrived.load(), 64);
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("task 37");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ExceptionCancelsRemainingWork) {
  ThreadPool pool(1);  // inline: deterministic claim order 0, 1, 2, ...
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.parallel_for(0, 1000,
                                 [&](std::size_t i) {
                                   ++calls;
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  EXPECT_EQ(calls.load(), 6);  // 0..5 ran, the rest were cancelled
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 8, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPool, ManySmallJobsBackToBack) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.parallel_for(0, 5, [&](std::size_t i) { total += i; });
  }
  EXPECT_EQ(total.load(), 200u * (0 + 1 + 2 + 3 + 4));
}

}  // namespace
}  // namespace avcp
