// Unit tests for the Beta-prior trust layer: the ratchet that the EWMA
// reputation lacks, the collusion channel, permanent distrust, parameter
// validation, and checkpoint round-trips.
#include <gtest/gtest.h>

#include <vector>

#include "byzantine/reputation.h"
#include "byzantine/trust.h"
#include "common/contracts.h"
#include "common/serial.h"

namespace avcp::byzantine {
namespace {

TrustParams enabled_params() {
  TrustParams params;
  params.enabled = true;
  return params;
}

TEST(TrustTracker, DisabledTrackerIsInert) {
  TrustTracker tracker(2, 4);  // default params: disabled
  ASSERT_FALSE(tracker.enabled());
  const double prior = tracker.trust(0, 0);
  for (std::size_t t = 0; t < 10; ++t) {
    tracker.flag(0, 0, 100.0);
    tracker.flag_collusion(1, 2, 100.0);
    tracker.end_round();
  }
  EXPECT_EQ(tracker.trust(0, 0), prior);
  EXPECT_FALSE(tracker.distrusted(0, 0));
  EXPECT_EQ(tracker.total_distrusted(), 0u);
  EXPECT_EQ(tracker.rounds(), 0u);  // disabled end_round folds nothing
}

TEST(TrustTracker, ValidationRejectsBadKnobs) {
  const auto reject = [](auto&& mutate) {
    TrustParams params = enabled_params();
    mutate(params);
    EXPECT_THROW(params.validate(), ContractViolation);
    EXPECT_THROW(TrustTracker(1, 2, params), ContractViolation);
  };
  reject([](auto& p) { p.prior_good = 0.0; });
  reject([](auto& p) { p.prior_bad = 0.0; });
  reject([](auto& p) { p.clean_gain = -1.0; });
  reject([](auto& p) { p.good_cap = p.prior_good - 1.0; });
  reject([](auto& p) { p.flag_gain = -0.5; });
  reject([](auto& p) { p.collusion_gain = -0.5; });
  reject([](auto& p) { p.flag_cap = 0.0; });
  reject([](auto& p) { p.trust_floor = 1.0; });
  reject([](auto& p) { p.trust_floor = -0.1; });
}

TEST(TrustTracker, CleanRoundsSaturateGoodwillAtTheCap) {
  TrustParams params = enabled_params();
  params.prior_good = 4.0;
  params.good_cap = 10.0;
  params.clean_gain = 1.0;
  TrustTracker tracker(1, 1, params);
  double last = tracker.trust(0, 0);
  for (std::size_t t = 0; t < 6; ++t) {
    tracker.end_round();
    EXPECT_GE(tracker.trust(0, 0), last);
    last = tracker.trust(0, 0);
  }
  // good has hit the cap; further clean rounds change nothing.
  const double capped = tracker.trust(0, 0);
  EXPECT_EQ(capped, 10.0 / (10.0 + params.prior_bad));
  for (std::size_t t = 0; t < 20; ++t) tracker.end_round();
  EXPECT_EQ(tracker.trust(0, 0), capped);
  EXPECT_FALSE(tracker.distrusted(0, 0));
}

TEST(TrustTracker, RatchetCatchesTheCycleTheEwmaForgets) {
  // The motivating contrast for the whole layer: the same build-then-defect
  // evidence stream — 4-round bursts of the zero-upload penalty (3.0)
  // separated by 20 clean rounds, paced to sit under the EWMA quarantine
  // threshold — is forgotten by ReputationTracker every cycle but ratchets
  // TrustTracker's posterior to distrust.
  ReputationTracker ewma(1, 1);  // defaults: decay 0.8, threshold 2.0
  TrustTracker trust(1, 1, enabled_params());
  std::size_t round = 0;
  std::vector<double> post_build_trust;
  for (std::size_t cycle = 0; cycle < 6; ++cycle) {
    for (std::size_t t = 0; t < 4; ++t) {
      ewma.observe(0, 0, 3.0);
      trust.flag(0, 0, 3.0);
      ewma.end_round(round++);
      trust.end_round();
    }
    for (std::size_t t = 0; t < 20; ++t) {
      ewma.end_round(round++);
      trust.end_round();
    }
    post_build_trust.push_back(trust.trust(0, 0));
  }
  EXPECT_EQ(ewma.total_quarantined(), 0u);  // the EWMA never fires
  for (std::size_t i = 1; i < post_build_trust.size(); ++i) {
    EXPECT_LT(post_build_trust[i], post_build_trust[i - 1]) << "cycle " << i;
  }
  EXPECT_TRUE(trust.distrusted(0, 0));
  EXPECT_EQ(trust.total_distrusted(), 1u);
}

TEST(TrustTracker, CollusionChannelRatchetsFaster) {
  TrustParams params = enabled_params();  // collusion_gain 2 vs flag_gain 1
  TrustTracker solo(1, 1, params);
  TrustTracker cohort(1, 1, params);
  for (std::size_t t = 0; t < 5; ++t) {
    solo.flag(0, 0, 2.0);
    cohort.flag_collusion(0, 0, 2.0);
    solo.end_round();
    cohort.end_round();
  }
  EXPECT_LT(cohort.trust(0, 0), solo.trust(0, 0));
}

TEST(TrustTracker, FlagCapBoundsOneRoundsEvidence) {
  TrustParams params = enabled_params();
  params.flag_cap = 6.0;
  TrustTracker capped(1, 1, params);
  TrustTracker exact(1, 1, params);
  capped.flag(0, 0, 1000.0);
  exact.flag(0, 0, 6.0);
  capped.end_round();
  exact.end_round();
  EXPECT_EQ(capped.trust(0, 0), exact.trust(0, 0));
}

TEST(TrustTracker, DistrustIsPermanentOnceBadExceedsTheCap) {
  TrustParams params = enabled_params();
  params.good_cap = 20.0;
  params.trust_floor = 0.5;
  TrustTracker tracker(1, 1, params);
  // Pump bad past good_cap: even a goodwill balance saturated at the cap
  // leaves the posterior mean <= cap / (cap + bad) < floor forever.
  for (std::size_t t = 0; t < 5; ++t) {
    tracker.flag(0, 0, 6.0);
    tracker.end_round();
  }
  ASSERT_TRUE(tracker.distrusted(0, 0));
  for (std::size_t t = 0; t < 500; ++t) tracker.end_round();
  EXPECT_TRUE(tracker.distrusted(0, 0));
}

TEST(TrustTracker, SaveLoadRoundTripsBitwise) {
  TrustParams params = enabled_params();
  TrustTracker tracker(2, 3, params);
  tracker.flag(0, 1, 2.5);
  tracker.flag_collusion(1, 2, 4.0);
  tracker.end_round();
  tracker.flag(0, 1, 1.0);  // pending evidence rides along too

  Serializer snapshot;
  tracker.save_state(snapshot);
  TrustTracker restored(2, 3, params);
  Deserializer d(snapshot.bytes());
  restored.load_state(d);
  EXPECT_TRUE(d.exhausted());
  EXPECT_EQ(restored.rounds(), tracker.rounds());
  tracker.end_round();
  restored.end_round();
  for (core::RegionId i = 0; i < 2; ++i) {
    for (std::size_t v = 0; v < 3; ++v) {
      EXPECT_EQ(restored.trust(i, v), tracker.trust(i, v));
      EXPECT_EQ(restored.distrusted(i, v), tracker.distrusted(i, v));
    }
  }
}

TEST(TrustTracker, LoadRejectsMismatchedFleetShape) {
  TrustTracker small(1, 4, enabled_params());
  Serializer snapshot;
  small.save_state(snapshot);
  TrustTracker wide(1, 5, enabled_params());
  Deserializer d(snapshot.bytes());
  EXPECT_THROW(wide.load_state(d), SerialError);
}

}  // namespace
}  // namespace avcp::byzantine
