#include "common/geo.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace avcp {
namespace {

TEST(Geo, PlanarDistance) {
  EXPECT_DOUBLE_EQ(distance_m(PointM{0.0, 0.0}, PointM{3.0, 4.0}), 5.0);
}

TEST(GeoBox, FutianDimensionsAreCityScale) {
  const GeoBox box = GeoBox::futian();
  // 0.12 deg of longitude at ~22.5N is ~12.3 km; 0.09 deg latitude ~10 km.
  EXPECT_NEAR(box.width_m(), 12300.0, 300.0);
  EXPECT_NEAR(box.height_m(), 10000.0, 100.0);
}

TEST(GeoBox, CornersProjectToExtent) {
  const GeoBox box = GeoBox::futian();
  const PointM sw = box.to_meters(box.south_west());
  EXPECT_NEAR(sw.x, 0.0, 1e-9);
  EXPECT_NEAR(sw.y, 0.0, 1e-9);
  const PointM ne = box.to_meters(box.north_east());
  EXPECT_NEAR(ne.x, box.width_m(), 1e-6);
  EXPECT_NEAR(ne.y, box.height_m(), 1e-6);
}

TEST(GeoBox, ProjectionRoundTrips) {
  const GeoBox box = GeoBox::futian();
  const LatLon p{22.55, 114.02};
  const LatLon back = box.to_latlon(box.to_meters(p));
  EXPECT_NEAR(back.lat, p.lat, 1e-12);
  EXPECT_NEAR(back.lon, p.lon, 1e-12);
}

TEST(GeoBox, ContainsIsInclusive) {
  const GeoBox box = GeoBox::futian();
  EXPECT_TRUE(box.contains(box.south_west()));
  EXPECT_TRUE(box.contains(box.north_east()));
  EXPECT_TRUE(box.contains(LatLon{22.55, 114.0}));
  EXPECT_FALSE(box.contains(LatLon{22.4, 114.0}));
  EXPECT_FALSE(box.contains(LatLon{22.55, 115.0}));
}

TEST(GeoBox, RejectsInvertedCorners) {
  EXPECT_THROW(GeoBox(LatLon{23.0, 114.0}, LatLon{22.0, 115.0}),
               ContractViolation);
  EXPECT_THROW(GeoBox(LatLon{22.0, 115.0}, LatLon{23.0, 114.0}),
               ContractViolation);
}

TEST(GeoBox, PlanarDistanceMatchesHaversineAtCityScale) {
  const GeoBox box = GeoBox::futian();
  const LatLon a{22.52, 114.00};
  const LatLon b{22.57, 114.08};
  const double planar = distance_m(box.to_meters(a), box.to_meters(b));
  const double sphere = haversine_m(a, b);
  // Equirectangular error across ~10 km should be far below 0.1%.
  EXPECT_NEAR(planar, sphere, sphere * 0.001);
}

TEST(Geo, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km everywhere.
  const double d = haversine_m(LatLon{0.0, 0.0}, LatLon{1.0, 0.0});
  EXPECT_NEAR(d, 111195.0, 100.0);
}

TEST(Geo, HaversineZeroForSamePoint) {
  EXPECT_DOUBLE_EQ(haversine_m(LatLon{22.5, 114.0}, LatLon{22.5, 114.0}), 0.0);
}

}  // namespace
}  // namespace avcp
