// The resume-equivalence contract: for every stateful engine, restoring a
// snapshot taken after k rounds and running N more is bit-identical to
// running k+N rounds straight through — across seeds, thread counts, and
// both data-plane kernels. Plus the engines' rejection of snapshots from a
// differently-configured run (typed SerialError, never silent adoption).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/serial.h"
#include "core/fds.h"
#include "faults/degraded_controller.h"
#include "faults/fault_model.h"
#include "sim/agent_sim.h"
#include "sim/trace_replay.h"
#include "system/system.h"
#include "test_support.h"

namespace avcp {
namespace {

using core::testing::make_chain_game;

constexpr std::size_t kWarmRounds = 4;   // rounds before the snapshot
constexpr std::size_t kResumeRounds = 4; // rounds after it

// ---------------------------------------------------------------------------
// CooperativePerceptionSystem
// ---------------------------------------------------------------------------

system::SystemParams system_params(std::uint64_t seed, std::size_t threads,
                                   perception::DataPlaneMode mode) {
  system::SystemParams params;
  params.vehicles_per_region = 24;
  params.cells_per_region = 2;
  params.seed = seed;
  params.num_threads = threads;
  params.data_plane_mode = mode;
  return params;
}

/// Everything observable that the next round's evolution depends on.
struct SystemObs {
  std::vector<std::vector<double>> p;
  std::vector<double> x;
  faults::FaultCounters counters;
  std::size_t round = 0;
};

SystemObs observe(const system::CooperativePerceptionSystem& plant) {
  return SystemObs{plant.empirical_state().p, plant.current_x(),
                   plant.fault_counters(), plant.round()};
}

void expect_equal(const SystemObs& a, const SystemObs& b) {
  EXPECT_EQ(a.p, b.p);          // exact: bit-identical, not approximately
  EXPECT_EQ(a.x, b.x);
  EXPECT_TRUE(a.counters == b.counters);
  EXPECT_EQ(a.round, b.round);
}

TEST(SystemResume, BitIdenticalAcrossSeedsThreadsAndKernels) {
  const auto game = make_chain_game(3, 3.0, 4.0);
  core::DesiredFields fields(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.6, 1.0});
  }
  faults::FaultParams fparams;
  fparams.upload_loss_rate = 0.1;
  fparams.seed = 5;
  const faults::FaultModel faults(fparams);

  for (const std::uint64_t seed : {11ull, 77ull}) {
    for (const std::size_t threads : {1ul, 2ul, 8ul}) {
      for (const auto mode : {perception::DataPlaneMode::kPairwiseExact,
                              perception::DataPlaneMode::kClassAggregated}) {
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " threads=" << threads << " mode="
                     << static_cast<int>(mode));
        const auto params = system_params(seed, threads, mode);
        core::FdsController controller(game, fields);

        system::CooperativePerceptionSystem straight(game, params, &faults);
        straight.init_from(game.uniform_state());
        for (std::size_t t = 0; t < kWarmRounds; ++t) {
          straight.run_round(controller);
        }
        Serializer snapshot;
        straight.save_state(snapshot);
        for (std::size_t t = 0; t < kResumeRounds; ++t) {
          straight.run_round(controller);
        }

        // "New process": fresh plant, same wiring; restore instead of init.
        core::FdsController controller2(game, fields);
        system::CooperativePerceptionSystem resumed(game, params, &faults);
        Deserializer d(snapshot.bytes());
        resumed.load_state(d);
        EXPECT_TRUE(d.exhausted());
        EXPECT_EQ(resumed.round(), kWarmRounds);
        for (std::size_t t = 0; t < kResumeRounds; ++t) {
          resumed.run_round(controller2);
        }
        expect_equal(observe(straight), observe(resumed));
      }
    }
  }
}

TEST(SystemResume, AdaptiveAdversaryAndTrustStateRideAlong) {
  // Resume mid-attack: the snapshot captures the report pipeline's
  // reputation + trust posteriors AND every adaptive attacker's state
  // machine, so a restored plant re-enacts the same defect bursts and
  // reaches the same exclusion set as the straight run.
  const auto game = make_chain_game(3, 1.5, 1.5);
  core::DesiredFields fields(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.6, 1.0});
  }
  auto params = system_params(31, 2, perception::DataPlaneMode::kPairwiseExact);
  byzantine::AdaptiveAdversaryParams aparams;
  aparams.attacker_fraction = 0.3;
  aparams.policy = byzantine::AdaptivePolicy::kBuildThenDefect;
  aparams.build_rounds = 2;
  aparams.defect_rounds = 3;
  aparams.seed = 17;
  byzantine::PipelineOptions popts;
  popts.aggregator.mode = byzantine::AggregationMode::kMedian;
  popts.aggregator.reject_outliers = true;
  popts.trust.enabled = true;

  const std::size_t warm = 8;  // inside the fleet's staggered defect bursts
  byzantine::AdaptiveAdversary adv_a(3, params.vehicles_per_region, aparams);
  byzantine::ReportPipeline pipe_a(3, 8, params.vehicles_per_region, popts);
  core::FdsController ctrl_a(game, fields);
  system::CooperativePerceptionSystem straight(game, params, nullptr, &pipe_a,
                                               &adv_a);
  straight.init_from(game.uniform_state());
  for (std::size_t t = 0; t < warm; ++t) straight.run_round(ctrl_a);
  Serializer snapshot;
  straight.save_state(snapshot);
  system::RoundReport last_a;
  for (std::size_t t = 0; t < kResumeRounds; ++t) {
    last_a = straight.run_round(ctrl_a);
  }

  byzantine::AdaptiveAdversary adv_b(3, params.vehicles_per_region, aparams);
  byzantine::ReportPipeline pipe_b(3, 8, params.vehicles_per_region, popts);
  core::FdsController ctrl_b(game, fields);
  system::CooperativePerceptionSystem resumed(game, params, nullptr, &pipe_b,
                                              &adv_b);
  Deserializer d(snapshot.bytes());
  resumed.load_state(d);
  EXPECT_TRUE(d.exhausted());
  EXPECT_EQ(resumed.round(), warm);
  EXPECT_EQ(adv_b.rounds(), warm);
  system::RoundReport last_b;
  for (std::size_t t = 0; t < kResumeRounds; ++t) {
    last_b = resumed.run_round(ctrl_b);
  }

  expect_equal(observe(straight), observe(resumed));
  EXPECT_EQ(last_a.x, last_b.x);
  EXPECT_EQ(last_a.byzantine.observed.p, last_b.byzantine.observed.p);
  EXPECT_EQ(last_a.byzantine.total_quarantined,
            last_b.byzantine.total_quarantined);
  EXPECT_EQ(last_a.byzantine.total_distrusted,
            last_b.byzantine.total_distrusted);
  EXPECT_EQ(last_a.byzantine.adaptive_dormant,
            last_b.byzantine.adaptive_dormant);
  for (core::RegionId i = 0; i < 3; ++i) {
    for (std::size_t v = 0; v < params.vehicles_per_region; ++v) {
      EXPECT_EQ(pipe_a.excluded(i, v), pipe_b.excluded(i, v));
      EXPECT_EQ(pipe_a.reputation().score(i, v),
                pipe_b.reputation().score(i, v));
      EXPECT_EQ(pipe_a.trust().trust(i, v), pipe_b.trust().trust(i, v));
    }
  }
}

TEST(SystemResume, AdaptiveWiringMismatchRejected) {
  // A snapshot taken with the closed-loop adversary attached must not be
  // silently adopted by a plant wired without it (and vice versa).
  const auto game = make_chain_game(3, 3.0, 4.0);
  const auto params =
      system_params(11, 1, perception::DataPlaneMode::kPairwiseExact);
  byzantine::AdaptiveAdversaryParams aparams;
  aparams.attacker_fraction = 0.3;
  aparams.seed = 17;
  byzantine::AdaptiveAdversary adv(3, params.vehicles_per_region, aparams);
  byzantine::PipelineOptions popts;
  byzantine::ReportPipeline pipe(3, 8, params.vehicles_per_region, popts);
  system::CooperativePerceptionSystem with(game, params, nullptr, &pipe, &adv);
  with.init_from(game.uniform_state());
  Serializer snapshot;
  with.save_state(snapshot);

  system::CooperativePerceptionSystem without(game, params, nullptr);
  Deserializer d(snapshot.bytes());
  EXPECT_THROW(without.load_state(d), SerialError);
}

TEST(SystemResume, DegradedControllerStateRidesAlong) {
  // The stateful cloud wrapper (held reports, ages, counters) must restore
  // with the plant: a resumed pair emits the same ratios as the straight
  // run even while regions are blind.
  const auto game = make_chain_game(3, 3.0, 4.0);
  core::DesiredFields fields(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.6, 1.0});
  }
  faults::FaultParams fparams;
  fparams.report_loss_rate = 0.4;
  fparams.upload_loss_rate = 0.1;
  fparams.seed = 9;
  const faults::FaultModel faults(fparams);
  const auto params =
      system_params(123, 2, perception::DataPlaneMode::kPairwiseExact);

  core::FdsController inner_a(game, fields);
  faults::DegradedController ctl_a(inner_a, faults);
  system::CooperativePerceptionSystem straight(game, params, &faults);
  straight.init_from(game.uniform_state());
  for (std::size_t t = 0; t < kWarmRounds; ++t) straight.run_round(ctl_a);
  Serializer snapshot;
  straight.save_state(snapshot);
  ctl_a.save_state(snapshot);
  for (std::size_t t = 0; t < kResumeRounds; ++t) straight.run_round(ctl_a);

  core::FdsController inner_b(game, fields);
  faults::DegradedController ctl_b(inner_b, faults);
  system::CooperativePerceptionSystem resumed(game, params, &faults);
  Deserializer d(snapshot.bytes());
  resumed.load_state(d);
  ctl_b.load_state(d);
  EXPECT_TRUE(d.exhausted());
  for (std::size_t t = 0; t < kResumeRounds; ++t) resumed.run_round(ctl_b);

  expect_equal(observe(straight), observe(resumed));
  EXPECT_EQ(ctl_a.round(), ctl_b.round());
  EXPECT_TRUE(ctl_a.counters() == ctl_b.counters());
}

TEST(SystemResume, MismatchedConfigurationRejected) {
  const auto game = make_chain_game(3, 3.0, 4.0);
  const auto params =
      system_params(11, 1, perception::DataPlaneMode::kPairwiseExact);
  system::CooperativePerceptionSystem plant(game, params, nullptr);
  plant.init_from(game.uniform_state());
  Serializer snapshot;
  plant.save_state(snapshot);

  {
    // Different fleet size.
    auto other = params;
    other.vehicles_per_region = 30;
    system::CooperativePerceptionSystem target(game, other, nullptr);
    Deserializer d(snapshot.bytes());
    EXPECT_THROW(target.load_state(d), SerialError);
  }
  {
    // Different data-plane kernel.
    auto other = params;
    other.data_plane_mode = perception::DataPlaneMode::kClassAggregated;
    system::CooperativePerceptionSystem target(game, other, nullptr);
    Deserializer d(snapshot.bytes());
    EXPECT_THROW(target.load_state(d), SerialError);
  }
  {
    // Different region count.
    const auto small = make_chain_game(2, 3.0, 4.0);
    system::CooperativePerceptionSystem target(small, params, nullptr);
    Deserializer d(snapshot.bytes());
    EXPECT_THROW(target.load_state(d), SerialError);
  }
  {
    // Truncated payload.
    std::vector<std::byte> torn(snapshot.bytes().begin(),
                                snapshot.bytes().end() - 9);
    system::CooperativePerceptionSystem target(game, params, nullptr);
    Deserializer d(torn);
    EXPECT_THROW(target.load_state(d), SerialError);
  }
}

// ---------------------------------------------------------------------------
// AgentBasedSim
// ---------------------------------------------------------------------------

sim::AgentSimParams agent_params(std::uint64_t seed, std::size_t threads,
                                 bool measured,
                                 perception::DataPlaneMode mode) {
  sim::AgentSimParams params;
  params.vehicles_per_region = 60;
  params.seed = seed;
  params.num_threads = threads;
  params.measured_fitness = measured;
  params.exchange.mode = mode;
  params.exchange.fleet_size = 24;
  return params;
}

TEST(AgentSimResume, BitIdenticalAcrossSeedsThreadsAndKernels) {
  const auto game = make_chain_game(3);
  const std::vector<double> x(game.num_regions(), 0.5);

  struct Config {
    bool measured;
    perception::DataPlaneMode mode;
  };
  const Config configs[] = {
      {false, perception::DataPlaneMode::kPairwiseExact},
      {true, perception::DataPlaneMode::kPairwiseExact},
      {true, perception::DataPlaneMode::kClassAggregated},
  };
  for (const std::uint64_t seed : {7ull, 301ull}) {
    for (const std::size_t threads : {1ul, 2ul, 8ul}) {
      for (const Config& config : configs) {
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " threads=" << threads
                     << " measured=" << config.measured << " mode="
                     << static_cast<int>(config.mode));
        const auto params =
            agent_params(seed, threads, config.measured, config.mode);

        sim::AgentBasedSim straight(game, params);
        straight.init_from(game.uniform_state());
        for (std::size_t t = 0; t < kWarmRounds; ++t) straight.step(x);
        Serializer snapshot;
        straight.save_state(snapshot);
        for (std::size_t t = 0; t < kResumeRounds; ++t) straight.step(x);

        sim::AgentBasedSim resumed(game, params);
        Deserializer d(snapshot.bytes());
        resumed.load_state(d);
        EXPECT_TRUE(d.exhausted());
        for (std::size_t t = 0; t < kResumeRounds; ++t) resumed.step(x);

        EXPECT_EQ(straight.empirical_state().p, resumed.empirical_state().p);
      }
    }
  }
}

TEST(AgentSimResume, MismatchedConfigurationRejected) {
  const auto game = make_chain_game(3);
  const auto params = agent_params(7, 1, false,
                                   perception::DataPlaneMode::kPairwiseExact);
  sim::AgentBasedSim source(game, params);
  source.init_from(game.uniform_state());
  Serializer snapshot;
  source.save_state(snapshot);

  auto other = params;
  other.seed = 8;
  sim::AgentBasedSim target(game, other);
  Deserializer d(snapshot.bytes());
  EXPECT_THROW(target.load_state(d), SerialError);
}

// ---------------------------------------------------------------------------
// TraceDrivenSim
// ---------------------------------------------------------------------------

/// A synthetic 6-round trace: 30 vehicles hopping between 6 segments
/// (two per region), drawn from a seeded Rng so presence is irregular.
std::vector<trace::GpsFix> synthetic_trace(std::size_t vehicles,
                                           std::size_t rounds,
                                           double round_s) {
  Rng rng(404);
  std::vector<trace::GpsFix> fixes;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t v = 0; v < vehicles; ++v) {
      if (rng.bernoulli(0.2)) continue;  // dormant this round
      for (int k = 0; k < 3; ++k) {
        trace::GpsFix fix{};
        fix.vehicle = static_cast<trace::VehicleId>(v);
        fix.time_s = (static_cast<double>(r) + 0.2 + 0.2 * k) * round_s;
        fix.segment = static_cast<std::size_t>(rng.uniform_int(0, 5));
        fixes.push_back(fix);
      }
    }
  }
  return fixes;
}

TEST(TraceReplayResume, BitIdenticalAcrossSeedsAndKernels) {
  const auto game = make_chain_game(3);
  const std::vector<cluster::RegionId> region_of = {0, 0, 1, 1, 2, 2};
  const std::size_t vehicles = 30;
  const double round_s = 100.0;
  const auto fixes = synthetic_trace(vehicles, 12, round_s);
  const std::vector<double> x(game.num_regions(), 0.5);

  struct Config {
    bool measured;
    perception::DataPlaneMode mode;
  };
  const Config configs[] = {
      {false, perception::DataPlaneMode::kPairwiseExact},
      {true, perception::DataPlaneMode::kPairwiseExact},
      {true, perception::DataPlaneMode::kClassAggregated},
  };
  for (const std::uint64_t seed : {21ull, 909ull}) {
    for (const Config& config : configs) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " measured=" << config.measured
                   << " mode=" << static_cast<int>(config.mode));
      sim::TraceReplayParams params;
      params.round_s = round_s;
      params.seed = seed;
      params.measure_data_plane = config.measured;
      params.exchange.mode = config.mode;
      params.exchange.fleet_size = 16;

      sim::TraceDrivenSim straight(game, fixes, region_of, vehicles,
                                   12 * round_s, params);
      straight.init_from(game.uniform_state());
      for (std::size_t t = 0; t < kWarmRounds; ++t) straight.step(x);
      Serializer snapshot;
      straight.save_state(snapshot);
      for (std::size_t t = 0; t < kResumeRounds; ++t) straight.step(x);

      sim::TraceDrivenSim resumed(game, fixes, region_of, vehicles,
                                  12 * round_s, params);
      Deserializer d(snapshot.bytes());
      resumed.load_state(d);
      EXPECT_TRUE(d.exhausted());
      EXPECT_EQ(resumed.current_round(), kWarmRounds);
      for (std::size_t t = 0; t < kResumeRounds; ++t) resumed.step(x);

      EXPECT_EQ(straight.empirical_state().p, resumed.empirical_state().p);
    }
  }
}

TEST(TraceReplayResume, MismatchedConfigurationRejected) {
  const auto game = make_chain_game(3);
  const std::vector<cluster::RegionId> region_of = {0, 0, 1, 1, 2, 2};
  const auto fixes = synthetic_trace(30, 6, 100.0);
  sim::TraceReplayParams params;
  params.round_s = 100.0;
  params.seed = 21;

  sim::TraceDrivenSim source(game, fixes, region_of, 30, 600.0, params);
  source.init_from(game.uniform_state());
  Serializer snapshot;
  source.save_state(snapshot);

  // Different vehicle count.
  sim::TraceDrivenSim target(game, fixes, region_of, 31, 600.0, params);
  Deserializer d(snapshot.bytes());
  EXPECT_THROW(target.load_state(d), SerialError);
}

}  // namespace
}  // namespace avcp
