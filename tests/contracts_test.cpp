#include "common/contracts.h"

#include <gtest/gtest.h>

#include <string>

namespace avcp {
namespace {

TEST(Contracts, ExpectPassesOnTrue) {
  EXPECT_NO_THROW(AVCP_EXPECT(1 + 1 == 2));
}

TEST(Contracts, ExpectThrowsOnFalse) {
  EXPECT_THROW(AVCP_EXPECT(1 + 1 == 3), ContractViolation);
}

TEST(Contracts, EnsureThrowsOnFalse) {
  EXPECT_THROW(AVCP_ENSURE(false), ContractViolation);
}

TEST(Contracts, MessageCarriesExpressionAndLocation) {
  try {
    AVCP_EXPECT(2 < 1);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 < 1"), std::string::npos);
    EXPECT_NE(msg.find("contracts_test.cpp"), std::string::npos);
    EXPECT_NE(msg.find("Expect"), std::string::npos);
  }
}

TEST(Contracts, EnsureMessageSaysEnsure) {
  try {
    AVCP_ENSURE(false);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("Ensure"), std::string::npos);
  }
}

TEST(Contracts, ViolationIsLogicError) {
  try {
    AVCP_EXPECT(false);
    FAIL() << "expected throw";
  } catch (const std::logic_error&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace avcp
