#include "core/rate_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/sensor_model.h"
#include "test_support.h"

namespace avcp::core {
namespace {

using testing::make_chain_game;
using testing::make_single_region_game;
using testing::random_simplex;

TEST(AffineRate, EvaluationAndRestPoint) {
  const AffineRate r{-2.0, 1.0};
  EXPECT_DOUBLE_EQ(r(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r(0.5), 0.0);
  EXPECT_DOUBLE_EQ(r(1.0), -1.0);
  EXPECT_DOUBLE_EQ(r.rest_point(), 0.5);
}

TEST(ClassifyCase, AllFourBranches) {
  // Case 1: positive at both ends.
  EXPECT_EQ(classify_case({1.0, 0.5}).kind, CaseKind::kConvergeOne);
  // Case 2: negative at both ends.
  EXPECT_EQ(classify_case({-1.0, -0.5}).kind, CaseKind::kConvergeZero);
  // Case 3: s(0) < 0 < s(1), increasing advantage, unstable interior point.
  const auto unstable = classify_case({2.0, -0.5});
  EXPECT_EQ(unstable.kind, CaseKind::kUnstableInterior);
  EXPECT_DOUBLE_EQ(unstable.rest_point, 0.25);
  // Case 4: s(0) > 0 > s(1), decreasing advantage, stable ESS.
  const auto stable = classify_case({-2.0, 0.5});
  EXPECT_EQ(stable.kind, CaseKind::kStableInterior);
  EXPECT_DOUBLE_EQ(stable.rest_point, 0.25);
  // Neutral: flat zero.
  EXPECT_EQ(classify_case({0.0, 0.0}).kind, CaseKind::kNeutral);
}

TEST(ClassifyCase, LimitsFollowFlow) {
  const CaseInfo one = classify_case({1.0, 0.5});
  EXPECT_DOUBLE_EQ(one.limit(0.3), 1.0);
  const CaseInfo zero = classify_case({-1.0, -0.5});
  EXPECT_DOUBLE_EQ(zero.limit(0.3), 0.0);
  const CaseInfo unstable = classify_case({2.0, -0.5});  // rest point 0.25
  EXPECT_DOUBLE_EQ(unstable.limit(0.3), 1.0);
  EXPECT_DOUBLE_EQ(unstable.limit(0.2), 0.0);
  const CaseInfo stable = classify_case({-2.0, 0.5});  // ESS 0.25
  EXPECT_DOUBLE_EQ(stable.limit(0.9), 0.25);
}

TEST(GrowthRateAt, MatchesDirectFitnessGapAtCurrentP) {
  // Evaluating at the *current* p must reproduce q_k - qbar exactly.
  const auto game = make_single_region_game();
  Rng rng(5);
  const auto p = random_simplex(rng, 8);
  const GameState state = game.broadcast_state(p);
  const std::vector<double> x = {0.6};
  for (DecisionId k = 0; k < 8; ++k) {
    const double direct = game.fitness(state, x, 0, k) -
                          game.average_fitness(state, x, 0);
    const double probed = growth_rate_at(game, state, x, 0, k, p[k]);
    EXPECT_NEAR(probed, direct, 1e-9) << "k=" << k;
  }
}

TEST(GrowthRateAt, VanishesAtPureState) {
  // At p_new = 1 the decision IS the population, so q_k = qbar.
  const auto game = make_single_region_game();
  Rng rng(8);
  const auto p = random_simplex(rng, 8);
  const GameState state = game.broadcast_state(p);
  const std::vector<double> x = {0.4};
  for (DecisionId k = 0; k < 8; ++k) {
    EXPECT_NEAR(growth_rate_at(game, state, x, 0, k, 1.0), 0.0, 1e-9);
  }
}

TEST(GrowthRateAt, HandlesPureStateRedistribution) {
  // Current p_k = 1: the probe must fall back to uniform redistribution
  // without dividing by zero.
  const auto game = make_single_region_game();
  std::vector<double> p(8, 0.0);
  p[0] = 1.0;
  const GameState state = game.broadcast_state(p);
  const std::vector<double> x = {0.5};
  const double r = growth_rate_at(game, state, x, 0, 0, 0.0);
  EXPECT_TRUE(std::isfinite(r));
}

TEST(AdvantageLine, ReconstructsTheExactQuadraticRate) {
  // The true rate along the rescaling path is r(p) = (1-p) s(p) with s the
  // fitted affine line — the factorisation must hold at arbitrary p.
  const auto game = make_single_region_game();
  Rng rng(6);
  const auto p = random_simplex(rng, 8);
  const GameState state = game.broadcast_state(p);
  const std::vector<double> x = {0.4};
  for (DecisionId k = 0; k < 8; ++k) {
    const AffineRate s = affine_rate(game, state, x, 0, k);
    for (const double probe : {0.0, 0.2, 0.35, 0.5, 0.8, 0.97}) {
      const double rate = growth_rate_at(game, state, x, 0, k, probe);
      EXPECT_NEAR(rate, (1.0 - probe) * s(probe), 1e-9)
          << "k=" << k << " p=" << probe;
    }
  }
}

TEST(AdvantageLine, TwoDecisionGameAnalyticUnstablePoint) {
  // One sensor -> two decisions (share / don't). With f = [1, 0] and
  // g = [1, 0]: q_share = beta*x*gamma*p - 1, q_none = 0, so the advantage
  // line is s(p) = beta*x*gamma*p - 1 with an unstable root at
  // p* = 1 / (beta*x*gamma).
  GameConfig config;
  config.lattice = DecisionLattice(1);
  config.utility = {1.0, 0.0};
  config.privacy = {1.0, 0.0};
  RegionSpec spec;
  spec.beta = 2.0;
  spec.gamma_self = 1.0;
  const MultiRegionGame game(std::move(config), {spec});

  const std::vector<double> x = {0.8};
  const GameState state = game.broadcast_state(std::vector<double>{0.4, 0.6});
  const AffineRate s = affine_rate(game, state, x, 0, 0);
  EXPECT_NEAR(s.alpha1, 2.0 * 0.8, 1e-9);
  EXPECT_NEAR(s.alpha2, -1.0, 1e-9);
  const CaseInfo info = classify_case(s);
  EXPECT_EQ(info.kind, CaseKind::kUnstableInterior);
  EXPECT_NEAR(info.rest_point, 1.0 / 1.6, 1e-9);

  // The true replicator confirms the separatrix: start below -> extinction,
  // start above -> fixation.
  {
    GameState below = game.broadcast_state(std::vector<double>{0.5, 0.5});
    GameState above = game.broadcast_state(std::vector<double>{0.75, 0.25});
    for (int t = 0; t < 2000; ++t) {
      game.replicator_step(below, x);
      game.replicator_step(above, x);
    }
    EXPECT_LT(below.p[0][0], 0.01);
    EXPECT_GT(above.p[0][0], 0.99);
  }
}

TEST(AdvantageLine, TwoDecisionGameAnalyticStableEss) {
  // Flip the signs: f = [0, 1] is impossible (P2 shares nothing), so build
  // the ESS from a *negative* advantage slope instead: give the share
  // decision decreasing returns via the strict access rule, where sharers
  // cannot read their own group. Then q_share = beta*x*gamma*(1-p)*0 ... —
  // simpler: craft the ESS with utility on the empty decision's *absence*:
  // use f = [1, 0], g = [g1, 0] and strict access. Sharers read only
  // smaller sharers (none), so q_share = -g1 < 0 = q_none: pure Case 2.
  GameConfig config;
  config.lattice = DecisionLattice(1);
  config.utility = {1.0, 0.0};
  config.privacy = {0.3, 0.0};
  config.access = AccessRule::kStrictSubset;
  RegionSpec spec;
  spec.beta = 2.0;
  spec.gamma_self = 1.0;
  const MultiRegionGame game(std::move(config), {spec});

  const std::vector<double> x = {1.0};
  const GameState state = game.broadcast_state(std::vector<double>{0.5, 0.5});
  const AffineRate s = affine_rate(game, state, x, 0, 1);
  // Decision 1 (share nothing) reads the sharers' data: s(p) for the
  // non-sharers is q_none - q_share = beta*(1-p)*... evaluated by probes;
  // we just require the classifier to see a Case-1 flow for the non-share
  // group at these parameters.
  const CaseInfo info = classify_case(s);
  EXPECT_EQ(info.kind, CaseKind::kConvergeOne);
}

TEST(RateFamily, ReproducesAffineRateAtAnyX) {
  // alpha1 / alpha2 must be exactly affine in the local ratio: check the
  // family prediction against a direct fit at interior x values.
  const auto game = make_chain_game(3);
  Rng rng(7);
  GameState state;
  for (int i = 0; i < 3; ++i) state.p.push_back(random_simplex(rng, 8));
  const std::vector<double> x = {0.2, 0.5, 0.8};

  for (RegionId i = 0; i < 3; ++i) {
    for (DecisionId k = 0; k < 8; ++k) {
      const RateFamily family = rate_family(game, state, x, i, k);
      for (const double xi : {0.0, 0.3, 0.7, 1.0}) {
        auto x_mod = x;
        x_mod[i] = xi;
        const AffineRate direct = affine_rate(game, state, x_mod, i, k);
        const AffineRate predicted = family.at(xi);
        EXPECT_NEAR(predicted.alpha1, direct.alpha1, 1e-9)
            << "i=" << i << " k=" << k << " x=" << xi;
        EXPECT_NEAR(predicted.alpha2, direct.alpha2, 1e-9)
            << "i=" << i << " k=" << k << " x=" << xi;
      }
    }
  }
}

TEST(RateFamily, SumAndRateAtPHelpers) {
  const RateFamily family{1.0, 2.0, -0.5, 0.25};
  const auto [sum_a, sum_b] = family.sum_affine();
  EXPECT_DOUBLE_EQ(sum_a, 2.25);
  EXPECT_DOUBLE_EQ(sum_b, 0.5);
  const auto [ra, rb] = family.rate_at_p_affine(0.4);
  // 0.4*alpha1(x) + alpha2(x) = 0.4*(1 + 2x) + (-0.5 + 0.25x)
  EXPECT_DOUBLE_EQ(ra, 0.4 * 2.0 + 0.25);
  EXPECT_DOUBLE_EQ(rb, 0.4 * 1.0 - 0.5);
}

// Property sweep: the case taxonomy is exact for the projected dynamics
// dp = eta * p (1-p) s(p) (one decision against a fixed-composition rest,
// the object Eqs. (6)-(10) classify). Simulating that flow with the *exact*
// growth rate must land on the classifier's predicted limit.
class CasePredictionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CasePredictionSweep, PredictedLimitMatchesProjectedDynamics) {
  Rng rng(GetParam());
  const double beta = rng.uniform(0.8, 3.0);
  const auto game = make_single_region_game(beta);
  const auto p0 = random_simplex(rng, 8);
  const GameState state = game.broadcast_state(p0);
  const std::vector<double> x = {rng.uniform()};
  const auto k = static_cast<DecisionId>(rng.uniform_int(0, 7));

  const AffineRate s = affine_rate(game, state, x, 0, k);
  const CaseInfo info = classify_case(s);
  if (info.kind == CaseKind::kNeutral) return;
  // Skip starts too close to an unstable separatrix and flows too weak to
  // settle within the simulated horizon.
  if (info.kind == CaseKind::kUnstableInterior &&
      std::abs(p0[k] - info.rest_point) < 0.02) {
    return;
  }
  if (std::max(std::abs(s(0.0)), std::abs(s(1.0))) < 0.02) return;

  double p = p0[k];
  constexpr double kEta = 0.2;
  for (int t = 0; t < 20000; ++t) {
    const double rate = growth_rate_at(game, state, x, 0, k, p);
    p = std::clamp(p + kEta * p * rate, 0.0, 1.0);
  }
  const double predicted = info.limit(p0[k]);
  EXPECT_NEAR(p, predicted, 0.03)
      << "k=" << k << " case=" << static_cast<int>(info.kind)
      << " s=(" << s.alpha1 << "," << s.alpha2 << ") p0=" << p0[k];
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CasePredictionSweep,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace avcp::core
