#include "core/game.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/contracts.h"
#include "common/rng.h"
#include "test_support.h"

namespace avcp::core {
namespace {

using testing::make_chain_game;
using testing::make_single_region_game;
using testing::random_simplex;

TEST(Game, RejectsMismatchedTables) {
  GameConfig config;
  config.lattice = DecisionLattice(3);
  config.utility = {1.0};  // wrong size
  config.privacy.assign(8, 0.0);
  EXPECT_THROW(MultiRegionGame(std::move(config), {RegionSpec{}}),
               ContractViolation);
}

TEST(Game, RejectsBadNeighborIndex) {
  GameConfig config;
  config.lattice = DecisionLattice(3);
  config.utility.assign(8, 1.0);
  config.privacy.assign(8, 0.0);
  RegionSpec spec;
  spec.neighbors.emplace_back(5, 1.0);  // region 5 doesn't exist
  EXPECT_THROW(MultiRegionGame(std::move(config), {spec}), ContractViolation);
}

TEST(Game, PooledUtilityOfFullShareIsPopulationAverage) {
  const auto game = make_single_region_game();
  Rng rng(3);
  const auto p = random_simplex(rng, 8);
  // Decision 0 (P1) accesses everyone: pooled = sum p_l f_l.
  double expected = 0.0;
  for (std::size_t l = 0; l < 8; ++l) {
    expected += p[l] * game.config().utility[l];
  }
  EXPECT_NEAR(game.pooled_utility(p, 0), expected, 1e-12);
}

TEST(Game, PooledUtilityOfNoShareIsZero) {
  const auto game = make_single_region_game();
  Rng rng(4);
  const auto p = random_simplex(rng, 8);
  // Decision 7 (P8) accesses only other P8 vehicles whose shared data is
  // empty: f_8 = 0, so pooled utility is 0.
  EXPECT_NEAR(game.pooled_utility(p, 7), 0.0, 1e-12);
}

TEST(Game, FitnessAtZeroRatioIsMinusPrivacy) {
  const auto game = make_single_region_game();
  const GameState state = game.uniform_state();
  const std::vector<double> x = {0.0};
  for (DecisionId k = 0; k < 8; ++k) {
    EXPECT_NEAR(game.fitness(state, x, 0, k), -game.config().privacy[k],
                1e-12);
  }
}

TEST(Game, FitnessHandComputedTwoGroups) {
  // Single region, beta = 2, gamma_ii = 1, x = 0.5. Population: 60% P1,
  // 40% P8. For decision P1 (accesses all):
  //   pooled = 0.6 * f1 + 0.4 * f8 = 0.6 * 1 + 0 = 0.6
  //   q = 2 * 0.5 * 1 * 0.6 - g1 = 0.6 - 1.0 = -0.4.
  const auto game = make_single_region_game(/*beta=*/2.0);
  std::vector<double> p(8, 0.0);
  p[0] = 0.6;
  p[7] = 0.4;
  const GameState state = game.broadcast_state(p);
  const std::vector<double> x = {0.5};
  EXPECT_NEAR(game.fitness(state, x, 0, 0), -0.4, 1e-12);
  // For P8: pooled = 0, q = -g8 = 0.
  EXPECT_NEAR(game.fitness(state, x, 0, 7), 0.0, 1e-12);
}

TEST(Game, InterRegionFitnessAddsNeighborPool) {
  // Two regions; region 0 neighbours region 1 with gamma = 0.5. Region 1 is
  // all P1 sharers, region 0 is all P8.
  GameConfig config;
  config.lattice = DecisionLattice(3);
  const auto tables = paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  std::vector<RegionSpec> regions(2);
  regions[0].beta = 1.0;
  regions[0].gamma_self = 1.0;
  regions[0].neighbors.emplace_back(1, 0.5);
  regions[1].beta = 1.0;
  regions[1].gamma_self = 1.0;
  const MultiRegionGame game(std::move(config), std::move(regions));

  GameState state;
  std::vector<double> all_p1(8, 0.0);
  all_p1[0] = 1.0;
  std::vector<double> all_p8(8, 0.0);
  all_p8[7] = 1.0;
  state.p = {all_p8, all_p1};

  const std::vector<double> x = {1.0, 1.0};
  // In region 0, a P1 vehicle reads: inner pool (all P8 -> 0) plus neighbour
  // pool (all P1 -> f1 = 1) * gamma 0.5 * x 1 = 0.5; minus g1 = 1.
  EXPECT_NEAR(game.fitness(state, x, 0, 0), 0.5 - 1.0, 1e-12);
  // A P8 vehicle in region 0 reads nothing: q = 0.
  EXPECT_NEAR(game.fitness(state, x, 0, 7), 0.0, 1e-12);
}

TEST(Game, AverageFitnessIsExpectation) {
  const auto game = make_single_region_game();
  Rng rng(9);
  const auto p = random_simplex(rng, 8);
  const GameState state = game.broadcast_state(p);
  const std::vector<double> x = {0.7};
  const auto q = game.region_fitness(state, x, 0);
  double expected = 0.0;
  for (std::size_t k = 0; k < 8; ++k) expected += p[k] * q[k];
  EXPECT_NEAR(game.average_fitness(state, x, 0), expected, 1e-12);
}

TEST(Game, ReplicatorPreservesSimplex) {
  const auto game = make_chain_game(3);
  Rng rng(11);
  GameState state;
  for (int i = 0; i < 3; ++i) state.p.push_back(random_simplex(rng, 8));
  const std::vector<double> x = {0.3, 0.6, 0.9};
  for (int t = 0; t < 50; ++t) {
    game.replicator_step(state, x);
    for (const auto& row : state.p) {
      check_distribution(row, 1e-9);
    }
  }
}

TEST(Game, ExtinctDecisionStaysExtinctWithoutMutation) {
  const auto game = make_single_region_game();
  std::vector<double> p(8, 0.0);
  p[0] = 0.5;
  p[6] = 0.5;
  GameState state = game.broadcast_state(p);
  const std::vector<double> x = {0.8};
  for (int t = 0; t < 30; ++t) {
    game.replicator_step(state, x);
    for (const DecisionId dead : {1, 2, 3, 4, 5, 7}) {
      EXPECT_EQ(state.p[0][dead], 0.0);
    }
  }
}

TEST(Game, MutationKeepsFloor) {
  const auto game = make_single_region_game(1.5, 2.0, 1.0, /*mutation=*/0.01);
  std::vector<double> p(8, 0.0);
  p[0] = 1.0;
  GameState state = game.broadcast_state(p);
  const std::vector<double> x = {0.8};
  game.replicator_step(state, x);
  for (DecisionId k = 0; k < 8; ++k) {
    EXPECT_GE(state.p[0][k], 0.01 / 8.0 - 1e-12);
  }
  check_distribution(state.p[0], 1e-9);
}

TEST(Game, ZeroRatioConvergesToNoSharing) {
  // With x = 0 the utility term vanishes and privacy cost alone drives the
  // dynamics: the no-share decision P8 (g = 0) must take over.
  const auto game = make_single_region_game();
  GameState state = game.uniform_state();
  const std::vector<double> x = {0.0};
  for (int t = 0; t < 400; ++t) game.replicator_step(state, x);
  EXPECT_GT(state.p[0][7], 0.95);
}

TEST(Game, FullRatioHighBetaConvergesToFullSharing) {
  // With x = 1 and a strong utility coefficient, sharing everything (P1)
  // dominates: it reads every group's data at modest extra privacy cost.
  const auto game = make_single_region_game(/*beta=*/4.0);
  GameState state = game.uniform_state();
  const std::vector<double> x = {1.0};
  for (int t = 0; t < 400; ++t) game.replicator_step(state, x);
  EXPECT_GT(state.p[0][0], 0.95);
}

TEST(Game, FixedPointIsStationary) {
  // A pure population at a strictly dominant decision does not move.
  const auto game = make_single_region_game(/*beta=*/4.0);
  std::vector<double> p(8, 0.0);
  p[0] = 1.0;
  GameState state = game.broadcast_state(p);
  const std::vector<double> x = {1.0};
  game.replicator_step(state, x);
  EXPECT_NEAR(state.p[0][0], 1.0, 1e-12);
}

TEST(Game, UniformStateIsUniform) {
  const auto game = make_chain_game(4);
  const GameState state = game.uniform_state();
  ASSERT_EQ(state.p.size(), 4u);
  for (const auto& row : state.p) {
    for (const double v : row) {
      EXPECT_DOUBLE_EQ(v, 1.0 / 8.0);
    }
  }
}

TEST(Game, BroadcastValidatesSimplex) {
  const auto game = make_single_region_game();
  std::vector<double> bad(8, 0.0);
  bad[0] = 0.7;  // sums to 0.7
  EXPECT_THROW(game.broadcast_state(bad), ContractViolation);
  bad[0] = -0.1;
  bad[1] = 1.1;
  EXPECT_THROW(game.broadcast_state(bad), ContractViolation);
}

TEST(Game, StrictAccessExcludesOwnGroup) {
  GameConfig config;
  config.lattice = DecisionLattice(3);
  const auto tables = paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.access = AccessRule::kStrictSubset;
  const MultiRegionGame game(std::move(config), {RegionSpec{}});

  // Entire population at P1: under the strict rule P1 vehicles cannot read
  // other P1 vehicles, so the pooled utility at decision 0 is 0.
  std::vector<double> p(8, 0.0);
  p[0] = 1.0;
  EXPECT_NEAR(game.pooled_utility(p, 0), 0.0, 1e-12);
}

// Replicator monotonicity sweep: a decision strictly fitter than the
// average must grow, strictly less fit must shrink (random states / ratios).
class ReplicatorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplicatorSweep, GrowthMatchesFitnessSign) {
  // Small step size keeps every growth factor positive, so the clamp and
  // renormalisation in replicator_step are inactive and the sign property
  // holds exactly.
  const auto game = make_single_region_game(1.5, /*eta=*/0.05);
  Rng rng(GetParam());
  auto p = random_simplex(rng, 8);
  GameState state = game.broadcast_state(p);
  const std::vector<double> x = {rng.uniform()};

  const auto q = game.region_fitness(state, x, 0);
  const double qbar = game.average_fitness(state, x, 0);
  GameState next = state;
  game.replicator_step(next, x);

  for (DecisionId k = 0; k < 8; ++k) {
    if (state.p[0][k] <= 1e-12) continue;
    const double diff = q[k] - qbar;
    if (diff > 1e-9) {
      EXPECT_GT(next.p[0][k], state.p[0][k]) << "k=" << k;
    } else if (diff < -1e-9) {
      EXPECT_LT(next.p[0][k], state.p[0][k]) << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStates, ReplicatorSweep,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace avcp::core
