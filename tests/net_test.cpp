// Unit contracts of the degraded-network transport primitives: LinkModel's
// pure-hash fate assignment and partition schedule, NetParams validation,
// and ExchangeChannel's retry/backoff/dedup/staleness protocol with its
// checkpoint round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/contracts.h"
#include "common/serial.h"
#include "net/exchange_channel.h"
#include "net/link_model.h"

namespace avcp::net {
namespace {

NetParams lossy_params() {
  NetParams p;
  p.drop_rate = 0.3;
  p.delay_rate = 0.25;
  p.max_delay_rounds = 3;
  p.duplicate_rate = 0.2;
  p.reorder_rate = 0.2;
  p.seed = 41;
  return p;
}

// ---------------------------------------------------------------------------
// LinkModel
// ---------------------------------------------------------------------------

TEST(LinkModel, FateIsPureAndSeedKeyed) {
  const LinkModel a(lossy_params());
  const LinkModel b(lossy_params());
  auto other = lossy_params();
  other.seed = 42;
  const LinkModel c(other);

  std::size_t differs = 0;
  for (std::size_t round = 0; round < 50; ++round) {
    for (std::uint32_t src = 0; src < 3; ++src) {
      const MessageFate fa = a.fate(round, src, (src + 1) % 3, round, 0);
      const MessageFate fb = b.fate(round, src, (src + 1) % 3, round, 0);
      // Pure hash: two models with identical params agree exactly.
      EXPECT_EQ(fa.kind, fb.kind);
      EXPECT_EQ(fa.delay_rounds, fb.delay_rounds);
      EXPECT_EQ(fa.duplicate, fb.duplicate);
      EXPECT_EQ(fa.duplicate_delay, fb.duplicate_delay);
      EXPECT_EQ(fa.reorder, fb.reorder);
      const MessageFate fc = c.fate(round, src, (src + 1) % 3, round, 0);
      differs += (fc.kind != fa.kind || fc.reorder != fa.reorder) ? 1 : 0;
    }
  }
  // A different seed is a different schedule.
  EXPECT_GT(differs, 0u);
}

TEST(LinkModel, FateExtremesAndDelayBounds) {
  NetParams always_drop;
  always_drop.drop_rate = 1.0;
  const LinkModel dropper(always_drop);
  NetParams always_delay;
  always_delay.delay_rate = 1.0;
  always_delay.max_delay_rounds = 4;
  const LinkModel delayer(always_delay);
  const LinkModel inert{NetParams{}};

  for (std::size_t round = 0; round < 40; ++round) {
    const MessageFate fd = dropper.fate(round, 0, 1, round, 0);
    EXPECT_EQ(fd.kind, MessageFate::Kind::kDrop);
    // A dropped message neither duplicates nor reorders.
    EXPECT_FALSE(fd.duplicate);
    EXPECT_FALSE(fd.reorder);

    const MessageFate fl = delayer.fate(round, 0, 1, round, 0);
    EXPECT_EQ(fl.kind, MessageFate::Kind::kDelay);
    EXPECT_GE(fl.delay_rounds, 1u);
    EXPECT_LE(fl.delay_rounds, 4u);

    const MessageFate fi = inert.fate(round, 0, 1, round, 0);
    EXPECT_EQ(fi.kind, MessageFate::Kind::kDeliver);
    EXPECT_FALSE(fi.duplicate);
    EXPECT_FALSE(fi.reorder);
  }
  EXPECT_FALSE(inert.degrading());
  EXPECT_TRUE(dropper.degrading());
}

TEST(LinkModel, PartitionWindowsSeverAndHeal) {
  NetParams p;
  PartitionWindow w;
  w.first_round = 10;
  w.duration = 5;
  w.component = {0, 0, 1, 1};
  p.partitions.push_back(w);
  const LinkModel model(p);

  EXPECT_TRUE(model.degrading());  // partitions alone make the net degrading
  for (std::size_t round = 0; round < 25; ++round) {
    const bool inside = round >= 10 && round < 15;
    EXPECT_EQ(model.severed(round, 0, 2), inside) << "round " << round;
    EXPECT_EQ(model.severed(round, 1, 3), inside) << "round " << round;
    // Same component: never severed.
    EXPECT_FALSE(model.severed(round, 0, 1)) << "round " << round;
    EXPECT_FALSE(model.severed(round, 2, 3)) << "round " << round;
  }
}

TEST(LinkModel, HashedPartitionIsDeterministicAndSaltKeyed) {
  PartitionWindow w;
  w.first_round = 0;
  w.duration = 1;
  w.num_components = 2;
  w.salt = 7;
  PartitionWindow other = w;
  other.salt = 8;

  bool salt_matters = false;
  for (std::uint32_t n = 0; n < 64; ++n) {
    EXPECT_EQ(w.component_of(n), w.component_of(n));
    EXPECT_LT(w.component_of(n), 2u);
    salt_matters = salt_matters || w.component_of(n) != other.component_of(n);
  }
  EXPECT_TRUE(salt_matters);
}

TEST(NetParams, AnyActiveAndRingSlots) {
  NetParams p;
  EXPECT_FALSE(p.any());
  EXPECT_FALSE(p.active());
  p.model_transport = true;
  EXPECT_FALSE(p.any());
  EXPECT_TRUE(p.active());
  p.drop_rate = 0.1;
  EXPECT_TRUE(p.any());
  p.max_staleness = 5;
  EXPECT_EQ(p.ring_slots(), 6u);
}

TEST(NetParams, ValidateRejectsOutOfRangeKnobs) {
  const auto expect_bad = [](auto&& tweak) {
    NetParams p;
    tweak(p);
    EXPECT_THROW(p.validate(), ContractViolation);
  };
  expect_bad([](NetParams& p) { p.drop_rate = 1.5; });
  expect_bad([](NetParams& p) { p.drop_rate = -0.1; });
  expect_bad([](NetParams& p) { p.delay_rate = 2.0; });
  expect_bad([](NetParams& p) { p.duplicate_rate = -1.0; });
  expect_bad([](NetParams& p) { p.reorder_rate = 1.01; });
  expect_bad([](NetParams& p) { p.max_delay_rounds = 0; });
  expect_bad([](NetParams& p) { p.max_delay_rounds = 17; });
  expect_bad([](NetParams& p) { p.max_retries = 9; });
  expect_bad([](NetParams& p) { p.backoff_base = 0; });
  expect_bad([](NetParams& p) { p.backoff_base = 9; });
  expect_bad([](NetParams& p) { p.max_staleness = 33; });
  expect_bad([](NetParams& p) {
    PartitionWindow w;
    w.first_round = ~std::size_t{0};
    w.duration = 2;  // window end overflows
    p.partitions.push_back(w);
  });
  expect_bad([](NetParams& p) {
    PartitionWindow w;
    w.num_components = 0;
    p.partitions.push_back(w);
  });
  NetParams fine = lossy_params();
  EXPECT_NO_THROW(fine.validate());
}

// ---------------------------------------------------------------------------
// ExchangeChannel
// ---------------------------------------------------------------------------

/// 3-node ring with a channel on top: link i delivers into node i from its
/// predecessor.
struct Ring {
  explicit Ring(const NetParams& params)
      : model(params), channel(model, 3) {
    for (std::uint32_t n = 0; n < 3; ++n) {
      EXPECT_EQ(channel.add_link((n + 2) % 3, n), n);
    }
  }
  LinkModel model;
  ExchangeChannel channel;
};

TEST(ExchangeChannel, InertModelDeliversEverythingOwnRound) {
  NetParams p;
  p.model_transport = true;
  Ring ring(p);
  for (std::size_t round = 0; round < 6; ++round) {
    for (std::uint32_t link = 0; link < 3; ++link) {
      ring.channel.publish(link, round);
    }
    ring.channel.resolve_round(round);
    for (std::uint32_t link = 0; link < 3; ++link) {
      EXPECT_TRUE(ring.channel.delivered_this_round(link));
      EXPECT_EQ(ring.channel.consumable(link, round), round);
    }
    for (std::uint32_t dst = 0; dst < 3; ++dst) {
      // Canonical consume order: exactly the links into dst, in add order.
      const auto order = ring.channel.consume_order(dst);
      ASSERT_EQ(order.size(), 1u);
      EXPECT_EQ(order[0], dst);
    }
  }
  const auto& c = ring.channel.counters();
  EXPECT_EQ(c.sent, 18u);
  EXPECT_EQ(c.delivered, 18u);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(c.deduped, 0u);
  EXPECT_EQ(c.retries, 0u);
  EXPECT_EQ(c.expired, 0u);
  EXPECT_EQ(ring.channel.in_flight(), 0u);
}

TEST(ExchangeChannel, RetryBackoffScheduleAndExpiry) {
  NetParams p;
  p.drop_rate = 1.0;  // every attempt is lost
  p.max_retries = 2;
  p.backoff_base = 1;
  Ring ring(p);

  ring.channel.publish(0, 0);
  ring.channel.resolve_round(0);  // attempt 0 drops; retry due round 1
  EXPECT_EQ(ring.channel.in_flight(), 1u);
  EXPECT_EQ(ring.channel.counters().sent, 1u);
  EXPECT_EQ(ring.channel.counters().dropped, 1u);

  ring.channel.resolve_round(1);  // attempt 1 drops; retry due round 3
  EXPECT_EQ(ring.channel.in_flight(), 1u);
  EXPECT_EQ(ring.channel.counters().retries, 1u);

  ring.channel.resolve_round(2);  // backoff: nothing due
  EXPECT_EQ(ring.channel.counters().sent, 2u);

  ring.channel.resolve_round(3);  // attempt 2 drops; budget exhausted
  EXPECT_EQ(ring.channel.in_flight(), 0u);
  const auto& c = ring.channel.counters();
  EXPECT_EQ(c.sent, 3u);
  EXPECT_EQ(c.retries, 2u);
  EXPECT_EQ(c.dropped, 3u);
  EXPECT_EQ(c.expired, 1u);
  EXPECT_EQ(c.delivered, 0u);
  EXPECT_EQ(ring.channel.applied_round(0), ExchangeChannel::kNothing);
  EXPECT_EQ(ring.channel.consumable(0, 3), ExchangeChannel::kNothing);
}

TEST(ExchangeChannel, BoundedStalenessWindow) {
  NetParams p;
  p.model_transport = true;
  p.max_staleness = 2;
  Ring ring(p);

  ring.channel.publish(0, 0);
  ring.channel.resolve_round(0);
  EXPECT_EQ(ring.channel.consumable(0, 0), 0u);
  for (std::size_t round = 1; round <= 4; ++round) {
    ring.channel.resolve_round(round);  // sender silent from round 1 on
    if (round <= p.max_staleness) {
      EXPECT_EQ(ring.channel.consumable(0, round), 0u) << "round " << round;
    } else {
      EXPECT_EQ(ring.channel.consumable(0, round), ExchangeChannel::kNothing)
          << "round " << round;
    }
  }
}

TEST(ExchangeChannel, DuplicatesDedupNewestWins) {
  NetParams p;
  p.duplicate_rate = 1.0;  // every delivery spawns an extra copy
  p.seed = 3;
  Ring ring(p);

  for (std::size_t round = 0; round < 8; ++round) {
    for (std::uint32_t link = 0; link < 3; ++link) {
      ring.channel.publish(link, round);
    }
    ring.channel.resolve_round(round);
    for (std::uint32_t link = 0; link < 3; ++link) {
      // Newest-wins: whatever the duplicates did, the consumable payload is
      // this round's.
      EXPECT_EQ(ring.channel.consumable(link, round), round);
    }
  }
  const auto& c = ring.channel.counters();
  EXPECT_EQ(c.duplicates, 24u);  // one per publish
  EXPECT_GT(c.deduped, 0u);      // late copies superseded, not re-applied
  EXPECT_EQ(c.dropped, 0u);
}

TEST(ExchangeChannel, PartitionSeversThenHeals) {
  NetParams p;
  PartitionWindow w;
  w.first_round = 2;
  w.duration = 3;
  w.component = {0, 1, 1};  // node 0 cut off from nodes 1 and 2
  p.partitions.push_back(w);
  p.max_retries = 0;  // keep the schedule easy to count
  p.max_staleness = 1;
  Ring ring(p);

  for (std::size_t round = 0; round < 8; ++round) {
    for (std::uint32_t link = 0; link < 3; ++link) {
      ring.channel.publish(link, round);
    }
    ring.channel.resolve_round(round);
    const bool inside = round >= 2 && round < 5;
    // Link 1 (0 -> 1) and link 0 (2 -> 0) cross the cut; link 2 (1 -> 2)
    // stays inside component 1.
    EXPECT_EQ(ring.channel.consumable(2, round), round);
    if (inside) {
      EXPECT_FALSE(ring.channel.delivered_this_round(0));
      EXPECT_FALSE(ring.channel.delivered_this_round(1));
    } else {
      EXPECT_EQ(ring.channel.consumable(0, round), round) << round;
      EXPECT_EQ(ring.channel.consumable(1, round), round) << round;
    }
  }
  // 3 partition rounds x 2 crossing links.
  EXPECT_EQ(ring.channel.counters().severed, 6u);
  // After max_staleness rounds inside the window the crossing links were
  // blind; the heal at round 5 restored them (checked above).
  EXPECT_EQ(ring.channel.consumable(0, 4), ExchangeChannel::kNothing);
}

TEST(ExchangeChannel, CheckpointRoundTripMidFlight) {
  const NetParams p = [] {
    NetParams q = lossy_params();
    PartitionWindow w;
    w.first_round = 3;
    w.duration = 4;
    w.component = {0, 1, 1};
    q.partitions.push_back(w);
    return q;
  }();

  Ring straight(p);
  const auto drive = [](Ring& ring, std::size_t from, std::size_t to) {
    for (std::size_t round = from; round < to; ++round) {
      for (std::uint32_t link = 0; link < 3; ++link) {
        ring.channel.publish(link, round);
      }
      ring.channel.resolve_round(round);
    }
  };
  drive(straight, 0, 5);  // inside the partition, retries pending
  Serializer snapshot;
  straight.channel.save_state(snapshot);

  Ring resumed(p);
  Deserializer d(snapshot.bytes());
  resumed.channel.load_state(d);
  EXPECT_TRUE(d.exhausted());
  EXPECT_EQ(resumed.channel.in_flight(), straight.channel.in_flight());

  drive(straight, 5, 12);
  drive(resumed, 5, 12);
  EXPECT_TRUE(straight.channel.counters() == resumed.channel.counters());
  for (std::uint32_t link = 0; link < 3; ++link) {
    EXPECT_EQ(straight.channel.applied_round(link),
              resumed.channel.applied_round(link));
    EXPECT_EQ(straight.channel.consumable(link, 11),
              resumed.channel.consumable(link, 11));
  }
  // Byte-equality of a second snapshot: the channels are the same object.
  Serializer sa;
  straight.channel.save_state(sa);
  Serializer sb;
  resumed.channel.save_state(sb);
  ASSERT_EQ(sa.bytes().size(), sb.bytes().size());
  EXPECT_TRUE(std::equal(sa.bytes().begin(), sa.bytes().end(),
                         sb.bytes().begin()));
}

TEST(ExchangeChannel, CheckpointRejectsMismatchedNetwork) {
  Ring source(lossy_params());
  source.channel.publish(0, 0);
  source.channel.resolve_round(0);
  Serializer snapshot;
  source.channel.save_state(snapshot);

  {
    // Different fate schedule.
    auto other = lossy_params();
    other.drop_rate = 0.5;
    Ring target(other);
    Deserializer d(snapshot.bytes());
    EXPECT_THROW(target.channel.load_state(d), SerialError);
  }
  {
    // Different transport policy.
    auto other = lossy_params();
    other.max_staleness = 7;
    Ring target(other);
    Deserializer d(snapshot.bytes());
    EXPECT_THROW(target.channel.load_state(d), SerialError);
  }
  {
    // Different topology.
    LinkModel model(lossy_params());
    ExchangeChannel target(model, 3);
    target.add_link(0, 1);  // one link instead of the ring
    Deserializer d(snapshot.bytes());
    EXPECT_THROW(target.load_state(d), SerialError);
  }
}

TEST(ExchangeChannel, ResetDropsFlightStateKeepsTopology) {
  Ring ring(lossy_params());
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::uint32_t link = 0; link < 3; ++link) {
      ring.channel.publish(link, round);
    }
    ring.channel.resolve_round(round);
  }
  ring.channel.reset();
  EXPECT_EQ(ring.channel.in_flight(), 0u);
  EXPECT_EQ(ring.channel.num_links(), 3u);
  EXPECT_TRUE(ring.channel.counters() == ExchangeChannel::Counters{});
  EXPECT_EQ(ring.channel.applied_round(0), ExchangeChannel::kNothing);
  // The channel restarts cleanly from round 0.
  ring.channel.publish(0, 0);
  ring.channel.resolve_round(0);
  EXPECT_EQ(ring.channel.counters().sent, 1u);
}

}  // namespace
}  // namespace avcp::net
