#include "system/system.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/contracts.h"
#include "common/stats.h"
#include "test_support.h"

namespace avcp::system {
namespace {

using core::testing::make_chain_game;
using core::testing::make_single_region_game;

SystemParams small_params() {
  SystemParams params;
  params.vehicles_per_region = 50;
  params.seed = 3;
  return params;
}

TEST(System, EmpiricalStateIsValidDistribution) {
  const auto game = make_chain_game(3);
  CooperativePerceptionSystem sys(game, small_params());
  sys.init_from(game.uniform_state());
  const auto state = sys.empirical_state();
  ASSERT_EQ(state.p.size(), 3u);
  for (const auto& row : state.p) core::check_distribution(row);
}

TEST(System, UniverseMatchesLattice) {
  const auto game = make_single_region_game();
  const auto params = small_params();
  CooperativePerceptionSystem sys(game, params);
  EXPECT_EQ(sys.universe().num_sensors(), 3u);
  EXPECT_EQ(sys.universe().size(), 3u * params.vehicles_per_region);  // auto-sized
}

TEST(System, UniversePrivacyFollowsSensorSensitivity) {
  // Camera items must carry more privacy mass than radar items, mirroring
  // the Table II sensitivities embedded in the game's tables.
  const auto game = make_single_region_game();
  CooperativePerceptionSystem sys(game, small_params());
  const auto& universe = sys.universe();
  const double cam = universe.privacy_weight(universe.items_of_sensor(0));
  const double rad = universe.privacy_weight(universe.items_of_sensor(2));
  EXPECT_GT(cam, rad * 2.0);
}

TEST(System, RoundReportShapes) {
  const auto game = make_chain_game(2);
  CooperativePerceptionSystem sys(game, small_params());
  sys.init_from(game.uniform_state());
  core::FixedRatioController controller(0.6);
  const auto report = sys.run_round(controller);
  ASSERT_EQ(report.x.size(), 2u);
  EXPECT_DOUBLE_EQ(report.x[0], 0.6);
  ASSERT_EQ(report.mean_utility.size(), 2u);
  ASSERT_EQ(report.state.p.size(), 2u);
  for (const auto& row : report.state.p) core::check_distribution(row);
  for (const double u : report.mean_utility) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(System, ZeroRatioYieldsOwnDataUtilityOnly) {
  // At x = 0 nothing is distributed: realized utility equals the overlap of
  // a vehicle's own collection with its desires (here ~collect_fraction),
  // clearly below the full-sharing level.
  const auto game = make_single_region_game(/*beta=*/2.0);
  auto params = small_params();
  params.vehicles_per_region = 200;
  CooperativePerceptionSystem closed(game, params);
  closed.init_from(game.uniform_state());
  core::FixedRatioController zero(0.0);
  const auto closed_report = closed.run_round(zero);

  CooperativePerceptionSystem open(game, params);
  open.init_from(game.uniform_state());
  core::FixedRatioController one(1.0);
  const auto open_report = open.run_round(one);

  EXPECT_GT(open_report.mean_utility[0], closed_report.mean_utility[0] + 0.1);
}

TEST(System, RealizedFitnessRankingMatchesAnalyticModel) {
  // The plant never evaluates Eq. (4); nevertheless the measured
  // per-decision fitness must order decisions like the analytic game does
  // (rank correlation over decisions with vehicles present).
  // The analytic model assumes shared data from different vehicles is
  // pairwise disjoint (Property 3.1(d)); match that regime with sparse
  // collections over a large universe and a moderate ratio (dense
  // collections saturate every pool and compress the ranking).
  const auto game = make_single_region_game(/*beta=*/3.0);
  auto params = small_params();
  params.vehicles_per_region = 600;  // tight averages
  params.desire_fraction = 0.4;      // universe auto-sizes to the fleet
  CooperativePerceptionSystem sys(game, params);
  sys.init_from(game.uniform_state());
  core::FixedRatioController controller(0.4);
  sys.run_round(controller);

  const auto realized = sys.realized_fitness(0);
  const auto analytic = game.region_fitness(game.uniform_state(),
                                            std::vector<double>{0.4}, 0);
  // Spearman-style check: pairwise order agreement above chance.
  int agree = 0;
  int total = 0;
  for (core::DecisionId a = 0; a < 8; ++a) {
    for (core::DecisionId b = a + 1; b < 8; ++b) {
      const double ra = realized[a] - realized[b];
      const double qa = analytic[a] - analytic[b];
      if (std::abs(qa) < 1e-9) continue;
      ++total;
      if ((ra > 0) == (qa > 0)) ++agree;
    }
  }
  ASSERT_GT(total, 10);
  EXPECT_GT(static_cast<double>(agree) / total, 0.75)
      << agree << "/" << total << " pairs agree";
}

TEST(System, PopulationDriftsTowardNoShareAtZeroRatio) {
  const auto game = make_single_region_game(/*beta=*/2.0);
  auto params = small_params();
  params.vehicles_per_region = 400;
  CooperativePerceptionSystem sys(game, params);
  sys.init_from(game.uniform_state());
  core::FixedRatioController controller(0.0);
  for (int t = 0; t < 120; ++t) sys.run_round(controller);
  // Privacy-free decisions (radar-only or none) take over.
  const auto state = sys.empirical_state();
  EXPECT_GT(state.p[0][6] + state.p[0][7], 0.85);
}

TEST(System, FdsShapesTheMeasuredPlant) {
  // End-to-end: model-based FDS drives the *measured* system into the
  // desired decision field.
  const auto game = make_single_region_game(/*beta=*/4.0);
  auto params = small_params();
  params.vehicles_per_region = 500;
  params.seed = 11;
  CooperativePerceptionSystem sys(game, params);
  sys.init_from(game.uniform_state());

  core::DesiredFields fields(1, 8);
  fields.set_target(0, 0, Interval{0.8, 1.0});
  core::FdsOptions options;
  options.max_step = 0.15;
  core::FdsController controller(game, fields, options);

  const auto rounds = sys.run_until(controller, fields, 1e-9, 250);
  EXPECT_LT(rounds, 250u) << "final p(P1) = "
                          << sys.empirical_state().p[0][0];
}

TEST(System, ExposedPrivacyTracksSharingLevel) {
  const auto game = make_single_region_game();
  auto params = small_params();
  params.vehicles_per_region = 300;
  CooperativePerceptionSystem sys(game, params);

  // All-P1 fleet exposes more privacy mass at the server than an all-P7 one.
  std::vector<double> all_p1(8, 0.0);
  all_p1[0] = 1.0;
  sys.init_from(game.broadcast_state(all_p1));
  core::FixedRatioController controller(0.5);
  const auto rich = sys.run_round(controller);

  std::vector<double> all_p7(8, 0.0);
  all_p7[6] = 1.0;
  sys.init_from(game.broadcast_state(all_p7));
  const auto lean = sys.run_round(controller);

  EXPECT_GT(rich.exposed_privacy[0], lean.exposed_privacy[0] * 2.0);
  EXPECT_GT(rich.mean_privacy[0], lean.mean_privacy[0]);
}

TEST(System, MultipleExchangesReduceFitnessNoise) {
  // Averaging fitness over repeated exchanges within a round (§II) tightens
  // the realized per-decision estimates: the across-round variance of the
  // P8 group's fitness (analytically a constant 0) shrinks.
  const auto game = make_single_region_game(/*beta=*/2.0);
  auto variance_with = [&](std::size_t exchanges) {
    auto params = small_params();
    params.vehicles_per_region = 60;
    params.exchanges_per_round = exchanges;
    params.revision_rate = 0.0;  // freeze decisions; only measure
    CooperativePerceptionSystem sys(game, params);
    sys.init_from(game.uniform_state());
    core::FixedRatioController controller(0.5);
    RunningStats stats;
    for (int t = 0; t < 40; ++t) {
      sys.run_round(controller);
      stats.add(sys.realized_fitness(0)[0]);  // P1's noisy estimate
    }
    return stats.variance();
  };
  EXPECT_LT(variance_with(6), variance_with(1));
}

TEST(System, OverlappingCollectionsSaturateUtility) {
  // Dropping the paper's disjointness assumption makes collections overlap;
  // redundant items inflate coverage, so the measured mean utility at the
  // same ratio is higher (the pool saturates) — quantifying what Property
  // 3.1(d) buys the analysis.
  const auto game = make_single_region_game(/*beta=*/2.0);
  auto utility_with = [&](bool disjoint) {
    auto params = small_params();
    params.vehicles_per_region = 120;
    params.disjoint_collections = disjoint;
    params.collect_fraction = 0.05;
    params.revision_rate = 0.0;
    params.seed = 21;
    CooperativePerceptionSystem sys(game, params);
    std::vector<double> all_p1(8, 0.0);
    all_p1[0] = 1.0;
    sys.init_from(game.broadcast_state(all_p1));
    core::FixedRatioController controller(0.3);
    double total = 0.0;
    for (int t = 0; t < 10; ++t) {
      total += sys.run_round(controller).mean_utility[0];
    }
    return total / 10.0;
  };
  EXPECT_GT(utility_with(false), utility_with(true) + 0.02);
}

TEST(System, InterRegionExchangeLiftsDataPoorRegion) {
  // Region 1 is privacy-locked (all P8) but neighbours a generous all-P1
  // region 0 with high gamma: its P1 deviants gain cross-region data, so a
  // P1 *receiver* in region 1 earns strictly more fitness with the
  // inter-region exchange enabled.
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  std::vector<core::RegionSpec> regions(2);
  regions[0].beta = 2.0;
  regions[0].gamma_self = 1.0;
  regions[0].neighbors.emplace_back(1, 0.8);
  regions[1].beta = 2.0;
  regions[1].gamma_self = 1.0;
  regions[1].neighbors.emplace_back(0, 0.8);
  const core::MultiRegionGame game(std::move(config), regions);

  auto p1_fitness_in_region1 = [&](bool inter) {
    auto params = small_params();
    params.vehicles_per_region = 150;
    params.inter_region_exchange = inter;
    params.revision_rate = 0.0;
    params.seed = 77;
    CooperativePerceptionSystem sys(game, params);
    // Region 0: all P1 at full throttle. Region 1: mostly P8 with a P1
    // minority whose fitness we track.
    core::GameState seed = game.uniform_state();
    std::fill(seed.p[0].begin(), seed.p[0].end(), 0.0);
    seed.p[0][0] = 1.0;
    std::fill(seed.p[1].begin(), seed.p[1].end(), 0.0);
    seed.p[1][0] = 0.2;
    seed.p[1][7] = 0.8;
    sys.init_from(seed);
    core::FixedRatioController controller(1.0);
    double total = 0.0;
    for (int t = 0; t < 10; ++t) {
      sys.run_round(controller);
      total += sys.realized_fitness(1)[0];
    }
    return total / 10.0;
  };
  EXPECT_GT(p1_fitness_in_region1(true), p1_fitness_in_region1(false) + 0.1);
}

TEST(System, CellFragmentationReducesPoolUtility) {
  // Splitting a region's fleet across more edge-server cells shrinks each
  // exchange pool, so the same ratio delivers less measured utility — the
  // cost of cell granularity the paper's Fig. 5 structure implies.
  const auto game = make_single_region_game(/*beta=*/2.0);
  auto utility_with = [&](std::size_t cells) {
    auto params = small_params();
    params.vehicles_per_region = 120;
    params.cells_per_region = cells;
    params.revision_rate = 0.0;
    params.seed = 31;
    CooperativePerceptionSystem sys(game, params);
    std::vector<double> all_p1(8, 0.0);
    all_p1[0] = 1.0;
    sys.init_from(game.broadcast_state(all_p1));
    core::FixedRatioController controller(0.5);
    double total = 0.0;
    for (int t = 0; t < 8; ++t) {
      total += sys.run_round(controller).mean_utility[0];
    }
    return total / 8.0;
  };
  const double one_cell = utility_with(1);
  const double many_cells = utility_with(12);
  EXPECT_GT(one_cell, many_cells + 0.05);
}

TEST(System, RejectsDegenerateParams) {
  const auto game = make_single_region_game();
  SystemParams params = small_params();
  params.vehicles_per_region = 1;
  EXPECT_THROW(CooperativePerceptionSystem(game, params), ContractViolation);
  params = small_params();
  params.collect_fraction = 0.0;
  EXPECT_THROW(CooperativePerceptionSystem(game, params), ContractViolation);
  params = small_params();
  params.vehicles_per_region = 10;
  params.cells_per_region = 6;  // fewer than 2 vehicles per cell
  EXPECT_THROW(CooperativePerceptionSystem(game, params), ContractViolation);
}

}  // namespace
}  // namespace avcp::system
