#include "core/equilibrium.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/contracts.h"
#include "test_support.h"

namespace avcp::core {
namespace {

using testing::make_chain_game;
using testing::make_single_region_game;

TEST(Invasion, NoShareResidentIsStableAtZeroRatio) {
  // With x = 0 there is no utility anywhere; the zero-privacy resident P8
  // cannot be invaded.
  const auto game = make_single_region_game();
  const std::vector<double> x = {0.0};
  const auto report =
      test_pure_invasion(game, game.uniform_state(), x, 0, 7);
  EXPECT_TRUE(report.stable);
}

TEST(Invasion, HighPrivacyResidentFallsAtZeroRatio) {
  // A pure P1 population at x = 0 pays full privacy for nothing; P8 invades.
  const auto game = make_single_region_game();
  const std::vector<double> x = {0.0};
  const auto report =
      test_pure_invasion(game, game.uniform_state(), x, 0, 0);
  EXPECT_FALSE(report.stable);
  EXPECT_EQ(report.best_invader, 7u);
  EXPECT_NEAR(report.invader_advantage, 1.0, 1e-9);  // saves g_1 = 1
}

TEST(Invasion, FullShareResidentStableAtHighRatioAndBeta) {
  // In a P1 monoculture at high x, a defector to P4 still reads the whole
  // pool? No: P4 cannot read P1's data (P^1 is not a subset of P^4), so the
  // defector loses the entire pool and P1 is stable when beta*x*f1 exceeds
  // the privacy saving.
  const auto game = make_single_region_game(/*beta=*/4.0);
  const std::vector<double> x = {1.0};
  const auto report =
      test_pure_invasion(game, game.uniform_state(), x, 0, 0);
  EXPECT_TRUE(report.stable);
}

TEST(Invasion, MonoculturesAreMutuallyStableAtModerateRatio) {
  // The coordination structure: both the no-share and the radar-only
  // monocultures resist invasion at a low ratio.
  const auto game = make_single_region_game(/*beta=*/2.0);
  const std::vector<double> x = {0.2};
  const auto stable = stable_pure_decisions(game, game.uniform_state(), x, 0);
  EXPECT_TRUE(std::find(stable.begin(), stable.end(), 6u) != stable.end())
      << "radar-only monoculture should resist invasion";
  EXPECT_TRUE(std::find(stable.begin(), stable.end(), 7u) != stable.end())
      << "no-share monoculture should resist invasion";
  EXPECT_TRUE(std::find(stable.begin(), stable.end(), 0u) == stable.end())
      << "full-share monoculture should NOT survive at x = 0.2";
}

TEST(Invasion, StableSetGrowsRicherWithRatio) {
  // The number of sharing sensors sustained in a stable monoculture is
  // monotone-ish in x: richer sharing becomes defensible at higher x.
  const auto game = make_single_region_game(/*beta=*/4.0);
  const auto richest_stable = [&](double ratio) {
    const std::vector<double> x = {ratio};
    std::size_t richest = 0;
    for (const DecisionId k :
         stable_pure_decisions(game, game.uniform_state(), x, 0)) {
      richest = std::max(richest, game.lattice().cardinality(k));
    }
    return richest;
  };
  EXPECT_LE(richest_stable(0.05), richest_stable(0.5));
  EXPECT_LE(richest_stable(0.5), richest_stable(1.0));
  EXPECT_EQ(richest_stable(1.0), 3u);  // P1 defensible at full ratio
}

TEST(LongRunLimit, SettlesOnPureStateAtZeroRatio) {
  const auto game = make_single_region_game();
  const std::vector<double> x = {0.0};
  const auto limit = long_run_limit(game, game.uniform_state(), x);
  EXPECT_TRUE(limit.settled);
  EXPECT_GT(limit.state.p[0][7], 0.999);
}

TEST(LongRunLimit, ReportsRoundsSpent) {
  const auto game = make_single_region_game();
  const std::vector<double> x = {0.0};
  const auto limit = long_run_limit(game, game.uniform_state(), x);
  EXPECT_GT(limit.rounds, 0u);
  EXPECT_LT(limit.rounds, 20000u);
}

TEST(LongRunLimit, LimitIsAFixedPoint) {
  const auto game = make_single_region_game(/*beta=*/2.5);
  const std::vector<double> x = {0.6};
  const auto limit = long_run_limit(game, game.uniform_state(), x);
  ASSERT_TRUE(limit.settled);
  GameState probe = limit.state;
  game.replicator_step(probe, x);
  for (DecisionId k = 0; k < 8; ++k) {
    EXPECT_NEAR(probe.p[0][k], limit.state.p[0][k], 1e-8);
  }
}

TEST(EquilibriumMap, EndpointsMatchKnownRegimes) {
  const auto game = make_single_region_game(/*beta=*/4.0);
  const auto map = equilibrium_map(game, 5);
  ASSERT_EQ(map.size(), 5u);
  EXPECT_DOUBLE_EQ(map.front().x, 0.0);
  EXPECT_DOUBLE_EQ(map.back().x, 1.0);
  // x = 0: privacy rules, P8 wins. x = 1 at beta 4: P1 wins.
  EXPECT_GT(map.front().limit.p[0][7], 0.99);
  EXPECT_GT(map.back().limit.p[0][0], 0.99);
}

TEST(EquilibriumMap, SharedRichnessIsMonotoneInRatio) {
  // Expected shared-sensor count at the limit never decreases with x.
  const auto game = make_single_region_game(/*beta=*/3.0);
  const auto map = equilibrium_map(game, 9);
  double previous = -1.0;
  for (const auto& entry : map) {
    double richness = 0.0;
    for (DecisionId k = 0; k < 8; ++k) {
      richness += entry.limit.p[0][k] *
                  static_cast<double>(game.lattice().cardinality(k));
    }
    EXPECT_GE(richness, previous - 0.05) << "x=" << entry.x;
    previous = std::max(previous, richness);
  }
}

TEST(EquilibriumMap, MultiRegionShapeMatchesSingleRegion) {
  const auto game = make_chain_game(3, /*beta_lo=*/3.0, /*beta_hi=*/4.0);
  const auto map = equilibrium_map(game, 3);
  for (RegionId i = 0; i < 3; ++i) {
    EXPECT_GT(map.front().limit.p[i][7], 0.99) << "region " << i;
    EXPECT_GT(map.back().limit.p[i][0], 0.9) << "region " << i;
  }
}

// Consistency sweep: the invasion test and the simulated dynamics must
// agree — a stable resident holds against a small mutant seeding, an
// unstable one is displaced.
class InvasionConsistencySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(InvasionConsistencySweep, InvasionVerdictMatchesDynamics) {
  const auto [decision_raw, x_tenths] = GetParam();
  const auto resident = static_cast<DecisionId>(decision_raw);
  const double ratio = x_tenths / 10.0;
  const auto game = make_single_region_game(/*beta=*/3.0);
  const std::vector<double> x = {ratio};

  const auto report =
      test_pure_invasion(game, game.uniform_state(), x, 0, resident);
  // Skip marginal verdicts where finite seeding and the affine analysis
  // can legitimately disagree.
  if (!report.stable && report.invader_advantage < 0.05) return;

  // Seed the resident at 97% and spread 3% over all decisions.
  std::vector<double> p(8, 0.03 / 8.0);
  p[resident] += 0.97;
  GameState state = game.broadcast_state(p);
  for (int t = 0; t < 4000; ++t) game.replicator_step(state, x);

  if (report.stable) {
    EXPECT_GT(state.p[0][resident], 0.9)
        << "stable resident " << game.lattice().label(resident)
        << " displaced at x=" << ratio;
  } else {
    EXPECT_LT(state.p[0][resident], 0.5)
        << "unstable resident " << game.lattice().label(resident)
        << " survived at x=" << ratio << " (best invader "
        << game.lattice().label(report.best_invader) << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(DecisionsByRatio, InvasionConsistencySweep,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Values(0, 3, 6, 10)));

TEST(EquilibriumMap, RejectsTooFewSteps) {
  const auto game = make_single_region_game();
  EXPECT_THROW(equilibrium_map(game, 1), ContractViolation);
}

}  // namespace
}  // namespace avcp::core
