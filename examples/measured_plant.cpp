// Model-based control of the measured system: the full framework of the
// paper's Fig. 1 with the cloud running FDS on its analytic game model
// while vehicles revise decisions from the fitness they actually *measure*
// on the edge-server data plane — received data utility minus upload
// privacy cost. Demonstrates that the evolutionary-game abstraction is a
// usable control model for the concrete protocol.
//
//   build/examples/measured_plant
#include <cstdio>
#include <vector>

#include "common/interval.h"
#include "core/fds.h"
#include "core/game.h"
#include "core/sensor_model.h"
#include "system/system.h"

using namespace avcp;

int main() {
  // The cloud's model: two regions, paper tables.
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  std::vector<core::RegionSpec> regions(2);
  regions[0].beta = 4.0;
  regions[0].gamma_self = 1.0;
  regions[1].beta = 3.5;
  regions[1].gamma_self = 1.0;
  const core::MultiRegionGame game(std::move(config), regions);

  // The plant: edge servers + vehicles exchanging real (synthetic) items.
  system::SystemParams params;
  params.vehicles_per_region = 400;
  params.exchanges_per_round = 2;  // data exchange repeats within a round
  params.seed = 9;
  system::CooperativePerceptionSystem plant(game, params);
  plant.init_from(game.uniform_state());

  // Desired field: full sharing dominant in region 0, privacy-lean region 1.
  core::DesiredFields desired(2, 8);
  desired.set_target(0, 0, Interval{0.8, 1.0});   // P1 >= 80%
  desired.set_target(1, 7, Interval{0.6, 1.0});   // P8 >= 60%
  core::FdsOptions fds_options;
  fds_options.max_step = 0.15;
  core::FdsController controller(game, desired, fds_options);

  std::printf("round  x0     x1     p0(P1)  p1(P8)  util0  util1  priv0  priv1\n");
  bool reached = false;
  std::size_t reached_at = 0;
  for (std::size_t t = 0; t < 200; ++t) {
    const auto report = plant.run_round(controller);
    if (t % 10 == 0) {
      std::printf("%-6zu %.2f   %.2f   %.3f   %.3f   %.3f  %.3f  %.3f  %.3f\n",
                  t, report.x[0], report.x[1], report.state.p[0][0],
                  report.state.p[1][7], report.mean_utility[0],
                  report.mean_utility[1], report.mean_privacy[0],
                  report.mean_privacy[1]);
    }
    if (!reached && desired.satisfied(plant.empirical_state(), 1e-9)) {
      reached = true;
      reached_at = t + 1;
    }
  }
  if (reached) {
    std::printf("\ndesired field reached at round %zu and held\n", reached_at);
  } else {
    std::printf("\ndesired field not reached within 200 rounds\n");
  }
  const auto final_state = plant.empirical_state();
  std::printf("final: region 0 p(P1) = %.1f%%, region 1 p(P8) = %.1f%%\n",
              100.0 * final_state.p[0][0], 100.0 * final_state.p[1][7]);
  return reached ? 0 : 1;
}
