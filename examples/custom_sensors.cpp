// Custom sensor suites: the library is not hard-coded to the paper's three
// sensors. This example builds a four-sensor lattice (adding ultrasonic),
// supplies a custom capability/privacy profile, and runs the data plane and
// the game over the resulting 16 decisions.
//
//   build/examples/custom_sensors
#include <cstdio>
#include <vector>

#include "common/interval.h"
#include "common/rng.h"
#include "core/fds.h"
#include "core/game.h"
#include "core/sensor_model.h"
#include "perception/data_plane.h"
#include "sim/runner.h"

using namespace avcp;

int main() {
  // --- A 4-sensor decision lattice: 2^4 = 16 decisions. ------------------
  const core::DecisionLattice lattice(4);
  auto sensors = core::paper_sensors();
  sensors.push_back(core::SensorProfile{
      "ultrasonic",
      // Table-III style scores over the 11 perception factors.
      {1.0, 0.0, 1.0, 0.5, 0.0, 0.5, 0.0, 0.0, 0.5, 1.0, 1.0},
      /*privacy_cost=*/0.05});
  const auto tables = core::make_decision_tables(lattice, sensors);

  std::printf("16-decision lattice (decision: raw utility / raw privacy):\n");
  const std::vector<std::string> names = {"cam", "lid", "rad", "uls"};
  for (core::DecisionId k = 0; k < lattice.num_decisions(); ++k) {
    std::printf("  %-24s %5.1f / %.2f\n", lattice.label(k, names).c_str(),
                tables.raw_utility[k], tables.raw_privacy[k]);
  }

  // --- The data plane honours the extended lattice. ----------------------
  Rng rng(11);
  const std::vector<double> sensor_privacy = {1.0, 0.5, 0.1, 0.05};
  const auto universe =
      perception::DataUniverse::synthetic(4, 12, sensor_privacy, rng);
  perception::EdgeServerDataPlane plane(lattice, universe);

  std::vector<perception::Vehicle> vehicles(40);
  for (auto& v : vehicles) {
    v.decision = static_cast<core::DecisionId>(
        rng.uniform_int(0, static_cast<std::int64_t>(lattice.num_decisions()) - 1));
    for (perception::ItemId id = 0; id < universe.size(); ++id) {
      if (rng.bernoulli(0.35)) v.collected.push_back(id);
      if (rng.bernoulli(0.25)) v.desired.push_back(id);
    }
    if (v.desired.empty()) v.desired.push_back(0);
  }
  const auto outcome = plane.run_round(vehicles, 0.8);
  std::printf("\ndata plane round at x = 0.8: mean utility %.3f, mean "
              "privacy cost %.3f, %zu items visible to an eavesdropper\n",
              outcome.mean_utility(), outcome.mean_privacy(),
              outcome.exposed_items);

  // --- And so does the game + FDS. ---------------------------------------
  core::GameConfig config;
  config.lattice = lattice;
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  core::RegionSpec region;
  region.beta = 5.0;  // 16 decisions dilute the uniform-start pool
  region.gamma_self = 1.0;
  const core::MultiRegionGame game(std::move(config), {region});

  core::DesiredFields desired(1, lattice.num_decisions());
  desired.set_target(0, 0, Interval{0.85, 1.0});  // share all four sensors
  core::FdsOptions fds_options;
  fds_options.max_step = 0.15;
  core::FdsController controller(game, desired, fds_options);

  sim::RunOptions options;
  options.max_rounds = 500;
  options.record_trajectory = false;
  const auto run = sim::run_mean_field(game, controller, game.uniform_state(),
                                       {0.2}, &desired, options);
  std::printf("FDS on the 16-decision game: %s after %zu rounds "
              "(p(share-all) = %.1f%%)\n",
              run.converged ? "converged" : "did not converge", run.rounds,
              100.0 * run.final_state.p[0][0]);
  return run.converged ? 0 : 1;
}
