// Weather adaptation (paper §V-C): the cloud changes the desired decision
// field when conditions change — on a sunny day camera data is less
// critical, while fog/rain/snow raise the value of radar — and FDS re-shapes
// the vehicles' data-sharing decisions to the new field.
//
//   build/examples/weather_adaptation
#include <cstdio>
#include <vector>

#include "common/interval.h"
#include "core/fds.h"
#include "core/game.h"
#include "core/sensor_model.h"
#include "sim/runner.h"

using namespace avcp;

namespace {

/// Desired field = eps-box around the equilibrium under x_ref (the paper's
/// acceptable-error methodology).
core::DesiredFields field_for_ratio(const core::MultiRegionGame& game,
                                    const core::GameState& start, double x_ref,
                                    double eps) {
  core::GameState eq = start;
  const std::vector<double> x(game.num_regions(), x_ref);
  for (int t = 0; t < 4000; ++t) game.replicator_step(eq, x);
  core::DesiredFields fields(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    for (core::DecisionId k = 0; k < game.num_decisions(); ++k) {
      fields.set_target(i, k,
                        Interval{std::max(0.0, eq.p[i][k] - eps),
                                 std::min(1.0, eq.p[i][k] + eps)});
    }
  }
  return fields;
}

void print_mix(const core::MultiRegionGame& game, const core::GameState& state,
               const char* label) {
  std::printf("%-18s", label);
  for (core::DecisionId k = 0; k < game.num_decisions(); ++k) {
    if (state.p[0][k] >= 0.005) {
      std::printf("  %s=%.0f%%", game.lattice().label(k).c_str(),
                  100.0 * state.p[0][k]);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Two coupled regions (e.g. a commercial core and its feeder roads).
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  std::vector<core::RegionSpec> regions(2);
  regions[0].beta = 3.0;
  regions[0].gamma_self = 1.0;
  regions[0].neighbors.emplace_back(1, 0.3);
  regions[1].beta = 2.2;
  regions[1].gamma_self = 0.8;
  regions[1].neighbors.emplace_back(0, 0.3);
  const core::MultiRegionGame game(std::move(config), regions);

  core::FdsOptions fds_options;
  fds_options.max_step = 0.1;
  sim::RunOptions options;
  options.max_rounds = 3000;
  options.record_trajectory = false;

  // --- Sunny morning: rich sharing is cheap and useful. ------------------
  const auto sunny = field_for_ratio(game, game.uniform_state(), 0.85, 0.05);
  core::FdsController sunny_controller(game, sunny, fds_options);
  auto run = sim::run_mean_field(game, sunny_controller, game.uniform_state(),
                                 {0.3, 0.3}, &sunny, options);
  std::printf("sunny field %s after %zu rounds\n",
              run.converged ? "reached" : "NOT reached", run.rounds);
  print_mix(game, run.final_state, "  sunny mix:");

  // --- Fog rolls in: the cloud publishes a privacy-lean field. -----------
  // Vehicles entering the area bring fresh default decisions, restoring
  // diversity to the (near-pure) population.
  core::GameState reseeded = run.final_state;
  for (auto& row : reseeded.p) {
    for (double& v : row) v = 0.8 * v + 0.2 / 8.0;
  }
  const auto foggy = field_for_ratio(game, reseeded, 0.05, 0.05);
  core::FdsController foggy_controller(game, foggy, fds_options);
  const auto run2 = sim::run_mean_field(game, foggy_controller, reseeded,
                                        run.final_x, &foggy, options);
  std::printf("foggy field %s after %zu rounds\n",
              run2.converged ? "reached" : "NOT reached", run2.rounds);
  print_mix(game, run2.final_state, "  foggy mix:");

  return (run.converged && run2.converged) ? 0 : 1;
}
