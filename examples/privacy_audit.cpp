// Privacy audit: the paper's headline trade-off — "minimize vehicles'
// information disclosure without compromising their perception accuracy" —
// measured end-to-end on the data plane. Three cloud policies shape the
// same fleet toward different desired decision fields; for each we audit
// what a passive eavesdropper at the edge server observes (the §II threat
// model) against the perception utility vehicles actually obtain.
//
//   build/examples/privacy_audit
#include <cstdio>
#include <string>
#include <vector>

#include "common/interval.h"
#include "core/fds.h"
#include "core/game.h"
#include "core/sensor_model.h"
#include "system/system.h"

using namespace avcp;

namespace {

core::MultiRegionGame make_game() {
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  core::RegionSpec region;
  region.beta = 4.0;
  region.gamma_self = 1.0;
  return core::MultiRegionGame(std::move(config), {region});
}

struct AuditRow {
  std::string policy;
  double mean_utility = 0.0;
  double exposed_privacy = 0.0;
  double p_dominant = 0.0;
  std::string dominant;
};

AuditRow audit(const core::MultiRegionGame& game, const std::string& name,
               core::DecisionId target_decision) {
  system::SystemParams params;
  params.vehicles_per_region = 300;
  params.seed = 12;
  system::CooperativePerceptionSystem plant(game, params);
  plant.init_from(game.uniform_state());

  core::DesiredFields desired(1, game.num_decisions());
  desired.set_target(0, target_decision, Interval{0.8, 1.0});
  core::FdsOptions options;
  options.max_step = 0.15;
  core::FdsController controller(game, desired, options);

  // Shape, then audit over a settled window.
  for (int t = 0; t < 120; ++t) plant.run_round(controller);
  AuditRow row;
  row.policy = name;
  const int window = 20;
  for (int t = 0; t < window; ++t) {
    const auto report = plant.run_round(controller);
    row.mean_utility += report.mean_utility[0];
    row.exposed_privacy += report.exposed_privacy[0];
  }
  row.mean_utility /= window;
  row.exposed_privacy /= window;
  const auto state = plant.empirical_state();
  core::DecisionId top = 0;
  for (core::DecisionId k = 1; k < game.num_decisions(); ++k) {
    if (state.p[0][k] > state.p[0][top]) top = k;
  }
  row.p_dominant = state.p[0][top];
  row.dominant = game.lattice().label(top);
  return row;
}

}  // namespace

int main() {
  const auto game = make_game();
  std::printf("auditing three shaped regimes (300 vehicles, passive "
              "eavesdropper at the edge server)...\n\n");
  const std::vector<AuditRow> rows = {
      audit(game, "full sharing (P1 >= 80%)", 0),
      audit(game, "radar only   (P7 >= 80%)", 6),
      audit(game, "no sharing   (P8 >= 80%)", 7),
  };
  std::printf("%-28s %12s %18s %s\n", "policy", "utility", "exposed privacy",
              "dominant decision");
  std::printf("%s\n", std::string(78, '-').c_str());
  for (const AuditRow& row : rows) {
    std::printf("%-28s %12.3f %18.3f %s (%.0f%%)\n", row.policy.c_str(),
                row.mean_utility, row.exposed_privacy, row.dominant.c_str(),
                100.0 * row.p_dominant);
  }
  std::printf("\nThe knob the paper's policy exposes: each step down the "
              "lattice trades\nperception utility for eavesdropper "
              "exposure; the cloud picks the operating\npoint per region "
              "via the desired decision field.\n");

  // Sanity for scripted runs: utility and exposure must both be monotone
  // along the three regimes.
  const bool monotone = rows[0].mean_utility > rows[1].mean_utility &&
                        rows[1].mean_utility > rows[2].mean_utility &&
                        rows[0].exposed_privacy > rows[1].exposed_privacy &&
                        rows[1].exposed_privacy >= rows[2].exposed_privacy;
  return monotone ? 0 : 1;
}
