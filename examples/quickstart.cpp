// Quickstart: one edge-server region, the paper's eight data-sharing
// decisions, and Fast Decision Shaping steering the vehicle population
// toward a desired decision field.
//
//   build/examples/quickstart
#include <cstdio>
#include <vector>

#include "common/interval.h"
#include "core/fds.h"
#include "core/game.h"
#include "core/sensor_model.h"
#include "sim/runner.h"

using namespace avcp;

int main() {
  // 1. The decision lattice: every subset of {camera, lidar, radar}.
  const core::DecisionLattice lattice(3);
  std::printf("decisions:");
  for (core::DecisionId k = 0; k < lattice.num_decisions(); ++k) {
    std::printf(" %s", lattice.label(k).c_str());
  }
  std::printf("\n");

  // 2. Per-decision utility f_k and privacy cost g_k from the paper's
  //    sensor model (Tables II/III).
  core::GameConfig config;
  config.lattice = lattice;
  const auto tables = core::paper_decision_tables(lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;  // decision-revision speed per 10-minute round

  // 3. One region: utility coefficient beta and inner-region sharing
  //    frequency gamma_ii.
  core::RegionSpec region;
  region.beta = 4.0;
  region.gamma_self = 1.0;
  const core::MultiRegionGame game(std::move(config), {region});

  // 4. The desired decision field: full sharing (P1) should reach >= 90%.
  core::DesiredFields desired(1, lattice.num_decisions());
  desired.set_target(0, 0, Interval{0.9, 1.0});

  // 5. Run the round loop: the FDS controller adjusts the sharing ratio x,
  //    the population follows replicator dynamics.
  core::FdsOptions fds_options;
  fds_options.max_step = 0.1;  // Lambda, Eq. (13)
  core::FdsController controller(game, desired, fds_options);

  sim::RunOptions options;
  options.max_rounds = 300;
  const auto result = sim::run_mean_field(game, controller,
                                          game.uniform_state(), {0.2},
                                          &desired, options);

  std::printf("\nround  x      p(P1)   p(P7)   p(P8)\n");
  for (std::size_t t = 0; t < result.trajectory.size(); t += 5) {
    const double x = t == 0 ? 0.2 : result.x_history[t - 1][0];
    std::printf("%-6zu %.3f  %.3f   %.3f   %.3f\n", t, x,
                result.trajectory[t].p[0][0], result.trajectory[t].p[0][6],
                result.trajectory[t].p[0][7]);
  }
  std::printf("\n%s after %zu rounds; final p(P1) = %.1f%%\n",
              result.converged ? "converged" : "did not converge",
              result.rounds, 100.0 * result.final_state.p[0][0]);
  return result.converged ? 0 : 1;
}
