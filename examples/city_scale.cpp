// City-scale walkthrough of the paper's full evaluation pipeline:
// procedural city -> synthetic vehicle traces -> betweenness-centrality
// utility coefficients -> Algorithm-1 region clustering -> region graph
// with data-sharing frequencies -> multi-region game -> FDS shaping.
//
//   build/examples/city_scale
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/interval.h"
#include "common/stats.h"
#include "core/fds.h"
#include "core/lower_bound.h"
#include "core/sensor_model.h"
#include "sim/pipeline.h"
#include "sim/runner.h"

using namespace avcp;

int main() {
  // --- Pipeline: everything up to the game is one call. -----------------
  sim::PipelineConfig config;
  config.city.rows = 12;
  config.city.cols = 16;
  config.traces.num_vehicles = 200;
  config.traces.duration_s = 2 * 3600.0;
  config.num_servers = 64;
  config.num_regions = 10;
  config.coefficient = sim::CoefficientKind::kBetweenness;
  config.beta_lo = 2.0;
  config.beta_hi = 3.5;

  std::printf("building city, traces, clustering, region graph...\n");
  const auto artifacts = sim::build_pipeline(config);
  std::printf("  %zu road segments, %zu GPS fixes, %zu regions, %zu region-"
              "graph edges\n",
              artifacts.graph.num_segments(), artifacts.fixes.size(),
              artifacts.clustering.num_regions(),
              artifacts.region_graph.num_edges());

  const auto means = artifacts.clustering.region_means(artifacts.coefficients);
  for (cluster::RegionId i = 0; i < artifacts.clustering.num_regions(); ++i) {
    std::printf("  region %2u: %4zu segments, beta=%.2f, gamma_ii=%.3f, %zu "
                "neighbours\n",
                i, artifacts.clustering.members[i].size(),
                artifacts.region_specs[i].beta,
                artifacts.region_specs[i].gamma_self,
                artifacts.region_specs[i].neighbors.size());
    (void)means;
  }

  // --- Game + desired fields. -------------------------------------------
  core::GameConfig game_config;
  game_config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(game_config.lattice);
  game_config.utility = tables.utility;
  game_config.privacy = tables.privacy;
  game_config.step_size = 0.5;
  const core::MultiRegionGame game(std::move(game_config),
                                   artifacts.region_specs);

  // Desired field: the equilibrium the system reaches at reference ratio
  // 0.75, with a 5% acceptable error (the paper's eps).
  core::GameState reference = game.uniform_state();
  {
    const std::vector<double> x_ref(game.num_regions(), 0.75);
    for (int t = 0; t < 3000; ++t) game.replicator_step(reference, x_ref);
  }
  core::DesiredFields desired(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    for (core::DecisionId k = 0; k < game.num_decisions(); ++k) {
      desired.set_target(i, k,
                         Interval{std::max(0.0, reference.p[i][k] - 0.05),
                                  std::min(1.0, reference.p[i][k] + 0.05)});
    }
  }

  // --- Shape the population with FDS from a cold start. ------------------
  core::FdsOptions fds_options;
  fds_options.max_step = 0.1;
  core::FdsController controller(game, desired, fds_options);
  const std::vector<double> x0(game.num_regions(), 0.2);
  sim::RunOptions options;
  options.max_rounds = 3000;
  options.record_trajectory = false;
  const auto run = sim::run_mean_field(game, controller, game.uniform_state(),
                                       x0, &desired, options);

  core::LowerBoundOptions lb_options;
  lb_options.max_step = fds_options.max_step;
  const auto bound = core::convergence_lower_bound(game, game.uniform_state(),
                                                   desired, x0, lb_options);

  std::printf("\nFDS %s after %zu rounds (lower bound: %zu rounds)\n",
              run.converged ? "converged" : "did not converge", run.rounds,
              bound.rounds);
  std::printf("final sharing ratios per region:");
  for (const double x : run.final_x) std::printf(" %.2f", x);
  std::printf("\n");
  return run.converged ? 0 : 1;
}
