// Exporting experiment series for external plotting: runs the Fig. 10-style
// comparison (fixed ratios vs FDS) and writes long-format CSV files that
// pandas/ggplot/gnuplot can consume directly.
//
//   build/examples/export_series [output_dir]
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/interval.h"
#include "core/fds.h"
#include "core/game.h"
#include "core/sensor_model.h"
#include "sim/metrics.h"
#include "sim/runner.h"

using namespace avcp;

namespace {

core::MultiRegionGame make_game() {
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  core::RegionSpec region;
  region.beta = 4.0;
  region.gamma_self = 1.0;
  return core::MultiRegionGame(std::move(config), {region});
}

bool write_file(const std::string& path,
                const std::function<void(std::ostream&)>& writer) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  writer(out);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  const auto game = make_game();
  sim::RunOptions options;
  options.max_rounds = 150;

  bool ok = true;
  // Fixed-ratio baselines.
  for (const double ratio : {0.2, 1.0}) {
    core::FixedRatioController controller(ratio);
    const auto run = sim::run_mean_field(game, controller,
                                         game.uniform_state(), {ratio},
                                         nullptr, options);
    const std::string tag = ratio < 0.5 ? "x02" : "x10";
    ok &= write_file(dir + "/trajectory_" + tag + ".csv",
                     [&](std::ostream& out) {
                       sim::write_trajectory_csv(out, run);
                     });
  }

  // FDS toward a full-sharing field.
  core::DesiredFields desired(1, game.num_decisions());
  desired.set_target(0, 0, Interval{0.9, 1.0});
  core::FdsOptions fds_options;
  fds_options.max_step = 0.1;
  core::FdsController fds(game, desired, fds_options);
  const auto run = sim::run_mean_field(game, fds, game.uniform_state(), {0.2},
                                       &desired, options);
  ok &= write_file(dir + "/trajectory_fds.csv", [&](std::ostream& out) {
    sim::write_trajectory_csv(out, run);
  });
  ok &= write_file(dir + "/ratios_fds.csv", [&](std::ostream& out) {
    sim::write_ratio_csv(out, run);
  });
  ok &= write_file(dir + "/final_state_fds.csv", [&](std::ostream& out) {
    sim::write_state_csv(out, run.final_state);
  });

  std::printf("FDS %s after %zu rounds\n",
              run.converged ? "converged" : "did not converge", run.rounds);
  return ok && run.converged ? 0 : 1;
}
