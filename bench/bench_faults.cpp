// Robustness ablation: fault-injection sweep over V2X loss rate x
// edge-server outage duration on the measured plant, with the cloud's FDS
// controller wrapped in faults::DegradedController.
//
// Each sweep cell runs the same seeded plant under a FaultModel whose
// upload/delivery/report loss share one rate and whose scheduled outage
// takes every region down for `outage_duration` rounds mid-run. Reported
// per cell: whether FDS shaped the fleet before the outage, how many
// rounds it needed to re-converge after reports resumed, the realized
// utility/privacy degradation of the post-outage tail against the
// zero-fault baseline, and the loss counters. Output is a single JSON
// document on stdout (pipe to a file for plotting):
//
//   ./build/bench/bench_faults > faults.json
//   ./build/bench/bench_faults --smoke   # tiny CI configuration
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "core/sensor_model.h"
#include "faults/degraded_controller.h"
#include "faults/fault_model.h"
#include "sim/metrics.h"
#include "system/system.h"

using namespace avcp;

namespace {

std::size_t kRounds = 150;
// Mid-shaping: FDS is still driving the fleet toward the field when the
// servers go down, so rounds-to-reconverge measures real recovery work.
constexpr std::size_t kOutageStart = 4;
std::size_t kTailRounds = 30;  // tail window for degradation means

/// 3-region chain with betas rich enough that an all-sensors-dominant
/// desired field is attainable on the measured plant (cf. system tests).
core::MultiRegionGame make_game() {
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  std::vector<core::RegionSpec> regions(3);
  for (std::size_t i = 0; i < regions.size(); ++i) {
    regions[i].beta = 4.0;
    regions[i].gamma_self = 1.0;
    if (i > 0) {
      regions[i].neighbors.emplace_back(static_cast<core::RegionId>(i - 1),
                                        0.3);
    }
    if (i + 1 < regions.size()) {
      regions[i].neighbors.emplace_back(static_cast<core::RegionId>(i + 1),
                                        0.3);
    }
  }
  return core::MultiRegionGame(std::move(config), std::move(regions));
}

core::DesiredFields make_fields(const core::MultiRegionGame& game) {
  core::DesiredFields fields(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.7, 1.0});  // P1: share everything
  }
  return fields;
}

struct CellResult {
  double loss_rate = 0.0;
  std::size_t outage_duration = 0;
  std::size_t first_converged_round = 0;  // kNoReconvergence if never
  bool converged_before_outage = false;
  std::size_t rounds_to_reconverge = 0;
  bool reconverged = false;
  faults::FaultCounters plant_losses;
  std::size_t reports_lost = 0;
  /// Per-region splits of the plant losses (from RoundReport::Faults), so
  /// the sweep attributes degradation spatially.
  std::vector<std::size_t> uploads_lost_by_region;
  std::vector<std::size_t> deliveries_lost_by_region;
  std::vector<double> utility_tail;
  std::vector<double> privacy_tail;
};

CellResult run_cell(const core::MultiRegionGame& game, double loss_rate,
                    std::size_t outage_duration) {
  CellResult result;
  result.loss_rate = loss_rate;
  result.outage_duration = outage_duration;

  faults::FaultParams fp;
  fp.upload_loss_rate = loss_rate;
  fp.delivery_loss_rate = loss_rate;
  fp.report_loss_rate = loss_rate;
  fp.seed = 404;
  if (outage_duration > 0) {
    fp.outages.push_back(faults::OutageWindow{
        faults::OutageWindow::kAllRegions, kOutageStart, outage_duration});
  }
  const faults::FaultModel model(fp);

  system::SystemParams params;
  params.vehicles_per_region = 60;
  params.seed = 11;
  system::CooperativePerceptionSystem plant(game, params, &model);
  plant.init_from(game.uniform_state());

  const auto fields = make_fields(game);
  core::FdsOptions fds_options;
  fds_options.max_step = 0.15;
  core::FdsController fds(game, fields, fds_options);
  faults::DegradedOptions degraded_options;
  degraded_options.max_step = fds_options.max_step;
  degraded_options.staleness_budget = 2;
  faults::DegradedController controller(fds, model, degraded_options);

  result.uploads_lost_by_region.assign(game.num_regions(), 0);
  result.deliveries_lost_by_region.assign(game.num_regions(), 0);
  std::vector<core::GameState> trajectory;
  trajectory.reserve(kRounds);
  for (std::size_t t = 0; t < kRounds; ++t) {
    const auto report = plant.run_round(controller);
    for (core::RegionId i = 0; i < game.num_regions(); ++i) {
      result.uploads_lost_by_region[i] += report.faults.uploads_lost_by_region[i];
      result.deliveries_lost_by_region[i] +=
          report.faults.deliveries_lost_by_region[i];
    }
    trajectory.push_back(report.state);
    if (t + 1 == kOutageStart && fields.satisfied(report.state, 1e-9)) {
      result.converged_before_outage = true;
    }
    if (t + 1 > kRounds - kTailRounds) {
      double u = 0.0;
      double p = 0.0;
      for (core::RegionId i = 0; i < game.num_regions(); ++i) {
        u += report.mean_utility[i];
        p += report.mean_privacy[i];
      }
      result.utility_tail.push_back(u / static_cast<double>(game.num_regions()));
      result.privacy_tail.push_back(p / static_cast<double>(game.num_regions()));
    }
  }
  result.first_converged_round =
      sim::rounds_to_reconverge(trajectory, fields, 0, 1e-9);
  const std::size_t resume = kOutageStart + outage_duration;
  const std::size_t rounds =
      sim::rounds_to_reconverge(trajectory, fields, resume, 1e-9);
  result.reconverged = rounds != sim::kNoReconvergence;
  result.rounds_to_reconverge = result.reconverged ? rounds : 0;
  result.plant_losses = plant.fault_counters();
  result.reports_lost = controller.counters().reports_lost;
  return result;
}

void print_size_array(const char* key, const std::vector<std::size_t>& values,
                      const char* suffix) {
  std::printf("     \"%s\": [", key);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::printf("%zu%s", values[i], i + 1 < values.size() ? ", " : "");
  }
  std::printf("]%s\n", suffix);
}

void print_cell_json(const CellResult& cell, const CellResult& baseline,
                     bool last) {
  const auto utility =
      sim::degradation(baseline.utility_tail, cell.utility_tail);
  const auto privacy =
      sim::degradation(baseline.privacy_tail, cell.privacy_tail);
  std::printf(
      "    {\"loss_rate\": %.2f, \"outage_duration\": %zu,\n"
      "     \"first_converged_round\": %zu,\n"
      "     \"converged_before_outage\": %s, \"reconverged\": %s,\n"
      "     \"rounds_to_reconverge\": %zu,\n"
      "     \"uploads_lost\": %zu, \"deliveries_lost\": %zu,\n",
      cell.loss_rate, cell.outage_duration, cell.first_converged_round,
      cell.converged_before_outage ? "true" : "false",
      cell.reconverged ? "true" : "false", cell.rounds_to_reconverge,
      cell.plant_losses.uploads_lost, cell.plant_losses.deliveries_lost);
  print_size_array("uploads_lost_by_region", cell.uploads_lost_by_region, ",");
  print_size_array("deliveries_lost_by_region", cell.deliveries_lost_by_region,
                   ",");
  std::printf(
      "     \"region_outages\": %zu, \"reports_lost\": %zu,\n"
      "     \"mean_utility_tail\": %.4f, \"utility_drop_rel\": %.4f,\n"
      "     \"mean_privacy_tail\": %.4f, \"privacy_drop_rel\": %.4f}%s\n",
      cell.plant_losses.region_outages, cell.reports_lost, utility.mean_faulty,
      utility.relative_drop, privacy.mean_faulty, privacy.relative_drop,
      last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const auto game = make_game();
  std::vector<double> loss_rates = {0.0, 0.1, 0.3};
  std::vector<std::size_t> durations = {0, 10, 25};
  if (smoke) {
    kRounds = 40;
    kTailRounds = 10;
    loss_rates = {0.0, 0.3};
    durations = {0, 10};
  }

  const CellResult baseline = run_cell(game, 0.0, 0);

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_faults\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"rounds\": %zu,\n", kRounds);
  std::printf("  \"outage_start\": %zu,\n", kOutageStart);
  std::printf("  \"tail_rounds\": %zu,\n", kTailRounds);
  std::printf("  \"sweep\": [\n");
  const std::size_t cells = loss_rates.size() * durations.size();
  std::size_t emitted = 0;
  for (const double loss : loss_rates) {
    for (const std::size_t duration : durations) {
      const CellResult cell = (loss == 0.0 && duration == 0)
                                  ? baseline
                                  : run_cell(game, loss, duration);
      print_cell_json(cell, baseline, ++emitted == cells);
    }
  }
  std::printf("  ]\n}\n");
  return bench::finish_json_output();
}
