// Chaos soak harness: the long-running ServiceEngine under everything at
// once — continuous vehicle churn, load-coupled incremental re-clustering,
// random region outages and report loss, a 20% Byzantine free-rider cohort,
// overload shedding with a bounded staleness budget, periodic checkpoints,
// and AVCP_CRASH-injected process kills — for 10k epochs (300 with
// --smoke). It asserts the service-layer robustness contract end to end:
//
//   liveness   every epoch completes; the honest fleet never collapses and
//              the controller keeps emitting ratios in [0, 1];
//   memory     live heap allocations are sampled after a warm-up fraction
//              and must not grow materially by the end (no per-epoch leak),
//              counted via overridden global operator new/delete;
//   recovery   the final JSON (stdout) — cumulative counters, final x and
//              empirical state, and a CRC over the full serialized engine —
//              is byte-identical no matter how many times or where the run
//              was killed and resumed:
//
//     bench_soak --dir d --smoke > ref.json              # uninterrupted
//     AVCP_CRASH=after:120   bench_soak --dir d2 --smoke   # exits 42
//     AVCP_CRASH=midwrite:200 bench_soak --dir d2 --smoke  # exits 42
//     bench_soak --dir d2 --smoke > out.json             # completes
//     diff ref.json out.json
//
// SIGTERM/SIGINT drain gracefully: the epoch in flight finishes, a final
// generation is flushed, and the process exits 0 without JSON (the next
// invocation resumes). Run metadata that legitimately differs across
// interrupted runs goes to stderr, never into the JSON.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_common.h"
#include "checkpoint/checkpoint.h"
#include "checkpoint/policy.h"
#include "checkpoint/recovery.h"
#include "common/serial.h"
#include "core/sensor_model.h"
#include "faults/crash_injector.h"
#include "faults/fault_model.h"
#include "roadnet/builders.h"
#include "service/service_engine.h"
#include "service/shutdown.h"

// Live-allocation accounting (process-wide in this binary only): the soak's
// bounded-memory assertion counts outstanding allocations, so a leak of
// even one allocation per epoch is visible against the post-warm-up sample.
AVCP_BENCH_DEFINE_COUNTING_ALLOCATOR()

using namespace avcp;

namespace {

constexpr std::size_t kRegions = 6;

core::MultiRegionGame make_game() {
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  std::vector<core::RegionSpec> regions(kRegions);
  for (std::size_t i = 0; i < regions.size(); ++i) {
    regions[i].beta = 3.0 + 0.2 * static_cast<double>(i);
    regions[i].gamma_self = 1.0;
    if (i > 0) {
      regions[i].neighbors.emplace_back(static_cast<core::RegionId>(i - 1),
                                        0.3);
    }
    if (i + 1 < regions.size()) {
      regions[i].neighbors.emplace_back(static_cast<core::RegionId>(i + 1),
                                        0.3);
    }
  }
  return core::MultiRegionGame(std::move(config), std::move(regions));
}

service::ServiceParams make_service_params(std::size_t threads, bool smoke) {
  service::ServiceParams sp;
  sp.vehicles_per_region = smoke ? 16 : 30;
  sp.revision_rate = 0.9;
  sp.imitation_scale = 0.7;
  sp.seed = 2026;
  sp.num_threads = threads;
  sp.attacker_fraction = 0.2;  // the acceptance cohort: 20% free-riders
  sp.churn.leave_rate = 0.02;
  sp.churn.migrate_rate = 0.08;
  sp.churn.join_slots = 6;
  sp.churn.join_rate = 0.5;
  sp.churn.seed = 17;
  sp.congestion_alpha = 0.05;
  sp.overload_events = 8;
  sp.staleness_budget = 3;
  sp.reputation.decay = 0.6;
  sp.reputation.quarantine_threshold = 0.3;
  sp.reputation.rehab_threshold = 0.05;
  sp.reputation.rehab_rounds = 50;
  sp.reputation.min_rounds = 4;
  sp.degraded.staleness_budget = 2;
  sp.degraded.max_step = 0.1;
  return sp;
}

[[nodiscard]] bool soak_fail(const char* what) {
  std::fprintf(stderr, "SOAK FAIL: %s\n", what);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "ckpt-soak";
  std::size_t epochs = 10000;
  std::size_t every = 500;
  std::size_t threads = 2;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      epochs = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--every") == 0 && i + 1 < argc) {
      every = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) {
    epochs = 300;
    every = 25;
  }

  const auto game = make_game();
  const auto graph = roadnet::make_grid(8, 8);

  faults::FaultParams fp;
  fp.report_loss_rate = 0.08;
  fp.outage_rate = 0.02;
  fp.seed = 31;
  const faults::FaultModel faults(fp);

  core::FixedRatioController inner(0.7);
  service::ServiceEngine svc(game, inner, &graph,
                             make_service_params(threads, smoke), &faults);
  const core::GameState initial = game.uniform_state();
  const std::vector<double> x0(kRegions, 0.5);

  const auto crash = faults::CrashInjector::from_env();
  const checkpoint::CheckpointStore store(dir, /*keep=*/2);
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = every;
  service::install_shutdown_handlers();

  // The bounded-memory baseline is sampled once every buffer has reached
  // its steady-state high-water mark (20% in), then compared at the end.
  const std::size_t warmup = epochs / 5;
  long long live_after_warmup = -1;

  checkpoint::RecoveryHooks hooks;
  hooks.reset = [&] { svc.init(initial, x0); };
  hooks.restore = [&](const checkpoint::CheckpointReader& reader) {
    Deserializer d = reader.section(checkpoint::kSectionService);
    svc.load_state(d);
    Deserializer::check(d.exhausted(), "trailing bytes in service section");
  };
  hooks.step = [&](std::size_t round) {
    crash.before_round(round);
    svc.run_epoch();
    crash.after_round(round);
    if (round + 1 == warmup) {
      live_after_warmup = bench::live_allocations();
    }
  };
  hooks.save = [&](checkpoint::CheckpointWriter& writer) {
    svc.save_state(writer.section(checkpoint::kSectionService));
  };
  hooks.write = [&](const checkpoint::CheckpointWriter& writer,
                    const std::filesystem::path& path) {
    if (crash.tears_checkpoint(static_cast<std::size_t>(writer.round()))) {
      writer.write_torn(path, writer.encode().size() / 2);
      faults::CrashInjector::crash();
    }
    writer.write(path);
  };
  hooks.stop = [] { return service::shutdown_requested(); };

  const auto outcome = checkpoint::run_with_recovery(store, policy, epochs, hooks);
  std::fprintf(stderr,
               "soak: resumed=%d from=%s start_round=%zu corrupt_skipped=%zu "
               "checkpoints_written=%zu stopped_early=%d completed=%zu\n",
               outcome.resumed ? 1 : 0, outcome.resumed_from.c_str(),
               outcome.start_round, outcome.corrupt_skipped,
               outcome.checkpoints_written, outcome.stopped_early ? 1 : 0,
               outcome.completed_rounds);

  if (outcome.stopped_early) {
    // Graceful drain: the final generation is on disk; the next start
    // resumes from it. No JSON — the run is not finished.
    std::fprintf(stderr, "soak: drained after SIGTERM/SIGINT at epoch %zu\n",
                 outcome.completed_rounds);
    return 0;
  }

  // --- Liveness --------------------------------------------------------
  bool ok = true;
  const service::ServiceCounters& c = svc.counters();
  if (svc.epoch() != epochs || c.epochs != epochs) {
    ok = soak_fail("epoch loop did not complete");
  }
  if (svc.fleet().size() <= svc.quarantined_count()) {
    ok = soak_fail("honest fleet collapsed");
  }
  for (const double xi : svc.x()) {
    if (!(xi >= 0.0 && xi <= 1.0)) ok = soak_fail("ratio left [0, 1]");
  }
  if (c.joins == 0 || c.leaves == 0 || c.migrations == 0) {
    ok = soak_fail("churn never fired");
  }
  if (c.recluster_deferred == 0 || c.betweenness_chunks_recomputed == 0) {
    ok = soak_fail("overload shedding / incremental refresh never exercised");
  }
  if (c.quarantines == 0) ok = soak_fail("no free-rider was ever quarantined");

  // --- Bounded memory --------------------------------------------------
  // A steady-state leak of one allocation per epoch would grow live counts
  // by (epochs - warmup); allow a generous fixed slack plus a sliver for
  // fleet-size drift, far below any real per-epoch leak.
  const long long live_final = bench::live_allocations();
  const long long budget =
      1024 + static_cast<long long>((epochs - warmup) / 16);
  std::fprintf(stderr,
               "soak: live allocs after warmup=%lld final=%lld (budget +%lld) "
               "peak_rss_bytes=%zu\n",
               live_after_warmup, live_final, budget, bench::peak_rss_bytes());
  if (outcome.start_round < warmup) {  // resumed runs past warmup: no sample
    if (live_after_warmup < 0 || live_final - live_after_warmup > budget) {
      ok = soak_fail("live allocations grew past the steady-state budget");
    }
  }

  if (!ok) return 1;

  // --- Resume-invariant JSON -------------------------------------------
  // The CRC over the complete serialized engine is the strongest cheap
  // byte-equality witness: any divergence in fleet records, reputation
  // EWMAs, loads, controller holds, or counters changes it.
  Serializer snap;
  svc.save_state(snap);
  const std::uint32_t state_crc = crc32c(snap.bytes());

  const core::GameState& final_state = svc.true_state();
  std::printf("{\n");
  std::printf("  \"bench\": \"bench_soak\",\n");
  std::printf("  \"epochs\": %zu,\n", epochs);
  std::printf("  \"fleet_size\": %zu,\n", svc.fleet().size());
  std::printf("  \"quarantined\": %zu,\n", svc.quarantined_count());
  std::printf("  \"joins\": %llu,\n", static_cast<unsigned long long>(c.joins));
  std::printf("  \"leaves\": %llu,\n",
              static_cast<unsigned long long>(c.leaves));
  std::printf("  \"migrations\": %llu,\n",
              static_cast<unsigned long long>(c.migrations));
  std::printf("  \"reclusters\": %llu,\n",
              static_cast<unsigned long long>(c.reclusters));
  std::printf("  \"recluster_deferred\": %llu,\n",
              static_cast<unsigned long long>(c.recluster_deferred));
  std::printf("  \"betweenness_chunks_recomputed\": %llu,\n",
              static_cast<unsigned long long>(c.betweenness_chunks_recomputed));
  std::printf("  \"outage_region_epochs\": %llu,\n",
              static_cast<unsigned long long>(c.outage_region_epochs));
  std::printf("  \"quarantines\": %llu,\n",
              static_cast<unsigned long long>(c.quarantines));
  std::printf("  \"releases\": %llu,\n",
              static_cast<unsigned long long>(c.releases));
  std::printf("  \"state_crc32c\": %lu,\n",
              static_cast<unsigned long>(state_crc));
  std::printf("  \"x\": [");
  for (std::size_t i = 0; i < svc.x().size(); ++i) {
    std::printf("%s%.17g", i > 0 ? ", " : "", svc.x()[i]);
  }
  std::printf("],\n");
  std::printf("  \"p\": [\n");
  for (std::size_t i = 0; i < final_state.p.size(); ++i) {
    std::printf("    [");
    for (std::size_t k = 0; k < final_state.p[i].size(); ++k) {
      std::printf("%s%.17g", k > 0 ? ", " : "", final_state.p[i][k]);
    }
    std::printf("]%s\n", i + 1 < final_state.p.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return bench::finish_json_output();
}
