// Crash-recovery driver: the measured plant under the supervisor loop.
//
// Runs the full CooperativePerceptionSystem (FDS controller, V2X link
// faults) for a fixed number of rounds inside
// checkpoint::run_with_recovery, snapshotting every few rounds. A
// faults::CrashInjector armed via the AVCP_CRASH environment variable
// ("before:R" | "after:R" | "midwrite:R") kills the process at the planned
// point with exit code 42; rerunning the same command line resumes from
// the newest intact generation. The resume-equivalence contract makes the
// final JSON (stdout) byte-identical no matter how many times — or where —
// the run was interrupted, which is exactly what the CI smoke job asserts:
//
//   bench_recovery --dir d --smoke > ref.json            # uninterrupted
//   AVCP_CRASH=after:5   bench_recovery --dir d2 --smoke   # exits 42
//   AVCP_CRASH=midwrite:8 bench_recovery --dir d2 --smoke  # exits 42
//   bench_recovery --dir d2 --smoke > out.json           # completes
//   diff ref.json out.json
//
// Run metadata that legitimately differs across interrupted runs (what was
// resumed, generations skipped) goes to stderr, never into the JSON.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "checkpoint/checkpoint.h"
#include "checkpoint/policy.h"
#include "checkpoint/recovery.h"
#include "core/sensor_model.h"
#include "faults/crash_injector.h"
#include "faults/fault_model.h"
#include "system/system.h"

using namespace avcp;

namespace {

core::MultiRegionGame make_game() {
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  std::vector<core::RegionSpec> regions(3);
  for (std::size_t i = 0; i < regions.size(); ++i) {
    regions[i].beta = 4.0;
    regions[i].gamma_self = 1.0;
    if (i > 0) {
      regions[i].neighbors.emplace_back(static_cast<core::RegionId>(i - 1),
                                        0.3);
    }
    if (i + 1 < regions.size()) {
      regions[i].neighbors.emplace_back(static_cast<core::RegionId>(i + 1),
                                        0.3);
    }
  }
  return core::MultiRegionGame(std::move(config), std::move(regions));
}

core::DesiredFields make_fields(const core::MultiRegionGame& game) {
  core::DesiredFields fields(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.7, 1.0});
  }
  return fields;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "ckpt-recovery";
  std::size_t rounds = 30;
  std::size_t every = 4;
  std::size_t threads = 1;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--every") == 0 && i + 1 < argc) {
      every = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) rounds = 12;

  const auto game = make_game();
  const auto fields = make_fields(game);
  core::FdsController controller(game, fields, bench::bench_fds_options());

  // A lossy link layer, so the cumulative fault counters exercise the
  // snapshot path too (they must survive restore bit-exactly).
  faults::FaultParams fparams;
  fparams.upload_loss_rate = 0.1;
  fparams.seed = 7;
  const faults::FaultModel faults(fparams);

  system::SystemParams params;
  params.vehicles_per_region = smoke ? 24 : 48;
  params.seed = 2024;
  params.num_threads = threads;
  system::CooperativePerceptionSystem plant(game, params, &faults);

  const auto crash = faults::CrashInjector::from_env();
  const checkpoint::CheckpointStore store(dir, /*keep=*/2);
  checkpoint::CheckpointPolicy policy;
  policy.every_rounds = every;

  checkpoint::RecoveryHooks hooks;
  hooks.reset = [&] { plant.init_from(game.uniform_state()); };
  hooks.restore = [&](const checkpoint::CheckpointReader& reader) {
    Deserializer d = reader.section(checkpoint::kSectionSystem);
    plant.load_state(d);
    Deserializer::check(d.exhausted(), "trailing bytes in system section");
  };
  hooks.step = [&](std::size_t round) {
    crash.before_round(round);
    plant.run_round(controller);
    crash.after_round(round);
  };
  hooks.save = [&](checkpoint::CheckpointWriter& writer) {
    plant.save_state(writer.section(checkpoint::kSectionSystem));
  };
  hooks.write = [&](const checkpoint::CheckpointWriter& writer,
                    const std::filesystem::path& path) {
    if (crash.tears_checkpoint(static_cast<std::size_t>(writer.round()))) {
      writer.write_torn(path, writer.encode().size() / 2);
      faults::CrashInjector::crash();
    }
    writer.write(path);
  };

  const auto outcome =
      checkpoint::run_with_recovery(store, policy, rounds, hooks);
  std::fprintf(stderr,
               "recovery: resumed=%d from=%s start_round=%zu "
               "corrupt_skipped=%zu checkpoints_written=%zu\n",
               outcome.resumed ? 1 : 0, outcome.resumed_from.c_str(),
               outcome.start_round, outcome.corrupt_skipped,
               outcome.checkpoints_written);

  // The JSON carries only run-invariant content: identical whether the run
  // was straight-through or crashed and resumed any number of times.
  const core::GameState final_state = plant.empirical_state();
  const auto& counters = plant.fault_counters();
  std::printf("{\n");
  std::printf("  \"bench\": \"bench_recovery\",\n");
  std::printf("  \"rounds\": %zu,\n", rounds);
  std::printf("  \"uploads_lost\": %zu,\n", counters.uploads_lost);
  std::printf("  \"deliveries_lost\": %zu,\n", counters.deliveries_lost);
  std::printf("  \"x\": [");
  for (std::size_t i = 0; i < plant.current_x().size(); ++i) {
    std::printf("%s%.17g", i > 0 ? ", " : "", plant.current_x()[i]);
  }
  std::printf("],\n");
  std::printf("  \"p\": [\n");
  for (std::size_t i = 0; i < final_state.p.size(); ++i) {
    std::printf("    [");
    for (std::size_t k = 0; k < final_state.p[i].size(); ++k) {
      std::printf("%s%.17g", k > 0 ? ", " : "", final_state.p[i][k]);
    }
    std::printf("]%s\n", i + 1 < final_state.p.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return bench::finish_json_output();
}
