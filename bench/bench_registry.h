// Self-registering micro-benchmark harness (no external dependency).
//
// Cases register themselves at static-init time through the BENCHMARK
// macro — the MathGeoLib-TestRunner idiom: the macro plants a static
// registrar whose initializer appends the case to a global registry, so
// adding a benchmark anywhere in the binary is one function + one macro
// line, and every future case is timed automatically. The registrar
// object doubles as a fluent handle for per-case control:
//
//   void BM_Thing(bench::State& state) {
//     for (auto _ : state) bench::DoNotOptimize(work(state.range(0)));
//     state.SetItemsProcessed(state.iterations() * n);
//   }
//   BENCHMARK(BM_Thing)->Arg(4)->Arg(100)->Trials(5)->MinTime(0.1);
//
// The runner auto-calibrates the iteration count until a repetition takes
// at least MinTime, then reports the best of Trials repetitions (min is
// the standard noise-robust estimator for microbenchmarks: noise is
// strictly additive).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace avcp::bench {

template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Per-repetition state handed to the case body. `for (auto _ : state)`
/// runs the calibrated iteration count; the timer covers exactly that
/// loop (setup before it is untimed).
class State {
 public:
  State(std::size_t iterations, std::vector<std::int64_t> args)
      : max_iterations_(iterations), args_(std::move(args)) {}

  class iterator {
   public:
    iterator(State* state, std::size_t remaining)
        : state_(state), remaining_(remaining) {}
    iterator& operator++() {
      --remaining_;
      return *this;
    }
    bool operator!=(const iterator& other) {
      if (remaining_ != other.remaining_) return true;
      state_->stop_timer();
      return false;
    }
    int operator*() const { return 0; }

   private:
    State* state_;
    std::size_t remaining_;
  };

  iterator begin() {
    start_ = std::chrono::steady_clock::now();
    return iterator(this, max_iterations_);
  }
  iterator end() { return iterator(this, 0); }

  std::int64_t range(std::size_t i = 0) const {
    return i < args_.size() ? args_[i] : 0;
  }
  std::size_t iterations() const noexcept { return max_iterations_; }

  /// Optional throughput metadata: total items processed across all
  /// iterations of this repetition (reported as a rate).
  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }
  void SetLabel(const std::string& label) { label_ = label; }

  double seconds() const noexcept { return seconds_; }
  std::int64_t items_processed() const noexcept { return items_processed_; }
  const std::string& label() const noexcept { return label_; }

 private:
  void stop_timer() {
    seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
                   .count();
  }

  std::size_t max_iterations_;
  std::vector<std::int64_t> args_;
  std::chrono::steady_clock::time_point start_{};
  double seconds_ = 0.0;
  std::int64_t items_processed_ = 0;
  std::string label_;
};

using BenchFn = void (*)(State&);

/// One registered case plus its run control. The BENCHMARK macro returns
/// the Registration*, so ->Arg()/->Args()/->Trials()/->MinTime() chain at
/// namespace scope.
class Registration {
 public:
  Registration(const char* name, BenchFn fn) : name_(name), fn_(fn) {}

  Registration* Arg(std::int64_t a) {
    arg_sets_.push_back({a});
    return this;
  }
  Registration* Args(std::vector<std::int64_t> args) {
    arg_sets_.push_back(std::move(args));
    return this;
  }
  /// Repetitions per case; the best (minimum) time is reported.
  Registration* Trials(int trials) {
    trials_ = trials < 1 ? 1 : trials;
    return this;
  }
  /// Calibration floor: iterations scale up until one repetition takes at
  /// least this long.
  Registration* MinTime(double seconds) {
    min_time_s_ = seconds;
    return this;
  }

  const char* name() const noexcept { return name_; }
  BenchFn fn() const noexcept { return fn_; }
  const std::vector<std::vector<std::int64_t>>& arg_sets() const noexcept {
    return arg_sets_;
  }
  int trials() const noexcept { return trials_; }
  double min_time() const noexcept { return min_time_s_; }

 private:
  const char* name_;
  BenchFn fn_;
  std::vector<std::vector<std::int64_t>> arg_sets_;
  int trials_ = 3;
  double min_time_s_ = 0.05;
};

/// Function-local static: registry construction order is safe no matter
/// which translation unit's registrars run first.
inline std::vector<Registration*>& registry() {
  static std::vector<Registration*> cases;
  return cases;
}

inline Registration* RegisterBench(const char* name, BenchFn fn) {
  auto* reg = new Registration(name, fn);  // leaked by design: lives forever
  registry().push_back(reg);
  return reg;
}

#define BENCHMARK(fn)                                \
  static ::avcp::bench::Registration* bench_reg_##fn =     \
      ::avcp::bench::RegisterBench(#fn, fn)

namespace detail {

inline std::string case_display_name(const Registration& reg,
                                     const std::vector<std::int64_t>& args) {
  std::string name = reg.name();
  for (const std::int64_t a : args) {
    name += '/';
    name += std::to_string(a);
  }
  return name;
}

inline double run_repetition(const Registration& reg,
                             const std::vector<std::int64_t>& args,
                             std::size_t iterations, State* out = nullptr) {
  State state(iterations, args);
  reg.fn()(state);
  if (out != nullptr) *out = std::move(state);
  return out != nullptr ? out->seconds() : state.seconds();
}

inline void format_time(double seconds_per_op, char* buf, std::size_t n) {
  if (seconds_per_op >= 1.0) {
    std::snprintf(buf, n, "%.3f s", seconds_per_op);
  } else if (seconds_per_op >= 1e-3) {
    std::snprintf(buf, n, "%.3f ms", seconds_per_op * 1e3);
  } else if (seconds_per_op >= 1e-6) {
    std::snprintf(buf, n, "%.3f us", seconds_per_op * 1e6);
  } else {
    std::snprintf(buf, n, "%.1f ns", seconds_per_op * 1e9);
  }
}

}  // namespace detail

/// Runs every registered case whose display name contains `filter` (null
/// or empty = all), printing one row per (case, arg-set). Returns 0, or 1
/// when a filter matched nothing (a typo'd filter should not silently
/// pass in CI).
inline int run_registered_benchmarks(const char* filter = nullptr) {
  std::printf("%-44s %12s %12s %16s\n", "benchmark", "iterations",
              "time/op", "throughput");
  std::printf("%.*s\n", 88,
              "----------------------------------------------------------------"
              "------------------------");
  std::size_t matched = 0;
  for (const Registration* reg : registry()) {
    static const std::vector<std::int64_t> kNoArgs;
    const auto& sets = reg->arg_sets();
    const std::size_t num_sets = sets.empty() ? 1 : sets.size();
    for (std::size_t si = 0; si < num_sets; ++si) {
      const auto& args = sets.empty() ? kNoArgs : sets[si];
      const std::string display = detail::case_display_name(*reg, args);
      if (filter != nullptr && filter[0] != '\0' &&
          display.find(filter) == std::string::npos) {
        continue;
      }
      ++matched;
      // Calibrate: grow the iteration count geometrically until one
      // repetition clears the case's time floor.
      std::size_t iters = 1;
      double t = detail::run_repetition(*reg, args, iters);
      while (t < reg->min_time() && iters < (std::size_t{1} << 30)) {
        const double scale =
            t > 0.0 ? std::min(10.0, 1.2 * reg->min_time() / t) : 10.0;
        iters = std::max(iters + 1,
                         static_cast<std::size_t>(
                             static_cast<double>(iters) * scale));
        t = detail::run_repetition(*reg, args, iters);
      }
      // Timed repetitions: report the best.
      State best_state(0, {});
      double best = 0.0;
      for (int trial = 0; trial < reg->trials(); ++trial) {
        State last(0, {});
        const double cur = detail::run_repetition(*reg, args, iters, &last);
        if (trial == 0 || cur < best) {
          best = cur;
          best_state = std::move(last);
        }
      }
      const double per_op = best / static_cast<double>(iters);
      char time_buf[32];
      detail::format_time(per_op, time_buf, sizeof(time_buf));
      char rate_buf[32] = "";
      const std::int64_t items = best_state.items_processed();
      if (items > 0 && best > 0.0) {
        std::snprintf(rate_buf, sizeof(rate_buf), "%.2fM items/s",
                      static_cast<double>(items) / best / 1e6);
      }
      std::printf("%-44s %12zu %12s %16s", display.c_str(), iters, time_buf,
                  rate_buf);
      if (!best_state.label().empty()) {
        std::printf("  %s", best_state.label().c_str());
      }
      std::printf("\n");
    }
  }
  if (matched == 0) {
    std::fprintf(stderr, "no benchmark matches filter '%s'\n",
                 filter == nullptr ? "" : filter);
    return 1;
  }
  return 0;
}

}  // namespace avcp::bench
