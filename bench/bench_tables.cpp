// Reproduces Table III (sensor utility contributions), Table II (per-
// decision utility and privacy cost), and the Fig. 2 decision lattice.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/lattice.h"
#include "core/sensor_model.h"

using namespace avcp;
using namespace avcp::core;

int main() {
  const DecisionLattice lattice(3);
  const auto sensors = paper_sensors();
  const auto tables = paper_decision_tables(lattice);

  bench::print_header(
      "Table III: utility contribution of different sensors in perception");
  std::printf("%-28s %8s %8s %8s\n", "Factor", "Camera", "LiDAR", "Radar");
  bench::print_rule();
  const auto factors = perception_factor_names();
  for (std::size_t f = 0; f < factors.size(); ++f) {
    std::printf("%-28s %8.1f %8.1f %8.1f\n", factors[f].c_str(),
                sensors[0].factor_scores[f], sensors[1].factor_scores[f],
                sensors[2].factor_scores[f]);
  }
  bench::print_rule();
  std::printf("%-28s %8.0f %8.0f %8.0f   (paper: 7 / 6 / 7)\n",
              "Sum contribution", sensors[0].utility_sum(),
              sensors[1].utility_sum(), sensors[2].utility_sum());

  bench::print_header("Table II: per-decision utility and privacy cost");
  std::printf("%-22s %8s %12s %12s %12s\n", "Decision", "Utility",
              "PrivacyCost", "f_k (norm)", "g_k (norm)");
  bench::print_rule();
  for (DecisionId k = 0; k < lattice.num_decisions(); ++k) {
    std::printf("%-22s %8.0f %12.1f %12.3f %12.3f\n",
                lattice.label(k).c_str(), tables.raw_utility[k],
                tables.raw_privacy[k], tables.utility[k], tables.privacy[k]);
  }
  std::printf("(paper utility column: 20 13 14 13 7 6 7 0; "
              "privacy column: 1.6 1.5 1.1 0.6 1.0 0.5 0.1 0)\n");

  bench::print_header("Fig. 2: lattice of data-sharing decisions (DAG)");
  std::printf("Cover edges (predecessor -> successor, successor shares one "
              "sensor type less):\n");
  for (const auto& [k, l] : lattice.hasse_edges()) {
    std::printf("  %-18s -> %s\n", lattice.label(k).c_str(),
                lattice.label(l).c_str());
  }
  std::printf("Total edges: %zu (boolean lattice B_3 has 12 cover edges)\n",
              lattice.hasse_edges().size());
  return 0;
}
