// Ablations over the design choices DESIGN.md calls out:
//   A1 — FDS step bound Lambda (Eq. 13) vs convergence time,
//   A2 — interior margin (our robustness addition to Algorithm 2),
//   A3 — strict vs non-strict lattice access rule (Eq. (1) vs Eq. (4)),
//   A4 — growth-factor floor (pure Eq. (5) vs bounded attrition),
//   A5 — agent-based failure injection via the fault layer: defector
//        vehicles that never revise (see bench_faults for the full
//        loss-rate x outage sweep on the measured plant).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "system/system.h"
#include "core/equilibrium.h"
#include "core/sensor_model.h"
#include "faults/fault_model.h"
#include "sim/agent_sim.h"
#include "perception/scheduler.h"
#include "sim/time_varying.h"
#include "trace/density.h"

using namespace avcp;

namespace {

sim::PipelineArtifacts small_artifacts() {
  return sim::build_pipeline(
      bench::paper_config(sim::CoefficientKind::kBetweenness, /*small=*/true));
}

core::FdsOptions base_opts() {
  auto opts = bench::bench_fds_options();
  opts.max_step = 0.2;
  return opts;
}

std::size_t fds_rounds(const core::MultiRegionGame& game,
                       const core::DesiredFields& fields,
                       const core::FdsOptions& opts, bool* converged) {
  core::FdsController controller(game, fields, opts);
  sim::RunOptions options;
  options.max_rounds = 4000;
  options.record_trajectory = false;
  const auto run = sim::run_mean_field(
      game, controller, game.uniform_state(),
      std::vector<double>(game.num_regions(), 0.2), &fields, options);
  *converged = run.converged;
  return run.rounds;
}

}  // namespace

int main() {
  const auto artifacts = small_artifacts();
  const auto game = bench::make_paper_game(artifacts);
  const auto fields =
      bench::attainable_fields(game, game.uniform_state(), 0.75, 0.03);

  bench::print_header("A1: FDS convergence vs step bound Lambda (Eq. 13)");
  std::printf("%-10s %12s %10s\n", "Lambda", "rounds", "converged");
  bench::print_rule();
  for (const double lambda : {0.02, 0.05, 0.1, 0.2, 0.5}) {
    auto opts = base_opts();
    opts.max_step = lambda;
    bool ok = false;
    const auto rounds = fds_rounds(game, fields, opts, &ok);
    std::printf("%-10.2f %12zu %10s\n", lambda, rounds, ok ? "yes" : "no");
  }

  bench::print_header("A2: FDS convergence vs interior margin");
  std::printf("%-10s %12s %10s   (0 = Algorithm 2's boundary-seeking)\n",
              "margin", "rounds", "converged");
  bench::print_rule();
  for (const double margin : {0.0, 0.05, 0.1, 0.2}) {
    auto opts = base_opts();
    opts.interior_margin = margin;
    bool ok = false;
    const auto rounds = fds_rounds(game, fields, opts, &ok);
    std::printf("%-10.2f %12zu %10s\n", margin, rounds, ok ? "yes" : "no");
  }

  bench::print_header(
      "A3: access rule — Eq. (4) subset-or-equal vs Eq. (1) strict subset");
  for (const auto access : {core::AccessRule::kSubsetOrEqual,
                            core::AccessRule::kStrictSubset}) {
    core::GameConfig config;
    config.lattice = core::DecisionLattice(3);
    const auto tables = core::paper_decision_tables(config.lattice);
    config.utility = tables.utility;
    config.privacy = tables.privacy;
    config.step_size = 0.5;
    config.access = access;
    const core::MultiRegionGame variant(std::move(config),
                                        artifacts.region_specs);
    core::FixedRatioController controller(1.0);
    sim::RunOptions options;
    options.max_rounds = 1500;
    options.record_trajectory = false;
    const auto run = sim::run_mean_field(
        variant, controller, variant.uniform_state(),
        std::vector<double>(variant.num_regions(), 1.0), nullptr, options);
    // Average share of rich-sharing decisions (P1..P4) across regions.
    double rich = 0.0;
    for (core::RegionId i = 0; i < variant.num_regions(); ++i) {
      for (core::DecisionId k = 0; k < 4; ++k) {
        rich += run.final_state.p[i][k];
      }
    }
    rich /= static_cast<double>(variant.num_regions());
    std::printf("  %-16s rich-sharing share at x=1.0: %5.1f%%\n",
                access == core::AccessRule::kSubsetOrEqual ? "subset-or-equal"
                                                           : "strict-subset",
                100.0 * rich);
  }
  std::printf("(strict access removes the own-group pool, weakening the "
              "sharing coalition)\n");

  bench::print_header("A4: growth-factor floor — pure Eq. (5) vs bounded");
  for (const double floor : {0.0, 0.01, 0.1}) {
    core::GameConfig config;
    config.lattice = core::DecisionLattice(3);
    const auto tables = core::paper_decision_tables(config.lattice);
    config.utility = tables.utility;
    config.privacy = tables.privacy;
    config.step_size = 0.5;
    config.min_growth_factor = floor;
    const core::MultiRegionGame variant(std::move(config),
                                        artifacts.region_specs);
    const auto variant_fields =
        bench::attainable_fields(variant, variant.uniform_state(), 0.75, 0.03);
    bool ok = false;
    const auto rounds =
        fds_rounds(variant, variant_fields, base_opts(), &ok);
    std::printf("  floor %-6.2f rounds %6zu converged %s\n", floor, rounds,
                ok ? "yes" : "no");
  }

  bench::print_header(
      "A5: agent-based failure injection — defectors never revise");
  std::printf("%-12s %16s\n", "defectors", "p(P8) after 250 rounds at x=0");
  bench::print_rule();
  for (const double frac : {0.0, 0.25, 0.5, 0.75}) {
    core::GameConfig config;
    config.lattice = core::DecisionLattice(3);
    const auto tables = core::paper_decision_tables(config.lattice);
    config.utility = tables.utility;
    config.privacy = tables.privacy;
    config.step_size = 0.5;
    const core::MultiRegionGame single(std::move(config),
                                       {core::RegionSpec{}});
    // Defectors come from the shared fault layer (one schedule for the
    // agent sim and the system plant), not the deprecated params knob.
    faults::FaultParams fault_params;
    fault_params.defector_fraction = frac;
    fault_params.seed = 7;
    const faults::FaultModel fault_model(fault_params);
    sim::AgentSimParams params;
    params.vehicles_per_region = 2000;
    params.imitation_scale = 0.5;
    params.seed = 7;
    sim::AgentBasedSim agent_sim(single, params, &fault_model);
    agent_sim.init_from(single.uniform_state());
    const std::vector<double> x = {0.0};
    for (int t = 0; t < 250; ++t) agent_sim.step(x);
    std::printf("%-12.2f %16.3f\n", frac,
                agent_sim.empirical_state().p[0][7]);
  }
  std::printf("(the honest population converges to the no-share optimum; "
              "frozen vehicles cap it)\n");

  bench::print_header(
      "A6: utility-coefficient noise vs convergence time (paper future work)");
  // The paper's §VII asks how approximation errors in the region utility
  // coefficients beta_i affect convergence. Perturb each beta
  // multiplicatively and re-run FDS against the *unperturbed* desired field.
  std::printf("%-12s %12s %10s\n", "noise (+-)", "rounds", "converged");
  bench::print_rule();
  for (const double noise : {0.0, 0.1, 0.25, 0.5}) {
    Rng rng(42);
    auto specs = artifacts.region_specs;
    for (auto& spec : specs) {
      spec.beta *= 1.0 + rng.uniform(-noise, noise);
    }
    core::GameConfig config;
    config.lattice = core::DecisionLattice(3);
    const auto tables = core::paper_decision_tables(config.lattice);
    config.utility = tables.utility;
    config.privacy = tables.privacy;
    config.step_size = 0.5;
    const core::MultiRegionGame noisy(std::move(config), std::move(specs));
    bool ok = false;
    const auto rounds = fds_rounds(noisy, fields, base_opts(), &ok);
    std::printf("%-12.2f %12zu %10s\n", noise, rounds, ok ? "yes" : "no");
  }
  std::printf("(the desired field was derived from the true betas; mild "
              "coefficient error\n is absorbed, large error can make the "
              "field unattainable)\n");

  bench::print_header("A7: FDS sweep order — Jacobi (paper) vs Gauss-Seidel");
  for (const auto sweep : {core::FdsOptions::Sweep::kJacobi,
                           core::FdsOptions::Sweep::kGaussSeidel}) {
    auto opts = base_opts();
    opts.sweep = sweep;
    bool ok = false;
    const auto rounds = fds_rounds(game, fields, opts, &ok);
    std::printf("  %-14s rounds %6zu converged %s\n",
                sweep == core::FdsOptions::Sweep::kJacobi ? "Jacobi"
                                                          : "Gauss-Seidel",
                rounds, ok ? "yes" : "no");
  }

  bench::print_header("A8: equilibrium map x -> long-run state (one region)");
  // Where Fig. 10's two fixed ratios sit inside the full spectrum: the
  // long-run limit from the uniform state as the constant ratio sweeps 0..1.
  {
    core::GameConfig config;
    config.lattice = core::DecisionLattice(3);
    const auto tables = core::paper_decision_tables(config.lattice);
    config.utility = tables.utility;
    config.privacy = tables.privacy;
    config.step_size = 0.5;
    core::RegionSpec spec;
    spec.beta = 3.0;
    spec.gamma_self = 1.0;
    const core::MultiRegionGame single(std::move(config), {spec});
    const auto map = core::equilibrium_map(single, 11);
    std::printf("%-6s %-22s %s\n", "x", "dominant decision",
                "expected shared sensors");
    bench::print_rule();
    for (const auto& entry : map) {
      core::DecisionId top = 0;
      for (core::DecisionId k = 1; k < 8; ++k) {
        if (entry.limit.p[0][k] > entry.limit.p[0][top]) top = k;
      }
      double richness = 0.0;
      for (core::DecisionId k = 0; k < 8; ++k) {
        richness += entry.limit.p[0][k] *
                    static_cast<double>(single.lattice().cardinality(k));
      }
      std::printf("%-6.1f %-22s %.2f\n", entry.x,
                  single.lattice().label(top).c_str(), richness);
    }
    std::printf("(monotone enrichment of the sustained sharing level in x)\n");
  }

  bench::print_header(
      "A9: Property 3.1(d) disjointness — measured utility saturation");
  // The analytic fitness assumes shared data from different vehicles is
  // pairwise disjoint. On the measured plant, overlapping collections
  // inflate coverage (redundant observations), so the same ratio yields a
  // higher mean utility the denser the overlap.
  {
    core::GameConfig config;
    config.lattice = core::DecisionLattice(3);
    const auto tables = core::paper_decision_tables(config.lattice);
    config.utility = tables.utility;
    config.privacy = tables.privacy;
    config.step_size = 0.5;
    core::RegionSpec spec;
    spec.beta = 2.0;
    spec.gamma_self = 1.0;
    const core::MultiRegionGame single(std::move(config), {spec});
    std::printf("%-34s %14s\n", "collection model", "mean utility @ x=0.3");
    bench::print_rule();
    for (const bool disjoint : {true, false}) {
      system::SystemParams params;
      params.vehicles_per_region = 150;
      params.disjoint_collections = disjoint;
      params.collect_fraction = 0.05;
      params.revision_rate = 0.0;
      params.seed = 33;
      system::CooperativePerceptionSystem plant(single, params);
      std::vector<double> all_p1(8, 0.0);
      all_p1[0] = 1.0;
      plant.init_from(single.broadcast_state(all_p1));
      core::FixedRatioController controller(0.3);
      double total = 0.0;
      for (int t = 0; t < 10; ++t) {
        total += plant.run_round(controller).mean_utility[0];
      }
      std::printf("%-34s %14.3f\n",
                  disjoint ? "disjoint (paper assumption)" : "overlapping",
                  total / 10.0);
    }
  }

  bench::print_header(
      "A10: peak/off-peak beta schedule — re-convergence per epoch "
      "(paper future work)");
  {
    // Epoch betas from the trace's own TD windows; the desired field is
    // re-derived per epoch and FDS re-shapes the persistent population.
    const auto config =
        bench::paper_config(sim::CoefficientKind::kTrafficDensity,
                            /*small=*/true);
    trace::TrafficDensityAccumulator density(
        artifacts.graph.num_segments(), config.td_window_s,
        config.traces.duration_s);
    for (const trace::GpsFix& fix : artifacts.fixes) density.add(fix);
    const auto schedule = sim::beta_schedule_from_density(
        density, artifacts.clustering, /*windows_per_epoch=*/4,
        /*beta_lo=*/1.5, /*beta_hi=*/3.5, /*rounds_per_epoch=*/400);

    const sim::FieldFactory factory =
        [](const core::MultiRegionGame& epoch_game,
           const core::GameState& state) {
          core::GameState eq = state;
          const std::vector<double> x_ref(epoch_game.num_regions(), 0.75);
          for (int t = 0; t < 3000; ++t) epoch_game.replicator_step(eq, x_ref);
          core::DesiredFields fields(epoch_game.num_regions(),
                                     epoch_game.num_decisions());
          for (core::RegionId i = 0; i < epoch_game.num_regions(); ++i) {
            for (core::DecisionId k = 0; k < epoch_game.num_decisions(); ++k) {
              fields.set_target(i, k,
                                Interval{std::max(0.0, eq.p[i][k] - 0.05),
                                         std::min(1.0, eq.p[i][k] + 0.05)});
            }
          }
          return fields;
        };
    sim::TimeVaryingOptions options;
    options.fds = base_opts();
    options.reseed_mix = 0.15;
    const auto outcomes = sim::run_time_varying(
        game, schedule, factory, game.uniform_state(),
        std::vector<double>(game.num_regions(), 0.3), options);
    std::printf("%-8s %12s %12s %14s\n", "epoch", "mean beta", "converged",
                "rounds");
    bench::print_rule();
    for (std::size_t e = 0; e < outcomes.size(); ++e) {
      double mean_beta = 0.0;
      for (const double b : schedule.epochs[e]) mean_beta += b;
      mean_beta /= static_cast<double>(schedule.epochs[e].size());
      std::printf("%-8zu %12.2f %12s %14zu\n", e, mean_beta,
                  outcomes[e].converged ? "yes" : "no",
                  outcomes[e].rounds_to_converge);
    }
    std::printf("(the controller re-shapes the persistent population after "
                "every coefficient switch)\n");
  }

  bench::print_header(
      "A11: bounded connection windows — delivered utility vs budget "
      "(paper future work)");
  // Vehicles connect to the edge server only briefly; the scheduler picks
  // which admissible desired items to push. Utility delivered per receiver
  // as the per-vehicle budget grows (concave: heaviest items go first).
  {
    Rng rng(55);
    const core::DecisionLattice lattice(3);
    const std::vector<double> sensor_privacy = {1.0, 0.5, 0.1};
    const auto universe =
        perception::DataUniverse::synthetic(3, 40, sensor_privacy, rng);
    const perception::DistributionScheduler scheduler(lattice, universe);

    // 30 senders with random decisions/items; 30 receivers with random
    // desires.
    std::vector<perception::SenderUpload> uploads(30);
    for (auto& upload : uploads) {
      upload.decision = static_cast<core::DecisionId>(rng.uniform_int(0, 7));
      for (perception::ItemId id = 0; id < universe.size(); ++id) {
        if (rng.bernoulli(0.2) &&
            lattice.shares(upload.decision, universe.item(id).sensor)) {
          upload.items.push_back(id);
        }
      }
    }
    std::vector<perception::DistributionRequest> receivers(30);
    for (auto& receiver : receivers) {
      receiver.decision = static_cast<core::DecisionId>(rng.uniform_int(0, 7));
      for (perception::ItemId id = 0; id < universe.size(); ++id) {
        if (rng.bernoulli(0.3)) receiver.desired.push_back(id);
      }
    }

    // Unlimited reference.
    const auto unlimited = scheduler.plan(uploads, receivers);
    std::printf("%-14s %18s %12s\n", "budget/vehicle", "delivered utility",
                "of unlimited");
    bench::print_rule();
    for (const std::size_t budget : {1u, 2u, 4u, 8u, 16u, 32u}) {
      for (auto& receiver : receivers) receiver.budget_items = budget;
      const auto plan = scheduler.plan(uploads, receivers);
      std::printf("%-14zu %18.1f %11.0f%%\n", budget,
                  plan.total_utility_weight,
                  100.0 * plan.total_utility_weight /
                      std::max(1e-9, unlimited.total_utility_weight));
    }
    std::printf("(concave curve: the weight-greedy schedule front-loads the "
                "most valuable items)\n");
  }
  return 0;
}
