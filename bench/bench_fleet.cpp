// Fleet-scale engine bench: the million-vehicle sharded SoA engine
// (system/fleet_engine.h) against the pre-SoA per-round idiom, with the
// memory footprint and the bit-identity contract measured alongside
// throughput. JSON on stdout (CI stores it as BENCH_fleet.json):
//
//   ./build/bench/bench_fleet            # 100k / 500k / 1M sweep
//   ./build/bench/bench_fleet --smoke    # 100k only (CI configuration)
//
// Three sections:
//
//   reference  the pre-SoA round shape at 100k vehicles — a fresh
//              std::vector<perception::Vehicle> per round (two heap
//              ItemSets per vehicle), per-item Bernoulli scene sampling
//              (~2Ω draws per vehicle), and a by-value RoundOutcome —
//              the honest denominator for the speedup gate;
//   sweep      ShardedFleetEngine at each scale: streaming ingest
//              seconds, rounds/s over timed steady-state rounds, peak
//              RSS (process-cumulative; points run in ascending scale),
//              and the live-allocation delta across the timed rounds,
//              which must be exactly zero after the warm-up round;
//   identity   the same 100k workload at raw lane counts 1/2/8
//              (clamp_lanes=false), compared by per-round state_hash.
//
// Acceptance (the binary exits non-zero on violation; CI re-checks from
// the JSON): aggregated 100k rounds/s >= 5x the reference, zero
// steady-state allocations at every scale, bit-identical hashes at every
// lane count, and — full sweep only — the 1M-vehicle aggregated round in
// at most 1 second.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/fleet_stream.h"
#include "core/lattice.h"
#include "perception/data_plane.h"
#include "system/fleet_engine.h"

AVCP_BENCH_DEFINE_COUNTING_ALLOCATOR()

using namespace avcp;

namespace {

constexpr std::uint64_t kSeed = 515;
constexpr std::size_t kSensors = 3;
constexpr std::size_t kItemsPerSensor = 128;
constexpr double kSharingRatio = 0.7;
constexpr double kCollectFraction = 0.06;
constexpr double kDesireFraction = 0.03;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

system::FleetEngineParams engine_params(std::size_t threads,
                                        bool clamp_lanes = true) {
  system::FleetEngineParams params;
  params.num_shards = 16;
  params.num_sensors = kSensors;
  params.items_per_sensor = kItemsPerSensor;
  params.collect_fraction = kCollectFraction;
  params.desire_fraction = kDesireFraction;
  params.seed = kSeed;
  params.num_threads = threads;
  params.clamp_lanes = clamp_lanes;
  params.mode = perception::DataPlaneMode::kClassAggregated;
  return params;
}

// ---------------------------------------------------------------------------
// Reference arm: the per-round idiom this engine replaced. Every round
// allocates a fresh AoS fleet (heap collected/desired ItemSets per
// vehicle), samples the scene with one Bernoulli per (vehicle, item, set),
// and takes the outcome by value.
// ---------------------------------------------------------------------------
struct ReferenceResult {
  std::size_t vehicles = 0;
  std::size_t rounds = 0;
  double seconds = 0.0;
  double rounds_per_s = 0.0;
  double checksum = 0.0;  // keeps the fold observable
};

ReferenceResult run_reference(std::size_t vehicles, std::size_t rounds) {
  Rng universe_rng(derive_seed(kSeed, {0xE0}));
  std::vector<double> sensor_privacy(kSensors);
  for (std::size_t s = 0; s < kSensors; ++s) {
    sensor_privacy[s] = 1.0 / static_cast<double>(s + 1);
  }
  const auto universe = perception::DataUniverse::synthetic(
      kSensors, kItemsPerSensor, sensor_privacy, universe_rng);
  const core::DecisionLattice lattice(kSensors);
  perception::EdgeServerDataPlane plane(lattice, universe,
                                        core::AccessRule::kSubsetOrEqual,
                                        derive_seed(kSeed, {0xE1, 0}));
  const auto k = static_cast<std::int64_t>(lattice.num_decisions());
  const std::size_t omega = universe.size();
  const double total_privacy = universe.total_privacy_weight();

  ReferenceResult result;
  result.vehicles = vehicles;
  result.rounds = rounds;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    Rng rng(derive_seed(kSeed, {0xE2, r, 0}));
    std::vector<perception::Vehicle> fleet(vehicles);
    for (perception::Vehicle& v : fleet) {
      v.decision = static_cast<core::DecisionId>(rng.uniform_int(0, k - 1));
      for (perception::ItemId id = 0; id < omega; ++id) {
        if (rng.bernoulli(kCollectFraction)) v.collected.push_back(id);
        if (rng.bernoulli(kDesireFraction)) v.desired.push_back(id);
      }
      if (v.desired.empty()) v.desired.push_back(0);
    }
    const perception::RoundOutcome outcome =
        plane.run_round_aggregated(fleet, kSharingRatio);
    std::vector<double> fitness(vehicles);
    for (std::size_t v = 0; v < vehicles; ++v) {
      const double own_mass = universe.privacy_weight(fleet[v].collected);
      const double exposed =
          own_mass > 0.0 ? outcome.privacy[v] * total_privacy / own_mass : 0.0;
      fitness[v] = 2.5 * outcome.utility[v] - exposed;
      result.checksum += fitness[v];
    }
  }
  result.seconds = seconds_since(start);
  result.rounds_per_s =
      static_cast<double>(rounds) / std::max(result.seconds, 1e-12);
  return result;
}

// ---------------------------------------------------------------------------
// SoA sweep point.
// ---------------------------------------------------------------------------
struct SweepPoint {
  std::size_t vehicles = 0;
  std::size_t rounds = 0;
  double ingest_seconds = 0.0;
  double seconds = 0.0;
  double rounds_per_s = 0.0;
  double round_seconds = 0.0;
  std::size_t peak_rss_bytes = 0;
  long long steady_allocations = 0;
  double mean_utility = 0.0;
  double mean_fitness = 0.0;
};

SweepPoint run_soa(std::size_t vehicles, std::size_t rounds) {
  system::ShardedFleetEngine engine(engine_params(/*threads=*/1));
  core::SyntheticFleetSource source(vehicles, /*num_decisions=*/8, kSeed);

  SweepPoint point;
  point.vehicles = vehicles;
  point.rounds = rounds;

  auto start = std::chrono::steady_clock::now();
  engine.ingest(source);
  point.ingest_seconds = seconds_since(start);

  // One warm-up round grows every arena and workspace to its high-water
  // mark; the timed rounds after it must not allocate at all.
  system::FleetRoundStats stats;
  engine.run_round_into(kSharingRatio, stats);
  const long long live_before = bench::live_allocations();

  start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    engine.run_round_into(kSharingRatio, stats);
  }
  point.seconds = seconds_since(start);
  point.steady_allocations = bench::live_allocations() - live_before;
  point.rounds_per_s =
      static_cast<double>(rounds) / std::max(point.seconds, 1e-12);
  point.round_seconds = point.seconds / static_cast<double>(rounds);
  point.peak_rss_bytes = bench::peak_rss_bytes();
  point.mean_utility = stats.mean_utility;
  point.mean_fitness = stats.mean_fitness;
  return point;
}

// ---------------------------------------------------------------------------
// Bit-identity across raw lane counts.
// ---------------------------------------------------------------------------
std::vector<std::uint64_t> hash_trajectory(std::size_t vehicles,
                                           std::size_t rounds,
                                           std::size_t lanes) {
  system::ShardedFleetEngine engine(
      engine_params(lanes, /*clamp_lanes=*/false));
  core::SyntheticFleetSource source(vehicles, 8, kSeed);
  engine.ingest(source);
  system::FleetRoundStats stats;
  std::vector<std::uint64_t> hashes;
  hashes.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    engine.run_round_into(kSharingRatio, stats);
    hashes.push_back(engine.state_hash());
  }
  return hashes;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::size_t ref_vehicles = 100000;
  const std::size_t ref_rounds = smoke ? 1 : 2;
  std::fprintf(stderr, "bench_fleet: reference arm (%zu vehicles)...\n",
               ref_vehicles);
  const ReferenceResult reference = run_reference(ref_vehicles, ref_rounds);

  struct Scale {
    std::size_t vehicles;
    std::size_t rounds;
  };
  std::vector<Scale> scales;
  if (smoke) {
    scales = {{100000, 3}};
  } else {
    scales = {{100000, 5}, {500000, 3}, {1000000, 3}};
  }
  std::vector<SweepPoint> sweep;
  for (const Scale& scale : scales) {
    std::fprintf(stderr, "bench_fleet: SoA sweep at %zu vehicles...\n",
                 scale.vehicles);
    sweep.push_back(run_soa(scale.vehicles, scale.rounds));
  }

  const std::size_t identity_rounds = 4;
  const std::size_t lane_counts[] = {1, 2, 8};
  std::fprintf(stderr, "bench_fleet: lane-count bit-identity...\n");
  const auto baseline =
      hash_trajectory(ref_vehicles, identity_rounds, lane_counts[0]);
  bool bit_identical = true;
  for (std::size_t i = 1; i < std::size(lane_counts); ++i) {
    if (hash_trajectory(ref_vehicles, identity_rounds, lane_counts[i]) !=
        baseline) {
      bit_identical = false;
    }
  }

  const double speedup = sweep.front().rounds_per_s / reference.rounds_per_s;
  bool zero_allocs = true;
  for (const SweepPoint& point : sweep) {
    if (point.steady_allocations != 0) zero_allocs = false;
  }
  const SweepPoint& largest = sweep.back();
  const bool million_ok = smoke || largest.round_seconds <= 1.0;

  std::printf("{\n");
  std::printf("  \"bench\": \"fleet_engine\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"mode\": \"aggregated\",\n");
  std::printf("  \"num_shards\": 16,\n");
  std::printf("  \"sensors\": %zu,\n", kSensors);
  std::printf("  \"items\": %zu,\n", kSensors * kItemsPerSensor);
  std::printf("  \"sharing_ratio\": %.2f,\n", kSharingRatio);
  std::printf(
      "  \"reference\": {\"vehicles\": %zu, \"rounds\": %zu, \"seconds\": "
      "%.6f, \"rounds_per_s\": %.4f},\n",
      reference.vehicles, reference.rounds, reference.seconds,
      reference.rounds_per_s);
  std::printf("  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::printf(
        "    {\"vehicles\": %zu, \"rounds\": %zu, \"ingest_seconds\": %.6f, "
        "\"seconds\": %.6f, \"round_seconds\": %.6f, \"rounds_per_s\": %.4f, "
        "\"peak_rss_bytes\": %zu, \"steady_allocations\": %lld, "
        "\"mean_utility\": %.6f, \"mean_fitness\": %.6f}%s\n",
        p.vehicles, p.rounds, p.ingest_seconds, p.seconds, p.round_seconds,
        p.rounds_per_s, p.peak_rss_bytes, p.steady_allocations, p.mean_utility,
        p.mean_fitness, i + 1 < sweep.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"speedup_vs_reference\": %.2f,\n", speedup);
  std::printf(
      "  \"bit_identity\": {\"vehicles\": %zu, \"rounds\": %zu, \"lanes\": "
      "[1, 2, 8], \"bit_identical\": %s},\n",
      ref_vehicles, identity_rounds, bit_identical ? "true" : "false");
  std::printf(
      "  \"acceptance\": {\"speedup_gate_5x\": %s, "
      "\"zero_steady_allocations\": %s, \"bit_identical\": %s, "
      "\"largest_round_seconds\": %.6f, \"one_million_under_1s\": %s}\n",
      speedup >= 5.0 ? "true" : "false", zero_allocs ? "true" : "false",
      bit_identical ? "true" : "false", largest.round_seconds,
      million_ok ? "true" : "false");
  std::printf("}\n");

  std::fprintf(stderr,
               "bench_fleet: speedup=%.2fx zero_allocs=%d bit_identical=%d "
               "largest_round=%.3fs peak_rss_bytes=%zu live_allocations=%lld\n",
               speedup, zero_allocs ? 1 : 0, bit_identical ? 1 : 0,
               largest.round_seconds, bench::peak_rss_bytes(),
               bench::live_allocations());

  const bool ok =
      speedup >= 5.0 && zero_allocs && bit_identical && million_ok;
  const int json_status = avcp::bench::finish_json_output();
  return ok ? json_status : 1;
}
