// Reproduces Fig. 8: Algorithm-1 clustering of the road segments into 20
// regions under BC and TD coefficients — (a)/(b) region maps, (c) per-region
// coefficient distributions (mean + 95% interval) with the BC-vs-TD
// within-region standard-deviation comparison, (d)/(e) region graphs with
// node sizes and gamma edge weights.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cluster/quality.h"
#include "common/heatmap.h"
#include "common/stats.h"

using namespace avcp;

namespace {

constexpr std::size_t kGridRows = 18;
constexpr std::size_t kGridCols = 40;

void report_for(sim::CoefficientKind kind, const char* name,
                double* avg_sd_out, double* rel_sd_out) {
  auto config = bench::paper_config(kind);
  const auto artifacts = sim::build_pipeline(config);
  const auto& graph = artifacts.graph;
  const auto& clustering = artifacts.clustering;

  std::vector<PointM> nodes;
  for (std::size_t v = 0; v < graph.num_intersections(); ++v) {
    nodes.push_back(graph.intersection(static_cast<roadnet::NodeId>(v)));
  }
  const spatial::BBoxM bounds = spatial::BBoxM::around(nodes);

  bench::print_header(std::string("Fig. 8: location clustering (") + name +
                      "), 20 regions, digits = region id mod 10");
  {
    HeatGrid grid(kGridRows, kGridCols, -1.0);
    for (roadnet::SegmentId s = 0; s < graph.num_segments(); ++s) {
      const PointM mid = graph.segment_midpoint(s);
      const auto r = static_cast<std::size_t>(
          (mid.y - bounds.min.y) / bounds.height() * (kGridRows - 1));
      const auto c = static_cast<std::size_t>(
          (mid.x - bounds.min.x) / bounds.width() * (kGridCols - 1));
      grid.at(std::min(r, kGridRows - 1), std::min(c, kGridCols - 1)) =
          clustering.region_of[s];
    }
    std::printf("%s", grid.render_labels().c_str());
  }

  bench::print_header(std::string("Fig. 8(c): coefficient (") + name +
                      ") distribution per region");
  std::printf("%-8s %8s %12s %12s %23s\n", "Region", "Size", "MeanCoeff",
              "StdDev", "95% interval");
  bench::print_rule();
  const auto means = clustering.region_means(artifacts.coefficients);
  const auto sds = clustering.region_stddevs(artifacts.coefficients);
  double sd_sum = 0.0;
  for (cluster::RegionId i = 0; i < clustering.num_regions(); ++i) {
    std::vector<double> values;
    for (const roadnet::SegmentId s : clustering.members[i]) {
      values.push_back(artifacts.coefficients[s]);
    }
    const auto [lo, hi] = central_interval(values, 0.95);
    std::printf("%-8u %8zu %12.5g %12.5g   [%9.4g, %9.4g]\n", i,
                clustering.members[i].size(), means[i], sds[i], lo, hi);
    sd_sum += sds[i];
  }
  const double avg_sd = sd_sum / static_cast<double>(clustering.num_regions());
  const double global_mean = mean(artifacts.coefficients);
  std::printf("average within-region std dev (%s): %.6g  "
              "(relative to global mean: %.3f)\n",
              name, avg_sd, avg_sd / global_mean);
  *avg_sd_out = avg_sd;
  *rel_sd_out = avg_sd / global_mean;

  // Quality vs a topology-blind baseline: the objective Algorithm 1
  // minimises is the within-region variance.
  const auto q_ours =
      cluster::evaluate_clustering(clustering, artifacts.coefficients);
  const auto q_base = cluster::evaluate_clustering(
      cluster::round_robin_clustering(graph.num_segments(),
                                      clustering.num_regions()),
      artifacts.coefficients);
  std::printf("variance explained by regions: %.1f%% (Algorithm 1) vs "
              "%.1f%% (round-robin baseline); mean |w - beta| %.4g vs %.4g\n",
              100.0 * q_ours.explained, 100.0 * q_base.explained,
              q_ours.mean_abs_error, q_base.mean_abs_error);

  bench::print_header(std::string("Fig. 8(d/e): region graph (") + name +
                      ")");
  const auto& rg = artifacts.region_graph;
  std::printf("nodes: %zu, edges: %zu\n", rg.num_regions(), rg.num_edges());
  std::printf("%-8s %8s %12s %s\n", "Region", "Size", "gamma_ii",
              "top neighbours (j: gamma_ij)");
  bench::print_rule();
  for (cluster::RegionId i = 0; i < rg.num_regions(); ++i) {
    std::printf("%-8u %8zu %12.4f  ", i, clustering.members[i].size(),
                rg.gamma(i, i));
    // Top three neighbours by weight.
    std::vector<std::pair<double, cluster::RegionId>> nbrs;
    for (const cluster::RegionId j : rg.neighbors(i)) {
      nbrs.emplace_back(rg.gamma(i, j), j);
    }
    std::sort(nbrs.rbegin(), nbrs.rend());
    for (std::size_t n = 0; n < std::min<std::size_t>(3, nbrs.size()); ++n) {
      std::printf("%u:%.4f ", nbrs[n].second, nbrs[n].first);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  double bc_sd = 0.0;
  double td_sd = 0.0;
  double bc_rel = 0.0;
  double td_rel = 0.0;
  report_for(sim::CoefficientKind::kBetweenness, "BC", &bc_sd, &bc_rel);
  report_for(sim::CoefficientKind::kTrafficDensity, "TD", &td_sd, &td_rel);

  bench::print_header("Fig. 8 cross-check: BC vs TD within-region spread");
  // The paper reports average std devs 17.08 (BC) vs 30.31 (TD) on its own
  // coefficient scales. The unit-free comparison is the within-region sd
  // relative to the global coefficient mean: TD is noisier than BC because
  // clustering sees a temporal average while each segment's instantaneous
  // TD fluctuates through the day.
  std::printf("relative within-region spread: BC %.3f vs TD %.3f — TD %s\n"
              "(paper: TD spread exceeds BC spread, 30.31 vs 17.08)\n",
              bc_rel, td_rel,
              td_rel > bc_rel ? "is noisier, as in the paper"
                              : "does NOT exceed BC here");
  return 0;
}
