// Reproduces Fig. 9: convergence time of FDS as the acceptable error eps of
// the desired decision field grows from 0.01 to 0.05, for utility
// coefficients derived from (a) betweenness centrality and (b) traffic
// density — together with the relaxed-problem lower bound (Prop. 4.1 /
// Eq. (22)) and the resulting approximation ratios (paper: within 1.15 for
// BC, 1.08 for TD).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/lower_bound.h"

using namespace avcp;

namespace {

void run_for(sim::CoefficientKind kind, const char* name) {
  auto config = bench::paper_config(kind);
  const auto artifacts = sim::build_pipeline(config);
  // Decision revision speed calibrated so the population moves on the
  // same timescale as the paper's (big early steps, eps-sensitive tail).
  const auto game = bench::make_paper_game(artifacts, /*step_size=*/2.0);

  const std::vector<double> x0(game.num_regions(), 0.2);
  auto fds_opts = bench::bench_fds_options();
  fds_opts.max_step = 0.2;

  bench::print_header(std::string("Fig. 9: convergence time of FDS (") +
                      name + " coefficients)");
  std::printf("desired field: eps-box around the x_ref = 0.75 equilibrium "
              "(see EXPERIMENTS.md);\nstart: uniform decisions, x = 0.2; "
              "Lambda = %.2f, %zu regions x %zu decisions\n",
              fds_opts.max_step, game.num_regions(), game.num_decisions());
  std::printf("%-8s %14s %14s %12s\n", "eps", "FDS rounds", "lower bound",
              "approx ratio");
  bench::print_rule();

  double worst_ratio = 1.0;
  for (const double eps : {0.01, 0.02, 0.03, 0.04, 0.05}) {
    const auto fields =
        bench::attainable_fields(game, game.uniform_state(), 0.75, eps);
    core::FdsController controller(game, fields, fds_opts);
    sim::RunOptions options;
    options.max_rounds = 5000;
    options.record_trajectory = false;
    const auto run = sim::run_mean_field(game, controller,
                                         game.uniform_state(), x0, &fields,
                                         options);

    core::LowerBoundOptions lb_options;
    lb_options.max_step = fds_opts.max_step;
    const auto bound = core::convergence_lower_bound(
        game, game.uniform_state(), fields, x0, lb_options);

    if (!run.converged) {
      std::printf("%-8.2f %14s %14zu %12s\n", eps, "(no conv)", bound.rounds,
                  "-");
      continue;
    }
    const double ratio =
        bound.rounds > 0
            ? static_cast<double>(run.rounds) / static_cast<double>(bound.rounds)
            : 1.0;
    worst_ratio = std::max(worst_ratio, ratio);
    std::printf("%-8.2f %14zu %14zu %12.2f\n", eps, run.rounds, bound.rounds,
                ratio);
  }
  std::printf("worst approximation ratio (%s): %.2f (paper: <= %.2f)\n", name,
              worst_ratio,
              kind == sim::CoefficientKind::kBetweenness ? 1.15 : 1.08);
}

}  // namespace

int main() {
  run_for(sim::CoefficientKind::kBetweenness, "BC");
  run_for(sim::CoefficientKind::kTrafficDensity, "TD");
  return 0;
}
