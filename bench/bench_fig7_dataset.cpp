// Reproduces Fig. 7: (a) edge-server deployment, (b) heat map of
// betweenness centrality, (c) heat map of average traffic density — on the
// synthetic Futian-scale city and trace ensemble (DESIGN.md §1 records the
// dataset substitution).
#include <cstdio>

#include "bench_common.h"
#include "common/heatmap.h"
#include "common/stats.h"
#include "roadnet/betweenness.h"
#include "trace/density.h"

using namespace avcp;

namespace {

constexpr std::size_t kGridRows = 20;
constexpr std::size_t kGridCols = 44;

HeatGrid render_segment_values(const roadnet::RoadGraph& graph,
                               const std::vector<double>& values,
                               const spatial::BBoxM& bounds) {
  HeatGrid grid(kGridRows, kGridCols);
  for (roadnet::SegmentId s = 0; s < graph.num_segments(); ++s) {
    const PointM mid = graph.segment_midpoint(s);
    grid.splat((mid.x - bounds.min.x) / bounds.width(),
               (mid.y - bounds.min.y) / bounds.height(), values[s]);
  }
  return grid;
}

}  // namespace

int main() {
  auto config = bench::paper_config(sim::CoefficientKind::kBetweenness);
  const auto artifacts = sim::build_pipeline(config);
  const auto& graph = artifacts.graph;

  std::vector<PointM> nodes;
  for (std::size_t v = 0; v < graph.num_intersections(); ++v) {
    nodes.push_back(graph.intersection(static_cast<roadnet::NodeId>(v)));
  }
  const spatial::BBoxM bounds = spatial::BBoxM::around(nodes);

  bench::print_header("Fig. 7 dataset summary");
  std::printf("road network: %zu intersections, %zu segments\n",
              graph.num_intersections(), graph.num_segments());
  std::printf("trace: %u vehicles, %.0f s span, %zu GPS fixes\n",
              config.traces.num_vehicles, config.traces.duration_s,
              artifacts.fixes.size());
  std::printf("edge servers: %zu (paper: 100), Voronoi cells over %0.1f x "
              "%0.1f km\n",
              artifacts.server_positions.size(), bounds.width() / 1000.0,
              bounds.height() / 1000.0);

  bench::print_header("Fig. 7(a): edge server deployment (# = server site)");
  {
    HeatGrid grid(kGridRows, kGridCols);
    for (const PointM& site : artifacts.server_positions) {
      grid.splat((site.x - bounds.min.x) / bounds.width(),
                 (site.y - bounds.min.y) / bounds.height(), 1.0);
    }
    std::printf("%s", grid.render_ascii().c_str());
  }

  bench::print_header("Fig. 7(b): heat map of betweenness centrality (BC)");
  const auto bc = roadnet::segment_betweenness(graph);
  std::printf("%s", render_segment_values(graph, bc, bounds)
                        .render_ascii()
                        .c_str());
  std::printf("BC stats: mean %.4g  sd %.4g  max %.4g\n", mean(bc), stddev(bc),
              *std::max_element(bc.begin(), bc.end()));

  bench::print_header("Fig. 7(c): heat map of average traffic density (TD)");
  trace::TrafficDensityAccumulator td(graph.num_segments(), config.td_window_s,
                                      config.traces.duration_s);
  for (const trace::GpsFix& fix : artifacts.fixes) td.add(fix);
  const auto avg_td = td.average_density();
  std::printf("%s", render_segment_values(graph, avg_td, bounds)
                        .render_ascii()
                        .c_str());
  std::printf("TD stats (veh/s): mean %.4g  sd %.4g  max %.4g\n", mean(avg_td),
              stddev(avg_td),
              *std::max_element(avg_td.begin(), avg_td.end()));

  // Shape check the paper relies on: both coefficients are heavy-tailed and
  // spatially concentrated on the arterial lattice.
  const double bc_p50 = percentile(bc, 50.0);
  const double bc_p95 = percentile(bc, 95.0);
  const double td_p50 = percentile(avg_td, 50.0);
  const double td_p95 = percentile(avg_td, 95.0);
  bench::print_header("Tail shape (p95 / p50)");
  std::printf("BC: %.2f   TD: %.2f  (>1 indicates the heavy tail both heat "
              "maps show)\n",
              bc_p95 / std::max(bc_p50, 1e-12),
              td_p95 / std::max(td_p50, 1e-12));
  return 0;
}
