// Micro-benchmarks for the core computational kernels: replicator rounds,
// the FDS feasible-set solver, Brandes betweenness, Algorithm-1
// clustering, the edge-server data plane, trace generation, the SIMD
// kernels, and thread-pool dispatch. Cases self-register through the
// BENCHMARK macro (bench_registry.h, MathGeoLib-TestRunner style) with
// per-case trial control, so every future PR's case is timed
// automatically:
//
//   ./build/bench/bench_perf                     # run every registered case
//   ./build/bench/bench_perf --filter DataPlane  # substring filter
//
// Besides the registered suite, the binary has a scaling mode for the
// parallel round engine:
//
//   ./build/bench/bench_perf --scaling   # 100-region round loop at
//                                        # 1/2/4/8 threads, JSON on stdout
//   ./build/bench/bench_perf --smoke     # tiny CI configuration
//
// and a data-plane kernel sweep (pairwise-exact vs class-aggregated over
// vehicle counts, a system-level mode x threads table, and a best-of-N
// thread-scaling section whose acceptance is monotone non-negative
// scaling of aggregated rounds/s with bit-identical trajectories):
//
//   ./build/bench/bench_perf --dataplane           # full sweep
//   ./build/bench/bench_perf --dataplane --smoke   # CI configuration
//
// CI stores the --dataplane JSON as BENCH_dataplane.json, the repo's
// recorded perf baseline, and gates on (a) the aggregated kernel staying
// at least 5x faster than pairwise at the smoke point and (b) 8-thread
// aggregated rounds/s >= 1-thread (the thread-scaling regression gate).
//
// Scaling modes re-run the identical seeded workload per thread count,
// report wall-clock speedup curves, and verify the determinism contract:
// every trajectory must be bit-identical to the single-threaded run (the
// process exits non-zero otherwise). Speedups depend on the machine's
// cores; bit-identity must hold everywhere.
#include <chrono>
#include <cstring>

#include "bench_common.h"
#include "bench_registry.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/fds.h"
#include "system/system.h"
#include "core/lower_bound.h"
#include "core/rate_model.h"
#include "core/sensor_model.h"
#include "perception/data_plane.h"
#include "roadnet/betweenness.h"
#include "roadnet/builders.h"
#include "spatial/grid_index.h"
#include "trace/generator.h"

namespace {

using namespace avcp;

core::MultiRegionGame make_chain(std::size_t regions) {
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  std::vector<core::RegionSpec> specs(regions);
  for (std::size_t i = 0; i < regions; ++i) {
    specs[i].beta = 2.5;
    specs[i].gamma_self = 1.0;
    if (i > 0) specs[i].neighbors.emplace_back(i - 1, 0.3);
    if (i + 1 < regions) specs[i].neighbors.emplace_back(i + 1, 0.3);
  }
  return core::MultiRegionGame(std::move(config), std::move(specs));
}

void BM_ReplicatorStep(bench::State& state) {
  const auto game = make_chain(static_cast<std::size_t>(state.range(0)));
  auto game_state = game.uniform_state();
  const std::vector<double> x(game.num_regions(), 0.5);
  for ([[maybe_unused]] auto _ : state) {
    game.replicator_step(game_state, x);
    bench::DoNotOptimize(game_state);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(game.num_regions()));
}
BENCHMARK(BM_ReplicatorStep)->Arg(4)->Arg(20)->Arg(100);

void BM_RateFamily(bench::State& state) {
  const auto game = make_chain(20);
  const auto game_state = game.uniform_state();
  const std::vector<double> x(20, 0.5);
  for ([[maybe_unused]] auto _ : state) {
    for (core::DecisionId k = 0; k < 8; ++k) {
      bench::DoNotOptimize(
          core::rate_family(game, game_state, x, 10, k));
    }
  }
}
BENCHMARK(BM_RateFamily);

void BM_FdsRound(bench::State& state) {
  const auto game = make_chain(static_cast<std::size_t>(state.range(0)));
  core::DesiredFields fields(game.num_regions(), 8);
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.9, 1.0});
  }
  core::FdsController controller(game, fields);
  const auto game_state = game.uniform_state();
  std::vector<double> x(game.num_regions(), 0.5);
  for ([[maybe_unused]] auto _ : state) {
    bench::DoNotOptimize(controller.next_x(game_state, x));
  }
}
BENCHMARK(BM_FdsRound)->Arg(4)->Arg(20);

void BM_LowerBound(bench::State& state) {
  const auto game = make_chain(20);
  core::DesiredFields fields(20, 8);
  for (core::RegionId i = 0; i < 20; ++i) {
    fields.set_target(i, 0, Interval{0.9, 1.0});
  }
  const auto game_state = game.uniform_state();
  const std::vector<double> x(20, 0.2);
  for ([[maybe_unused]] auto _ : state) {
    bench::DoNotOptimize(
        core::convergence_lower_bound(game, game_state, fields, x));
  }
}
BENCHMARK(BM_LowerBound);

void BM_BrandesBetweenness(bench::State& state) {
  roadnet::CityParams params;
  params.rows = static_cast<std::uint32_t>(state.range(0));
  params.cols = static_cast<std::uint32_t>(state.range(0));
  const auto graph = roadnet::build_city(params);
  roadnet::BetweennessOptions opts;
  opts.num_threads = static_cast<std::size_t>(state.range(1));
  for ([[maybe_unused]] auto _ : state) {
    bench::DoNotOptimize(roadnet::segment_betweenness(graph, opts));
  }
  state.SetLabel(std::to_string(graph.num_segments()) + " segments, " +
                 std::to_string(state.range(1)) + " threads");
}
BENCHMARK(BM_BrandesBetweenness)
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({16, 8});

void BM_Clustering(bench::State& state) {
  roadnet::CityParams params;
  params.rows = 16;
  params.cols = 16;
  const auto graph = roadnet::build_city(params);
  const auto coeffs = roadnet::segment_betweenness(graph);
  for ([[maybe_unused]] auto _ : state) {
    bench::DoNotOptimize(
        cluster::cluster_segments(graph, coeffs, {20}));
  }
}
BENCHMARK(BM_Clustering);

void BM_DataPlaneRound(bench::State& state) {
  const core::DecisionLattice lattice(3);
  Rng rng(5);
  const std::vector<double> privacy = {1.0, 0.5, 0.1};
  const auto universe =
      perception::DataUniverse::synthetic(3, 30, privacy, rng);
  perception::EdgeServerDataPlane plane(lattice, universe);

  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<perception::Vehicle> vehicles(n);
  for (auto& v : vehicles) {
    v.decision = static_cast<core::DecisionId>(rng.uniform_int(0, 7));
    for (perception::ItemId id = 0; id < universe.size(); ++id) {
      if (rng.bernoulli(0.3)) v.collected.push_back(id);
      if (rng.bernoulli(0.2)) v.desired.push_back(id);
    }
    if (v.desired.empty()) v.desired.push_back(0);
  }
  for ([[maybe_unused]] auto _ : state) {
    bench::DoNotOptimize(plane.run_round(vehicles, 0.5));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DataPlaneRound)->Arg(20)->Arg(100);

void BM_TraceGeneration(bench::State& state) {
  roadnet::CityParams city;
  city.rows = 10;
  city.cols = 12;
  const auto graph = roadnet::build_city(city);
  trace::TraceParams params;
  params.num_vehicles = 50;
  params.duration_s = 1800.0;
  const trace::TraceGenerator generator(graph, params);
  for ([[maybe_unused]] auto _ : state) {
    std::size_t count = 0;
    generator.generate([&count](const trace::GpsFix&) { ++count; });
    bench::DoNotOptimize(count);
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_GridIndexNearest(bench::State& state) {
  Rng rng(9);
  std::vector<PointM> points(10000);
  for (auto& p : points) {
    p = PointM{rng.uniform(0.0, 10000.0), rng.uniform(0.0, 10000.0)};
  }
  const spatial::GridIndex index(points);
  for ([[maybe_unused]] auto _ : state) {
    const PointM q{rng.uniform(0.0, 10000.0), rng.uniform(0.0, 10000.0)};
    bench::DoNotOptimize(index.nearest(q));
  }
}
BENCHMARK(BM_GridIndexNearest);

void BM_SimdGrowthUpdate(bench::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> p(n), q(n), row(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = rng.uniform(0.0, 1.0);
    q[i] = rng.uniform(-1.0, 1.0);
  }
  for ([[maybe_unused]] auto _ : state) {
    simd::growth_update(row.data(), p.data(), q.data(), 0.1, 0.5, 0.01, n);
    bench::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetLabel(simd::active_isa());
}
BENCHMARK(BM_SimdGrowthUpdate)->Arg(8)->Arg(1024)->Trials(5);

void BM_SimdAddU32(bench::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint32_t> dst(n, 1), src(n, 2);
  for ([[maybe_unused]] auto _ : state) {
    simd::add_u32(dst.data(), src.data(), n);
    bench::DoNotOptimize(dst);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetLabel(simd::active_isa());
}
BENCHMARK(BM_SimdAddU32)->Arg(90)->Arg(4096)->Trials(5);

// Round-trip cost of one dispatch over trivial work — the fork/join
// overhead the chunked pool exists to shrink. The single-stage case goes
// through parallel_for; the batched case crosses the pool boundary once
// for three stages.
void BM_PoolDispatch(bench::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<double> out(n, 0.0);
  for ([[maybe_unused]] auto _ : state) {
    pool.parallel_for(0, n, [&](std::size_t i) { out[i] += 1.0; });
    bench::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PoolDispatch)->Args({1, 100})->Args({4, 100})->Args({8, 100})
    ->Trials(5);

void BM_PoolBatch3(bench::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<double> out(n, 0.0);
  auto task = [&](std::size_t i) { out[i] += 1.0; };
  const ThreadPool::Stage stages[] = {
      {n, IndexFnRef(task), 0, {}},
      {n, IndexFnRef(task), 0, {}},
      {n, IndexFnRef(task), 0, {}},
  };
  for ([[maybe_unused]] auto _ : state) {
    pool.run_batch(stages);
    bench::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(3 * n));
}
BENCHMARK(BM_PoolBatch3)->Args({4, 100})->Args({8, 100})->Trials(5);

// ---------------------------------------------------------------------------
// --scaling / --smoke: round-engine thread-scaling suite.

struct ScalingConfig {
  std::size_t regions = 100;
  std::size_t vehicles_per_region = 40;
  std::size_t rounds = 15;
  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
};

struct Trajectory {
  std::vector<std::vector<double>> x;                  // per round
  std::vector<std::vector<std::vector<double>>> p;     // per round
  double seconds = 0.0;
};

Trajectory run_round_loop(const core::MultiRegionGame& game,
                          const ScalingConfig& config, std::size_t threads,
                          perception::DataPlaneMode mode =
                              perception::DataPlaneMode::kPairwiseExact) {
  system::SystemParams params;
  params.vehicles_per_region = config.vehicles_per_region;
  params.seed = 2022;
  params.num_threads = threads;
  params.data_plane_mode = mode;
  system::CooperativePerceptionSystem sys(game, params);
  sys.init_from(game.uniform_state());

  core::DesiredFields fields(game.num_regions(), 8);
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.6, 1.0});
  }
  core::FdsController controller(game, fields);

  Trajectory out;
  out.x.reserve(config.rounds);
  out.p.reserve(config.rounds);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < config.rounds; ++r) {
    auto report = sys.run_round(controller);
    out.x.push_back(std::move(report.x));
    out.p.push_back(std::move(report.state.p));
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

int run_scaling(bool smoke) {
  ScalingConfig config;
  if (smoke) {
    config.regions = 8;
    config.vehicles_per_region = 20;
    config.rounds = 4;
    config.thread_counts = {1, 2};
  }
  const auto game = make_chain(config.regions);

  std::vector<Trajectory> runs;
  runs.reserve(config.thread_counts.size());
  for (const std::size_t threads : config.thread_counts) {
    runs.push_back(run_round_loop(game, config, threads));
  }

  bool bit_identical = true;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].x != runs[0].x || runs[i].p != runs[0].p) {
      bit_identical = false;
    }
  }

  const double base = runs[0].seconds;
  std::printf("{\n");
  std::printf("  \"bench\": \"round_engine_scaling\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"regions\": %zu,\n", config.regions);
  std::printf("  \"vehicles_per_region\": %zu,\n", config.vehicles_per_region);
  std::printf("  \"rounds\": %zu,\n", config.rounds);
  std::printf("  \"bit_identical\": %s,\n", bit_identical ? "true" : "false");
  std::printf("  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::printf(
        "    {\"threads\": %zu, \"seconds\": %.6f, \"rounds_per_s\": %.3f, "
        "\"speedup\": %.3f}%s\n",
        config.thread_counts[i], runs[i].seconds,
        static_cast<double>(config.rounds) / runs[i].seconds,
        base / runs[i].seconds, i + 1 < runs.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  if (!bit_identical) {
    std::fprintf(stderr,
                 "FAIL: trajectories differ across thread counts — the "
                 "determinism contract is broken\n");
    return 1;
  }
  return bench::finish_json_output();
}

// ---------------------------------------------------------------------------
// --dataplane [--smoke]: pairwise-exact vs class-aggregated kernel sweep.
// Emits JSON on stdout (CI captures it as BENCH_dataplane.json — the repo's
// recorded perf baseline) and exits non-zero if the aggregated kernel loses
// its thread-count determinism at the system level.

struct KernelTiming {
  std::size_t rounds = 0;
  double seconds = 0.0;
  double mean_utility = 0.0;
  std::size_t deliveries = 0;
};

KernelTiming time_plane_rounds(perception::EdgeServerDataPlane& plane,
                               std::span<const perception::Vehicle> fleet,
                               double x, perception::DataPlaneMode mode,
                               std::size_t rounds) {
  perception::RoundOutcome out;
  // Warm-up round (untimed): workspace and outcome buffers reach their
  // high-water marks, so the timed loop runs allocation-free.
  plane.run_round_into(fleet, x, {}, {}, mode, out);
  KernelTiming timing;
  timing.rounds = rounds;
  double utility_sum = 0.0;
  std::size_t delivery_sum = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    plane.run_round_into(fleet, x, {}, {}, mode, out);
    utility_sum += out.mean_utility();
    delivery_sum += out.deliveries;
  }
  timing.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  timing.mean_utility = utility_sum / static_cast<double>(rounds);
  timing.deliveries = delivery_sum / rounds;
  return timing;
}

void print_kernel_timing(const char* key, const KernelTiming& t,
                         const char* trailer) {
  std::printf(
      "      \"%s\": {\"rounds\": %zu, \"seconds\": %.6f, "
      "\"round_seconds\": %.6f, \"mean_utility\": %.6f, "
      "\"deliveries_per_round\": %zu}%s\n",
      key, t.rounds, t.seconds, t.seconds / static_cast<double>(t.rounds),
      t.mean_utility, t.deliveries, trailer);
}

int run_dataplane(bool smoke) {
  constexpr double kSharingRatio = 0.5;
  constexpr std::size_t kItemsPerSensor = 30;
  const std::vector<std::size_t> fleet_sizes =
      smoke ? std::vector<std::size_t>{10000}
            : std::vector<std::size_t>{200, 1000, 5000, 10000, 20000};

  const core::DecisionLattice lattice(3);
  Rng rng(5);
  const std::vector<double> privacy = {1.0, 0.5, 0.1};
  const auto universe =
      perception::DataUniverse::synthetic(3, kItemsPerSensor, privacy, rng);

  std::printf("{\n");
  std::printf("  \"bench\": \"dataplane_kernels\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"sensors\": 3,\n");
  std::printf("  \"items\": %zu,\n", universe.size());
  std::printf("  \"sharing_ratio\": %.2f,\n", kSharingRatio);
  std::printf("  \"plane\": [\n");
  for (std::size_t fi = 0; fi < fleet_sizes.size(); ++fi) {
    const std::size_t n = fleet_sizes[fi];
    std::vector<perception::Vehicle> fleet(n);
    Rng fleet_rng(7 + n);
    for (auto& v : fleet) {
      v.decision = static_cast<core::DecisionId>(fleet_rng.uniform_int(0, 7));
      for (perception::ItemId id = 0; id < universe.size(); ++id) {
        if (fleet_rng.bernoulli(0.3)) v.collected.push_back(id);
        if (fleet_rng.bernoulli(0.2)) v.desired.push_back(id);
      }
      if (v.desired.empty()) v.desired.push_back(0);
    }
    // Pairwise rounds shrink with the fleet (the kernel is quadratic);
    // aggregated rounds stay high for stable timing of a fast kernel.
    const std::size_t pairwise_rounds = n <= 1000 ? 20 : (n <= 5000 ? 4 : 2);
    const std::size_t aggregated_rounds = pairwise_rounds * 25;
    // Identically seeded planes: both kernels see the same fleet and the
    // same upload phase; only the distribution sampling differs.
    perception::EdgeServerDataPlane exact_plane(lattice, universe,
                                                core::AccessRule::kSubsetOrEqual,
                                                11 + n);
    perception::EdgeServerDataPlane agg_plane(lattice, universe,
                                              core::AccessRule::kSubsetOrEqual,
                                              11 + n);
    const auto exact =
        time_plane_rounds(exact_plane, fleet, kSharingRatio,
                          perception::DataPlaneMode::kPairwiseExact,
                          pairwise_rounds);
    const auto agg =
        time_plane_rounds(agg_plane, fleet, kSharingRatio,
                          perception::DataPlaneMode::kClassAggregated,
                          aggregated_rounds);
    const double speedup =
        (exact.seconds / static_cast<double>(exact.rounds)) /
        (agg.seconds / static_cast<double>(agg.rounds));
    std::printf("    {\n");
    std::printf("      \"vehicles\": %zu,\n", n);
    print_kernel_timing("pairwise", exact, ",");
    print_kernel_timing("aggregated", agg, ",");
    std::printf("      \"speedup\": %.2f\n", speedup);
    std::printf("    }%s\n", fi + 1 < fleet_sizes.size() ? "," : "");
  }
  std::printf("  ],\n");

  // Thread-scaling regression section (both modes, so CI can gate on it):
  // the aggregated-kernel system loop at 1/2/8 threads, best of N trials
  // per count to de-noise shared CI machines. Acceptance is monotone
  // non-decreasing rounds/s — the scaling bug this section guards against
  // was parallelism being a net *loss* (157 -> 120 rounds/s) because the
  // old pool's join waited for every worker to schedule.
  bool scaling_monotone = true;
  bool scaling_identical = true;
  {
    ScalingConfig config;
    config.regions = 8;
    config.vehicles_per_region = 120;
    // Same measurement budget in smoke and full mode: the section's whole
    // cost is ~1s, and shrinking the timed region below ~60ms doubles the
    // relative scheduler jitter the acceptance must absorb.
    config.rounds = 12;
    config.thread_counts = {1, 2, 8};
    const std::size_t trials = 5;
    const auto game = make_chain(config.regions);
    std::vector<double> best_seconds(config.thread_counts.size(), 0.0);
    std::vector<Trajectory> reference;
    // Trials are interleaved round-robin across thread counts rather
    // than run back-to-back per count: on shared hosts steal-time comes
    // in bursts lasting longer than one trial, and a burst that lands on
    // a single count's whole trial block would skew its best-of estimate
    // against the others. Interleaving makes every count's best sample
    // the same set of time windows.
    for (std::size_t trial = 0; trial < trials; ++trial) {
      for (std::size_t ti = 0; ti < config.thread_counts.size(); ++ti) {
        auto run = run_round_loop(game, config, config.thread_counts[ti],
                                  perception::DataPlaneMode::kClassAggregated);
        if (trial == 0 || run.seconds < best_seconds[ti]) {
          best_seconds[ti] = run.seconds;
        }
        if (ti == 0 && trial == 0) {
          reference.push_back(std::move(run));
        } else if (run.x != reference[0].x || run.p != reference[0].p) {
          scaling_identical = false;
        }
      }
    }
    std::printf("  \"thread_scaling\": {\n");
    std::printf("    \"mode\": \"aggregated\",\n");
    std::printf("    \"trials\": %zu,\n", trials);
    std::printf("    \"rounds\": %zu,\n", config.rounds);
    std::printf("    \"bit_identical\": %s,\n",
                scaling_identical ? "true" : "false");
    std::printf("    \"points\": [\n");
    // Non-decreasing scaling, measured against the 1-thread anchor: every
    // multi-thread point must hold the serial rate to within a small
    // jitter allowance. The regression signature is "more threads run
    // *slower than serial*" (157 -> 120 rounds/s, -24%); comparing
    // consecutive pairs instead would compound per-point noise — on a
    // machine whose core count is below the requested thread counts the
    // engine clamps every point onto the identical code path, and
    // steal-time on shared hosts spreads even best-of-trials rates of
    // identical code paths by ~5% in either direction. The allowance
    // still catches the -24% regression with 5x margin.
    constexpr double kNoiseTolerance = 0.05;
    const double base_rate =
        static_cast<double>(config.rounds) / best_seconds[0];
    for (std::size_t ti = 0; ti < config.thread_counts.size(); ++ti) {
      const double rate =
          static_cast<double>(config.rounds) / best_seconds[ti];
      if (rate < base_rate * (1.0 - kNoiseTolerance)) {
        scaling_monotone = false;
      }
      std::printf(
          "      {\"threads\": %zu, \"best_seconds\": %.6f, "
          "\"rounds_per_s\": %.3f, \"bit_identical\": %s}%s\n",
          config.thread_counts[ti], best_seconds[ti], rate,
          scaling_identical ? "true" : "false",
          ti + 1 < config.thread_counts.size() ? "," : "");
    }
    std::printf("    ],\n");
    std::printf("    \"monotone_non_decreasing\": %s\n",
                scaling_monotone ? "true" : "false");
    std::printf("  }%s\n", smoke ? "" : ",");
  }

  bool aggregated_deterministic = true;
  if (!smoke) {
    // System-level mode x threads table: full FDS rounds through
    // system.cpp's wiring, checking both kernels hold the thread-count
    // determinism contract end to end.
    ScalingConfig config;
    config.regions = 8;
    config.vehicles_per_region = 120;
    config.rounds = 6;
    config.thread_counts = {1, 2, 8};
    const auto game = make_chain(config.regions);
    std::printf("  \"system\": [\n");
    const perception::DataPlaneMode modes[] = {
        perception::DataPlaneMode::kPairwiseExact,
        perception::DataPlaneMode::kClassAggregated};
    for (std::size_t mi = 0; mi < 2; ++mi) {
      std::vector<Trajectory> runs;
      for (const std::size_t threads : config.thread_counts) {
        runs.push_back(run_round_loop(game, config, threads, modes[mi]));
      }
      bool bit_identical = true;
      for (std::size_t i = 1; i < runs.size(); ++i) {
        if (runs[i].x != runs[0].x || runs[i].p != runs[0].p) {
          bit_identical = false;
        }
      }
      if (mi == 1 && !bit_identical) aggregated_deterministic = false;
      for (std::size_t i = 0; i < runs.size(); ++i) {
        std::printf(
            "    {\"mode\": \"%s\", \"threads\": %zu, \"seconds\": %.6f, "
            "\"rounds_per_s\": %.3f, \"bit_identical\": %s}%s\n",
            mi == 0 ? "pairwise" : "aggregated", config.thread_counts[i],
            runs[i].seconds,
            static_cast<double>(config.rounds) / runs[i].seconds,
            bit_identical ? "true" : "false",
            mi == 1 && i + 1 == runs.size() ? "" : ",");
      }
    }
    std::printf("  ]\n");
  }
  std::printf("}\n");
  if (!aggregated_deterministic || !scaling_identical) {
    std::fprintf(stderr,
                 "FAIL: aggregated-mode trajectories differ across thread "
                 "counts — the determinism contract is broken\n");
    return 1;
  }
  if (!scaling_monotone) {
    std::fprintf(stderr,
                 "FAIL: aggregated rounds/s decreased with more threads — "
                 "the thread-scaling regression is back\n");
    return 1;
  }
  return bench::finish_json_output();
}

}  // namespace

int main(int argc, char** argv) {
  bool dataplane = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dataplane") == 0) dataplane = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (dataplane) return run_dataplane(smoke);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling") == 0) return run_scaling(false);
    if (std::strcmp(argv[i], "--smoke") == 0) return run_scaling(true);
  }
  const char* filter = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      filter = argv[i + 1];
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: bench_perf [--filter SUBSTR] | --scaling | "
                   "--smoke | --dataplane [--smoke]\n");
      return 1;
    }
  }
  return bench::run_registered_benchmarks(filter);
}
