// Micro-benchmarks (google-benchmark) for the core computational kernels:
// replicator rounds, the FDS feasible-set solver, Brandes betweenness,
// Algorithm-1 clustering, the edge-server data plane, and trace generation.
//
// Besides the google-benchmark suite (default mode, all its flags apply),
// the binary has a scaling mode for the parallel round engine:
//
//   ./build/bench/bench_perf --scaling   # 100-region round loop at
//                                        # 1/2/4/8 threads, JSON on stdout
//   ./build/bench/bench_perf --smoke     # tiny CI configuration
//
// Scaling mode re-runs the identical seeded workload per thread count,
// reports wall-clock speedup curves, and verifies the determinism contract:
// every trajectory must be bit-identical to the single-threaded run (the
// process exits non-zero otherwise). Speedups depend on the machine's
// cores; bit-identity must hold everywhere.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench_common.h"
#include "core/fds.h"
#include "system/system.h"
#include "core/lower_bound.h"
#include "core/rate_model.h"
#include "core/sensor_model.h"
#include "perception/data_plane.h"
#include "roadnet/betweenness.h"
#include "roadnet/builders.h"
#include "spatial/grid_index.h"
#include "trace/generator.h"

namespace {

using namespace avcp;

core::MultiRegionGame make_chain(std::size_t regions) {
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  std::vector<core::RegionSpec> specs(regions);
  for (std::size_t i = 0; i < regions; ++i) {
    specs[i].beta = 2.5;
    specs[i].gamma_self = 1.0;
    if (i > 0) specs[i].neighbors.emplace_back(i - 1, 0.3);
    if (i + 1 < regions) specs[i].neighbors.emplace_back(i + 1, 0.3);
  }
  return core::MultiRegionGame(std::move(config), std::move(specs));
}

void BM_ReplicatorStep(benchmark::State& state) {
  const auto game = make_chain(static_cast<std::size_t>(state.range(0)));
  auto game_state = game.uniform_state();
  const std::vector<double> x(game.num_regions(), 0.5);
  for (auto _ : state) {
    game.replicator_step(game_state, x);
    benchmark::DoNotOptimize(game_state);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(game.num_regions()));
}
BENCHMARK(BM_ReplicatorStep)->Arg(4)->Arg(20)->Arg(100);

void BM_RateFamily(benchmark::State& state) {
  const auto game = make_chain(20);
  const auto game_state = game.uniform_state();
  const std::vector<double> x(20, 0.5);
  for (auto _ : state) {
    for (core::DecisionId k = 0; k < 8; ++k) {
      benchmark::DoNotOptimize(
          core::rate_family(game, game_state, x, 10, k));
    }
  }
}
BENCHMARK(BM_RateFamily);

void BM_FdsRound(benchmark::State& state) {
  const auto game = make_chain(static_cast<std::size_t>(state.range(0)));
  core::DesiredFields fields(game.num_regions(), 8);
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.9, 1.0});
  }
  core::FdsController controller(game, fields);
  const auto game_state = game.uniform_state();
  std::vector<double> x(game.num_regions(), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.next_x(game_state, x));
  }
}
BENCHMARK(BM_FdsRound)->Arg(4)->Arg(20);

void BM_LowerBound(benchmark::State& state) {
  const auto game = make_chain(20);
  core::DesiredFields fields(20, 8);
  for (core::RegionId i = 0; i < 20; ++i) {
    fields.set_target(i, 0, Interval{0.9, 1.0});
  }
  const auto game_state = game.uniform_state();
  const std::vector<double> x(20, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::convergence_lower_bound(game, game_state, fields, x));
  }
}
BENCHMARK(BM_LowerBound);

void BM_BrandesBetweenness(benchmark::State& state) {
  roadnet::CityParams params;
  params.rows = static_cast<std::uint32_t>(state.range(0));
  params.cols = static_cast<std::uint32_t>(state.range(0));
  const auto graph = roadnet::build_city(params);
  roadnet::BetweennessOptions opts;
  opts.num_threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(roadnet::segment_betweenness(graph, opts));
  }
  state.SetLabel(std::to_string(graph.num_segments()) + " segments, " +
                 std::to_string(state.range(1)) + " threads");
}
BENCHMARK(BM_BrandesBetweenness)
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({16, 8});

void BM_Clustering(benchmark::State& state) {
  roadnet::CityParams params;
  params.rows = 16;
  params.cols = 16;
  const auto graph = roadnet::build_city(params);
  const auto coeffs = roadnet::segment_betweenness(graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::cluster_segments(graph, coeffs, {20}));
  }
}
BENCHMARK(BM_Clustering);

void BM_DataPlaneRound(benchmark::State& state) {
  const core::DecisionLattice lattice(3);
  Rng rng(5);
  const std::vector<double> privacy = {1.0, 0.5, 0.1};
  const auto universe =
      perception::DataUniverse::synthetic(3, 30, privacy, rng);
  perception::EdgeServerDataPlane plane(lattice, universe);

  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<perception::Vehicle> vehicles(n);
  for (auto& v : vehicles) {
    v.decision = static_cast<core::DecisionId>(rng.uniform_int(0, 7));
    for (perception::ItemId id = 0; id < universe.size(); ++id) {
      if (rng.bernoulli(0.3)) v.collected.push_back(id);
      if (rng.bernoulli(0.2)) v.desired.push_back(id);
    }
    if (v.desired.empty()) v.desired.push_back(0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(plane.run_round(vehicles, 0.5));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DataPlaneRound)->Arg(20)->Arg(100);

void BM_TraceGeneration(benchmark::State& state) {
  roadnet::CityParams city;
  city.rows = 10;
  city.cols = 12;
  const auto graph = roadnet::build_city(city);
  trace::TraceParams params;
  params.num_vehicles = 50;
  params.duration_s = 1800.0;
  const trace::TraceGenerator generator(graph, params);
  for (auto _ : state) {
    std::size_t count = 0;
    generator.generate([&count](const trace::GpsFix&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_GridIndexNearest(benchmark::State& state) {
  Rng rng(9);
  std::vector<PointM> points(10000);
  for (auto& p : points) {
    p = PointM{rng.uniform(0.0, 10000.0), rng.uniform(0.0, 10000.0)};
  }
  const spatial::GridIndex index(points);
  for (auto _ : state) {
    const PointM q{rng.uniform(0.0, 10000.0), rng.uniform(0.0, 10000.0)};
    benchmark::DoNotOptimize(index.nearest(q));
  }
}
BENCHMARK(BM_GridIndexNearest);

// ---------------------------------------------------------------------------
// --scaling / --smoke: round-engine thread-scaling suite.

struct ScalingConfig {
  std::size_t regions = 100;
  std::size_t vehicles_per_region = 40;
  std::size_t rounds = 15;
  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
};

struct Trajectory {
  std::vector<std::vector<double>> x;                  // per round
  std::vector<std::vector<std::vector<double>>> p;     // per round
  double seconds = 0.0;
};

Trajectory run_round_loop(const core::MultiRegionGame& game,
                          const ScalingConfig& config, std::size_t threads) {
  system::SystemParams params;
  params.vehicles_per_region = config.vehicles_per_region;
  params.seed = 2022;
  params.num_threads = threads;
  system::CooperativePerceptionSystem sys(game, params);
  sys.init_from(game.uniform_state());

  core::DesiredFields fields(game.num_regions(), 8);
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.6, 1.0});
  }
  core::FdsController controller(game, fields);

  Trajectory out;
  out.x.reserve(config.rounds);
  out.p.reserve(config.rounds);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < config.rounds; ++r) {
    auto report = sys.run_round(controller);
    out.x.push_back(std::move(report.x));
    out.p.push_back(std::move(report.state.p));
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

int run_scaling(bool smoke) {
  ScalingConfig config;
  if (smoke) {
    config.regions = 8;
    config.vehicles_per_region = 20;
    config.rounds = 4;
    config.thread_counts = {1, 2};
  }
  const auto game = make_chain(config.regions);

  std::vector<Trajectory> runs;
  runs.reserve(config.thread_counts.size());
  for (const std::size_t threads : config.thread_counts) {
    runs.push_back(run_round_loop(game, config, threads));
  }

  bool bit_identical = true;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].x != runs[0].x || runs[i].p != runs[0].p) {
      bit_identical = false;
    }
  }

  const double base = runs[0].seconds;
  std::printf("{\n");
  std::printf("  \"bench\": \"round_engine_scaling\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"regions\": %zu,\n", config.regions);
  std::printf("  \"vehicles_per_region\": %zu,\n", config.vehicles_per_region);
  std::printf("  \"rounds\": %zu,\n", config.rounds);
  std::printf("  \"bit_identical\": %s,\n", bit_identical ? "true" : "false");
  std::printf("  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::printf(
        "    {\"threads\": %zu, \"seconds\": %.6f, \"rounds_per_s\": %.3f, "
        "\"speedup\": %.3f}%s\n",
        config.thread_counts[i], runs[i].seconds,
        static_cast<double>(config.rounds) / runs[i].seconds,
        base / runs[i].seconds, i + 1 < runs.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  if (!bit_identical) {
    std::fprintf(stderr,
                 "FAIL: trajectories differ across thread counts — the "
                 "determinism contract is broken\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling") == 0) return run_scaling(false);
    if (std::strcmp(argv[i], "--smoke") == 0) return run_scaling(true);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
