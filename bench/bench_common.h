// Shared configuration for the reproduction benches.
//
// The paper's evaluation runs on Futian district (Shenzhen): ~28k vehicles,
// 100 edge servers, 20 regions, 10-minute rounds. The benches reproduce the
// same pipeline on the procedural city at a scale that completes in seconds
// per figure; the shapes under study (who wins, where crossovers fall) are
// scale-stable (see EXPERIMENTS.md).
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/interval.h"
#include "core/fds.h"
#include "core/sensor_model.h"
#include "sim/pipeline.h"
#include "sim/runner.h"

namespace avcp::bench {

/// Peak resident set size of this process in bytes (0 where the platform
/// offers no getrusage). Linux reports ru_maxrss in kilobytes, macOS in
/// bytes.
inline std::size_t peak_rss_bytes() {
#if defined(__linux__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

/// Outstanding heap allocations, counted by the replaced global operator
/// new/delete that AVCP_BENCH_DEFINE_COUNTING_ALLOCATOR defines. Binaries
/// that don't define the allocator read a constant 0.
inline std::atomic<long long> g_live_allocations{0};

inline long long live_allocations() {
  return g_live_allocations.load(std::memory_order_relaxed);
}

/// Paper-shaped pipeline configuration (Futian box proportions).
inline sim::PipelineConfig paper_config(sim::CoefficientKind kind,
                                        bool small = false) {
  sim::PipelineConfig config;
  if (small) {
    config.city.rows = 10;
    config.city.cols = 14;
    config.traces.num_vehicles = 150;
    config.traces.duration_s = 2 * 3600.0;
    config.num_servers = 48;
    config.num_regions = 8;
  } else {
    config.city.rows = 18;
    config.city.cols = 24;
    config.traces.num_vehicles = 400;
    config.traces.duration_s = 3 * 3600.0;
    config.num_servers = 100;  // paper: 100 edge servers
    config.num_regions = 20;   // paper: 20 regions
  }
  config.city.seed = 2022;
  config.traces.seed = 2023;
  config.coefficient = kind;
  config.td_window_s = 600.0;  // paper: 10-minute TD windows
  config.beta_lo = 2.0;
  config.beta_hi = 3.5;
  return config;
}

/// The paper's 8-decision game over trace-derived region specs.
inline core::MultiRegionGame make_paper_game(
    const sim::PipelineArtifacts& artifacts, double step_size = 0.5) {
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = step_size;
  return core::MultiRegionGame(std::move(config), artifacts.region_specs);
}

/// FDS options used across benches (Lambda and interior margin).
inline core::FdsOptions bench_fds_options() {
  core::FdsOptions options;
  options.max_step = 0.1;
  return options;
}

/// Desired fields = eps-box around the equilibrium reached from `start`
/// under a constant reference ratio (§V-C methodology; see EXPERIMENTS.md).
inline core::DesiredFields attainable_fields(const core::MultiRegionGame& game,
                                             const core::GameState& start,
                                             double x_ref, double eps,
                                             int rounds = 3000) {
  core::GameState eq = start;
  const std::vector<double> x(game.num_regions(), x_ref);
  for (int t = 0; t < rounds; ++t) game.replicator_step(eq, x);
  core::DesiredFields fields(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    for (core::DecisionId k = 0; k < game.num_decisions(); ++k) {
      fields.set_target(i, k,
                        Interval{std::max(0.0, eq.p[i][k] - eps),
                                 std::min(1.0, eq.p[i][k] + eps)});
    }
  }
  return fields;
}

/// Epilogue for benches that emit a JSON document on stdout: flushes and
/// verifies the stream, so a truncated document (full disk, broken pipe)
/// yields a nonzero exit instead of a clean code next to a torn file.
/// Use as `return finish_json_output();` at the end of main.
inline int finish_json_output() {
  if (std::fflush(stdout) != 0 || std::ferror(stdout) != 0) {
    std::fprintf(stderr, "error: JSON output stream failed\n");
    return 1;
  }
  return 0;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule() {
  std::printf("%s\n", std::string(72, '-').c_str());
}

}  // namespace avcp::bench

/// Replaces the global operator new/delete with counting versions wired to
/// avcp::bench::g_live_allocations, so a bench can assert zero steady-state
/// allocations or a bounded live-allocation growth. Replacement functions
/// must be defined in exactly ONE translation unit of the binary — invoke
/// this macro at namespace scope in the bench's main .cpp only.
// NOLINTBEGIN(cppcoreguidelines-macro-usage)
#define AVCP_BENCH_DEFINE_COUNTING_ALLOCATOR()                                 \
  namespace {                                                                  \
  void* avcp_counted_alloc(std::size_t size) {                                 \
    avcp::bench::g_live_allocations.fetch_add(1, std::memory_order_relaxed);   \
    void* p = std::malloc(size);                                               \
    if (p == nullptr) throw std::bad_alloc();                                  \
    return p;                                                                  \
  }                                                                            \
  void avcp_counted_free(void* p) noexcept {                                   \
    if (p != nullptr) {                                                        \
      avcp::bench::g_live_allocations.fetch_sub(1, std::memory_order_relaxed); \
    }                                                                          \
    std::free(p);                                                              \
  }                                                                            \
  }                                                                            \
  void* operator new(std::size_t size) { return avcp_counted_alloc(size); }    \
  void* operator new[](std::size_t size) { return avcp_counted_alloc(size); }  \
  void* operator new(std::size_t size, const std::nothrow_t&) noexcept {       \
    avcp::bench::g_live_allocations.fetch_add(1, std::memory_order_relaxed);   \
    return std::malloc(size);                                                  \
  }                                                                            \
  void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {     \
    avcp::bench::g_live_allocations.fetch_add(1, std::memory_order_relaxed);   \
    return std::malloc(size);                                                  \
  }                                                                            \
  void operator delete(void* p) noexcept { avcp_counted_free(p); }             \
  void operator delete[](void* p) noexcept { avcp_counted_free(p); }           \
  void operator delete(void* p, std::size_t) noexcept {                        \
    avcp_counted_free(p);                                                      \
  }                                                                            \
  void operator delete[](void* p, std::size_t) noexcept {                      \
    avcp_counted_free(p);                                                      \
  }                                                                            \
  void operator delete(void* p, const std::nothrow_t&) noexcept {              \
    avcp_counted_free(p);                                                      \
  }                                                                            \
  void operator delete[](void* p, const std::nothrow_t&) noexcept {            \
    avcp_counted_free(p);                                                      \
  }
// NOLINTEND(cppcoreguidelines-macro-usage)
