// Reproduces Fig. 10: evolution of the population over the eight
// data-sharing decisions in a representative region under
//   (1) fixed sharing ratio x = 0.2 (low-sharing decisions win),
//   (2) fixed sharing ratio x = 1.0 (high-sharing decisions win),
//   (3) FDS shaping toward a desired decision field,
// plus the per-round proportion deltas showing the fast first phase and the
// long convergence tail.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sim/trace_replay.h"

using namespace avcp;

namespace {

void print_trajectory(const core::MultiRegionGame& game,
                      const sim::RunResult& run, core::RegionId region,
                      int max_rows) {
  std::printf("%-6s", "round");
  for (core::DecisionId k = 0; k < game.num_decisions(); ++k) {
    std::printf(" %7s", game.lattice().label(k).substr(0, 7).c_str());
  }
  std::printf("\n");
  bench::print_rule();
  const std::size_t steps = run.trajectory.size();
  const std::size_t stride =
      std::max<std::size_t>(1, steps / static_cast<std::size_t>(max_rows));
  for (std::size_t t = 0; t < steps; t += stride) {
    std::printf("%-6zu", t);
    for (core::DecisionId k = 0; k < game.num_decisions(); ++k) {
      std::printf(" %7.3f", run.trajectory[t].p[region][k]);
    }
    std::printf("\n");
  }
  if ((steps - 1) % stride != 0) {
    std::printf("%-6zu", steps - 1);
    for (core::DecisionId k = 0; k < game.num_decisions(); ++k) {
      std::printf(" %7.3f", run.trajectory[steps - 1].p[region][k]);
    }
    std::printf("\n");
  }
}

void print_final_mix(const core::MultiRegionGame& game,
                     const core::GameState& state, core::RegionId region) {
  std::printf("final mix:");
  for (core::DecisionId k = 0; k < game.num_decisions(); ++k) {
    if (state.p[region][k] > 0.005) {
      std::printf("  %s=%.0f%%", game.lattice().label(k).c_str(),
                  100.0 * state.p[region][k]);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto config = bench::paper_config(sim::CoefficientKind::kBetweenness);
  const auto artifacts = sim::build_pipeline(config);
  const auto game = bench::make_paper_game(artifacts);

  // Representative region: the one with the strongest local coupling.
  core::RegionId region = 0;
  double best = 0.0;
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    const auto& spec = game.region(i);
    if (spec.beta * spec.gamma_self > best) {
      best = spec.beta * spec.gamma_self;
      region = i;
    }
  }
  std::printf("representative region: %u (beta*gamma_ii = %.2f)\n", region,
              best);

  sim::RunOptions options;
  options.max_rounds = 120;

  bench::print_header("Fig. 10 (left): fixed sharing ratio x = 0.2");
  {
    core::FixedRatioController controller(0.2);
    const auto run = sim::run_mean_field(
        game, controller, game.uniform_state(),
        std::vector<double>(game.num_regions(), 0.2), nullptr, options);
    print_trajectory(game, run, region, 12);
    print_final_mix(game, run.final_state, region);
    std::printf("(paper: converges to low-sharing decisions — radar-only "
                "p7 = 87%% / none p8 = 13%%)\n");
  }

  bench::print_header("Fig. 10 (second): fixed sharing ratio x = 1.0");
  {
    core::FixedRatioController controller(1.0);
    const auto run = sim::run_mean_field(
        game, controller, game.uniform_state(),
        std::vector<double>(game.num_regions(), 1.0), nullptr, options);
    print_trajectory(game, run, region, 12);
    print_final_mix(game, run.final_state, region);
    std::printf("(paper: converges to high-sharing decisions — share-all "
                "p1 = 76%% / camera p5 = 24%%)\n");
  }

  bench::print_header("Fig. 10 (third): FDS toward the desired field");
  {
    // Desired field from the x_ref = 0.75 equilibrium (attainable analogue
    // of the paper's p1*=65%, p5*=25%, p7*=p8*=5% target; EXPERIMENTS.md).
    const auto fields =
        bench::attainable_fields(game, game.uniform_state(), 0.75, 0.03);
    core::FdsController controller(game, fields, bench::bench_fds_options());
    sim::RunOptions fds_options_run;
    fds_options_run.max_rounds = 400;
    const auto run = sim::run_mean_field(
        game, controller, game.uniform_state(),
        std::vector<double>(game.num_regions(), 0.2), &fields,
        fds_options_run);
    print_trajectory(game, run, region, 12);
    print_final_mix(game, run.final_state, region);
    std::printf("converged: %s after %zu rounds\n",
                run.converged ? "yes" : "no", run.rounds);

    bench::print_header(
        "Fig. 10 (fourth): proportion difference in adjacent rounds");
    const auto deltas = run.proportion_deltas();
    std::printf("%-6s %12s\n", "round", "max |dp|");
    bench::print_rule();
    const std::size_t stride = std::max<std::size_t>(1, deltas.size() / 20);
    for (std::size_t t = 0; t < deltas.size(); t += stride) {
      std::printf("%-6zu %12.5f\n", t + 1, deltas[t]);
    }
    // The paper's observation: fast convergence in the first ~8 rounds,
    // then a long tail.
    if (deltas.size() > 20) {
      double early = 0.0;
      double late = 0.0;
      for (std::size_t t = 0; t < 8; ++t) early += deltas[t];
      for (std::size_t t = deltas.size() - 8; t < deltas.size(); ++t) {
        late += deltas[t];
      }
      std::printf("early/late movement ratio (first 8 vs last 8 rounds): "
                  "%.1f (>> 1 reproduces the long-tail shape)\n",
                  early / std::max(late, 1e-9));
    }
  }

  bench::print_header(
      "Fig. 10 (extension): vehicle-level trace replay under FDS");
  {
    // The same shaping run at the level of individual trace vehicles
    // migrating between regions (sim::TraceDrivenSim). With a few dozen
    // vehicles per region the empirical proportions carry sampling noise of
    // several percent, so the success metric is the dominant decision per
    // region rather than tight eps-boxes.
    const auto fields =
        bench::attainable_fields(game, game.uniform_state(), 0.75, 0.05);
    auto fds_opts = bench::bench_fds_options();
    fds_opts.max_step = 0.2;
    core::FdsController controller(game, fields, fds_opts);
    sim::TraceReplayParams replay_params;
    replay_params.round_s = 600.0;  // the paper's 10-minute rounds
    replay_params.imitation_scale = 1.0;
    sim::TraceDrivenSim replay(game, artifacts.fixes,
                               artifacts.clustering.region_of,
                               config.traces.num_vehicles,
                               config.traces.duration_s, replay_params);
    replay.init_from(game.uniform_state());

    std::vector<double> x(game.num_regions(), 0.5);
    for (int t = 0; t < 200; ++t) {
      x = controller.next_x(replay.empirical_state(), x);
      replay.step(x);
    }
    std::printf("trace rounds available: %zu (presence pattern repeats "
                "afterwards)\n",
                replay.num_rounds());
    int match = 0;
    for (core::RegionId i = 0; i < game.num_regions(); ++i) {
      core::DecisionId target_top = 0;
      double best_center = -1.0;
      for (core::DecisionId k = 0; k < game.num_decisions(); ++k) {
        const auto& target = fields.target(i, k);
        const double center = (target.lo + target.hi) / 2.0;
        if (center > best_center) {
          best_center = center;
          target_top = k;
        }
      }
      const auto& p = replay.empirical_state().p[i];
      core::DecisionId got = 0;
      for (core::DecisionId k = 1; k < game.num_decisions(); ++k) {
        if (p[k] > p[got]) got = k;
      }
      if (got == target_top) ++match;
    }
    std::printf("regions whose dominant decision matches the desired "
                "field's: %d / %zu\n",
                match, game.num_regions());
    std::printf("(the microscopic trace-coupled population tracks the "
                "mean-field shaping)\n");
  }
  return 0;
}
