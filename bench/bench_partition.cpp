// Degraded-network chaos explorer (DESIGN.md §17): FoundationDB-style
// deterministic simulation testing of the inter-region transport.
//
// The sweep crosses drop-rate x delay profile x partition pattern on the
// measured plant, every cell against a clean twin (same seeds, no
// degradation). Because every message fate is a pure hash of the cell's
// seed, any violation replays exactly from the printed seed + schedule —
// no shrinking, no flaky repro. Three invariants are asserted per run:
//
//   1. Zero-degradation bit-identity: routing the exchange through the
//      channel with an inert LinkModel reproduces the synchronous
//      trajectory bit for bit (ratios AND the decision distribution).
//   2. Consensus convergence: at drop rates up to 0.30 (with delays,
//      duplicates, and reordering riding along) the desired decision
//      fields are still attained — the tail mean field violation stays
//      under kTailViolationBound. Degradation bends the trajectory; it
//      must not break the control loop.
//   3. Bounded heal time: after a partition window closes, the plant
//      re-attains the desired fields in at most kHealBoundRounds rounds
//      (the bound EXPERIMENTS.md documents).
//
// Output is one JSON document on stdout:
//
//   ./build/bench/bench_partition > BENCH_partition.json
//   ./build/bench/bench_partition --smoke          # CI configuration
//   ./build/bench/bench_partition --cell drop30-delay-middle  # 1-cell repro
//
// On violation the offending cell's seed and full network schedule are
// printed to stderr and the process exits non-zero.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/link_model.h"
#include "sim/metrics.h"
#include "system/system.h"

using namespace avcp;

namespace {

std::size_t kRounds = 120;
std::size_t kTailRounds = 25;
// The window covers the convergence transient on purpose: once the plant
// reaches the (absorbing) desired field, severed links cannot move it, so
// a late partition is a no-op. Cutting the exchange while consensus is
// still forming is the adversarial placement.
std::size_t kPartitionStart = 2;
std::size_t kPartitionDuration = 12;
constexpr std::uint64_t kPlantSeed = 11;
constexpr std::uint64_t kNetSeed = 404;

// The documented invariant bounds (EXPERIMENTS.md §"Degraded transport").
// kFieldTol absorbs finite-fleet granularity: with 60 vehicles per region
// one imitation flip moves a proportion by 1/60.
constexpr double kFieldTol = 0.05;
constexpr double kTailViolationBound = 0.05;
constexpr std::size_t kHealBoundRounds = 30;
// Degradation may slow convergence, never stop it: every cell must attain
// the fields within this many rounds of the clean twin's attainment.
constexpr std::size_t kAttainSlackRounds = 15;

/// 3-region chain, beta 4.0 — the bench_faults plant, whose desired field
/// is attainable on the measured system.
core::MultiRegionGame make_game() {
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  std::vector<core::RegionSpec> regions(3);
  for (std::size_t i = 0; i < regions.size(); ++i) {
    regions[i].beta = 4.0;
    regions[i].gamma_self = 1.0;
    if (i > 0) {
      regions[i].neighbors.emplace_back(static_cast<core::RegionId>(i - 1),
                                        0.3);
    }
    if (i + 1 < regions.size()) {
      regions[i].neighbors.emplace_back(static_cast<core::RegionId>(i + 1),
                                        0.3);
    }
  }
  return core::MultiRegionGame(std::move(config), std::move(regions));
}

core::DesiredFields make_fields(const core::MultiRegionGame& game) {
  core::DesiredFields fields(game.num_regions(), game.num_decisions());
  for (core::RegionId i = 0; i < game.num_regions(); ++i) {
    fields.set_target(i, 0, Interval{0.7, 1.0});
  }
  return fields;
}

/// How far the state sits outside the desired fields: max over
/// (region, decision) of the distance from p to its target interval.
double field_violation(const core::DesiredFields& fields,
                       const core::GameState& state) {
  double worst = 0.0;
  for (core::RegionId i = 0; i < fields.num_regions(); ++i) {
    for (core::DecisionId k = 0; k < fields.num_decisions(); ++k) {
      const Interval& target = fields.target(i, k);
      const double p = state.p[i][k];
      const double out = p < target.lo ? target.lo - p
                         : p > target.hi ? p - target.hi
                                         : 0.0;
      worst = std::max(worst, out);
    }
  }
  return worst;
}

/// Which component each chain region falls into during the window. On the
/// 3-chain, kTail cuts only the 1-2 link (region 2 alone); kIsolate puts
/// every region in its own component (both links cut).
enum class PartitionPattern { kNone, kTail, kIsolate };

const char* pattern_name(PartitionPattern p) {
  switch (p) {
    case PartitionPattern::kNone: return "none";
    case PartitionPattern::kTail: return "tail";
    case PartitionPattern::kIsolate: return "isolate";
  }
  return "?";
}

struct CellSpec {
  std::string name;
  double drop_rate = 0.0;
  double delay_rate = 0.0;
  PartitionPattern partition = PartitionPattern::kNone;
};

net::NetParams cell_net(const CellSpec& spec) {
  net::NetParams net;
  net.drop_rate = spec.drop_rate;
  net.delay_rate = spec.delay_rate;
  net.max_delay_rounds = 2;
  net.duplicate_rate = spec.delay_rate > 0.0 ? 0.1 : 0.0;
  net.reorder_rate = spec.delay_rate > 0.0 ? 0.1 : 0.0;
  net.max_retries = 2;
  net.backoff_base = 1;
  net.max_staleness = 3;
  net.model_transport = true;  // every cell exercises the channel path
  net.seed = kNetSeed;
  if (spec.partition != PartitionPattern::kNone) {
    net::PartitionWindow w;
    w.first_round = kPartitionStart;
    w.duration = kPartitionDuration;
    w.component = spec.partition == PartitionPattern::kTail
                      ? std::vector<std::uint32_t>{0, 0, 1}   // 1-2 link cut
                      : std::vector<std::uint32_t>{0, 1, 2};  // every link cut
    net.partitions.push_back(w);
  }
  return net;
}

struct Trajectory {
  std::vector<std::vector<double>> x;  // [round][region]
  std::vector<core::GameState> state;
  // Cumulative transport counters over the run.
  std::size_t sent = 0, delivered = 0, dropped = 0, severed = 0;
  std::size_t retries = 0, expired = 0, duplicates = 0;
  std::size_t stale_links = 0, blind_links = 0;
};

Trajectory run_plant(const core::MultiRegionGame& game,
                     const net::NetParams& net) {
  system::SystemParams params;
  params.vehicles_per_region = 60;
  params.seed = kPlantSeed;
  params.net = net;
  system::CooperativePerceptionSystem plant(game, params, nullptr);
  plant.init_from(game.uniform_state());

  const auto fields = make_fields(game);
  core::FdsOptions options;
  options.max_step = 0.15;
  core::FdsController controller(game, fields, options);

  Trajectory out;
  out.x.reserve(kRounds);
  out.state.reserve(kRounds);
  for (std::size_t t = 0; t < kRounds; ++t) {
    const auto report = plant.run_round(controller);
    out.x.push_back(report.x);
    out.state.push_back(report.state);
    out.sent += report.net.sent;
    out.delivered += report.net.delivered;
    out.dropped += report.net.dropped;
    out.severed += report.net.severed;
    out.retries += report.net.retries;
    out.expired += report.net.expired;
    out.duplicates += report.net.duplicates;
    out.stale_links += report.net.stale_links;
    out.blind_links += report.net.blind_links;
  }
  return out;
}

double linf(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

struct CellResult {
  CellSpec spec;
  Trajectory traj;
  double tail_violation = 0.0;   // mean field violation over tail rounds
  double max_violation = 0.0;    // worst round anywhere in the run
  double max_p_error = 0.0;      // worst divergence from the clean twin
  std::size_t attained_round = sim::kNoReconvergence;
  bool converged = false;        // tail violation within the bound
  bool healed = true;
  std::size_t heal_rounds = 0;
  bool ok = true;
};

CellResult evaluate_cell(const core::MultiRegionGame& game,
                         const core::DesiredFields& fields,
                         const CellSpec& spec, const Trajectory& clean,
                         std::size_t clean_attained) {
  CellResult result;
  result.spec = spec;
  result.traj = run_plant(game, cell_net(spec));

  double tail_sum = 0.0;
  for (std::size_t t = 0; t < kRounds; ++t) {
    const double violation = field_violation(fields, result.traj.state[t]);
    result.max_violation = std::max(result.max_violation, violation);
    if (t >= kRounds - kTailRounds) tail_sum += violation;
    for (std::size_t i = 0; i < result.traj.state[t].p.size(); ++i) {
      result.max_p_error = std::max(
          result.max_p_error,
          linf(result.traj.state[t].p[i], clean.state[t].p[i]));
    }
    if (result.attained_round == sim::kNoReconvergence &&
        fields.satisfied(result.traj.state[t], kFieldTol)) {
      result.attained_round = t;
    }
  }
  result.tail_violation = tail_sum / static_cast<double>(kTailRounds);
  // Converged = the fields were attained and the tail holds them. Wire
  // degradation alone must not slow attainment by more than
  // kAttainSlackRounds; a partitioned cell instead answers to the heal
  // bound below (it cannot be expected to converge while its links are
  // severed).
  result.converged = result.tail_violation <= kTailViolationBound &&
                     result.attained_round != sim::kNoReconvergence;
  if (spec.partition == PartitionPattern::kNone) {
    result.converged = result.converged &&
                       result.attained_round <=
                           clean_attained + kAttainSlackRounds;
  }

  if (spec.partition != PartitionPattern::kNone) {
    // Heal time: rounds past the window's end until the desired fields are
    // first re-attained (sim::rounds_to_reconverge, the bench_faults
    // convention for outage recovery).
    const std::size_t end = kPartitionStart + kPartitionDuration;
    result.heal_rounds = sim::rounds_to_reconverge(
        result.traj.state, fields, end, kFieldTol);
    result.healed = result.heal_rounds != sim::kNoReconvergence;
    result.ok = result.converged && result.healed &&
                result.heal_rounds <= kHealBoundRounds;
  } else {
    result.ok = result.converged;
  }
  return result;
}

void print_violation(const CellResult& r) {
  const net::NetParams net = cell_net(r.spec);
  std::fprintf(stderr,
               "INVARIANT VIOLATION in cell \"%s\": tail_violation=%.4f "
               "(bound %.2f), attained_round=%lld, healed=%s, "
               "heal_rounds=%zu (bound %zu)\n",
               r.spec.name.c_str(), r.tail_violation, kTailViolationBound,
               r.attained_round == sim::kNoReconvergence
                   ? -1ll
                   : static_cast<long long>(r.attained_round),
               r.healed ? "true" : "false", r.heal_rounds, kHealBoundRounds);
  std::fprintf(stderr,
               "  schedule: net_seed=%llu plant_seed=%llu drop=%.2f "
               "delay=%.2f dup=%.2f reorder=%.2f max_delay=%zu retries=%zu "
               "backoff=%zu staleness=%zu partition=%s window=[%zu,%zu)\n",
               static_cast<unsigned long long>(net.seed),
               static_cast<unsigned long long>(kPlantSeed), net.drop_rate,
               net.delay_rate, net.duplicate_rate, net.reorder_rate,
               net.max_delay_rounds, net.max_retries, net.backoff_base,
               net.max_staleness, pattern_name(r.spec.partition),
               kPartitionStart, kPartitionStart + kPartitionDuration);
  std::fprintf(stderr,
               "  repro: ./build/bench/bench_partition%s --cell %s "
               "(fully deterministic)\n",
               kRounds < 100 ? " --smoke" : "", r.spec.name.c_str());
}

void print_cell_json(const CellResult& r, bool last) {
  std::printf(
      "    {\"name\": \"%s\", \"drop_rate\": %.2f, \"delay_rate\": %.2f,\n"
      "     \"partition\": \"%s\",\n"
      "     \"tail_violation\": %.6f, \"max_violation\": %.6f, "
      "\"max_p_error\": %.6f,\n"
      "     \"attained_round\": %lld,\n"
      "     \"converged\": %s, \"healed\": %s, \"heal_rounds\": %zu,\n"
      "     \"sent\": %zu, \"delivered\": %zu, \"dropped\": %zu, "
      "\"severed\": %zu,\n"
      "     \"retries\": %zu, \"expired\": %zu, \"duplicates\": %zu,\n"
      "     \"stale_links\": %zu, \"blind_links\": %zu, \"ok\": %s}%s\n",
      r.spec.name.c_str(), r.spec.drop_rate, r.spec.delay_rate,
      pattern_name(r.spec.partition), r.tail_violation, r.max_violation,
      r.max_p_error,
      r.attained_round == sim::kNoReconvergence
          ? -1ll
          : static_cast<long long>(r.attained_round),
      r.converged ? "true" : "false", r.healed ? "true" : "false",
      r.healed ? r.heal_rounds : std::size_t{0}, r.traj.sent,
      r.traj.delivered, r.traj.dropped, r.traj.severed, r.traj.retries,
      r.traj.expired, r.traj.duplicates, r.traj.stale_links,
      r.traj.blind_links, r.ok ? "true" : "false", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string only_cell;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--cell") == 0 && i + 1 < argc) {
      only_cell = argv[++i];
    }
  }
  std::vector<double> drop_rates = {0.0, 0.1, 0.3};
  std::vector<double> delay_rates = {0.0, 0.3};
  std::vector<PartitionPattern> patterns = {
      PartitionPattern::kNone, PartitionPattern::kTail,
      PartitionPattern::kIsolate};
  if (smoke) {
    kRounds = 60;
    kTailRounds = 15;
    kPartitionStart = 2;
    kPartitionDuration = 8;
    drop_rates = {0.0, 0.3};
    delay_rates = {0.3};
    patterns = {PartitionPattern::kNone, PartitionPattern::kIsolate};
  }

  const auto game = make_game();
  const auto fields = make_fields(game);

  // The clean twin every cell diffs against: transport off entirely.
  const Trajectory clean = run_plant(game, net::NetParams{});
  std::size_t clean_attained = sim::kNoReconvergence;
  for (std::size_t t = 0; t < kRounds; ++t) {
    if (fields.satisfied(clean.state[t], kFieldTol)) {
      clean_attained = t;
      break;
    }
  }

  // Invariant 1 — zero-degradation bit-identity. The inert-channel arm
  // must reproduce the clean twin exactly, bit for bit.
  net::NetParams inert;
  inert.model_transport = true;
  const Trajectory wired = run_plant(game, inert);
  bool bit_identical = wired.x.size() == clean.x.size();
  for (std::size_t t = 0; bit_identical && t < kRounds; ++t) {
    bit_identical = wired.x[t] == clean.x[t] &&
                    wired.state[t].p == clean.state[t].p;
  }

  std::vector<CellResult> results;
  std::size_t violations = bit_identical ? 0 : 1;
  if (!bit_identical) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATION: zero-degradation transport is not "
                 "bit-identical to the synchronous exchange "
                 "(plant_seed=%llu)\n",
                 static_cast<unsigned long long>(kPlantSeed));
  }
  for (const double drop : drop_rates) {
    for (const double delay : delay_rates) {
      for (const PartitionPattern pattern : patterns) {
        CellSpec spec;
        spec.drop_rate = drop;
        spec.delay_rate = delay;
        spec.partition = pattern;
        char name[64];
        std::snprintf(name, sizeof name, "drop%02d%s-%s",
                      static_cast<int>(drop * 100 + 0.5),
                      delay > 0.0 ? "-delay" : "", pattern_name(pattern));
        spec.name = name;
        if (!only_cell.empty() && only_cell != spec.name) continue;
        results.push_back(
            evaluate_cell(game, fields, spec, clean, clean_attained));
        if (!results.back().ok) {
          ++violations;
          print_violation(results.back());
        }
      }
    }
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_partition\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"rounds\": %zu,\n", kRounds);
  std::printf("  \"tail_rounds\": %zu,\n", kTailRounds);
  std::printf("  \"partition_start\": %zu,\n", kPartitionStart);
  std::printf("  \"partition_duration\": %zu,\n", kPartitionDuration);
  std::printf("  \"net_seed\": %llu,\n",
              static_cast<unsigned long long>(kNetSeed));
  std::printf("  \"field_tol\": %.2f,\n", kFieldTol);
  std::printf("  \"tail_violation_bound\": %.2f,\n", kTailViolationBound);
  std::printf("  \"heal_bound_rounds\": %zu,\n", kHealBoundRounds);
  std::printf("  \"clean_attained_round\": %lld,\n",
              clean_attained == sim::kNoReconvergence
                  ? -1ll
                  : static_cast<long long>(clean_attained));
  std::printf("  \"zero_degradation_bit_identical\": %s,\n",
              bit_identical ? "true" : "false");
  std::printf("  \"sweep\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    print_cell_json(results[i], i + 1 == results.size());
  }
  std::printf("  ],\n");
  std::printf("  \"violations\": %zu\n", violations);
  std::printf("}\n");

  const int json_rc = bench::finish_json_output();
  return violations > 0 ? 1 : json_rc;
}
