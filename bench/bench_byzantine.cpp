// Byzantine-robustness sweep: adversary strategy x attacker fraction x
// defence posture on the measured plant, each cell against the same seeded
// clean twin.
//
// The scenario is the closed control loop of the system tests: a 3-region
// beta-4.0 chain whose share-everything floors are recomputed every round
// from the pipeline's aggregated density telemetry (density_weighted_fields
// + FdsController::set_desired). The clean twin routes through a fully
// armed pipeline over an attacker-free fleet (bit-identical to the bare
// plant per the system_byzantine tests) so both arms ingest telemetry the
// same way. Per cell:
//
//   ratio_error_tail        mean over tail rounds/regions of |x - x_clean|
//   observed_error_tail     mean |observed p(P1) - honest truth| (how far
//                           the cloud's picture is dragged by the lies)
//   observed_error_all      the same error over the whole run — inflated
//                           claims distort mostly the transient, before the
//                           coordinated fixed point masks them
//   honest_converged_round  first round the *honest* fleet entered the
//                           desired field for good (kNoReconvergence -> -1)
//   precision / recall      quarantine flags vs. the adversary's designated
//                           attacker set at the end of the run
//   quarantined / rejected  head-count and per-round outlier rejections
//
// The vulnerable arm replaces the robust estimators with a trusting mean
// (no rejection, no enforcement, no scoring) — the pre-PR cloud. Output is
// one JSON document on stdout:
//
//   ./build/bench/bench_byzantine > byzantine.json
//   ./build/bench/bench_byzantine --smoke   # tiny CI configuration
//
// --adaptive switches to the closed-loop sweep: the reputation-aware
// AdaptiveAdversary policies (build-then-defect pacing, threshold probing,
// rotating region collusion) x attacker fraction x defense {ewma, trust},
// run through the declarative scenario layer (scenario/scenario.h) so the
// bench exercises the exact configurations the catalog registers. The
// headline contrast: the PR-2 EWMA-only defense leaks a nonzero steady-
// state ratio error against pacing and collusion (the bursts are sized to
// its forgetting dynamics), while the Beta-prior trust ratchet holds the
// tail error at zero for >= 20% adaptive attackers. A final section runs
// the service-layer churn-exploit twist (identity wash on rejoin) with and
// without keyed-identity suspicion carry-over.
//
//   ./build/bench/bench_byzantine --adaptive > BENCH_adaptive.json
//   ./build/bench/bench_byzantine --adaptive --smoke
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "byzantine/adversary_model.h"
#include "byzantine/report_pipeline.h"
#include "core/fds.h"
#include "core/sensor_model.h"
#include "scenario/scenario.h"
#include "sim/metrics.h"

#include "bench_common.h"
#include "system/system.h"

using namespace avcp;

namespace {

struct BenchConfig {
  std::size_t rounds = 120;
  std::size_t tail_rounds = 30;
  std::size_t vehicles = 100;
  std::vector<double> fractions = {0.1, 0.2, 0.3};
  std::vector<byzantine::AttackStrategy> strategies = {
      byzantine::AttackStrategy::kInflateSharing,
      byzantine::AttackStrategy::kDensityPoison,
      byzantine::AttackStrategy::kGammaExaggerate,
      byzantine::AttackStrategy::kColludingBias,
      byzantine::AttackStrategy::kFlipFlop,
  };
};

BenchConfig smoke_config() {
  BenchConfig config;
  config.rounds = 40;
  config.tail_rounds = 10;
  config.vehicles = 40;
  config.fractions = {0.2};
  config.strategies = {byzantine::AttackStrategy::kInflateSharing,
                       byzantine::AttackStrategy::kDensityPoison};
  return config;
}

constexpr std::size_t kRegions = 3;
constexpr double kBaseFloor = 0.7;
constexpr double kFloorSlope = 0.6;

const char* strategy_name(byzantine::AttackStrategy s) {
  switch (s) {
    case byzantine::AttackStrategy::kInflateSharing: return "inflate_sharing";
    case byzantine::AttackStrategy::kDensityPoison: return "density_poison";
    case byzantine::AttackStrategy::kGammaExaggerate: return "gamma_exaggerate";
    case byzantine::AttackStrategy::kColludingBias: return "colluding_bias";
    case byzantine::AttackStrategy::kFlipFlop: return "flip_flop";
  }
  return "?";
}

/// Same plant as bench_faults: betas rich enough that the desired field is
/// attainable, so the clean loop settles and deviations are attack-caused.
core::MultiRegionGame make_game() {
  core::GameConfig config;
  config.lattice = core::DecisionLattice(3);
  const auto tables = core::paper_decision_tables(config.lattice);
  config.utility = tables.utility;
  config.privacy = tables.privacy;
  config.step_size = 0.5;
  std::vector<core::RegionSpec> regions(kRegions);
  for (std::size_t i = 0; i < regions.size(); ++i) {
    regions[i].beta = 4.0;
    regions[i].gamma_self = 1.0;
    if (i > 0) {
      regions[i].neighbors.emplace_back(static_cast<core::RegionId>(i - 1),
                                        0.3);
    }
    if (i + 1 < regions.size()) {
      regions[i].neighbors.emplace_back(static_cast<core::RegionId>(i + 1),
                                        0.3);
    }
  }
  return core::MultiRegionGame(std::move(config), std::move(regions));
}

byzantine::PipelineOptions robust_options() {
  byzantine::PipelineOptions options;
  options.aggregator.mode = byzantine::AggregationMode::kMedian;
  options.aggregator.reject_outliers = true;
  return options;
}

byzantine::PipelineOptions trusting_options() {
  byzantine::PipelineOptions options;  // mean mode, no rejection
  options.enforce_quarantine = false;
  options.telemetry_weight = 0.0;
  options.behavior_weight = 0.0;
  return options;
}

system::SystemParams plant_params(const BenchConfig& config) {
  system::SystemParams params;
  params.vehicles_per_region = config.vehicles;
  params.seed = 11;
  return params;
}

core::DesiredFields initial_fields() {
  core::DesiredFields fields(kRegions, 8);
  for (core::RegionId i = 0; i < kRegions; ++i) {
    fields.set_target(i, 0, Interval{kBaseFloor, 1.0});
  }
  return fields;
}

/// One run of the telemetry-closed loop; x trajectory + honest states out.
struct RunResult {
  std::vector<std::vector<double>> x;          // [round][region]
  std::vector<core::GameState> honest;         // post-revision honest truth
  std::vector<std::vector<double>> observed0;  // cloud's p(P1) per region
  std::size_t outliers_rejected = 0;
  std::size_t quarantined = 0;
  double precision = 1.0;
  double recall = 1.0;
};

RunResult run_loop(const core::MultiRegionGame& game, const BenchConfig& config,
                   const byzantine::AdversaryModel* adversary,
                   const byzantine::PipelineOptions& popts) {
  const auto params = plant_params(config);
  byzantine::ReportPipeline pipeline(kRegions, 8, params.vehicles_per_region,
                                     popts);
  system::CooperativePerceptionSystem plant(game, params, nullptr, adversary,
                                            &pipeline);
  plant.init_from(game.uniform_state());

  core::FdsOptions fopts;
  fopts.max_step = 0.15;
  core::FdsController controller(game, initial_fields(), fopts);

  RunResult result;
  result.x.reserve(config.rounds);
  result.honest.reserve(config.rounds);
  for (std::size_t t = 0; t < config.rounds; ++t) {
    const auto report = plant.run_round(controller);
    controller.set_desired(byzantine::density_weighted_fields(
        kRegions, 8, report.byzantine.density, kBaseFloor, kFloorSlope));
    result.x.push_back(report.x);
    result.honest.push_back(plant.honest_state());
    std::vector<double> observed(kRegions);
    for (core::RegionId i = 0; i < kRegions; ++i) {
      observed[i] = report.byzantine.observed.p[i][0];
      result.outliers_rejected += report.byzantine.outliers_rejected[i];
    }
    result.observed0.push_back(std::move(observed));
  }

  std::vector<std::uint8_t> truth;
  std::vector<std::uint8_t> flagged;
  for (core::RegionId i = 0; i < kRegions; ++i) {
    for (std::size_t v = 0; v < params.vehicles_per_region; ++v) {
      const bool bad = adversary != nullptr && adversary->ever_attacks(i, v);
      const bool q = pipeline.reputation().quarantined(i, v);
      truth.push_back(bad ? 1 : 0);
      flagged.push_back(q ? 1 : 0);
      result.quarantined += q ? 1 : 0;
    }
  }
  const auto stats = sim::detection_stats(truth, flagged);
  result.precision = stats.precision;
  result.recall = stats.recall;
  return result;
}

struct CellMetrics {
  double ratio_error_tail = 0.0;
  double observed_error_tail = 0.0;
  double observed_error_all = 0.0;
  long honest_converged_round = -1;
};

CellMetrics compare(const RunResult& clean, const RunResult& run,
                    const BenchConfig& config) {
  CellMetrics m;
  const std::size_t from = config.rounds - config.tail_rounds;
  std::size_t n = 0;
  for (std::size_t t = from; t < config.rounds; ++t) {
    for (core::RegionId i = 0; i < kRegions; ++i) {
      m.ratio_error_tail += std::abs(run.x[t][i] - clean.x[t][i]);
      m.observed_error_tail +=
          std::abs(run.observed0[t][i] - run.honest[t].p[i][0]);
      ++n;
    }
  }
  m.ratio_error_tail /= static_cast<double>(n);
  m.observed_error_tail /= static_cast<double>(n);
  for (std::size_t t = 0; t < config.rounds; ++t) {
    for (core::RegionId i = 0; i < kRegions; ++i) {
      m.observed_error_all +=
          std::abs(run.observed0[t][i] - run.honest[t].p[i][0]);
    }
  }
  m.observed_error_all /=
      static_cast<double>(config.rounds * kRegions);
  const std::size_t converged =
      sim::rounds_to_reconverge(run.honest, initial_fields(), 0, 1e-9);
  if (converged != sim::kNoReconvergence) {
    m.honest_converged_round = static_cast<long>(converged);
  }
  return m;
}

void print_cell(const char* defense, byzantine::AttackStrategy strategy,
                double fraction, const RunResult& run, const CellMetrics& m,
                bool last) {
  std::printf(
      "    {\"strategy\": \"%s\", \"fraction\": %.2f, \"defense\": \"%s\",\n"
      "     \"ratio_error_tail\": %.6f, \"observed_error_tail\": %.6f,\n"
      "     \"observed_error_all\": %.6f,\n"
      "     \"honest_converged_round\": %ld,\n"
      "     \"precision\": %.4f, \"recall\": %.4f,\n"
      "     \"quarantined\": %zu, \"outliers_rejected\": %zu}%s\n",
      strategy_name(strategy), fraction, defense, m.ratio_error_tail,
      m.observed_error_tail, m.observed_error_all, m.honest_converged_round,
      run.precision,
      run.recall, run.quarantined, run.outliers_rejected, last ? "" : ",");
}

// ---------------------------------------------------------------------------
// --adaptive: the closed-loop sweep through the scenario layer
// ---------------------------------------------------------------------------

const char* policy_name(byzantine::AdaptivePolicy p) {
  switch (p) {
    case byzantine::AdaptivePolicy::kBuildThenDefect: return "build_then_defect";
    case byzantine::AdaptivePolicy::kThresholdProbe: return "threshold_probe";
    case byzantine::AdaptivePolicy::kRegionCollusion: return "region_collusion";
    case byzantine::AdaptivePolicy::kChurnExploit: return "churn_exploit";
  }
  return "?";
}

scenario::ScenarioConfig adaptive_cell(byzantine::AdaptivePolicy policy,
                                       double fraction, bool trust,
                                       bool smoke) {
  scenario::ScenarioConfig sc;
  sc.name = "bench-adaptive-cell";
  sc.plant.vehicles_per_region = smoke ? 40 : 100;
  sc.plant.rounds = smoke ? 60 : 160;
  sc.plant.tail_rounds = smoke ? 15 : 40;
  sc.plant.beta = 1.5;  // interior regime: the claim channel moves x
  sc.attack = scenario::AttackKind::kAdaptive;
  sc.adaptive_attack.attacker_fraction = fraction;
  sc.adaptive_attack.policy = policy;
  sc.adaptive_attack.shift_rounds = 2;  // see the catalog's adaptive pairs
  sc.adaptive_attack.seed = 17;
  sc.defense =
      trust ? scenario::DefenseKind::kTrust : scenario::DefenseKind::kRobust;
  return sc;
}

int run_adaptive(bool smoke) {
  const std::vector<byzantine::AdaptivePolicy> policies = {
      byzantine::AdaptivePolicy::kBuildThenDefect,
      byzantine::AdaptivePolicy::kThresholdProbe,
      byzantine::AdaptivePolicy::kRegionCollusion,
  };
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.2} : std::vector<double>{0.2, 0.3};

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_byzantine_adaptive\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"sweep\": [\n");
  const std::size_t cells = policies.size() * fractions.size() * 2;
  std::size_t emitted = 0;
  for (const auto policy : policies) {
    for (const double fraction : fractions) {
      for (const bool trust : {false, true}) {
        const auto sc = adaptive_cell(policy, fraction, trust, smoke);
        const auto r = scenario::run_scenario_vs_clean(sc);
        std::printf(
            "    {\"policy\": \"%s\", \"fraction\": %.2f, "
            "\"defense\": \"%s\",\n"
            "     \"tail_error\": %.6f, \"control_error_tail\": %.6f,\n"
            "     \"quarantined\": %zu, \"distrusted\": %zu, "
            "\"dormant\": %zu,\n"
            "     \"precision\": %.4f, \"recall\": %.4f}%s\n",
            policy_name(policy), fraction, trust ? "trust" : "ewma",
            r.observed_error_tail, r.ratio_error_tail, r.quarantined,
            r.distrusted, r.adaptive_dormant, r.precision, r.recall,
            ++emitted == cells ? "" : ",");
      }
    }
  }
  std::printf("  ],\n");

  // The service-layer identity wash: same exploit stream with and without
  // keyed-identity suspicion carry-over.
  std::printf("  \"churn_exploit\": [\n");
  for (const bool keyed : {false, true}) {
    scenario::ScenarioConfig sc =
        *scenario::find_scenario(keyed ? "churn-exploit-keyed"
                                       : "churn-exploit-open");
    if (smoke) {
      sc.plant.rounds = 30;
      sc.plant.tail_rounds = 10;
      sc.service.epochs = 60;
    }
    const auto r = scenario::run_scenario_vs_clean(sc);
    std::printf(
        "    {\"scenario\": \"%s\", \"carry_suspicion\": %s,\n"
        "     \"exploit_rejoins\": %llu, \"service_quarantined\": %zu,\n"
        "     \"tail_error\": %.6f, \"control_error_tail\": %.6f, "
        "\"dormant\": %zu}%s\n",
        sc.name.c_str(), keyed ? "true" : "false",
        static_cast<unsigned long long>(r.exploit_rejoins),
        r.service_quarantined, r.observed_error_tail, r.ratio_error_tail,
        r.adaptive_dormant, keyed ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return bench::finish_json_output();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool adaptive = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--adaptive") == 0) adaptive = true;
  }
  if (adaptive) return run_adaptive(smoke);
  const BenchConfig config = smoke ? smoke_config() : BenchConfig{};
  const auto game = make_game();

  const RunResult clean = run_loop(game, config, nullptr, robust_options());

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_byzantine\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"rounds\": %zu,\n", config.rounds);
  std::printf("  \"tail_rounds\": %zu,\n", config.tail_rounds);
  std::printf("  \"vehicles_per_region\": %zu,\n", config.vehicles);
  std::printf("  \"regions\": %zu,\n", kRegions);
  std::printf("  \"clean_converged_round\": %ld,\n",
              compare(clean, clean, config).honest_converged_round);
  std::printf("  \"sweep\": [\n");

  const std::size_t cells =
      config.strategies.size() * config.fractions.size() * 2;
  std::size_t emitted = 0;
  for (const auto strategy : config.strategies) {
    for (const double fraction : config.fractions) {
      byzantine::AdversaryParams aparams;
      aparams.attacker_fraction = fraction;
      aparams.strategy = strategy;
      aparams.seed = 13;
      if (strategy == byzantine::AttackStrategy::kColludingBias) {
        aparams.target_region = 0;
      }
      const byzantine::AdversaryModel adversary(aparams);
      for (const bool robust : {false, true}) {
        const auto popts = robust ? robust_options() : trusting_options();
        const RunResult run = run_loop(game, config, &adversary, popts);
        const CellMetrics m = compare(clean, run, config);
        print_cell(robust ? "robust" : "trusting", strategy, fraction, run, m,
                   ++emitted == cells);
      }
    }
  }
  std::printf("  ]\n}\n");
  return bench::finish_json_output();
}
