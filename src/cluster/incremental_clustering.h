// Incrementally maintained region clustering for the service layer.
//
// The batch pipeline computes betweenness once and clusters once. A
// long-running service instead sees a drifting load picture: vehicles join,
// leave, and migrate, changing the per-segment congestion and therefore the
// effective travel-time weights that betweenness (and through it Algorithm
// 1's utility coefficients) are computed from. IncrementalClustering owns
// that loop: it folds load deltas into per-segment vehicle counts, maps
// counts to weights via a congestion-scaled travel time, refreshes Brandes
// centrality through IncrementalBetweenness (chunk-cached, so only affected
// source chunks re-run), and re-runs Algorithm 1 only when the centrality
// actually moved.
//
// Contract: after any sequence of apply() calls, clustering() and
// centrality() are bit-equal to the from-scratch scratch() computation over
// the same loads, at every thread count. The property test in
// tests/service_recluster_test.cpp locks this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/region_clustering.h"
#include "roadnet/betweenness.h"
#include "roadnet/road_graph.h"

namespace avcp::cluster {

struct IncrementalClusteringOptions {
  ClusteringOptions clustering;
  /// Thread count / normalization for the centrality passes. The metric
  /// field is ignored: weights are always the congestion-scaled travel
  /// times below.
  roadnet::BetweennessOptions betweenness;
  /// weight(s) = travel_time_s(s) * (1 + congestion_alpha * load(s)).
  /// 0 decouples clustering from load entirely (weights never change, so
  /// apply() never re-clusters — the zero-churn service configuration).
  double congestion_alpha = 0.0;
};

/// A change in the number of vehicles currently on a segment.
struct LoadDelta {
  roadnet::SegmentId segment = 0;
  std::int32_t delta = 0;  // vehicles entering (+) or leaving (-)
};

class IncrementalClustering {
 public:
  /// Starts from all-zero loads. `g` must outlive the object.
  IncrementalClustering(const roadnet::RoadGraph& g,
                        IncrementalClusteringOptions opts = {});

  struct RefreshStats {
    std::size_t segments_changed = 0;
    std::size_t sources_affected = 0;
    std::size_t chunks_recomputed = 0;
    bool reclustered = false;
  };

  /// Folds the deltas into the load counts (duplicates accumulate; a
  /// segment's running count must never go negative) and refreshes
  /// centrality and clustering.
  RefreshStats apply(std::span<const LoadDelta> deltas);

  /// Replaces every load count at once (checkpoint restore). The refreshed
  /// state is identical to a fresh object constructed over these loads.
  void set_loads(std::span<const std::int64_t> loads);

  const Clustering& clustering() const noexcept { return clustering_; }
  const std::vector<double>& centrality() const noexcept {
    return inc_.centrality();
  }
  std::span<const std::int64_t> loads() const noexcept { return loads_; }
  const roadnet::RoadGraph& graph() const noexcept { return g_; }

  /// From-scratch reference: full Brandes over the congestion-scaled
  /// weights, then Algorithm 1 — the equivalence target for apply().
  static Clustering scratch(const roadnet::RoadGraph& g,
                            std::span<const std::int64_t> loads,
                            const IncrementalClusteringOptions& opts);

  /// The weight vector scratch() and the incremental path both use.
  static std::vector<double> load_weights(
      const roadnet::RoadGraph& g, std::span<const std::int64_t> loads,
      double congestion_alpha);

 private:
  const roadnet::RoadGraph& g_;
  IncrementalClusteringOptions opts_;
  std::vector<std::int64_t> loads_;
  roadnet::IncrementalBetweenness inc_;
  Clustering clustering_;
  /// Grow-only apply() scratch: steady-state refreshes that end up
  /// changing no weight (e.g. congestion_alpha == 0) allocate nothing.
  std::vector<std::uint8_t> touched_;
  std::vector<roadnet::SegmentId> segments_;
  std::vector<double> weights_;
};

}  // namespace avcp::cluster
