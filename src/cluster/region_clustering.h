// Road-segment clustering — Algorithm 1 of the paper.
//
// Clusters the road segments into M regions of similar utility coefficient
// (betweenness centrality or traffic density), growing each region by BFS
// from an evenly-spread seed and always preferring neighbours whose
// coefficient falls inside the region's current [low, high] range; when no
// such neighbour exists the region admits the neighbour that widens the
// range least. The goal is minimal within-region coefficient variance so
// that approximating every segment in a region by one constant beta_i is
// sound (paper §IV-A Step 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "roadnet/road_graph.h"

namespace avcp::cluster {

using RegionId = std::uint32_t;

inline constexpr RegionId kUnassigned = ~RegionId{0};

/// Result of Algorithm 1.
struct Clustering {
  /// region_of[segment] in [0, num_regions).
  std::vector<RegionId> region_of;
  /// members[region] — the segments of each region.
  std::vector<std::vector<roadnet::SegmentId>> members;
  /// Seed segment of each region.
  std::vector<roadnet::SegmentId> seeds;

  std::size_t num_regions() const noexcept { return members.size(); }

  /// Mean coefficient per region — the approximated beta_i of §IV-A.
  std::vector<double> region_means(std::span<const double> coeffs) const;

  /// Within-region sample standard deviation per region.
  std::vector<double> region_stddevs(std::span<const double> coeffs) const;
};

struct ClusteringOptions {
  std::uint32_t num_regions = 20;  // paper clusters Futian into 20 regions
};

/// Seeds spread over the network by farthest-point sampling on segment-graph
/// hop distance ("evenly distributed", Algorithm 1 line 1). Deterministic:
/// the first seed is segment 0.
std::vector<roadnet::SegmentId> spread_seeds(const roadnet::RoadGraph& g,
                                             std::uint32_t num_seeds);

/// Runs Algorithm 1. `coeffs` holds one utility coefficient per segment
/// (w(u) in the pseudo-code). Every segment ends up in exactly one region;
/// disconnected leftovers are attached to the adjacent region that widens
/// its coefficient range least (nearest region by hops for isolated ones).
Clustering cluster_segments(const roadnet::RoadGraph& g,
                            std::span<const double> coeffs,
                            const ClusteringOptions& opts = {});

}  // namespace avcp::cluster
