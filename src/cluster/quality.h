// Clustering-quality metrics for Algorithm 1.
//
// The algorithm's objective is to "minimize the variance of node utility
// coefficients in each cluster so that the error caused by approximation
// can be minimized" (paper §IV-A Step 2). These metrics quantify how well a
// clustering meets that objective and what the constant-beta approximation
// costs, and back both the Fig. 8 reporting and regression tests that
// Algorithm 1 beats naive baselines.
#pragma once

#include <span>

#include "cluster/region_clustering.h"

namespace avcp::cluster {

/// Quality summary of one clustering against per-segment coefficients.
struct ClusterQuality {
  /// Sum over regions of within-region squared deviations from the region
  /// mean (the quantity Algorithm 1 minimises; lower is better).
  double within_ss = 0.0;
  /// Total squared deviation from the global mean (clustering-independent).
  double total_ss = 0.0;
  /// Fraction of variance explained by the region structure:
  /// 1 - within_ss / total_ss, in [0, 1] (0 when total_ss == 0).
  double explained = 0.0;
  /// Mean absolute approximation error |w(u) - beta_region(u)| — the error
  /// introduced by replacing each segment's coefficient with its region
  /// constant in the game.
  double mean_abs_error = 0.0;
  /// Largest within-region coefficient range (h_high - h_low).
  double max_range = 0.0;
};

/// Computes quality metrics; coeffs must be indexable by SegmentId.
ClusterQuality evaluate_clustering(const Clustering& clustering,
                                   std::span<const double> coeffs);

/// Baseline for comparison: a round-robin assignment of segments to
/// `num_regions` regions, ignoring both topology and coefficients.
Clustering round_robin_clustering(std::size_t num_segments,
                                  std::uint32_t num_regions);

}  // namespace avcp::cluster
