#include "cluster/region_clustering.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

#include "common/contracts.h"
#include "common/stats.h"

namespace avcp::cluster {

using roadnet::RoadGraph;
using roadnet::SegmentId;

std::vector<double> Clustering::region_means(
    std::span<const double> coeffs) const {
  std::vector<double> means(members.size(), 0.0);
  for (std::size_t r = 0; r < members.size(); ++r) {
    RunningStats stats;
    for (const SegmentId s : members[r]) stats.add(coeffs[s]);
    means[r] = stats.mean();
  }
  return means;
}

std::vector<double> Clustering::region_stddevs(
    std::span<const double> coeffs) const {
  std::vector<double> devs(members.size(), 0.0);
  for (std::size_t r = 0; r < members.size(); ++r) {
    RunningStats stats;
    for (const SegmentId s : members[r]) stats.add(coeffs[s]);
    devs[r] = stats.stddev();
  }
  return devs;
}

std::vector<SegmentId> spread_seeds(const RoadGraph& g,
                                    std::uint32_t num_seeds) {
  AVCP_EXPECT(g.finalized());
  AVCP_EXPECT(num_seeds >= 1);
  AVCP_EXPECT(num_seeds <= g.num_segments());

  const std::size_t m = g.num_segments();
  std::vector<SegmentId> seeds;
  seeds.reserve(num_seeds);
  // min_dist[s] = hop distance from s to the closest chosen seed.
  std::vector<std::uint32_t> min_dist(m,
                                      std::numeric_limits<std::uint32_t>::max());

  const auto relax_from = [&](SegmentId seed) {
    std::queue<SegmentId> frontier;
    min_dist[seed] = 0;
    frontier.push(seed);
    while (!frontier.empty()) {
      const SegmentId v = frontier.front();
      frontier.pop();
      for (const SegmentId w : g.segment_neighbors(v)) {
        if (min_dist[v] + 1 < min_dist[w]) {
          min_dist[w] = min_dist[v] + 1;
          frontier.push(w);
        }
      }
    }
  };

  seeds.push_back(0);
  relax_from(0);
  while (seeds.size() < num_seeds) {
    SegmentId farthest = 0;
    std::uint32_t best = 0;
    for (std::size_t s = 0; s < m; ++s) {
      if (min_dist[s] > best &&
          min_dist[s] != std::numeric_limits<std::uint32_t>::max()) {
        best = min_dist[s];
        farthest = static_cast<SegmentId>(s);
      }
    }
    // Disconnected component: any still-unreached segment becomes a seed.
    if (best == 0) {
      bool found = false;
      for (std::size_t s = 0; s < m; ++s) {
        if (min_dist[s] == std::numeric_limits<std::uint32_t>::max()) {
          farthest = static_cast<SegmentId>(s);
          found = true;
          break;
        }
      }
      if (!found) {
        // Fully covered at distance 0 — pick any segment not already a seed.
        for (std::size_t s = 0; s < m; ++s) {
          if (std::find(seeds.begin(), seeds.end(), static_cast<SegmentId>(s)) ==
              seeds.end()) {
            farthest = static_cast<SegmentId>(s);
            break;
          }
        }
      }
    }
    seeds.push_back(farthest);
    relax_from(farthest);
  }
  return seeds;
}

namespace {

/// Growth state of one region during Algorithm 1.
struct RegionState {
  std::deque<SegmentId> queue;
  double low = 0.0;
  double high = 0.0;
  bool exhausted = false;  // queue drained with no admissible neighbour left
};

}  // namespace

Clustering cluster_segments(const RoadGraph& g, std::span<const double> coeffs,
                            const ClusteringOptions& opts) {
  AVCP_EXPECT(g.finalized());
  AVCP_EXPECT(coeffs.size() == g.num_segments());
  AVCP_EXPECT(opts.num_regions >= 1);
  AVCP_EXPECT(opts.num_regions <= g.num_segments());

  const std::size_t m = g.num_segments();
  const std::uint32_t num_regions = opts.num_regions;

  Clustering result;
  result.region_of.assign(m, kUnassigned);
  result.members.assign(num_regions, {});
  result.seeds = spread_seeds(g, num_regions);

  std::vector<RegionState> regions(num_regions);
  std::size_t assigned = 0;

  const auto assign = [&](SegmentId s, RegionId r) {
    result.region_of[s] = r;
    result.members[r].push_back(s);
    regions[r].queue.push_back(s);
    regions[r].low = std::min(regions[r].low, coeffs[s]);
    regions[r].high = std::max(regions[r].high, coeffs[s]);
    ++assigned;
  };

  for (RegionId r = 0; r < num_regions; ++r) {
    const SegmentId seed = result.seeds[r];
    regions[r].low = coeffs[seed];
    regions[r].high = coeffs[seed];
    result.region_of[seed] = r;
    result.members[r].push_back(seed);
    regions[r].queue.push_back(seed);
    ++assigned;
  }

  // Main loop: each live region takes one growth step per sweep (Algorithm 1
  // lines 5-15), so regions grow at comparable rates.
  bool progress = true;
  while (assigned < m && progress) {
    progress = false;
    for (RegionId r = 0; r < num_regions; ++r) {
      RegionState& region = regions[r];
      if (region.exhausted) continue;

      bool grew = false;
      while (!region.queue.empty() && !grew) {
        const SegmentId front = region.queue.front();
        // In-range unassigned neighbours of the front node: take them all
        // (lines 8-11).
        bool any_in_range = false;
        for (const SegmentId nbr : g.segment_neighbors(front)) {
          if (result.region_of[nbr] != kUnassigned) continue;
          if (coeffs[nbr] >= region.low && coeffs[nbr] <= region.high) {
            assign(nbr, r);
            any_in_range = true;
            grew = true;
          }
        }
        if (any_in_range) {
          region.queue.pop_front();
          break;
        }
        // No in-range neighbour: admit the unassigned neighbour that widens
        // [low, high] least (lines 12-15).
        SegmentId best = roadnet::kInvalidSegment;
        double best_widening = std::numeric_limits<double>::infinity();
        for (const SegmentId nbr : g.segment_neighbors(front)) {
          if (result.region_of[nbr] != kUnassigned) continue;
          const double widening =
              std::min(std::abs(coeffs[nbr] - region.low),
                       std::abs(coeffs[nbr] - region.high));
          if (widening < best_widening) {
            best_widening = widening;
            best = nbr;
          }
        }
        if (best != roadnet::kInvalidSegment) {
          assign(best, r);
          grew = true;
        } else {
          // Front node fully surrounded by assigned segments; discard it.
          region.queue.pop_front();
        }
      }
      if (grew) {
        progress = true;
      } else if (region.queue.empty()) {
        region.exhausted = true;
      }
    }
  }

  // Fallback: segments unreachable from any seed frontier (disconnected
  // pockets). Attach each to the adjacent assigned region that widens its
  // range least, sweeping until stable.
  while (assigned < m) {
    bool attached = false;
    for (std::size_t s = 0; s < m; ++s) {
      if (result.region_of[s] != kUnassigned) continue;
      RegionId best_region = kUnassigned;
      double best_widening = std::numeric_limits<double>::infinity();
      for (const SegmentId nbr :
           g.segment_neighbors(static_cast<SegmentId>(s))) {
        const RegionId r = result.region_of[nbr];
        if (r == kUnassigned) continue;
        const double widening = std::min(std::abs(coeffs[s] - regions[r].low),
                                         std::abs(coeffs[s] - regions[r].high));
        if (widening < best_widening) {
          best_widening = widening;
          best_region = r;
        }
      }
      if (best_region != kUnassigned) {
        assign(static_cast<SegmentId>(s), best_region);
        attached = true;
      }
    }
    if (!attached) {
      // Isolated component with no seed: give everything left to region 0.
      for (std::size_t s = 0; s < m; ++s) {
        if (result.region_of[s] == kUnassigned) {
          assign(static_cast<SegmentId>(s), 0);
        }
      }
    }
  }

  AVCP_ENSURE(assigned == m);
  return result;
}

}  // namespace avcp::cluster
