// Auxiliary region graph G = (R, E) with data-sharing frequencies gamma
// (paper §IV-A Step 3, Fig. 5).
//
// Vehicles share data only through their edge server, so two *regions* are
// neighbours exactly when some Voronoi cell simultaneously covers vehicles
// of both. The edge weight gamma_ij estimates how often such cross-region
// pairs co-occur: for every reporting window and every cell we count the
// vehicle pairs by region (n_i * n_j across regions, n_i*(n_i-1)/2 within),
// then normalise by trace duration to a pair-rate. gamma_ii is the
// inner-region sharing frequency used in Eq. (4).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "cluster/region_clustering.h"
#include "spatial/voronoi.h"
#include "trace/types.h"

namespace avcp::cluster {

/// Dense symmetric gamma matrix plus the neighbour structure of G.
class RegionGraph {
 public:
  explicit RegionGraph(std::size_t num_regions);

  std::size_t num_regions() const noexcept { return num_regions_; }

  /// Pair-rate between regions i and j (symmetric; i == j is inner-region).
  double gamma(RegionId i, RegionId j) const;

  /// Regions j != i with gamma(i, j) > 0 — the neighbour set N_i.
  std::span<const RegionId> neighbors(RegionId i) const;

  /// Number of undirected edges (pairs i < j with gamma > 0).
  std::size_t num_edges() const noexcept;

  /// Normalises gamma so its largest entry equals `target_max` — keeps
  /// fitness magnitudes comparable across trace lengths. No-op if all
  /// gammas are zero.
  void rescale_max(double target_max);

  /// Builder access: adds weight to the (i, j) pair-rate.
  void accumulate(RegionId i, RegionId j, double weight);

  /// Recomputes the neighbour lists after accumulation; must be called
  /// before neighbors(). Divides all entries by `normalizer` (> 0), e.g.
  /// the trace duration in seconds.
  void finalize(double normalizer);

 private:
  std::size_t num_regions_;
  std::vector<double> gamma_;  // row-major num_regions x num_regions
  std::vector<std::vector<RegionId>> neighbor_lists_;
  bool finalized_ = false;
};

/// Build inputs: which region and cell each road segment belongs to.
struct RegionGraphInputs {
  std::span<const RegionId> region_of_segment;
  std::span<const spatial::ServerId> cell_of_segment;
  std::size_t num_regions = 0;
  std::size_t num_cells = 0;
  /// Co-presence window; the paper's vehicles report every 10 s.
  double window_s = 10.0;
  double duration_s = 0.0;
};

/// Streaming builder: feed fixes one at a time (any order, any batching),
/// then build(). Memory is proportional to the occupied (window, cell)
/// pairs plus one marker per (window, vehicle) — independent of the total
/// fix count — so city-scale traces never need materializing. The same fix
/// multiset produces the same graph regardless of interleaving.
class RegionGraphAccumulator {
 public:
  /// The spans inside `inputs` must stay valid for the add() calls.
  explicit RegionGraphAccumulator(const RegionGraphInputs& inputs);

  /// Consumes one fix (at most one presence per (window, vehicle) counts).
  void add(const trace::GpsFix& fix);

  /// Counts the co-presence pairs and finalizes the graph. Call once.
  RegionGraph build();

 private:
  RegionGraphInputs inputs_;
  std::size_t num_windows_;
  /// window/cell -> per-region vehicle counts; only occupied pairs stored.
  std::map<std::pair<std::size_t, spatial::ServerId>, std::vector<double>>
      presence_;
  std::set<std::pair<std::size_t, trace::VehicleId>> seen_;
};

/// Builds the region graph from a trace. Fixes may arrive in any order.
RegionGraph build_region_graph(std::span<const trace::GpsFix> fixes,
                               const RegionGraphInputs& inputs);

}  // namespace avcp::cluster
