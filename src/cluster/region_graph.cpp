#include "cluster/region_graph.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace avcp::cluster {

RegionGraph::RegionGraph(std::size_t num_regions)
    : num_regions_(num_regions),
      gamma_(num_regions * num_regions, 0.0),
      neighbor_lists_(num_regions) {
  AVCP_EXPECT(num_regions >= 1);
}

double RegionGraph::gamma(RegionId i, RegionId j) const {
  AVCP_EXPECT(i < num_regions_ && j < num_regions_);
  return gamma_[static_cast<std::size_t>(i) * num_regions_ + j];
}

std::span<const RegionId> RegionGraph::neighbors(RegionId i) const {
  AVCP_EXPECT(finalized_);
  AVCP_EXPECT(i < num_regions_);
  return neighbor_lists_[i];
}

std::size_t RegionGraph::num_edges() const noexcept {
  std::size_t edges = 0;
  for (std::size_t i = 0; i < num_regions_; ++i) {
    for (std::size_t j = i + 1; j < num_regions_; ++j) {
      if (gamma_[i * num_regions_ + j] > 0.0) ++edges;
    }
  }
  return edges;
}

void RegionGraph::rescale_max(double target_max) {
  AVCP_EXPECT(target_max > 0.0);
  const double current = *std::max_element(gamma_.begin(), gamma_.end());
  if (current <= 0.0) return;
  const double scale = target_max / current;
  for (double& g : gamma_) g *= scale;
}

void RegionGraph::accumulate(RegionId i, RegionId j, double weight) {
  AVCP_EXPECT(i < num_regions_ && j < num_regions_);
  AVCP_EXPECT(weight >= 0.0);
  gamma_[static_cast<std::size_t>(i) * num_regions_ + j] += weight;
  if (i != j) {
    gamma_[static_cast<std::size_t>(j) * num_regions_ + i] += weight;
  }
}

void RegionGraph::finalize(double normalizer) {
  AVCP_EXPECT(normalizer > 0.0);
  for (double& g : gamma_) g /= normalizer;
  for (std::size_t i = 0; i < num_regions_; ++i) {
    neighbor_lists_[i].clear();
    for (std::size_t j = 0; j < num_regions_; ++j) {
      if (i != j && gamma_[i * num_regions_ + j] > 0.0) {
        neighbor_lists_[i].push_back(static_cast<RegionId>(j));
      }
    }
  }
  finalized_ = true;
}

RegionGraphAccumulator::RegionGraphAccumulator(const RegionGraphInputs& inputs)
    : inputs_(inputs),
      num_windows_(static_cast<std::size_t>(
          std::ceil(inputs.duration_s / inputs.window_s))) {
  AVCP_EXPECT(inputs.num_regions >= 1);
  AVCP_EXPECT(inputs.num_cells >= 1);
  AVCP_EXPECT(inputs.window_s > 0.0);
  AVCP_EXPECT(inputs.duration_s > 0.0);
}

void RegionGraphAccumulator::add(const trace::GpsFix& fix) {
  AVCP_EXPECT(fix.segment < inputs_.region_of_segment.size());
  const auto window = static_cast<std::size_t>(fix.time_s / inputs_.window_s);
  if (window >= num_windows_) return;
  if (!seen_.insert({window, fix.vehicle}).second) {
    return;  // vehicle already counted in this window (first fix wins)
  }
  const RegionId region = inputs_.region_of_segment[fix.segment];
  const spatial::ServerId cell = inputs_.cell_of_segment[fix.segment];
  auto& counts =
      presence_
          .try_emplace({window, cell},
                       std::vector<double>(inputs_.num_regions, 0.0))
          .first->second;
  counts[region] += 1.0;
}

RegionGraph RegionGraphAccumulator::build() {
  RegionGraph graph(inputs_.num_regions);
  for (const auto& [key, counts] : presence_) {
    for (std::size_t i = 0; i < inputs_.num_regions; ++i) {
      if (counts[i] <= 0.0) continue;
      // Inner-region pairs: n * (n - 1) / 2.
      graph.accumulate(static_cast<RegionId>(i), static_cast<RegionId>(i),
                       counts[i] * (counts[i] - 1.0) / 2.0);
      for (std::size_t j = i + 1; j < inputs_.num_regions; ++j) {
        if (counts[j] <= 0.0) continue;
        graph.accumulate(static_cast<RegionId>(i), static_cast<RegionId>(j),
                         counts[i] * counts[j]);
      }
    }
  }
  graph.finalize(inputs_.duration_s);
  return graph;
}

RegionGraph build_region_graph(std::span<const trace::GpsFix> fixes,
                               const RegionGraphInputs& inputs) {
  RegionGraphAccumulator accumulator(inputs);
  for (const trace::GpsFix& fix : fixes) accumulator.add(fix);
  return accumulator.build();
}

}  // namespace avcp::cluster
