#include "cluster/quality.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/stats.h"

namespace avcp::cluster {

ClusterQuality evaluate_clustering(const Clustering& clustering,
                                   std::span<const double> coeffs) {
  AVCP_EXPECT(clustering.region_of.size() == coeffs.size());
  AVCP_EXPECT(!coeffs.empty());

  ClusterQuality quality;

  RunningStats global;
  for (const double c : coeffs) global.add(c);
  const double global_mean = global.mean();
  for (const double c : coeffs) {
    quality.total_ss += (c - global_mean) * (c - global_mean);
  }

  const auto means = clustering.region_means(coeffs);
  for (RegionId r = 0; r < clustering.num_regions(); ++r) {
    double lo = 0.0;
    double hi = 0.0;
    bool first = true;
    for (const roadnet::SegmentId s : clustering.members[r]) {
      const double dev = coeffs[s] - means[r];
      quality.within_ss += dev * dev;
      quality.mean_abs_error += std::abs(dev);
      if (first) {
        lo = coeffs[s];
        hi = coeffs[s];
        first = false;
      } else {
        lo = std::min(lo, coeffs[s]);
        hi = std::max(hi, coeffs[s]);
      }
    }
    if (!first) quality.max_range = std::max(quality.max_range, hi - lo);
  }
  quality.mean_abs_error /= static_cast<double>(coeffs.size());
  quality.explained =
      quality.total_ss > 0.0 ? 1.0 - quality.within_ss / quality.total_ss
                             : 0.0;
  return quality;
}

Clustering round_robin_clustering(std::size_t num_segments,
                                  std::uint32_t num_regions) {
  AVCP_EXPECT(num_regions >= 1);
  AVCP_EXPECT(num_segments >= num_regions);
  Clustering clustering;
  clustering.region_of.resize(num_segments);
  clustering.members.assign(num_regions, {});
  clustering.seeds.assign(num_regions, 0);
  for (std::size_t s = 0; s < num_segments; ++s) {
    const auto r = static_cast<RegionId>(s % num_regions);
    clustering.region_of[s] = r;
    clustering.members[r].push_back(static_cast<roadnet::SegmentId>(s));
  }
  for (RegionId r = 0; r < num_regions; ++r) {
    clustering.seeds[r] = clustering.members[r].front();
  }
  return clustering;
}

}  // namespace avcp::cluster
