#include "cluster/incremental_clustering.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace avcp::cluster {

std::vector<double> IncrementalClustering::load_weights(
    const roadnet::RoadGraph& g, std::span<const std::int64_t> loads,
    double congestion_alpha) {
  AVCP_EXPECT(loads.size() == g.num_segments());
  std::vector<double> weights(g.num_segments());
  for (roadnet::SegmentId s = 0; s < g.num_segments(); ++s) {
    AVCP_EXPECT(loads[s] >= 0);
    weights[s] = g.segment(s).travel_time_s() *
                 (1.0 + congestion_alpha * static_cast<double>(loads[s]));
  }
  return weights;
}

IncrementalClustering::IncrementalClustering(const roadnet::RoadGraph& g,
                                             IncrementalClusteringOptions opts)
    : g_(g),
      opts_(opts),
      loads_(g.num_segments(), 0),
      inc_(g, load_weights(g, loads_, opts.congestion_alpha),
           opts.betweenness) {
  AVCP_EXPECT(std::isfinite(opts_.congestion_alpha) &&
              opts_.congestion_alpha >= 0.0);
  clustering_ = cluster_segments(g_, inc_.centrality(), opts_.clustering);
}

IncrementalClustering::RefreshStats IncrementalClustering::apply(
    std::span<const LoadDelta> deltas) {
  RefreshStats stats;
  if (deltas.empty()) return stats;

  // Fold duplicates into the counts first, then hand the incremental
  // betweenness one final weight per touched segment, in segment-id order
  // so the update is independent of delta ordering.
  touched_.assign(g_.num_segments(), 0);
  for (const LoadDelta& d : deltas) {
    AVCP_EXPECT(d.segment < g_.num_segments());
    loads_[d.segment] += d.delta;
    AVCP_EXPECT(loads_[d.segment] >= 0);
    touched_[d.segment] = 1;
  }
  segments_.clear();
  weights_.clear();
  for (roadnet::SegmentId s = 0; s < g_.num_segments(); ++s) {
    if (touched_[s] == 0) continue;
    segments_.push_back(s);
    weights_.push_back(g_.segment(s).travel_time_s() *
                       (1.0 + opts_.congestion_alpha *
                                  static_cast<double>(loads_[s])));
  }

  const auto up = inc_.update_weights(segments_, weights_);
  stats.segments_changed = up.segments_changed;
  stats.sources_affected = up.sources_affected;
  stats.chunks_recomputed = up.chunks_recomputed;

  // Centrality can only differ from before when a chunk actually re-ran;
  // otherwise clustering over bit-identical coefficients is bit-identical
  // too, so skip Algorithm 1 entirely.
  if (up.chunks_recomputed > 0) {
    clustering_ = cluster_segments(g_, inc_.centrality(), opts_.clustering);
    stats.reclustered = true;
  }
  return stats;
}

void IncrementalClustering::set_loads(std::span<const std::int64_t> loads) {
  AVCP_EXPECT(loads.size() == g_.num_segments());
  std::vector<roadnet::SegmentId> segments;
  std::vector<double> weights;
  for (roadnet::SegmentId s = 0; s < g_.num_segments(); ++s) {
    AVCP_EXPECT(loads[s] >= 0);
    if (loads[s] == loads_[s]) continue;
    loads_[s] = loads[s];
    segments.push_back(s);
    weights.push_back(g_.segment(s).travel_time_s() *
                      (1.0 + opts_.congestion_alpha *
                                 static_cast<double>(loads_[s])));
  }
  if (segments.empty()) return;
  const auto up = inc_.update_weights(segments, weights);
  if (up.chunks_recomputed > 0) {
    clustering_ = cluster_segments(g_, inc_.centrality(), opts_.clustering);
  }
}

Clustering IncrementalClustering::scratch(
    const roadnet::RoadGraph& g, std::span<const std::int64_t> loads,
    const IncrementalClusteringOptions& opts) {
  const std::vector<double> weights =
      load_weights(g, loads, opts.congestion_alpha);
  const std::vector<double> coeffs =
      roadnet::segment_betweenness_weighted(g, weights, opts.betweenness);
  return cluster_segments(g, coeffs, opts.clustering);
}

}  // namespace avcp::cluster
