#include "perception/measure.h"

#include <algorithm>

#include "common/contracts.h"

namespace avcp::perception {

ItemSet set_union(const ItemSet& a, const ItemSet& b) {
  ItemSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

ItemSet set_intersect(const ItemSet& a, const ItemSet& b) {
  ItemSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

ItemSet set_difference(const ItemSet& a, const ItemSet& b) {
  ItemSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

bool set_contains(std::span<const ItemId> a, ItemId id) noexcept {
  return std::binary_search(a.begin(), a.end(), id);
}

bool is_sorted_unique(std::span<const ItemId> a) noexcept {
  return std::adjacent_find(a.begin(), a.end(),
                            [](ItemId x, ItemId y) { return x >= y; }) ==
         a.end();
}

DataUniverse::DataUniverse(std::size_t num_sensors)
    : num_sensors_(num_sensors) {
  AVCP_EXPECT(num_sensors >= 1);
}

ItemId DataUniverse::add_item(std::size_t sensor, double utility_weight,
                              double privacy_weight) {
  AVCP_EXPECT(sensor < num_sensors_);
  AVCP_EXPECT(utility_weight > 0.0);
  AVCP_EXPECT(privacy_weight >= 0.0);
  items_.push_back(DataItem{sensor, utility_weight, privacy_weight});
  total_privacy_ += privacy_weight;
  return static_cast<ItemId>(items_.size() - 1);
}

const DataItem& DataUniverse::item(ItemId id) const {
  AVCP_EXPECT(id < items_.size());
  return items_[id];
}

ItemSet DataUniverse::items_of_sensor(std::size_t sensor) const {
  AVCP_EXPECT(sensor < num_sensors_);
  ItemSet out;
  for (ItemId id = 0; id < items_.size(); ++id) {
    if (items_[id].sensor == sensor) out.push_back(id);
  }
  return out;
}

double DataUniverse::utility_weight(std::span<const ItemId> s) const {
  double total = 0.0;
  for (const ItemId id : s) total += item(id).utility_weight;
  return total;
}

double DataUniverse::privacy_weight(std::span<const ItemId> s) const {
  double total = 0.0;
  for (const ItemId id : s) total += item(id).privacy_weight;
  return total;
}

DataUniverse DataUniverse::synthetic(std::size_t num_sensors,
                                     std::size_t items_per_sensor,
                                     std::span<const double> sensor_privacy,
                                     Rng& rng) {
  AVCP_EXPECT(sensor_privacy.size() == num_sensors);
  AVCP_EXPECT(items_per_sensor >= 1);
  DataUniverse universe(num_sensors);
  for (std::size_t s = 0; s < num_sensors; ++s) {
    for (std::size_t i = 0; i < items_per_sensor; ++i) {
      // Mild weight heterogeneity so sets of equal size differ in value.
      const double utility = rng.uniform(0.5, 1.5);
      const double privacy = sensor_privacy[s] * rng.uniform(0.5, 1.5);
      universe.add_item(s, utility, privacy);
    }
  }
  return universe;
}

UtilityMeasure::UtilityMeasure(const DataUniverse& universe, ItemSet desired)
    : universe_(&universe), desired_(std::move(desired)) {
  AVCP_EXPECT(is_sorted_unique(desired_));
  AVCP_EXPECT(!desired_.empty());
  desired_weight_ = universe.utility_weight(desired_);
  AVCP_EXPECT(desired_weight_ > 0.0);
}

double UtilityMeasure::operator()(const ItemSet& s) const {
  AVCP_EXPECT(is_sorted_unique(s));
  const ItemSet relevant = set_intersect(s, desired_);
  return universe_->utility_weight(relevant) / desired_weight_;
}

double privacy_cost(const DataUniverse& universe,
                    std::span<const ItemId> shared) {
  AVCP_EXPECT(is_sorted_unique(shared));
  const double total = universe.total_privacy_weight();
  if (total <= 0.0) return 0.0;
  return universe.privacy_weight(shared) / total;
}

double measured_utility(const DataUniverse& universe, std::span<const ItemId> s,
                        std::span<const ItemId> desired) {
  double den = 0.0;
  for (const ItemId id : desired) den += universe.item(id).utility_weight;
  AVCP_ENSURE(den > 0.0);
  double num = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < s.size() && j < desired.size()) {
    if (s[i] < desired[j]) {
      ++i;
    } else if (desired[j] < s[i]) {
      ++j;
    } else {
      num += universe.item(s[i]).utility_weight;
      ++i;
      ++j;
    }
  }
  return num / den;
}

}  // namespace avcp::perception
