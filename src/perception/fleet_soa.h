// Structure-of-arrays fleet storage for the million-vehicle engine.
//
// The AoS `perception::Vehicle` carries two heap-allocated ItemSets per
// vehicle — at 1M vehicles that is 2M separately-allocated vectors whose
// contents the data-plane kernels chase through pointer-dense memory.
// FleetSoA stores the same logical fleet as parallel arrays (decision,
// claim, revoked, fitness, reputation) with every vehicle's collected and
// desired item ids packed into ONE flat arena, indexed by (offset, length)
// spans. The layout is a pure representation change: the data-plane kernels
// are templated over a fleet accessor, so an AoS span and a FleetView run
// literally the same code and produce byte-identical RoundOutcomes for
// identical logical content (regression-locked in tests/fleet_soa_test.cpp).
//
// ## Ownership and sharding rules (DESIGN.md §16)
//
// One FleetSoA is owned by exactly one shard (one engine region / one
// worker-lane task at a time). All growth is grow-only: clear() and
// reset_items() drop logical size but never release capacity, so a shard
// that has reached its high-water mark performs zero heap allocations in
// steady state. Cross-shard reads of a *quiescent* fleet (a barrier-
// separated earlier stage's output) are fine; concurrent mutation is not —
// the arena is not synchronised, by design (no cross-shard allocation, no
// false sharing on hot arrays).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/lattice.h"
#include "perception/measure.h"

namespace avcp {
class Serializer;
class Deserializer;
}  // namespace avcp

namespace avcp::perception {

/// Sentinel claim value: the vehicle claims its true decision (the same
/// convention as Vehicle::kClaimFollowsDecision).
inline constexpr core::DecisionId kClaimFollowsDecision =
    ~core::DecisionId{0};

/// A (offset, length) window into a fleet's flat item arena.
struct ItemSpan {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
};

/// Non-owning, read-only view of a FleetSoA (or any compatible storage):
/// what the data-plane kernels consume. Cheap to copy; valid only while the
/// underlying fleet is unmodified.
struct FleetView {
  std::span<const core::DecisionId> decision;
  std::span<const core::DecisionId> claim;
  std::span<const std::uint8_t> revoked;
  std::span<const ItemSpan> collected;
  std::span<const ItemSpan> desired;
  std::span<const ItemId> arena;

  std::size_t size() const noexcept { return decision.size(); }

  std::span<const ItemId> items(ItemSpan s) const noexcept {
    return arena.subspan(s.offset, s.length);
  }
  std::span<const ItemId> collected_of(std::size_t v) const noexcept {
    return items(collected[v]);
  }
  std::span<const ItemId> desired_of(std::size_t v) const noexcept {
    return items(desired[v]);
  }
  core::DecisionId claimed(std::size_t v) const noexcept {
    return claim[v] == kClaimFollowsDecision ? decision[v] : claim[v];
  }
};

/// Grow-only SoA fleet. Item sets are appended into the arena either whole
/// (`add` with spans), as fixed-size windows (`alloc_collected` /
/// `alloc_desired`), or streamed one id at a time through the open-set
/// builder (`begin_* / push_item / end_set`) for samplers that do not know
/// the set size up front. Per-vehicle item ids must be appended in strictly
/// ascending order (the sorted-unique contract of ItemSet).
class FleetSoA {
 public:
  /// Drops every vehicle and item; capacity is retained.
  void clear() noexcept;

  /// Keeps the fleet roster (decision/claim/revoked/fitness/reputation)
  /// but drops all collected/desired items — the per-round refill path.
  void reset_items() noexcept;

  void reserve(std::size_t vehicles, std::size_t arena_items);

  std::size_t size() const noexcept { return decision_.size(); }
  std::size_t arena_size() const noexcept { return arena_.size(); }

  /// Appends a vehicle with empty item sets; returns its index.
  std::size_t add(core::DecisionId decision,
                  core::DecisionId claim = kClaimFollowsDecision,
                  bool revoked = false);

  /// Appends a vehicle and copies its item sets into the arena.
  std::size_t add(core::DecisionId decision, core::DecisionId claim,
                  bool revoked, std::span<const ItemId> collected_items,
                  std::span<const ItemId> desired_items);

  /// Appends a copy of vehicle `v` of `src` (spans re-packed locally).
  std::size_t add(const FleetView& src, std::size_t v);

  /// Allocates a contiguous `n`-item window for vehicle v's collected
  /// (resp. desired) set and returns it for the caller to fill (ascending).
  /// The vehicle's previous span, if any, is abandoned in place.
  std::span<ItemId> alloc_collected(std::size_t v, std::uint32_t n);
  std::span<ItemId> alloc_desired(std::size_t v, std::uint32_t n);

  /// Open-set builder for streaming samplers: at most one set may be open
  /// at a time; push_item appends to it; end_set records the span.
  void begin_collected(std::size_t v);
  void begin_desired(std::size_t v);
  void push_item(ItemId id) { arena_.push_back(id); }
  void end_set();

  // Mutable hot arrays (index-owned writes under the sharding rules).
  std::span<core::DecisionId> decisions() noexcept { return decision_; }
  std::span<double> fitness() noexcept { return fitness_; }
  std::span<double> reputation() noexcept { return reputation_; }
  void set_claim(std::size_t v, core::DecisionId claim) { claim_[v] = claim; }
  void set_revoked(std::size_t v, bool revoked) {
    revoked_[v] = revoked ? 1 : 0;
  }

  core::DecisionId decision(std::size_t v) const noexcept {
    return decision_[v];
  }
  std::span<const double> fitness() const noexcept { return fitness_; }
  std::span<const double> reputation() const noexcept { return reputation_; }
  std::span<const ItemId> collected_of(std::size_t v) const noexcept {
    return {arena_.data() + collected_[v].offset, collected_[v].length};
  }
  std::span<const ItemId> desired_of(std::size_t v) const noexcept {
    return {arena_.data() + desired_[v].offset, desired_[v].length};
  }

  FleetView view() const noexcept;

  /// Histogram of claimed classes into `counts` (assigned to size k).
  void count_classes(std::size_t k, std::vector<std::uint32_t>& counts) const;

  /// Checkpoint hooks: the full logical fleet (roster, item spans, arena,
  /// fitness, reputation). A restored fleet's view() is byte-equal to the
  /// saved one — what the net payload rings need to resume mid-partition.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  enum class OpenSet : std::uint8_t { kNone, kCollected, kDesired };

  std::vector<core::DecisionId> decision_;
  std::vector<core::DecisionId> claim_;
  std::vector<std::uint8_t> revoked_;
  std::vector<ItemSpan> collected_;
  std::vector<ItemSpan> desired_;
  std::vector<ItemId> arena_;
  std::vector<double> fitness_;
  std::vector<double> reputation_;
  OpenSet open_ = OpenSet::kNone;
  std::size_t open_vehicle_ = 0;
  std::size_t open_offset_ = 0;
};

}  // namespace avcp::perception
