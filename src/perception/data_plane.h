// Edge-server data plane executing the lattice-based sharing policy
// (paper §II framework steps S2/4/5 and §III policy implementation).
//
// Each round, every vehicle uploads the part of its collected data selected
// by its decision; the edge server then distributes vehicle b's upload to
// vehicle a with probability x iff a's decision precedes b's in the lattice
// (P^{k_b} ⊆ P^{k_a}). The outcome records each vehicle's realised utility
// h_a = f_a(own ∪ received), privacy cost c_a = g(shared), and the
// passive-eavesdropper exposure (everything visible at the server — the
// paper's threat model).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/lattice.h"
#include "perception/measure.h"

namespace avcp::perception {

/// A participating vehicle within one edge-server cell.
struct Vehicle {
  /// Sentinel for `claim`: the vehicle claims its true decision.
  static constexpr core::DecisionId kClaimFollowsDecision = ~core::DecisionId{0};

  /// The decision the vehicle actually executes: it filters what the
  /// vehicle uploads (shared_items).
  core::DecisionId decision = 0;
  /// The decision the vehicle *claims* toward the server. Lattice access
  /// control runs on claims — the server cannot see inside a vehicle — so
  /// a Byzantine free-rider claims share-everything (earning access to the
  /// whole pool) while its true decision uploads nothing. Honest vehicles
  /// leave the sentinel in place.
  core::DecisionId claim = kClaimFollowsDecision;
  /// Quarantined by the control plane: served nothing in the distribution
  /// phase, its *reports* distrusted upstream — but its uploads are
  /// accepted, exposed, and redistributed like any other (items are
  /// verifiable sensor data; impounding them would only starve honest
  /// receivers — see run_round_degraded). The vehicle keeps paying
  /// privacy cost, and its realized upload mass stays observable to the
  /// behavioural audit, so a falsely flagged vehicle can rehabilitate.
  bool revoked = false;
  ItemSet collected;  // S_a
  ItemSet desired;    // D_a

  core::DecisionId claimed() const noexcept {
    return claim == kClaimFollowsDecision ? decision : claim;
  }
};

/// Result of one data-sharing round in one cell.
struct RoundOutcome {
  std::vector<double> utility;  // h_a per vehicle, in [0, 1]
  std::vector<double> privacy;  // c_a per vehicle, in [0, 1]
  /// Unique items uploaded to the server this round (eavesdropper view).
  std::size_t exposed_items = 0;
  /// Privacy mass of the exposed items, normalised like g.
  double exposed_privacy = 0.0;
  /// Item deliveries performed (sum over receivers of received items).
  std::size_t deliveries = 0;
  /// Vehicle uploads dropped on the uplink (fault injection; 0 when clean).
  std::size_t uploads_lost = 0;
  /// Items dropped on the downlink after acceptance (fault injection).
  std::size_t deliveries_lost = 0;

  /// Population averages.
  double mean_utility() const;
  double mean_privacy() const;
};

/// Pre-resolved per-cell fault mask (see faults::FaultModel; perception
/// stays independent of the fault layer by taking plain booleans). Empty
/// vectors mean "no faults": the degraded entry points then follow exactly
/// the clean code path, consuming the same RNG stream.
struct CellFaultMask {
  /// upload_lost[b]: vehicle b's upload never reaches the server — it
  /// contributes nothing to the pool and costs b no privacy.
  std::vector<std::uint8_t> upload_lost;
  /// delivery_lost[a * n + b]: the accepted distribution of b's upload to
  /// receiver a is lost in flight — a's utility suffers, b's privacy was
  /// already spent at the server.
  std::vector<std::uint8_t> delivery_lost;

  bool empty() const noexcept {
    return upload_lost.empty() && delivery_lost.empty();
  }
};

/// Concurrency: a plane owns its RNG and per-round buffers, so *distinct*
/// plane instances may run rounds concurrently (the system fans one plane
/// per edge server out over its thread pool); a single instance is not
/// thread-safe.
class EdgeServerDataPlane {
 public:
  /// `lattice` and `universe` must outlive the plane.
  EdgeServerDataPlane(const core::DecisionLattice& lattice,
                      const DataUniverse& universe,
                      core::AccessRule access = core::AccessRule::kSubsetOrEqual,
                      std::uint64_t seed = 1);

  /// Runs one upload/distribute round at the given sharing ratio x.
  RoundOutcome run_round(std::span<const Vehicle> vehicles, double sharing_ratio);

  /// Like run_round, but the edge server additionally contributes its own
  /// perception `server_items` (the paper's §VII second future-work item:
  /// roadside infrastructure perceives its surroundings and distributes the
  /// result to bypassing vehicles). Server items reach every vehicle
  /// unconditionally — infrastructure data carries no passenger privacy
  /// cost and is outside the lattice incentive loop.
  RoundOutcome run_round_with_server(std::span<const Vehicle> vehicles,
                                     double sharing_ratio,
                                     const ItemSet& server_items);

  /// Degraded-mode round: like run_round_with_server, but uploads and
  /// deliveries flagged in `mask` are lost. With an empty mask this is the
  /// clean round bit-for-bit (identical RNG consumption).
  RoundOutcome run_round_degraded(std::span<const Vehicle> vehicles,
                                  double sharing_ratio,
                                  const CellFaultMask& mask,
                                  const ItemSet& server_items = {});

  /// The items vehicle would upload under its decision (S_a ∩ P^{k_a}).
  ItemSet shared_items(const Vehicle& v) const;

  /// Result of a directional (cross-cell) round: senders upload, receivers
  /// receive; nothing flows the other way.
  struct DirectionalOutcome {
    /// Marginal utility per receiver: f_a of the newly received items
    /// (already-held items excluded), in [0, 1].
    std::vector<double> marginal_utility;
    std::size_t deliveries = 0;
  };

  /// One direction of the paper's inter-region exchange (Fig. 5, Eq. (4)'s
  /// x_j * gamma_ji term): vehicles of a *neighbouring* cell act as senders
  /// and this cell's vehicles as receivers, at the sender cell's sharing
  /// ratio. Lattice admissibility applies as usual.
  DirectionalOutcome run_directional(std::span<const Vehicle> senders,
                                     std::span<const Vehicle> receivers,
                                     double sharing_ratio);

 private:
  const core::DecisionLattice& lattice_;
  const DataUniverse& universe_;
  core::AccessRule access_;
  Rng rng_;
};

}  // namespace avcp::perception
