// Edge-server data plane executing the lattice-based sharing policy
// (paper §II framework steps S2/4/5 and §III policy implementation).
//
// Each round, every vehicle uploads the part of its collected data selected
// by its decision; the edge server then distributes vehicle b's upload to
// vehicle a with probability x iff a's decision precedes b's in the lattice
// (P^{k_b} ⊆ P^{k_a}). The outcome records each vehicle's realised utility
// h_a = f_a(own ∪ received), privacy cost c_a = g(shared), and the
// passive-eavesdropper exposure (everything visible at the server — the
// paper's threat model).
//
// Two kernels implement the distribution phase (DataPlaneMode):
//
//  - kPairwiseExact (default): the literal O(receivers × senders) loop, one
//    Bernoulli(x) draw per readable ordered pair. The reference semantics;
//    its RNG draw order is a documented contract (below).
//  - kClassAggregated: readability and upload content depend only on the
//    *decision class* (K = 2^N classes), not on vehicle identity, so the
//    pairwise loop collapses to per-class aggregates: a per-round
//    CompositionTable buckets vehicles by claimed class, pools uploads per
//    class, and each receiver consumes one Binomial(n_class, x) draw per
//    readable sender class (deliveries) plus one Bernoulli per candidate
//    desired item with inclusion probability 1 - (1-x)^c, where c counts
//    the readable uploads carrying the item. Item-level *marginals* are
//    exactly those of the pairwise kernel, so mean utility, mean privacy,
//    exposure, and expected deliveries match exactly; joint laws (variance
//    across items of one sender's upload) are approximated — see
//    DESIGN.md §11 for when the construction is exact vs in-distribution.
//    Per-pair delivery-loss masks cannot be class-aggregated; callers fall
//    back to the exact kernel when such faults are active.
//
// ## RNG draw-order contract (kPairwiseExact)
//
// The distribution phase consumes exactly one Bernoulli draw per readable
// ordered (receiver, sender) pair — receivers ascending in the outer loop,
// senders ascending in the inner loop, self-pairs excluded — regardless of
// upload contents, fault masks, or workspace reuse. Draws cannot be elided
// for senders with empty uploads (eliding would shift every later pair's
// draw), so the empty-upload fast path skips only the work *after* the
// draw: the delivery-loss probe, delivery bookkeeping, and the buffer
// append. Readability itself never consumes randomness (it is a
// precomputed K×K table over claimed classes), a revoked receiver consumes
// no draws (its sender loop is skipped entirely — revocation only occurs
// on the already-perturbed Byzantine path), and x <= 0 or x >= 1 consumes
// no draws at all (Rng::bernoulli short-circuits). The aggregated kernel
// owns a different stream layout (per receiver: binomials per readable
// class in ascending class order, then item Bernoullis in ascending
// desired-item order) and promises determinism, not pairwise bit-identity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/lattice.h"
#include "perception/fleet_soa.h"
#include "perception/measure.h"

namespace avcp::perception {

/// Which kernel runs the distribution phase of a data-sharing round.
enum class DataPlaneMode : std::uint8_t {
  /// Reference O(V^2) per-pair loop; bit-stable draw order (see above).
  kPairwiseExact = 0,
  /// O(V·K) class-aggregated kernel; equal in distribution at item
  /// granularity, deterministic, but not draw-compatible with the exact
  /// kernel.
  kClassAggregated = 1,
};

/// A participating vehicle within one edge-server cell.
struct Vehicle {
  /// Sentinel for `claim`: the vehicle claims its true decision.
  static constexpr core::DecisionId kClaimFollowsDecision = ~core::DecisionId{0};

  /// The decision the vehicle actually executes: it filters what the
  /// vehicle uploads (shared_items).
  core::DecisionId decision = 0;
  /// The decision the vehicle *claims* toward the server. Lattice access
  /// control runs on claims — the server cannot see inside a vehicle — so
  /// a Byzantine free-rider claims share-everything (earning access to the
  /// whole pool) while its true decision uploads nothing. Honest vehicles
  /// leave the sentinel in place.
  core::DecisionId claim = kClaimFollowsDecision;
  /// Quarantined by the control plane: served nothing in the distribution
  /// phase, its *reports* distrusted upstream — but its uploads are
  /// accepted, exposed, and redistributed like any other (items are
  /// verifiable sensor data; impounding them would only starve honest
  /// receivers — see run_round_degraded). The vehicle keeps paying
  /// privacy cost, and its realized upload mass stays observable to the
  /// behavioural audit, so a falsely flagged vehicle can rehabilitate.
  bool revoked = false;
  ItemSet collected;  // S_a
  ItemSet desired;    // D_a

  core::DecisionId claimed() const noexcept {
    return claim == kClaimFollowsDecision ? decision : claim;
  }
};

/// Result of one data-sharing round in one cell.
struct RoundOutcome {
  std::vector<double> utility;  // h_a per vehicle, in [0, 1]
  std::vector<double> privacy;  // c_a per vehicle, in [0, 1]
  /// Unique items uploaded to the server this round (eavesdropper view).
  std::size_t exposed_items = 0;
  /// Privacy mass of the exposed items, normalised like g.
  double exposed_privacy = 0.0;
  /// Item deliveries performed (sum over receivers of received items).
  std::size_t deliveries = 0;
  /// Vehicle uploads dropped on the uplink (fault injection; 0 when clean).
  std::size_t uploads_lost = 0;
  /// Items dropped on the downlink after acceptance (fault injection).
  std::size_t deliveries_lost = 0;

  /// Population averages.
  double mean_utility() const;
  double mean_privacy() const;
};

/// Pre-resolved per-cell fault mask (see faults::FaultModel; perception
/// stays independent of the fault layer by taking plain booleans). Empty
/// vectors mean "no faults": the degraded entry points then follow exactly
/// the clean code path, consuming the same RNG stream.
struct CellFaultMask {
  /// upload_lost[b]: vehicle b's upload never reaches the server — it
  /// contributes nothing to the pool and costs b no privacy.
  std::vector<std::uint8_t> upload_lost;
  /// delivery_lost[a * n + b]: the accepted distribution of b's upload to
  /// receiver a is lost in flight — a's utility suffers, b's privacy was
  /// already spent at the server. Per-pair, hence incompatible with the
  /// class-aggregated kernel (callers use kPairwiseExact when set).
  std::vector<std::uint8_t> delivery_lost;

  bool empty() const noexcept {
    return upload_lost.empty() && delivery_lost.empty();
  }
};

/// Concurrency: a plane owns its RNG and per-round workspace buffers, so
/// *distinct* plane instances may run rounds concurrently (the system fans
/// one plane per edge server out over its thread pool); a single instance
/// is not thread-safe.
///
/// Allocation: all round entry points reuse an internal workspace whose
/// buffers are grown to the high-water mark and never shrunk; the `_into`
/// overloads additionally reuse the caller's outcome vectors, so repeated
/// rounds over same-shaped fleets perform zero heap allocations after the
/// first (warm-up) round — regression-locked in tests/allocation_guard_test.
class EdgeServerDataPlane {
 public:
  /// `lattice` and `universe` must outlive the plane.
  EdgeServerDataPlane(const core::DecisionLattice& lattice,
                      const DataUniverse& universe,
                      core::AccessRule access = core::AccessRule::kSubsetOrEqual,
                      std::uint64_t seed = 1);

  /// Runs one upload/distribute round at the given sharing ratio x.
  RoundOutcome run_round(std::span<const Vehicle> vehicles, double sharing_ratio);

  /// Like run_round, but the edge server additionally contributes its own
  /// perception `server_items` (the paper's §VII second future-work item:
  /// roadside infrastructure perceives its surroundings and distributes the
  /// result to bypassing vehicles). Server items reach every vehicle
  /// unconditionally — infrastructure data carries no passenger privacy
  /// cost and is outside the lattice incentive loop.
  RoundOutcome run_round_with_server(std::span<const Vehicle> vehicles,
                                     double sharing_ratio,
                                     const ItemSet& server_items);

  /// Degraded-mode round: like run_round_with_server, but uploads and
  /// deliveries flagged in `mask` are lost. With an empty mask this is the
  /// clean round bit-for-bit (identical RNG consumption).
  RoundOutcome run_round_degraded(std::span<const Vehicle> vehicles,
                                  double sharing_ratio,
                                  const CellFaultMask& mask,
                                  const ItemSet& server_items = {});

  /// Class-aggregated round (DataPlaneMode::kClassAggregated): equal to
  /// run_round_degraded in distribution at item granularity, O(V·K) in the
  /// fleet. `mask.delivery_lost` must be empty (per-pair faults cannot be
  /// aggregated; callers fall back to the exact kernel).
  RoundOutcome run_round_aggregated(std::span<const Vehicle> vehicles,
                                    double sharing_ratio,
                                    const CellFaultMask& mask = {},
                                    const ItemSet& server_items = {});

  /// Zero-allocation core: runs one round with the selected kernel into
  /// `out`, reusing its vectors. All by-value entry points above call this.
  void run_round_into(std::span<const Vehicle> vehicles, double sharing_ratio,
                      const CellFaultMask& mask, const ItemSet& server_items,
                      DataPlaneMode mode, RoundOutcome& out);

  /// SoA overload: the same kernels over a FleetView (perception/fleet_soa.h).
  /// The kernels are templated over a fleet accessor, so an AoS span and a
  /// FleetView holding the same logical fleet consume the same RNG stream
  /// and produce byte-identical outcomes (tests/fleet_soa_test.cpp).
  void run_round_into(const FleetView& fleet, double sharing_ratio,
                      const CellFaultMask& mask, const ItemSet& server_items,
                      DataPlaneMode mode, RoundOutcome& out);

  /// Pre-grows the per-round workspace for fleets of up to `vehicles`
  /// vehicles carrying at most `items_per_vehicle` collected items each.
  /// Optional: buffers reach their high-water mark after one warm-up round
  /// anyway; pre-reserving makes even the first round allocation-free
  /// (the sharded fleet engine reserves at ingest time).
  void reserve_workspace(std::size_t vehicles, std::size_t items_per_vehicle);

  /// The items vehicle would upload under its decision (S_a ∩ P^{k_a}).
  ItemSet shared_items(const Vehicle& v) const;

  /// Result of a directional (cross-cell) round: senders upload, receivers
  /// receive; nothing flows the other way.
  struct DirectionalOutcome {
    /// Marginal utility per receiver: f_a of the newly received items
    /// (already-held items excluded), in [0, 1].
    std::vector<double> marginal_utility;
    std::size_t deliveries = 0;
  };

  /// One direction of the paper's inter-region exchange (Fig. 5, Eq. (4)'s
  /// x_j * gamma_ji term): vehicles of a *neighbouring* cell act as senders
  /// and this cell's vehicles as receivers, at the sender cell's sharing
  /// ratio. Lattice admissibility applies as usual. The exact kernel's
  /// draw order is one Bernoulli per readable (receiver, sender) pair,
  /// receivers outer ascending, senders inner ascending.
  DirectionalOutcome run_directional(std::span<const Vehicle> senders,
                                     std::span<const Vehicle> receivers,
                                     double sharing_ratio,
                                     DataPlaneMode mode =
                                         DataPlaneMode::kPairwiseExact);

  /// Zero-allocation directional core; see run_round_into.
  void run_directional_into(std::span<const Vehicle> senders,
                            std::span<const Vehicle> receivers,
                            double sharing_ratio, DataPlaneMode mode,
                            DirectionalOutcome& out);

  /// SoA overload of the directional core (see the FleetView run_round_into).
  void run_directional_into(const FleetView& senders,
                            const FleetView& receivers, double sharing_ratio,
                            DataPlaneMode mode, DirectionalOutcome& out);

  /// Checkpoint hooks: the plane's only cross-round state is its RNG
  /// stream position (the workspace is per-round scratch; the readability
  /// table and masks are derived from the lattice at construction).
  void save_state(Serializer& s) const { rng_.save_state(s); }
  void load_state(Deserializer& d) { rng_.load_state(d); }

 private:
  /// Per-round scratch reused across rounds (grown, never shrunk). Uploads
  /// live in one flat arena indexed by exclusive per-vehicle end offsets —
  /// the SoA counterpart of the old vector<ItemSet> (which cost one heap
  /// vector per vehicle and pointer-dense kernel reads at fleet scale).
  struct Workspace {
    /// Decision-filtered uploads, concatenated in vehicle order; vehicle
    /// b's upload spans [upload_end[b-1], upload_end[b]) (0 for b == 0).
    std::vector<ItemId> upload_data;
    std::vector<std::uint32_t> upload_end;
    /// seen[id] != 0 iff some upload carried `id` this round: the
    /// eavesdropper view as a dense flag array instead of a sorted union
    /// (the union's sort was O(total upload items · log) per round — the
    /// dominant cost at engine scale; the ascending flag walk reproduces
    /// privacy_cost's summation order bit-for-bit).
    std::vector<std::uint8_t> seen;
    ItemSet received;  // exact path: per-receiver gather buffer
    ItemSet scratch;   // exact directional: received \ collected
    /// Claimed decision class per vehicle (this round).
    std::vector<core::DecisionId> cls;
    /// CompositionTable (aggregated kernel), rebuilt per round:
    std::vector<std::uint32_t> class_senders;  // per class: non-empty uploads
    std::vector<std::size_t> class_items;      // per class: pooled item count
    std::vector<std::uint32_t> item_count;     // [class][item]: upload copies
    std::vector<std::uint32_t> recv_count;     // [recv class][item]: readable
    std::vector<double> miss_pow;              // (1-x)^c for small c
    /// [recv class][item]: (1-x)^recv_count, hoisting the std::pow fallback
    /// (recv_count >= 64 at fleet scale) out of the per-candidate loop.
    /// Built only for fleets large enough to amortise the K·Ω fill; every
    /// entry is item_miss_prob evaluated verbatim, so using the table is
    /// bit-identical to not using it.
    std::vector<double> miss_table;
  };

  void refresh_item_bits();
  /// Appends collected ∩ P^decision to `out` via the per-decision sensor
  /// bitmask (no per-item lattice_.shares call).
  void append_shared(core::DecisionId decision,
                     std::span<const ItemId> collected,
                     std::vector<ItemId>& out) const;
  /// Vehicle b's upload this round (into ws_.upload_data).
  std::span<const ItemId> upload(std::size_t b) const noexcept {
    const std::uint32_t end = ws_.upload_end[b];
    const std::uint32_t begin = b == 0 ? 0 : ws_.upload_end[b - 1];
    return {ws_.upload_data.data() + begin, end - begin};
  }

  // The kernels are member templates over a fleet accessor (an AoS adapter
  // over span<const Vehicle>, an SoA adapter over FleetView — both defined
  // in data_plane.cpp), so the two layouts execute literally the same code:
  // equal logical fleets consume equal RNG streams and produce byte-equal
  // outcomes. Definitions and all instantiations live in data_plane.cpp.

  /// Upload phase shared by both kernels (identical results and — trivially,
  /// it consumes no randomness — identical RNG state).
  template <typename Fleet>
  void upload_phase(const Fleet& fleet, const CellFaultMask& mask,
                    RoundOutcome& out);
  /// Fills ws_.cls with claimed classes (validated against the lattice).
  template <typename Fleet>
  void classify(const Fleet& fleet);
  template <typename Fleet>
  void run_round_generic(const Fleet& fleet, double sharing_ratio,
                         const CellFaultMask& mask, const ItemSet& server_items,
                         DataPlaneMode mode, RoundOutcome& out);
  /// Builds the per-class CompositionTable from the first `num_senders`
  /// uploads / ws_.cls entries (the buffers are high-water-marked and may
  /// hold stale rows from a larger earlier round).
  void build_composition_table(std::size_t num_senders);
  /// Precomputes ws_.miss_pow[c] = (1-x)^c for c in [0, kMissPowCache).
  void build_miss_pow(double sharing_ratio);
  /// Fills ws_.miss_table from ws_.recv_count (see Workspace::miss_table).
  void build_miss_table(double sharing_ratio);
  double item_miss_prob(double sharing_ratio, std::uint32_t c) const;

  template <typename Fleet>
  void run_round_exact(const Fleet& fleet, double sharing_ratio,
                       const CellFaultMask& mask, const ItemSet& server_items,
                       RoundOutcome& out);
  template <typename Fleet>
  void run_round_class_aggregated(const Fleet& fleet, double sharing_ratio,
                                  const CellFaultMask& mask,
                                  const ItemSet& server_items,
                                  RoundOutcome& out);
  template <typename SenderFleet, typename ReceiverFleet>
  void run_directional_generic(const SenderFleet& senders,
                               const ReceiverFleet& receivers,
                               double sharing_ratio, DataPlaneMode mode,
                               DirectionalOutcome& out);
  template <typename SenderFleet, typename ReceiverFleet>
  void run_directional_exact(const SenderFleet& senders,
                             const ReceiverFleet& receivers,
                             double sharing_ratio, DirectionalOutcome& out);
  template <typename SenderFleet, typename ReceiverFleet>
  void run_directional_class_aggregated(const SenderFleet& senders,
                                        const ReceiverFleet& receivers,
                                        double sharing_ratio,
                                        DirectionalOutcome& out);

  const core::DecisionLattice& lattice_;
  const DataUniverse& universe_;
  core::AccessRule access_;
  Rng rng_;
  /// readable_[k * K + l]: receiver class k may read sender class l under
  /// access_ (constant for the plane's lifetime).
  std::vector<std::uint8_t> readable_;
  /// Per-decision shared-sensor bitmask (lattice_.mask hoisted out of the
  /// per-item loop) and per-item sensor bit, refreshed if the universe grew.
  std::vector<core::SensorMask> decision_masks_;
  std::vector<core::SensorMask> item_bits_;
  Workspace ws_;
};

}  // namespace avcp::perception
