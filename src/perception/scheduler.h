// Time-efficient edge-to-vehicle distribution (paper §VII, second
// future-work item): vehicles pass an edge server at speed, so each has a
// bounded connection window — the server cannot push every admissible item
// and must schedule what it sends.
//
// With the additive utility measure of Property 3.1, each delivered item
// contributes its utility weight independently, so the scheduling problem
// is a unit-size knapsack per receiver (and a shared-downlink knapsack when
// the server's total egress is also capped): exact optimality is reached by
// a weight-greedy order, which DistributionScheduler implements and the
// tests verify against brute force.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/lattice.h"
#include "perception/measure.h"

namespace avcp::perception {

/// One vehicle's upload visible at the server this round.
struct SenderUpload {
  core::DecisionId decision = 0;  // governs who may read it
  ItemSet items;                  // decision-filtered shared data
};

/// One receiver's distribution request.
struct DistributionRequest {
  core::DecisionId decision = 0;  // lattice admissibility
  ItemSet desired;                // D_a: only desired items carry utility
  ItemSet already_held;           // own collection; never re-sent
  /// Connection window: max items deliverable to this vehicle this round.
  std::size_t budget_items = ~std::size_t{0};
};

/// Planned deliveries.
struct DistributionPlan {
  /// deliveries[r]: sorted unique items sent to receiver r.
  std::vector<ItemSet> deliveries;
  /// Sum over receivers of the delivered utility weight (unnormalised).
  double total_utility_weight = 0.0;
  /// Items that were admissible and desired somewhere but cut by budgets.
  std::size_t dropped_items = 0;
  /// Uploads excluded because their uplink transfer was lost (degraded
  /// mode; see the `upload_lost` mask of plan()).
  std::size_t lost_uploads = 0;
};

class DistributionScheduler {
 public:
  /// `lattice` and `universe` must outlive the scheduler.
  DistributionScheduler(const core::DecisionLattice& lattice,
                        const DataUniverse& universe,
                        core::AccessRule access = core::AccessRule::kSubsetOrEqual);

  /// Plans one round. Per-receiver budgets always apply; when
  /// `server_budget_items` is set, the total number of delivered items
  /// across receivers is additionally capped and allocated globally by
  /// marginal utility weight (ties broken toward lower receiver index,
  /// then lower item id, for determinism). A non-empty `upload_lost` mask
  /// (one flag per upload, degraded mode) excludes uploads whose uplink
  /// transfer was lost: they never reached the server, so they shrink every
  /// receiver's pool.
  DistributionPlan plan(std::span<const SenderUpload> uploads,
                        std::span<const DistributionRequest> receivers,
                        std::optional<std::size_t> server_budget_items =
                            std::nullopt,
                        std::span<const std::uint8_t> upload_lost = {}) const;

  /// The admissible pool for one receiver: union of uploads it may read,
  /// minus what it already holds. Uploads flagged in `upload_lost` are
  /// excluded (empty mask = none lost).
  ItemSet admissible_pool(std::span<const SenderUpload> uploads,
                          const DistributionRequest& receiver,
                          std::span<const std::uint8_t> upload_lost = {}) const;

 private:
  const core::DecisionLattice& lattice_;
  const DataUniverse& universe_;
  core::AccessRule access_;
};

}  // namespace avcp::perception
