#include "perception/scheduler.h"

#include <algorithm>

#include "common/contracts.h"

namespace avcp::perception {

DistributionScheduler::DistributionScheduler(
    const core::DecisionLattice& lattice, const DataUniverse& universe,
    core::AccessRule access)
    : lattice_(lattice), universe_(universe), access_(access) {}

ItemSet DistributionScheduler::admissible_pool(
    std::span<const SenderUpload> uploads, const DistributionRequest& receiver,
    std::span<const std::uint8_t> upload_lost) const {
  AVCP_EXPECT(receiver.decision < lattice_.num_decisions());
  AVCP_EXPECT(is_sorted_unique(receiver.already_held));
  AVCP_EXPECT(upload_lost.empty() || upload_lost.size() == uploads.size());
  ItemSet pool;
  for (std::size_t u = 0; u < uploads.size(); ++u) {
    const SenderUpload& upload = uploads[u];
    AVCP_EXPECT(is_sorted_unique(upload.items));
    if (!upload_lost.empty() && upload_lost[u]) continue;
    const bool readable =
        access_ == core::AccessRule::kSubsetOrEqual
            ? lattice_.preceq(receiver.decision, upload.decision)
            : lattice_.precedes(receiver.decision, upload.decision);
    if (!readable) continue;
    pool.insert(pool.end(), upload.items.begin(), upload.items.end());
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  return set_difference(pool, receiver.already_held);
}

DistributionPlan DistributionScheduler::plan(
    std::span<const SenderUpload> uploads,
    std::span<const DistributionRequest> receivers,
    std::optional<std::size_t> server_budget_items,
    std::span<const std::uint8_t> upload_lost) const {
  AVCP_EXPECT(upload_lost.empty() || upload_lost.size() == uploads.size());
  DistributionPlan result;
  result.deliveries.resize(receivers.size());
  for (const std::uint8_t lost : upload_lost) {
    if (lost) ++result.lost_uploads;
  }

  // Candidate deliveries: (utility weight, receiver, item), desired-only —
  // undesired items contribute nothing under Property 3.1(a).
  struct Candidate {
    double weight;
    std::size_t receiver;
    ItemId item;
  };
  std::vector<Candidate> candidates;
  std::vector<std::size_t> remaining(receivers.size());
  for (std::size_t r = 0; r < receivers.size(); ++r) {
    AVCP_EXPECT(is_sorted_unique(receivers[r].desired));
    remaining[r] = receivers[r].budget_items;
    const ItemSet pool = admissible_pool(uploads, receivers[r], upload_lost);
    for (const ItemId id : set_intersect(pool, receivers[r].desired)) {
      candidates.push_back(
          Candidate{universe_.item(id).utility_weight, r, id});
    }
  }
  // Highest utility weight first; deterministic tie-break.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.receiver != b.receiver) return a.receiver < b.receiver;
              return a.item < b.item;
            });

  std::size_t server_remaining =
      server_budget_items.value_or(~std::size_t{0});
  for (const Candidate& c : candidates) {
    if (server_remaining == 0) {
      ++result.dropped_items;
      continue;
    }
    if (remaining[c.receiver] == 0) {
      ++result.dropped_items;
      continue;
    }
    result.deliveries[c.receiver].push_back(c.item);
    result.total_utility_weight += c.weight;
    --remaining[c.receiver];
    if (server_budget_items.has_value()) --server_remaining;
  }
  for (ItemSet& delivery : result.deliveries) {
    std::sort(delivery.begin(), delivery.end());
  }
  return result;
}

}  // namespace avcp::perception
