// Measure-theoretic sensor-data model (paper §III, Property 3.1).
//
// The universal set Omega is modelled as a finite universe of data items,
// each tagged with the sensor type that produces it and carrying utility
// and privacy weights. A vehicle's utility function f is a normalised
// measure relative to its desired set D_a:
//
//   f(S) = weight(S ∩ D_a) / weight(D_a)
//
// which satisfies all of Property 3.1: (a) f(S) = f(S ∩ D_a); (b) f = 1
// when S ⊇ D_a; (c) f = 0 when S ∩ D_a = ∅; (d) countable additivity over
// pairwise-disjoint sets. The privacy cost g is a measure over shared
// items, normalised by the universe's total privacy weight.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace avcp::perception {

using ItemId = std::uint32_t;

/// One unit of sensor data.
struct DataItem {
  std::size_t sensor = 0;       // sensor-type index (lattice order)
  double utility_weight = 1.0;  // contribution to f's measure
  double privacy_weight = 0.0;  // contribution to g's measure
};

/// A set of item ids; kept sorted and deduplicated.
using ItemSet = std::vector<ItemId>;

/// Sorted-set algebra over ItemSets. The read-only queries take spans so
/// flat-arena item windows (perception/fleet_soa.h) use the same code.
ItemSet set_union(const ItemSet& a, const ItemSet& b);
ItemSet set_intersect(const ItemSet& a, const ItemSet& b);
ItemSet set_difference(const ItemSet& a, const ItemSet& b);
bool set_contains(std::span<const ItemId> a, ItemId id) noexcept;
bool is_sorted_unique(std::span<const ItemId> a) noexcept;

/// The universal data set Omega.
class DataUniverse {
 public:
  explicit DataUniverse(std::size_t num_sensors);

  std::size_t num_sensors() const noexcept { return num_sensors_; }
  std::size_t size() const noexcept { return items_.size(); }

  /// Adds an item; weights must be non-negative, utility positive.
  ItemId add_item(std::size_t sensor, double utility_weight,
                  double privacy_weight);

  const DataItem& item(ItemId id) const;

  /// All items of one sensor type.
  ItemSet items_of_sensor(std::size_t sensor) const;

  /// Summed privacy weight of the whole universe (g's normaliser).
  double total_privacy_weight() const noexcept { return total_privacy_; }

  /// Summed utility weight of a set (ascending iteration order).
  double utility_weight(std::span<const ItemId> s) const;

  /// Summed privacy weight of a set (ascending iteration order).
  double privacy_weight(std::span<const ItemId> s) const;

  /// Random universe: `items_per_sensor` items per sensor type with the
  /// given per-sensor privacy weight and unit utility weights.
  static DataUniverse synthetic(std::size_t num_sensors,
                                std::size_t items_per_sensor,
                                std::span<const double> sensor_privacy,
                                Rng& rng);

 private:
  std::size_t num_sensors_;
  std::vector<DataItem> items_;
  double total_privacy_ = 0.0;
};

/// Normalised utility measure f for one vehicle's desired set.
class UtilityMeasure {
 public:
  /// `desired` must be non-empty with positive total utility weight.
  UtilityMeasure(const DataUniverse& universe, ItemSet desired);

  /// f(S) in [0, 1].
  double operator()(const ItemSet& s) const;

  const ItemSet& desired() const noexcept { return desired_; }

 private:
  const DataUniverse* universe_;
  ItemSet desired_;
  double desired_weight_;
};

/// Normalised privacy cost g(S) in [0, 1].
double privacy_cost(const DataUniverse& universe,
                    std::span<const ItemId> shared);

/// Normalised utility measure evaluated in place: weight(s ∩ desired) /
/// weight(desired), both sums taken in ascending item order — the exact
/// floating-point summation order of UtilityMeasure, without its per-call
/// desired-set copy or intersection allocation. `desired` must be non-empty
/// with positive total utility weight; both inputs sorted-unique.
double measured_utility(const DataUniverse& universe,
                        std::span<const ItemId> s,
                        std::span<const ItemId> desired);

}  // namespace avcp::perception
