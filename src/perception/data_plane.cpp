#include "perception/data_plane.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/stats.h"

namespace avcp::perception {

double RoundOutcome::mean_utility() const {
  return mean(std::span<const double>(utility));
}

double RoundOutcome::mean_privacy() const {
  return mean(std::span<const double>(privacy));
}

EdgeServerDataPlane::EdgeServerDataPlane(const core::DecisionLattice& lattice,
                                         const DataUniverse& universe,
                                         core::AccessRule access,
                                         std::uint64_t seed)
    : lattice_(lattice), universe_(universe), access_(access), rng_(seed) {
  AVCP_EXPECT(universe.num_sensors() == lattice.num_sensors());
}

ItemSet EdgeServerDataPlane::shared_items(const Vehicle& v) const {
  AVCP_EXPECT(v.decision < lattice_.num_decisions());
  AVCP_EXPECT(is_sorted_unique(v.collected));
  ItemSet shared;
  for (const ItemId id : v.collected) {
    if (lattice_.shares(v.decision, universe_.item(id).sensor)) {
      shared.push_back(id);
    }
  }
  return shared;
}

RoundOutcome EdgeServerDataPlane::run_round(std::span<const Vehicle> vehicles,
                                            double sharing_ratio) {
  return run_round_with_server(vehicles, sharing_ratio, ItemSet{});
}

EdgeServerDataPlane::DirectionalOutcome EdgeServerDataPlane::run_directional(
    std::span<const Vehicle> senders, std::span<const Vehicle> receivers,
    double sharing_ratio) {
  AVCP_EXPECT(sharing_ratio >= 0.0 && sharing_ratio <= 1.0);
  std::vector<ItemSet> uploads(senders.size());
  for (std::size_t b = 0; b < senders.size(); ++b) {
    uploads[b] = shared_items(senders[b]);
  }

  DirectionalOutcome outcome;
  outcome.marginal_utility.resize(receivers.size(), 0.0);
  for (std::size_t a = 0; a < receivers.size(); ++a) {
    const Vehicle& receiver = receivers[a];
    if (receiver.revoked) continue;
    AVCP_EXPECT(is_sorted_unique(receiver.collected));
    ItemSet received;
    for (std::size_t b = 0; b < senders.size(); ++b) {
      const bool readable =
          access_ == core::AccessRule::kSubsetOrEqual
              ? lattice_.preceq(receiver.claimed(), senders[b].claimed())
              : lattice_.precedes(receiver.claimed(), senders[b].claimed());
      if (!readable) continue;
      if (!rng_.bernoulli(sharing_ratio)) continue;
      outcome.deliveries += uploads[b].size();
      received.insert(received.end(), uploads[b].begin(), uploads[b].end());
    }
    std::sort(received.begin(), received.end());
    received.erase(std::unique(received.begin(), received.end()),
                   received.end());
    received = set_difference(received, receiver.collected);
    if (!received.empty() && !receiver.desired.empty()) {
      const UtilityMeasure f(universe_, receiver.desired);
      outcome.marginal_utility[a] = f(received);
    }
  }
  return outcome;
}

RoundOutcome EdgeServerDataPlane::run_round_with_server(
    std::span<const Vehicle> vehicles, double sharing_ratio,
    const ItemSet& server_items) {
  return run_round_degraded(vehicles, sharing_ratio, CellFaultMask{},
                            server_items);
}

RoundOutcome EdgeServerDataPlane::run_round_degraded(
    std::span<const Vehicle> vehicles, double sharing_ratio,
    const CellFaultMask& mask, const ItemSet& server_items) {
  AVCP_EXPECT(sharing_ratio >= 0.0 && sharing_ratio <= 1.0);
  AVCP_EXPECT(is_sorted_unique(server_items));

  const std::size_t n = vehicles.size();
  AVCP_EXPECT(mask.upload_lost.empty() || mask.upload_lost.size() == n);
  AVCP_EXPECT(mask.delivery_lost.empty() || mask.delivery_lost.size() == n * n);
  RoundOutcome outcome;
  outcome.utility.resize(n, 0.0);
  outcome.privacy.resize(n, 0.0);

  // Upload phase (framework step 4): decision-filtered collected data. A
  // lost upload never reaches the server: it shrinks the pool, is invisible
  // to the eavesdropper, and costs its vehicle no privacy.
  // A quarantined vehicle's upload is accepted, exposed, and redistributed
  // like any other: items are raw sensor readings the server can verify,
  // while quarantine distrusts the vehicle's self-declared *report* and
  // punishes it on the receive side only. Impounding the uploads too would
  // let a telemetry liar's (perfectly good) data vanish from the pool —
  // at high attacker fractions that starves honest receivers and collapses
  // the sharing equilibrium the controller is holding. Keeping the upload
  // also keeps its mass observable to the behavioural audit, so a falsely
  // flagged honest vehicle can rehabilitate.
  std::vector<ItemSet> uploads(n);
  ItemSet server_view;
  for (std::size_t a = 0; a < n; ++a) {
    if (!mask.upload_lost.empty() && mask.upload_lost[a]) {
      ++outcome.uploads_lost;
      continue;
    }
    uploads[a] = shared_items(vehicles[a]);
    server_view = set_union(server_view, uploads[a]);
    outcome.privacy[a] = privacy_cost(universe_, uploads[a]);
  }
  outcome.exposed_items = server_view.size();
  outcome.exposed_privacy = privacy_cost(universe_, server_view);

  // Distribution phase (step 5): b's upload reaches a with probability x
  // iff a's decision shares at least b's sensor types. A delivery lost on
  // the downlink drops after acceptance: the Bernoulli draw is consumed
  // either way, so a clean run and a delivery-loss run share the upload
  // phase bit-for-bit.
  for (std::size_t a = 0; a < n; ++a) {
    // Gather all accepted uploads first, then sort/deduplicate once — a
    // per-sender set_union would make large cells quadratic in fleet size.
    // Access control runs on *claimed* decisions: the server cannot verify
    // what a vehicle withholds, only what it declares. A quarantined
    // receiver is served nothing (and consumes no distribution draws;
    // revocation only ever happens on the already-perturbed Byzantine
    // path, so the clean path's RNG stream is untouched).
    ItemSet received = set_union(vehicles[a].collected, server_items);
    if (vehicles[a].revoked) {
      std::sort(received.begin(), received.end());
      received.erase(std::unique(received.begin(), received.end()),
                     received.end());
      if (!vehicles[a].desired.empty()) {
        const UtilityMeasure f(universe_, vehicles[a].desired);
        outcome.utility[a] = f(received);
      }
      continue;
    }
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      if (!((access_ == core::AccessRule::kSubsetOrEqual &&
             lattice_.preceq(vehicles[a].claimed(), vehicles[b].claimed())) ||
            (access_ == core::AccessRule::kStrictSubset &&
             lattice_.precedes(vehicles[a].claimed(), vehicles[b].claimed())))) {
        continue;
      }
      if (!rng_.bernoulli(sharing_ratio)) continue;
      if (!mask.delivery_lost.empty() && mask.delivery_lost[a * n + b]) {
        outcome.deliveries_lost += uploads[b].size();
        continue;
      }
      outcome.deliveries += uploads[b].size();
      received.insert(received.end(), uploads[b].begin(), uploads[b].end());
    }
    std::sort(received.begin(), received.end());
    received.erase(std::unique(received.begin(), received.end()),
                   received.end());
    if (!vehicles[a].desired.empty()) {
      const UtilityMeasure f(universe_, vehicles[a].desired);
      outcome.utility[a] = f(received);
    } else {
      outcome.utility[a] = 0.0;  // nothing desired: utility trivially zero
    }
  }
  return outcome;
}

}  // namespace avcp::perception
