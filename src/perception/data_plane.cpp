#include "perception/data_plane.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/simd.h"
#include "common/stats.h"

namespace avcp::perception {

namespace {

constexpr std::size_t kMissPowCache = 64;

/// Fleets below this size keep the per-candidate item_miss_prob call; at or
/// above it the K·Ω miss_table fill is amortised across enough receivers to
/// win. A pure perf switch: both paths compute identical doubles.
constexpr std::size_t kMissTableMinFleet = 2048;

void sort_unique(ItemSet& s) {
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
}

/// AoS fleet accessor: adapts span<const Vehicle> to the kernel interface.
struct AosFleet {
  std::span<const Vehicle> v;
  std::size_t size() const noexcept { return v.size(); }
  core::DecisionId decision(std::size_t i) const noexcept {
    return v[i].decision;
  }
  core::DecisionId claimed(std::size_t i) const noexcept {
    return v[i].claimed();
  }
  bool revoked(std::size_t i) const noexcept { return v[i].revoked; }
  std::span<const ItemId> collected(std::size_t i) const noexcept {
    return v[i].collected;
  }
  std::span<const ItemId> desired(std::size_t i) const noexcept {
    return v[i].desired;
  }
};

/// SoA fleet accessor over a FleetView (flat arena + parallel arrays).
struct SoaFleet {
  FleetView f;
  std::size_t size() const noexcept { return f.size(); }
  core::DecisionId decision(std::size_t i) const noexcept {
    return f.decision[i];
  }
  core::DecisionId claimed(std::size_t i) const noexcept {
    return f.claimed(i);
  }
  bool revoked(std::size_t i) const noexcept { return f.revoked[i] != 0; }
  std::span<const ItemId> collected(std::size_t i) const noexcept {
    return f.collected_of(i);
  }
  std::span<const ItemId> desired(std::size_t i) const noexcept {
    return f.desired_of(i);
  }
};

}  // namespace

double RoundOutcome::mean_utility() const {
  return mean(std::span<const double>(utility));
}

double RoundOutcome::mean_privacy() const {
  return mean(std::span<const double>(privacy));
}

EdgeServerDataPlane::EdgeServerDataPlane(const core::DecisionLattice& lattice,
                                         const DataUniverse& universe,
                                         core::AccessRule access,
                                         std::uint64_t seed)
    : lattice_(lattice), universe_(universe), access_(access), rng_(seed) {
  AVCP_EXPECT(universe.num_sensors() == lattice.num_sensors());
  const std::size_t k = lattice.num_decisions();
  readable_.resize(k * k);
  for (core::DecisionId a = 0; a < k; ++a) {
    for (core::DecisionId b = 0; b < k; ++b) {
      readable_[a * k + b] = access == core::AccessRule::kSubsetOrEqual
                                 ? lattice.preceq(a, b)
                                 : lattice.precedes(a, b);
    }
  }
  decision_masks_.resize(k);
  for (core::DecisionId d = 0; d < k; ++d) decision_masks_[d] = lattice.mask(d);
  refresh_item_bits();
}

void EdgeServerDataPlane::refresh_item_bits() {
  // The universe may gain items after the plane is built; extend the cache
  // lazily (ids are append-only).
  while (item_bits_.size() < universe_.size()) {
    const auto id = static_cast<ItemId>(item_bits_.size());
    item_bits_.push_back(lattice_.sensor_bit(universe_.item(id).sensor));
  }
}

void EdgeServerDataPlane::append_shared(core::DecisionId decision,
                                        std::span<const ItemId> collected,
                                        std::vector<ItemId>& out) const {
  AVCP_EXPECT(decision < lattice_.num_decisions());
  AVCP_EXPECT(is_sorted_unique(collected));
  const core::SensorMask dmask = decision_masks_[decision];
  for (const ItemId id : collected) {
    AVCP_EXPECT(id < item_bits_.size());
    if ((dmask & item_bits_[id]) != 0) out.push_back(id);
  }
}

ItemSet EdgeServerDataPlane::shared_items(const Vehicle& v) const {
  const_cast<EdgeServerDataPlane*>(this)->refresh_item_bits();
  ItemSet shared;
  append_shared(v.decision, v.collected, shared);
  return shared;
}

void EdgeServerDataPlane::reserve_workspace(std::size_t vehicles,
                                            std::size_t items_per_vehicle) {
  refresh_item_bits();
  const std::size_t k = lattice_.num_decisions();
  const std::size_t omega = universe_.size();
  ws_.upload_data.reserve(vehicles * items_per_vehicle);
  ws_.upload_end.reserve(vehicles);
  ws_.seen.reserve(omega);
  ws_.cls.reserve(vehicles);
  ws_.class_senders.reserve(k);
  ws_.class_items.reserve(k);
  ws_.item_count.reserve(k * omega);
  ws_.recv_count.reserve(k * omega);
  ws_.miss_pow.reserve(kMissPowCache);
  ws_.miss_table.reserve(k * omega);
}

RoundOutcome EdgeServerDataPlane::run_round(std::span<const Vehicle> vehicles,
                                            double sharing_ratio) {
  return run_round_with_server(vehicles, sharing_ratio, ItemSet{});
}

RoundOutcome EdgeServerDataPlane::run_round_with_server(
    std::span<const Vehicle> vehicles, double sharing_ratio,
    const ItemSet& server_items) {
  return run_round_degraded(vehicles, sharing_ratio, CellFaultMask{},
                            server_items);
}

RoundOutcome EdgeServerDataPlane::run_round_degraded(
    std::span<const Vehicle> vehicles, double sharing_ratio,
    const CellFaultMask& mask, const ItemSet& server_items) {
  RoundOutcome out;
  run_round_into(vehicles, sharing_ratio, mask, server_items,
                 DataPlaneMode::kPairwiseExact, out);
  return out;
}

RoundOutcome EdgeServerDataPlane::run_round_aggregated(
    std::span<const Vehicle> vehicles, double sharing_ratio,
    const CellFaultMask& mask, const ItemSet& server_items) {
  RoundOutcome out;
  run_round_into(vehicles, sharing_ratio, mask, server_items,
                 DataPlaneMode::kClassAggregated, out);
  return out;
}

void EdgeServerDataPlane::run_round_into(std::span<const Vehicle> vehicles,
                                         double sharing_ratio,
                                         const CellFaultMask& mask,
                                         const ItemSet& server_items,
                                         DataPlaneMode mode, RoundOutcome& out) {
  run_round_generic(AosFleet{vehicles}, sharing_ratio, mask, server_items,
                    mode, out);
}

void EdgeServerDataPlane::run_round_into(const FleetView& fleet,
                                         double sharing_ratio,
                                         const CellFaultMask& mask,
                                         const ItemSet& server_items,
                                         DataPlaneMode mode, RoundOutcome& out) {
  run_round_generic(SoaFleet{fleet}, sharing_ratio, mask, server_items, mode,
                    out);
}

template <typename Fleet>
void EdgeServerDataPlane::run_round_generic(const Fleet& fleet,
                                            double sharing_ratio,
                                            const CellFaultMask& mask,
                                            const ItemSet& server_items,
                                            DataPlaneMode mode,
                                            RoundOutcome& out) {
  AVCP_EXPECT(sharing_ratio >= 0.0 && sharing_ratio <= 1.0);
  AVCP_EXPECT(is_sorted_unique(server_items));
  const std::size_t n = fleet.size();
  AVCP_EXPECT(mask.upload_lost.empty() || mask.upload_lost.size() == n);
  refresh_item_bits();

  out.utility.assign(n, 0.0);
  out.privacy.assign(n, 0.0);
  out.exposed_items = 0;
  out.exposed_privacy = 0.0;
  out.deliveries = 0;
  out.uploads_lost = 0;
  out.deliveries_lost = 0;

  // Upload phase (framework step 4): decision-filtered collected data. A
  // lost upload never reaches the server: it shrinks the pool, is invisible
  // to the eavesdropper, and costs its vehicle no privacy.
  // A quarantined vehicle's upload is accepted, exposed, and redistributed
  // like any other: items are raw sensor readings the server can verify,
  // while quarantine distrusts the vehicle's self-declared *report* and
  // punishes it on the receive side only. Impounding the uploads too would
  // let a telemetry liar's (perfectly good) data vanish from the pool —
  // at high attacker fractions that starves honest receivers and collapses
  // the sharing equilibrium the controller is holding. Keeping the upload
  // also keeps its mass observable to the behavioural audit, so a falsely
  // flagged honest vehicle can rehabilitate. The phase is identical for
  // both kernels (it consumes no randomness).
  upload_phase(fleet, mask, out);
  classify(fleet);

  if (mode == DataPlaneMode::kClassAggregated) {
    AVCP_EXPECT(mask.delivery_lost.empty());
    run_round_class_aggregated(fleet, sharing_ratio, mask, server_items, out);
    return;
  }
  AVCP_EXPECT(mask.delivery_lost.empty() || mask.delivery_lost.size() == n * n);
  run_round_exact(fleet, sharing_ratio, mask, server_items, out);
}

template <typename Fleet>
void EdgeServerDataPlane::upload_phase(const Fleet& fleet,
                                       const CellFaultMask& mask,
                                       RoundOutcome& out) {
  const std::size_t n = fleet.size();
  const std::size_t omega = universe_.size();
  ws_.upload_data.clear();
  if (ws_.upload_end.size() < n) ws_.upload_end.resize(n);
  ws_.seen.assign(omega, 0);
  for (std::size_t a = 0; a < n; ++a) {
    const std::size_t begin = ws_.upload_data.size();
    if (!mask.upload_lost.empty() && mask.upload_lost[a]) {
      ++out.uploads_lost;
      ws_.upload_end[a] = static_cast<std::uint32_t>(begin);
      continue;
    }
    append_shared(fleet.decision(a), fleet.collected(a), ws_.upload_data);
    ws_.upload_end[a] = static_cast<std::uint32_t>(ws_.upload_data.size());
    for (std::size_t i = begin; i < ws_.upload_data.size(); ++i) {
      ws_.seen[ws_.upload_data[i]] = 1;
    }
    out.privacy[a] = privacy_cost(
        universe_, std::span<const ItemId>(ws_.upload_data).subspan(begin));
  }
  // Eavesdropper view: everything any upload carried. The ascending flag
  // walk sums privacy weights in exactly the order privacy_cost walks the
  // old sorted union, so exposure is bit-identical to the sort-based path
  // without the O(total·log) per-round sort.
  std::size_t exposed = 0;
  double exposed_mass = 0.0;
  for (ItemId id = 0; id < omega; ++id) {
    if (ws_.seen[id] == 0) continue;
    ++exposed;
    exposed_mass += universe_.item(id).privacy_weight;
  }
  out.exposed_items = exposed;
  const double total = universe_.total_privacy_weight();
  out.exposed_privacy = total > 0.0 ? exposed_mass / total : 0.0;
}

template <typename Fleet>
void EdgeServerDataPlane::classify(const Fleet& fleet) {
  const std::size_t k = lattice_.num_decisions();
  if (ws_.cls.size() < fleet.size()) ws_.cls.resize(fleet.size());
  for (std::size_t v = 0; v < fleet.size(); ++v) {
    const core::DecisionId c = fleet.claimed(v);
    AVCP_EXPECT(c < k);
    ws_.cls[v] = c;
  }
}

template <typename Fleet>
void EdgeServerDataPlane::run_round_exact(const Fleet& fleet,
                                          double sharing_ratio,
                                          const CellFaultMask& mask,
                                          const ItemSet& server_items,
                                          RoundOutcome& out) {
  const std::size_t n = fleet.size();
  const std::size_t k = lattice_.num_decisions();

  // Distribution phase (step 5): b's upload reaches a with probability x
  // iff a's decision shares at least b's sensor types. A delivery lost on
  // the downlink drops after acceptance: the Bernoulli draw is consumed
  // either way, so a clean run and a delivery-loss run share the upload
  // phase bit-for-bit. See the draw-order contract in data_plane.h: one
  // draw per readable ordered pair, regardless of upload contents.
  ItemSet& received = ws_.received;
  for (std::size_t a = 0; a < n; ++a) {
    // Gather all accepted uploads first, then sort/deduplicate once — a
    // per-sender set_union would make large cells quadratic in fleet size.
    // Access control runs on *claimed* decisions: the server cannot verify
    // what a vehicle withholds, only what it declares. A quarantined
    // receiver is served nothing (and consumes no distribution draws;
    // revocation only ever happens on the already-perturbed Byzantine
    // path, so the clean path's RNG stream is untouched).
    const std::span<const ItemId> collected = fleet.collected(a);
    const std::span<const ItemId> desired = fleet.desired(a);
    AVCP_EXPECT(is_sorted_unique(collected));
    received.clear();
    received.insert(received.end(), collected.begin(), collected.end());
    received.insert(received.end(), server_items.begin(), server_items.end());
    if (fleet.revoked(a)) {
      sort_unique(received);
      if (!desired.empty()) {
        out.utility[a] = measured_utility(universe_, received, desired);
      }
      continue;
    }
    const std::size_t row = ws_.cls[a] * k;
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      if (readable_[row + ws_.cls[b]] == 0) continue;
      if (!rng_.bernoulli(sharing_ratio)) continue;
      const std::span<const ItemId> up = upload(b);
      // Empty upload: the draw above is already consumed (contract), so
      // the loss probe, delivery bookkeeping, and append can be skipped
      // without perturbing the stream.
      if (up.empty()) continue;
      if (!mask.delivery_lost.empty() && mask.delivery_lost[a * n + b]) {
        out.deliveries_lost += up.size();
        continue;
      }
      out.deliveries += up.size();
      received.insert(received.end(), up.begin(), up.end());
    }
    sort_unique(received);
    if (!desired.empty()) {
      out.utility[a] = measured_utility(universe_, received, desired);
    } else {
      out.utility[a] = 0.0;  // nothing desired: utility trivially zero
    }
  }
}

void EdgeServerDataPlane::build_composition_table(std::size_t num_senders) {
  const std::size_t k = lattice_.num_decisions();
  const std::size_t omega = universe_.size();
  ws_.class_senders.assign(k, 0);
  ws_.class_items.assign(k, 0);
  ws_.item_count.assign(k * omega, 0);
  for (std::size_t b = 0; b < num_senders; ++b) {
    const std::span<const ItemId> up = upload(b);
    if (up.empty()) continue;
    const core::DecisionId l = ws_.cls[b];
    ++ws_.class_senders[l];
    ws_.class_items[l] += up.size();
    std::uint32_t* row = ws_.item_count.data() + l * omega;
    for (const ItemId id : up) ++row[id];
  }
  ws_.recv_count.assign(k * omega, 0);
  for (core::DecisionId r = 0; r < k; ++r) {
    std::uint32_t* dst = ws_.recv_count.data() + r * omega;
    for (core::DecisionId l = 0; l < k; ++l) {
      if (readable_[r * k + l] == 0 || ws_.class_items[l] == 0) continue;
      const std::uint32_t* src = ws_.item_count.data() + l * omega;
      // Exact integer merge of the class's per-item upload counts into
      // the receiver row — SIMD-safe, no FP involved.
      simd::add_u32(dst, src, omega);
    }
  }
}

void EdgeServerDataPlane::build_miss_pow(double sharing_ratio) {
  const double q = 1.0 - sharing_ratio;
  ws_.miss_pow.assign(kMissPowCache, 1.0);
  for (std::size_t c = 1; c < kMissPowCache; ++c) {
    ws_.miss_pow[c] = ws_.miss_pow[c - 1] * q;
  }
}

void EdgeServerDataPlane::build_miss_table(double sharing_ratio) {
  const std::size_t k = lattice_.num_decisions();
  const std::size_t omega = universe_.size();
  ws_.miss_table.resize(k * omega);
  for (std::size_t i = 0; i < k * omega; ++i) {
    ws_.miss_table[i] = item_miss_prob(sharing_ratio, ws_.recv_count[i]);
  }
}

double EdgeServerDataPlane::item_miss_prob(double sharing_ratio,
                                           std::uint32_t c) const {
  if (c < kMissPowCache) return ws_.miss_pow[c];
  return std::pow(1.0 - sharing_ratio, static_cast<double>(c));
}

// The class-aggregated kernel. Uploads, privacy, and exposure are computed
// exactly as in the pairwise kernel (shared upload phase). Distribution is
// collapsed onto the CompositionTable:
//
//  - deliveries: the number of class-l senders serving receiver a is
//    Binomial(n_l, x) (independent Bernoulli(x) per sender); the delivered
//    item count is approximated by m * (U_l / n_l) — exact in expectation
//    (x * U_l), the per-sender size spread is averaged out.
//  - received items: a candidate desired item carried by c readable uploads
//    is received with probability 1 - (1-x)^c, matching the pairwise
//    marginal exactly; cross-item correlation (items travelling together in
//    one sender's upload) is dropped, which is why the aggregated kernel is
//    exact in the mean and in every per-item marginal but only approximate
//    in higher moments (and fully exact at x = 0 and x = 1, or when every
//    upload carries at most one item). See DESIGN.md §11.
//
// Self-delivery needs no correction on the utility side: a receiver's own
// upload is a subset of its collected set, and collected items are already
// excluded from the candidate walk.
template <typename Fleet>
void EdgeServerDataPlane::run_round_class_aggregated(
    const Fleet& fleet, double sharing_ratio, const CellFaultMask& mask,
    const ItemSet& server_items, RoundOutcome& out) {
  (void)mask;  // upload losses were applied in the shared upload phase
  const std::size_t n = fleet.size();
  const std::size_t k = lattice_.num_decisions();
  const std::size_t omega = universe_.size();
  build_composition_table(n);
  build_miss_pow(sharing_ratio);
  const bool use_table = n >= kMissTableMinFleet;
  if (use_table) build_miss_table(sharing_ratio);

  double deliveries_acc = 0.0;
  for (std::size_t a = 0; a < n; ++a) {
    const std::span<const ItemId> collected = fleet.collected(a);
    const std::span<const ItemId> desired = fleet.desired(a);
    const bool revoked = fleet.revoked(a);
    AVCP_EXPECT(is_sorted_unique(collected));
    AVCP_EXPECT(is_sorted_unique(desired));
    const core::DecisionId cls_a = ws_.cls[a];

    // Deliveries: one Binomial(n_l, x) draw per readable sender class, in
    // ascending class order (the aggregated draw-order contract). A
    // revoked receiver is served nothing and consumes no draws.
    if (!revoked) {
      const std::size_t my_upload = upload(a).size();
      for (core::DecisionId l = 0; l < k; ++l) {
        if (readable_[cls_a * k + l] == 0) continue;
        std::uint32_t senders = ws_.class_senders[l];
        std::size_t pool = ws_.class_items[l];
        if (l == cls_a && my_upload > 0) {
          --senders;
          pool -= my_upload;
        }
        if (senders == 0 || pool == 0) continue;
        const std::uint64_t m = rng_.binomial(senders, sharing_ratio);
        deliveries_acc += static_cast<double>(m) *
                          (static_cast<double>(pool) /
                           static_cast<double>(senders));
      }
    }

    // Utility: walk the desired set once (ascending), folding in the
    // deterministic part (own collection and server items) and one
    // Bernoulli per remaining candidate item with inclusion probability
    // 1 - (1-x)^c. Summation order matches the exact kernel (ascending
    // item ids, one accumulator).
    if (desired.empty()) {
      out.utility[a] = 0.0;
      continue;
    }
    const std::uint32_t* counts = ws_.recv_count.data() + cls_a * omega;
    const double* miss_row =
        use_table ? ws_.miss_table.data() + cls_a * omega : nullptr;
    double num = 0.0;
    double den = 0.0;
    std::size_t pc = 0;  // cursor into collected
    std::size_t ps = 0;  // cursor into server_items
    for (const ItemId d : desired) {
      const double w = universe_.item(d).utility_weight;
      den += w;
      while (pc < collected.size() && collected[pc] < d) ++pc;
      while (ps < server_items.size() && server_items[ps] < d) ++ps;
      const bool held = (pc < collected.size() && collected[pc] == d) ||
                        (ps < server_items.size() && server_items[ps] == d);
      if (held) {
        num += w;
        continue;
      }
      if (revoked) continue;
      const std::uint32_t c = counts[d];
      if (c == 0) continue;
      const double miss =
          miss_row ? miss_row[d] : item_miss_prob(sharing_ratio, c);
      // bernoulli short-circuits at p <= 0 and p >= 1 (x = 1 with c >= 1
      // is deterministic delivery, exactly like the pairwise kernel).
      if (rng_.bernoulli(1.0 - miss)) num += w;
    }
    AVCP_ENSURE(den > 0.0);
    out.utility[a] = num / den;
  }
  out.deliveries = static_cast<std::size_t>(std::llround(deliveries_acc));
}

EdgeServerDataPlane::DirectionalOutcome EdgeServerDataPlane::run_directional(
    std::span<const Vehicle> senders, std::span<const Vehicle> receivers,
    double sharing_ratio, DataPlaneMode mode) {
  DirectionalOutcome out;
  run_directional_into(senders, receivers, sharing_ratio, mode, out);
  return out;
}

void EdgeServerDataPlane::run_directional_into(
    std::span<const Vehicle> senders, std::span<const Vehicle> receivers,
    double sharing_ratio, DataPlaneMode mode, DirectionalOutcome& out) {
  run_directional_generic(AosFleet{senders}, AosFleet{receivers},
                          sharing_ratio, mode, out);
}

void EdgeServerDataPlane::run_directional_into(const FleetView& senders,
                                               const FleetView& receivers,
                                               double sharing_ratio,
                                               DataPlaneMode mode,
                                               DirectionalOutcome& out) {
  run_directional_generic(SoaFleet{senders}, SoaFleet{receivers},
                          sharing_ratio, mode, out);
}

template <typename SenderFleet, typename ReceiverFleet>
void EdgeServerDataPlane::run_directional_generic(const SenderFleet& senders,
                                                  const ReceiverFleet& receivers,
                                                  double sharing_ratio,
                                                  DataPlaneMode mode,
                                                  DirectionalOutcome& out) {
  AVCP_EXPECT(sharing_ratio >= 0.0 && sharing_ratio <= 1.0);
  refresh_item_bits();
  out.marginal_utility.assign(receivers.size(), 0.0);
  out.deliveries = 0;

  const std::size_t ns = senders.size();
  ws_.upload_data.clear();
  if (ws_.upload_end.size() < ns) ws_.upload_end.resize(ns);
  for (std::size_t b = 0; b < ns; ++b) {
    append_shared(senders.decision(b), senders.collected(b), ws_.upload_data);
    ws_.upload_end[b] = static_cast<std::uint32_t>(ws_.upload_data.size());
  }
  classify(senders);

  if (mode == DataPlaneMode::kClassAggregated) {
    run_directional_class_aggregated(senders, receivers, sharing_ratio, out);
    return;
  }
  run_directional_exact(senders, receivers, sharing_ratio, out);
}

template <typename SenderFleet, typename ReceiverFleet>
void EdgeServerDataPlane::run_directional_exact(const SenderFleet& senders,
                                                const ReceiverFleet& receivers,
                                                double sharing_ratio,
                                                DirectionalOutcome& out) {
  const std::size_t k = lattice_.num_decisions();
  ItemSet& received = ws_.received;
  for (std::size_t a = 0; a < receivers.size(); ++a) {
    if (receivers.revoked(a)) continue;
    const std::span<const ItemId> collected = receivers.collected(a);
    const std::span<const ItemId> desired = receivers.desired(a);
    AVCP_EXPECT(is_sorted_unique(collected));
    const core::DecisionId cls_r = receivers.claimed(a);
    AVCP_EXPECT(cls_r < k);
    received.clear();
    for (std::size_t b = 0; b < senders.size(); ++b) {
      if (readable_[cls_r * k + ws_.cls[b]] == 0) continue;
      if (!rng_.bernoulli(sharing_ratio)) continue;
      const std::span<const ItemId> up = upload(b);
      if (up.empty()) continue;  // draw already consumed (contract)
      out.deliveries += up.size();
      received.insert(received.end(), up.begin(), up.end());
    }
    sort_unique(received);
    ws_.scratch.clear();
    std::set_difference(received.begin(), received.end(), collected.begin(),
                        collected.end(), std::back_inserter(ws_.scratch));
    if (!ws_.scratch.empty() && !desired.empty()) {
      out.marginal_utility[a] =
          measured_utility(universe_, ws_.scratch, desired);
    }
  }
}

template <typename SenderFleet, typename ReceiverFleet>
void EdgeServerDataPlane::run_directional_class_aggregated(
    const SenderFleet& senders, const ReceiverFleet& receivers,
    double sharing_ratio, DirectionalOutcome& out) {
  const std::size_t k = lattice_.num_decisions();
  const std::size_t omega = universe_.size();
  build_composition_table(senders.size());
  build_miss_pow(sharing_ratio);
  const bool use_table = receivers.size() >= kMissTableMinFleet;
  if (use_table) build_miss_table(sharing_ratio);

  double deliveries_acc = 0.0;
  for (std::size_t a = 0; a < receivers.size(); ++a) {
    if (receivers.revoked(a)) continue;
    const std::span<const ItemId> collected = receivers.collected(a);
    const std::span<const ItemId> desired = receivers.desired(a);
    AVCP_EXPECT(is_sorted_unique(collected));
    AVCP_EXPECT(is_sorted_unique(desired));
    const core::DecisionId cls_r = receivers.claimed(a);
    AVCP_EXPECT(cls_r < k);

    // Senders are a foreign fleet: no self-exclusion applies.
    for (core::DecisionId l = 0; l < k; ++l) {
      if (readable_[cls_r * k + l] == 0) continue;
      const std::uint32_t n_l = ws_.class_senders[l];
      const std::size_t pool = ws_.class_items[l];
      if (n_l == 0 || pool == 0) continue;
      const std::uint64_t m = rng_.binomial(n_l, sharing_ratio);
      deliveries_acc += static_cast<double>(m) *
                        (static_cast<double>(pool) / static_cast<double>(n_l));
    }

    if (desired.empty()) continue;
    const std::uint32_t* counts = ws_.recv_count.data() + cls_r * omega;
    const double* miss_row =
        use_table ? ws_.miss_table.data() + cls_r * omega : nullptr;
    double num = 0.0;
    double den = 0.0;
    std::size_t pc = 0;
    for (const ItemId d : desired) {
      const double w = universe_.item(d).utility_weight;
      den += w;
      while (pc < collected.size() && collected[pc] < d) ++pc;
      if (pc < collected.size() && collected[pc] == d) {
        continue;  // marginal utility: already-held items excluded
      }
      const std::uint32_t c = counts[d];
      if (c == 0) continue;
      const double miss =
          miss_row ? miss_row[d] : item_miss_prob(sharing_ratio, c);
      if (rng_.bernoulli(1.0 - miss)) num += w;
    }
    AVCP_ENSURE(den > 0.0);
    out.marginal_utility[a] = num / den;
  }
  out.deliveries = static_cast<std::size_t>(std::llround(deliveries_acc));
}

}  // namespace avcp::perception
