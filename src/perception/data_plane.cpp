#include "perception/data_plane.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/simd.h"
#include "common/stats.h"

namespace avcp::perception {

namespace {

constexpr std::size_t kMissPowCache = 64;

/// Normalised utility measure evaluated in place: weight(s ∩ desired) /
/// weight(desired), both sums taken in ascending item order — the exact
/// floating-point summation order of UtilityMeasure, without its per-call
/// desired-set copy (the per-receiver heap allocation the workspaces
/// eliminate). `desired` must be non-empty.
double measured_utility(const DataUniverse& universe, const ItemSet& s,
                        const ItemSet& desired) {
  double den = 0.0;
  for (const ItemId id : desired) den += universe.item(id).utility_weight;
  AVCP_ENSURE(den > 0.0);
  double num = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < s.size() && j < desired.size()) {
    if (s[i] < desired[j]) {
      ++i;
    } else if (desired[j] < s[i]) {
      ++j;
    } else {
      num += universe.item(s[i]).utility_weight;
      ++i;
      ++j;
    }
  }
  return num / den;
}

void sort_unique(ItemSet& s) {
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
}

}  // namespace

double RoundOutcome::mean_utility() const {
  return mean(std::span<const double>(utility));
}

double RoundOutcome::mean_privacy() const {
  return mean(std::span<const double>(privacy));
}

EdgeServerDataPlane::EdgeServerDataPlane(const core::DecisionLattice& lattice,
                                         const DataUniverse& universe,
                                         core::AccessRule access,
                                         std::uint64_t seed)
    : lattice_(lattice), universe_(universe), access_(access), rng_(seed) {
  AVCP_EXPECT(universe.num_sensors() == lattice.num_sensors());
  const std::size_t k = lattice.num_decisions();
  readable_.resize(k * k);
  for (core::DecisionId a = 0; a < k; ++a) {
    for (core::DecisionId b = 0; b < k; ++b) {
      readable_[a * k + b] = access == core::AccessRule::kSubsetOrEqual
                                 ? lattice.preceq(a, b)
                                 : lattice.precedes(a, b);
    }
  }
  decision_masks_.resize(k);
  for (core::DecisionId d = 0; d < k; ++d) decision_masks_[d] = lattice.mask(d);
  refresh_item_bits();
}

void EdgeServerDataPlane::refresh_item_bits() {
  // The universe may gain items after the plane is built; extend the cache
  // lazily (ids are append-only).
  while (item_bits_.size() < universe_.size()) {
    const auto id = static_cast<ItemId>(item_bits_.size());
    item_bits_.push_back(lattice_.sensor_bit(universe_.item(id).sensor));
  }
}

void EdgeServerDataPlane::append_shared(const Vehicle& v, ItemSet& out) const {
  AVCP_EXPECT(v.decision < lattice_.num_decisions());
  AVCP_EXPECT(is_sorted_unique(v.collected));
  const core::SensorMask dmask = decision_masks_[v.decision];
  for (const ItemId id : v.collected) {
    AVCP_EXPECT(id < item_bits_.size());
    if ((dmask & item_bits_[id]) != 0) out.push_back(id);
  }
}

ItemSet EdgeServerDataPlane::shared_items(const Vehicle& v) const {
  const_cast<EdgeServerDataPlane*>(this)->refresh_item_bits();
  ItemSet shared;
  append_shared(v, shared);
  return shared;
}

RoundOutcome EdgeServerDataPlane::run_round(std::span<const Vehicle> vehicles,
                                            double sharing_ratio) {
  return run_round_with_server(vehicles, sharing_ratio, ItemSet{});
}

RoundOutcome EdgeServerDataPlane::run_round_with_server(
    std::span<const Vehicle> vehicles, double sharing_ratio,
    const ItemSet& server_items) {
  return run_round_degraded(vehicles, sharing_ratio, CellFaultMask{},
                            server_items);
}

RoundOutcome EdgeServerDataPlane::run_round_degraded(
    std::span<const Vehicle> vehicles, double sharing_ratio,
    const CellFaultMask& mask, const ItemSet& server_items) {
  RoundOutcome out;
  run_round_into(vehicles, sharing_ratio, mask, server_items,
                 DataPlaneMode::kPairwiseExact, out);
  return out;
}

RoundOutcome EdgeServerDataPlane::run_round_aggregated(
    std::span<const Vehicle> vehicles, double sharing_ratio,
    const CellFaultMask& mask, const ItemSet& server_items) {
  RoundOutcome out;
  run_round_into(vehicles, sharing_ratio, mask, server_items,
                 DataPlaneMode::kClassAggregated, out);
  return out;
}

void EdgeServerDataPlane::run_round_into(std::span<const Vehicle> vehicles,
                                         double sharing_ratio,
                                         const CellFaultMask& mask,
                                         const ItemSet& server_items,
                                         DataPlaneMode mode, RoundOutcome& out) {
  AVCP_EXPECT(sharing_ratio >= 0.0 && sharing_ratio <= 1.0);
  AVCP_EXPECT(is_sorted_unique(server_items));
  const std::size_t n = vehicles.size();
  AVCP_EXPECT(mask.upload_lost.empty() || mask.upload_lost.size() == n);
  refresh_item_bits();

  out.utility.assign(n, 0.0);
  out.privacy.assign(n, 0.0);
  out.exposed_items = 0;
  out.exposed_privacy = 0.0;
  out.deliveries = 0;
  out.uploads_lost = 0;
  out.deliveries_lost = 0;

  // Upload phase (framework step 4): decision-filtered collected data. A
  // lost upload never reaches the server: it shrinks the pool, is invisible
  // to the eavesdropper, and costs its vehicle no privacy.
  // A quarantined vehicle's upload is accepted, exposed, and redistributed
  // like any other: items are raw sensor readings the server can verify,
  // while quarantine distrusts the vehicle's self-declared *report* and
  // punishes it on the receive side only. Impounding the uploads too would
  // let a telemetry liar's (perfectly good) data vanish from the pool —
  // at high attacker fractions that starves honest receivers and collapses
  // the sharing equilibrium the controller is holding. Keeping the upload
  // also keeps its mass observable to the behavioural audit, so a falsely
  // flagged honest vehicle can rehabilitate. The phase is identical for
  // both kernels (it consumes no randomness).
  upload_phase(vehicles, mask, out);
  classify(vehicles);

  if (mode == DataPlaneMode::kClassAggregated) {
    AVCP_EXPECT(mask.delivery_lost.empty());
    run_round_class_aggregated(vehicles, sharing_ratio, mask, server_items,
                               out);
    return;
  }
  AVCP_EXPECT(mask.delivery_lost.empty() || mask.delivery_lost.size() == n * n);
  run_round_exact(vehicles, sharing_ratio, mask, server_items, out);
}

void EdgeServerDataPlane::upload_phase(std::span<const Vehicle> vehicles,
                                       const CellFaultMask& mask,
                                       RoundOutcome& out) {
  const std::size_t n = vehicles.size();
  if (ws_.uploads.size() < n) ws_.uploads.resize(n);
  ws_.server_view.clear();
  for (std::size_t a = 0; a < n; ++a) {
    ws_.uploads[a].clear();
    if (!mask.upload_lost.empty() && mask.upload_lost[a]) {
      ++out.uploads_lost;
      continue;
    }
    append_shared(vehicles[a], ws_.uploads[a]);
    ws_.server_view.insert(ws_.server_view.end(), ws_.uploads[a].begin(),
                           ws_.uploads[a].end());
    out.privacy[a] = privacy_cost(universe_, ws_.uploads[a]);
  }
  sort_unique(ws_.server_view);
  out.exposed_items = ws_.server_view.size();
  out.exposed_privacy = privacy_cost(universe_, ws_.server_view);
}

void EdgeServerDataPlane::classify(std::span<const Vehicle> vehicles) {
  const std::size_t k = lattice_.num_decisions();
  if (ws_.cls.size() < vehicles.size()) ws_.cls.resize(vehicles.size());
  for (std::size_t v = 0; v < vehicles.size(); ++v) {
    const core::DecisionId c = vehicles[v].claimed();
    AVCP_EXPECT(c < k);
    ws_.cls[v] = c;
  }
}

void EdgeServerDataPlane::run_round_exact(std::span<const Vehicle> vehicles,
                                          double sharing_ratio,
                                          const CellFaultMask& mask,
                                          const ItemSet& server_items,
                                          RoundOutcome& out) {
  const std::size_t n = vehicles.size();
  const std::size_t k = lattice_.num_decisions();

  // Distribution phase (step 5): b's upload reaches a with probability x
  // iff a's decision shares at least b's sensor types. A delivery lost on
  // the downlink drops after acceptance: the Bernoulli draw is consumed
  // either way, so a clean run and a delivery-loss run share the upload
  // phase bit-for-bit. See the draw-order contract in data_plane.h: one
  // draw per readable ordered pair, regardless of upload contents.
  ItemSet& received = ws_.received;
  for (std::size_t a = 0; a < n; ++a) {
    // Gather all accepted uploads first, then sort/deduplicate once — a
    // per-sender set_union would make large cells quadratic in fleet size.
    // Access control runs on *claimed* decisions: the server cannot verify
    // what a vehicle withholds, only what it declares. A quarantined
    // receiver is served nothing (and consumes no distribution draws;
    // revocation only ever happens on the already-perturbed Byzantine
    // path, so the clean path's RNG stream is untouched).
    AVCP_EXPECT(is_sorted_unique(vehicles[a].collected));
    received.clear();
    received.insert(received.end(), vehicles[a].collected.begin(),
                    vehicles[a].collected.end());
    received.insert(received.end(), server_items.begin(), server_items.end());
    if (vehicles[a].revoked) {
      sort_unique(received);
      if (!vehicles[a].desired.empty()) {
        out.utility[a] = measured_utility(universe_, received,
                                          vehicles[a].desired);
      }
      continue;
    }
    const std::size_t row = ws_.cls[a] * k;
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      if (readable_[row + ws_.cls[b]] == 0) continue;
      if (!rng_.bernoulli(sharing_ratio)) continue;
      const ItemSet& up = ws_.uploads[b];
      // Empty upload: the draw above is already consumed (contract), so
      // the loss probe, delivery bookkeeping, and append can be skipped
      // without perturbing the stream.
      if (up.empty()) continue;
      if (!mask.delivery_lost.empty() && mask.delivery_lost[a * n + b]) {
        out.deliveries_lost += up.size();
        continue;
      }
      out.deliveries += up.size();
      received.insert(received.end(), up.begin(), up.end());
    }
    sort_unique(received);
    if (!vehicles[a].desired.empty()) {
      out.utility[a] = measured_utility(universe_, received,
                                        vehicles[a].desired);
    } else {
      out.utility[a] = 0.0;  // nothing desired: utility trivially zero
    }
  }
}

void EdgeServerDataPlane::build_composition_table(std::size_t num_senders) {
  const std::size_t k = lattice_.num_decisions();
  const std::size_t omega = universe_.size();
  ws_.class_senders.assign(k, 0);
  ws_.class_items.assign(k, 0);
  ws_.item_count.assign(k * omega, 0);
  for (std::size_t b = 0; b < num_senders; ++b) {
    const ItemSet& up = ws_.uploads[b];
    if (up.empty()) continue;
    const core::DecisionId l = ws_.cls[b];
    ++ws_.class_senders[l];
    ws_.class_items[l] += up.size();
    std::uint32_t* row = ws_.item_count.data() + l * omega;
    for (const ItemId id : up) ++row[id];
  }
  ws_.recv_count.assign(k * omega, 0);
  for (core::DecisionId r = 0; r < k; ++r) {
    std::uint32_t* dst = ws_.recv_count.data() + r * omega;
    for (core::DecisionId l = 0; l < k; ++l) {
      if (readable_[r * k + l] == 0 || ws_.class_items[l] == 0) continue;
      const std::uint32_t* src = ws_.item_count.data() + l * omega;
      // Exact integer merge of the class's per-item upload counts into
      // the receiver row — SIMD-safe, no FP involved.
      simd::add_u32(dst, src, omega);
    }
  }
}

void EdgeServerDataPlane::build_miss_pow(double sharing_ratio) {
  const double q = 1.0 - sharing_ratio;
  ws_.miss_pow.assign(kMissPowCache, 1.0);
  for (std::size_t c = 1; c < kMissPowCache; ++c) {
    ws_.miss_pow[c] = ws_.miss_pow[c - 1] * q;
  }
}

double EdgeServerDataPlane::item_miss_prob(double sharing_ratio,
                                           std::uint32_t c) const {
  if (c < kMissPowCache) return ws_.miss_pow[c];
  return std::pow(1.0 - sharing_ratio, static_cast<double>(c));
}

// The class-aggregated kernel. Uploads, privacy, and exposure are computed
// exactly as in the pairwise kernel (shared upload phase). Distribution is
// collapsed onto the CompositionTable:
//
//  - deliveries: the number of class-l senders serving receiver a is
//    Binomial(n_l, x) (independent Bernoulli(x) per sender); the delivered
//    item count is approximated by m * (U_l / n_l) — exact in expectation
//    (x * U_l), the per-sender size spread is averaged out.
//  - received items: a candidate desired item carried by c readable uploads
//    is received with probability 1 - (1-x)^c, matching the pairwise
//    marginal exactly; cross-item correlation (items travelling together in
//    one sender's upload) is dropped, which is why the aggregated kernel is
//    exact in the mean and in every per-item marginal but only approximate
//    in higher moments (and fully exact at x = 0 and x = 1, or when every
//    upload carries at most one item). See DESIGN.md §11.
//
// Self-delivery needs no correction on the utility side: a receiver's own
// upload is a subset of its collected set, and collected items are already
// excluded from the candidate walk.
void EdgeServerDataPlane::run_round_class_aggregated(
    std::span<const Vehicle> vehicles, double sharing_ratio,
    const CellFaultMask& mask, const ItemSet& server_items, RoundOutcome& out) {
  (void)mask;  // upload losses were applied in the shared upload phase
  const std::size_t n = vehicles.size();
  const std::size_t k = lattice_.num_decisions();
  const std::size_t omega = universe_.size();
  build_composition_table(n);
  build_miss_pow(sharing_ratio);

  double deliveries_acc = 0.0;
  for (std::size_t a = 0; a < n; ++a) {
    const Vehicle& recv = vehicles[a];
    AVCP_EXPECT(is_sorted_unique(recv.collected));
    AVCP_EXPECT(is_sorted_unique(recv.desired));
    const core::DecisionId cls_a = ws_.cls[a];

    // Deliveries: one Binomial(n_l, x) draw per readable sender class, in
    // ascending class order (the aggregated draw-order contract). A
    // revoked receiver is served nothing and consumes no draws.
    if (!recv.revoked) {
      const std::size_t my_upload = ws_.uploads[a].size();
      for (core::DecisionId l = 0; l < k; ++l) {
        if (readable_[cls_a * k + l] == 0) continue;
        std::uint32_t senders = ws_.class_senders[l];
        std::size_t pool = ws_.class_items[l];
        if (l == cls_a && my_upload > 0) {
          --senders;
          pool -= my_upload;
        }
        if (senders == 0 || pool == 0) continue;
        const std::uint64_t m = rng_.binomial(senders, sharing_ratio);
        deliveries_acc += static_cast<double>(m) *
                          (static_cast<double>(pool) /
                           static_cast<double>(senders));
      }
    }

    // Utility: walk the desired set once (ascending), folding in the
    // deterministic part (own collection and server items) and one
    // Bernoulli per remaining candidate item with inclusion probability
    // 1 - (1-x)^c. Summation order matches the exact kernel (ascending
    // item ids, one accumulator).
    if (recv.desired.empty()) {
      out.utility[a] = 0.0;
      continue;
    }
    const std::uint32_t* counts = ws_.recv_count.data() + cls_a * omega;
    double num = 0.0;
    double den = 0.0;
    std::size_t pc = 0;  // cursor into recv.collected
    std::size_t ps = 0;  // cursor into server_items
    for (const ItemId d : recv.desired) {
      const double w = universe_.item(d).utility_weight;
      den += w;
      while (pc < recv.collected.size() && recv.collected[pc] < d) ++pc;
      while (ps < server_items.size() && server_items[ps] < d) ++ps;
      const bool held =
          (pc < recv.collected.size() && recv.collected[pc] == d) ||
          (ps < server_items.size() && server_items[ps] == d);
      if (held) {
        num += w;
        continue;
      }
      if (recv.revoked) continue;
      const std::uint32_t c = counts[d];
      if (c == 0) continue;
      // bernoulli short-circuits at p <= 0 and p >= 1 (x = 1 with c >= 1
      // is deterministic delivery, exactly like the pairwise kernel).
      if (rng_.bernoulli(1.0 - item_miss_prob(sharing_ratio, c))) num += w;
    }
    AVCP_ENSURE(den > 0.0);
    out.utility[a] = num / den;
  }
  out.deliveries = static_cast<std::size_t>(std::llround(deliveries_acc));
}

EdgeServerDataPlane::DirectionalOutcome EdgeServerDataPlane::run_directional(
    std::span<const Vehicle> senders, std::span<const Vehicle> receivers,
    double sharing_ratio, DataPlaneMode mode) {
  DirectionalOutcome out;
  run_directional_into(senders, receivers, sharing_ratio, mode, out);
  return out;
}

void EdgeServerDataPlane::run_directional_into(
    std::span<const Vehicle> senders, std::span<const Vehicle> receivers,
    double sharing_ratio, DataPlaneMode mode, DirectionalOutcome& out) {
  AVCP_EXPECT(sharing_ratio >= 0.0 && sharing_ratio <= 1.0);
  refresh_item_bits();
  out.marginal_utility.assign(receivers.size(), 0.0);
  out.deliveries = 0;

  const std::size_t ns = senders.size();
  if (ws_.uploads.size() < ns) ws_.uploads.resize(ns);
  for (std::size_t b = 0; b < ns; ++b) {
    ws_.uploads[b].clear();
    append_shared(senders[b], ws_.uploads[b]);
  }
  classify(senders);

  if (mode == DataPlaneMode::kClassAggregated) {
    run_directional_class_aggregated(senders, receivers, sharing_ratio, out);
    return;
  }
  run_directional_exact(senders, receivers, sharing_ratio, out);
}

void EdgeServerDataPlane::run_directional_exact(
    std::span<const Vehicle> senders, std::span<const Vehicle> receivers,
    double sharing_ratio, DirectionalOutcome& out) {
  const std::size_t k = lattice_.num_decisions();
  ItemSet& received = ws_.received;
  for (std::size_t a = 0; a < receivers.size(); ++a) {
    const Vehicle& receiver = receivers[a];
    if (receiver.revoked) continue;
    AVCP_EXPECT(is_sorted_unique(receiver.collected));
    const core::DecisionId cls_r = receiver.claimed();
    AVCP_EXPECT(cls_r < k);
    received.clear();
    for (std::size_t b = 0; b < senders.size(); ++b) {
      if (readable_[cls_r * k + ws_.cls[b]] == 0) continue;
      if (!rng_.bernoulli(sharing_ratio)) continue;
      const ItemSet& up = ws_.uploads[b];
      if (up.empty()) continue;  // draw already consumed (contract)
      out.deliveries += up.size();
      received.insert(received.end(), up.begin(), up.end());
    }
    sort_unique(received);
    ws_.scratch.clear();
    std::set_difference(received.begin(), received.end(),
                        receiver.collected.begin(), receiver.collected.end(),
                        std::back_inserter(ws_.scratch));
    if (!ws_.scratch.empty() && !receiver.desired.empty()) {
      out.marginal_utility[a] =
          measured_utility(universe_, ws_.scratch, receiver.desired);
    }
  }
}

void EdgeServerDataPlane::run_directional_class_aggregated(
    std::span<const Vehicle> senders, std::span<const Vehicle> receivers,
    double sharing_ratio, DirectionalOutcome& out) {
  const std::size_t k = lattice_.num_decisions();
  const std::size_t omega = universe_.size();
  build_composition_table(senders.size());
  build_miss_pow(sharing_ratio);

  double deliveries_acc = 0.0;
  for (std::size_t a = 0; a < receivers.size(); ++a) {
    const Vehicle& recv = receivers[a];
    if (recv.revoked) continue;
    AVCP_EXPECT(is_sorted_unique(recv.collected));
    AVCP_EXPECT(is_sorted_unique(recv.desired));
    const core::DecisionId cls_r = recv.claimed();
    AVCP_EXPECT(cls_r < k);

    // Senders are a foreign fleet: no self-exclusion applies.
    for (core::DecisionId l = 0; l < k; ++l) {
      if (readable_[cls_r * k + l] == 0) continue;
      const std::uint32_t n_l = ws_.class_senders[l];
      const std::size_t pool = ws_.class_items[l];
      if (n_l == 0 || pool == 0) continue;
      const std::uint64_t m = rng_.binomial(n_l, sharing_ratio);
      deliveries_acc += static_cast<double>(m) *
                        (static_cast<double>(pool) / static_cast<double>(n_l));
    }

    if (recv.desired.empty()) continue;
    const std::uint32_t* counts = ws_.recv_count.data() + cls_r * omega;
    double num = 0.0;
    double den = 0.0;
    std::size_t pc = 0;
    for (const ItemId d : recv.desired) {
      const double w = universe_.item(d).utility_weight;
      den += w;
      while (pc < recv.collected.size() && recv.collected[pc] < d) ++pc;
      if (pc < recv.collected.size() && recv.collected[pc] == d) {
        continue;  // marginal utility: already-held items excluded
      }
      const std::uint32_t c = counts[d];
      if (c == 0) continue;
      if (rng_.bernoulli(1.0 - item_miss_prob(sharing_ratio, c))) num += w;
    }
    AVCP_ENSURE(den > 0.0);
    out.marginal_utility[a] = num / den;
  }
  out.deliveries = static_cast<std::size_t>(std::llround(deliveries_acc));
}

}  // namespace avcp::perception
