#include "perception/fleet_soa.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/serial.h"

namespace avcp::perception {

void FleetSoA::clear() noexcept {
  decision_.clear();
  claim_.clear();
  revoked_.clear();
  collected_.clear();
  desired_.clear();
  arena_.clear();
  fitness_.clear();
  reputation_.clear();
  open_ = OpenSet::kNone;
}

void FleetSoA::reset_items() noexcept {
  AVCP_EXPECT(open_ == OpenSet::kNone);
  arena_.clear();
  for (ItemSpan& s : collected_) s = ItemSpan{};
  for (ItemSpan& s : desired_) s = ItemSpan{};
}

void FleetSoA::reserve(std::size_t vehicles, std::size_t arena_items) {
  decision_.reserve(vehicles);
  claim_.reserve(vehicles);
  revoked_.reserve(vehicles);
  collected_.reserve(vehicles);
  desired_.reserve(vehicles);
  fitness_.reserve(vehicles);
  reputation_.reserve(vehicles);
  arena_.reserve(arena_items);
}

std::size_t FleetSoA::add(core::DecisionId decision, core::DecisionId claim,
                          bool revoked) {
  const std::size_t v = decision_.size();
  decision_.push_back(decision);
  claim_.push_back(claim);
  revoked_.push_back(revoked ? 1 : 0);
  collected_.push_back(ItemSpan{});
  desired_.push_back(ItemSpan{});
  fitness_.push_back(0.0);
  reputation_.push_back(0.0);
  return v;
}

std::size_t FleetSoA::add(core::DecisionId decision, core::DecisionId claim,
                          bool revoked, std::span<const ItemId> collected_items,
                          std::span<const ItemId> desired_items) {
  const std::size_t v = add(decision, claim, revoked);
  std::span<ItemId> c =
      alloc_collected(v, static_cast<std::uint32_t>(collected_items.size()));
  std::copy(collected_items.begin(), collected_items.end(), c.begin());
  std::span<ItemId> d =
      alloc_desired(v, static_cast<std::uint32_t>(desired_items.size()));
  std::copy(desired_items.begin(), desired_items.end(), d.begin());
  return v;
}

std::size_t FleetSoA::add(const FleetView& src, std::size_t v) {
  AVCP_EXPECT(v < src.size());
  return add(src.decision[v], src.claim[v], src.revoked[v] != 0,
             src.collected_of(v), src.desired_of(v));
}

std::span<ItemId> FleetSoA::alloc_collected(std::size_t v, std::uint32_t n) {
  AVCP_EXPECT(open_ == OpenSet::kNone && v < decision_.size());
  const std::size_t offset = arena_.size();
  arena_.resize(offset + n);
  collected_[v] = ItemSpan{static_cast<std::uint32_t>(offset), n};
  return {arena_.data() + offset, n};
}

std::span<ItemId> FleetSoA::alloc_desired(std::size_t v, std::uint32_t n) {
  AVCP_EXPECT(open_ == OpenSet::kNone && v < decision_.size());
  const std::size_t offset = arena_.size();
  arena_.resize(offset + n);
  desired_[v] = ItemSpan{static_cast<std::uint32_t>(offset), n};
  return {arena_.data() + offset, n};
}

void FleetSoA::begin_collected(std::size_t v) {
  AVCP_EXPECT(open_ == OpenSet::kNone && v < decision_.size());
  open_ = OpenSet::kCollected;
  open_vehicle_ = v;
  open_offset_ = arena_.size();
}

void FleetSoA::begin_desired(std::size_t v) {
  AVCP_EXPECT(open_ == OpenSet::kNone && v < decision_.size());
  open_ = OpenSet::kDesired;
  open_vehicle_ = v;
  open_offset_ = arena_.size();
}

void FleetSoA::end_set() {
  AVCP_EXPECT(open_ != OpenSet::kNone);
  const ItemSpan span{static_cast<std::uint32_t>(open_offset_),
                      static_cast<std::uint32_t>(arena_.size() - open_offset_)};
  if (open_ == OpenSet::kCollected) {
    collected_[open_vehicle_] = span;
  } else {
    desired_[open_vehicle_] = span;
  }
  open_ = OpenSet::kNone;
}

FleetView FleetSoA::view() const noexcept {
  return FleetView{decision_, claim_, revoked_, collected_, desired_, arena_};
}

void FleetSoA::count_classes(std::size_t k,
                             std::vector<std::uint32_t>& counts) const {
  counts.assign(k, 0);
  for (std::size_t v = 0; v < decision_.size(); ++v) {
    const core::DecisionId c =
        claim_[v] == kClaimFollowsDecision ? decision_[v] : claim_[v];
    AVCP_EXPECT(c < k);
    ++counts[c];
  }
}

void FleetSoA::save_state(Serializer& s) const {
  AVCP_EXPECT(open_ == OpenSet::kNone);
  put_u32_vec(s, decision_);
  put_u32_vec(s, claim_);
  put_u8_vec(s, revoked_);
  s.put_u64(collected_.size());
  for (const ItemSpan& span : collected_) {
    s.put_u32(span.offset);
    s.put_u32(span.length);
  }
  s.put_u64(desired_.size());
  for (const ItemSpan& span : desired_) {
    s.put_u32(span.offset);
    s.put_u32(span.length);
  }
  put_u32_vec(s, arena_);
  put_f64_vec(s, fitness_);
  put_f64_vec(s, reputation_);
}

void FleetSoA::load_state(Deserializer& d) {
  decision_ = get_u32_vec(d);
  claim_ = get_u32_vec(d);
  revoked_ = get_u8_vec(d);
  const std::size_t n = decision_.size();
  Deserializer::check(claim_.size() == n && revoked_.size() == n,
                      "FleetSoA snapshot: roster arrays disagree");
  auto load_spans = [&](std::vector<ItemSpan>& spans) {
    const std::uint64_t count = d.get_u64();
    Deserializer::check(count == n, "FleetSoA snapshot: span count mismatch");
    spans.clear();
    spans.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      ItemSpan span;
      span.offset = d.get_u32();
      span.length = d.get_u32();
      spans.push_back(span);
    }
  };
  load_spans(collected_);
  load_spans(desired_);
  arena_ = get_u32_vec(d);
  for (const ItemSpan& span : collected_) {
    Deserializer::check(
        static_cast<std::size_t>(span.offset) + span.length <= arena_.size(),
        "FleetSoA snapshot: collected span out of arena");
  }
  for (const ItemSpan& span : desired_) {
    Deserializer::check(
        static_cast<std::size_t>(span.offset) + span.length <= arena_.size(),
        "FleetSoA snapshot: desired span out of arena");
  }
  fitness_ = get_f64_vec(d);
  reputation_ = get_f64_vec(d);
  Deserializer::check(fitness_.size() == n && reputation_.size() == n,
                      "FleetSoA snapshot: hot arrays disagree");
  open_ = OpenSet::kNone;
}

}  // namespace avcp::perception
