#include "perception/fleet_soa.h"

#include <algorithm>

#include "common/contracts.h"

namespace avcp::perception {

void FleetSoA::clear() noexcept {
  decision_.clear();
  claim_.clear();
  revoked_.clear();
  collected_.clear();
  desired_.clear();
  arena_.clear();
  fitness_.clear();
  reputation_.clear();
  open_ = OpenSet::kNone;
}

void FleetSoA::reset_items() noexcept {
  AVCP_EXPECT(open_ == OpenSet::kNone);
  arena_.clear();
  for (ItemSpan& s : collected_) s = ItemSpan{};
  for (ItemSpan& s : desired_) s = ItemSpan{};
}

void FleetSoA::reserve(std::size_t vehicles, std::size_t arena_items) {
  decision_.reserve(vehicles);
  claim_.reserve(vehicles);
  revoked_.reserve(vehicles);
  collected_.reserve(vehicles);
  desired_.reserve(vehicles);
  fitness_.reserve(vehicles);
  reputation_.reserve(vehicles);
  arena_.reserve(arena_items);
}

std::size_t FleetSoA::add(core::DecisionId decision, core::DecisionId claim,
                          bool revoked) {
  const std::size_t v = decision_.size();
  decision_.push_back(decision);
  claim_.push_back(claim);
  revoked_.push_back(revoked ? 1 : 0);
  collected_.push_back(ItemSpan{});
  desired_.push_back(ItemSpan{});
  fitness_.push_back(0.0);
  reputation_.push_back(0.0);
  return v;
}

std::size_t FleetSoA::add(core::DecisionId decision, core::DecisionId claim,
                          bool revoked, std::span<const ItemId> collected_items,
                          std::span<const ItemId> desired_items) {
  const std::size_t v = add(decision, claim, revoked);
  std::span<ItemId> c =
      alloc_collected(v, static_cast<std::uint32_t>(collected_items.size()));
  std::copy(collected_items.begin(), collected_items.end(), c.begin());
  std::span<ItemId> d =
      alloc_desired(v, static_cast<std::uint32_t>(desired_items.size()));
  std::copy(desired_items.begin(), desired_items.end(), d.begin());
  return v;
}

std::size_t FleetSoA::add(const FleetView& src, std::size_t v) {
  AVCP_EXPECT(v < src.size());
  return add(src.decision[v], src.claim[v], src.revoked[v] != 0,
             src.collected_of(v), src.desired_of(v));
}

std::span<ItemId> FleetSoA::alloc_collected(std::size_t v, std::uint32_t n) {
  AVCP_EXPECT(open_ == OpenSet::kNone && v < decision_.size());
  const std::size_t offset = arena_.size();
  arena_.resize(offset + n);
  collected_[v] = ItemSpan{static_cast<std::uint32_t>(offset), n};
  return {arena_.data() + offset, n};
}

std::span<ItemId> FleetSoA::alloc_desired(std::size_t v, std::uint32_t n) {
  AVCP_EXPECT(open_ == OpenSet::kNone && v < decision_.size());
  const std::size_t offset = arena_.size();
  arena_.resize(offset + n);
  desired_[v] = ItemSpan{static_cast<std::uint32_t>(offset), n};
  return {arena_.data() + offset, n};
}

void FleetSoA::begin_collected(std::size_t v) {
  AVCP_EXPECT(open_ == OpenSet::kNone && v < decision_.size());
  open_ = OpenSet::kCollected;
  open_vehicle_ = v;
  open_offset_ = arena_.size();
}

void FleetSoA::begin_desired(std::size_t v) {
  AVCP_EXPECT(open_ == OpenSet::kNone && v < decision_.size());
  open_ = OpenSet::kDesired;
  open_vehicle_ = v;
  open_offset_ = arena_.size();
}

void FleetSoA::end_set() {
  AVCP_EXPECT(open_ != OpenSet::kNone);
  const ItemSpan span{static_cast<std::uint32_t>(open_offset_),
                      static_cast<std::uint32_t>(arena_.size() - open_offset_)};
  if (open_ == OpenSet::kCollected) {
    collected_[open_vehicle_] = span;
  } else {
    desired_[open_vehicle_] = span;
  }
  open_ = OpenSet::kNone;
}

FleetView FleetSoA::view() const noexcept {
  return FleetView{decision_, claim_, revoked_, collected_, desired_, arena_};
}

void FleetSoA::count_classes(std::size_t k,
                             std::vector<std::uint32_t>& counts) const {
  counts.assign(k, 0);
  for (std::size_t v = 0; v < decision_.size(); ++v) {
    const core::DecisionId c =
        claim_[v] == kClaimFollowsDecision ? decision_[v] : claim_[v];
    AVCP_EXPECT(c < k);
    ++counts[c];
  }
}

}  // namespace avcp::perception
