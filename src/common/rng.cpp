#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/contracts.h"
#include "common/serial.h"

namespace avcp {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(
    std::uint64_t seed, std::initializer_list<std::uint64_t> path) noexcept {
  std::uint64_t acc = seed;
  for (const std::uint64_t x : path) {
    acc ^= x;
    std::uint64_t state = acc;
    acc = splitmix64(state);
  }
  return acc;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire's unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sd) noexcept {
  return mean + sd * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

namespace {

#if defined(__GLIBC__) || defined(__APPLE__)
extern "C" double lgamma_r(double, int*);  // not declared under -std=c++20
#endif

/// glibc's lgamma writes the process-global `signgam`, a data race when the
/// parallel round engines sample binomials concurrently (caught by TSan).
/// Route through the reentrant lgamma_r where available; it computes the
/// identical value without the global side channel.
double lgamma_threadsafe(double x) noexcept {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

/// CDF inversion (Kachitvichyanukul & Schmeiser's BINV): walks the
/// probability recurrence from k = 0. Expected cost O(n * p); used when
/// n * p is small enough that the walk beats rejection.
std::uint64_t binomial_inversion(Rng& rng, std::uint64_t n, double p) noexcept {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  double r = std::pow(q, static_cast<double>(n));
  double u = rng.uniform();
  std::uint64_t k = 0;
  while (u > r) {
    u -= r;
    ++k;
    if (k > n) return n;  // floating-point tail guard
    r *= a / static_cast<double>(k) - s;
  }
  return k;
}

/// Hormann's BTRS transformed-rejection sampler (1993), the standard exact
/// binomial for n * p >= 10 (same algorithm family as NumPy / TensorFlow).
/// Requires p <= 1/2 (callers reduce by symmetry).
std::uint64_t binomial_btrs(Rng& rng, std::uint64_t n, double p) noexcept {
  const double nd = static_cast<double>(n);
  const double q = 1.0 - p;
  const double spq = std::sqrt(nd * p * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double lpq = std::log(p / q);
  const double m = std::floor((nd + 1.0) * p);
  const double h = lgamma_threadsafe(m + 1.0) + lgamma_threadsafe(nd - m + 1.0);
  for (;;) {
    const double u = rng.uniform() - 0.5;
    double v = rng.uniform();
    const double us = 0.5 - std::abs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kd);
    v = std::log(v * alpha / (a / (us * us) + b));
    if (v <= h - lgamma_threadsafe(kd + 1.0) - lgamma_threadsafe(nd - kd + 1.0) +
                 (kd - m) * lpq) {
      return static_cast<std::uint64_t>(kd);
    }
  }
}

}  // namespace

std::uint64_t Rng::binomial(std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - binomial(n, 1.0 - p);
  if (static_cast<double>(n) * p < 10.0) {
    return binomial_inversion(*this, n, p);
  }
  return binomial_btrs(*this, n, p);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  AVCP_EXPECT(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    AVCP_EXPECT(w >= 0.0);
    total += w;
  }
  AVCP_EXPECT(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept {
  return Rng((*this)());
}

void Rng::save_state(Serializer& s) const {
  for (const std::uint64_t word : state_) s.put_u64(word);
  s.put_f64(cached_normal_);
  s.put_bool(has_cached_normal_);
}

void Rng::load_state(Deserializer& d) {
  for (std::uint64_t& word : state_) word = d.get_u64();
  cached_normal_ = d.get_f64();
  has_cached_normal_ = d.get_bool();
}

}  // namespace avcp
