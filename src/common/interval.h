// Closed-interval arithmetic and interval sets.
//
// The FDS controller (core/fds.h) characterises, for every region, the set
// of admissible sharing ratios x_i in [0, 1] as an intersection of unions of
// intervals derived from affine inequalities (Eqs. (6)-(10) of the paper).
// This header provides the interval algebra those computations are built on.
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace avcp {

/// A closed interval [lo, hi]. An interval with lo > hi is empty.
struct Interval {
  double lo = 1.0;
  double hi = 0.0;  // default-constructed interval is empty

  /// The empty interval.
  static Interval empty_interval() noexcept { return Interval{1.0, 0.0}; }

  /// The single point {x}.
  static Interval point(double x) noexcept { return Interval{x, x}; }

  bool empty() const noexcept { return lo > hi; }
  double width() const noexcept { return empty() ? 0.0 : hi - lo; }
  bool contains(double x) const noexcept { return lo <= x && x <= hi; }

  /// Nearest point of the interval to x. Requires a non-empty interval.
  double nearest(double x) const noexcept;

  /// Intersection of two closed intervals (possibly empty).
  static Interval intersect(const Interval& a, const Interval& b) noexcept;

  /// True if the intervals overlap or touch (their union is an interval).
  static bool touches(const Interval& a, const Interval& b) noexcept;

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// A finite union of disjoint, sorted, non-empty closed intervals.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Singleton set containing one interval (ignored if empty).
  explicit IntervalSet(const Interval& iv);

  /// The whole-domain set [lo, hi].
  static IntervalSet whole(double lo, double hi);

  /// Inserts an interval, merging with any intervals it touches.
  void add(const Interval& iv);

  /// Union of two interval sets.
  static IntervalSet unite(const IntervalSet& a, const IntervalSet& b);

  /// Intersection of two interval sets.
  static IntervalSet intersect(const IntervalSet& a, const IntervalSet& b);

  bool empty() const noexcept { return parts_.empty(); }

  /// True if some interval of the set contains x (within tolerance tol).
  bool contains(double x, double tol = 0.0) const noexcept;

  /// The point of the set nearest to x; nullopt if the set is empty.
  std::optional<double> nearest(double x) const noexcept;

  /// Smallest / largest points of the set. Require a non-empty set.
  double min() const;
  double max() const;

  /// Total measure (sum of widths).
  double measure() const noexcept;

  std::span<const Interval> parts() const noexcept { return parts_; }

 private:
  std::vector<Interval> parts_;  // invariant: sorted, disjoint, non-empty
};

/// Solves a*x + b >= 0 for x within `domain`, returning the (possibly
/// empty) feasible sub-interval. `tol` absorbs floating-point noise when a
/// is effectively zero.
Interval solve_affine_ge(double a, double b, const Interval& domain,
                         double tol = 1e-12) noexcept;

/// Solves a*x + b <= 0 for x within `domain`.
Interval solve_affine_le(double a, double b, const Interval& domain,
                         double tol = 1e-12) noexcept;

}  // namespace avcp
