// ASCII heat-map rendering.
//
// The paper's Fig. 7(b)/(c) and Fig. 8(a)/(b) are spatial heat maps; the
// bench harnesses reproduce them as terminal-friendly ASCII grids so the
// "figure" can be inspected without a plotting stack.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace avcp {

/// A dense row-major grid of doubles with render helpers.
class HeatGrid {
 public:
  /// Creates a rows x cols grid filled with `fill`.
  HeatGrid(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Accumulates `v` into the cell covering normalised coordinates
  /// (u, v) in [0,1]^2; out-of-range points are clamped to the border.
  void splat(double u_norm, double v_norm, double value);

  /// Renders with a 10-level density ramp (" .:-=+*#%@"), min-max scaled.
  /// Row 0 is rendered at the bottom (map orientation: north up).
  std::string render_ascii() const;

  /// Renders integer labels 0..9 for categorical data (e.g. region ids
  /// mod 10); negative cells render as '.'.
  std::string render_labels() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> cells_;
};

}  // namespace avcp
