#include "common/heatmap.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace avcp {

HeatGrid::HeatGrid(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), cells_(rows * cols, fill) {
  AVCP_EXPECT(rows > 0 && cols > 0);
}

double& HeatGrid::at(std::size_t r, std::size_t c) {
  AVCP_EXPECT(r < rows_ && c < cols_);
  return cells_[r * cols_ + c];
}

double HeatGrid::at(std::size_t r, std::size_t c) const {
  AVCP_EXPECT(r < rows_ && c < cols_);
  return cells_[r * cols_ + c];
}

void HeatGrid::splat(double u_norm, double v_norm, double value) {
  const auto clamp_idx = [](double t, std::size_t n) {
    auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(n));
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(n) - 1);
    return static_cast<std::size_t>(idx);
  };
  cells_[clamp_idx(v_norm, rows_) * cols_ + clamp_idx(u_norm, cols_)] += value;
}

std::string HeatGrid::render_ascii() const {
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = 10;
  const auto [lo_it, hi_it] = std::minmax_element(cells_.begin(), cells_.end());
  const double lo = *lo_it;
  const double range = *hi_it - lo;
  std::string out;
  out.reserve((cols_ + 1) * rows_);
  for (std::size_t r = rows_; r-- > 0;) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const double v = cells_[r * cols_ + c];
      int level = 0;
      if (range > 0.0) {
        level = static_cast<int>((v - lo) / range * (kLevels - 1) + 0.5);
        level = std::clamp(level, 0, kLevels - 1);
      }
      out.push_back(kRamp[level]);
    }
    out.push_back('\n');
  }
  return out;
}

std::string HeatGrid::render_labels() const {
  std::string out;
  out.reserve((cols_ + 1) * rows_);
  for (std::size_t r = rows_; r-- > 0;) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const double v = cells_[r * cols_ + c];
      if (v < 0.0) {
        out.push_back('.');
      } else {
        const auto label = static_cast<long long>(std::llround(v)) % 10;
        out.push_back(static_cast<char>('0' + label));
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace avcp
