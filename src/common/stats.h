// Descriptive statistics used across the evaluation harnesses
// (per-region coefficient spreads of Fig. 8, convergence-time summaries of
// Fig. 9, trajectory deltas of Fig. 10).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace avcp {

class Serializer;
class Deserializer;

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a sample; 0 for an empty sample.
double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1); 0 for fewer than two samples.
double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile; `q` in [0, 100]. Requires non-empty xs.
double percentile(std::span<const double> xs, double q);

/// Symmetric central interval covering `coverage` (e.g. 0.95) of the sample:
/// [percentile((1-c)/2), percentile(1-(1-c)/2)]. Requires non-empty xs.
std::pair<double, double> central_interval(std::span<const double> xs,
                                           double coverage);

/// Equal-width histogram over [lo, hi] with `bins` buckets. Out-of-range
/// samples are counted separately in `underflow` / `overflow` rather than
/// being folded into the edge buckets, so tail bins reflect only in-range
/// mass (clamping silently inflated whatever a bench sweep plotted at the
/// edges).
struct Histogram {
  std::vector<std::size_t> counts;
  std::size_t underflow = 0;
  std::size_t overflow = 0;

  /// Checkpoint hooks (benches accumulate histograms across rounds).
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);
};
Histogram histogram(std::span<const double> xs, double lo, double hi,
                    std::size_t bins);

/// Normalises values to [0, 1] by min-max scaling; constant input maps to 0.
std::vector<double> minmax_normalize(std::span<const double> xs);

}  // namespace avcp
