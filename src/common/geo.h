// Geographic primitives for the Futian-district bounding box workloads.
//
// The paper crops the target area to the box (22.50 N, 113.98 E) x
// (22.59 N, 114.10 E). At city scale an equirectangular projection around
// the box centre is accurate to well under a metre, which is all the
// simulation needs (sensor ranges are tens of metres).
#pragma once

namespace avcp {

/// WGS-84 latitude/longitude in degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  friend bool operator==(const LatLon&, const LatLon&) = default;
};

/// Planar position in metres (local tangent-plane coordinates).
struct PointM {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const PointM&, const PointM&) = default;
};

/// Euclidean distance between planar points, metres.
double distance_m(const PointM& a, const PointM& b) noexcept;

/// Geographic bounding box with an equirectangular projection to metres.
class GeoBox {
 public:
  /// Builds the box from its south-west and north-east corners.
  GeoBox(LatLon south_west, LatLon north_east);

  /// The Futian-district box used throughout the paper's evaluation.
  static GeoBox futian();

  LatLon south_west() const noexcept { return sw_; }
  LatLon north_east() const noexcept { return ne_; }

  /// Box extent in metres.
  double width_m() const noexcept { return width_m_; }
  double height_m() const noexcept { return height_m_; }

  /// Projects a geographic coordinate to local metres (SW corner = origin).
  PointM to_meters(const LatLon& p) const noexcept;

  /// Inverse projection.
  LatLon to_latlon(const PointM& p) const noexcept;

  /// True if the coordinate lies inside the box (inclusive).
  bool contains(const LatLon& p) const noexcept;

 private:
  LatLon sw_;
  LatLon ne_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
  double width_m_;
  double height_m_;
};

/// Great-circle (haversine) distance in metres; used to cross-check the
/// planar projection in tests.
double haversine_m(const LatLon& a, const LatLon& b) noexcept;

}  // namespace avcp
