#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace avcp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

namespace detail {
void log_write(LogLevel level, std::string_view component,
               std::string_view message) {
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}
}  // namespace detail

}  // namespace avcp
