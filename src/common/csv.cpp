#include "common/csv.h"

#include <istream>
#include <ostream>

namespace avcp {

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"") != std::string_view::npos ||
      (!field.empty() && (field.front() == ' ' || field.back() == ' '));
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string join_csv_line(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += csv_escape(fields[i]);
  }
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  out_ << join_csv_line(fields) << '\n';
}

std::vector<std::vector<std::string>> read_csv(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

}  // namespace avcp
