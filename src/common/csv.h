// Minimal CSV reading/writing for trace files and experiment outputs.
//
// The dialect is deliberately simple (comma separator, double-quote quoting,
// no embedded newlines) — enough for GPS trace interchange and for the bench
// harnesses to emit machine-readable series alongside their human-readable
// tables.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace avcp {

/// Splits one CSV line into fields, honouring double-quote quoting with
/// doubled-quote escapes ("" -> ").
std::vector<std::string> parse_csv_line(std::string_view line);

/// Quotes a field if it contains a comma, quote, or leading/trailing space.
std::string csv_escape(std::string_view field);

/// Joins fields into one CSV line (no trailing newline).
std::string join_csv_line(const std::vector<std::string>& fields);

/// Incremental CSV writer over any std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row; fields are escaped as needed.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

/// Reads an entire CSV document from a stream. Empty lines are skipped.
std::vector<std::vector<std::string>> read_csv(std::istream& in);

}  // namespace avcp
