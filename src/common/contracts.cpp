#include "common/contracts.h"

namespace avcp {

namespace {
std::string format_message(const char* kind, const char* expr,
                           const char* file, int line) {
  std::string msg(kind);
  msg += " failed: ";
  msg += expr;
  msg += " at ";
  msg += file;
  msg += ":";
  msg += std::to_string(line);
  return msg;
}
}  // namespace

ContractViolation::ContractViolation(const char* kind, const char* expr,
                                     const char* file, int line)
    : std::logic_error(format_message(kind, expr, file, line)) {}

namespace detail {
void contract_fail(const char* kind, const char* expr, const char* file,
                   int line) {
  throw ContractViolation(kind, expr, file, line);
}
}  // namespace detail

}  // namespace avcp
