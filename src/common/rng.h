// Deterministic random number generation.
//
// All stochastic components of the library (trace generation, the
// probabilistic sharing ratio in the data plane, agent revision protocols)
// draw from avcp::Rng so that every experiment is reproducible from a single
// 64-bit seed. The engine is xoshiro256++, seeded through splitmix64 as its
// authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace avcp {

class Serializer;
class Deserializer;

/// splitmix64 step; used for seed expansion and as a cheap hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Pure-hash derivation of an independent stream seed from a base seed and
/// an index path (e.g. {tag, round, region}). Each coordinate is folded
/// through a full splitmix64 avalanche, so the result depends on position as
/// well as value, and no engine state is involved — the same idiom as
/// faults::FaultModel's predicates. The round engines use it to give every
/// (round, region) its own counter-based stream, making their decisions
/// independent of region iteration order and thread count.
std::uint64_t derive_seed(std::uint64_t seed,
                          std::initializer_list<std::uint64_t> path) noexcept;

/// xoshiro256++ pseudo-random engine. Satisfies UniformRandomBitGenerator,
/// so it can also drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs the engine from a single seed (expanded via splitmix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal sample (Box-Muller, cached second value).
  double normal() noexcept;

  /// Normal sample with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd) noexcept;

  /// Exponential sample with the given rate (> 0).
  double exponential(double rate) noexcept;

  /// Binomial sample: number of successes in n independent Bernoulli(p)
  /// trials. Exact (not a normal approximation): CDF inversion for small
  /// n*p, Hormann's BTRS transformed-rejection otherwise, with the p > 1/2
  /// case handled by symmetry. p is clamped to [0, 1]. The class-aggregated
  /// data-plane kernel uses it to collapse per-pair delivery draws into one
  /// draw per (receiver, sender-class).
  std::uint64_t binomial(std::uint64_t n, double p) noexcept;

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights must be non-negative with a positive sum.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child engine; used to give each simulated
  /// vehicle / region its own stream without cross-coupling.
  Rng split() noexcept;

  /// Checkpoint hooks: the full stream position (xoshiro state plus the
  /// Box-Muller cache), so a restored engine continues bit-identically.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace avcp
