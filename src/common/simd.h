// Elementwise SIMD kernels with bit-identical-to-scalar endpoints.
//
// Only loops whose iterations are independent per index are vectorized
// here: each vector lane performs exactly the scalar operation sequence
// (no reassociation, no FMA contraction, no reordering of a reduction),
// so the vector path produces bit-for-bit the scalar path's output. That
// is what lets the data-plane and replicator hot loops use these without
// touching the determinism contract (DESIGN.md §15): ordered
// floating-point reductions (qbar, row sums, utility folds) and
// sequential RNG draws stay scalar in their callers.
//
// Dispatch is compile-time: AVX2 when the build enables it, else SSE2
// (part of baseline x86-64), else plain scalar. The scalar fallback is
// the reference semantics; the SIMD bodies are transcriptions of it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#define AVCP_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#define AVCP_SIMD_SSE2 1
#include <emmintrin.h>
#endif

namespace avcp::simd {

/// Which instruction set the kernels below compiled to.
inline const char* active_isa() noexcept {
#if defined(AVCP_SIMD_AVX2)
  return "avx2";
#elif defined(AVCP_SIMD_SSE2)
  return "sse2";
#else
  return "scalar";
#endif
}

/// dst[i] += src[i] for i in [0, n). Exact integer addition — used for the
/// per-(receiver,class) composition-table merge in the aggregated data
/// plane, where each readable sender class folds its per-item upload
/// counts into the receiver class's row.
inline void add_u32(std::uint32_t* dst, const std::uint32_t* src,
                    std::size_t n) {
  std::size_t i = 0;
#if defined(AVCP_SIMD_AVX2)
  for (; i + 8 <= n; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi32(a, b));
  }
#elif defined(AVCP_SIMD_SSE2)
  for (; i + 4 <= n; i += 4) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_add_epi32(a, b));
  }
#endif
  for (; i < n; ++i) dst[i] += src[i];
}

/// row[d] = p[d] * max(1 + eta * (q[d] - qbar), min_factor) for d in
/// [0, n) — the elementwise half of the replicator-dynamics update. Every
/// lane performs sub, mul, add, max, mul in the scalar order on IEEE
/// doubles, so the result is bit-identical to the scalar loop; the row
/// sum that follows it is a reduction and stays with the caller.
inline void growth_update(double* row, const double* p, const double* q,
                          double qbar, double eta, double min_factor,
                          std::size_t n) {
  std::size_t i = 0;
#if defined(AVCP_SIMD_AVX2)
  const __m256d vqbar = _mm256_set1_pd(qbar);
  const __m256d veta = _mm256_set1_pd(eta);
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vmin = _mm256_set1_pd(min_factor);
  for (; i + 4 <= n; i += 4) {
    const __m256d vq = _mm256_loadu_pd(q + i);
    const __m256d vp = _mm256_loadu_pd(p + i);
    const __m256d factor = _mm256_add_pd(
        vone, _mm256_mul_pd(veta, _mm256_sub_pd(vq, vqbar)));
    _mm256_storeu_pd(row + i,
                     _mm256_mul_pd(vp, _mm256_max_pd(factor, vmin)));
  }
#elif defined(AVCP_SIMD_SSE2)
  const __m128d vqbar = _mm_set1_pd(qbar);
  const __m128d veta = _mm_set1_pd(eta);
  const __m128d vone = _mm_set1_pd(1.0);
  const __m128d vmin = _mm_set1_pd(min_factor);
  for (; i + 2 <= n; i += 2) {
    const __m128d vq = _mm_loadu_pd(q + i);
    const __m128d vp = _mm_loadu_pd(p + i);
    const __m128d factor =
        _mm_add_pd(vone, _mm_mul_pd(veta, _mm_sub_pd(vq, vqbar)));
    _mm_storeu_pd(row + i, _mm_mul_pd(vp, _mm_max_pd(factor, vmin)));
  }
#endif
  for (; i < n; ++i) {
    const double factor = 1.0 + eta * (q[i] - qbar);
    row[i] = p[i] * std::max(factor, min_factor);
  }
}

/// row[d] = row[d] / sum, then (when mu > 0) row[d] = (1 - mu) * row[d] +
/// mu_over_n, for d in [0, n) — the normalise-and-mutate tail of the
/// replicator update. Division by the (scalar-accumulated) sum and the
/// mutation mix are per-lane IEEE ops in the scalar order: bit-identical.
inline void normalize_mix(double* row, double sum, double mu,
                          double mu_over_n, std::size_t n) {
  const double keep = 1.0 - mu;
  std::size_t i = 0;
#if defined(AVCP_SIMD_AVX2)
  const __m256d vsum = _mm256_set1_pd(sum);
  const __m256d vkeep = _mm256_set1_pd(keep);
  const __m256d vmix = _mm256_set1_pd(mu_over_n);
  for (; i + 4 <= n; i += 4) {
    __m256d v = _mm256_div_pd(_mm256_loadu_pd(row + i), vsum);
    if (mu > 0.0) v = _mm256_add_pd(_mm256_mul_pd(vkeep, v), vmix);
    _mm256_storeu_pd(row + i, v);
  }
#elif defined(AVCP_SIMD_SSE2)
  const __m128d vsum = _mm_set1_pd(sum);
  const __m128d vkeep = _mm_set1_pd(keep);
  const __m128d vmix = _mm_set1_pd(mu_over_n);
  for (; i + 2 <= n; i += 2) {
    __m128d v = _mm_div_pd(_mm_loadu_pd(row + i), vsum);
    if (mu > 0.0) v = _mm_add_pd(_mm_mul_pd(vkeep, v), vmix);
    _mm_storeu_pd(row + i, v);
  }
#endif
  for (; i < n; ++i) {
    row[i] = row[i] / sum;
    if (mu > 0.0) row[i] = keep * row[i] + mu_over_n;
  }
}

}  // namespace avcp::simd
