// Binary serialization primitives for the checkpoint subsystem.
//
// Serializer appends scalars to a byte buffer in little-endian order
// regardless of host endianness; Deserializer reads them back with bounds
// checks. Every stateful engine exposes save_state(Serializer&) /
// load_state(Deserializer&) built on these, and checkpoint/checkpoint.h
// frames the resulting payloads into a versioned, CRC-protected file.
//
// Failure model: Deserializer never reads past its span — a truncated or
// garbled payload throws SerialError (a typed, catchable error) instead of
// returning garbage. load_state implementations use check() for semantic
// validation (dimension mismatches against the live configuration), so a
// checkpoint from a differently-configured run is rejected, not applied.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace avcp {

/// Thrown when decoding fails: truncated payload, bad tag, or a semantic
/// mismatch against the live configuration. checkpoint::CheckpointError
/// derives from it, so `catch (const SerialError&)` covers every way a
/// checkpoint can be rejected.
class SerialError : public std::runtime_error {
 public:
  explicit SerialError(const std::string& message)
      : std::runtime_error(message) {}
};

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
/// hardware-accelerated storage stacks standardise on. `seed` chains
/// incremental computations: pass a previous result to extend it.
std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t seed = 0) noexcept;

/// Appends scalars to a growable byte buffer, little-endian.
class Serializer {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// Doubles travel as their IEEE-754 bit pattern: exact round-trip,
  /// including NaN payloads and signed zeros.
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// u64 length prefix + raw bytes.
  void put_bytes(std::span<const std::byte> data);
  void put_string(std::string_view s);
  /// Raw bytes, no prefix (for framing layers that carry their own sizes).
  void put_raw(std::span<const std::byte> data);

  const std::vector<std::byte>& bytes() const noexcept { return buffer_; }
  std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

/// Reads scalars back from a byte span; throws SerialError on under-run.
class Deserializer {
 public:
  explicit Deserializer(std::span<const std::byte> data) noexcept
      : data_(data) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  double get_f64();
  bool get_bool() { return get_u8() != 0; }
  std::vector<std::byte> get_bytes();
  std::string get_string();

  std::size_t remaining() const noexcept { return data_.size() - offset_; }
  bool exhausted() const noexcept { return remaining() == 0; }
  std::size_t offset() const noexcept { return offset_; }
  /// Advances past `n` bytes (throws SerialError when fewer remain).
  void skip(std::size_t n);

  /// Semantic validation helper for load_state implementations: throws
  /// SerialError (not ContractViolation — the input is external data, not a
  /// caller bug) when `cond` is false.
  static void check(bool cond, const char* what) {
    if (!cond) throw SerialError(std::string("serial: ") + what);
  }

 private:
  void require(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

/// Vector helpers shared by the load/save hooks (u64 length prefix).
void put_f64_vec(Serializer& s, std::span<const double> v);
std::vector<double> get_f64_vec(Deserializer& d);
void put_u64_vec(Serializer& s, std::span<const std::uint64_t> v);
std::vector<std::uint64_t> get_u64_vec(Deserializer& d);
void put_u32_vec(Serializer& s, std::span<const std::uint32_t> v);
std::vector<std::uint32_t> get_u32_vec(Deserializer& d);

/// size_t vectors travel as u64 (the format is 64-bit regardless of host).
void put_size_vec(Serializer& s, std::span<const std::size_t> v);
std::vector<std::size_t> get_size_vec(Deserializer& d);
void put_u8_vec(Serializer& s, std::span<const std::uint8_t> v);
std::vector<std::uint8_t> get_u8_vec(Deserializer& d);

}  // namespace avcp
