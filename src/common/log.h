// Minimal leveled logger.
//
// The simulators and FDS controller emit progress at Info/Debug; tests run
// with the logger silenced. A global level keeps the dependency surface at
// zero — no external logging framework is needed for a research library.
#pragma once

#include <sstream>
#include <string_view>

namespace avcp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;

/// Current global log threshold.
LogLevel log_level() noexcept;

namespace detail {
void log_write(LogLevel level, std::string_view component,
               std::string_view message);
}  // namespace detail

/// Stream-style log statement builder:
///   AVCP_LOG(kInfo, "fds") << "round " << t << " converged";
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view component) noexcept
      : level_(level), component_(component) {}

  ~LogStatement() {
    if (level_ >= log_level()) {
      detail::log_write(level_, component_, stream_.str());
    }
  }

  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace avcp

#define AVCP_LOG(level, component) \
  ::avcp::LogStatement(::avcp::LogLevel::level, component)
