#include "common/serial.h"

#include <array>
#include <bit>
#include <limits>

namespace avcp {

namespace {

/// CRC-32C lookup table (reflected 0x82F63B78), built once at startup.
std::array<std::uint32_t, 256> make_crc32c_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  for (const std::byte b : data) {
    crc = (crc >> 8) ^
          kCrc32cTable[(crc ^ static_cast<std::uint32_t>(b)) & 0xffu];
  }
  return ~crc;
}

void Serializer::put_u8(std::uint8_t v) {
  buffer_.push_back(static_cast<std::byte>(v));
}

void Serializer::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
  }
}

void Serializer::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
  }
}

void Serializer::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void Serializer::put_bytes(std::span<const std::byte> data) {
  put_u64(data.size());
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Serializer::put_string(std::string_view s) {
  put_bytes(std::as_bytes(std::span<const char>(s.data(), s.size())));
}

void Serializer::put_raw(std::span<const std::byte> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Deserializer::require(std::size_t n) const {
  if (remaining() < n) {
    throw SerialError("serial: read past end of payload");
  }
}

std::uint8_t Deserializer::get_u8() {
  require(1);
  return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint32_t Deserializer::get_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  return v;
}

std::uint64_t Deserializer::get_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return v;
}

double Deserializer::get_f64() { return std::bit_cast<double>(get_u64()); }

void Deserializer::skip(std::size_t n) {
  require(n);
  offset_ += n;
}

std::vector<std::byte> Deserializer::get_bytes() {
  const std::uint64_t n = get_u64();
  check(n <= remaining(), "byte-string length exceeds payload");
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
                             data_.begin() +
                                 static_cast<std::ptrdiff_t>(offset_ + n));
  offset_ += static_cast<std::size_t>(n);
  return out;
}

std::string Deserializer::get_string() {
  const std::vector<std::byte> raw = get_bytes();
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

namespace {

/// Guards length prefixes before vector reserves: a corrupt (but
/// CRC-colliding or unframed) length must not trigger a huge allocation.
std::size_t checked_count(Deserializer& d, std::size_t elem_size) {
  const std::uint64_t n = d.get_u64();
  Deserializer::check(n <= d.remaining() / elem_size,
                      "vector length exceeds payload");
  return static_cast<std::size_t>(n);
}

}  // namespace

void put_f64_vec(Serializer& s, std::span<const double> v) {
  s.put_u64(v.size());
  for (const double x : v) s.put_f64(x);
}

std::vector<double> get_f64_vec(Deserializer& d) {
  const std::size_t n = checked_count(d, 8);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(d.get_f64());
  return v;
}

void put_u64_vec(Serializer& s, std::span<const std::uint64_t> v) {
  s.put_u64(v.size());
  for (const std::uint64_t x : v) s.put_u64(x);
}

std::vector<std::uint64_t> get_u64_vec(Deserializer& d) {
  const std::size_t n = checked_count(d, 8);
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(d.get_u64());
  return v;
}

void put_u32_vec(Serializer& s, std::span<const std::uint32_t> v) {
  s.put_u64(v.size());
  for (const std::uint32_t x : v) s.put_u32(x);
}

std::vector<std::uint32_t> get_u32_vec(Deserializer& d) {
  const std::size_t n = checked_count(d, 4);
  std::vector<std::uint32_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(d.get_u32());
  return v;
}

void put_size_vec(Serializer& s, std::span<const std::size_t> v) {
  s.put_u64(v.size());
  for (const std::size_t x : v) s.put_u64(x);
}

std::vector<std::size_t> get_size_vec(Deserializer& d) {
  const std::size_t n = checked_count(d, 8);
  std::vector<std::size_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = d.get_u64();
    Deserializer::check(x <= std::numeric_limits<std::size_t>::max(),
                        "size value exceeds host size_t");
    v.push_back(static_cast<std::size_t>(x));
  }
  return v;
}

void put_u8_vec(Serializer& s, std::span<const std::uint8_t> v) {
  s.put_u64(v.size());
  for (const std::uint8_t x : v) s.put_u8(x);
}

std::vector<std::uint8_t> get_u8_vec(Deserializer& d) {
  const std::size_t n = checked_count(d, 1);
  std::vector<std::uint8_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(d.get_u8());
  return v;
}

}  // namespace avcp
