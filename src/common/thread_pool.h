// Deterministic fork-join parallelism for the round engines.
//
// ThreadPool is a fixed-size worker pool driving `parallel_for` over index
// ranges and `run_batch` over multi-stage rounds. It makes no scheduling
// guarantees — chunks are claimed by whichever lane gets there first — so
// determinism is a *protocol*, not a property of the pool: every task
// writes only to state owned by its own index (its region's RNG stream,
// its chunk's partial accumulator, its slot of a result vector), and any
// floating-point reduction over task results happens on the calling thread
// in index order after the join. Code that follows the protocol is
// bit-identical at every thread count, including the inline
// single-threaded path; the regression lock lives in
// tests/determinism_test.cpp.
//
// ## Dispatch cost model (DESIGN.md §15)
//
// The pool is built for rounds whose per-index work can be *smaller* than
// a context switch. Three design points follow:
//
//  - **Chunked claiming.** Lanes claim runs of indices (a grain, or an
//    explicit per-chunk plan from balanced_chunks) with one
//    compare-exchange per chunk instead of one fetch-add per index. The
//    claim word packs the stage's chunk count above the cursor, so the
//    only thing a lane reads before owning work is that one atomic: a
//    successful claim of chunk c < count *pins* the stage (its remaining
//    item count cannot hit zero until the chunk runs), which pins the
//    caller inside run_batch and keeps the stage descriptor alive and
//    stable for the duration of the chunk. A lane racing a stage
//    boundary simply fails the compare-exchange and re-reads; claiming a
//    chunk of a *newer* stage than the lane thinks is open is harmless —
//    chunks carry no identity beyond the descriptor they pin.
//  - **Item-count completion.** A stage is complete when every *index*
//    has executed, not when every *worker* has reported in: the caller
//    drains the range itself and returns the moment the count hits zero.
//    Workers that the OS never scheduled (oversubscription, or more
//    lanes than cores) simply find the range empty later and go back to
//    sleep — they are never on the join's critical path. This is what
//    makes num_threads > cores cost ~nothing instead of one futex
//    round-trip per worker per dispatch.
//  - **Batched dispatch.** `run_batch` runs several barrier-separated
//    stages with a single worker wake-up: workers stay in the claim loop
//    across stage boundaries (briefly spinning at a barrier) instead of
//    sleeping and being re-woken per stage, so a whole engine round
//    crosses the pool boundary once.
//
// The calling thread participates in every job (a pool of size 1 runs
// everything inline, spawning nothing), the pool blocks until the range is
// drained, and the first exception thrown by any task is rethrown on the
// caller after remaining tasks are cancelled.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <new>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

namespace avcp {

// Deliberately a fixed 64 rather than
// std::hardware_destructive_interference_size: the library constant is an
// ABI hazard GCC warns about on every include, and 64 bytes is the
// destructive-interference granule on every target this builds for
// (x86-64 and mainstream AArch64 — some of whose prefetchers pull pairs
// of lines, which padding to 64 already mitigates in practice).
inline constexpr std::size_t kCacheLineSize = 64;

/// Non-owning, non-allocating reference to a `void(std::size_t)` callable.
/// The referee must outlive the reference — parallel_for/run_batch only
/// ever point it at a callable that lives on the caller's stack for the
/// duration of the (blocking) dispatch, so no type-erasure allocation or
/// std::function indirection is ever paid.
class IndexFnRef {
 public:
  /// Null reference; calling it is undefined. Exists so the pool can hold
  /// an IndexFnRef member before the first stage opens.
  IndexFnRef() noexcept : obj_(nullptr), call_(nullptr) {}

  template <typename Fn,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<Fn>,
                                                        IndexFnRef>>>
  IndexFnRef(Fn& fn) noexcept  // NOLINT: implicit by design
      : obj_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* obj, std::size_t i) { (*static_cast<Fn*>(obj))(i); }) {}

  void operator()(std::size_t i) const { call_(obj_, i); }

 private:
  void* obj_;
  void (*call_)(void*, std::size_t);
};

/// Splits `cost[0..n)` into at most `max_chunks` contiguous chunks of
/// roughly equal total cost (each chunk holds at least one index; a chunk
/// closes as soon as it reaches the adaptive average of the remaining
/// cost). Returns the exclusive end index of every chunk, so chunk c spans
/// [ends[c-1], ends[c]). Boundaries depend only on the costs and
/// max_chunks — never on thread count — so a plan is safe to use under the
/// determinism protocol. Used by the engines to balance per-region work by
/// measured cost (vehicles × classes) rather than region count.
std::vector<std::uint32_t> balanced_chunks(std::span<const double> cost,
                                           std::size_t max_chunks);

class ThreadPool {
 public:
  /// `num_threads` == 0 picks std::thread::hardware_concurrency(), which
  /// the standard permits to report 0 — that (and any other resolution to
  /// less than one lane) is guarded to a pool of size 1. The pool spawns
  /// `num_threads - 1` workers: the calling thread is the remaining lane,
  /// so a pool of size 1 never spawns and never leaves the caller.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  /// Lane-count policy for the round engines: resolves a requested thread
  /// count to at most the machine's core count (0 = all cores, and the
  /// hardware_concurrency()==0 case guards to 1). Lanes beyond the core
  /// count can never help — they are pure scheduling overhead on a
  /// saturated machine (the negative-scaling failure mode) — and the
  /// determinism protocol makes results lane-count-invariant, so clamping
  /// changes throughput only. The constructor itself honours the exact
  /// requested count so tests can force true oversubscription.
  static std::size_t clamped_lanes(std::size_t requested) noexcept;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the calling thread).
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// One stage of a batch: fn(i) runs for every i in [0, count). `grain`
  /// indices are claimed per atomic operation (0 = pick automatically from
  /// count and lane count). Alternatively `plan` (exclusive chunk ends
  /// from balanced_chunks, last entry == count) overrides grain with
  /// cost-balanced chunks. The fn referee and the plan storage must stay
  /// alive for the duration of the dispatch.
  struct Stage {
    std::size_t count = 0;
    IndexFnRef fn;
    std::size_t grain = 0;
    std::span<const std::uint32_t> plan = {};
  };

  /// Runs every stage in order with a barrier between consecutive stages
  /// (stage s+1 starts only after every index of stage s completed), and a
  /// single worker wake-up for the whole batch. Blocks until the last
  /// stage drains. If any task throws, the remaining range of its stage is
  /// cancelled, later stages are skipped entirely, and the first exception
  /// is rethrown on the caller. Not reentrant.
  void run_batch(std::span<const Stage> stages);

  /// Runs fn(i) for every i in [begin, end), blocking until all complete.
  /// Empty ranges return immediately. The single-lane (and single-index)
  /// path runs inline with zero synchronisation and zero type erasure —
  /// it compiles down to a plain loop over the callable. Not reentrant:
  /// fn must not dispatch on the same pool.
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                    std::size_t grain = 0) {
    if (begin >= end) return;
    if (workers_.empty() || end - begin == 1) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      return;
    }
    auto shifted = [&fn, begin](std::size_t i) { fn(begin + i); };
    const Stage stage{end - begin, IndexFnRef(shifted), grain, {}};
    run_batch({&stage, 1});
  }

  /// Cost-balanced variant: fn(i) for i in [0, cost.size()), claimed in
  /// contiguous chunks of roughly equal total cost (at most
  /// `chunks_per_lane * size()` chunks). Use when index work is uneven —
  /// e.g. per-region cost proportional to vehicles × classes.
  template <typename Fn>
  void parallel_for_weighted(std::span<const double> cost, Fn&& fn,
                             std::size_t chunks_per_lane = 4) {
    const std::size_t n = cost.size();
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    const std::vector<std::uint32_t> plan =
        balanced_chunks(cost, chunks_per_lane * size());
    IndexFnRef ref(fn);
    const Stage stage{n, ref, 0, plan};
    run_batch({&stage, 1});
  }

 private:
  void worker_loop();
  /// Claims and runs chunks of the open stage until its cursor is
  /// exhausted. Any lane (caller or worker) may drain; workers pass
  /// is_worker so the wake throttle can see whether they ever help.
  void drain_stage(bool is_worker);
  /// Caller-side: copies the stage descriptor into the pool and publishes
  /// the claim word, opening the stage to all lanes.
  void open_stage(const Stage& stage);
  void record_error();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;   // caller -> workers: a batch opened
  std::condition_variable done_;   // lanes -> caller: a stage fully drained
  std::uint64_t batch_seq_ = 0;    // bumps once per run_batch
  bool stop_ = false;

  // Open-stage descriptor. Written by the caller in open_stage *before*
  // the claim-word release store; read by a lane only while it holds a
  // claimed-but-unretired chunk, which pins the caller inside the stage —
  // so these plain members are never read and written concurrently.
  std::size_t cur_count_ = 0;
  std::size_t cur_grain_ = 0;
  const std::uint32_t* cur_plan_ = nullptr;
  IndexFnRef cur_fn_;

  // True while a batch is open; workers spin on it between stages instead
  // of sleeping, and drift back to sleep when it clears.
  std::atomic<bool> batch_open_{false};

  // Adaptive wake throttle. When the previous batch completed with zero
  // worker-executed items (the caller outran its workers — the starved
  // single-core / tiny-round regime), the wake is skipped and the caller
  // runs the batch alone, probing with a real wake every
  // kWakeProbePeriod batches so parallelism returns the moment cores free
  // up. Caller-side state (touched only inside run_batch); worker_items_
  // is the workers' contribution count for the open batch.
  static constexpr std::size_t kWakeProbePeriod = 32;
  std::size_t idle_streak_ = 0;
  std::size_t skipped_wakes_ = 0;
  std::atomic<std::size_t> worker_items_{0};

  // Hot shared words, each on its own cache line: the claim word (chunk
  // count << 32 | cursor) and the open stage's remaining-item count.
  // Padding keeps lane CASes on claim_ from stealing the line holding
  // remaining_ (and vice versa) — false sharing here serialises exactly
  // the two words every lane hammers.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> claim_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> remaining_{0};
  alignas(kCacheLineSize) std::exception_ptr error_;
};

}  // namespace avcp
