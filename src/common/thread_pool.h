// Deterministic fork-join parallelism for the round engines.
//
// ThreadPool is a fixed-size worker pool driving `parallel_for` over index
// ranges. It makes no scheduling guarantees — indices are claimed by
// whichever worker gets there first — so determinism is a *protocol*, not a
// property of the pool: every task writes only to state owned by its own
// index (its region's RNG stream, its chunk's partial accumulator, its slot
// of a result vector), and any floating-point reduction over task results
// happens on the calling thread in index order after the join. Code that
// follows the protocol is bit-identical at every thread count, including
// the inline single-threaded path; the regression lock lives in
// tests/determinism_test.cpp.
//
// The calling thread participates in the loop (a pool of size 1 runs
// everything inline, spawning nothing), the pool blocks until the range is
// drained, and the first exception thrown by any task is rethrown on the
// caller after remaining tasks are cancelled.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace avcp {

class ThreadPool {
 public:
  /// `num_threads` == 0 picks std::thread::hardware_concurrency(). The pool
  /// spawns `num_threads - 1` workers: the calling thread is the remaining
  /// lane, so a pool of size 1 never leaves the caller.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the calling thread).
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [begin, end), blocking until all complete.
  /// Empty ranges return immediately. Not reentrant: fn must not call
  /// parallel_for on the same pool.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claims indices from the open job until the range (or the job, on a
  /// peer's exception) is exhausted.
  void drain();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;   // caller -> workers: a job is open
  std::condition_variable done_;   // workers -> caller: job fully drained
  std::uint64_t generation_ = 0;   // bumps once per parallel_for
  std::size_t busy_ = 0;           // workers still inside the open job
  bool stop_ = false;

  // Open-job state (valid while busy_ > 0 or the caller is draining).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::size_t end_ = 0;
  std::exception_ptr error_;
};

}  // namespace avcp
