// Lightweight precondition / postcondition contracts.
//
// Library code validates its inputs with AVCP_EXPECT and its own invariants
// with AVCP_ENSURE. Violations throw avcp::ContractViolation, which carries
// the failing expression and source location; callers that cannot recover
// should let the exception propagate to main.
#pragma once

#include <stdexcept>
#include <string>

namespace avcp {

/// Thrown when a precondition (Expect) or invariant (Ensure) fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line);
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line);
}  // namespace detail

}  // namespace avcp

/// Precondition check: validates arguments at a public API boundary.
#define AVCP_EXPECT(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::avcp::detail::contract_fail("Expect", #cond, __FILE__, __LINE__); \
  } while (false)

/// Postcondition / invariant check inside an implementation.
#define AVCP_ENSURE(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::avcp::detail::contract_fail("Ensure", #cond, __FILE__, __LINE__); \
  } while (false)
