#include "common/geo.h"

#include <cmath>
#include <numbers>

#include "common/contracts.h"

namespace avcp {

namespace {
constexpr double kEarthRadiusM = 6371008.8;

double deg2rad(double d) noexcept { return d * std::numbers::pi / 180.0; }
}  // namespace

double distance_m(const PointM& a, const PointM& b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

GeoBox::GeoBox(LatLon south_west, LatLon north_east)
    : sw_(south_west), ne_(north_east) {
  AVCP_EXPECT(ne_.lat > sw_.lat);
  AVCP_EXPECT(ne_.lon > sw_.lon);
  const double mid_lat = deg2rad((sw_.lat + ne_.lat) / 2.0);
  meters_per_deg_lat_ = kEarthRadiusM * std::numbers::pi / 180.0;
  meters_per_deg_lon_ = meters_per_deg_lat_ * std::cos(mid_lat);
  width_m_ = (ne_.lon - sw_.lon) * meters_per_deg_lon_;
  height_m_ = (ne_.lat - sw_.lat) * meters_per_deg_lat_;
}

GeoBox GeoBox::futian() {
  return GeoBox(LatLon{22.50, 113.98}, LatLon{22.59, 114.10});
}

PointM GeoBox::to_meters(const LatLon& p) const noexcept {
  return PointM{(p.lon - sw_.lon) * meters_per_deg_lon_,
                (p.lat - sw_.lat) * meters_per_deg_lat_};
}

LatLon GeoBox::to_latlon(const PointM& p) const noexcept {
  return LatLon{sw_.lat + p.y / meters_per_deg_lat_,
                sw_.lon + p.x / meters_per_deg_lon_};
}

bool GeoBox::contains(const LatLon& p) const noexcept {
  return p.lat >= sw_.lat && p.lat <= ne_.lat && p.lon >= sw_.lon &&
         p.lon <= ne_.lon;
}

double haversine_m(const LatLon& a, const LatLon& b) noexcept {
  const double lat1 = deg2rad(a.lat);
  const double lat2 = deg2rad(b.lat);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon - a.lon);
  const double s = std::sin(dlat / 2.0);
  const double t = std::sin(dlon / 2.0);
  const double h = s * s + std::cos(lat1) * std::cos(lat2) * t * t;
  return 2.0 * kEarthRadiusM * std::asin(std::sqrt(h));
}

}  // namespace avcp
