#include "common/thread_pool.h"

#include <algorithm>

namespace avcp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end_) return;
    try {
      (*fn_)(i);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      // Cancel the rest of the range; peers finish their current task and
      // stop claiming new ones.
      next_.store(end_, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lock.unlock();

    drain();

    lock.lock();
    if (--busy_ == 0) done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (workers_.empty() || end - begin == 1) {
    // Inline path: no synchronization, exceptions propagate naturally.
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    next_.store(begin, std::memory_order_relaxed);
    end_ = end;
    error_ = nullptr;
    busy_ = workers_.size();
    ++generation_;
  }
  wake_.notify_all();

  drain();  // the calling thread is a lane too

  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [&] { return busy_ == 0; });
  fn_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

}  // namespace avcp
