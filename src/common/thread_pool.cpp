#include "common/thread_pool.h"

#include <algorithm>

#include "common/contracts.h"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>
#endif

namespace avcp {

namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Spin budgets. Workers bridge stage barriers by spinning (pauses, then
// yields) instead of sleeping, so a multi-stage batch needs only one
// condition-variable wake; a worker that exhausts the budget without
// finding work goes back to sleep for the rest of the batch. On a machine
// where the caller outpaces its workers (few cores, small rounds) that is
// the right outcome: item-count completion means the caller never waits
// for a sleeping worker, so an unscheduled worker costs nothing.
constexpr int kWorkerPauseSpins = 512;
constexpr int kWorkerYieldSpins = 64;
constexpr int kCallerPauseSpins = 4096;

inline std::uint32_t claim_cursor(std::uint64_t word) noexcept {
  return static_cast<std::uint32_t>(word & 0xFFFFFFFFu);
}

inline std::uint32_t claim_chunks(std::uint64_t word) noexcept {
  return static_cast<std::uint32_t>(word >> 32);
}

inline std::uint64_t claim_word(std::uint32_t chunks,
                                std::uint32_t cursor) noexcept {
  return (static_cast<std::uint64_t>(chunks) << 32) | cursor;
}

}  // namespace

std::vector<std::uint32_t> balanced_chunks(std::span<const double> cost,
                                           std::size_t max_chunks) {
  const std::size_t n = cost.size();
  AVCP_EXPECT(max_chunks >= 1);
  std::vector<std::uint32_t> ends;
  if (n == 0) return ends;
  double total = 0.0;
  for (const double c : cost) {
    AVCP_EXPECT(c >= 0.0);
    total += c;
  }
  const std::size_t chunks = std::min(max_chunks, n);
  ends.reserve(chunks);
  // Greedy sweep with an adaptive target: each chunk closes once it holds
  // the average of the *remaining* cost over the *remaining* chunks, so
  // one huge region cannot starve the tail into empty chunks. Boundaries
  // depend only on (cost, max_chunks) — never on thread count — which is
  // what makes a plan safe under the determinism protocol.
  double remaining = total;
  std::size_t i = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t chunks_left = chunks - c;
    const double target = remaining / static_cast<double>(chunks_left);
    double acc = 0.0;
    // Leave at least one index for each later chunk.
    const std::size_t limit = n - (chunks_left - 1);
    do {
      acc += cost[i];
      ++i;
    } while (i < limit && acc < target);
    remaining -= acc;
    ends.push_back(static_cast<std::uint32_t>(i));
  }
  ends.back() = static_cast<std::uint32_t>(n);
  return ends;
}

std::size_t ThreadPool::clamped_lanes(std::size_t requested) noexcept {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::size_t hw = hw_raw == 0 ? 1 : hw_raw;
  if (requested == 0 || requested > hw) return hw;
  return requested;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    // hardware_concurrency() may legitimately return 0 ("not computable",
    // [thread.thread.static]); guard to a single lane rather than
    // spawning an underflowed worker count.
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::record_error() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!error_) error_ = std::current_exception();
}

void ThreadPool::drain_stage(bool is_worker) {
  for (;;) {
    std::uint64_t word = claim_.load(std::memory_order_acquire);
    const std::uint32_t cursor = claim_cursor(word);
    const std::uint32_t chunks = claim_chunks(word);
    if (cursor >= chunks) return;
    if (!claim_.compare_exchange_weak(word, claim_word(chunks, cursor + 1),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      continue;  // raced with a peer (or a stage boundary); re-read
    }
    // Chunk `cursor` of the stage that published `word` is now ours. Its
    // items are still counted in remaining_, so the stage cannot complete
    // — the caller is pinned inside it — until we retire them below. That
    // pin is what makes the descriptor reads here safe and stable, even
    // for a lane that raced a stage boundary and claimed into a newer
    // stage than it last saw: the descriptor always matches the stage the
    // claim landed in.
    const std::size_t count = cur_count_;
    const std::uint32_t* plan = cur_plan_;
    std::size_t begin;
    std::size_t end;
    if (plan != nullptr) {
      begin = cursor == 0 ? 0 : plan[cursor - 1];
      end = plan[cursor];
    } else {
      begin = static_cast<std::size_t>(cursor) * cur_grain_;
      end = std::min(begin + cur_grain_, count);
    }
    const IndexFnRef fn = cur_fn_;
    bool failed = false;
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      record_error();
      failed = true;
    }
    if (failed) {
      // Cancel the rest of the stage: claim every unclaimed chunk in one
      // CAS and retire their items so the barrier releases without them
      // ever running (the caller skips later stages once it sees error_).
      // Our own chunk is still unretired, so the stage stays pinned
      // throughout and `remaining_` cannot reach zero before the final
      // decrement below.
      std::uint64_t cur = claim_.load(std::memory_order_acquire);
      for (;;) {
        const std::uint32_t c = claim_cursor(cur);
        const std::uint32_t k = claim_chunks(cur);
        if (c >= k) break;
        if (claim_.compare_exchange_weak(cur, claim_word(k, k),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
          const std::size_t first =
              plan != nullptr ? (c == 0 ? 0 : plan[c - 1])
                              : static_cast<std::size_t>(c) * cur_grain_;
          remaining_.fetch_sub(count - first, std::memory_order_acq_rel);
          break;
        }
      }
    }
    const std::size_t items = end - begin;
    if (is_worker) {
      // Feed the wake throttle: the caller checks at batch close whether
      // workers contributed anything at all.
      worker_items_.fetch_add(items, std::memory_order_relaxed);
    }
    if (remaining_.fetch_sub(items, std::memory_order_acq_rel) == items) {
      // This lane retired the stage's last items; wake the caller if it
      // went to sleep at the barrier. Taking the mutex orders the notify
      // after the caller's predicate check, so the wake cannot be missed.
      const std::lock_guard<std::mutex> lock(mu_);
      done_.notify_all();
    }
    if (failed) return;
  }
}

void ThreadPool::open_stage(const Stage& stage) {
  cur_count_ = stage.count;
  cur_fn_ = stage.fn;
  std::size_t chunks;
  if (!stage.plan.empty()) {
    AVCP_EXPECT(stage.plan.back() == stage.count);
    cur_plan_ = stage.plan.data();
    cur_grain_ = 0;
    chunks = stage.plan.size();
  } else {
    cur_plan_ = nullptr;
    std::size_t grain = stage.grain;
    if (grain == 0) {
      // Auto grain: enough chunks for a few claims per lane (dynamic load
      // balance) without per-index atomic traffic.
      const std::size_t target_chunks = 4 * size();
      grain = std::max<std::size_t>(
          1, (stage.count + target_chunks - 1) / target_chunks);
    }
    // The claim word holds 32-bit chunk counts; coarsen rather than trap
    // on absurd ranges (chunking never affects results under the
    // determinism protocol).
    while ((stage.count + grain - 1) / grain > 0x7FFFFFFFu) grain *= 2;
    cur_grain_ = grain;
    chunks = (stage.count + grain - 1) / grain;
  }
  remaining_.store(stage.count, std::memory_order_relaxed);
  // The claim-word release store is what opens the stage: a lane whose
  // acquire claim lands in this stage observes every descriptor write
  // above (CAS claims by peers are RMWs, so the release sequence reaches
  // later claimants too).
  claim_.store(claim_word(static_cast<std::uint32_t>(chunks), 0),
               std::memory_order_release);
}

void ThreadPool::run_batch(std::span<const Stage> stages) {
  if (stages.empty()) return;
  if (workers_.empty()) {
    // Single-lane pool: plain loops, exceptions propagate naturally and a
    // throwing stage skips the rest (matching the parallel semantics).
    for (const Stage& stage : stages) {
      for (std::size_t i = 0; i < stage.count; ++i) stage.fn(i);
    }
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    AVCP_EXPECT(!batch_open_.load(std::memory_order_relaxed));  // reentrant?
    error_ = nullptr;
    worker_items_.store(0, std::memory_order_relaxed);
    batch_open_.store(true, std::memory_order_relaxed);
    ++batch_seq_;
  }
  // One wake for the whole batch: workers bridge stage boundaries by
  // spinning on the claim word, not by sleeping. The wake itself is
  // throttled: if workers contributed zero items to the previous batch
  // (the caller is outrunning them — few cores, or rounds smaller than a
  // wake round-trip), skip the notify and let the caller drain alone,
  // probing with a real wake every kWakeProbePeriod batches so the pool
  // re-parallelises the moment cores free up. This makes the dispatch
  // converge to the inline path's cost on starved machines instead of
  // paying a futex storm per round for workers that never run.
  bool wake = true;
  if (idle_streak_ > 0) {
    if (++skipped_wakes_ < kWakeProbePeriod) {
      wake = false;
    } else {
      skipped_wakes_ = 0;
    }
  }
  if (wake) wake_.notify_all();

  bool errored = false;
  for (const Stage& stage : stages) {
    if (stage.count == 0) continue;
    open_stage(stage);
    drain_stage(/*is_worker=*/false);
    // Barrier: the stage is complete when every index has executed, not
    // when every worker has reported in — workers the OS never scheduled
    // are not on this path. The usual case (the caller retired the last
    // chunk itself) falls through the first check without ever sleeping.
    if (remaining_.load(std::memory_order_acquire) != 0) {
      for (int spin = 0; spin < kCallerPauseSpins; ++spin) {
        cpu_relax();
        if (remaining_.load(std::memory_order_acquire) == 0) break;
      }
      if (remaining_.load(std::memory_order_acquire) != 0) {
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [&] {
          return remaining_.load(std::memory_order_acquire) == 0;
        });
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (error_) {
        errored = true;
        break;
      }
    }
  }

  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    batch_open_.store(false, std::memory_order_relaxed);
    if (errored) {
      err = error_;
      error_ = nullptr;
    }
  }
  if (worker_items_.load(std::memory_order_relaxed) == 0) {
    ++idle_streak_;
  } else {
    idle_streak_ = 0;
    skipped_wakes_ = 0;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return stop_ || batch_seq_ != seen; });
      if (stop_) return;
      seen = batch_seq_;
    }
    // Claim loop: drain the open stage, then spin briefly for the next
    // one. batch_open_ clearing ends the batch; exhausting the spin
    // budget puts this worker back to sleep for the remainder (item-count
    // completion means the caller never waits for it).
    int pauses = kWorkerPauseSpins;
    int yields = kWorkerYieldSpins;
    while (batch_open_.load(std::memory_order_acquire)) {
      const std::uint64_t word = claim_.load(std::memory_order_acquire);
      if (claim_cursor(word) < claim_chunks(word)) {
        drain_stage(/*is_worker=*/true);
        pauses = kWorkerPauseSpins;
        yields = kWorkerYieldSpins;
      } else if (pauses > 0) {
        --pauses;
        cpu_relax();
      } else if (yields > 0) {
        --yields;
        std::this_thread::yield();
      } else {
        break;  // budget exhausted: sleep out the rest of this batch
      }
    }
  }
}

}  // namespace avcp
