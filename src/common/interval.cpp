#include "common/interval.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace avcp {

double Interval::nearest(double x) const noexcept {
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

Interval Interval::intersect(const Interval& a, const Interval& b) noexcept {
  return Interval{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

bool Interval::touches(const Interval& a, const Interval& b) noexcept {
  if (a.empty() || b.empty()) return false;
  return a.lo <= b.hi && b.lo <= a.hi;
}

IntervalSet::IntervalSet(const Interval& iv) {
  if (!iv.empty()) parts_.push_back(iv);
}

IntervalSet IntervalSet::whole(double lo, double hi) {
  return IntervalSet(Interval{lo, hi});
}

void IntervalSet::add(const Interval& iv) {
  if (iv.empty()) return;
  Interval merged = iv;
  std::vector<Interval> out;
  out.reserve(parts_.size() + 1);
  bool placed = false;
  for (const Interval& p : parts_) {
    if (Interval::touches(p, merged)) {
      merged.lo = std::min(merged.lo, p.lo);
      merged.hi = std::max(merged.hi, p.hi);
    } else if (p.hi < merged.lo) {
      out.push_back(p);
    } else {
      if (!placed) {
        out.push_back(merged);
        placed = true;
      }
      out.push_back(p);
    }
  }
  if (!placed) out.push_back(merged);
  parts_ = std::move(out);
}

IntervalSet IntervalSet::unite(const IntervalSet& a, const IntervalSet& b) {
  IntervalSet out = a;
  for (const Interval& p : b.parts_) out.add(p);
  return out;
}

IntervalSet IntervalSet::intersect(const IntervalSet& a,
                                   const IntervalSet& b) {
  IntervalSet out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.parts_.size() && j < b.parts_.size()) {
    const Interval& pa = a.parts_[i];
    const Interval& pb = b.parts_[j];
    const Interval iv = Interval::intersect(pa, pb);
    if (!iv.empty()) out.parts_.push_back(iv);
    if (pa.hi < pb.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

bool IntervalSet::contains(double x, double tol) const noexcept {
  for (const Interval& p : parts_) {
    if (x >= p.lo - tol && x <= p.hi + tol) return true;
    if (p.lo - tol > x) break;
  }
  return false;
}

std::optional<double> IntervalSet::nearest(double x) const noexcept {
  if (parts_.empty()) return std::nullopt;
  double best = parts_.front().nearest(x);
  double best_dist = std::abs(best - x);
  for (const Interval& p : parts_) {
    const double cand = p.nearest(x);
    const double dist = std::abs(cand - x);
    if (dist < best_dist) {
      best = cand;
      best_dist = dist;
    }
  }
  return best;
}

double IntervalSet::min() const {
  AVCP_EXPECT(!parts_.empty());
  return parts_.front().lo;
}

double IntervalSet::max() const {
  AVCP_EXPECT(!parts_.empty());
  return parts_.back().hi;
}

double IntervalSet::measure() const noexcept {
  double total = 0.0;
  for (const Interval& p : parts_) total += p.width();
  return total;
}

Interval solve_affine_ge(double a, double b, const Interval& domain,
                         double tol) noexcept {
  if (domain.empty()) return Interval::empty_interval();
  if (std::abs(a) <= tol) {
    return b >= -tol ? domain : Interval::empty_interval();
  }
  const double root = -b / a;
  if (a > 0.0) {
    return Interval::intersect(domain, Interval{root, domain.hi});
  }
  return Interval::intersect(domain, Interval{domain.lo, root});
}

Interval solve_affine_le(double a, double b, const Interval& domain,
                         double tol) noexcept {
  return solve_affine_ge(-a, -b, domain, tol);
}

}  // namespace avcp
