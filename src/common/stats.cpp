#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/serial.h"

namespace avcp {

void Histogram::save_state(Serializer& s) const {
  put_size_vec(s, counts);
  s.put_u64(underflow);
  s.put_u64(overflow);
}

void Histogram::load_state(Deserializer& d) {
  counts = get_size_vec(d);
  underflow = static_cast<std::size_t>(d.get_u64());
  overflow = static_cast<std::size_t>(d.get_u64());
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  RunningStats s;
  for (const double x : xs) s.add(x);
  return s.mean();
}

double stddev(std::span<const double> xs) noexcept {
  RunningStats s;
  for (const double x : xs) s.add(x);
  return s.stddev();
}

namespace {

/// Linear-interpolated quantile of an already-sorted sample.
double percentile_of_sorted(std::span<const double> sorted, double q) {
  AVCP_EXPECT(!sorted.empty());
  AVCP_EXPECT(q >= 0.0 && q <= 100.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

}  // namespace

double percentile(std::span<const double> xs, double q) {
  AVCP_EXPECT(!xs.empty());
  AVCP_EXPECT(q >= 0.0 && q <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_of_sorted(sorted, q);
}

std::pair<double, double> central_interval(std::span<const double> xs,
                                           double coverage) {
  AVCP_EXPECT(coverage > 0.0 && coverage <= 1.0);
  AVCP_EXPECT(!xs.empty());
  const double tail = (1.0 - coverage) / 2.0 * 100.0;
  // One sort serves both quantiles (delegating to percentile() would copy
  // and sort the sample twice).
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return {percentile_of_sorted(sorted, tail),
          percentile_of_sorted(sorted, 100.0 - tail)};
}

Histogram histogram(std::span<const double> xs, double lo, double hi,
                    std::size_t bins) {
  AVCP_EXPECT(bins > 0);
  AVCP_EXPECT(hi > lo);
  Histogram h;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double x : xs) {
    if (x < lo) {
      ++h.underflow;
      continue;
    }
    auto idx = static_cast<std::size_t>((x - lo) / width);
    if (x >= hi) {
      // x == hi lands in the top bucket (closed upper edge); beyond is
      // overflow.
      if (x > hi) {
        ++h.overflow;
        continue;
      }
      idx = bins - 1;
    }
    idx = std::min(idx, bins - 1);
    ++h.counts[idx];
  }
  return h;
}

std::vector<double> minmax_normalize(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  if (out.empty()) return out;
  const auto [lo_it, hi_it] = std::minmax_element(out.begin(), out.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  const double range = hi - lo;
  for (double& x : out) x = range > 0.0 ? (x - lo) / range : 0.0;
  return out;
}

}  // namespace avcp
