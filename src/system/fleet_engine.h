// Million-vehicle sharded fleet engine (DESIGN.md §16).
//
// The class-aggregated data-plane kernel (DESIGN.md §11) made one round
// O(V·K); what remained between the repo and a 1M-vehicle round at
// interactive rates was memory layout and single-process structure. This
// engine supplies both:
//
//  - **SoA hot state.** Each shard owns one perception::FleetSoA — parallel
//    decision/claim/revoked/fitness/reputation arrays with all item sets in
//    one flat grow-only arena — instead of 2 heap ItemSets per vehicle.
//  - **Per-shard arenas, no cross-shard allocation.** A shard is the unit
//    of work dispatched over the fixed-lane ThreadPool (PR 8 chunked
//    claiming, one run_batch per round): its fleet, data plane, RNG
//    streams, round outcome, and reduction slots are all shard-owned, so
//    lanes never allocate from or write to another shard's memory.
//  - **Streaming ingestion.** Fleets arrive through core::FleetSource in
//    shard-sized batches and are routed to shards on arrival (shard =
//    id mod num_shards); the whole fleet is never materialised flat.
//
// Determinism is the same protocol as the other engines: every (round,
// shard) gets a hash-derived RNG stream, every shard writes only its own
// state, and the caller folds shard results in shard order — trajectories
// are bit-identical at every lane count (tests/determinism_test.cpp).
// Steady-state rounds are allocation-free after ingest (allocation_guard).
//
// Within a shard each round runs the paper's loop at fleet scale: synthesise
// the round's perception scene (constant-size contiguous collected/desired
// windows per vehicle — one uniform draw each, the cheapest street-scene
// model that keeps every set sorted and the arena exactly sized), run the
// shard's edge-server data plane at the commanded sharing ratio, fold
// fitness = beta·utility − exposed-privacy fraction (the same shape as
// system.cpp), then pairwise proportional imitation within the shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "core/fleet_stream.h"
#include "core/lattice.h"
#include "net/exchange_channel.h"
#include "perception/data_plane.h"
#include "perception/fleet_soa.h"
#include "perception/measure.h"

namespace avcp::system {

struct FleetEngineParams {
  /// Shard count is a *partitioning* choice, fixed independently of lane
  /// count (shards are claimed by whichever lanes are free), so results
  /// never depend on the machine.
  std::size_t num_shards = 16;
  std::size_t num_sensors = 3;
  /// Universe size per sensor; Ω = num_sensors · items_per_sensor.
  std::size_t items_per_sensor = 128;
  /// Fraction of Ω each vehicle collects / desires per round (as one
  /// contiguous window, at least 1 item).
  double collect_fraction = 0.06;
  double desire_fraction = 0.03;
  double revision_rate = 0.5;
  double imitation_scale = 1.0;
  /// Fitness = beta · utility − exposed-privacy fraction.
  double beta = 2.5;
  /// EWMA reputation over realised utility.
  double reputation_decay = 0.9;
  std::uint64_t seed = 1;
  std::size_t num_threads = 1;
  /// False bypasses ThreadPool::clamped_lanes so tests and benches can
  /// exercise real oversubscribed lane counts (bit-identity at 1/2/8 lanes
  /// must be a real check even on a 1-core machine).
  bool clamp_lanes = true;
  /// Streaming-ingestion batch size (the peak transient above shard state).
  std::size_t ingest_batch = 8192;
  perception::DataPlaneMode mode = perception::DataPlaneMode::kClassAggregated;
  core::AccessRule access = core::AccessRule::kSubsetOrEqual;

  /// Inter-shard exchange over a degraded ring transport (DESIGN.md §17).
  /// Each round every shard samples a slice of its fleet and sends it to
  /// its ring successor through a net::ExchangeChannel; the receiver runs
  /// the directional data-plane kernel over the newest consumable sample
  /// (at most net.max_staleness rounds old) and folds the marginal utility
  /// into fitness before revision. Off by default: the round loop is then
  /// the single fused two-stage dispatch and bit-identical to the
  /// pre-transport engine. Requires num_shards >= 2 when on.
  bool inter_shard_exchange = false;
  /// Fraction of a shard's vehicles copied into its outbound sample.
  double exchange_fraction = 0.05;
  /// Hard cap on the sample size (bounds per-round payload copies).
  std::size_t exchange_sample_cap = 256;
  net::NetParams net;
};

/// Per-round aggregate over the whole fleet, folded in shard order.
struct FleetRoundStats {
  std::size_t vehicles = 0;
  double mean_utility = 0.0;
  double mean_privacy = 0.0;
  double exposed_privacy = 0.0;  // summed over shards (disjoint cells)
  double mean_fitness = 0.0;
  double mean_reputation = 0.0;
  std::size_t deliveries = 0;
  /// Post-revision share of each decision class (size K).
  std::vector<double> decision_share;

  /// Inter-shard exchange accounting (all 0 when the transport is off):
  /// summed marginal utility receivers gained from ring samples, this
  /// round's channel delivery/drop counts, and how many shards had no
  /// consumable sample (blind).
  double cross_utility = 0.0;
  std::size_t net_delivered = 0;
  std::size_t net_dropped = 0;
  std::size_t net_blind = 0;
};

class ShardedFleetEngine {
 public:
  explicit ShardedFleetEngine(FleetEngineParams params);

  /// Streams the source into the shards in `ingest_batch`-sized pulls.
  /// May be called repeatedly to append; the next run_round re-prepares
  /// workspaces and the dispatch plan.
  void ingest(core::FleetSource& source);

  std::size_t size() const noexcept { return total_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }
  const perception::FleetSoA& shard_fleet(std::size_t s) const {
    return shards_[s].fleet;
  }

  /// Runs one fleet-wide round at the given sharing ratio. Zero-allocation
  /// in steady state: `out`'s vectors are reused.
  void run_round_into(double sharing_ratio, FleetRoundStats& out);
  FleetRoundStats run_round(double sharing_ratio);

  /// FNV-1a over every shard's post-round hot state (decisions, fitness,
  /// reputation bits) in shard order — the bit-identity probe used by
  /// bench_fleet and the determinism tests.
  std::uint64_t state_hash() const noexcept;

  /// Ring transport counters; null when inter_shard_exchange is off.
  const net::ExchangeChannel* channel() const noexcept {
    return channel_ ? &*channel_ : nullptr;
  }

 private:
  struct Shard {
    perception::FleetSoA fleet;
    std::unique_ptr<perception::EdgeServerDataPlane> plane;
    perception::RoundOutcome outcome;
    perception::EdgeServerDataPlane::DirectionalOutcome dout;
    std::vector<core::DecisionId> before;    // revision snapshot
    std::vector<std::uint32_t> hist;         // post-revision class counts
    // Shard-owned reduction slots, folded by the caller in shard order.
    double sum_utility = 0.0;
    double sum_privacy = 0.0;
    double exposed_privacy = 0.0;
    double sum_fitness = 0.0;
    double sum_reputation = 0.0;
    std::size_t deliveries = 0;
    double cross_utility = 0.0;
    std::uint8_t net_blind = 0;
  };

  /// One outbound sample payload; rings_[s] holds shard s's last
  /// ring_slots() samples so any consumable round is still resident.
  struct PayloadSlot {
    std::uint64_t round = net::ExchangeChannel::kNothing;
    double x = 0.0;
    perception::FleetSoA fleet;
  };

  /// Finishes ingestion: reserves every shard's arena and data-plane
  /// workspace to its exact per-round footprint and builds the
  /// cost-balanced chunk plan (per-shard cost = vehicles · K).
  void prepare();
  /// Stage A (per shard): synthesise the round scene, run the data plane,
  /// fold fitness/reputation into shard slots.
  void exchange_shard(std::size_t s, double sharing_ratio);
  /// Stage B (per shard): pairwise proportional imitation + histogram.
  void revise_shard(std::size_t s);
  /// Transport consume (start of stage B, channel on): run the directional
  /// kernel over the predecessor's newest consumable sample and fold the
  /// marginal utility into fitness before revision.
  void consume_shard(std::size_t s);

  FleetEngineParams params_;
  core::DecisionLattice lattice_;
  perception::DataUniverse universe_;
  ThreadPool pool_;
  std::optional<net::LinkModel> link_model_;
  std::optional<net::ExchangeChannel> channel_;
  std::vector<std::vector<PayloadSlot>> rings_;
  std::vector<Shard> shards_;
  std::vector<double> shard_cost_;
  std::vector<std::uint32_t> chunk_plan_;
  perception::ItemSet no_server_items_;
  perception::CellFaultMask no_faults_;
  std::size_t total_ = 0;
  std::size_t round_ = 0;
  std::uint32_t collect_window_ = 1;
  std::uint32_t desire_window_ = 1;
  bool prepared_ = false;
};

}  // namespace avcp::system
