// The full cooperative-perception system of the paper's framework (Fig. 1):
// cloud server, edge servers, and vehicles wired together per round.
//
//   S1 (steps 1-2): edge servers report their vehicles' decisions to the
//       cloud; the cloud's controller (FDS or a baseline) computes the
//       per-region sharing ratios x.
//   S2 (steps 3-5): each edge server forwards its ratio, vehicles upload
//       their decision-filtered sensor data, and the server distributes it
//       under the lattice policy (perception::EdgeServerDataPlane).
//
// Vehicles then revise decisions by *realized* fitness — the measured
// utility of the data they actually received minus the measured privacy
// cost of what they uploaded — via pairwise proportional imitation. Nothing
// in the plant evaluates Eq. (4); the analytic game is used only by the
// cloud's model-based controller. This closes the loop the paper's
// analysis abstracts: tests verify the realized per-decision fitness
// ranking agrees with the analytic one and that FDS still shapes the
// population when driving the measured plant.
//
// Data exchange is scoped per Voronoi cell within a region
// (SystemParams::cells_per_region, the Fig. 5 structure) while the ratio x
// is regional. The inter-region term of Eq. (4) is realized by directional
// cross-region rounds: gamma_ji of the neighbouring fleet acts as senders
// at the sender region's ratio (SystemParams::inter_region_exchange).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "byzantine/adaptive_adversary.h"
#include "byzantine/adversary_model.h"
#include "byzantine/report_pipeline.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/fds.h"
#include "core/game.h"
#include "faults/fault_model.h"
#include "net/exchange_channel.h"
#include "perception/data_plane.h"
#include "perception/measure.h"

namespace avcp::system {

struct SystemParams {
  std::size_t vehicles_per_region = 60;
  /// Items each sensor type contributes to the shared universe. 0 = auto:
  /// one item per vehicle per sensor type, so that (with disjoint dealing)
  /// every vehicle holds data of every type in expectation — the paper's
  /// setting, where each vehicle's S_a is non-trivial every round. A
  /// too-sparse universe creates data-less vehicles that enjoy pool access
  /// without ever paying privacy cost, which distorts the game.
  std::size_t items_per_sensor = 0;
  /// Probability a vehicle collects / desires a given universe item each
  /// round (fresh draws every round: the street scene changes).
  double collect_fraction = 0.5;
  double desire_fraction = 0.3;
  /// The paper assumes shared data from different vehicles is pairwise
  /// disjoint (§IV-A, before Eq. (4)); when true each universe item is
  /// collected by at most one vehicle per round (dealt uniformly). Set
  /// false to let collections overlap independently — the saturation that
  /// results is exactly the deviation from Property 3.1(d) additivity.
  bool disjoint_collections = true;
  /// Voronoi cells per region: data exchange happens within a cell (the
  /// paper's Fig. 5 — sharing is scoped to one edge server), while the
  /// sharing ratio x is set per region. More cells fragment the pools.
  std::size_t cells_per_region = 1;
  /// When true (default), vehicles additionally receive data from sampled
  /// neighbouring-region senders at the sender region's ratio — Eq. (4)'s
  /// inter-region term, with gamma_ji scaling how many senders they meet.
  bool inter_region_exchange = true;
  /// Upload/distribute repetitions per policy round ("the data exchange in
  /// steps 4 and 5 is repeated multiple times before the next updated
  /// policy arrives", §II). Fitness averages over the repetitions.
  std::size_t exchanges_per_round = 1;
  /// Decision-revision parameters (pairwise proportional imitation).
  double revision_rate = 0.8;
  double imitation_scale = 1.0;
  std::uint64_t seed = 2024;
  /// Distribution-phase kernel. kPairwiseExact (default) keeps the
  /// reference per-pair semantics and bit-identical trajectories;
  /// kClassAggregated runs the O(V·K) kernel (equal in distribution at
  /// item granularity — see data_plane.h). Cells with active per-pair
  /// delivery-loss faults fall back to the exact kernel for that round,
  /// since such masks cannot be class-aggregated.
  perception::DataPlaneMode data_plane_mode =
      perception::DataPlaneMode::kPairwiseExact;
  /// Worker lanes for the per-region round stages (report aggregation, the
  /// per-edge-server data plane, inter-region exchange, decision revision).
  /// 0 = hardware concurrency. Purely a throughput knob: every
  /// (round, region) draws from its own hash-derived RNG stream and all
  /// cross-region reductions run on the calling thread in region order, so
  /// the round series is bit-identical at every value (regression-locked in
  /// tests/determinism_test.cpp).
  std::size_t num_threads = 1;
  /// Degraded-network model for the inter-region exchange (DESIGN.md §17).
  /// Inert by default. When net.active() the exchange routes through a
  /// net::ExchangeChannel: each region publishes its round scene, the link
  /// model assigns message fates, and receivers consume the newest
  /// delivered payload within net.max_staleness rounds (blind links fall
  /// back to local-only revision). With zero degradation the channel path
  /// is bit-identical to the synchronous exchange; region outages keep
  /// their fault-layer semantics (a down region neither publishes nor
  /// consumes) on both paths.
  net::NetParams net;
};

/// Per-round measurements.
struct RoundReport {
  std::vector<double> x;              // ratios applied (per region)
  std::vector<double> mean_utility;   // realized, per region
  std::vector<double> mean_privacy;   // realized, per region
  std::vector<double> exposed_privacy;  // eavesdropper view, per region
  core::GameState state;              // decision distribution after revision
  /// Fault bookkeeping (all zero on the clean path).
  struct Faults {
    std::size_t uploads_lost = 0;
    std::size_t deliveries_lost = 0;
    /// Per-region splits of the totals above, so benches can attribute
    /// degradation spatially (which region's links eat the losses).
    std::vector<std::size_t> uploads_lost_by_region;
    std::vector<std::size_t> deliveries_lost_by_region;
    /// region_down[i] != 0 iff region i's edge servers skipped this round.
    std::vector<std::uint8_t> region_down;
    std::size_t regions_down = 0;
  } faults;

  /// Byzantine bookkeeping (inert default when neither an adversary model
  /// nor a report pipeline is attached).
  struct Byzantine {
    bool active = false;
    /// The state the controller acted on this round: the aggregate of the
    /// *claimed* reports (== the true pre-revision empirical state on the
    /// clean path).
    core::GameState observed;
    /// Aggregated telemetry per region (what density_weighted_fields and
    /// any model-based consumer would ingest).
    std::vector<double> beta;
    std::vector<double> gamma;
    std::vector<double> density;
    std::vector<std::size_t> reports_used;
    std::vector<std::size_t> outliers_rejected;
    /// Vehicles quarantined per region when the round's reports were
    /// aggregated (before this round's reputation update).
    std::vector<std::size_t> quarantined;
    /// Fleet-wide quarantined count after this round's reputation update.
    std::size_t total_quarantined = 0;
    /// Fleet-wide distrusted count (trust layer) after this round.
    std::size_t total_distrusted = 0;
    /// Adaptive attackers that have backed off for good after detection.
    std::size_t adaptive_dormant = 0;
  } byzantine;

  /// Transport bookkeeping (active only when SystemParams::net routes the
  /// inter-region exchange through the ExchangeChannel). Message counts
  /// are this round's deltas of the channel's cumulative counters.
  struct Net {
    bool active = false;
    std::size_t sent = 0;
    std::size_t delivered = 0;
    std::size_t deduped = 0;
    std::size_t dropped = 0;
    std::size_t severed = 0;
    std::size_t delayed = 0;
    std::size_t duplicates = 0;
    std::size_t retries = 0;
    std::size_t expired = 0;
    /// Receiver links that consumed a held (stale) payload this round, and
    /// links that were blind (fell back to local-only revision).
    std::size_t stale_links = 0;
    std::size_t blind_links = 0;
    std::vector<std::uint32_t> stale_by_region;
    std::vector<std::uint32_t> blind_by_region;
  } net;
};

class CooperativePerceptionSystem {
 public:
  /// `game` carries the lattice, the per-decision tables, and the region
  /// betas the cloud's model uses; it must outlive the system. The data
  /// universe is generated internally from the lattice's sensor count.
  CooperativePerceptionSystem(const core::MultiRegionGame& game,
                              SystemParams params);

  /// Same, with fault injection: `faults` (may be null; must outlive the
  /// system) supplies per-round upload/delivery loss and edge-server
  /// outages to the data path. A null model — or one whose params().any()
  /// is false — leaves the plant bit-identical to the fault-free overload:
  /// the fault predicates are pure hashes that never touch the system RNG.
  /// Report loss is *not* applied here: the observed state handed to the
  /// controller is always the true empirical state, and a
  /// faults::DegradedController wrapping the cloud controller (sharing
  /// this model) decides which region reports it may act on.
  CooperativePerceptionSystem(const core::MultiRegionGame& game,
                              SystemParams params,
                              const faults::FaultModel* faults);

  /// Same, with strategic adversaries: `adversary` (may be null; must
  /// outlive the system) designates attacker vehicles that falsify their
  /// S1 reports and free-ride in the data plane, and `pipeline` (may be
  /// null; must outlive the system) is the cloud's Byzantine-robust report
  /// path — it aggregates the claimed reports into the observation the
  /// controller acts on, scores residuals, and (when enforcing) quarantines
  /// persistent outliers, whose lattice access the plant then revokes.
  /// With both null this is the overload above. With an inert adversary
  /// (params().any() == false) and a passthrough, non-enforcing pipeline
  /// the round series stays bit-identical to the clean run: reports are
  /// exact deterministic values, predicates are pure hashes, and the
  /// pipeline's mean aggregation repeats the empirical-state arithmetic.
  CooperativePerceptionSystem(const core::MultiRegionGame& game,
                              SystemParams params,
                              const faults::FaultModel* faults,
                              const byzantine::AdversaryModel* adversary,
                              byzantine::ReportPipeline* pipeline = nullptr);

  /// Same, with a *closed-loop* adversary: `adaptive` (may be null; must
  /// outlive the system) runs the reputation-aware per-vehicle policies of
  /// adaptive_adversary.h. The system owns the feedback loop: it freezes
  /// the adversary's plan before the parallel stages, and after the
  /// pipeline's end_round it publishes each designated attacker's EWMA
  /// score, exclusion verdict, and region exclusion count through the
  /// AdversaryObservation channel, then advances the machines — so the
  /// adversary only ever sees what the defender chooses to publish, in a
  /// fixed serial order that keeps trajectories bit-identical at every
  /// thread count. An inert adversary (params().any() == false) leaves the
  /// round series bit-identical to the overload above.
  CooperativePerceptionSystem(const core::MultiRegionGame& game,
                              SystemParams params,
                              const faults::FaultModel* faults,
                              byzantine::ReportPipeline* pipeline,
                              byzantine::AdaptiveAdversary* adaptive);

  std::size_t num_regions() const noexcept { return game_.num_regions(); }

  /// Decision distribution per region among the fleet (what edge servers
  /// report to the cloud in step S1-1 when every vehicle is honest).
  core::GameState empirical_state() const;

  /// Decision distribution of the *honest* sub-fleet only (ground truth
  /// for convergence metrics under attack; == empirical_state() when no
  /// adversary is attached). Regions whose fleet is entirely adversarial
  /// fall back to the full-region row.
  core::GameState honest_state() const;

  /// Seeds every vehicle's decision i.i.d. from `state`'s region rows.
  void init_from(const core::GameState& state);

  /// One full framework round with the given cloud controller.
  RoundReport run_round(core::Controller& controller);

  /// Convenience loop: runs rounds until `desired` is satisfied within
  /// `tol` (checked on the empirical state) or `max_rounds` elapse; returns
  /// rounds executed, or max_rounds when unconverged.
  std::size_t run_until(core::Controller& controller,
                        const core::DesiredFields& desired, double tol,
                        std::size_t max_rounds);

  /// Realized mean fitness of each decision in a region from the most
  /// recent round (NaN-free: decisions with no vehicles report 0).
  std::span<const double> realized_fitness(core::RegionId i) const;

  const perception::DataUniverse& universe() const noexcept {
    return universe_;
  }

  const std::vector<double>& current_x() const noexcept { return x_; }

  /// Framework rounds executed so far (the fault model's round index).
  std::size_t round() const noexcept { return round_; }

  /// Cumulative losses over all rounds (all zero on the clean path).
  const faults::FaultCounters& fault_counters() const noexcept {
    return fault_counters_;
  }

  /// Checkpoint hooks. save_state captures everything run_round consults
  /// beyond its (reconstructible) configuration: the round counter, the
  /// serial setup RNG, every plane's stream position, the fleet's
  /// decisions, the applied ratios, the realized-fitness table, the fault
  /// counters, and — when a report pipeline is attached — its reputation
  /// state. A fresh system built with the same game/params/faults/adversary
  /// wiring, after load_state, continues bit-identically to the original
  /// (the resume-equivalence contract; DESIGN.md §12). Call between rounds
  /// only. load_state throws SerialError when the snapshot's configuration
  /// fingerprint disagrees with the live system.
  void save_state(Serializer& s) const;
  void load_state(Deserializer& d);

 private:
  const core::MultiRegionGame& game_;
  SystemParams params_;
  const faults::FaultModel* faults_;
  const byzantine::AdversaryModel* adversary_ = nullptr;
  byzantine::AdaptiveAdversary* adaptive_ = nullptr;
  byzantine::ReportPipeline* pipeline_ = nullptr;
  std::size_t round_ = 0;
  faults::FaultCounters fault_counters_;
  /// Serial setup stream (universe synthesis, plane seeding, init_from).
  /// The round loop never draws from it: per-round randomness comes from
  /// hash-derived (round, region) streams so regions are independent.
  Rng rng_;
  ThreadPool pool_;
  perception::DataUniverse universe_;
  /// decisions_[region][vehicle].
  std::vector<std::vector<core::DecisionId>> decisions_;
  /// One data plane per edge server (distinct RNG streams).
  std::vector<perception::EdgeServerDataPlane> planes_;
  std::vector<double> x_;
  /// realized_[region][decision] from the last round.
  std::vector<std::vector<double>> realized_;

  /// Per-region round workspace, persistent across rounds (grow-only, so
  /// the per-round hot path stops allocating once every buffer has seen its
  /// high-water mark). `fleet` is the region's per-exchange scene in SoA
  /// layout (perception/fleet_soa.h) — one flat item arena instead of two
  /// heap ItemSets per vehicle per exchange; after the data-plane stage it
  /// holds the *last* exchange's scene, which is exactly what the
  /// inter-region stage reads from neighbours (the stage barrier freezes
  /// it). Only region i's task writes region i's workspace.
  struct RegionWorkspace {
    perception::FleetSoA fleet;
    perception::FleetSoA cell;     // per-cell sub-fleet (cells > 1 only)
    perception::FleetSoA senders;  // inter-region sender sample
    perception::RoundOutcome outcome;
    perception::EdgeServerDataPlane::DirectionalOutcome dout;
    perception::CellFaultMask mask;
    std::vector<std::size_t> cell_index;
    std::vector<double> fitness;      // realized per-vehicle round fitness
    std::vector<double> upload_mass;  // behavioural-audit signal
    std::vector<double> counts;       // per-decision tally scratch
    std::vector<core::DecisionId> before;  // revision snapshot
    // Disjoint-collection dealing scratch (record-then-scatter: the draws
    // happen in ascending item order exactly as before; the scatter groups
    // each owner's items — still ascending — into its arena window).
    std::vector<perception::ItemId> deal_item;
    std::vector<std::uint32_t> deal_owner;
    std::vector<std::uint32_t> owner_count;
    std::vector<std::uint32_t> owner_fill;
    std::vector<perception::ItemId> deal_sorted;
  };
  std::vector<RegionWorkspace> region_ws_;
  /// Per-round claimed/executed decisions (mirror decisions_ on the clean
  /// path); members so the round loop reuses their capacity.
  std::vector<std::vector<core::DecisionId>> claims_;
  std::vector<std::vector<core::DecisionId>> behavior_;
  /// Cost-balanced chunk plan over regions (vehicles × classes weights);
  /// fleet shapes are fixed at construction, so the plan is too.
  std::vector<double> region_cost_;
  std::vector<std::uint32_t> chunk_plan_;
  perception::ItemSet no_server_items_;

  /// Degraded-network transport (engaged iff params_.net.active() and the
  /// inter-region exchange is on). One channel link per directed neighbour
  /// edge dst <- src, added in (dst, neighbour-order) order so the
  /// canonical consume order is exactly the synchronous neighbour order.
  std::optional<net::LinkModel> link_model_;
  std::optional<net::ExchangeChannel> channel_;
  /// Per-link gamma of the neighbour edge it carries.
  std::vector<double> link_gamma_;
  /// out_links_[j]: links whose sender is region j.
  std::vector<std::vector<std::uint32_t>> out_links_;
  /// A published inter-region payload: the sender's end-of-stage-A scene
  /// and the ratio it was produced under. Ring-buffered per sender
  /// (net.ring_slots() deep — anything older is never consumable), slot =
  /// payload round % slots. The serial transport step writes the ring;
  /// stage B only reads it, so lanes never race on payload memory.
  struct PayloadSlot {
    std::uint64_t round = net::ExchangeChannel::kNothing;
    double x = 0.0;
    perception::FleetSoA fleet;
  };
  std::vector<std::vector<PayloadSlot>> rings_;
};

}  // namespace avcp::system
