#include "system/fleet_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/contracts.h"
#include "common/rng.h"

namespace avcp::system {

namespace {

// Hash-derived stream tags (disjoint from the other engines' tags).
constexpr std::uint64_t kUniverseStream = 0xE0;
constexpr std::uint64_t kPlaneStream = 0xE1;
constexpr std::uint64_t kFillStream = 0xE2;
constexpr std::uint64_t kReviseStream = 0xE3;
constexpr std::uint64_t kNetSampleStream = 0xE4;

perception::DataUniverse make_universe(const FleetEngineParams& params) {
  Rng rng(derive_seed(params.seed, {kUniverseStream}));
  std::vector<double> sensor_privacy(params.num_sensors);
  for (std::size_t s = 0; s < params.num_sensors; ++s) {
    sensor_privacy[s] = 1.0 / static_cast<double>(s + 1);
  }
  return perception::DataUniverse::synthetic(
      params.num_sensors, params.items_per_sensor, sensor_privacy, rng);
}

std::uint32_t fraction_window(double fraction, std::size_t omega) {
  const auto w = static_cast<std::uint32_t>(
      std::llround(fraction * static_cast<double>(omega)));
  return std::clamp<std::uint32_t>(w, 1, static_cast<std::uint32_t>(omega));
}

void fnv_fold(std::uint64_t& h, std::uint64_t word) noexcept {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (word >> shift) & 0xFF;
    h *= kPrime;
  }
}

}  // namespace

ShardedFleetEngine::ShardedFleetEngine(FleetEngineParams params)
    : params_(params),
      lattice_(params.num_sensors),
      universe_(make_universe(params)),
      pool_(params.clamp_lanes ? ThreadPool::clamped_lanes(params.num_threads)
                               : params.num_threads) {
  AVCP_EXPECT(params.num_shards >= 1);
  AVCP_EXPECT(params.collect_fraction > 0.0 && params.collect_fraction <= 1.0);
  AVCP_EXPECT(params.desire_fraction > 0.0 && params.desire_fraction <= 1.0);
  AVCP_EXPECT(params.reputation_decay >= 0.0 && params.reputation_decay <= 1.0);
  params.net.validate();
  if (params.inter_shard_exchange) {
    AVCP_EXPECT(params.num_shards >= 2);
    AVCP_EXPECT(params.exchange_fraction > 0.0 &&
                params.exchange_fraction <= 1.0);
    AVCP_EXPECT(params.exchange_sample_cap >= 1);
    // Ring topology: link s delivers into shard s from its predecessor, so
    // shard s publishes its sample on link (s+1) % S.
    link_model_.emplace(params.net);
    const std::size_t num = params.num_shards;
    channel_.emplace(*link_model_, static_cast<std::uint32_t>(num));
    for (std::size_t s = 0; s < num; ++s) {
      const auto src = static_cast<std::uint32_t>((s + num - 1) % num);
      const std::uint32_t link =
          channel_->add_link(src, static_cast<std::uint32_t>(s));
      AVCP_ENSURE(link == s);
    }
    rings_.assign(num, std::vector<PayloadSlot>(params.net.ring_slots()));
  }
  shards_.resize(params.num_shards);
  shard_cost_.resize(params.num_shards, 0.0);
  const std::size_t omega = universe_.size();
  collect_window_ = fraction_window(params.collect_fraction, omega);
  desire_window_ = fraction_window(params.desire_fraction, omega);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].plane = std::make_unique<perception::EdgeServerDataPlane>(
        lattice_, universe_, params.access,
        derive_seed(params.seed, {kPlaneStream, s}));
  }
}

void ShardedFleetEngine::ingest(core::FleetSource& source) {
  std::vector<core::VehicleSeed> batch(std::max<std::size_t>(params_.ingest_batch, 1));
  const std::size_t num_shards = shards_.size();
  for (;;) {
    const std::size_t got = source.next_batch(batch);
    for (std::size_t i = 0; i < got; ++i) {
      const core::VehicleSeed& seed = batch[i];
      AVCP_EXPECT(seed.decision < lattice_.num_decisions());
      shards_[seed.id % num_shards].fleet.add(seed.decision);
    }
    total_ += got;
    if (got < batch.size()) break;
  }
  prepared_ = false;
}

void ShardedFleetEngine::prepare() {
  const std::size_t k = lattice_.num_decisions();
  const std::size_t per_vehicle = collect_window_ + desire_window_;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = shards_[s];
    const std::size_t n = sh.fleet.size();
    sh.fleet.reserve(n, n * per_vehicle);
    sh.plane->reserve_workspace(n, collect_window_);
    sh.outcome.utility.reserve(n);
    sh.outcome.privacy.reserve(n);
    sh.before.reserve(n);
    sh.hist.assign(k, 0);
    shard_cost_[s] = static_cast<double>(n) * static_cast<double>(k);
  }
  chunk_plan_ = balanced_chunks(shard_cost_, 4 * pool_.size());
  prepared_ = true;
}

void ShardedFleetEngine::exchange_shard(std::size_t s, double sharing_ratio) {
  Shard& sh = shards_[s];
  perception::FleetSoA& fleet = sh.fleet;
  const std::size_t n = fleet.size();
  Rng rng(derive_seed(params_.seed, {kFillStream, round_, s}));

  // Round scene synthesis: one contiguous collected window and one desired
  // window per vehicle (one uniform draw each). Windows keep the arena
  // exactly n·(mc+md) items and every set trivially sorted.
  fleet.reset_items();
  const auto omega = static_cast<std::int64_t>(universe_.size());
  for (std::size_t v = 0; v < n; ++v) {
    std::span<perception::ItemId> c = fleet.alloc_collected(v, collect_window_);
    auto start = static_cast<perception::ItemId>(
        rng.uniform_int(0, omega - collect_window_));
    for (std::uint32_t i = 0; i < collect_window_; ++i) c[i] = start + i;
    std::span<perception::ItemId> d = fleet.alloc_desired(v, desire_window_);
    start = static_cast<perception::ItemId>(
        rng.uniform_int(0, omega - desire_window_));
    for (std::uint32_t i = 0; i < desire_window_; ++i) d[i] = start + i;
  }

  sh.plane->run_round_into(fleet.view(), sharing_ratio, no_faults_,
                           no_server_items_, params_.mode, sh.outcome);

  // Fitness fold (the same shape as system.cpp's data-plane stage):
  // beta·utility minus the vehicle's exposed fraction of its own privacy
  // mass. Reputation is an EWMA over realised utility.
  const double total_privacy = universe_.total_privacy_weight();
  const double decay = params_.reputation_decay;
  std::span<double> fitness = fleet.fitness();
  std::span<double> reputation = fleet.reputation();
  double sum_utility = 0.0;
  double sum_privacy = 0.0;
  double sum_fitness = 0.0;
  double sum_reputation = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    const double own_mass = universe_.privacy_weight(fleet.collected_of(v));
    const double exposed_fraction =
        own_mass > 0.0 ? sh.outcome.privacy[v] * total_privacy / own_mass : 0.0;
    const double f = params_.beta * sh.outcome.utility[v] - exposed_fraction;
    fitness[v] = f;
    reputation[v] = decay * reputation[v] + (1.0 - decay) * sh.outcome.utility[v];
    sum_utility += sh.outcome.utility[v];
    sum_privacy += sh.outcome.privacy[v];
    sum_fitness += f;
    sum_reputation += reputation[v];
  }
  sh.sum_utility = sum_utility;
  sh.sum_privacy = sum_privacy;
  sh.sum_fitness = sum_fitness;
  sh.sum_reputation = sum_reputation;
  sh.exposed_privacy = sh.outcome.exposed_privacy;
  sh.deliveries = sh.outcome.deliveries;

  if (channel_) {
    // Outbound sample, written straight into this shard's payload ring
    // (slot round_ % slots is shard-owned this round; consumers only read
    // other rings, after the stage barrier and the serial transport step).
    // The sample draws ride their own stream so the scene synthesis above
    // consumes the exact same draws with the transport on or off.
    PayloadSlot& slot = rings_[s][round_ % rings_[s].size()];
    slot.round = round_;
    slot.x = sharing_ratio;
    slot.fleet.clear();
    if (n > 0) {
      const auto want = static_cast<std::size_t>(std::ceil(
          params_.exchange_fraction * static_cast<double>(n)));
      const std::size_t count =
          std::min({std::max<std::size_t>(want, 1),
                    params_.exchange_sample_cap, n});
      Rng srng(derive_seed(params_.seed, {kNetSampleStream, round_, s}));
      const perception::FleetView view = fleet.view();
      for (std::size_t i = 0; i < count; ++i) {
        const auto v = static_cast<std::size_t>(
            srng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        slot.fleet.add(view, v);
      }
    }
  }
}

void ShardedFleetEngine::consume_shard(std::size_t s) {
  Shard& sh = shards_[s];
  sh.cross_utility = 0.0;
  sh.net_blind = 0;
  const std::uint64_t pe =
      channel_->consumable(static_cast<std::uint32_t>(s), round_);
  if (pe == net::ExchangeChannel::kNothing) {
    // Nothing usable within max_staleness: local-only revision this round.
    sh.net_blind = 1;
    return;
  }
  const std::size_t num = shards_.size();
  const std::vector<PayloadSlot>& ring = rings_[(s + num - 1) % num];
  const PayloadSlot& slot = ring[pe % ring.size()];
  AVCP_ENSURE(slot.round == pe);
  if (slot.fleet.size() == 0 || sh.fleet.size() == 0) return;
  sh.plane->run_directional_into(slot.fleet.view(), sh.fleet.view(), slot.x,
                                 params_.mode, sh.dout);
  std::span<double> fitness = sh.fleet.fitness();
  double cross = 0.0;
  for (std::size_t v = 0; v < sh.fleet.size(); ++v) {
    const double gain = sh.dout.marginal_utility[v];
    fitness[v] += params_.beta * gain;
    cross += gain;
  }
  sh.cross_utility = cross;
  sh.sum_fitness += params_.beta * cross;
  sh.deliveries += sh.dout.deliveries;
}

void ShardedFleetEngine::revise_shard(std::size_t s) {
  Shard& sh = shards_[s];
  if (channel_) consume_shard(s);
  Rng rng(derive_seed(params_.seed, {kReviseStream, round_, s}));
  std::span<core::DecisionId> decisions = sh.fleet.decisions();
  std::span<const double> fitness = sh.fleet.fitness();
  const std::size_t n = decisions.size();
  if (n >= 2) {
    sh.before.assign(decisions.begin(), decisions.end());
    for (std::size_t v = 0; v < n; ++v) {
      if (!rng.bernoulli(params_.revision_rate)) continue;
      auto peer = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
      if (peer >= v) ++peer;
      if (sh.before[peer] == sh.before[v]) continue;
      const double gain = fitness[peer] - fitness[v];
      if (gain <= 0.0) continue;
      if (rng.bernoulli(std::min(1.0, params_.imitation_scale * gain))) {
        decisions[v] = sh.before[peer];
      }
    }
  }
  std::fill(sh.hist.begin(), sh.hist.end(), 0);
  for (std::size_t v = 0; v < n; ++v) ++sh.hist[decisions[v]];
}

void ShardedFleetEngine::run_round_into(double sharing_ratio,
                                        FleetRoundStats& out) {
  AVCP_EXPECT(sharing_ratio >= 0.0 && sharing_ratio <= 1.0);
  if (!prepared_) prepare();

  auto stage_a = [&](std::size_t s) { exchange_shard(s, sharing_ratio); };
  auto stage_b = [&](std::size_t s) { revise_shard(s); };
  std::size_t net_delivered = 0;
  std::size_t net_dropped = 0;
  if (!channel_) {
    const ThreadPool::Stage stages[] = {
        {shards_.size(), IndexFnRef(stage_a), 0, chunk_plan_},
        {shards_.size(), IndexFnRef(stage_b), 0, chunk_plan_},
    };
    pool_.run_batch(stages);
  } else {
    // Transport rounds split the fused dispatch: sample/exchange, then a
    // serial transport step on the control thread (thread-count invariant
    // by construction), then consume/revise.
    const ThreadPool::Stage stage_a_only[] = {
        {shards_.size(), IndexFnRef(stage_a), 0, chunk_plan_},
    };
    pool_.run_batch(stage_a_only);
    const net::ExchangeChannel::Counters before = channel_->counters();
    const std::size_t num = shards_.size();
    for (std::size_t s = 0; s < num; ++s) {
      channel_->publish(static_cast<std::uint32_t>((s + 1) % num), round_);
    }
    channel_->resolve_round(round_);
    const net::ExchangeChannel::Counters& after = channel_->counters();
    net_delivered = after.delivered - before.delivered;
    net_dropped = (after.dropped - before.dropped) +
                  (after.severed - before.severed);
    const ThreadPool::Stage stage_b_only[] = {
        {shards_.size(), IndexFnRef(stage_b), 0, chunk_plan_},
    };
    pool_.run_batch(stage_b_only);
  }
  ++round_;

  // Caller-side fold in shard order (the determinism protocol's ordered
  // reduction).
  const std::size_t k = lattice_.num_decisions();
  out.vehicles = total_;
  out.decision_share.assign(k, 0.0);
  double sum_utility = 0.0;
  double sum_privacy = 0.0;
  double exposed = 0.0;
  double sum_fitness = 0.0;
  double sum_reputation = 0.0;
  std::size_t deliveries = 0;
  double cross_utility = 0.0;
  std::size_t net_blind = 0;
  for (const Shard& sh : shards_) {
    sum_utility += sh.sum_utility;
    sum_privacy += sh.sum_privacy;
    exposed += sh.exposed_privacy;
    sum_fitness += sh.sum_fitness;
    sum_reputation += sh.sum_reputation;
    deliveries += sh.deliveries;
    cross_utility += sh.cross_utility;
    net_blind += sh.net_blind;
    for (std::size_t d = 0; d < k; ++d) {
      out.decision_share[d] += static_cast<double>(sh.hist[d]);
    }
  }
  out.cross_utility = cross_utility;
  out.net_delivered = net_delivered;
  out.net_dropped = net_dropped;
  out.net_blind = channel_ ? net_blind : 0;
  const auto nv = static_cast<double>(total_);
  out.mean_utility = total_ > 0 ? sum_utility / nv : 0.0;
  out.mean_privacy = total_ > 0 ? sum_privacy / nv : 0.0;
  out.exposed_privacy = exposed;
  out.mean_fitness = total_ > 0 ? sum_fitness / nv : 0.0;
  out.mean_reputation = total_ > 0 ? sum_reputation / nv : 0.0;
  out.deliveries = deliveries;
  if (total_ > 0) {
    for (double& share : out.decision_share) share /= nv;
  }
}

FleetRoundStats ShardedFleetEngine::run_round(double sharing_ratio) {
  FleetRoundStats out;
  run_round_into(sharing_ratio, out);
  return out;
}

std::uint64_t ShardedFleetEngine::state_hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const Shard& sh : shards_) {
    const perception::FleetSoA& fleet = sh.fleet;
    const std::size_t n = fleet.size();
    for (std::size_t v = 0; v < n; ++v) {
      fnv_fold(h, fleet.decision(v));
    }
    for (const double f : fleet.fitness()) {
      fnv_fold(h, std::bit_cast<std::uint64_t>(f));
    }
    for (const double r : fleet.reputation()) {
      fnv_fold(h, std::bit_cast<std::uint64_t>(r));
    }
  }
  return h;
}

}  // namespace avcp::system
